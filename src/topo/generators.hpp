// Parametric topology generators (ROADMAP: enterprise-scale evaluation).
// A TopologySpec is a small value describing *which* network to build —
// the hand-wired DSN'17 enterprise net, a fat-tree(k), or a
// leaf-spine(spines, leaves, hosts/leaf) fabric — and build_model() turns
// it into a validated SystemModel with deterministic names, dpids, and
// host addressing. RunSpec carries a TopologySpec so sweep grids can
// enumerate topology x attack x controller.
#pragma once

#include <cstdint>
#include <string>

#include "common/json.hpp"
#include "topo/system_model.hpp"

namespace attain::topo {

enum class TopologyKind : std::uint8_t { Enterprise, FatTree, LeafSpine };

std::string to_string(TopologyKind kind);

/// Value-type description of a generated topology. The default-constructed
/// spec is the enterprise network, so existing RunSpecs keep their meaning
/// (and their JSON bytes) without mentioning topology at all.
struct TopologySpec {
  TopologyKind kind{TopologyKind::Enterprise};
  /// Fat-tree arity; even, >= 2. Unused by the other kinds.
  std::uint32_t k{4};
  /// Leaf-spine shape. Unused by the other kinds.
  std::uint32_t spines{2};
  std::uint32_t leaves{4};
  std::uint32_t hosts_per_leaf{4};

  static TopologySpec enterprise();
  static TopologySpec fat_tree(std::uint32_t k);
  static TopologySpec leaf_spine(std::uint32_t spines, std::uint32_t leaves,
                                 std::uint32_t hosts_per_leaf);

  bool is_enterprise() const { return kind == TopologyKind::Enterprise; }

  /// Entity counts implied by the parameters (without building the model).
  /// Fat-tree(k): (k/2)^2 cores + k pods x (k/2 agg + k/2 edge) switches,
  /// k^3/4 hosts, 3k^3/4 links. Leaf-spine: S + L switches, L x H hosts,
  /// S x L fabric links + L x H host links.
  std::size_t switch_count() const;
  std::size_t host_count() const;
  std::size_t link_count() const;

  /// Stable slug used in RunSpec ids and warm-up signatures:
  /// "enterprise", "fat-tree/k4", "leaf-spine/2x4x4".
  std::string id() const;

  /// Throws std::invalid_argument when the parameters are out of range
  /// (odd or tiny fat-tree k, zero-sized leaf-spine axes).
  void check() const;

  void write_json(JsonWriter& out) const;
  std::string to_json() const;
  /// Parses the write_json() form; throws std::invalid_argument on
  /// malformed input. Only the fields relevant to `kind` are read.
  static TopologySpec from_json(const std::string& text);

  friend bool operator==(const TopologySpec&, const TopologySpec&) = default;
};

/// Fail-mode / TLS knobs applied while building a model from a spec.
struct BuildOptions {
  /// Applied to the topology's chokepoint switch: s2 for the enterprise
  /// net (the Table II knob); generated fabrics have no single chokepoint,
  /// so it applies to the first core/spine switch instead.
  bool chokepoint_fail_secure{false};
  bool others_fail_secure{false};
  bool tls{false};
};

/// Builds and validates the model described by `spec`. Deterministic: the
/// same spec and options always produce an identical model (names, dpids,
/// MACs, link order). The enterprise spec reproduces
/// scenario::make_enterprise_model() exactly.
SystemModel build_model(const TopologySpec& spec, const BuildOptions& options = {});

}  // namespace attain::topo
