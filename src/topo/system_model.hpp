// The paper's system model (§IV-A): controllers C, switches S, end hosts H,
// the data-plane graph N_D = (V, E, A) with ingress/egress port attributes,
// and the control-plane connection relation N_C ⊆ C × S.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"
#include "packet/packet.hpp"

namespace attain::topo {

/// Raised when a system model violates its invariants (|C| ≥ 1, |S| ≥ 1,
/// |H| ≥ 2, dangling references, duplicate names/ports, ...).
class ModelError : public std::runtime_error {
 public:
  explicit ModelError(const std::string& what) : std::runtime_error(what) {}
};

struct ControllerSpec {
  std::string name;            // "c1"
  pkt::Ipv4Address address;    // management address
  std::uint16_t listen_port{6633};
};

struct SwitchSpec {
  std::string name;  // "s1"
  std::uint64_t dpid{0};
  std::uint16_t num_ports{4};
  /// Disconnection policy: fail-secure drops table-miss packets while the
  /// controller is unreachable; fail-safe falls back to standalone L2
  /// learning (OVS fail_mode semantics, central to Table II).
  bool fail_secure{false};
};

struct HostSpec {
  std::string name;  // "h1"
  pkt::MacAddress mac;
  pkt::Ipv4Address ip;
};

/// An edge of N_D. Endpoint ports are the edge attributes A_{N_D}; hosts
/// have no port numbers, represented as std::nullopt (the paper's NULL).
struct LinkSpec {
  EntityId a;
  std::optional<std::uint16_t> a_port;
  EntityId b;
  std::optional<std::uint16_t> b_port;
};

/// An element of N_C: one controller-switch control-plane connection.
struct ControlConnSpec {
  ConnectionId id;
  /// Whether the connection uses TLS; selects Γ_TLS vs Γ_NoTLS in the
  /// attacker capabilities model (§IV-C).
  bool tls{false};
};

/// One hop of a data-plane path through a switch: enter on `in_port`,
/// leave on `out_port`.
struct PathHop {
  EntityId sw;
  std::uint16_t in_port{0};
  std::uint16_t out_port{0};
};

/// Immutable-after-validate description of the SDN under test. Built
/// programmatically or parsed from a system-model DSL file
/// (attain/dsl/parser.hpp).
class SystemModel {
 public:
  /// Adders return the assigned EntityId. Names must be unique across all
  /// entity kinds.
  EntityId add_controller(ControllerSpec spec);
  EntityId add_switch(SwitchSpec spec);
  EntityId add_host(HostSpec spec);

  /// Adds an undirected N_D edge. Ports must be within the switch's range
  /// and not already occupied; host endpoints take no port.
  void add_link(EntityId a, std::optional<std::uint16_t> a_port, EntityId b,
                std::optional<std::uint16_t> b_port);

  /// Adds an N_C connection (controller, switch).
  void add_control_connection(EntityId controller, EntityId sw, bool tls = false);

  /// Checks all invariants; throws ModelError on violation. Call once the
  /// model is fully populated.
  void validate() const;

  // -- lookups --
  const std::vector<ControllerSpec>& controllers() const { return controllers_; }
  const std::vector<SwitchSpec>& switches() const { return switches_; }
  const std::vector<HostSpec>& hosts() const { return hosts_; }
  const std::vector<LinkSpec>& links() const { return links_; }
  const std::vector<ControlConnSpec>& control_connections() const { return control_conns_; }

  const ControllerSpec& controller(EntityId id) const;
  const SwitchSpec& switch_at(EntityId id) const;
  const HostSpec& host(EntityId id) const;

  /// Resolves a name ("s2") to an id; std::nullopt if unknown.
  std::optional<EntityId> find(const std::string& name) const;
  /// Resolves or throws ModelError.
  EntityId require(const std::string& name) const;
  const std::string& name_of(EntityId id) const;

  /// Host lookup by address; std::nullopt if no host matches.
  std::optional<EntityId> host_by_ip(pkt::Ipv4Address ip) const;
  std::optional<EntityId> host_by_mac(pkt::MacAddress mac) const;

  /// The switch port a host attaches to; throws if the host is unattached.
  std::pair<EntityId, std::uint16_t> attachment_of(EntityId host) const;

  /// The entity (and its port) on the far side of switch `sw` port `port`;
  /// std::nullopt if the port is unwired.
  struct Peer {
    EntityId entity;
    std::optional<std::uint16_t> port;
  };
  std::optional<Peer> peer_of(EntityId sw, std::uint16_t port) const;

  /// BFS shortest path between two hosts: the switch-hop sequence with
  /// ingress/egress ports. Empty if unreachable. Used by the
  /// Floodlight-style controller's topology service.
  std::vector<PathHop> shortest_path(EntityId src_host, EntityId dst_host) const;

  bool has_control_connection(ConnectionId id) const;

 private:
  void check_new_name(const std::string& name) const;
  void check_port_free(EntityId sw, std::uint16_t port) const;
  void index_link_endpoint(EntityId entity, std::optional<std::uint16_t> port,
                           std::size_t link_index, EntityId peer);
  static std::uint64_t port_key(EntityId sw, std::uint16_t port) {
    return (static_cast<std::uint64_t>(sw.kind) << 48) |
           (static_cast<std::uint64_t>(sw.index) << 16) | port;
  }

  std::vector<ControllerSpec> controllers_;
  std::vector<SwitchSpec> switches_;
  std::vector<HostSpec> hosts_;
  std::vector<LinkSpec> links_;
  std::vector<ControlConnSpec> control_conns_;

  // Hash indices kept in lockstep with the vectors by the adders. Generated
  // topologies reach 10^5 hosts and links; the O(n)-scan lookups these
  // replace made model construction quadratic.
  std::unordered_map<std::string, EntityId> names_;
  std::unordered_map<std::uint64_t, std::size_t> wired_ports_;    // port_key -> link idx
  std::unordered_set<std::uint32_t> linked_hosts_;                // hosts on any link
  std::unordered_map<std::uint32_t, std::size_t> host_attach_;    // host -> switch link idx
  std::unordered_map<std::uint32_t, std::uint32_t> hosts_by_ip_;  // ip -> host idx
  std::unordered_map<std::uint64_t, std::uint32_t> hosts_by_mac_;
  std::unordered_set<std::uint64_t> control_conn_keys_;  // (ctrl idx << 32) | sw idx
};

}  // namespace attain::topo
