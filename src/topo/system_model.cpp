#include "topo/system_model.hpp"

#include <algorithm>
#include <deque>
#include <map>

namespace attain::topo {

namespace {

std::string describe(EntityKind kind, std::uint32_t index) {
  return to_string(kind) + "#" + std::to_string(index);
}

std::uint64_t control_conn_key(ConnectionId id) {
  return (static_cast<std::uint64_t>(id.controller.index) << 32) | id.sw.index;
}

}  // namespace

void SystemModel::check_new_name(const std::string& name) const {
  if (find(name)) throw ModelError("duplicate entity name: " + name);
}

EntityId SystemModel::add_controller(ControllerSpec spec) {
  check_new_name(spec.name);
  const EntityId id{EntityKind::Controller, static_cast<std::uint32_t>(controllers_.size())};
  names_.emplace(spec.name, id);
  controllers_.push_back(std::move(spec));
  return id;
}

EntityId SystemModel::add_switch(SwitchSpec spec) {
  check_new_name(spec.name);
  const EntityId id{EntityKind::Switch, static_cast<std::uint32_t>(switches_.size())};
  names_.emplace(spec.name, id);
  switches_.push_back(std::move(spec));
  return id;
}

EntityId SystemModel::add_host(HostSpec spec) {
  check_new_name(spec.name);
  const EntityId id{EntityKind::Host, static_cast<std::uint32_t>(hosts_.size())};
  names_.emplace(spec.name, id);
  // First-added host wins on address clashes, matching the old linear scan;
  // validate() does not require address uniqueness, only lookups use it.
  hosts_by_ip_.emplace(spec.ip.value, id.index);
  hosts_by_mac_.emplace(spec.mac.to_u64(), id.index);
  hosts_.push_back(std::move(spec));
  return id;
}

void SystemModel::check_port_free(EntityId sw, std::uint16_t port) const {
  const SwitchSpec& spec = switch_at(sw);
  if (port == 0 || port > spec.num_ports) {
    throw ModelError("port " + std::to_string(port) + " out of range on " + spec.name);
  }
  if (wired_ports_.contains(port_key(sw, port))) {
    throw ModelError("port " + std::to_string(port) + " on " + spec.name + " already wired");
  }
}

void SystemModel::index_link_endpoint(EntityId entity, std::optional<std::uint16_t> port,
                                      std::size_t link_index, EntityId peer) {
  if (entity.kind == EntityKind::Switch) {
    wired_ports_.emplace(port_key(entity, *port), link_index);
  } else {
    linked_hosts_.insert(entity.index);
    if (peer.kind == EntityKind::Switch) host_attach_.emplace(entity.index, link_index);
  }
}

void SystemModel::add_link(EntityId a, std::optional<std::uint16_t> a_port, EntityId b,
                           std::optional<std::uint16_t> b_port) {
  auto check_endpoint = [this](EntityId id, const std::optional<std::uint16_t>& port) {
    if (id.kind == EntityKind::Controller) {
      throw ModelError("controllers are not part of the data plane graph");
    }
    if (id.kind == EntityKind::Switch) {
      if (!port) throw ModelError("switch link endpoints need a port");
      check_port_free(id, *port);
    } else {
      if (port) throw ModelError("host link endpoints take no port (NULL in N_D)");
      host(id);  // bounds check
      if (linked_hosts_.contains(id.index)) {
        throw ModelError("host " + name_of(id) + " is already attached");
      }
    }
  };
  check_endpoint(a, a_port);
  check_endpoint(b, b_port);
  if (a == b) throw ModelError("self-loop link on " + name_of(a));
  const std::size_t link_index = links_.size();
  links_.push_back(LinkSpec{a, a_port, b, b_port});
  index_link_endpoint(a, a_port, link_index, b);
  index_link_endpoint(b, b_port, link_index, a);
}

void SystemModel::add_control_connection(EntityId controller, EntityId sw, bool tls) {
  if (controller.kind != EntityKind::Controller || sw.kind != EntityKind::Switch) {
    throw ModelError("control connections are (controller, switch) pairs");
  }
  this->controller(controller);  // bounds checks
  switch_at(sw);
  const ConnectionId id{controller, sw};
  if (has_control_connection(id)) {
    throw ModelError("duplicate control connection (" + name_of(controller) + "," + name_of(sw) +
                     ")");
  }
  control_conn_keys_.insert(control_conn_key(id));
  control_conns_.push_back(ControlConnSpec{id, tls});
}

void SystemModel::validate() const {
  if (controllers_.empty()) throw ModelError("|C| >= 1 violated: no controllers");
  if (switches_.empty()) throw ModelError("|S| >= 1 violated: no switches");
  if (hosts_.size() < 2) throw ModelError("|H| >= 2 violated: fewer than two hosts");
  // Every switch must appear in at least one control connection, else it can
  // never receive forwarding state.
  std::unordered_set<std::uint32_t> connected_switches;
  for (const ControlConnSpec& c : control_conns_) connected_switches.insert(c.id.sw.index);
  for (std::uint32_t i = 0; i < switches_.size(); ++i) {
    if (!connected_switches.contains(i)) {
      throw ModelError("switch " + switches_[i].name + " has no control-plane connection");
    }
  }
  // Every host must be attached to exactly one switch.
  for (std::uint32_t i = 0; i < hosts_.size(); ++i) {
    attachment_of(EntityId{EntityKind::Host, i});
  }
  // dpids must be unique (they identify switches during the handshake).
  std::unordered_map<std::uint64_t, std::size_t> dpids;
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    const auto [it, inserted] = dpids.emplace(switches_[i].dpid, i);
    if (!inserted) {
      throw ModelError("duplicate dpid between " + switches_[it->second].name + " and " +
                       switches_[i].name);
    }
  }
}

const ControllerSpec& SystemModel::controller(EntityId id) const {
  if (id.kind != EntityKind::Controller || id.index >= controllers_.size()) {
    throw ModelError("no such controller: " + describe(id.kind, id.index));
  }
  return controllers_[id.index];
}

const SwitchSpec& SystemModel::switch_at(EntityId id) const {
  if (id.kind != EntityKind::Switch || id.index >= switches_.size()) {
    throw ModelError("no such switch: " + describe(id.kind, id.index));
  }
  return switches_[id.index];
}

const HostSpec& SystemModel::host(EntityId id) const {
  if (id.kind != EntityKind::Host || id.index >= hosts_.size()) {
    throw ModelError("no such host: " + describe(id.kind, id.index));
  }
  return hosts_[id.index];
}

std::optional<EntityId> SystemModel::find(const std::string& name) const {
  const auto it = names_.find(name);
  if (it == names_.end()) return std::nullopt;
  return it->second;
}

EntityId SystemModel::require(const std::string& name) const {
  const auto id = find(name);
  if (!id) throw ModelError("unknown entity: " + name);
  return *id;
}

const std::string& SystemModel::name_of(EntityId id) const {
  switch (id.kind) {
    case EntityKind::Controller: return controller(id).name;
    case EntityKind::Switch: return switch_at(id).name;
    case EntityKind::Host: return host(id).name;
  }
  throw ModelError("bad entity kind");
}

std::optional<EntityId> SystemModel::host_by_ip(pkt::Ipv4Address ip) const {
  const auto it = hosts_by_ip_.find(ip.value);
  if (it == hosts_by_ip_.end()) return std::nullopt;
  return EntityId{EntityKind::Host, it->second};
}

std::optional<EntityId> SystemModel::host_by_mac(pkt::MacAddress mac) const {
  const auto it = hosts_by_mac_.find(mac.to_u64());
  if (it == hosts_by_mac_.end()) return std::nullopt;
  return EntityId{EntityKind::Host, it->second};
}

std::pair<EntityId, std::uint16_t> SystemModel::attachment_of(EntityId host_id) const {
  host(host_id);
  const auto it = host_attach_.find(host_id.index);
  if (it == host_attach_.end()) {
    throw ModelError("host " + name_of(host_id) + " is not attached to any switch");
  }
  const LinkSpec& link = links_[it->second];
  if (link.a == host_id) return {link.b, link.b_port.value()};
  return {link.a, link.a_port.value()};
}

std::optional<SystemModel::Peer> SystemModel::peer_of(EntityId sw, std::uint16_t port) const {
  const auto it = wired_ports_.find(port_key(sw, port));
  if (it == wired_ports_.end()) return std::nullopt;
  const LinkSpec& link = links_[it->second];
  if (link.a == sw && link.a_port == port) return Peer{link.b, link.b_port};
  return Peer{link.a, link.a_port};
}

std::vector<PathHop> SystemModel::shortest_path(EntityId src_host, EntityId dst_host) const {
  const auto [first_sw, first_port] = attachment_of(src_host);
  const auto [last_sw, last_port] = attachment_of(dst_host);

  // BFS over switches; reconstruct (in_port, out_port) per hop.
  struct Visit {
    EntityId prev_sw;
    std::uint16_t prev_out_port;  // port on prev_sw toward this switch
    std::uint16_t in_port;        // port on this switch where traffic enters
  };
  std::map<EntityId, Visit> visited;
  visited[first_sw] = Visit{first_sw, 0, first_port};
  std::deque<EntityId> frontier{first_sw};
  while (!frontier.empty()) {
    const EntityId sw = frontier.front();
    frontier.pop_front();
    if (sw == last_sw) break;
    const SwitchSpec& spec = switch_at(sw);
    for (std::uint16_t port = 1; port <= spec.num_ports; ++port) {
      const auto peer = peer_of(sw, port);
      if (!peer || peer->entity.kind != EntityKind::Switch) continue;
      if (visited.contains(peer->entity)) continue;
      visited[peer->entity] = Visit{sw, port, peer->port.value()};
      frontier.push_back(peer->entity);
    }
  }
  if (!visited.contains(last_sw)) return {};

  std::vector<PathHop> path;
  EntityId sw = last_sw;
  std::uint16_t out_port = last_port;
  while (true) {
    const Visit& v = visited.at(sw);
    path.push_back(PathHop{sw, v.in_port, out_port});
    if (sw == first_sw) break;
    out_port = v.prev_out_port;
    sw = v.prev_sw;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

bool SystemModel::has_control_connection(ConnectionId id) const {
  return control_conn_keys_.contains(control_conn_key(id));
}

}  // namespace attain::topo
