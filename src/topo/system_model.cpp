#include "topo/system_model.hpp"

#include <algorithm>
#include <deque>
#include <map>

namespace attain::topo {

namespace {

std::string describe(EntityKind kind, std::uint32_t index) {
  return to_string(kind) + "#" + std::to_string(index);
}

}  // namespace

void SystemModel::check_new_name(const std::string& name) const {
  if (find(name)) throw ModelError("duplicate entity name: " + name);
}

EntityId SystemModel::add_controller(ControllerSpec spec) {
  check_new_name(spec.name);
  const EntityId id{EntityKind::Controller, static_cast<std::uint32_t>(controllers_.size())};
  controllers_.push_back(std::move(spec));
  return id;
}

EntityId SystemModel::add_switch(SwitchSpec spec) {
  check_new_name(spec.name);
  const EntityId id{EntityKind::Switch, static_cast<std::uint32_t>(switches_.size())};
  switches_.push_back(std::move(spec));
  return id;
}

EntityId SystemModel::add_host(HostSpec spec) {
  check_new_name(spec.name);
  const EntityId id{EntityKind::Host, static_cast<std::uint32_t>(hosts_.size())};
  hosts_.push_back(std::move(spec));
  return id;
}

void SystemModel::check_port_free(EntityId sw, std::uint16_t port) const {
  const SwitchSpec& spec = switch_at(sw);
  if (port == 0 || port > spec.num_ports) {
    throw ModelError("port " + std::to_string(port) + " out of range on " + spec.name);
  }
  for (const LinkSpec& link : links_) {
    if ((link.a == sw && link.a_port == port) || (link.b == sw && link.b_port == port)) {
      throw ModelError("port " + std::to_string(port) + " on " + spec.name + " already wired");
    }
  }
}

void SystemModel::add_link(EntityId a, std::optional<std::uint16_t> a_port, EntityId b,
                           std::optional<std::uint16_t> b_port) {
  auto check_endpoint = [this](EntityId id, const std::optional<std::uint16_t>& port) {
    if (id.kind == EntityKind::Controller) {
      throw ModelError("controllers are not part of the data plane graph");
    }
    if (id.kind == EntityKind::Switch) {
      if (!port) throw ModelError("switch link endpoints need a port");
      check_port_free(id, *port);
    } else {
      if (port) throw ModelError("host link endpoints take no port (NULL in N_D)");
      host(id);  // bounds check
      for (const LinkSpec& link : links_) {
        if (link.a == id || link.b == id) {
          throw ModelError("host " + name_of(id) + " is already attached");
        }
      }
    }
  };
  check_endpoint(a, a_port);
  check_endpoint(b, b_port);
  if (a == b) throw ModelError("self-loop link on " + name_of(a));
  links_.push_back(LinkSpec{a, a_port, b, b_port});
}

void SystemModel::add_control_connection(EntityId controller, EntityId sw, bool tls) {
  if (controller.kind != EntityKind::Controller || sw.kind != EntityKind::Switch) {
    throw ModelError("control connections are (controller, switch) pairs");
  }
  this->controller(controller);  // bounds checks
  switch_at(sw);
  const ConnectionId id{controller, sw};
  if (has_control_connection(id)) {
    throw ModelError("duplicate control connection (" + name_of(controller) + "," + name_of(sw) +
                     ")");
  }
  control_conns_.push_back(ControlConnSpec{id, tls});
}

void SystemModel::validate() const {
  if (controllers_.empty()) throw ModelError("|C| >= 1 violated: no controllers");
  if (switches_.empty()) throw ModelError("|S| >= 1 violated: no switches");
  if (hosts_.size() < 2) throw ModelError("|H| >= 2 violated: fewer than two hosts");
  // Every switch must appear in at least one control connection, else it can
  // never receive forwarding state.
  for (std::uint32_t i = 0; i < switches_.size(); ++i) {
    const EntityId sw{EntityKind::Switch, i};
    const bool connected =
        std::any_of(control_conns_.begin(), control_conns_.end(),
                    [&](const ControlConnSpec& c) { return c.id.sw == sw; });
    if (!connected) {
      throw ModelError("switch " + switches_[i].name + " has no control-plane connection");
    }
  }
  // Every host must be attached to exactly one switch.
  for (std::uint32_t i = 0; i < hosts_.size(); ++i) {
    attachment_of(EntityId{EntityKind::Host, i});
  }
  // dpids must be unique (they identify switches during the handshake).
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    for (std::size_t j = i + 1; j < switches_.size(); ++j) {
      if (switches_[i].dpid == switches_[j].dpid) {
        throw ModelError("duplicate dpid between " + switches_[i].name + " and " +
                         switches_[j].name);
      }
    }
  }
}

const ControllerSpec& SystemModel::controller(EntityId id) const {
  if (id.kind != EntityKind::Controller || id.index >= controllers_.size()) {
    throw ModelError("no such controller: " + describe(id.kind, id.index));
  }
  return controllers_[id.index];
}

const SwitchSpec& SystemModel::switch_at(EntityId id) const {
  if (id.kind != EntityKind::Switch || id.index >= switches_.size()) {
    throw ModelError("no such switch: " + describe(id.kind, id.index));
  }
  return switches_[id.index];
}

const HostSpec& SystemModel::host(EntityId id) const {
  if (id.kind != EntityKind::Host || id.index >= hosts_.size()) {
    throw ModelError("no such host: " + describe(id.kind, id.index));
  }
  return hosts_[id.index];
}

std::optional<EntityId> SystemModel::find(const std::string& name) const {
  for (std::uint32_t i = 0; i < controllers_.size(); ++i) {
    if (controllers_[i].name == name) return EntityId{EntityKind::Controller, i};
  }
  for (std::uint32_t i = 0; i < switches_.size(); ++i) {
    if (switches_[i].name == name) return EntityId{EntityKind::Switch, i};
  }
  for (std::uint32_t i = 0; i < hosts_.size(); ++i) {
    if (hosts_[i].name == name) return EntityId{EntityKind::Host, i};
  }
  return std::nullopt;
}

EntityId SystemModel::require(const std::string& name) const {
  const auto id = find(name);
  if (!id) throw ModelError("unknown entity: " + name);
  return *id;
}

const std::string& SystemModel::name_of(EntityId id) const {
  switch (id.kind) {
    case EntityKind::Controller: return controller(id).name;
    case EntityKind::Switch: return switch_at(id).name;
    case EntityKind::Host: return host(id).name;
  }
  throw ModelError("bad entity kind");
}

std::optional<EntityId> SystemModel::host_by_ip(pkt::Ipv4Address ip) const {
  for (std::uint32_t i = 0; i < hosts_.size(); ++i) {
    if (hosts_[i].ip == ip) return EntityId{EntityKind::Host, i};
  }
  return std::nullopt;
}

std::optional<EntityId> SystemModel::host_by_mac(pkt::MacAddress mac) const {
  for (std::uint32_t i = 0; i < hosts_.size(); ++i) {
    if (hosts_[i].mac == mac) return EntityId{EntityKind::Host, i};
  }
  return std::nullopt;
}

std::pair<EntityId, std::uint16_t> SystemModel::attachment_of(EntityId host_id) const {
  host(host_id);
  for (const LinkSpec& link : links_) {
    if (link.a == host_id && link.b.kind == EntityKind::Switch) {
      return {link.b, link.b_port.value()};
    }
    if (link.b == host_id && link.a.kind == EntityKind::Switch) {
      return {link.a, link.a_port.value()};
    }
  }
  throw ModelError("host " + name_of(host_id) + " is not attached to any switch");
}

std::optional<SystemModel::Peer> SystemModel::peer_of(EntityId sw, std::uint16_t port) const {
  for (const LinkSpec& link : links_) {
    if (link.a == sw && link.a_port == port) return Peer{link.b, link.b_port};
    if (link.b == sw && link.b_port == port) return Peer{link.a, link.a_port};
  }
  return std::nullopt;
}

std::vector<PathHop> SystemModel::shortest_path(EntityId src_host, EntityId dst_host) const {
  const auto [first_sw, first_port] = attachment_of(src_host);
  const auto [last_sw, last_port] = attachment_of(dst_host);

  // BFS over switches; reconstruct (in_port, out_port) per hop.
  struct Visit {
    EntityId prev_sw;
    std::uint16_t prev_out_port;  // port on prev_sw toward this switch
    std::uint16_t in_port;        // port on this switch where traffic enters
  };
  std::map<EntityId, Visit> visited;
  visited[first_sw] = Visit{first_sw, 0, first_port};
  std::deque<EntityId> frontier{first_sw};
  while (!frontier.empty()) {
    const EntityId sw = frontier.front();
    frontier.pop_front();
    if (sw == last_sw) break;
    const SwitchSpec& spec = switch_at(sw);
    for (std::uint16_t port = 1; port <= spec.num_ports; ++port) {
      const auto peer = peer_of(sw, port);
      if (!peer || peer->entity.kind != EntityKind::Switch) continue;
      if (visited.contains(peer->entity)) continue;
      visited[peer->entity] = Visit{sw, port, peer->port.value()};
      frontier.push_back(peer->entity);
    }
  }
  if (!visited.contains(last_sw)) return {};

  std::vector<PathHop> path;
  EntityId sw = last_sw;
  std::uint16_t out_port = last_port;
  while (true) {
    const Visit& v = visited.at(sw);
    path.push_back(PathHop{sw, v.in_port, out_port});
    if (sw == first_sw) break;
    out_port = v.prev_out_port;
    sw = v.prev_sw;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

bool SystemModel::has_control_connection(ConnectionId id) const {
  return std::any_of(control_conns_.begin(), control_conns_.end(),
                     [&](const ControlConnSpec& c) { return c.id == id; });
}

}  // namespace attain::topo
