#include "topo/generators.hpp"

#include <cctype>
#include <map>
#include <stdexcept>

namespace attain::topo {

std::string to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::Enterprise: return "enterprise";
    case TopologyKind::FatTree: return "fat-tree";
    case TopologyKind::LeafSpine: return "leaf-spine";
  }
  return "?";
}

TopologySpec TopologySpec::enterprise() { return TopologySpec{}; }

TopologySpec TopologySpec::fat_tree(std::uint32_t k) {
  TopologySpec spec;
  spec.kind = TopologyKind::FatTree;
  spec.k = k;
  spec.check();
  return spec;
}

TopologySpec TopologySpec::leaf_spine(std::uint32_t spines, std::uint32_t leaves,
                                      std::uint32_t hosts_per_leaf) {
  TopologySpec spec;
  spec.kind = TopologyKind::LeafSpine;
  spec.spines = spines;
  spec.leaves = leaves;
  spec.hosts_per_leaf = hosts_per_leaf;
  spec.check();
  return spec;
}

void TopologySpec::check() const {
  switch (kind) {
    case TopologyKind::Enterprise: return;
    case TopologyKind::FatTree:
      if (k < 2 || k > 64 || k % 2 != 0) {
        throw std::invalid_argument("fat-tree arity k must be even and in [2, 64], got " +
                                    std::to_string(k));
      }
      return;
    case TopologyKind::LeafSpine:
      if (spines == 0 || leaves == 0 || hosts_per_leaf == 0) {
        throw std::invalid_argument("leaf-spine axes must all be >= 1");
      }
      if (static_cast<std::uint64_t>(leaves) * hosts_per_leaf < 2) {
        throw std::invalid_argument("leaf-spine needs at least two hosts (|H| >= 2)");
      }
      // Port numbers are uint16 and host addresses pack into 32 bits.
      if (spines > 4096 || leaves > 4096 ||
          static_cast<std::uint64_t>(spines) + hosts_per_leaf > 65535 ||
          static_cast<std::uint64_t>(leaves) * hosts_per_leaf > (1u << 24) - 2) {
        throw std::invalid_argument("leaf-spine shape exceeds addressing limits");
      }
      return;
  }
  throw std::invalid_argument("bad topology kind");
}

std::size_t TopologySpec::switch_count() const {
  switch (kind) {
    case TopologyKind::Enterprise: return 4;
    case TopologyKind::FatTree: {
      const std::size_t half = k / 2;
      return half * half + static_cast<std::size_t>(k) * k;  // cores + k pods x k switches
    }
    case TopologyKind::LeafSpine: return static_cast<std::size_t>(spines) + leaves;
  }
  return 0;
}

std::size_t TopologySpec::host_count() const {
  switch (kind) {
    case TopologyKind::Enterprise: return 6;
    case TopologyKind::FatTree: return static_cast<std::size_t>(k) * k * k / 4;
    case TopologyKind::LeafSpine: return static_cast<std::size_t>(leaves) * hosts_per_leaf;
  }
  return 0;
}

std::size_t TopologySpec::link_count() const {
  switch (kind) {
    case TopologyKind::Enterprise: return 9;
    case TopologyKind::FatTree: return 3 * (static_cast<std::size_t>(k) * k * k / 4);
    case TopologyKind::LeafSpine:
      return static_cast<std::size_t>(spines) * leaves +
             static_cast<std::size_t>(leaves) * hosts_per_leaf;
  }
  return 0;
}

std::string TopologySpec::id() const {
  switch (kind) {
    case TopologyKind::Enterprise: return "enterprise";
    case TopologyKind::FatTree: return "fat-tree/k" + std::to_string(k);
    case TopologyKind::LeafSpine:
      return "leaf-spine/" + std::to_string(spines) + "x" + std::to_string(leaves) + "x" +
             std::to_string(hosts_per_leaf);
  }
  return "?";
}

void TopologySpec::write_json(JsonWriter& out) const {
  out.begin_object();
  out.field("kind", to_string(kind));
  switch (kind) {
    case TopologyKind::Enterprise: break;
    case TopologyKind::FatTree: out.field("k", static_cast<std::uint64_t>(k)); break;
    case TopologyKind::LeafSpine:
      out.field("spines", static_cast<std::uint64_t>(spines));
      out.field("leaves", static_cast<std::uint64_t>(leaves));
      out.field("hosts_per_leaf", static_cast<std::uint64_t>(hosts_per_leaf));
      break;
  }
  out.end_object();
}

std::string TopologySpec::to_json() const {
  JsonWriter out;
  write_json(out);
  return out.str();
}

namespace {

// Scanner for the flat {"key": value, ...} objects write_json() emits.
// Values are quoted strings (no escapes needed for our slugs) or unsigned
// integers.
class FlatObjectScanner {
 public:
  explicit FlatObjectScanner(const std::string& text) : text_(text) {}

  void parse() {
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      const std::string key = string_token();
      skip_ws();
      expect(':');
      skip_ws();
      if (peek() == '"') {
        strings_[key] = string_token();
      } else {
        numbers_[key] = number_token();
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        skip_ws();
        continue;
      }
      expect('}');
      return;
    }
  }

  std::string string_field(const std::string& key) const {
    const auto it = strings_.find(key);
    if (it == strings_.end()) fail("missing string field \"" + key + "\"");
    return it->second;
  }

  std::uint64_t number_field(const std::string& key) const {
    const auto it = numbers_.find(key);
    if (it == numbers_.end()) fail("missing numeric field \"" + key + "\"");
    return it->second;
  }

 private:
  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }
  std::string string_token() {
    expect('"');
    std::string out;
    while (peek() != '"') out.push_back(text_[pos_++]);
    ++pos_;
    return out;
  }
  std::uint64_t number_token() {
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("expected a number");
    std::uint64_t v = 0;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      v = v * 10 + static_cast<std::uint64_t>(text_[pos_++] - '0');
    }
    return v;
  }
  [[noreturn]] static void fail(const std::string& what) {
    throw std::invalid_argument("TopologySpec JSON: " + what);
  }

  const std::string& text_;
  std::size_t pos_{0};
  std::map<std::string, std::string> strings_;
  std::map<std::string, std::uint64_t> numbers_;
};

std::uint32_t narrow_u32(std::uint64_t v, const char* what) {
  if (v > 0xffffffffull) {
    throw std::invalid_argument(std::string("TopologySpec JSON: ") + what + " out of range");
  }
  return static_cast<std::uint32_t>(v);
}

}  // namespace

TopologySpec TopologySpec::from_json(const std::string& text) {
  FlatObjectScanner scan(text);
  scan.parse();
  const std::string kind = scan.string_field("kind");
  if (kind == "enterprise") return enterprise();
  if (kind == "fat-tree") return fat_tree(narrow_u32(scan.number_field("k"), "k"));
  if (kind == "leaf-spine") {
    return leaf_spine(narrow_u32(scan.number_field("spines"), "spines"),
                      narrow_u32(scan.number_field("leaves"), "leaves"),
                      narrow_u32(scan.number_field("hosts_per_leaf"), "hosts_per_leaf"));
  }
  throw std::invalid_argument("TopologySpec JSON: unknown kind \"" + kind + "\"");
}

namespace {

// The Fig. 8 enterprise net, moved here verbatim from scenario/enterprise.cpp
// so scenario::make_enterprise_model() and build_model(enterprise()) are one
// code path. The chokepoint switch is s2 (the DMZ firewall).
SystemModel build_enterprise(const BuildOptions& options) {
  SystemModel model;

  const EntityId c1 = model.add_controller(
      ControllerSpec{"c1", pkt::Ipv4Address::parse("10.0.100.1"), 6633});

  auto add_switch = [&](const std::string& name, std::uint64_t dpid, bool fail_secure) {
    SwitchSpec spec;
    spec.name = name;
    spec.dpid = dpid;
    spec.num_ports = 4;
    spec.fail_secure = fail_secure;
    return model.add_switch(std::move(spec));
  };
  const EntityId s1 = add_switch("s1", 1, options.others_fail_secure);
  const EntityId s2 = add_switch("s2", 2, options.chokepoint_fail_secure);
  const EntityId s3 = add_switch("s3", 3, options.others_fail_secure);
  const EntityId s4 = add_switch("s4", 4, options.others_fail_secure);

  auto add_host = [&](const std::string& name, unsigned n) {
    HostSpec spec;
    spec.name = name;
    spec.mac = pkt::MacAddress::from_u64(n);
    spec.ip = pkt::Ipv4Address::parse("10.0.0." + std::to_string(n));
    return model.add_host(std::move(spec));
  };
  const EntityId h1 = add_host("h1", 1);
  const EntityId h2 = add_host("h2", 2);
  const EntityId h3 = add_host("h3", 3);
  const EntityId h4 = add_host("h4", 4);
  const EntityId h5 = add_host("h5", 5);
  const EntityId h6 = add_host("h6", 6);

  model.add_link(h1, std::nullopt, s1, 1);
  model.add_link(h2, std::nullopt, s1, 2);
  model.add_link(s1, 3, s2, 1);
  model.add_link(s2, 2, s3, 1);
  model.add_link(h3, std::nullopt, s3, 2);
  model.add_link(h4, std::nullopt, s3, 3);
  model.add_link(s3, 4, s4, 1);
  model.add_link(h5, std::nullopt, s4, 2);
  model.add_link(h6, std::nullopt, s4, 3);

  for (const EntityId sw : {s1, s2, s3, s4}) {
    model.add_control_connection(c1, sw, options.tls);
  }
  return model;
}

// Canonical k-ary fat-tree (Al-Fares et al.): (k/2)^2 core switches, k pods
// of k/2 aggregation + k/2 edge switches, k/2 hosts per edge switch. Every
// switch has exactly k ports. Deterministic naming and dpid layout:
//   core cs{c}      dpid (1<<24) | (c+1)
//   agg  as{p}_{a}  dpid (2<<24) | (p<<12) | (a+1)
//   edge es{p}_{e}  dpid (3<<24) | (p<<12) | (e+1)
//   host h{p}_{e}_{j}  ip 10.p.e.(j+2), mac = from_u64(ip)
SystemModel build_fat_tree(std::uint32_t k, const BuildOptions& options) {
  const std::uint32_t half = k / 2;
  SystemModel model;
  const EntityId c1 = model.add_controller(
      ControllerSpec{"c1", pkt::Ipv4Address::parse("10.0.100.1"), 6633});

  auto add_switch = [&](std::string name, std::uint64_t dpid, bool fail_secure) {
    SwitchSpec spec;
    spec.name = std::move(name);
    spec.dpid = dpid;
    spec.num_ports = static_cast<std::uint16_t>(k);
    spec.fail_secure = fail_secure;
    return model.add_switch(std::move(spec));
  };

  std::vector<EntityId> cores;
  cores.reserve(static_cast<std::size_t>(half) * half);
  for (std::uint32_t c = 0; c < half * half; ++c) {
    const bool secure = (c == 0) ? options.chokepoint_fail_secure : options.others_fail_secure;
    cores.push_back(add_switch("cs" + std::to_string(c), (1ull << 24) | (c + 1), secure));
  }

  std::vector<std::vector<EntityId>> aggs(k), edges(k);
  for (std::uint32_t p = 0; p < k; ++p) {
    for (std::uint32_t a = 0; a < half; ++a) {
      aggs[p].push_back(add_switch("as" + std::to_string(p) + "_" + std::to_string(a),
                                   (2ull << 24) | (static_cast<std::uint64_t>(p) << 12) | (a + 1),
                                   options.others_fail_secure));
    }
    for (std::uint32_t e = 0; e < half; ++e) {
      edges[p].push_back(add_switch("es" + std::to_string(p) + "_" + std::to_string(e),
                                    (3ull << 24) | (static_cast<std::uint64_t>(p) << 12) | (e + 1),
                                    options.others_fail_secure));
    }
  }

  // Hosts: edge switch (p, e) serves ports 1..k/2 with hosts h{p}_{e}_{j}.
  for (std::uint32_t p = 0; p < k; ++p) {
    for (std::uint32_t e = 0; e < half; ++e) {
      for (std::uint32_t j = 0; j < half; ++j) {
        const std::uint32_t ip =
            (10u << 24) | (p << 16) | (e << 8) | (j + 2);
        HostSpec spec;
        spec.name = "h" + std::to_string(p) + "_" + std::to_string(e) + "_" + std::to_string(j);
        spec.ip = pkt::Ipv4Address{ip};
        spec.mac = pkt::MacAddress::from_u64(ip);
        const EntityId host = model.add_host(std::move(spec));
        model.add_link(host, std::nullopt, edges[p][e], static_cast<std::uint16_t>(j + 1));
      }
    }
  }

  // Edge uplinks: edge (p, e) port k/2+a+1 <-> agg (p, a) port e+1.
  for (std::uint32_t p = 0; p < k; ++p) {
    for (std::uint32_t e = 0; e < half; ++e) {
      for (std::uint32_t a = 0; a < half; ++a) {
        model.add_link(edges[p][e], static_cast<std::uint16_t>(half + a + 1), aggs[p][a],
                       static_cast<std::uint16_t>(e + 1));
      }
    }
  }

  // Core links: agg (p, a) port k/2+j+1 <-> core (a*k/2 + j) port p+1.
  for (std::uint32_t p = 0; p < k; ++p) {
    for (std::uint32_t a = 0; a < half; ++a) {
      for (std::uint32_t j = 0; j < half; ++j) {
        model.add_link(aggs[p][a], static_cast<std::uint16_t>(half + j + 1),
                       cores[a * half + j], static_cast<std::uint16_t>(p + 1));
      }
    }
  }

  for (const EntityId core : cores) model.add_control_connection(c1, core, options.tls);
  for (std::uint32_t p = 0; p < k; ++p) {
    for (const EntityId sw : aggs[p]) model.add_control_connection(c1, sw, options.tls);
    for (const EntityId sw : edges[p]) model.add_control_connection(c1, sw, options.tls);
  }
  return model;
}

// Two-tier leaf-spine fabric: full bipartite spine <-> leaf mesh, H hosts
// per leaf. Leaf ports 1..S go to spines, S+1..S+H to hosts.
//   spine sp{i}  dpid (4<<24) | (i+1), L ports
//   leaf  lf{j}  dpid (5<<24) | (j+1), S+H ports
//   host  h{j}_{m}  ip 10.x.y.z = 0x0a000000 + (j*H + m) + 1, mac from_u64(ip)
SystemModel build_leaf_spine(std::uint32_t spines, std::uint32_t leaves,
                             std::uint32_t hosts_per_leaf, const BuildOptions& options) {
  SystemModel model;
  const EntityId c1 = model.add_controller(
      ControllerSpec{"c1", pkt::Ipv4Address::parse("10.0.100.1"), 6633});

  std::vector<EntityId> spine_ids, leaf_ids;
  for (std::uint32_t i = 0; i < spines; ++i) {
    SwitchSpec spec;
    spec.name = "sp" + std::to_string(i);
    spec.dpid = (4ull << 24) | (i + 1);
    spec.num_ports = static_cast<std::uint16_t>(leaves);
    spec.fail_secure = (i == 0) ? options.chokepoint_fail_secure : options.others_fail_secure;
    spine_ids.push_back(model.add_switch(std::move(spec)));
  }
  for (std::uint32_t j = 0; j < leaves; ++j) {
    SwitchSpec spec;
    spec.name = "lf" + std::to_string(j);
    spec.dpid = (5ull << 24) | (j + 1);
    spec.num_ports = static_cast<std::uint16_t>(spines + hosts_per_leaf);
    spec.fail_secure = options.others_fail_secure;
    leaf_ids.push_back(model.add_switch(std::move(spec)));
  }

  for (std::uint32_t j = 0; j < leaves; ++j) {
    for (std::uint32_t i = 0; i < spines; ++i) {
      model.add_link(leaf_ids[j], static_cast<std::uint16_t>(i + 1), spine_ids[i],
                     static_cast<std::uint16_t>(j + 1));
    }
  }

  for (std::uint32_t j = 0; j < leaves; ++j) {
    for (std::uint32_t m = 0; m < hosts_per_leaf; ++m) {
      const std::uint32_t ip =
          0x0a000000u + static_cast<std::uint32_t>(j) * hosts_per_leaf + m + 1;
      HostSpec spec;
      spec.name = "h" + std::to_string(j) + "_" + std::to_string(m);
      spec.ip = pkt::Ipv4Address{ip};
      spec.mac = pkt::MacAddress::from_u64(ip);
      const EntityId host = model.add_host(std::move(spec));
      model.add_link(host, std::nullopt, leaf_ids[j],
                     static_cast<std::uint16_t>(spines + m + 1));
    }
  }

  for (const EntityId sw : spine_ids) model.add_control_connection(c1, sw, options.tls);
  for (const EntityId sw : leaf_ids) model.add_control_connection(c1, sw, options.tls);
  return model;
}

}  // namespace

SystemModel build_model(const TopologySpec& spec, const BuildOptions& options) {
  spec.check();
  SystemModel model;
  switch (spec.kind) {
    case TopologyKind::Enterprise: model = build_enterprise(options); break;
    case TopologyKind::FatTree: model = build_fat_tree(spec.k, options); break;
    case TopologyKind::LeafSpine:
      model = build_leaf_spine(spec.spines, spec.leaves, spec.hosts_per_leaf, options);
      break;
  }
  model.validate();
  return model;
}

}  // namespace attain::topo
