#include "snap/wire.hpp"

#include <array>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>

#include <cerrno>
#define ATTAIN_WIRE_POSIX 1
#endif

namespace attain::snap::wire {

#if defined(ATTAIN_WIRE_POSIX)

bool write_exact(int fd, std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_frame(int fd, std::span<const std::uint8_t> payload) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const std::array<std::uint8_t, 4> header{
      static_cast<std::uint8_t>(len >> 24), static_cast<std::uint8_t>(len >> 16),
      static_cast<std::uint8_t>(len >> 8), static_cast<std::uint8_t>(len)};
  return write_exact(fd, header) && write_exact(fd, payload);
}

namespace {

/// Reads exactly n bytes. Returns the count actually read: n on success,
/// less when the stream ended or errored first.
std::size_t read_exact(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t got = ::read(fd, buf + off, n - off);
    if (got < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (got == 0) break;
    off += static_cast<std::size_t>(got);
  }
  return off;
}

}  // namespace

FrameStatus read_frame(int fd, Bytes& out, std::size_t max_payload) {
  std::array<std::uint8_t, 4> header;
  const std::size_t got = read_exact(fd, header.data(), header.size());
  if (got == 0) return FrameStatus::Eof;
  if (got != header.size()) return FrameStatus::Error;
  const std::uint32_t len = (static_cast<std::uint32_t>(header[0]) << 24) |
                            (static_cast<std::uint32_t>(header[1]) << 16) |
                            (static_cast<std::uint32_t>(header[2]) << 8) |
                            static_cast<std::uint32_t>(header[3]);
  if (len > max_payload) return FrameStatus::Error;
  out.resize(len);
  if (read_exact(fd, out.data(), len) != len) return FrameStatus::Error;
  return FrameStatus::Ok;
}

Bytes read_stream(int fd) {
  Bytes data;
  std::array<std::uint8_t, 4096> buf;
  for (;;) {
    const ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    data.insert(data.end(), buf.begin(), buf.begin() + n);
  }
  return data;
}

#else  // !ATTAIN_WIRE_POSIX

bool write_exact(int, std::span<const std::uint8_t>) { return false; }
bool write_frame(int, std::span<const std::uint8_t>) { return false; }
FrameStatus read_frame(int, Bytes&, std::size_t) { return FrameStatus::Error; }
Bytes read_stream(int) { return {}; }

#endif

Bytes seal(ByteWriter&& body_writer) {
  Bytes body = std::move(body_writer).take();
  const std::uint64_t digest = fnv1a64(body);
  ByteWriter sealed;
  sealed.reserve(body.size() + 8);
  sealed.raw(body);
  sealed.u64(digest);
  return std::move(sealed).take();
}

bool unseal(const Bytes& payload, std::span<const std::uint8_t>& body) {
  if (payload.size() < 8) return false;
  body = {payload.data(), payload.size() - 8};
  ByteReader tail({payload.data() + payload.size() - 8, 8});
  return tail.u64() == fnv1a64(body);
}

}  // namespace attain::snap::wire
