// EINTR-safe pipe I/O and length-prefixed framing: the wire layer under
// both process-boundary protocols in the repository — the snapshot fork's
// one-blob-per-pipe result shipping (snap/snapshot.cpp) and the distributed
// campaign runner's multiplexed task/result streams (sweep/distributed.*).
//
// A frame is a big-endian u32 payload length followed by the payload
// bytes. Result frames additionally end in an fnv1a64 digest of the
// payload (appended by the *sender* inside the payload it frames — see
// sweep/distributed.cpp), so a corrupted frame is distinguishable from a
// merely short read. The framing itself only guarantees message
// boundaries; Eof at a frame boundary is a clean shutdown, anything else
// (partial header, partial payload, oversize length) is Error.
#pragma once

#include <cstdint>
#include <span>

#include "common/bytes.hpp"

namespace attain::snap::wire {

/// Upper bound on one frame's payload. Far above any real result blob
/// (the largest RunResult encodings are a few KiB); a length beyond this
/// is treated as stream corruption, not an allocation request.
inline constexpr std::size_t kMaxFramePayload = 64u << 20;

/// Writes all of `data`, retrying on EINTR. Returns false when the write
/// fails for any other reason (EPIPE after the reader died, EBADF, ...);
/// the caller treats the peer as gone.
bool write_exact(int fd, std::span<const std::uint8_t> data);

/// Writes one length-prefixed frame. Returns false when the peer is gone.
bool write_frame(int fd, std::span<const std::uint8_t> payload);

enum class FrameStatus {
  Ok,     // one whole frame read into `out`
  Eof,    // clean end of stream at a frame boundary
  Error,  // truncated mid-frame, oversize length, or read failure
};

/// Reads one frame. Blocking; retries EINTR. `out` is overwritten on Ok
/// and unspecified otherwise.
FrameStatus read_frame(int fd, Bytes& out, std::size_t max_payload = kMaxFramePayload);

/// Reads the stream to EOF (the snapshot tail protocol: one blob per
/// pipe, delimited by the writer closing its end).
Bytes read_stream(int fd);

/// Seals a frame body for integrity checking: returns body || fnv1a64(body).
/// A sealed payload distinguishes "frame arrived whole" (the framing
/// layer) from "frame content is what the sender wrote" — the journal and
/// the distributed result stream both require the latter.
Bytes seal(ByteWriter&& body);

/// Verifies and strips a sealed payload's trailing digest. On success
/// `body` views the payload's content bytes (aliasing `payload` — it must
/// outlive the view). Returns false on short payloads or digest mismatch.
bool unseal(const Bytes& payload, std::span<const std::uint8_t>& body);

}  // namespace attain::snap::wire
