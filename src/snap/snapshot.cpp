#include "snap/snapshot.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <numeric>

#include "snap/wire.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define ATTAIN_SNAP_POSIX 1
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#endif

#if defined(__SANITIZE_THREAD__)
#define ATTAIN_SNAP_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ATTAIN_SNAP_TSAN 1
#endif
#endif

namespace attain::snap {

namespace {

constexpr std::uint32_t kMagic = 0x534E4150;  // "SNAP"
constexpr std::uint8_t kVersion = 1;

/// Outcome blob a tail ships over its pipe: magic, version, ok flag, wall
/// seconds, error text, optional scenario::save_result payload.
Bytes encode_outcome(bool ok, const std::string& error, double wall,
                     const scenario::RunResult* result) {
  ByteWriter w;
  w.u32(kMagic);
  w.u8(kVersion);
  w.u8(ok ? 1 : 0);
  w.u64(std::bit_cast<std::uint64_t>(wall));
  w.u32(static_cast<std::uint32_t>(error.size()));
  w.raw({reinterpret_cast<const std::uint8_t*>(error.data()), error.size()});
  w.u8(result != nullptr ? 1 : 0);
  if (result != nullptr) scenario::save_result(*result, w);
  return std::move(w).take();
}

TailOutcome decode_outcome(const Bytes& blob) {
  TailOutcome out;
  try {
    ByteReader r(blob);
    if (r.u32() != kMagic || r.u8() != kVersion) return TailOutcome{};
    out.ok = r.u8() != 0;
    out.wall_seconds = std::bit_cast<double>(r.u64());
    const std::uint32_t len = r.u32();
    const auto err = r.view(len);
    out.error.assign(err.begin(), err.end());
    if (r.u8() != 0) out.result = scenario::load_result(r);
  } catch (const std::exception&) {
    return TailOutcome{};  // truncated/garbled blob: incomplete
  }
  out.completed = true;
  return out;
}

}  // namespace

bool fork_supported() {
#if !defined(ATTAIN_SNAP_POSIX)
  return false;
#elif defined(ATTAIN_SNAP_TSAN)
  return false;
#else
  return true;
#endif
}

#if defined(ATTAIN_SNAP_POSIX)

namespace {

void wait_pid(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
}

/// Tail process body: finish the cell, ship the outcome, and _exit without
/// running atexit handlers or flushing inherited stdio (the parent owns
/// the process-global state; under ASan, _exit also skips the leak check,
/// which is intentional for these short-lived forks).
[[noreturn]] void run_tail(scenario::WarmupPhase& phase, const scenario::RunSpec& cell, int fd) {
  Bytes blob;
  try {
    const auto t0 = std::chrono::steady_clock::now();
    const scenario::RunResultPtr result = phase.finish(cell);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    blob = encode_outcome(true, "", wall, result.get());
  } catch (const std::exception& e) {
    blob = encode_outcome(false, e.what(), 0.0, nullptr);
  } catch (...) {
    blob = encode_outcome(false, "unknown exception", 0.0, nullptr);
  }
  // A failed write means the reader is gone; the parent sees a truncated
  // blob and falls back to a cold run.
  wire::write_exact(fd, blob);
  ::close(fd);
  ::_exit(0);
}

/// Group child body: builds the shared warm-up once, advances monotonically
/// through the cells' fork times (cells_by_fork is sorted), and forks one
/// tail per cell at its fork point. Copy-on-write makes each fork free
/// until the tail's trajectory diverges. `write_fds` is parallel to
/// `cells_by_fork`; the read ends are already closed in this process.
[[noreturn]] void run_group_child(const scenario::RunSpec& rep,
                                  const std::vector<const scenario::RunSpec*>& cells_by_fork,
                                  const std::vector<int>& write_fds, int max_live) {
  std::vector<pid_t> live;
  try {
    const scenario::WarmupPhasePtr phase = scenario::warm_up(rep);
    for (std::size_t i = 0; i < cells_by_fork.size(); ++i) {
      phase->advance_to(scenario::fork_time(*cells_by_fork[i]));
      if (static_cast<int>(live.size()) >= max_live) {
        wait_pid(live.front());
        live.erase(live.begin());
      }
      std::fflush(nullptr);
      const pid_t pid = ::fork();
      if (pid == 0) {
        // Tail: drop the other cells' pipes (ours is the only write end
        // that may stay open, or their readers would never see EOF).
        for (std::size_t j = i + 1; j < write_fds.size(); ++j) ::close(write_fds[j]);
        run_tail(*phase, *cells_by_fork[i], write_fds[i]);
      }
      ::close(write_fds[i]);
      if (pid > 0) live.push_back(pid);
      // On fork failure the cell's pipe EOFs with no blob: the parent
      // falls back to a cold run.
    }
  } catch (...) {
    // Warm-up itself failed; every unforked cell EOFs and runs cold.
  }
  for (const pid_t pid : live) wait_pid(pid);
  ::_exit(0);
}

}  // namespace

std::vector<TailOutcome> run_group(const scenario::RunSpec& rep,
                                   const std::vector<scenario::RunSpec>& cells,
                                   const GroupOptions& options) {
  std::vector<TailOutcome> outcomes(cells.size());
  if (!fork_supported() || cells.empty()) return outcomes;

  // One pipe per cell, created up front so a partial failure can unwind.
  std::vector<std::array<int, 2>> pipes(cells.size(), {-1, -1});
  for (auto& p : pipes) {
    if (::pipe(p.data()) != 0) {
      for (const auto& q : pipes) {
        if (q[0] >= 0) ::close(q[0]);
        if (q[1] >= 0) ::close(q[1]);
      }
      return outcomes;
    }
  }

  // Fork-time order (stable, so equal fork times keep grid order): the
  // child advances once through the shared trajectory and peels tails off
  // as their fork points are reached.
  std::vector<std::size_t> order(cells.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scenario::fork_time(cells[a]) < scenario::fork_time(cells[b]);
  });
  std::vector<const scenario::RunSpec*> cells_by_fork;
  std::vector<int> write_fds;
  cells_by_fork.reserve(cells.size());
  write_fds.reserve(cells.size());
  for (const std::size_t k : order) {
    cells_by_fork.push_back(&cells[k]);
    write_fds.push_back(pipes[k][1]);
  }

  std::fflush(nullptr);
  const pid_t child = ::fork();
  if (child == 0) {
    for (const auto& p : pipes) ::close(p[0]);
    run_group_child(rep, cells_by_fork, write_fds, std::max(1, options.max_live_tails));
  }
  for (const auto& p : pipes) ::close(p[1]);
  if (child < 0) {
    for (const auto& p : pipes) ::close(p[0]);
    return outcomes;
  }
  // Sequential drain is deadlock-free: each tail writes one bounded blob
  // to its own pipe and blobs are far below the pipe buffer; no tail's
  // progress depends on another pipe being drained first.
  for (std::size_t k = 0; k < cells.size(); ++k) {
    const Bytes blob = wire::read_stream(pipes[k][0]);
    ::close(pipes[k][0]);
    if (!blob.empty()) outcomes[k] = decode_outcome(blob);
  }
  wait_pid(child);
  return outcomes;
}

#else  // !ATTAIN_SNAP_POSIX

std::vector<TailOutcome> run_group(const scenario::RunSpec& rep,
                                   const std::vector<scenario::RunSpec>& cells,
                                   const GroupOptions& options) {
  (void)rep;
  (void)options;
  return std::vector<TailOutcome>(cells.size());
}

#endif

}  // namespace attain::snap
