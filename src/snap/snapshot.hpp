// Copy-on-write testbed forking: runs a group of experiment cells that
// share one warm-up signature from a single shared prefix. The simulation
// state (scheduler event pool, switches, controller, channels, host apps)
// is riddled with closures capturing raw component pointers, so it cannot
// be deep-cloned generically — instead the snapshot is the operating
// system's copy-on-write fork(): a group child builds and advances the
// shared warm-up once, then forks one tail process per cell at that cell's
// fork point. Every address is preserved across fork, so the captured
// pointers stay valid, and pages are only copied as the diverging tails
// write to them.
//
// Because scenario::run() is itself implemented as warm_up + advance_to +
// finish (scenario/run.hpp), a forked tail executes the exact instruction
// sequence of a cold run — results are byte-identical by construction,
// which the differential tests in tests/test_snapshot.cpp verify over the
// full Table II and Fig. 11 grids.
#pragma once

#include <string>
#include <vector>

#include "scenario/run.hpp"

namespace attain::snap {

/// True when process-fork snapshots work here: a POSIX host, not running
/// under ThreadSanitizer (fork from a threaded parent is unreliable under
/// TSan). When false, run_group reports every cell incomplete and callers
/// fall back to cold runs.
bool fork_supported();

/// One forked cell's outcome as reported by its tail process.
struct TailOutcome {
  /// False when the tail never reported (fork/pipe failure, crashed
  /// child): infrastructure trouble, not a cell failure — the caller runs
  /// the cell cold and the attempt is not counted.
  bool completed{false};
  /// Valid when completed: whether the cell finished clean. When false,
  /// `error` carries the cell's exception text and the failure counts as a
  /// regular attempt (the same exception a cold run would have thrown).
  bool ok{false};
  std::string error;
  /// Tail wall-clock spent in finish(), as measured inside the tail.
  double wall_seconds{0.0};
  scenario::RunResultPtr result;
};

struct GroupOptions {
  /// Upper bound on concurrently live tail processes for one group.
  int max_live_tails{4};
};

/// Runs every cell of one warm-up group from a shared forked prefix.
/// `rep` must be the group's warmup_representative and every cell must
/// carry the same warmup_signature (and therefore a valid fork_time).
/// Outcomes are indexed like `cells`. Never throws for infrastructure
/// failures — affected cells simply come back incomplete.
std::vector<TailOutcome> run_group(const scenario::RunSpec& rep,
                                   const std::vector<scenario::RunSpec>& cells,
                                   const GroupOptions& options = {});

}  // namespace attain::snap
