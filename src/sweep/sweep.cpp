#include "sweep/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <map>
#include <mutex>
#include <thread>

#include "attain/monitor/metrics.hpp"
#include "common/arena.hpp"
#include "snap/snapshot.hpp"

namespace attain::sweep {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

std::string to_string(CellStatus status) {
  switch (status) {
    case CellStatus::Ok: return "ok";
    case CellStatus::Failed: return "failed";
    case CellStatus::TimedOut: return "timed-out";
  }
  return "?";
}

void CellOutcome::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("spec");
  spec.write_json(w);
  w.field("status", to_string(status));
  if (!error.empty()) w.field("error", error);
  w.key("result");
  if (result) {
    result->write_json(w);
  } else {
    w.null();
  }
  w.end_object();
}

std::function<void(const Progress&)> make_progress_printer() {
  return [](const Progress& p) {
    const CellOutcome& cell = *p.cell;
    std::fprintf(stderr, "[%zu/%zu] %s %s (wall %.2fs, virtual %.0fs)%s%s\n", p.completed,
                 p.total, cell.spec.id().c_str(), to_string(cell.status).c_str(),
                 cell.wall_seconds,
                 cell.result ? to_seconds(cell.result->virtual_time) : 0.0,
                 cell.error.empty() ? "" : " — ", cell.error.c_str());
  };
}

std::size_t SweepReport::ok() const {
  std::size_t n = 0;
  for (const CellOutcome& c : cells) {
    if (c.status == CellStatus::Ok) ++n;
  }
  return n;
}

std::size_t SweepReport::failed() const {
  std::size_t n = 0;
  for (const CellOutcome& c : cells) {
    if (c.status == CellStatus::Failed) ++n;
  }
  return n;
}

SimTime SweepReport::total_virtual_time() const {
  SimTime total = 0;
  for (const CellOutcome& c : cells) {
    if (c.result) total += c.result->virtual_time;
  }
  return total;
}

double SweepReport::time_compression() const {
  if (wall_seconds <= 0.0) return 0.0;
  return to_seconds(total_virtual_time()) / wall_seconds;
}

const CellOutcome* SweepReport::find(const std::string& cell_id) const {
  for (const CellOutcome& c : cells) {
    if (c.spec.id() == cell_id) return &c;
  }
  return nullptr;
}

std::string SweepReport::results_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("cells").begin_array();
  for (const CellOutcome& c : cells) c.write_json(w);
  w.end_array();
  w.end_object();
  return w.str();
}

std::string SweepReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("timing").begin_object();
  w.field("threads", static_cast<std::uint64_t>(threads));
  w.field("wall_seconds", wall_seconds);
  w.field("total_virtual_seconds", to_seconds(total_virtual_time()));
  w.field("time_compression", time_compression());
  w.field("warm_groups", static_cast<std::uint64_t>(warm_groups));
  w.field("warm_cells", static_cast<std::uint64_t>(warm_cells));
  w.end_object();
  w.key("cells").begin_array();
  for (const CellOutcome& c : cells) {
    w.begin_object();
    w.key("spec");
    c.spec.write_json(w);
    w.field("status", to_string(c.status));
    if (!c.error.empty()) w.field("error", c.error);
    w.field("attempts", static_cast<std::uint64_t>(c.attempts));
    w.field("wall_seconds", c.wall_seconds);
    w.key("result");
    if (c.result) {
      c.result->write_json(w);
    } else {
      w.null();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string SweepReport::summary() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "%zu cells (%zu ok, %zu failed) on %u thread%s: wall %.2fs, simulated %.0fs "
                "virtual (%.1fx real time)",
                cells.size(), ok(), failed(), threads, threads == 1 ? "" : "s", wall_seconds,
                to_seconds(total_virtual_time()), time_compression());
  std::string out = buf;
  if (warm_cells > 0) {
    std::snprintf(buf, sizeof(buf), ", %zu warm cell%s from %zu shared warm-up%s", warm_cells,
                  warm_cells == 1 ? "" : "s", warm_groups, warm_groups == 1 ? "" : "s");
    out += buf;
  }
  return out;
}

void run_cell_cold(CellOutcome& cell, unsigned first_attempt, const CellExecOptions& options) {
  const unsigned max_attempts = options.max_attempts > 0 ? options.max_attempts : 1;
  for (unsigned attempt = first_attempt; attempt <= max_attempts; ++attempt) {
    cell.attempts = attempt;
    const auto start = Clock::now();
    try {
      cell.result = scenario::run(cell.spec);
      cell.wall_seconds = elapsed_seconds(start);
      cell.error.clear();
      cell.status = (options.cell_timeout_seconds > 0.0 &&
                     cell.wall_seconds > options.cell_timeout_seconds)
                        ? CellStatus::TimedOut
                        : CellStatus::Ok;
      return;
    } catch (const std::exception& e) {
      cell.wall_seconds = elapsed_seconds(start);
      cell.error = e.what();
    } catch (...) {
      cell.wall_seconds = elapsed_seconds(start);
      cell.error = "unknown exception";
    }
  }
  cell.status = CellStatus::Failed;
  cell.result.reset();
}

std::size_t run_warm_group(const std::vector<scenario::RunSpec>& cells,
                          const std::vector<CellOutcome*>& outcomes,
                          const CellExecOptions& options,
                          const std::function<void(CellOutcome&, bool warm)>& on_final) {
  const unsigned max_attempts = options.max_attempts > 0 ? options.max_attempts : 1;
  snap::GroupOptions group_options;
  group_options.max_live_tails = options.warm_tail_processes;
  std::vector<snap::TailOutcome> tails =
      snap::run_group(scenario::warmup_representative(cells.front()), cells, group_options);

  std::size_t warm_cells = 0;
  for (std::size_t k = 0; k < cells.size(); ++k) {
    CellOutcome& cell = *outcomes[k];
    snap::TailOutcome& out = tails[k];
    bool warm = false;
    if (out.completed && out.ok && out.result) {
      warm = true;
      ++warm_cells;
      cell.attempts = 1;
      cell.wall_seconds = out.wall_seconds;
      cell.error.clear();
      cell.result = std::move(out.result);
      cell.status = (options.cell_timeout_seconds > 0.0 &&
                     cell.wall_seconds > options.cell_timeout_seconds)
                        ? CellStatus::TimedOut
                        : CellStatus::Ok;
    } else if (out.completed) {
      // The cell itself threw inside the tail — the same exception a cold
      // run would have raised, so it consumes attempt 1; any remaining
      // budget runs cold.
      cell.attempts = 1;
      cell.wall_seconds = out.wall_seconds;
      cell.error = out.error;
      if (max_attempts > 1) {
        run_cell_cold(cell, 2, options);
      } else {
        cell.status = CellStatus::Failed;
        cell.result.reset();
      }
    } else {
      // Infrastructure failure (fork/pipe/crashed child), not a cell
      // failure: the full cold attempt budget applies.
      run_cell_cold(cell, 1, options);
    }
    if (on_final) on_final(cell, warm);
  }
  return warm_cells;
}

std::vector<WorkItem> plan_work_items(const std::vector<scenario::RunSpec>& grid,
                                      bool warm_start, const std::vector<bool>* skip) {
  std::vector<WorkItem> items;
  std::map<std::string, std::vector<std::size_t>> groups;
  std::vector<std::size_t> singles;
  const bool group_cells = warm_start && snap::fork_supported();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (skip != nullptr && (*skip)[i]) continue;
    if (group_cells) {
      if (const auto sig = scenario::warmup_signature(grid[i])) {
        groups[*sig].push_back(i);
        continue;
      }
    }
    singles.push_back(i);
  }
  for (auto& [sig, members] : groups) {
    if (members.size() >= 2) {
      items.push_back(WorkItem{std::move(members), true});
    } else {
      singles.push_back(members.front());  // nothing to share with
    }
  }
  for (const std::size_t i : singles) items.push_back(WorkItem{{i}, false});
  std::sort(items.begin(), items.end(),
            [](const WorkItem& a, const WorkItem& b) { return a.cells.front() < b.cells.front(); });
  return items;
}

SweepRunner::SweepRunner(SweepOptions options) : options_(std::move(options)) {}

unsigned SweepRunner::resolved_threads() const {
  if (options_.threads > 0) return options_.threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

SweepReport SweepRunner::run(const std::vector<scenario::RunSpec>& grid) const {
  SweepReport report;
  report.threads = resolved_threads();
  report.cells.resize(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) report.cells[i].spec = grid[i];

  const auto sweep_start = Clock::now();
  CellExecOptions exec;
  exec.max_attempts = options_.max_attempts;
  exec.cell_timeout_seconds = options_.cell_timeout_seconds;
  exec.warm_tail_processes = options_.warm_tail_processes;

  const std::vector<WorkItem> items = plan_work_items(grid, options_.warm_start);

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> warm_group_count{0};
  std::atomic<std::size_t> warm_cell_count{0};
  std::mutex progress_mutex;

  // Fires the cell's (single) progress notification; call exactly once per
  // cell, after its outcome is final — retries and warm-start fallbacks
  // must never reach this twice.
  auto finalize = [&](CellOutcome& cell) {
    const std::size_t done = completed.fetch_add(1) + 1;
    if (options_.on_progress) {
      Progress p;
      p.completed = done;
      p.total = report.cells.size();
      p.cell = &cell;
      const std::lock_guard<std::mutex> lock(progress_mutex);
      options_.on_progress(p);
    }
  };

  auto run_warm_item = [&](const WorkItem& item) {
    std::vector<scenario::RunSpec> cells;
    std::vector<CellOutcome*> outcomes;
    cells.reserve(item.cells.size());
    outcomes.reserve(item.cells.size());
    for (const std::size_t i : item.cells) {
      cells.push_back(grid[i]);
      outcomes.push_back(&report.cells[i]);
    }
    const std::size_t warm = run_warm_group(
        cells, outcomes, exec, [&](CellOutcome& cell, bool) { finalize(cell); });
    warm_cell_count.fetch_add(warm);
    if (warm > 0) warm_group_count.fetch_add(1);
  };

  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= items.size()) return;
      const WorkItem& item = items[i];
      if (item.warm) {
        run_warm_item(item);
        // run() marks boundaries for cold cells; warm tails complete in
        // forked children, so mark the parent's boundary per group here.
        mem::run_boundary();
      } else {
        CellOutcome& cell = report.cells[item.cells.front()];
        run_cell_cold(cell, 1, exec);
        finalize(cell);
      }
    }
  };

  if (report.threads <= 1 || items.size() <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    const unsigned n = std::min<std::size_t>(report.threads, items.size());
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  report.warm_groups = warm_group_count.load();
  report.warm_cells = warm_cell_count.load();
  report.wall_seconds = elapsed_seconds(sweep_start);
  return report;
}

}  // namespace attain::sweep
