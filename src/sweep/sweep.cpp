#include "sweep/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "attain/monitor/metrics.hpp"

namespace attain::sweep {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

std::string to_string(CellStatus status) {
  switch (status) {
    case CellStatus::Ok: return "ok";
    case CellStatus::Failed: return "failed";
    case CellStatus::TimedOut: return "timed-out";
  }
  return "?";
}

void CellOutcome::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("spec");
  spec.write_json(w);
  w.field("status", to_string(status));
  if (!error.empty()) w.field("error", error);
  w.key("result");
  if (result) {
    result->write_json(w);
  } else {
    w.null();
  }
  w.end_object();
}

std::function<void(const Progress&)> make_progress_printer() {
  return [](const Progress& p) {
    const CellOutcome& cell = *p.cell;
    std::fprintf(stderr, "[%zu/%zu] %s %s (wall %.2fs, virtual %.0fs)%s%s\n", p.completed,
                 p.total, cell.spec.id().c_str(), to_string(cell.status).c_str(),
                 cell.wall_seconds,
                 cell.result ? to_seconds(cell.result->virtual_time) : 0.0,
                 cell.error.empty() ? "" : " — ", cell.error.c_str());
  };
}

std::size_t SweepReport::ok() const {
  std::size_t n = 0;
  for (const CellOutcome& c : cells) {
    if (c.status == CellStatus::Ok) ++n;
  }
  return n;
}

std::size_t SweepReport::failed() const {
  std::size_t n = 0;
  for (const CellOutcome& c : cells) {
    if (c.status == CellStatus::Failed) ++n;
  }
  return n;
}

SimTime SweepReport::total_virtual_time() const {
  SimTime total = 0;
  for (const CellOutcome& c : cells) {
    if (c.result) total += c.result->virtual_time;
  }
  return total;
}

double SweepReport::time_compression() const {
  if (wall_seconds <= 0.0) return 0.0;
  return to_seconds(total_virtual_time()) / wall_seconds;
}

const CellOutcome* SweepReport::find(const std::string& cell_id) const {
  for (const CellOutcome& c : cells) {
    if (c.spec.id() == cell_id) return &c;
  }
  return nullptr;
}

std::string SweepReport::results_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("cells").begin_array();
  for (const CellOutcome& c : cells) c.write_json(w);
  w.end_array();
  w.end_object();
  return w.str();
}

std::string SweepReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("timing").begin_object();
  w.field("threads", static_cast<std::uint64_t>(threads));
  w.field("wall_seconds", wall_seconds);
  w.field("total_virtual_seconds", to_seconds(total_virtual_time()));
  w.field("time_compression", time_compression());
  w.end_object();
  w.key("cells").begin_array();
  for (const CellOutcome& c : cells) {
    w.begin_object();
    w.key("spec");
    c.spec.write_json(w);
    w.field("status", to_string(c.status));
    if (!c.error.empty()) w.field("error", c.error);
    w.field("attempts", static_cast<std::uint64_t>(c.attempts));
    w.field("wall_seconds", c.wall_seconds);
    w.key("result");
    if (c.result) {
      c.result->write_json(w);
    } else {
      w.null();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string SweepReport::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%zu cells (%zu ok, %zu failed) on %u thread%s: wall %.2fs, simulated %.0fs "
                "virtual (%.1fx real time)",
                cells.size(), ok(), failed(), threads, threads == 1 ? "" : "s", wall_seconds,
                to_seconds(total_virtual_time()), time_compression());
  return buf;
}

SweepRunner::SweepRunner(SweepOptions options) : options_(std::move(options)) {}

unsigned SweepRunner::resolved_threads() const {
  if (options_.threads > 0) return options_.threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

SweepReport SweepRunner::run(const std::vector<scenario::RunSpec>& grid) const {
  SweepReport report;
  report.threads = resolved_threads();
  report.cells.resize(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) report.cells[i].spec = grid[i];

  const auto sweep_start = Clock::now();
  const unsigned max_attempts = options_.max_attempts > 0 ? options_.max_attempts : 1;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::mutex progress_mutex;

  auto run_cell = [&](CellOutcome& cell) {
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
      cell.attempts = attempt;
      const auto start = Clock::now();
      try {
        cell.result = scenario::run(cell.spec);
        cell.wall_seconds = elapsed_seconds(start);
        cell.error.clear();
        cell.status = (options_.cell_timeout_seconds > 0.0 &&
                       cell.wall_seconds > options_.cell_timeout_seconds)
                          ? CellStatus::TimedOut
                          : CellStatus::Ok;
        return;
      } catch (const std::exception& e) {
        cell.wall_seconds = elapsed_seconds(start);
        cell.error = e.what();
      } catch (...) {
        cell.wall_seconds = elapsed_seconds(start);
        cell.error = "unknown exception";
      }
    }
    cell.status = CellStatus::Failed;
    cell.result.reset();
  };

  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= report.cells.size()) return;
      CellOutcome& cell = report.cells[i];
      run_cell(cell);
      const std::size_t done = completed.fetch_add(1) + 1;
      if (options_.on_progress) {
        Progress p;
        p.completed = done;
        p.total = report.cells.size();
        p.cell = &cell;
        const std::lock_guard<std::mutex> lock(progress_mutex);
        options_.on_progress(p);
      }
    }
  };

  if (report.threads <= 1 || report.cells.size() <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    const unsigned n = std::min<std::size_t>(report.threads, report.cells.size());
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  report.wall_seconds = elapsed_seconds(sweep_start);
  return report;
}

}  // namespace attain::sweep
