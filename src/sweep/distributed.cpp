#include "sweep/distributed.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/alloc_hook.hpp"
#include "common/arena.hpp"
#include "common/bytes.hpp"
#include "snap/snapshot.hpp"
#include "snap/wire.hpp"
#include "sweep/journal.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define ATTAIN_DIST_POSIX 1
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace attain::sweep {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Task frames (coordinator -> worker), sealed:
//   u8 kTaskMsg | u32 item_id | u8 warm | u32 count | count x u32 cell_index
// Closing the task pipe is the shutdown signal: a worker that reads EOF at
// a frame boundary exits cleanly.
constexpr std::uint8_t kTaskMsg = 1;

// Result frames (worker -> coordinator), sealed:
//   u8 kCellMsg | u32 item_id | u32 cell_index | u8 status | u8 warm
//     | u32 attempts | u64 wall_bits | u64 allocations | u64 slab_reserved
//     | u32 error_len | error bytes | u8 has_result | [save_result bytes]
//   u8 kItemMsg | u32 item_id | u32 warm_cells
// Cells stream as they finish (one frame each); the item frame marks the
// whole work item retired, which is what opens the dispatch window again.
constexpr std::uint8_t kCellMsg = 1;
constexpr std::uint8_t kItemMsg = 2;

#if defined(ATTAIN_DIST_POSIX)

/// Fault-injection hooks for the failure-path tests (see
/// tests/test_sweep_distributed.cpp). Each env var names a sentinel file;
/// the fault fires in whichever worker claims the sentinel first and never
/// again — so a respawned worker completes the re-run instead of dying in
/// a loop.
struct FaultHooks {
  const char* corrupt_sentinel{nullptr};   // ATTAIN_TEST_CORRUPT_RESULT_FRAME
  const char* truncate_sentinel{nullptr};  // ATTAIN_TEST_TRUNCATE_RESULT_FRAME

  static FaultHooks from_env() {
    FaultHooks hooks;
    hooks.corrupt_sentinel = std::getenv("ATTAIN_TEST_CORRUPT_RESULT_FRAME");
    hooks.truncate_sentinel = std::getenv("ATTAIN_TEST_TRUNCATE_RESULT_FRAME");
    return hooks;
  }
};

/// Atomically claims a sentinel file: true exactly once per path across
/// every process that races for it.
bool claim_sentinel(const char* path) {
  if (path == nullptr || *path == '\0') return false;
  const int fd = ::open(path, O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

/// Ships one finished cell as a sealed frame. A result that cannot cross
/// the process boundary (custom result types have no binary codec)
/// downgrades the cell to Failed with an explanatory error rather than
/// corrupting the stream. Returns false when the coordinator is gone.
bool ship_cell(int fd, std::uint32_t item_id, std::uint32_t cell_index, const CellOutcome& cell,
               bool warm, const FaultHooks& hooks) {
  ByteWriter result_bytes;
  bool has_result = false;
  CellStatus status = cell.status;
  std::string error = cell.error;
  if (cell.result) {
    try {
      scenario::save_result(*cell.result, result_bytes);
      has_result = true;
    } catch (const std::exception& e) {
      status = CellStatus::Failed;
      error = std::string("distributed: result type cannot cross the process boundary: ") +
              e.what();
    }
  }

  ByteWriter w;
  w.reserve(64 + error.size() + result_bytes.size());
  w.u8(kCellMsg);
  w.u32(item_id);
  w.u32(cell_index);
  w.u8(static_cast<std::uint8_t>(status));
  w.u8(warm ? 1 : 0);
  w.u32(cell.attempts);
  w.u64(std::bit_cast<std::uint64_t>(cell.wall_seconds));
  w.u64(cell.worker_allocations);
  w.u64(cell.worker_slab_reserved);
  w.u32(static_cast<std::uint32_t>(error.size()));
  w.raw({reinterpret_cast<const std::uint8_t*>(error.data()), error.size()});
  w.u8(has_result ? 1 : 0);
  if (has_result) w.raw(result_bytes.bytes());
  Bytes payload = snap::wire::seal(std::move(w));

  if (claim_sentinel(hooks.corrupt_sentinel)) {
    payload[payload.size() / 2] ^= 0xFFu;  // breaks the seal, not the framing
  }
  if (claim_sentinel(hooks.truncate_sentinel)) {
    // Announce the full length, deliver half, die: the coordinator's
    // read_frame sees EOF mid-payload (FrameStatus::Error).
    const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    const std::uint8_t header[4] = {
        static_cast<std::uint8_t>(len >> 24), static_cast<std::uint8_t>(len >> 16),
        static_cast<std::uint8_t>(len >> 8), static_cast<std::uint8_t>(len)};
    snap::wire::write_exact(fd, header);
    snap::wire::write_exact(fd, {payload.data(), payload.size() / 2});
    ::_exit(86);
  }

  return snap::wire::write_frame(fd, payload);
}

/// Worker process main loop: read task frames, run the cells through the
/// shared cell-execution core (sweep.hpp), stream each outcome back, mark
/// a slab run-boundary per item. Never returns.
[[noreturn]] void worker_main(const std::vector<scenario::RunSpec>& grid,
                              const CellExecOptions& exec, int task_fd, int result_fd) {
  const FaultHooks hooks = FaultHooks::from_env();
  for (;;) {
    Bytes frame;
    const snap::wire::FrameStatus st = snap::wire::read_frame(task_fd, frame);
    if (st == snap::wire::FrameStatus::Eof) break;  // coordinator is done with us
    if (st != snap::wire::FrameStatus::Ok) ::_exit(2);
    std::span<const std::uint8_t> body;
    if (!snap::wire::unseal(frame, body)) ::_exit(2);

    std::uint32_t item_id = 0;
    bool warm_item = false;
    std::vector<std::size_t> indices;
    try {
      ByteReader r(body);
      if (r.u8() != kTaskMsg) ::_exit(2);
      item_id = r.u32();
      warm_item = r.u8() != 0;
      const std::uint32_t n = r.u32();
      indices.reserve(n);
      for (std::uint32_t k = 0; k < n; ++k) {
        const std::uint32_t idx = r.u32();
        if (idx >= grid.size()) ::_exit(2);
        indices.push_back(idx);
      }
    } catch (const std::exception&) {
      ::_exit(2);
    }

    std::size_t warm_results = 0;
    bool ship_ok = true;
    if (warm_item && indices.size() >= 2) {
      // The worker runs the whole signature group from its own COW
      // warm-up fork — warm-start multiplies with process parallelism.
      std::vector<scenario::RunSpec> cells;
      std::vector<CellOutcome> outcomes(indices.size());
      std::vector<CellOutcome*> ptrs;
      cells.reserve(indices.size());
      ptrs.reserve(indices.size());
      for (std::size_t k = 0; k < indices.size(); ++k) {
        cells.push_back(grid[indices[k]]);
        outcomes[k].spec = grid[indices[k]];
        ptrs.push_back(&outcomes[k]);
      }
      warm_results =
          run_warm_group(cells, ptrs, exec, [&](CellOutcome& cell, bool warm) {
            const std::size_t pos = static_cast<std::size_t>(&cell - outcomes.data());
            cell.worker_slab_reserved = mem::thread_slab().arena_stats().bytes_reserved;
            if (ship_ok) {
              ship_ok = ship_cell(result_fd, item_id,
                                  static_cast<std::uint32_t>(indices[pos]), cell, warm, hooks);
            }
          });
    } else {
      for (const std::size_t idx : indices) {
        CellOutcome cell;
        cell.spec = grid[idx];
        const memhook::Window window = memhook::Window::open();
        run_cell_cold(cell, 1, exec);
        cell.worker_allocations = window.allocations();
        cell.worker_slab_reserved = mem::thread_slab().arena_stats().bytes_reserved;
        if (ship_ok) {
          ship_ok = ship_cell(result_fd, item_id, static_cast<std::uint32_t>(idx), cell,
                              /*warm=*/false, hooks);
        }
      }
    }

    // Per-item teardown boundary: slab pages the item borrowed return to
    // the freelists, so a steady-state worker re-uses the same reserve.
    mem::run_boundary();

    if (ship_ok) {
      ByteWriter w;
      w.u8(kItemMsg);
      w.u32(item_id);
      w.u32(static_cast<std::uint32_t>(warm_results));
      ship_ok = snap::wire::write_frame(result_fd, snap::wire::seal(std::move(w)));
    }
    if (!ship_ok) ::_exit(3);  // coordinator gone; nothing left to report to
  }
  ::_exit(0);
}

#endif  // ATTAIN_DIST_POSIX

}  // namespace

bool distributed_supported() { return snap::fork_supported(); }

DistributedRunner::DistributedRunner(DistributedOptions options) : options_(std::move(options)) {}

unsigned DistributedRunner::resolved_workers() const {
  if (options_.workers > 0) return options_.workers;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

DistributedReport DistributedRunner::run(const std::vector<scenario::RunSpec>& grid) const {
  DistributedReport report;
  report.workers = resolved_workers();
  report.sweep.threads = report.workers;
  report.sweep.cells.resize(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) report.sweep.cells[i].spec = grid[i];

  const auto campaign_start = Clock::now();

  // Journal: resume (restoring completed outcomes) or create fresh. The
  // grid digest binds the file to this exact campaign.
  CampaignJournal journal;
  std::vector<bool> done(grid.size(), false);
  std::size_t outstanding = grid.size();
  std::size_t completed_count = 0;
  if (!options_.journal_path.empty()) {
    const std::uint64_t digest = scenario::grid_digest(grid);
    bool resumed = false;
    if (options_.resume) {
      if (std::FILE* probe = std::fopen(options_.journal_path.c_str(), "rb")) {
        std::fclose(probe);
        std::vector<CampaignJournal::LoadedCell> loaded;
        journal = CampaignJournal::resume(options_.journal_path, digest, grid.size(), loaded);
        for (CampaignJournal::LoadedCell& lc : loaded) {
          if (lc.index >= grid.size()) continue;
          CellOutcome& cell = report.sweep.cells[lc.index];
          cell.status = lc.outcome.status;
          cell.error = std::move(lc.outcome.error);
          cell.attempts = lc.outcome.attempts;
          cell.wall_seconds = lc.outcome.wall_seconds;
          cell.result = std::move(lc.outcome.result);
          if (!done[lc.index]) ++report.resumed_cells;
          done[lc.index] = true;
        }
        resumed = true;
      }
    }
    if (!resumed) {
      journal = CampaignJournal::create(options_.journal_path, digest, grid.size());
    }
  }

  auto note_progress = [&](CellOutcome& cell) {
    ++completed_count;
    if (options_.on_progress) {
      Progress p;
      p.completed = completed_count;
      p.total = grid.size();
      p.cell = &cell;
      options_.on_progress(p);
    }
  };

  // Resumed cells fire progress first, in grid order (the on_progress
  // contract: exactly once per cell, completed marching 1..total).
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (done[i]) {
      --outstanding;
      note_progress(report.sweep.cells[i]);
    }
  }

  CellExecOptions exec;
  exec.max_attempts = options_.max_attempts;
  exec.cell_timeout_seconds = options_.cell_timeout_seconds;
  exec.warm_tail_processes = options_.warm_tail_processes;

  const std::vector<WorkItem> plan = plan_work_items(grid, options_.warm_start, &done);

  if (outstanding == 0) {
    report.shards = 0;
    report.sweep.wall_seconds = elapsed_seconds(campaign_start);
    return report;
  }

#if defined(ATTAIN_DIST_POSIX)
  if (distributed_supported()) {
    // Ignore SIGPIPE for the campaign (saved/restored): writing a task to
    // a just-died worker must fail with EPIPE, not kill the coordinator.
    // Workers inherit the disposition, which serves them the same way.
    struct sigaction ignore_pipe {};
    struct sigaction old_pipe {};
    ignore_pipe.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);

    // Work items: the initial plan plus cold re-dispatch items created
    // when a worker dies. item_cells is immutable per item; item_pending
    // shrinks as that item's cells report in.
    std::vector<std::vector<std::size_t>> item_cells;
    std::vector<std::vector<std::size_t>> item_pending;
    std::vector<bool> item_warm;
    std::deque<std::uint32_t> ready;
    for (const WorkItem& it : plan) {
      ready.push_back(static_cast<std::uint32_t>(item_cells.size()));
      item_cells.push_back(it.cells);
      item_pending.push_back(it.cells);
      item_warm.push_back(it.warm);
    }
    std::vector<unsigned> cell_respawns(grid.size(), 0);
    const std::size_t window = std::max<std::size_t>(1, options_.in_flight_per_worker);

    struct WorkerProc {
      pid_t pid{-1};
      int task_fd{-1};
      int result_fd{-1};
      std::deque<std::uint32_t> in_flight;
      Clock::time_point last_frame{};
      bool alive{false};
    };
    std::vector<WorkerProc> workers;
    workers.resize(std::min<std::size_t>(report.workers, item_cells.size()));

    auto finalize_cell = [&](std::size_t idx) {
      done[idx] = true;
      --outstanding;
      CellOutcome& cell = report.sweep.cells[idx];
      if (journal.is_open() && journal.append(idx, cell)) ++report.journal_records;
      note_progress(cell);
    };

    // Processes one unsealed result-frame body. Returns false when the
    // frame is malformed — the caller treats the stream as corrupt.
    auto handle_frame = [&](WorkerProc& w, std::span<const std::uint8_t> body) -> bool {
      try {
        ByteReader r(body);
        const std::uint8_t tag = r.u8();
        if (tag == kItemMsg) {
          const std::uint32_t item_id = r.u32();
          const std::uint32_t warm = r.u32();
          if (item_id >= item_cells.size()) return false;
          if (warm > 0) {
            report.sweep.warm_groups += 1;
            report.sweep.warm_cells += warm;
          }
          std::erase(w.in_flight, item_id);
          return true;
        }
        if (tag != kCellMsg) return false;
        const std::uint32_t item_id = r.u32();
        const std::size_t idx = r.u32();
        if (item_id >= item_cells.size() || idx >= grid.size()) return false;
        CellOutcome cell;
        const std::uint8_t status = r.u8();
        if (status > static_cast<std::uint8_t>(CellStatus::TimedOut)) return false;
        r.u8();  // warm flag: group warm accounting arrives in the item frame
        cell.attempts = r.u32();
        cell.wall_seconds = std::bit_cast<double>(r.u64());
        cell.worker_allocations = r.u64();
        cell.worker_slab_reserved = r.u64();
        const std::uint32_t err_len = r.u32();
        const auto err = r.view(err_len);
        cell.error.assign(err.begin(), err.end());
        if (r.u8() != 0) cell.result = scenario::load_result(r);
        cell.status = static_cast<CellStatus>(status);
        std::erase(item_pending[item_id], idx);
        if (!done[idx]) {
          cell.spec = std::move(report.sweep.cells[idx].spec);
          report.sweep.cells[idx] = std::move(cell);
          finalize_cell(idx);
        }
        return true;
      } catch (const std::exception&) {
        return false;
      }
    };

    auto reap = [&](WorkerProc& w) {
      if (w.pid > 0) {
        int wstatus = 0;
        while (::waitpid(w.pid, &wstatus, 0) < 0 && errno == EINTR) {
        }
      }
      w.pid = -1;
    };

    // Re-plans a dead worker's unreported cells: each re-runs cold as its
    // own item with the full retry budget (SweepRunner's infrastructure-
    // failure semantics), unless it has exhausted its worker-death budget.
    auto requeue_lost = [&](WorkerProc& w) {
      for (const std::uint32_t item_id : w.in_flight) {
        for (const std::size_t idx : item_pending[item_id]) {
          if (done[idx]) continue;
          if (++cell_respawns[idx] > options_.max_cell_respawns) {
            CellOutcome& cell = report.sweep.cells[idx];
            cell.status = CellStatus::Failed;
            cell.result.reset();
            cell.attempts = std::max(cell.attempts, 1u);
            cell.error = "distributed: worker process died while running this cell (" +
                         std::to_string(cell_respawns[idx]) + " worker deaths)";
            finalize_cell(idx);
          } else {
            const std::uint32_t nid = static_cast<std::uint32_t>(item_cells.size());
            item_cells.push_back({idx});
            item_pending.push_back({idx});
            item_warm.push_back(false);
            ready.push_front(nid);
          }
        }
        item_pending[item_id].clear();
      }
      w.in_flight.clear();
    };

    // Tears down a worker. With `drain`, intact frames still buffered in
    // the result pipe are applied first — cells the worker finished before
    // dying stay finished. Without it (corrupt stream) nothing after the
    // bad frame can be trusted.
    auto kill_worker = [&](WorkerProc& w, bool drain) {
      if (!w.alive) return;
      w.alive = false;
      if (w.task_fd >= 0) {
        ::close(w.task_fd);
        w.task_fd = -1;
      }
      if (w.pid > 0) ::kill(w.pid, SIGKILL);
      reap(w);  // after this the result pipe can only drain to EOF
      if (drain && w.result_fd >= 0) {
        for (;;) {
          Bytes payload;
          if (snap::wire::read_frame(w.result_fd, payload) != snap::wire::FrameStatus::Ok) break;
          std::span<const std::uint8_t> body;
          if (!snap::wire::unseal(payload, body)) break;
          if (!handle_frame(w, body)) break;
        }
      }
      if (w.result_fd >= 0) {
        ::close(w.result_fd);
        w.result_fd = -1;
      }
      requeue_lost(w);
    };

    auto spawn_worker = [&](WorkerProc& w) -> bool {
      int task_pipe[2];
      int result_pipe[2];
      if (::pipe(task_pipe) != 0) return false;
      if (::pipe(result_pipe) != 0) {
        ::close(task_pipe[0]);
        ::close(task_pipe[1]);
        return false;
      }
      std::fflush(nullptr);
      const pid_t pid = ::fork();
      if (pid == 0) {
        ::close(task_pipe[1]);
        ::close(result_pipe[0]);
        // Close the coordinator's fds to *other* live workers — inherited
        // copies would keep those workers' task pipes open past the
        // coordinator's shutdown close (EOF is the shutdown signal).
        for (const WorkerProc& other : workers) {
          if (&other != &w && other.alive) {
            ::close(other.task_fd);
            ::close(other.result_fd);
          }
        }
        worker_main(grid, exec, task_pipe[0], result_pipe[1]);
      }
      ::close(task_pipe[0]);
      ::close(result_pipe[1]);
      if (pid < 0) {
        ::close(task_pipe[1]);
        ::close(result_pipe[0]);
        return false;
      }
      w.pid = pid;
      w.task_fd = task_pipe[1];
      w.result_fd = result_pipe[0];
      w.in_flight.clear();
      w.last_frame = Clock::now();
      w.alive = true;
      return true;
    };

    auto respawn_if_needed = [&](WorkerProc& w) {
      if (outstanding > 0 && !ready.empty() && spawn_worker(w)) ++report.respawns;
    };

    // Sends the ready queue's front item to `w`. Returns false when the
    // worker is dead (write failed) — the item stays queued.
    auto dispatch = [&](WorkerProc& w) -> bool {
      const std::uint32_t item_id = ready.front();
      ByteWriter t;
      t.u8(kTaskMsg);
      t.u32(item_id);
      t.u8(item_warm[item_id] ? 1 : 0);
      t.u32(static_cast<std::uint32_t>(item_cells[item_id].size()));
      for (const std::size_t idx : item_cells[item_id]) t.u32(static_cast<std::uint32_t>(idx));
      if (!snap::wire::write_frame(w.task_fd, snap::wire::seal(std::move(t)))) return false;
      ready.pop_front();
      w.in_flight.push_back(item_id);
      ++report.shards;
      return true;
    };

    // Last resort when no worker can be kept alive (fork failure): the
    // coordinator runs the queue inline, cold.
    auto run_inline = [&] {
      while (!ready.empty()) {
        const std::uint32_t item_id = ready.front();
        ready.pop_front();
        ++report.shards;
        for (const std::size_t idx : item_pending[item_id]) {
          if (done[idx]) continue;
          run_cell_cold(report.sweep.cells[idx], 1, exec);
          finalize_cell(idx);
        }
        item_pending[item_id].clear();
      }
    };

    for (WorkerProc& w : workers) spawn_worker(w);

    while (outstanding > 0) {
      // Refill each live worker's bounded in-flight window (backpressure:
      // at most `window` items queued in a worker's task pipe).
      for (WorkerProc& w : workers) {
        if (!w.alive) continue;
        while (!ready.empty() && w.in_flight.size() < window) {
          if (!dispatch(w)) {
            kill_worker(w, /*drain=*/true);
            respawn_if_needed(w);
            break;
          }
        }
      }
      if (outstanding == 0) break;

      std::vector<struct pollfd> fds;
      std::vector<WorkerProc*> owners;
      for (WorkerProc& w : workers) {
        if (!w.alive) continue;
        fds.push_back({w.result_fd, POLLIN, 0});
        owners.push_back(&w);
      }
      if (fds.empty()) {
        // Every worker is dead. Try to restart one for the queue; if even
        // that fails, finish inline rather than spin.
        bool restarted = false;
        for (WorkerProc& w : workers) {
          if (!ready.empty() && spawn_worker(w)) {
            ++report.respawns;
            restarted = true;
            break;
          }
        }
        if (!restarted) run_inline();
        continue;
      }

      const int timeout_ms = options_.worker_timeout_seconds > 0.0 ? 200 : -1;
      const int nready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
      if (nready < 0) {
        if (errno == EINTR) continue;
        // poll itself failed: tear everything down (requeueing unreported
        // cells) and finish inline rather than hang.
        for (WorkerProc& w : workers) kill_worker(w, /*drain=*/true);
        run_inline();
        break;
      }

      for (std::size_t i = 0; i < fds.size(); ++i) {
        WorkerProc& w = *owners[i];
        if (!w.alive || (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        Bytes payload;
        const snap::wire::FrameStatus st = snap::wire::read_frame(w.result_fd, payload);
        if (st == snap::wire::FrameStatus::Ok) {
          std::span<const std::uint8_t> body;
          if (snap::wire::unseal(payload, body) && handle_frame(w, body)) {
            w.last_frame = Clock::now();
          } else {
            // Digest mismatch or malformed frame: the stream is corrupt,
            // so everything unreported re-runs cold on a fresh worker.
            kill_worker(w, /*drain=*/false);
            respawn_if_needed(w);
          }
        } else {
          // Eof (worker died cleanly or crashed) or Error (truncated
          // frame): either way the worker is gone.
          kill_worker(w, /*drain=*/false);
          respawn_if_needed(w);
        }
      }

      if (options_.worker_timeout_seconds > 0.0) {
        for (WorkerProc& w : workers) {
          if (w.alive && !w.in_flight.empty() &&
              elapsed_seconds(w.last_frame) > options_.worker_timeout_seconds) {
            kill_worker(w, /*drain=*/true);
            respawn_if_needed(w);
          }
        }
      }
    }

    // Wind down: closing a task pipe is the worker's EOF shutdown signal;
    // drain the final item frames (warm accounting), then reap.
    for (WorkerProc& w : workers) {
      if (!w.alive) continue;
      ::close(w.task_fd);
      w.task_fd = -1;
      for (;;) {
        Bytes payload;
        if (snap::wire::read_frame(w.result_fd, payload) != snap::wire::FrameStatus::Ok) break;
        std::span<const std::uint8_t> body;
        if (!snap::wire::unseal(payload, body)) break;
        if (!handle_frame(w, body)) break;
      }
      ::close(w.result_fd);
      w.result_fd = -1;
      reap(w);
      w.alive = false;
    }

    ::sigaction(SIGPIPE, &old_pipe, nullptr);
    report.sweep.wall_seconds = elapsed_seconds(campaign_start);
    journal.close();
    return report;
  }
#endif  // ATTAIN_DIST_POSIX

  // In-process fallback (non-POSIX, or fork unavailable — e.g. under
  // ThreadSanitizer): the remaining cells run on a SweepRunner thread pool
  // with identical cell semantics; the journal is written after the sweep,
  // so resume still works, just without mid-run crash durability.
  std::vector<std::size_t> remaining;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (!done[i]) remaining.push_back(i);
  }
  report.shards = plan.size();
  if (!remaining.empty()) {
    std::vector<scenario::RunSpec> sub;
    sub.reserve(remaining.size());
    for (const std::size_t idx : remaining) sub.push_back(grid[idx]);
    SweepOptions so;
    so.threads = report.workers;
    so.max_attempts = options_.max_attempts;
    so.cell_timeout_seconds = options_.cell_timeout_seconds;
    so.warm_start = options_.warm_start;
    so.warm_tail_processes = options_.warm_tail_processes;
    if (options_.on_progress) {
      const std::size_t offset = completed_count;
      so.on_progress = [this, offset, total = grid.size()](const Progress& p) {
        Progress outer;
        outer.completed = offset + p.completed;
        outer.total = total;
        outer.cell = p.cell;
        options_.on_progress(outer);
      };
    }
    SweepReport inner = SweepRunner(so).run(sub);
    for (std::size_t k = 0; k < remaining.size(); ++k) {
      report.sweep.cells[remaining[k]] = std::move(inner.cells[k]);
      if (journal.is_open() &&
          journal.append(remaining[k], report.sweep.cells[remaining[k]])) {
        ++report.journal_records;
      }
    }
    report.sweep.warm_groups = inner.warm_groups;
    report.sweep.warm_cells = inner.warm_cells;
  }
  report.sweep.wall_seconds = elapsed_seconds(campaign_start);
  journal.close();
  return report;
}

std::string DistributedReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("timing").begin_object();
  w.field("workers", static_cast<std::uint64_t>(workers));
  w.field("wall_seconds", sweep.wall_seconds);
  w.field("total_virtual_seconds", to_seconds(sweep.total_virtual_time()));
  w.field("time_compression", sweep.time_compression());
  w.field("warm_groups", static_cast<std::uint64_t>(sweep.warm_groups));
  w.field("warm_cells", static_cast<std::uint64_t>(sweep.warm_cells));
  w.field("shards", static_cast<std::uint64_t>(shards));
  w.field("respawns", static_cast<std::uint64_t>(respawns));
  w.field("resumed_cells", static_cast<std::uint64_t>(resumed_cells));
  w.field("journal_records", static_cast<std::uint64_t>(journal_records));
  w.end_object();
  w.key("cells").begin_array();
  for (const CellOutcome& c : sweep.cells) {
    w.begin_object();
    w.key("spec");
    c.spec.write_json(w);
    w.field("status", to_string(c.status));
    if (!c.error.empty()) w.field("error", c.error);
    w.field("attempts", static_cast<std::uint64_t>(c.attempts));
    w.field("wall_seconds", c.wall_seconds);
    w.key("result");
    if (c.result) {
      c.result->write_json(w);
    } else {
      w.null();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string DistributedReport::summary() const {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "%zu cells (%zu ok, %zu failed) on %u worker process%s: wall %.2fs, simulated "
                "%.0fs virtual (%.1fx real time), %zu shard%s",
                sweep.cells.size(), sweep.ok(), sweep.failed(), workers,
                workers == 1 ? "" : "es", sweep.wall_seconds,
                to_seconds(sweep.total_virtual_time()), sweep.time_compression(), shards,
                shards == 1 ? "" : "s");
  std::string out = buf;
  if (sweep.warm_cells > 0) {
    std::snprintf(buf, sizeof(buf), ", %zu warm cell%s from %zu shared warm-up%s",
                  sweep.warm_cells, sweep.warm_cells == 1 ? "" : "s", sweep.warm_groups,
                  sweep.warm_groups == 1 ? "" : "s");
    out += buf;
  }
  if (respawns > 0) {
    std::snprintf(buf, sizeof(buf), ", %zu worker respawn%s", respawns,
                  respawns == 1 ? "" : "s");
    out += buf;
  }
  if (resumed_cells > 0) {
    std::snprintf(buf, sizeof(buf), ", %zu cell%s resumed from journal", resumed_cells,
                  resumed_cells == 1 ? "" : "s");
    out += buf;
  }
  return out;
}

}  // namespace attain::sweep
