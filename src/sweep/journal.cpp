#include "sweep/journal.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "snap/wire.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define ATTAIN_JOURNAL_POSIX 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace attain::sweep {

namespace {

constexpr std::uint32_t kMagic = 0x41544A4C;  // "ATJL"
constexpr std::uint8_t kVersion = 1;

using snap::wire::seal;
using snap::wire::unseal;

}  // namespace

CampaignJournal::~CampaignJournal() { close(); }

CampaignJournal::CampaignJournal(CampaignJournal&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

CampaignJournal& CampaignJournal::operator=(CampaignJournal&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

#if defined(ATTAIN_JOURNAL_POSIX)

void CampaignJournal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

CampaignJournal CampaignJournal::create(const std::string& path, std::uint64_t campaign_digest,
                                        std::size_t cell_count) {
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  if (fd < 0) {
    throw std::runtime_error("CampaignJournal: cannot create " + path + ": " +
                             std::strerror(errno));
  }
  ByteWriter w;
  w.u32(kMagic);
  w.u8(kVersion);
  w.u64(campaign_digest);
  w.u32(static_cast<std::uint32_t>(cell_count));
  if (!snap::wire::write_frame(fd, seal(std::move(w)))) {
    ::close(fd);
    throw std::runtime_error("CampaignJournal: cannot write header to " + path);
  }
  CampaignJournal journal;
  journal.fd_ = fd;
  journal.path_ = path;
  return journal;
}

CampaignJournal CampaignJournal::resume(const std::string& path, std::uint64_t campaign_digest,
                                        std::size_t cell_count,
                                        std::vector<LoadedCell>& loaded) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    throw std::runtime_error("CampaignJournal: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  CampaignJournal journal;
  journal.fd_ = fd;
  journal.path_ = path;

  Bytes payload;
  std::span<const std::uint8_t> body;
  if (snap::wire::read_frame(fd, payload) != snap::wire::FrameStatus::Ok ||
      !unseal(payload, body)) {
    throw std::runtime_error("CampaignJournal: " + path + " has no intact header");
  }
  {
    ByteReader r(body);
    if (r.u32() != kMagic || r.u8() != kVersion) {
      throw std::runtime_error("CampaignJournal: " + path + " is not a campaign journal");
    }
    const std::uint64_t digest = r.u64();
    const std::uint32_t count = r.u32();
    if (digest != campaign_digest || count != cell_count) {
      throw std::runtime_error("CampaignJournal: " + path +
                               " belongs to a different campaign (grid digest/size mismatch)");
    }
  }

  // Load records until EOF or the first torn/corrupt frame; remember the
  // end of the last intact one so the tail can be truncated away.
  off_t good_end = ::lseek(fd, 0, SEEK_CUR);
  for (;;) {
    const snap::wire::FrameStatus status = snap::wire::read_frame(fd, payload);
    if (status != snap::wire::FrameStatus::Ok) break;
    if (!unseal(payload, body)) break;
    LoadedCell cell;
    try {
      ByteReader r(body);
      cell.index = r.u32();
      cell.outcome.status = static_cast<CellStatus>(r.u8());
      cell.outcome.attempts = r.u32();
      cell.outcome.wall_seconds = std::bit_cast<double>(r.u64());
      const std::uint32_t err_len = r.u32();
      const auto err = r.view(err_len);
      cell.outcome.error.assign(err.begin(), err.end());
      if (r.u8() != 0) cell.outcome.result = scenario::load_result(r);
      const std::uint64_t recorded_digest = r.u64();
      const std::uint64_t actual_digest =
          cell.outcome.result ? scenario::result_digest(*cell.outcome.result) : 0;
      if (recorded_digest != actual_digest) break;
      if (cell.index >= cell_count) break;
    } catch (const std::exception&) {
      break;  // malformed record body: drop it and everything after
    }
    loaded.push_back(std::move(cell));
    good_end = ::lseek(fd, 0, SEEK_CUR);
  }
  if (::ftruncate(fd, good_end) != 0 || ::lseek(fd, good_end, SEEK_SET) < 0) {
    throw std::runtime_error("CampaignJournal: cannot truncate torn tail of " + path);
  }
  return journal;
}

bool CampaignJournal::append(std::size_t cell_index, const CellOutcome& outcome) {
  if (fd_ < 0) return false;
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(cell_index));
  w.u8(static_cast<std::uint8_t>(outcome.status));
  w.u32(outcome.attempts);
  w.u64(std::bit_cast<std::uint64_t>(outcome.wall_seconds));
  w.u32(static_cast<std::uint32_t>(outcome.error.size()));
  w.raw({reinterpret_cast<const std::uint8_t*>(outcome.error.data()), outcome.error.size()});
  std::uint64_t digest = 0;
  if (outcome.result != nullptr) {
    w.u8(1);
    try {
      scenario::save_result(*outcome.result, w);
      digest = scenario::result_digest(*outcome.result);
    } catch (const std::invalid_argument&) {
      return false;  // custom result type: not journalable, re-runs on resume
    }
  } else {
    w.u8(0);
  }
  w.u64(digest);
  return snap::wire::write_frame(fd_, seal(std::move(w)));
}

#else  // !ATTAIN_JOURNAL_POSIX

void CampaignJournal::close() {}

CampaignJournal CampaignJournal::create(const std::string& path, std::uint64_t, std::size_t) {
  throw std::runtime_error("CampaignJournal: not supported on this platform (" + path + ")");
}

CampaignJournal CampaignJournal::resume(const std::string& path, std::uint64_t, std::size_t,
                                        std::vector<LoadedCell>&) {
  throw std::runtime_error("CampaignJournal: not supported on this platform (" + path + ")");
}

bool CampaignJournal::append(std::size_t, const CellOutcome&) { return false; }

#endif

}  // namespace attain::sweep
