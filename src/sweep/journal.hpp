// Append-only resumable campaign journal: the crash-durable record of
// which cells of a campaign have completed, carrying each cell's full
// outcome (status, attempts, error, binary result) plus content digests so
// a torn or corrupted tail is detected and dropped instead of trusted.
//
// File layout (all integers big-endian, via snap::wire frames):
//
//   header frame:  u32 'ATJL' | u8 version | u64 campaign_digest
//                  | u32 cell_count | u64 fnv1a64(preceding body bytes)
//   record frame:  u32 cell_index | u8 status | u32 attempts
//                  | u64 wall_bits | u32 error_len | error bytes
//                  | u8 has_result | [save_result bytes]
//                  | u64 result_digest | u64 fnv1a64(preceding body bytes)
//
// The campaign digest (scenario::grid_digest) binds the journal to one
// exact grid: resuming against a different grid throws instead of
// silently completing the wrong campaign. A record whose frame is short,
// whose trailing digest mismatches, or whose result digest mismatches
// ends the load — everything before it is kept, the file is truncated to
// the last intact record, and the affected cells simply re-run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/sweep.hpp"

namespace attain::sweep {

class CampaignJournal {
 public:
  struct LoadedCell {
    std::size_t index;
    CellOutcome outcome;  // spec left default; the caller owns specs
  };

  CampaignJournal() = default;
  ~CampaignJournal();
  CampaignJournal(CampaignJournal&& other) noexcept;
  CampaignJournal& operator=(CampaignJournal&& other) noexcept;
  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  /// Creates (truncating) `path` and writes the campaign header. Throws
  /// std::runtime_error when the file cannot be created.
  static CampaignJournal create(const std::string& path, std::uint64_t campaign_digest,
                                std::size_t cell_count);

  /// Opens an existing journal, validates its header against the campaign
  /// digest and cell count (throws std::runtime_error on mismatch or an
  /// unreadable header), loads every intact record into `loaded`, truncates
  /// any torn/corrupt tail, and positions the journal for append.
  static CampaignJournal resume(const std::string& path, std::uint64_t campaign_digest,
                                std::size_t cell_count, std::vector<LoadedCell>& loaded);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Appends one completed cell's record. Returns false without writing
  /// when the outcome's result is not binary-serializable (custom result
  /// types) — such a cell is simply re-run on resume.
  bool append(std::size_t cell_index, const CellOutcome& outcome);

  void close();

 private:
  int fd_{-1};
  std::string path_;
};

}  // namespace attain::sweep
