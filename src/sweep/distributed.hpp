// Sharded multi-process campaign runner: a coordinator that partitions a
// grid into warm-start-signature-affine shards (sweep::plan_work_items)
// and feeds a pool of forked worker *processes* over per-worker pipe
// pairs, generalizing the snap:: per-cell pipe + save_result/load_result
// protocol into length-prefixed, digest-checked frames (snap/wire.hpp).
//
// Why processes, not more threads: each worker owns a whole heap, its own
// mem::thread_slab() arenas, and its own snap:: COW warm-up lineage — so
// process isolation composes with (rather than replaces) the warm-start
// and slab wins, a crashing cell takes down only its worker, and the
// campaign spans every core the machine has without sharing one
// fork-snapshot ancestry.
//
// Guarantees:
//  - The merged results document is byte-identical to a single-process
//    SweepRunner run of the same grid (both runners execute the cell core
//    in sweep.hpp; outcomes land by grid index).
//  - A worker that dies (crash, SIGKILL, corrupt frame, timeout) is
//    respawned and its lost cells re-run *cold* with the full retry
//    budget — exactly SweepRunner's infrastructure-failure semantics.
//  - With a journal (sweep/journal.hpp), a killed coordinator resumes
//    from the completed-cell set instead of recomputing it, and the
//    resumed campaign's merged document is byte-identical to an
//    uninterrupted run.
#pragma once

#include "sweep/sweep.hpp"

namespace attain::sweep {

/// True when worker processes can be forked here (same conditions as
/// snap::fork_supported). When false, DistributedRunner degrades to an
/// in-process SweepRunner sweep (journal support included).
bool distributed_supported();

struct DistributedOptions {
  /// Worker processes; 0 = std::thread::hardware_concurrency().
  unsigned workers{0};
  /// Executions per cell before giving up (1 = no retry).
  unsigned max_attempts{1};
  /// Per-cell wall budget, checked cooperatively on completion (see
  /// SweepOptions::cell_timeout_seconds).
  double cell_timeout_seconds{0.0};
  /// Opt-in warm-start inside each worker: a worker runs its shard's
  /// signature groups from COW snapshot forks (snap::run_group), so the
  /// warm-start win multiplies with process parallelism.
  bool warm_start{false};
  /// Concurrent tail processes per warm group (per worker).
  int warm_tail_processes{4};
  /// Bounded dispatch window: work items in flight per worker. Small
  /// values keep the task pipes shallow (backpressure); larger values
  /// hide dispatch latency.
  std::size_t in_flight_per_worker{2};
  /// Append-only campaign journal path; empty disables journaling.
  std::string journal_path;
  /// With a journal_path: load the journal first and skip its completed
  /// cells (the journal must match this grid — see CampaignJournal).
  /// Without resume, the journal is created fresh (truncating any old
  /// file).
  bool resume{false};
  /// Worker-death budget per cell: a cell that keeps killing workers is
  /// marked Failed after this many respawn-and-retry rounds.
  unsigned max_cell_respawns{2};
  /// Kill (SIGKILL) and respawn a worker that has in-flight work but has
  /// streamed no frame for this long; 0 disables the watchdog.
  double worker_timeout_seconds{0.0};
  /// Same contract as SweepOptions::on_progress: exactly once per cell.
  /// Cells restored from the journal fire first, in grid order.
  std::function<void(const Progress&)> on_progress;
};

/// A SweepReport plus the distributed accounting: how the campaign was
/// sharded, how many workers served it, and what the failure/resume
/// machinery did.
struct DistributedReport {
  SweepReport sweep;            // cells in grid order; sweep.threads = workers
  unsigned workers{0};          // worker processes initially spawned
  std::size_t shards{0};        // work items dispatched (incl. re-dispatches)
  std::size_t respawns{0};      // workers respawned after death/corruption
  std::size_t resumed_cells{0}; // outcomes restored from the journal
  std::size_t journal_records{0};  // records appended this run

  /// The deterministic merged document — byte-identical to
  /// SweepRunner's results_json() for the same grid.
  std::string results_json() const { return sweep.results_json(); }
  /// Full document: timing + distributed accounting + per-cell details.
  std::string to_json() const;
  /// Human summary: the sweep summary plus worker/shard/respawn/resume
  /// accounting.
  std::string summary() const;
};

class DistributedRunner {
 public:
  explicit DistributedRunner(DistributedOptions options = {});

  /// Runs the campaign to completion; never throws for cell errors.
  /// Throws std::runtime_error for campaign-level errors only: an
  /// unwritable journal, or resuming against a mismatched grid.
  DistributedReport run(const std::vector<scenario::RunSpec>& grid) const;

  unsigned resolved_workers() const;

 private:
  DistributedOptions options_;
};

}  // namespace attain::sweep
