// Parallel experiment sweep engine. A SweepRunner executes an N-cell grid
// of independent scenario::RunSpec simulations on a thread pool: each
// cell's Scheduler stays single-threaded and deterministic, so a grid run
// with 1 thread and with N threads produces bit-identical per-cell results
// (the determinism tests compare the emitted JSON byte-for-byte). The
// runner captures per-cell exceptions (a failing cell is reported as
// `failed` without poisoning its siblings), retries failed cells, accounts
// wall-clock and virtual time, and reports live progress.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "scenario/run.hpp"

namespace attain::sweep {

enum class CellStatus : std::uint8_t {
  Ok,        // produced a result
  Failed,    // every attempt threw; `error` holds the last exception text
  TimedOut,  // completed but exceeded the per-cell wall budget (cells are
             // cooperative — they are never killed mid-simulation)
};

std::string to_string(CellStatus status);

/// Outcome of one grid cell, in grid order.
struct CellOutcome {
  scenario::RunSpec spec;
  CellStatus status{CellStatus::Failed};
  std::string error;                      // last exception text (Failed)
  unsigned attempts{0};                   // executions incl. retries
  double wall_seconds{0.0};               // last attempt's wall time
  scenario::RunResultPtr result;          // null unless Ok/TimedOut
  /// Distributed-runner accounting (sweep/distributed.*): global
  /// allocations the worker process performed while running this cell, and
  /// its thread slab's reserved bytes after the cell's teardown boundary —
  /// the per-worker steady-state memory guard reads these. Zero for
  /// thread-pool sweeps and when alloc_hook is not linked into the binary.
  /// Deliberately absent from the deterministic JSON.
  std::uint64_t worker_allocations{0};
  std::uint64_t worker_slab_reserved{0};

  /// Deterministic JSON for this cell: spec + status + result, no timing.
  void write_json(JsonWriter& w) const;
};

struct Progress {
  std::size_t completed{0};
  std::size_t total{0};
  const CellOutcome* cell{nullptr};
};

struct SweepOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency(). 1 runs the
  /// grid inline on the calling thread.
  unsigned threads{0};
  /// Executions per cell before giving up (1 = no retry).
  unsigned max_attempts{1};
  /// Per-cell wall-clock budget in seconds; 0 = unlimited. Checked when
  /// the cell completes (cooperative, deterministic results untouched).
  double cell_timeout_seconds{0.0};
  /// Called exactly once per cell, when the cell's outcome is final —
  /// retries and warm-start fallbacks never re-fire it, so `completed`
  /// marches 1..total. (Serialized; any thread.) Use
  /// make_progress_printer() for a stderr ticker.
  std::function<void(const Progress&)> on_progress;
  /// Opt-in warm-start: cells sharing a scenario::warmup_signature run
  /// from one copy-on-write snapshot fork (src/snap/) instead of each
  /// replaying the shared prefix. Results are byte-identical to cold runs
  /// (results_json does not change); cells that share nothing — unique
  /// signatures, custom cells — run cold, as does everything when
  /// snap::fork_supported() is false.
  bool warm_start{false};
  /// Concurrent tail processes per warm group.
  int warm_tail_processes{4};
};

/// Progress callback printing "[3/12] interruption/POX/fail-secure ok
/// (wall 1.24s, virtual 125s)" lines to stderr.
std::function<void(const Progress&)> make_progress_printer();

/// Everything a sweep produced, cells in grid order.
struct SweepReport {
  std::vector<CellOutcome> cells;
  unsigned threads{0};
  double wall_seconds{0.0};  // whole sweep
  /// Warm-start accounting: groups that produced at least one forked
  /// result, and cells whose result came from a forked tail. Both zero for
  /// cold sweeps.
  std::size_t warm_groups{0};
  std::size_t warm_cells{0};

  std::size_t ok() const;
  std::size_t failed() const;
  /// Sum of per-cell simulated virtual time.
  SimTime total_virtual_time() const;
  /// Simulated virtual seconds per wall second (the sweep's speedup over
  /// real time).
  double time_compression() const;

  const CellOutcome* find(const std::string& cell_id) const;

  /// Deterministic results document: {"cells": [...]} with spec + status +
  /// result per cell, grid-ordered, no wall-clock fields. Byte-identical
  /// across thread counts — the artifact tests and the speedup bench diff.
  std::string results_json() const;
  /// Full document: results plus wall-clock accounting ("timing" object
  /// and per-cell wall seconds/attempts).
  std::string to_json() const;
  /// Human summary line(s).
  std::string summary() const;
};

/// Thread-pool executor for RunSpec grids.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Runs every cell to completion; never throws for cell errors (they
  /// land in CellOutcome::status). Cells are claimed in grid order.
  SweepReport run(const std::vector<scenario::RunSpec>& grid) const;

  unsigned resolved_threads() const;

 private:
  SweepOptions options_;
};

// ---------------------------------------------------------------------------
// Cell-execution core: the per-cell semantics (retry budget, cooperative
// timeout, warm-group fallback rules) shared verbatim by the thread-pool
// SweepRunner above and the multi-process DistributedRunner
// (sweep/distributed.hpp). Because both runners call exactly these
// functions, an N-worker campaign's merged results are byte-identical to
// a single-process sweep by construction.
// ---------------------------------------------------------------------------

struct CellExecOptions {
  unsigned max_attempts{1};
  double cell_timeout_seconds{0.0};
  int warm_tail_processes{4};
};

/// Runs attempts first_attempt..max_attempts of `cell.spec` cold on the
/// calling thread, filling status/attempts/wall/error/result. Earlier
/// attempts (e.g. a warm tail whose cell threw) are assumed already
/// accounted in cell.attempts/error by the caller.
void run_cell_cold(CellOutcome& cell, unsigned first_attempt, const CellExecOptions& options);

/// Runs one warm-signature group from a shared COW snapshot fork
/// (snap::run_group), applying SweepRunner's fallback semantics per cell:
/// a tail that reported a cell exception consumes attempt 1 and retries
/// cold; a tail that never reported (infrastructure failure) re-runs cold
/// with the full budget. `outcomes` is parallel to `cells` (specs already
/// filled in). `on_final(cell, warm)` fires exactly once per cell when its
/// outcome is final; `warm` says the result came from a forked tail.
/// Returns the number of warm (forked) results.
std::size_t run_warm_group(const std::vector<scenario::RunSpec>& cells,
                           const std::vector<CellOutcome*>& outcomes,
                           const CellExecOptions& options,
                           const std::function<void(CellOutcome&, bool warm)>& on_final);

/// One unit of claimable work: a single cold cell, or a whole
/// warm-signature group (cells sharing one warm-up, run from one fork —
/// never split across threads or worker processes, which is what makes
/// shard assignment warm-start-signature-affine).
struct WorkItem {
  std::vector<std::size_t> cells;  // grid indices
  bool warm{false};
};

/// Partitions `grid` into work items, ordered by first grid index so
/// claiming stays deterministic. With warm_start, cells sharing a
/// warmup_signature group into one item (singleton groups run cold).
/// `skip` (optional, grid-sized) excludes cells — the resume path: cells
/// already completed in a journal are not re-planned.
std::vector<WorkItem> plan_work_items(const std::vector<scenario::RunSpec>& grid,
                                      bool warm_start,
                                      const std::vector<bool>* skip = nullptr);

}  // namespace attain::sweep
