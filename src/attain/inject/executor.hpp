// The attack executor of Algorithm 1 (§VI-B2): keeps the attack's current
// state σ_current, evaluates the saved state's rules against each incoming
// message, actuates actions through the message modifier, and returns the
// outgoing message list plus any executor-level effects (sleep, syscmds).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "attain/dsl/compiler.hpp"
#include "attain/inject/modifier.hpp"

namespace attain::inject {

struct SysCmdCall {
  std::string host;
  std::string command;
};

/// Everything one message's processing produced.
struct ExecutionResult {
  std::vector<OutMessage> outgoing;
  /// Accumulated SLEEP() time: the injector pauses processing this long.
  SimTime sleep{0};
  std::vector<SysCmdCall> syscmds;
};

struct ExecutorStats {
  std::uint64_t messages_processed{0};
  std::uint64_t rules_evaluated{0};
  std::uint64_t rules_matched{0};
  std::uint64_t actions_executed{0};
  std::uint64_t state_transitions{0};
  std::uint64_t capability_violations{0};  // runtime defence-in-depth hits
  std::uint64_t eval_errors{0};
};

class AttackExecutor {
 public:
  /// The executor holds references to the compiled attack and capability
  /// map; both must outlive it.
  AttackExecutor(const dsl::CompiledAttack& attack, const model::CapabilityMap& capabilities,
                 monitor::Monitor& monitor, Rng& rng);

  /// Resets to σ_start and re-initializes storage Δ (Algorithm 1 line 2).
  void reset();

  /// Processes one incoming message (Algorithm 1 lines 4–21, minus the
  /// actual sends, which the proxy performs with the returned list).
  ExecutionResult process(const lang::InFlightMessage& msg);

  const std::string& current_state_name() const;
  std::size_t current_state_index() const { return current_; }
  const lang::DequeStore& storage() const { return storage_; }
  lang::DequeStore& storage() { return storage_; }
  const ExecutorStats& stats() const { return stats_; }

 private:
  std::uint64_t next_id() { return ++id_counter_; }

  const dsl::CompiledAttack& attack_;
  const model::CapabilityMap& capabilities_;
  monitor::Monitor& monitor_;
  Rng& rng_;
  lang::DequeStore storage_;
  std::size_t current_{0};
  std::uint64_t id_counter_{1'000'000'000ULL};  // injected-message id space
  std::uint32_t xid_counter_{0x7a000000};
  ExecutorStats stats_;
};

}  // namespace attain::inject
