// The attack executor of Algorithm 1 (§VI-B2): keeps the attack's current
// state σ_current, evaluates the saved state's rules against each incoming
// message, actuates actions through the message modifier, and returns the
// outgoing message list plus any executor-level effects (sleep, syscmds).
//
// Hot-path layout: each state's rules are pre-bucketed by connection (no
// linear connection scan), each rule's guard prefilter is tested with one
// bitmask before anything else runs, and conditionals execute as compiled
// lang::Programs on a reusable evaluator — no allocation, no exceptions on
// the non-matching path. set_use_compiled(false) switches back to the
// tree-walk oracle (tests and benches compare both).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "attain/dsl/compiler.hpp"
#include "common/arena.hpp"
#include "attain/inject/modifier.hpp"

namespace attain::inject {

struct SysCmdCall {
  std::string host;
  std::string command;
};

/// Everything one message's processing produced.
struct ExecutionResult {
  OutMessageList outgoing;
  /// Accumulated SLEEP() time: the injector pauses processing this long.
  SimTime sleep{0};
  mem::vector<SysCmdCall> syscmds;
};

struct ExecutorStats {
  std::uint64_t messages_processed{0};
  /// Conditionals actually evaluated (guard-skipped rules don't count; the
  /// connection bucketing means rules on other connections never did).
  std::uint64_t rules_evaluated{0};
  std::uint64_t rules_matched{0};
  std::uint64_t actions_executed{0};
  std::uint64_t state_transitions{0};
  std::uint64_t capability_violations{0};  // runtime defence-in-depth hits
  std::uint64_t eval_errors{0};
  /// Rules dismissed by their guard prefilter (message type/direction/
  /// decodability can't possibly satisfy the conditional). In the seed
  /// implementation these either evaluated to false or raised an EvalError.
  std::uint64_t rules_skipped_by_guard{0};
  /// Conditionals evaluated via the compiled path (vs the tree oracle).
  std::uint64_t programs_executed{0};
};

class AttackExecutor {
 public:
  /// The executor holds references to the compiled attack and capability
  /// map; both must outlive it.
  AttackExecutor(const dsl::CompiledAttack& attack, const model::CapabilityMap& capabilities,
                 monitor::Monitor& monitor, Rng& rng);

  /// Resets to σ_start and re-initializes storage Δ (Algorithm 1 line 2).
  void reset();

  /// Processes one incoming message (Algorithm 1 lines 4–21, minus the
  /// actual sends, which the proxy performs with the returned list).
  ExecutionResult process(const lang::InFlightMessage& msg);

  /// Batch prefilter: true when process() for any message of this shape on
  /// `conn` is guaranteed to run zero rules — every rule in the current
  /// state's bucket carries a compiled program whose guard rejects the
  /// (direction, type, decodability) shape, so outgoing == [msg], no state
  /// or storage change, no monitor events. An empty bucket qualifies
  /// trivially. `type` is absent for sealed/undecodable frames, mirroring
  /// InFlightMessage::payload() == nullptr in Guard::admits().
  bool plan_guard_skip(ConnectionId conn, lang::Direction direction,
                       std::optional<ofp::MsgType> type) const;

  /// Counter mirror of process() for a message plan_guard_skip() accepted:
  /// one processed message, every bucket rule skipped by its guard.
  void tally_guard_skip(ConnectionId conn);

  /// Oracle mode: evaluate conditionals with the tree-walk instead of the
  /// compiled programs (also disables the guard prefilter, restoring the
  /// seed's evaluate-and-catch semantics). On by default.
  void set_use_compiled(bool use_compiled) { use_compiled_ = use_compiled; }
  bool use_compiled() const { return use_compiled_; }

  const std::string& current_state_name() const;
  std::size_t current_state_index() const { return current_; }
  const lang::DequeStore& storage() const { return storage_; }
  lang::DequeStore& storage() { return storage_; }
  const ExecutorStats& stats() const { return stats_; }

 private:
  std::uint64_t next_id() { return ++id_counter_; }

  const dsl::CompiledAttack& attack_;
  const model::CapabilityMap& capabilities_;
  monitor::Monitor& monitor_;
  Rng& rng_;
  lang::DequeStore storage_;
  std::size_t current_{0};
  std::uint64_t id_counter_{1'000'000'000ULL};  // injected-message id space
  std::uint32_t xid_counter_{0x7a000000};
  ExecutorStats stats_;
  bool use_compiled_{true};
  lang::ProgramEvaluator evaluator_;
  /// Per-state rule indices bucketed by connection, built once at
  /// construction (rule order within a bucket preserved).
  std::vector<mem::map<ConnectionId, mem::vector<std::uint32_t>>> rule_buckets_;
  /// Hoisted modifier context: the std::function id/xid allocators are
  /// built once here instead of twice per matched rule.
  ModifierContext mod_ctx_;
};

}  // namespace attain::inject
