#include "attain/inject/distributed.hpp"

#include "common/log.hpp"
#include "ofp/codec.hpp"

namespace attain::inject {

std::string to_string(Coordination mode) {
  return mode == Coordination::TotalOrder ? "total-order" : "local-replicas";
}

DistributedInjector::DistributedInjector(sim::Scheduler& sched, const topo::SystemModel& system,
                                         monitor::Monitor& monitor, unsigned shard_count,
                                         Coordination mode, SimTime coordination_latency,
                                         std::uint64_t seed)
    : sched_(sched),
      system_(system),
      monitor_(monitor),
      shard_count_(shard_count == 0 ? 1 : shard_count),
      mode_(mode),
      coordination_latency_(coordination_latency),
      rng_(seed) {}

void DistributedInjector::attach_connection(ConnectionId id, chan::EnvelopeSink to_controller,
                                            chan::EnvelopeSink to_switch) {
  if (!system_.has_control_connection(id)) {
    throw topo::ModelError("attach_connection: connection not in N_C");
  }
  bool tls = false;
  for (const topo::ControlConnSpec& spec : system_.control_connections()) {
    if (spec.id == id) tls = spec.tls;
  }
  endpoints_[id] = Endpoint{std::move(to_controller), std::move(to_switch), tls};
}

chan::EnvelopeSink DistributedInjector::switch_side_input(ConnectionId id) {
  return [this, id](chan::Envelope envelope) {
    on_envelope(id, chan::Direction::SwitchToController, std::move(envelope));
  };
}

chan::EnvelopeSink DistributedInjector::controller_side_input(ConnectionId id) {
  return [this, id](chan::Envelope envelope) {
    on_envelope(id, chan::Direction::ControllerToSwitch, std::move(envelope));
  };
}

void DistributedInjector::arm(const dsl::CompiledAttack& attack,
                              const model::CapabilityMap& capabilities) {
  executors_.clear();
  const unsigned replicas = mode_ == Coordination::TotalOrder ? 1 : shard_count_;
  for (unsigned i = 0; i < replicas; ++i) {
    executors_.push_back(std::make_unique<AttackExecutor>(attack, capabilities, monitor_, rng_));
  }
  ATTAIN_LOG(Info, "dist-injector") << "armed '" << attack.name << "' in " << to_string(mode_)
                                    << " mode across " << shard_count_ << " shards";
}

void DistributedInjector::disarm() { executors_.clear(); }

std::optional<std::string> DistributedInjector::current_state() const {
  if (executors_.empty()) return std::nullopt;
  return executors_.front()->current_state_name();
}

std::optional<std::string> DistributedInjector::current_state_of_shard(unsigned shard) const {
  if (executors_.empty()) return std::nullopt;
  if (mode_ == Coordination::TotalOrder) return executors_.front()->current_state_name();
  return executors_.at(shard)->current_state_name();
}

void DistributedInjector::on_envelope(ConnectionId id, chan::Direction direction,
                                      chan::Envelope envelope) {
  const auto endpoint = endpoints_.find(id);
  if (endpoint == endpoints_.end()) return;
  ++stats_.messages_interposed;
  if (endpoint->second.tls && !envelope.sealed()) envelope.seal();

  lang::InFlightMessage msg;
  msg.connection = id;
  msg.direction = direction;
  if (direction == chan::Direction::SwitchToController) {
    msg.source = id.sw;
    msg.destination = id.controller;
  } else {
    msg.source = id.controller;
    msg.destination = id.sw;
  }
  msg.timestamp = sched_.now();
  msg.id = next_message_id_++;
  msg.envelope = std::move(envelope);
  msg.tls = endpoint->second.tls;

  {
    monitor::Event event;
    event.kind = monitor::EventKind::MessageObserved;
    event.time = msg.timestamp;
    event.connection = id;
    event.direction = direction;
    event.message_id = msg.id;
    if (const ofp::Message* payload = msg.payload()) event.message_type = payload->type();
    event.length = msg.length();
    monitor_.record(std::move(event));
  }

  if (executors_.empty()) {
    deliver(OutMessage{std::move(msg), 0}, 0);
    return;
  }

  if (mode_ == Coordination::TotalOrder) {
    // Shard -> sequencer hop; the scheduler's FIFO tie-breaking at the
    // sequencer is the total order. The verdict pays the return hop.
    ++stats_.sequencer_round_trips;
    stats_.coordination_delay_total += 2 * coordination_latency_;
    auto shared = std::make_shared<lang::InFlightMessage>(std::move(msg));
    sched_.after(coordination_latency_, [this, shared] {
      execute_and_deliver(*executors_.front(), *shared, coordination_latency_);
    });
  } else {
    execute_and_deliver(*executors_[shard_of(id)], msg, 0);
  }
}

void DistributedInjector::execute_and_deliver(AttackExecutor& executor,
                                              const lang::InFlightMessage& msg,
                                              SimTime extra_delivery_delay) {
  ExecutionResult result = executor.process(msg);
  for (OutMessage& out : result.outgoing) {
    deliver(out, extra_delivery_delay);
  }
}

void DistributedInjector::deliver(const OutMessage& out, SimTime extra_delay) {
  const lang::InFlightMessage& msg = out.message;
  ConnectionId conn = msg.connection;
  if (msg.direction == chan::Direction::ControllerToSwitch) {
    if (msg.destination != conn.sw) conn.sw = msg.destination;
  } else {
    if (msg.destination != conn.controller) conn.controller = msg.destination;
  }
  auto do_send = [this, conn, direction = msg.direction, envelope = msg.envelope]() mutable {
    const auto ep = endpoints_.find(conn);
    if (ep == endpoints_.end()) return;
    ++stats_.messages_delivered;
    if (direction == chan::Direction::ControllerToSwitch) {
      if (ep->second.to_switch) ep->second.to_switch(std::move(envelope));
    } else {
      if (ep->second.to_controller) ep->second.to_controller(std::move(envelope));
    }
  };
  const SimTime delay = out.delay + extra_delay;
  if (delay > 0) {
    sched_.after(delay, do_send);
  } else {
    do_send();
  }
}

}  // namespace attain::inject
