// The MESSAGEMODIFIER of Algorithm 1: applies one attack action to the
// outgoing message list. Dropping clears the list, duplicating appends a
// copy, modifying rewrites payload fields and re-encodes the wire bytes,
// and so on. GoToState / Sleep / SysCmd are *not* handled here — the
// attack executor owns those (they affect executor state, not messages).
#pragma once

#include <functional>
#include <vector>

#include "attain/lang/actions.hpp"
#include "attain/lang/deque_store.hpp"
#include "attain/lang/program.hpp"
#include "attain/monitor/monitor.hpp"
#include "common/rng.hpp"

namespace attain::inject {

/// One entry of msg_out: a message awaiting delivery plus its accumulated
/// transmission delay.
struct OutMessage {
  lang::InFlightMessage message;
  SimTime delay{0};
};

/// Slab-backed (common/arena.hpp): one list per executor invocation on the
/// per-message hot path, so its storage recycles across frames.
using OutMessageList = std::vector<OutMessage, mem::SlabAllocator<OutMessage>>;

struct ModifierContext {
  /// The message that triggered the rule (msg_in of Algorithm 1).
  const lang::InFlightMessage* original{nullptr};
  lang::DequeStore* storage{nullptr};
  Rng* rng{nullptr};
  monitor::Monitor* monitor{nullptr};
  /// Allocates message ids for injected/duplicated messages.
  std::function<std::uint64_t()> next_id;
  /// Allocates OpenFlow xids for injected messages.
  std::function<std::uint32_t()> next_xid;
  const char* state_name{""};
  const char* rule_name{""};
  /// Compiled fast path for the current action's expression operand (e.g.
  /// modify(msg, field, <expr>)). When both are set, apply_action evaluates
  /// the program instead of tree-walking the ExprPtr; failures surface as
  /// the same EvalError the tree would have thrown. The executor re-points
  /// value_program before each action.
  lang::ProgramEvaluator* evaluator{nullptr};
  const lang::Program* value_program{nullptr};
};

/// Applies a message-level action to `out`. Returns false (with an
/// EvalError monitor event) when the action could not be applied — e.g.
/// modifying an unreadable payload or replaying from an empty deque.
bool apply_action(const lang::ActionSpec& action, OutMessageList& out,
                  ModifierContext& ctx);

}  // namespace attain::inject
