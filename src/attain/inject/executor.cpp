#include "attain/inject/executor.hpp"

namespace attain::inject {

AttackExecutor::AttackExecutor(const dsl::CompiledAttack& attack,
                               const model::CapabilityMap& capabilities,
                               monitor::Monitor& monitor, Rng& rng)
    : attack_(attack), capabilities_(capabilities), monitor_(monitor), rng_(rng) {
  for (const auto& [name, initial] : attack_.deques) {
    storage_.declare(name, initial);
  }
  rule_buckets_.resize(attack_.states.size());
  for (std::size_t s = 0; s < attack_.states.size(); ++s) {
    const auto& rules = attack_.states[s].rules;
    for (std::size_t r = 0; r < rules.size(); ++r) {
      rule_buckets_[s][rules[r].rule.connection].push_back(static_cast<std::uint32_t>(r));
    }
  }
  mod_ctx_.storage = &storage_;
  mod_ctx_.rng = &rng_;
  mod_ctx_.monitor = &monitor_;
  mod_ctx_.next_id = [this] { return next_id(); };
  mod_ctx_.next_xid = [this] { return ++xid_counter_; };
  mod_ctx_.evaluator = &evaluator_;
  reset();
}

void AttackExecutor::reset() {
  current_ = attack_.start_index;  // σ_current ← σ_start
  storage_.reset();
}

const std::string& AttackExecutor::current_state_name() const {
  return attack_.states[current_].name;
}

bool AttackExecutor::plan_guard_skip(ConnectionId conn, lang::Direction direction,
                                     std::optional<ofp::MsgType> type) const {
  if (!use_compiled_) return false;  // oracle mode evaluates every rule
  const auto bucket = rule_buckets_[current_].find(conn);
  if (bucket == rule_buckets_[current_].end()) return true;  // no rule bound to n
  const dsl::CompiledState& state = attack_.states[current_];
  for (const std::uint32_t rule_index : bucket->second) {
    const dsl::CompiledRule& compiled = state.rules[rule_index];
    if (!compiled.has_programs) return false;  // would tree-walk: not skippable
    const lang::Guard& guard = compiled.program.guard();
    // Shape-level Guard::admits(): direction bit, then undecodable_ok for
    // payload-less frames, then the type bit. Any admitted rule would run.
    if ((guard.direction_mask & (1u << static_cast<unsigned>(direction))) == 0) continue;
    if (!type.has_value()) {
      if (guard.undecodable_ok) return false;
      continue;
    }
    if ((guard.type_mask >> static_cast<unsigned>(*type)) & 1u) return false;
  }
  return true;
}

void AttackExecutor::tally_guard_skip(ConnectionId conn) {
  ++stats_.messages_processed;
  const auto bucket = rule_buckets_[current_].find(conn);
  if (bucket != rule_buckets_[current_].end()) {
    stats_.rules_skipped_by_guard += bucket->second.size();
  }
}

ExecutionResult AttackExecutor::process(const lang::InFlightMessage& msg) {
  ++stats_.messages_processed;
  ExecutionResult result;
  // line 5: msg_out ← [msg_in]
  result.outgoing.push_back(OutMessage{msg, 0});
  // line 6: σ_previous ← σ_current (rules of the state at arrival apply,
  // even if an earlier rule in the same state transitions away).
  const std::size_t previous = current_;
  const dsl::CompiledState& state = attack_.states[previous];

  const auto bucket = rule_buckets_[previous].find(msg.connection);
  if (bucket == rule_buckets_[previous].end()) return result;  // no rule bound to n

  for (const std::uint32_t rule_index : bucket->second) {
    const dsl::CompiledRule& compiled = state.rules[rule_index];
    const lang::Rule& rule = compiled.rule;
    const bool run_program = use_compiled_ && compiled.has_programs;

    // One bitmask test dismisses the whole rule when the message's shape
    // (type x direction x decodability) can't satisfy the conditional — in
    // particular the seed's throw-per-absent-field steady state.
    if (run_program && !compiled.program.guard().admits(msg)) {
      ++stats_.rules_skipped_by_guard;
      continue;
    }
    ++stats_.rules_evaluated;

    // Defence in depth: the compiler already proved required ⊆ granted,
    // but a hand-built CompiledAttack could bypass it.
    if (!capabilities_.allows(rule.connection, compiled.required)) {
      ++stats_.capability_violations;
      if (monitor_.enabled(monitor::EventKind::EvalError)) {
        monitor::Event event;
        event.kind = monitor::EventKind::EvalError;
        event.time = msg.timestamp;
        event.connection = msg.connection;
        event.rule = rule.name;
        event.state = state.name;
        event.detail = "runtime capability violation";
        monitor_.record(std::move(event));
      } else {
        monitor_.tally(monitor::EventKind::EvalError);
      }
      continue;
    }

    lang::EvalContext ectx;
    ectx.message = &msg;
    ectx.storage = &storage_;
    ectx.rng = &rng_;

    bool matched = false;
    if (run_program) {
      ++stats_.programs_executed;
      const lang::ExecStatus status = evaluator_.run_bool(compiled.program, ectx, matched);
      if (status != lang::ExecStatus::Ok) {
        matched = false;
        ++stats_.eval_errors;
        if (monitor_.enabled(monitor::EventKind::EvalError)) {
          monitor::Event event;
          event.kind = monitor::EventKind::EvalError;
          event.time = msg.timestamp;
          event.connection = msg.connection;
          event.message_id = msg.id;
          event.rule = rule.name;
          event.state = state.name;
          event.detail = evaluator_.error_detail(compiled.program, ectx);
          monitor_.record(std::move(event));
        } else {
          monitor_.tally(monitor::EventKind::EvalError);
        }
      }
    } else {
      try {
        matched = lang::evaluate_bool(*rule.conditional, ectx);
      } catch (const std::exception& err) {
        ++stats_.eval_errors;
        if (monitor_.enabled(monitor::EventKind::EvalError)) {
          monitor::Event event;
          event.kind = monitor::EventKind::EvalError;
          event.time = msg.timestamp;
          event.connection = msg.connection;
          event.message_id = msg.id;
          event.rule = rule.name;
          event.state = state.name;
          event.detail = err.what();
          monitor_.record(std::move(event));
        } else {
          monitor_.tally(monitor::EventKind::EvalError);
        }
      }
    }
    if (!matched) continue;

    ++stats_.rules_matched;
    if (monitor_.enabled(monitor::EventKind::RuleMatched)) {
      monitor::Event event;
      event.kind = monitor::EventKind::RuleMatched;
      event.time = msg.timestamp;
      event.connection = msg.connection;
      event.message_id = msg.id;
      if (const ofp::Message* payload = msg.payload()) event.message_type = payload->type();
      event.rule = rule.name;
      event.state = state.name;
      monitor_.record(std::move(event));
    } else {
      monitor_.tally(monitor::EventKind::RuleMatched);
    }

    mod_ctx_.original = &msg;
    mod_ctx_.state_name = state.name.c_str();
    mod_ctx_.rule_name = rule.name.c_str();

    for (std::size_t action_index = 0; action_index < rule.actions.size(); ++action_index) {
      const lang::ActionSpec& action = rule.actions[action_index];
      ++stats_.actions_executed;
      if (const auto* go = std::get_if<lang::ActGoTo>(&action)) {
        const std::size_t target = attack_.state_index(go->state);
        if (target != current_) {
          current_ = target;  // lines 11–12
          ++stats_.state_transitions;
          if (monitor_.enabled(monitor::EventKind::StateTransition)) {
            monitor::Event event;
            event.kind = monitor::EventKind::StateTransition;
            event.time = msg.timestamp;
            event.connection = msg.connection;
            event.rule = rule.name;
            event.state = state.name;
            event.detail = "-> " + go->state;
            monitor_.record(std::move(event));
          } else {
            monitor_.tally(monitor::EventKind::StateTransition);
          }
        }
        continue;
      }
      if (const auto* sleep = std::get_if<lang::ActSleep>(&action)) {
        result.sleep += sleep->duration;
        continue;
      }
      if (const auto* syscmd = std::get_if<lang::ActSysCmd>(&action)) {
        result.syscmds.push_back(SysCmdCall{syscmd->host, syscmd->command});
        if (monitor_.enabled(monitor::EventKind::SysCmd)) {
          monitor::Event event;
          event.kind = monitor::EventKind::SysCmd;
          event.time = msg.timestamp;
          event.rule = rule.name;
          event.state = state.name;
          event.detail = syscmd->host + ": " + syscmd->command;
          monitor_.record(std::move(event));
        } else {
          monitor_.tally(monitor::EventKind::SysCmd);
        }
        continue;
      }
      mod_ctx_.value_program =
          run_program && action_index < compiled.action_programs.size() &&
                  !compiled.action_programs[action_index].empty()
              ? &compiled.action_programs[action_index]
              : nullptr;
      apply_action(action, result.outgoing, mod_ctx_);  // line 14
    }
  }
  return result;
}

}  // namespace attain::inject
