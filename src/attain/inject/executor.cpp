#include "attain/inject/executor.hpp"

namespace attain::inject {

AttackExecutor::AttackExecutor(const dsl::CompiledAttack& attack,
                               const model::CapabilityMap& capabilities,
                               monitor::Monitor& monitor, Rng& rng)
    : attack_(attack), capabilities_(capabilities), monitor_(monitor), rng_(rng) {
  for (const auto& [name, initial] : attack_.deques) {
    storage_.declare(name, initial);
  }
  reset();
}

void AttackExecutor::reset() {
  current_ = attack_.start_index;  // σ_current ← σ_start
  storage_.reset();
}

const std::string& AttackExecutor::current_state_name() const {
  return attack_.states[current_].name;
}

ExecutionResult AttackExecutor::process(const lang::InFlightMessage& msg) {
  ++stats_.messages_processed;
  ExecutionResult result;
  // line 5: msg_out ← [msg_in]
  result.outgoing.push_back(OutMessage{msg, 0});
  // line 6: σ_previous ← σ_current (rules of the state at arrival apply,
  // even if an earlier rule in the same state transitions away).
  const std::size_t previous = current_;
  const dsl::CompiledState& state = attack_.states[previous];

  for (const dsl::CompiledRule& compiled : state.rules) {
    const lang::Rule& rule = compiled.rule;
    if (rule.connection != msg.connection) continue;  // rule bound to another n ∈ N_C
    ++stats_.rules_evaluated;

    // Defence in depth: the compiler already proved required ⊆ granted,
    // but a hand-built CompiledAttack could bypass it.
    if (!capabilities_.allows(rule.connection, compiled.required)) {
      ++stats_.capability_violations;
      monitor::Event event;
      event.kind = monitor::EventKind::EvalError;
      event.time = msg.timestamp;
      event.connection = msg.connection;
      event.rule = rule.name;
      event.state = state.name;
      event.detail = "runtime capability violation";
      monitor_.record(std::move(event));
      continue;
    }

    bool matched = false;
    try {
      lang::EvalContext ectx;
      ectx.message = &msg;
      ectx.storage = &storage_;
      ectx.rng = &rng_;
      matched = lang::evaluate_bool(*rule.conditional, ectx);
    } catch (const std::exception& err) {
      ++stats_.eval_errors;
      monitor::Event event;
      event.kind = monitor::EventKind::EvalError;
      event.time = msg.timestamp;
      event.connection = msg.connection;
      event.message_id = msg.id;
      event.rule = rule.name;
      event.state = state.name;
      event.detail = err.what();
      monitor_.record(std::move(event));
    }
    if (!matched) continue;

    ++stats_.rules_matched;
    {
      monitor::Event event;
      event.kind = monitor::EventKind::RuleMatched;
      event.time = msg.timestamp;
      event.connection = msg.connection;
      event.message_id = msg.id;
      if (const ofp::Message* payload = msg.payload()) event.message_type = payload->type();
      event.rule = rule.name;
      event.state = state.name;
      monitor_.record(std::move(event));
    }

    ModifierContext ctx;
    ctx.original = &msg;
    ctx.storage = &storage_;
    ctx.rng = &rng_;
    ctx.monitor = &monitor_;
    ctx.next_id = [this] { return next_id(); };
    ctx.next_xid = [this] { return ++xid_counter_; };
    ctx.state_name = state.name.c_str();
    ctx.rule_name = rule.name.c_str();

    for (const lang::ActionSpec& action : rule.actions) {
      ++stats_.actions_executed;
      if (const auto* go = std::get_if<lang::ActGoTo>(&action)) {
        const std::size_t target = attack_.state_index(go->state);
        if (target != current_) {
          current_ = target;  // lines 11–12
          ++stats_.state_transitions;
          monitor::Event event;
          event.kind = monitor::EventKind::StateTransition;
          event.time = msg.timestamp;
          event.connection = msg.connection;
          event.rule = rule.name;
          event.state = state.name;
          event.detail = "-> " + go->state;
          monitor_.record(std::move(event));
        }
        continue;
      }
      if (const auto* sleep = std::get_if<lang::ActSleep>(&action)) {
        result.sleep += sleep->duration;
        continue;
      }
      if (const auto* syscmd = std::get_if<lang::ActSysCmd>(&action)) {
        result.syscmds.push_back(SysCmdCall{syscmd->host, syscmd->command});
        monitor::Event event;
        event.kind = monitor::EventKind::SysCmd;
        event.time = msg.timestamp;
        event.rule = rule.name;
        event.state = state.name;
        event.detail = syscmd->host + ": " + syscmd->command;
        monitor_.record(std::move(event));
        continue;
      }
      apply_action(action, result.outgoing, ctx);  // line 14
    }
  }
  return result;
}

}  // namespace attain::inject
