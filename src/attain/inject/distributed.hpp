// Distributed runtime injection — the paper's §VIII-C discussion made
// concrete. The centralized injector imposes a total order on control-plane
// events by construction; a distributed deployment must either re-impose
// that order (paying latency) or accept divergent attack state.
//
// Two coordination modes are implemented:
//
//  * TotalOrder — shards forward every observed message to a sequencer
//    that runs the single attack executor (one σ_current, one Δ) and ships
//    verdicts back. Semantics are identical to the centralized injector;
//    each message pays 2 x coordination_latency. This is the "total
//    ordering could be imposed through distributed systems techniques ...
//    at the cost of increased latency" branch of §VIII-C.
//
//  * LocalReplicas — every shard runs its own executor replica
//    (independent σ_current and Δ) and processes locally with zero added
//    latency. Attacks whose state spans connections on different shards
//    diverge from the centralized semantics — the §VIII-C consistency
//    hazard, made observable for study.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "attain/inject/executor.hpp"
#include "chan/envelope.hpp"
#include "sim/scheduler.hpp"
#include "topo/system_model.hpp"

namespace attain::inject {

enum class Coordination : std::uint8_t { TotalOrder, LocalReplicas };

std::string to_string(Coordination mode);

struct DistributedStats {
  std::uint64_t messages_interposed{0};
  std::uint64_t messages_delivered{0};
  std::uint64_t sequencer_round_trips{0};  // TotalOrder coordination hops
  /// Sum of coordination delay added across messages (for the §VIII-C
  /// latency-cost measurement).
  SimTime coordination_delay_total{0};
};

class DistributedInjector {
 public:
  DistributedInjector(sim::Scheduler& sched, const topo::SystemModel& system,
                      monitor::Monitor& monitor, unsigned shard_count, Coordination mode,
                      SimTime coordination_latency, std::uint64_t seed = 0xd157);

  /// Wires a control-plane connection; it is owned by shard
  /// (switch index mod shard_count). Endpoints exchange decode-once
  /// envelopes, as with the centralized injector.
  void attach_connection(ConnectionId id, chan::EnvelopeSink to_controller,
                         chan::EnvelopeSink to_switch);

  chan::EnvelopeSink switch_side_input(ConnectionId id);
  chan::EnvelopeSink controller_side_input(ConnectionId id);

  /// Arms the attack: TotalOrder creates one executor (at the sequencer);
  /// LocalReplicas creates one executor per shard, each starting at
  /// σ_start with its own storage.
  void arm(const dsl::CompiledAttack& attack, const model::CapabilityMap& capabilities);
  void disarm();
  bool armed() const { return !executors_.empty(); }

  unsigned shard_count() const { return shard_count_; }
  unsigned shard_of(ConnectionId id) const { return id.sw.index % shard_count_; }
  Coordination mode() const { return mode_; }

  /// Current attack state: TotalOrder has one; LocalReplicas one per shard
  /// (divergence shows up as differing names here).
  std::optional<std::string> current_state() const;
  std::optional<std::string> current_state_of_shard(unsigned shard) const;

  const DistributedStats& stats() const { return stats_; }

 private:
  struct Endpoint {
    chan::EnvelopeSink to_controller;
    chan::EnvelopeSink to_switch;
    bool tls{false};
  };

  void on_envelope(ConnectionId id, chan::Direction direction, chan::Envelope envelope);
  void execute_and_deliver(AttackExecutor& executor, const lang::InFlightMessage& msg,
                           SimTime extra_delivery_delay);
  void deliver(const OutMessage& out, SimTime extra_delay);

  sim::Scheduler& sched_;
  const topo::SystemModel& system_;
  monitor::Monitor& monitor_;
  unsigned shard_count_;
  Coordination mode_;
  SimTime coordination_latency_;
  Rng rng_;

  std::map<ConnectionId, Endpoint> endpoints_;
  /// TotalOrder: size 1 (the sequencer's executor). LocalReplicas: one per
  /// shard.
  std::vector<std::unique_ptr<AttackExecutor>> executors_;
  DistributedStats stats_;
  std::uint64_t next_message_id_{1};
};

}  // namespace attain::inject
