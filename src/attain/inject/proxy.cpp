#include "attain/inject/proxy.hpp"

#include "common/log.hpp"
#include "ofp/codec.hpp"

namespace attain::inject {

namespace {

/// The channel stage that hands every frame to the RuntimeInjector. It
/// consumes the envelope; the injector's verdict re-enters the channel
/// through Channel::forward() (possibly on a different channel after a
/// redirect, possibly later after a delay).
class InjectorStage : public chan::Stage {
 public:
  InjectorStage(RuntimeInjector& injector, ConnectionId connection)
      : injector_(injector), connection_(connection) {}

  const char* name() const override { return "injector"; }

  void on_envelope(chan::Channel&, chan::Direction direction, chan::Envelope envelope,
                   const chan::EnvelopeSink&) override {
    injector_.on_envelope(connection_, direction, std::move(envelope));
  }

  bool plan_fast(chan::Channel&, const chan::BatchShape& shape) override {
    return injector_.plan_fast(connection_, shape);
  }

  bool on_envelope_fast(chan::Channel&, chan::Direction, chan::Envelope&) override {
    injector_.on_envelope_fast(connection_);
    return true;  // the channel forward()s, matching the scalar do_send
  }

 private:
  RuntimeInjector& injector_;
  ConnectionId connection_;
};

}  // namespace

RuntimeInjector::RuntimeInjector(sim::Scheduler& sched, const topo::SystemModel& system,
                                 monitor::Monitor& monitor, std::uint64_t fuzz_seed)
    : sched_(sched), system_(system), monitor_(monitor), rng_(fuzz_seed) {}

void RuntimeInjector::attach_connection(ConnectionId id, chan::EnvelopeSink to_controller,
                                        chan::EnvelopeSink to_switch) {
  if (!system_.has_control_connection(id)) {
    throw topo::ModelError("attach_connection: (" + system_.name_of(id.controller) + "," +
                           system_.name_of(id.sw) + ") is not in N_C");
  }
  bool tls = false;
  for (const topo::ControlConnSpec& spec : system_.control_connections()) {
    if (spec.id == id) tls = spec.tls;
  }
  endpoints_[id] = Endpoint{std::move(to_controller), std::move(to_switch), tls, nullptr};

  monitor::Event event;
  event.kind = monitor::EventKind::ConnectionAttached;
  event.time = sched_.now();
  event.connection = id;
  event.detail = tls ? "tls" : "tcp";
  monitor_.record(std::move(event));
}

void RuntimeInjector::attach_channel(chan::Channel& channel, ConnectionId id) {
  attach_connection(
      id,
      /*to_controller=*/
      [ch = &channel](chan::Envelope e) {
        ch->forward(chan::Direction::SwitchToController, std::move(e));
      },
      /*to_switch=*/
      [ch = &channel](chan::Envelope e) {
        ch->forward(chan::Direction::ControllerToSwitch, std::move(e));
      });
  endpoints_[id].channel = &channel;
  channel.add_stage(std::make_unique<chan::MonitorTapStage>(
      monitor_, id, [this] { return peek_next_message_id(); }));
  channel.add_stage(std::make_unique<chan::TraceStage>());
  channel.add_stage(std::make_unique<InjectorStage>(*this, id));
}

chan::EnvelopeSink RuntimeInjector::switch_side_input(ConnectionId id) {
  return [this, id](chan::Envelope envelope) {
    on_envelope(id, chan::Direction::SwitchToController, std::move(envelope));
  };
}

chan::EnvelopeSink RuntimeInjector::controller_side_input(ConnectionId id) {
  return [this, id](chan::Envelope envelope) {
    on_envelope(id, chan::Direction::ControllerToSwitch, std::move(envelope));
  };
}

void RuntimeInjector::arm(const dsl::CompiledAttack& attack,
                          const model::CapabilityMap& capabilities) {
  executor_ = std::make_unique<AttackExecutor>(attack, capabilities, monitor_, rng_);
  executor_->set_use_compiled(use_compiled_);
  ATTAIN_LOG(Info, "injector") << "armed attack '" << attack.name << "' at state "
                               << executor_->current_state_name();
}

void RuntimeInjector::disarm() { executor_.reset(); }

void RuntimeInjector::set_syscmd_handler(
    std::function<void(const std::string&, const std::string&)> handler) {
  syscmd_handler_ = std::move(handler);
}

std::optional<std::string> RuntimeInjector::current_state() const {
  if (!executor_) return std::nullopt;
  return executor_->current_state_name();
}

lang::InFlightMessage RuntimeInjector::make_in_flight(ConnectionId id, chan::Direction direction,
                                                      chan::Envelope envelope, bool tls) {
  lang::InFlightMessage msg;
  msg.connection = id;
  msg.direction = direction;
  if (direction == chan::Direction::SwitchToController) {
    msg.source = id.sw;
    msg.destination = id.controller;
  } else {
    msg.source = id.controller;
    msg.destination = id.sw;
  }
  msg.timestamp = sched_.now();
  msg.id = next_message_id_++;
  msg.envelope = std::move(envelope);
  msg.tls = tls;
  return msg;
}

void RuntimeInjector::on_envelope(ConnectionId id, chan::Direction direction,
                                  chan::Envelope envelope) {
  const auto endpoint = endpoints_.find(id);
  if (endpoint == endpoints_.end()) return;  // connection never attached
  ++stats_.messages_interposed;
  // The interposer cannot read ciphertext: seal before any rule runs (the
  // channel already sealed if the frame travelled one; the side-input path
  // seals here).
  if (endpoint->second.tls && !envelope.sealed()) envelope.seal();
  lang::InFlightMessage msg =
      make_in_flight(id, direction, std::move(envelope), endpoint->second.tls);

  if (endpoint->second.channel == nullptr) {
    // No channel (and hence no monitor-tap stage) upstream: record the
    // observation here.
    monitor::Event event;
    event.kind = monitor::EventKind::MessageObserved;
    event.time = msg.timestamp;
    event.connection = id;
    event.direction = direction;
    event.message_id = msg.id;
    if (const ofp::Message* payload = msg.payload()) event.message_type = payload->type();
    event.length = msg.length();
    monitor_.record(std::move(event));
  }

  if (sched_.now() < paused_until_) {
    // A SLEEP() is in effect: queue behind it, order preserved by the
    // scheduler's FIFO tie-breaking.
    auto shared = std::make_shared<lang::InFlightMessage>(std::move(msg));
    sched_.at(paused_until_, [this, shared] { process_now(*shared); });
    return;
  }
  process_now(msg);
}

bool RuntimeInjector::plan_fast(ConnectionId id, const chan::BatchShape& shape) const {
  if (sched_.now() < paused_until_) return false;  // SLEEP() queueing in effect
  const auto endpoint = endpoints_.find(id);
  if (endpoint == endpoints_.end()) return false;
  // The side-input (channel-less) path records MessageObserved here rather
  // than in a tap stage; keep it on the scalar path.
  if (endpoint->second.channel == nullptr) return false;
  // Seal state must already match so on_envelope()'s seal step is a no-op.
  if (endpoint->second.tls != shape.sealed) return false;
  // A full-event monitor would store a MessageForwarded Event per frame.
  if (monitor_.enabled(monitor::EventKind::MessageForwarded)) return false;
  if (!executor_) return true;  // disarmed: pure proxy
  return executor_->plan_guard_skip(id, shape.direction, shape.type);
}

void RuntimeInjector::on_envelope_fast(ConnectionId id) {
  ++stats_.messages_interposed;
  ++next_message_id_;  // the id this frame would have been assigned
  if (executor_) executor_->tally_guard_skip(id);
  ++stats_.messages_delivered;
  monitor_.tally(monitor::EventKind::MessageForwarded);
}

void RuntimeInjector::process_now(const lang::InFlightMessage& msg) {
  if (!executor_) {
    // Disarmed: pure proxy.
    deliver(OutMessage{msg, 0});
    return;
  }
  ExecutionResult result = executor_->process(msg);
  if (result.sleep > 0) {
    paused_until_ = std::max(paused_until_, sched_.now() + result.sleep);
  }
  for (const SysCmdCall& call : result.syscmds) {
    ++stats_.syscmds_executed;
    if (syscmd_handler_) syscmd_handler_(call.host, call.command);
  }
  const std::uint64_t before = stats_.messages_delivered;
  for (OutMessage& out : result.outgoing) {
    deliver(out);
  }
  if (stats_.messages_delivered == before) {
    ++stats_.messages_suppressed;
    const auto endpoint = endpoints_.find(msg.connection);
    if (endpoint != endpoints_.end() && endpoint->second.channel != nullptr) {
      endpoint->second.channel->note_suppressed(msg.direction);
    }
  }
}

void RuntimeInjector::deliver(const OutMessage& out) {
  const lang::InFlightMessage& msg = out.message;

  // Resolve the carrying connection: a redirect may have retargeted the
  // message at a different switch/controller; find the matching attached
  // connection.
  ConnectionId conn = msg.connection;
  if (msg.direction == chan::Direction::ControllerToSwitch) {
    if (msg.destination != conn.sw) conn.sw = msg.destination;
  } else {
    if (msg.destination != conn.controller) conn.controller = msg.destination;
  }
  const auto endpoint = endpoints_.find(conn);
  if (endpoint == endpoints_.end()) {
    ++stats_.undeliverable;
    if (monitor_.enabled(monitor::EventKind::EvalError)) {
      monitor::Event event;
      event.kind = monitor::EventKind::EvalError;
      event.time = sched_.now();
      event.connection = msg.connection;
      event.detail = "undeliverable: no attached connection for redirect target";
      monitor_.record(std::move(event));
    } else {
      monitor_.tally(monitor::EventKind::EvalError);
    }
    return;
  }

  auto do_send = [this, conn, direction = msg.direction, envelope = msg.envelope]() mutable {
    const auto ep = endpoints_.find(conn);
    if (ep == endpoints_.end()) return;
    ++stats_.messages_delivered;
    if (monitor_.enabled(monitor::EventKind::MessageForwarded)) {
      monitor::Event event;
      event.kind = monitor::EventKind::MessageForwarded;
      event.time = sched_.now();
      event.connection = conn;
      event.direction = direction;
      if (const ofp::Message* payload = envelope.message()) event.message_type = payload->type();
      event.length = envelope.wire_size();
      monitor_.record(std::move(event));
    } else {
      monitor_.tally(monitor::EventKind::MessageForwarded);
    }
    if (direction == chan::Direction::ControllerToSwitch) {
      if (ep->second.to_switch) ep->second.to_switch(std::move(envelope));
    } else {
      if (ep->second.to_controller) ep->second.to_controller(std::move(envelope));
    }
  };

  if (out.delay > 0) {
    sched_.after(out.delay, do_send);
  } else {
    do_send();
  }
}

}  // namespace attain::inject
