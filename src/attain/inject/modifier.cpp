#include "attain/inject/modifier.hpp"

#include "ofp/codec.hpp"
#include "ofp/fields.hpp"
#include "ofp/fuzz.hpp"

namespace attain::inject {

namespace {

using lang::InFlightMessage;

monitor::Event base_event(monitor::EventKind kind, const ModifierContext& ctx) {
  monitor::Event event;
  event.kind = kind;
  event.time = ctx.original != nullptr ? ctx.original->timestamp : 0;
  if (ctx.original != nullptr) {
    event.connection = ctx.original->connection;
    event.direction = ctx.original->direction;
    event.message_id = ctx.original->id;
    if (const ofp::Message* payload = ctx.original->payload()) event.message_type = payload->type();
    event.length = ctx.original->length();
  }
  event.rule = ctx.rule_name;
  event.state = ctx.state_name;
  return event;
}

void note_failure(ModifierContext& ctx, const std::string& what) {
  monitor::Event event = base_event(monitor::EventKind::EvalError, ctx);
  event.detail = what;
  if (ctx.monitor != nullptr) ctx.monitor->record(std::move(event));
}

void record(ModifierContext& ctx, monitor::EventKind kind, std::string detail = {}) {
  monitor::Event event = base_event(kind, ctx);
  event.detail = std::move(detail);
  if (ctx.monitor != nullptr) ctx.monitor->record(std::move(event));
}

lang::Value eval_or_default(const lang::ExprPtr& expr, const ModifierContext& ctx) {
  lang::EvalContext ectx;
  ectx.message = ctx.original;
  ectx.storage = ctx.storage;
  ectx.rng = ctx.rng;
  if (ctx.evaluator != nullptr && ctx.value_program != nullptr && !ctx.value_program->empty()) {
    lang::Value out;
    const lang::ExecStatus status = ctx.evaluator->run_value(*ctx.value_program, ectx, out);
    if (status != lang::ExecStatus::Ok) {
      // Matched-rule action failures are rare; re-raise with the oracle's
      // message so the surrounding note_failure paths stay identical.
      throw lang::EvalError(ctx.evaluator->error_detail(*ctx.value_program, ectx));
    }
    return out;
  }
  return lang::evaluate(*expr, ectx);
}

}  // namespace

bool apply_action(const lang::ActionSpec& action, OutMessageList& out,
                  ModifierContext& ctx) {
  using namespace lang;

  if (std::holds_alternative<ActDrop>(action)) {
    out.clear();
    record(ctx, monitor::EventKind::MessageDropped);
    return true;
  }
  if (std::holds_alternative<ActPass>(action)) {
    return true;  // explicit pass: the message stays in the list
  }
  if (const auto* delay = std::get_if<ActDelay>(&action)) {
    for (OutMessage& entry : out) entry.delay += delay->delay;
    record(ctx, monitor::EventKind::MessageDelayed);
    return true;
  }
  if (std::holds_alternative<ActDuplicate>(action)) {
    if (ctx.original == nullptr) return false;
    OutMessage copy;
    copy.message = *ctx.original;
    copy.message.id = ctx.next_id ? ctx.next_id() : 0;
    out.push_back(std::move(copy));
    record(ctx, monitor::EventKind::MessageDuplicated);
    return true;
  }
  if (const auto* read_meta = std::get_if<ActReadMeta>(&action)) {
    monitor::Event event = base_event(monitor::EventKind::ActionExecuted, ctx);
    event.detail = "read_meta";
    if (ctx.original != nullptr) {
      event.detail += ": len=" + std::to_string(ctx.original->length()) +
                      (read_meta->note.empty() ? "" : " note=" + read_meta->note);
    }
    if (ctx.monitor != nullptr) ctx.monitor->record(std::move(event));
    return true;
  }
  if (const auto* read = std::get_if<ActRead>(&action)) {
    if (ctx.original == nullptr || ctx.original->payload() == nullptr) {
      note_failure(ctx, "read(msg): payload not readable");
      return false;
    }
    monitor::Event event = base_event(monitor::EventKind::ActionExecuted, ctx);
    event.detail = "read: " + ctx.original->payload()->summary() +
                   (read->note.empty() ? "" : " note=" + read->note);
    if (ctx.monitor != nullptr) ctx.monitor->record(std::move(event));
    return true;
  }
  if (const auto* modify = std::get_if<ActModifyField>(&action)) {
    lang::Value value;
    try {
      value = eval_or_default(modify->value, ctx);
    } catch (const std::exception& err) {
      note_failure(ctx, std::string("modify value: ") + err.what());
      return false;
    }
    const auto* as_int = std::get_if<std::int64_t>(&value);
    if (as_int == nullptr) {
      note_failure(ctx, "modify(msg): value is not an integer");
      return false;
    }
    bool any = false;
    for (OutMessage& entry : out) {
      // mutable_payload() marks the cached wire bytes stale; the edited
      // message re-encodes lazily at delivery.
      ofp::Message* payload = entry.message.mutable_payload();
      if (payload == nullptr) continue;
      if (ofp::set_field(*payload, modify->path, static_cast<ofp::FieldValue>(*as_int))) {
        any = true;
      }
    }
    if (!any) {
      note_failure(ctx, "modify(msg): no outgoing message has field " + modify->path);
      return false;
    }
    record(ctx, monitor::EventKind::MessageModified, modify->path);
    return true;
  }
  if (const auto* redirect = std::get_if<ActModifyMeta>(&action)) {
    for (OutMessage& entry : out) entry.message.destination = redirect->new_destination;
    record(ctx, monitor::EventKind::MessageRedirected);
    return true;
  }
  if (const auto* fuzz = std::get_if<ActFuzz>(&action)) {
    if (ctx.rng == nullptr) return false;
    for (OutMessage& entry : out) {
      ofp::FuzzOptions options;
      options.bit_flips = fuzz->bit_flips;
      // mutable_wire() marks the decoded view stale; the receiver
      // re-decodes on demand (a fuzzed frame may be garbage, in which case
      // it sees raw corrupt bytes — exactly the capability's intent).
      ofp::fuzz_frame(entry.message.envelope.mutable_wire(), *ctx.rng, options);
    }
    record(ctx, monitor::EventKind::MessageFuzzed);
    return true;
  }
  if (const auto* inject = std::get_if<ActInject>(&action)) {
    if (ctx.original == nullptr) return false;
    OutMessage entry;
    InFlightMessage& msg = entry.message;
    msg.connection = ctx.original->connection;
    msg.direction = inject->direction;
    if (inject->direction == Direction::ControllerToSwitch) {
      msg.source = msg.connection.controller;
      msg.destination = msg.connection.sw;
    } else {
      msg.source = msg.connection.sw;
      msg.destination = msg.connection.controller;
    }
    msg.timestamp = ctx.original->timestamp;
    msg.id = ctx.next_id ? ctx.next_id() : 0;
    ofp::Message proto = inject->message;
    proto.xid = ctx.next_xid ? ctx.next_xid() : 0;
    msg.envelope = chan::Envelope(std::move(proto));  // wire encodes lazily
    msg.tls = ctx.original->tls;
    out.push_back(std::move(entry));
    record(ctx, monitor::EventKind::MessageInjected);
    return true;
  }
  if (const auto* send = std::get_if<ActSendStored>(&action)) {
    if (ctx.storage == nullptr) return false;
    try {
      lang::Value value;
      if (send->remove) {
        value = send->from_end ? ctx.storage->pop(send->deque) : ctx.storage->shift(send->deque);
      } else {
        value = send->from_end ? ctx.storage->examine_end(send->deque)
                               : ctx.storage->examine_front(send->deque);
      }
      const auto* stored = std::get_if<StoredMessage>(&value);
      if (stored == nullptr || !*stored) {
        note_failure(ctx, "send_stored: deque head is not a message");
        return false;
      }
      OutMessage entry;
      entry.message = **stored;
      entry.message.id = ctx.next_id ? ctx.next_id() : 0;
      out.push_back(std::move(entry));
      record(ctx, monitor::EventKind::MessageInjected, "replayed from " + send->deque);
      return true;
    } catch (const StorageError& err) {
      note_failure(ctx, err.what());
      return false;
    }
  }
  if (const auto* prepend = std::get_if<ActPrepend>(&action)) {
    try {
      lang::Value value;
      if (prepend->value) {
        value = eval_or_default(prepend->value, ctx);
      } else {
        value = std::make_shared<const InFlightMessage>(*ctx.original);
      }
      ctx.storage->prepend(prepend->deque, std::move(value));
      return true;
    } catch (const std::exception& err) {
      note_failure(ctx, err.what());
      return false;
    }
  }
  if (const auto* append = std::get_if<ActAppend>(&action)) {
    try {
      lang::Value value;
      if (append->value) {
        value = eval_or_default(append->value, ctx);
      } else {
        value = std::make_shared<const InFlightMessage>(*ctx.original);
      }
      ctx.storage->append(append->deque, std::move(value));
      return true;
    } catch (const std::exception& err) {
      note_failure(ctx, err.what());
      return false;
    }
  }
  if (const auto* shift = std::get_if<ActShift>(&action)) {
    try {
      ctx.storage->shift(shift->deque);
      return true;
    } catch (const StorageError& err) {
      note_failure(ctx, err.what());
      return false;
    }
  }
  if (const auto* pop = std::get_if<ActPop>(&action)) {
    try {
      ctx.storage->pop(pop->deque);
      return true;
    } catch (const StorageError& err) {
      note_failure(ctx, err.what());
      return false;
    }
  }
  // GoToState / Sleep / SysCmd are executor-level actions.
  note_failure(ctx, "action not handled by the message modifier: " + lang::to_string(action));
  return false;
}

}  // namespace attain::inject
