// The control-plane connection proxy of §VI-B2: a single, centralized
// runtime-injector instance interposing every control-plane connection
// (switch-side server, controller-side client), imposing a total order on
// control-plane events. Switches are pointed at the proxy instead of the
// controller — no switch or controller modification is required.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "attain/inject/executor.hpp"
#include "sim/scheduler.hpp"
#include "topo/system_model.hpp"

namespace attain::inject {

struct InjectorStats {
  std::uint64_t messages_interposed{0};
  std::uint64_t messages_delivered{0};
  std::uint64_t messages_suppressed{0};   // interposed minus delivered messages
  std::uint64_t syscmds_executed{0};
  std::uint64_t undeliverable{0};         // redirects to unattached connections
};

class RuntimeInjector {
 public:
  /// `syscmd_handler(host, command)` actuates SYSCMD() on a test host; the
  /// scenario harness registers one (e.g. "start iperf server").
  RuntimeInjector(sim::Scheduler& sched, const topo::SystemModel& system,
                  monitor::Monitor& monitor, std::uint64_t fuzz_seed = 0xa77a19);

  /// Wires one control-plane connection through the proxy. `to_controller`
  /// and `to_switch` deliver wire bytes to the real endpoints. The
  /// connection must exist in the system model's N_C (its TLS flag is
  /// taken from there).
  void attach_connection(ConnectionId id, std::function<void(Bytes)> to_controller,
                         std::function<void(Bytes)> to_switch);

  /// Input functions to hand to the endpoints: the switch sends its
  /// control bytes into switch_side_input; the controller into
  /// controller_side_input.
  std::function<void(Bytes)> switch_side_input(ConnectionId id);
  std::function<void(Bytes)> controller_side_input(ConnectionId id);

  /// Arms an attack: the executor starts at σ_start with fresh storage.
  /// Both referents must outlive the injector or a later disarm().
  void arm(const dsl::CompiledAttack& attack, const model::CapabilityMap& capabilities);

  /// Disarms: every subsequent message passes untouched.
  void disarm();
  bool armed() const { return executor_ != nullptr; }

  void set_syscmd_handler(std::function<void(const std::string&, const std::string&)> handler);

  const InjectorStats& stats() const { return stats_; }
  /// Current attack state name; std::nullopt when disarmed.
  std::optional<std::string> current_state() const;
  const AttackExecutor* executor() const { return executor_.get(); }

 private:
  struct Endpoint {
    std::function<void(Bytes)> to_controller;
    std::function<void(Bytes)> to_switch;
    bool tls{false};
  };

  void on_input(ConnectionId id, lang::Direction direction, Bytes bytes);
  void process_now(const lang::InFlightMessage& msg);
  void deliver(const OutMessage& out);
  lang::InFlightMessage make_in_flight(ConnectionId id, lang::Direction direction, Bytes bytes,
                                       bool tls);

  sim::Scheduler& sched_;
  const topo::SystemModel& system_;
  monitor::Monitor& monitor_;
  Rng rng_;
  std::map<ConnectionId, Endpoint> endpoints_;
  std::unique_ptr<AttackExecutor> executor_;
  std::function<void(const std::string&, const std::string&)> syscmd_handler_;
  InjectorStats stats_;
  std::uint64_t next_message_id_{1};
  /// SLEEP() pause: messages arriving before this instant queue up and are
  /// processed (in order) when the pause ends.
  SimTime paused_until_{0};
};

}  // namespace attain::inject
