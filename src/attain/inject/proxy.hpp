// The control-plane connection proxy of §VI-B2: a single, centralized
// runtime-injector instance interposing every control-plane connection
// (switch-side server, controller-side client), imposing a total order on
// control-plane events. Switches are pointed at the proxy instead of the
// controller — no switch or controller modification is required.
//
// The proxy speaks chan::Envelope: frames arrive with their decoded view
// already cached (decode-once), rules read it for free, and delivery hands
// the same envelope onward — the per-frame encode/decode round-trips of
// the old byte plumbing are gone. attach_channel() is the one-call wiring
// path: it installs the injector (plus monitor-tap and trace stages) on a
// chan::Channel's proxy point and delivers through the channel's egress.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "attain/inject/executor.hpp"
#include "chan/channel.hpp"
#include "sim/scheduler.hpp"
#include "topo/system_model.hpp"

namespace attain::inject {

struct InjectorStats {
  std::uint64_t messages_interposed{0};
  std::uint64_t messages_delivered{0};
  std::uint64_t messages_suppressed{0};   // interposed minus delivered messages
  std::uint64_t syscmds_executed{0};
  std::uint64_t undeliverable{0};         // redirects to unattached connections
};

class RuntimeInjector {
 public:
  /// `syscmd_handler(host, command)` actuates SYSCMD() on a test host; the
  /// scenario harness registers one (e.g. "start iperf server").
  RuntimeInjector(sim::Scheduler& sched, const topo::SystemModel& system,
                  monitor::Monitor& monitor, std::uint64_t fuzz_seed = 0xa77a19);

  /// Wires one control-plane connection through the proxy. `to_controller`
  /// and `to_switch` deliver envelopes to the real endpoints. The
  /// connection must exist in the system model's N_C (its TLS flag is
  /// taken from there).
  void attach_connection(ConnectionId id, chan::EnvelopeSink to_controller,
                         chan::EnvelopeSink to_switch);

  /// One-call channel wiring: attaches the connection, appends the stock
  /// stage set (monitor tap, trace, injector proxy) to the channel, and
  /// delivers through the channel's egress pipes. The channel must outlive
  /// the injector.
  void attach_channel(chan::Channel& channel, ConnectionId id);

  /// Input functions to hand to the endpoints: the switch sends its
  /// control frames into switch_side_input; the controller into
  /// controller_side_input. (attach_channel() wires these automatically.)
  chan::EnvelopeSink switch_side_input(ConnectionId id);
  chan::EnvelopeSink controller_side_input(ConnectionId id);

  /// The interposition point itself: every frame of an attached connection
  /// lands here (via a channel's injector stage or the side-input sinks).
  void on_envelope(ConnectionId id, chan::Direction direction, chan::Envelope envelope);

  /// Batch fast path (see chan::Stage::plan_fast): true when on_envelope()
  /// for any frame of this shape on `id` reduces to counter bookkeeping
  /// plus one channel forward — no SLEEP() queueing, no rule evaluation
  /// (disarmed, or every bucketed rule guard-rejects the shape), no stored
  /// monitor events, no redirect or suppression. The channel then calls
  /// on_envelope_fast() per frame and forwards the envelope itself.
  bool plan_fast(ConnectionId id, const chan::BatchShape& shape) const;
  /// Counter mirror of one fast-pathed frame (pairs with plan_fast()).
  void on_envelope_fast(ConnectionId id);

  /// Arms an attack: the executor starts at σ_start with fresh storage.
  /// Both referents must outlive the injector or a later disarm().
  void arm(const dsl::CompiledAttack& attack, const model::CapabilityMap& capabilities);

  /// Disarms: every subsequent message passes untouched.
  void disarm();
  bool armed() const { return executor_ != nullptr; }

  /// Selects the rule-evaluation engine for attacks armed after this call
  /// (compiled flat programs vs. the tree-walking interpreter). Plumbed
  /// from scenario::Options::use_compiled at testbed construction.
  void set_use_compiled(bool enabled) { use_compiled_ = enabled; }
  bool use_compiled() const { return use_compiled_; }

  void set_syscmd_handler(std::function<void(const std::string&, const std::string&)> handler);

  const InjectorStats& stats() const { return stats_; }
  /// The id the next interposed message will receive (monitor taps use
  /// this so observed-event ids agree with injector-assigned ids).
  std::uint64_t peek_next_message_id() const { return next_message_id_; }
  /// Current attack state name; std::nullopt when disarmed.
  std::optional<std::string> current_state() const;
  const AttackExecutor* executor() const { return executor_.get(); }

 private:
  struct Endpoint {
    chan::EnvelopeSink to_controller;
    chan::EnvelopeSink to_switch;
    bool tls{false};
    /// Set by attach_channel(): suppression verdicts are mirrored into the
    /// channel's counters, and MessageObserved recording is left to the
    /// channel's monitor-tap stage.
    chan::Channel* channel{nullptr};
  };

  void process_now(const lang::InFlightMessage& msg);
  void deliver(const OutMessage& out);
  lang::InFlightMessage make_in_flight(ConnectionId id, chan::Direction direction,
                                       chan::Envelope envelope, bool tls);

  sim::Scheduler& sched_;
  const topo::SystemModel& system_;
  monitor::Monitor& monitor_;
  Rng rng_;
  std::map<ConnectionId, Endpoint> endpoints_;
  std::unique_ptr<AttackExecutor> executor_;
  std::function<void(const std::string&, const std::string&)> syscmd_handler_;
  InjectorStats stats_;
  bool use_compiled_{true};
  std::uint64_t next_message_id_{1};
  /// SLEEP() pause: messages arriving before this instant queue up and are
  /// processed (in order) when the pause ends.
  SimTime paused_until_{0};
};

}  // namespace attain::inject
