#include "attain/model/capabilities.hpp"

#include <algorithm>
#include <cctype>

namespace attain::model {

std::string to_string(Capability capability) {
  switch (capability) {
    case Capability::DropMessage: return "DropMessage";
    case Capability::PassMessage: return "PassMessage";
    case Capability::DelayMessage: return "DelayMessage";
    case Capability::DuplicateMessage: return "DuplicateMessage";
    case Capability::ReadMessageMetadata: return "ReadMessageMetadata";
    case Capability::ModifyMessageMetadata: return "ModifyMessageMetadata";
    case Capability::FuzzMessage: return "FuzzMessage";
    case Capability::ReadMessage: return "ReadMessage";
    case Capability::ModifyMessage: return "ModifyMessage";
    case Capability::InjectNewMessage: return "InjectNewMessage";
  }
  return "?";
}

std::optional<Capability> capability_from_string(const std::string& text) {
  std::string key;
  for (const char c : text) {
    if (c == '_') continue;  // accept snake_case spellings
    key.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  static const std::pair<const char*, Capability> table[] = {
      {"dropmessage", Capability::DropMessage},
      {"passmessage", Capability::PassMessage},
      {"delaymessage", Capability::DelayMessage},
      {"duplicatemessage", Capability::DuplicateMessage},
      {"readmessagemetadata", Capability::ReadMessageMetadata},
      {"modifymessagemetadata", Capability::ModifyMessageMetadata},
      {"fuzzmessage", Capability::FuzzMessage},
      {"readmessage", Capability::ReadMessage},
      {"modifymessage", Capability::ModifyMessage},
      {"injectnewmessage", Capability::InjectNewMessage},
  };
  for (const auto& [name, cap] : table) {
    if (key == name) return cap;
  }
  return std::nullopt;
}

std::vector<Capability> CapabilitySet::to_vector() const {
  std::vector<Capability> caps;
  for (std::size_t i = 0; i < kCapabilityCount; ++i) {
    const auto c = static_cast<Capability>(i);
    if (contains(c)) caps.push_back(c);
  }
  return caps;
}

std::string CapabilitySet::to_string() const {
  std::string out = "{";
  const char* sep = "";
  for (const Capability c : to_vector()) {
    out += sep;
    out += model::to_string(c);
    sep = ",";
  }
  out += "}";
  return out;
}

void CapabilityMap::grant(ConnectionId connection, CapabilitySet capabilities) {
  entries_[connection] = entries_[connection] | capabilities;
}

CapabilitySet CapabilityMap::capabilities_on(ConnectionId connection) const {
  const auto it = entries_.find(connection);
  if (it == entries_.end()) return CapabilitySet::none();
  return it->second;
}

bool CapabilityMap::allows(ConnectionId connection, CapabilitySet required) const {
  return capabilities_on(connection).contains_all(required);
}

}  // namespace attain::model
