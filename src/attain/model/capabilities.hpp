// The paper's attacker capabilities model (§IV-C, Table I): the set Γ of
// per-message capabilities, the TLS / NoTLS capability classes, and the map
// Γ_{N_C} : N_C → P(Γ) assigning a capability set to each control-plane
// connection.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace attain::model {

/// Table I, in declaration order.
enum class Capability : std::uint8_t {
  DropMessage,
  PassMessage,
  DelayMessage,
  DuplicateMessage,
  ReadMessageMetadata,
  ModifyMessageMetadata,
  FuzzMessage,
  ReadMessage,
  ModifyMessage,
  InjectNewMessage,
};

inline constexpr std::size_t kCapabilityCount = 10;

std::string to_string(Capability capability);
/// Parses the paper's capability names ("DROPMESSAGE", case-insensitive,
/// also accepts snake_case "drop_message").
std::optional<Capability> capability_from_string(const std::string& text);

/// A subset of Γ as a small bitset with set-algebra helpers.
class CapabilitySet {
 public:
  constexpr CapabilitySet() = default;
  constexpr CapabilitySet(std::initializer_list<Capability> caps) {
    for (const Capability c : caps) bits_ |= bit(c);
  }

  /// Γ: every capability (the paper's Γ_NoTLS).
  static constexpr CapabilitySet all() {
    CapabilitySet s;
    s.bits_ = (1u << kCapabilityCount) - 1;
    return s;
  }
  static constexpr CapabilitySet none() { return CapabilitySet{}; }

  /// Γ_NoTLS = Γ (§IV-C1).
  static constexpr CapabilitySet no_tls() { return all(); }

  /// Γ_TLS = Γ \ {READMESSAGE, MODIFYMESSAGE, FUZZMESSAGE,
  /// INJECTNEWMESSAGE, MODIFYMESSAGEMETADATA} (§IV-C2): with an
  /// uncompromised PKI the attacker can neither understand payloads nor
  /// forge valid messages, but can still act on intercepted ciphertext and
  /// read metadata.
  static constexpr CapabilitySet tls() {
    CapabilitySet s = all();
    s.bits_ &= ~(bit(Capability::ReadMessage) | bit(Capability::ModifyMessage) |
                 bit(Capability::FuzzMessage) | bit(Capability::InjectNewMessage) |
                 bit(Capability::ModifyMessageMetadata));
    return s;
  }

  constexpr bool contains(Capability c) const { return (bits_ & bit(c)) != 0; }
  constexpr bool contains_all(CapabilitySet other) const {
    return (bits_ & other.bits_) == other.bits_;
  }
  constexpr void insert(Capability c) { bits_ |= bit(c); }
  constexpr void erase(Capability c) { bits_ &= ~bit(c); }
  constexpr bool empty() const { return bits_ == 0; }
  constexpr std::size_t size() const { return static_cast<std::size_t>(__builtin_popcount(bits_)); }

  constexpr CapabilitySet operator|(CapabilitySet other) const {
    CapabilitySet s;
    s.bits_ = bits_ | other.bits_;
    return s;
  }
  constexpr CapabilitySet operator&(CapabilitySet other) const {
    CapabilitySet s;
    s.bits_ = bits_ & other.bits_;
    return s;
  }
  /// Set difference (Γ \ other).
  constexpr CapabilitySet operator-(CapabilitySet other) const {
    CapabilitySet s;
    s.bits_ = bits_ & ~other.bits_;
    return s;
  }
  friend constexpr bool operator==(CapabilitySet, CapabilitySet) = default;

  std::vector<Capability> to_vector() const;
  std::string to_string() const;

 private:
  static constexpr std::uint16_t bit(Capability c) {
    return static_cast<std::uint16_t>(1u << static_cast<unsigned>(c));
  }
  std::uint16_t bits_{0};
};

/// Γ_{N_C}: the per-connection attacker capability assignment. Connections
/// not explicitly granted default to CapabilitySet::none() (the attacker
/// has no presence there).
class CapabilityMap {
 public:
  void grant(ConnectionId connection, CapabilitySet capabilities);
  CapabilitySet capabilities_on(ConnectionId connection) const;
  bool allows(ConnectionId connection, CapabilitySet required) const;

  const std::map<ConnectionId, CapabilitySet>& entries() const { return entries_; }

 private:
  std::map<ConnectionId, CapabilitySet> entries_;
};

}  // namespace attain::model
