// Small metric/reporting helpers used by the experiment harness and the
// benchmark binaries: summary statistics over trial vectors and an aligned
// text-table renderer for paper-style result tables.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace attain::monitor {

/// Summary statistics over a sample vector (empty-safe).
struct Summary {
  std::size_t n{0};
  double mean{0.0};
  double min{0.0};
  double max{0.0};
  double stddev{0.0};
};

Summary summarize(const std::vector<double>& samples);

/// Renders aligned columns with a header row, like the paper's tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  std::string to_string() const;

  /// Formats a double with fixed precision.
  static std::string num(double value, int precision = 2);
  /// The paper's Fig. 11 convention: "*" for a denial of service
  /// (throughput zero / latency infinite).
  static std::string num_or_star(std::optional<double> value, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace attain::monitor
