#include "attain/monitor/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace attain::monitor {

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  s.n = samples.size();
  if (samples.empty()) return s;
  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0.0;
  for (const double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0.0;
  for (const double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = samples.size() > 1 ? std::sqrt(var / static_cast<double>(samples.size() - 1)) : 0.0;
  return s;
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ") << row[c]
          << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(header_);
  out << "|";
  for (const std::size_t w : widths) out << std::string(w + 2, '-') << "|";
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string TextTable::num_or_star(std::optional<double> value, int precision) {
  if (!value) return "*";
  return num(*value, precision);
}

}  // namespace attain::monitor
