#include "attain/monitor/monitor.hpp"

#include <sstream>

#include "ofp/messages.hpp"

namespace attain::monitor {

std::string to_string(EventKind kind) {
  switch (kind) {
    case EventKind::MessageObserved: return "observed";
    case EventKind::MessageForwarded: return "forwarded";
    case EventKind::MessageDropped: return "dropped";
    case EventKind::MessageDelayed: return "delayed";
    case EventKind::MessageDuplicated: return "duplicated";
    case EventKind::MessageModified: return "modified";
    case EventKind::MessageFuzzed: return "fuzzed";
    case EventKind::MessageInjected: return "injected";
    case EventKind::MessageRedirected: return "redirected";
    case EventKind::RuleMatched: return "rule-matched";
    case EventKind::StateTransition: return "state-transition";
    case EventKind::ActionExecuted: return "action";
    case EventKind::SysCmd: return "syscmd";
    case EventKind::EvalError: return "eval-error";
    case EventKind::ConnectionAttached: return "attached";
  }
  return "?";
}

void Monitor::record(Event event) {
  ++kind_counts_[event.kind];
  if (event.kind == EventKind::MessageObserved) {
    if (event.message_type) ++type_counts_[*event.message_type];
    ++conn_counts_[{event.connection, event.direction}];
  }
  if (!counters_only_) events_.push_back(std::move(event));
}

void Monitor::clear() {
  events_.clear();
  kind_counts_.clear();
  type_counts_.clear();
  conn_counts_.clear();
}

std::uint64_t Monitor::count(EventKind kind) const {
  const auto it = kind_counts_.find(kind);
  return it == kind_counts_.end() ? 0 : it->second;
}

std::uint64_t Monitor::observed_of_type(ofp::MsgType type) const {
  const auto it = type_counts_.find(type);
  return it == type_counts_.end() ? 0 : it->second;
}

std::uint64_t Monitor::observed_on(ConnectionId connection, lang::Direction direction) const {
  const auto it = conn_counts_.find({connection, direction});
  return it == conn_counts_.end() ? 0 : it->second;
}

std::vector<Event> Monitor::select(const std::function<bool(const Event&)>& predicate) const {
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (predicate(e)) out.push_back(e);
  }
  return out;
}

std::string Monitor::to_csv() const {
  std::ostringstream out;
  out << "time_s,kind,controller,switch,direction,message_id,message_type,length,rule,state,"
         "detail\n";
  auto csv_escape = [](const std::string& s) {
    std::string quoted = "\"";
    for (const char c : s) {
      if (c == '"') quoted += "\"\"";
      else quoted += c;
    }
    return quoted + "\"";
  };
  for (const Event& e : events_) {
    out << to_seconds(e.time) << ',' << to_string(e.kind) << ','
        << e.connection.controller.index << ',' << e.connection.sw.index << ','
        << (e.direction == lang::Direction::SwitchToController ? "s2c" : "c2s") << ','
        << e.message_id << ',' << (e.message_type ? ofp::to_string(*e.message_type) : "") << ','
        << e.length << ',' << e.rule << ',' << e.state << ',' << csv_escape(e.detail) << "\n";
  }
  return out.str();
}

std::string Monitor::to_text(std::size_t max_events) const {
  std::ostringstream out;
  std::size_t n = 0;
  for (const Event& e : events_) {
    if (max_events != 0 && n++ >= max_events) {
      out << "... (" << events_.size() - max_events << " more)\n";
      break;
    }
    out << "t=" << to_seconds(e.time) << " " << to_string(e.kind);
    if (e.message_type) out << " " << ofp::to_string(*e.message_type);
    if (e.message_id != 0) out << " id=" << e.message_id;
    if (!e.rule.empty()) out << " rule=" << e.rule;
    if (!e.state.empty()) out << " state=" << e.state;
    if (!e.detail.empty()) out << " (" << e.detail << ")";
    out << "\n";
  }
  return out.str();
}

}  // namespace attain::monitor
