// Monitors (Fig. 7, §VI-B3): the framework-side recording of control-plane
// events — every interposed message, rule actuations, state transitions,
// injections, and SYSCMD invocations. Practitioners read the event log (or
// its counters) after a run; the experiment harness builds the paper's
// metrics from it. The monitor is test infrastructure and is not subject
// to the attacker capability model (which constrains only attack rules).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "attain/lang/value.hpp"
#include "common/arena.hpp"
#include "ofp/constants.hpp"

namespace attain::monitor {

enum class EventKind : std::uint8_t {
  MessageObserved,   // proxy saw a message (before rules)
  MessageForwarded,  // proxy delivered a message
  MessageDropped,    // removed from the outgoing list
  MessageDelayed,
  MessageDuplicated,
  MessageModified,
  MessageFuzzed,
  MessageInjected,
  MessageRedirected,
  RuleMatched,       // a conditional evaluated TRUE
  StateTransition,   // GoToState took effect
  ActionExecuted,
  SysCmd,
  EvalError,         // a conditional/action raised (treated as no-match)
  ConnectionAttached,
};

std::string to_string(EventKind kind);

/// Slab-backed event log storage (common/arena.hpp): the log grows during a
/// run and is torn down wholesale with the testbed, so its pages recycle
/// across sweep cells instead of churning the general heap.
struct Event {
  EventKind kind{EventKind::MessageObserved};
  SimTime time{0};
  ConnectionId connection;
  lang::Direction direction{lang::Direction::SwitchToController};
  std::uint64_t message_id{0};
  std::optional<ofp::MsgType> message_type;  // absent for TLS/undecodable
  std::size_t length{0};
  std::string rule;    // rule name, when applicable
  std::string state;   // attack state, when applicable
  std::string detail;  // free-form annotation
};

class Monitor {
 public:
  void record(Event event);

  using EventList = std::vector<Event, mem::SlabAllocator<Event>>;

  const EventList& events() const { return events_; }
  void clear();

  /// Number of events of a kind.
  std::uint64_t count(EventKind kind) const;
  /// Number of observed messages of an OpenFlow type (across connections).
  std::uint64_t observed_of_type(ofp::MsgType type) const;
  /// Observed messages on one connection, one direction.
  std::uint64_t observed_on(ConnectionId connection, lang::Direction direction) const;

  /// Events matching a predicate (convenience for tests/analysis).
  std::vector<Event> select(const std::function<bool(const Event&)>& predicate) const;

  /// Keep only counters, not the full event list (for long benchmark runs).
  void set_counters_only(bool counters_only) { counters_only_ = counters_only; }

  /// True when record() would store a full Event of this kind. When false,
  /// callers skip building the string-heavy Event and call tally() instead
  /// — same counters, none of the allocation. MessageObserved is always
  /// "enabled" because its type/direction fields feed dedicated counters
  /// even in counters-only mode.
  bool enabled(EventKind kind) const {
    return !counters_only_ || kind == EventKind::MessageObserved;
  }

  /// Counter-only fast path: counts the kind without storing an event.
  /// Pairs with enabled() so kind counts match the record() path exactly.
  void tally(EventKind kind, std::uint64_t n = 1) { kind_counts_[kind] += n; }

  bool counters_only() const { return counters_only_; }

  /// Counter-only mirror of a MessageObserved record(): bumps the kind,
  /// type, and per-connection counters exactly as record() would, without
  /// building the string-heavy Event. The channel's fast path calls this
  /// once per frame; only valid while counters_only() is true (otherwise
  /// the event list would diverge from the record() path).
  void tally_observed(std::optional<ofp::MsgType> type, ConnectionId connection,
                      lang::Direction direction) {
    ++kind_counts_[EventKind::MessageObserved];
    if (type) ++type_counts_[*type];
    ++conn_counts_[{connection, direction}];
  }

  /// Renders the log as text, one event per line.
  std::string to_text(std::size_t max_events = 0) const;

  /// Renders the log as CSV (header + one row per event) for offline
  /// analysis — the tcpdump-equivalent artifact of the paper's monitors.
  std::string to_csv() const;

 private:
  EventList events_;
  mem::map<EventKind, std::uint64_t> kind_counts_;
  mem::map<ofp::MsgType, std::uint64_t> type_counts_;
  mem::map<std::pair<ConnectionId, lang::Direction>, std::uint64_t> conn_counts_;
  bool counters_only_{false};
};

}  // namespace attain::monitor
