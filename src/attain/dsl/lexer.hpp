// Lexer for the ATTAIN attack-description DSL. The paper's artifact used
// XML schemas; this reproduction uses a compact text syntax with identical
// semantics (see docs in attain/dsl/parser.hpp for the grammar).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace attain::dsl {

enum class TokenKind : std::uint8_t {
  Ident,      // sigma1, c1, drop, FLOW_MOD
  Integer,    // 42, 0x1f
  Float,      // 2.5 (time values)
  String,     // "match.nw_src"
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semicolon, Colon, Dot,
  Arrow,      // ->
  DashDash,   // -- (link connector)
  EqEq, NotEq, Le, Ge, Lt, Gt, Assign,  // == != <= >= < > =
  Plus, Minus,
  End,        // end of input
};

struct Token {
  TokenKind kind{TokenKind::End};
  std::string text;        // identifier / string contents
  std::int64_t int_value{0};
  double float_value{0.0};
  unsigned line{1};
  unsigned column{1};
};

class LexError : public std::runtime_error {
 public:
  LexError(const std::string& what, unsigned line, unsigned column)
      : std::runtime_error("lex error at " + std::to_string(line) + ":" + std::to_string(column) +
                           ": " + what),
        line(line),
        column(column) {}
  unsigned line;
  unsigned column;
};

/// Tokenizes a whole source buffer. '#' starts a comment to end of line.
/// MAC and IPv4 addresses appear as string literals ("aa:bb:..", "10.0.1.2")
/// and are parsed by the pkt:: address types at parse time.
std::vector<Token> lex(const std::string& source);

std::string to_string(TokenKind kind);

}  // namespace attain::dsl
