#include "attain/dsl/templates.hpp"

#include <sstream>

namespace attain::dsl::templates {

namespace {

std::string grant_block(const std::vector<ConnRef>& connections, const std::string& grant) {
  std::ostringstream out;
  out << "attacker {\n";
  for (const ConnRef& conn : connections) {
    out << "  on (" << conn.controller << ", " << conn.sw << ") grant " << grant << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace

std::string suppress_type(const std::vector<ConnRef>& connections,
                          const std::string& message_type) {
  std::ostringstream out;
  out << grant_block(connections, "no_tls");
  out << "attack suppress_" << message_type << " {\n  start state sigma1 {\n";
  unsigned index = 1;
  for (const ConnRef& conn : connections) {
    out << "    rule phi" << index++ << " on (" << conn.controller << ", " << conn.sw << ") {\n"
        << "      requires { ReadMessage, DropMessage };\n"
        << "      when msg.type == " << message_type << ";\n"
        << "      do { drop(msg); }\n    }\n";
  }
  out << "  }\n}\n";
  return out.str();
}

std::string count_gate(const ConnRef& connection, const std::string& message_type,
                       unsigned count) {
  std::ostringstream out;
  out << grant_block({connection}, "no_tls");
  out << "attack count_gate_" << count << " {\n"
      << "  deque counter = [0];\n"
      << "  start state gate {\n"
      // gate before tally: the message that reaches the threshold passes.
      << "    rule gate on (" << connection.controller << ", " << connection.sw << ") {\n"
      << "      when msg.type == " << message_type << " and examine_front(counter) >= " << count
      << ";\n"
      << "      do { drop(msg); }\n    }\n"
      << "    rule tally on (" << connection.controller << ", " << connection.sw << ") {\n"
      << "      when msg.type == " << message_type << " and examine_front(counter) < " << count
      << ";\n"
      << "      do { pass(msg); prepend(counter, examine_front(counter) + 1); }\n    }\n"
      << "  }\n}\n";
  return out.str();
}

std::string delay_all(const std::vector<ConnRef>& connections, double delay_seconds) {
  std::ostringstream out;
  out << grant_block(connections, "tls");  // delay needs no payload access
  out << "attack delay_all {\n  start state sigma1 {\n";
  unsigned index = 1;
  for (const ConnRef& conn : connections) {
    out << "    rule phi" << index++ << " on (" << conn.controller << ", " << conn.sw << ") {\n"
        << "      requires { ReadMessageMetadata, DelayMessage };\n"
        << "      when msg.length >= 0;\n"
        << "      do { delay(msg, " << delay_seconds << " s); }\n    }\n";
  }
  out << "  }\n}\n";
  return out.str();
}

std::string interrupt_after(const ConnRef& connection, const std::string& trigger_type) {
  std::ostringstream out;
  const std::string on = "on (" + connection.controller + ", " + connection.sw + ")";
  out << grant_block({connection}, "no_tls");
  out << "attack interrupt_after_" << trigger_type << " {\n"
      << "  start state sigma1 {\n"
      << "    rule phi1 " << on << " {\n"
      << "      when msg.type == FEATURES_REPLY;\n"
      << "      do { pass(msg); goto(sigma2); }\n    }\n  }\n"
      << "  state sigma2 {\n"
      << "    rule phi2 " << on << " {\n"
      << "      when msg.type == " << trigger_type << ";\n"
      << "      do { drop(msg); goto(sigma3); }\n    }\n  }\n"
      << "  state sigma3 {\n"
      << "    rule phi3 " << on << " {\n"
      << "      when msg.length >= 0;\n"
      << "      do { drop(msg); }\n    }\n  }\n}\n";
  return out.str();
}

std::string stochastic_drop(const ConnRef& connection, unsigned percent) {
  std::ostringstream out;
  out << grant_block({connection}, "tls");
  out << "attack stochastic_drop_" << percent << " {\n  start state sigma1 {\n"
      << "    rule coin on (" << connection.controller << ", " << connection.sw << ") {\n"
      << "      requires { DropMessage };\n"
      << "      when rand(100) < " << percent << ";\n"
      << "      do { drop(msg); }\n    }\n  }\n}\n";
  return out.str();
}

std::string fuzz_type(const ConnRef& connection, const std::string& message_type,
                      unsigned bit_flips) {
  std::ostringstream out;
  out << grant_block({connection}, "no_tls");
  out << "attack fuzz_" << message_type << " {\n  start state sigma1 {\n"
      << "    rule mangle on (" << connection.controller << ", " << connection.sw << ") {\n"
      << "      requires { ReadMessage, FuzzMessage };\n"
      << "      when msg.type == " << message_type << ";\n"
      << "      do { fuzz(msg, " << bit_flips << "); }\n    }\n  }\n}\n";
  return out.str();
}

std::string replay_amplifier(const ConnRef& connection, const std::string& message_type,
                             unsigned replay_count) {
  std::ostringstream out;
  const std::string on = "on (" + connection.controller + ", " + connection.sw + ")";
  out << grant_block({connection}, "no_tls");
  out << "attack replay_amplifier {\n"
      << "  deque batch;\n"
      << "  start state amplifying {\n"
      // amplify first: the captured message itself must not be amplified
      // in the same pass (rules share storage and run in order).
      << "    rule amplify " << on << " {\n"
      << "      when msg.type == " << message_type << " and len(batch) >= 1;\n"
      << "      do { pass(msg); ";
  // peek_send keeps the stored message, so every later trigger replays it
  // again; the DSL has no loops, so the factor is unrolled.
  for (unsigned i = 0; i < replay_count; ++i) {
    out << "peek_send_front(batch); ";
  }
  out << "}\n    }\n"
      << "    rule capture " << on << " {\n"
      << "      when msg.type == " << message_type << " and len(batch) < 1;\n"
      << "      do { pass(msg); append(batch, msg); }\n"
      << "    }\n  }\n}\n";
  return out.str();
}

std::string packet_in_flood(const ConnRef& connection, const std::string& trigger_type,
                            unsigned burst) {
  std::ostringstream out;
  const std::string on = "on (" + connection.controller + ", " + connection.sw + ")";
  out << grant_block({connection}, "no_tls");
  out << "attack packet_in_flood {\n"
      << "  start state flooding {\n"
      << "    rule amplify " << on << " {\n"
      << "      requires { ReadMessage, PassMessage, InjectNewMessage };\n"
      << "      when msg.type == " << trigger_type << ";\n"
      << "      do { pass(msg); ";
  // No loops in the DSL: the amplification factor is unrolled, exactly as
  // replay_amplifier unrolls its replay count.
  for (unsigned i = 0; i < burst; ++i) {
    out << "inject(packet_in, to_controller); ";
  }
  out << "}\n    }\n  }\n}\n";
  return out.str();
}

}  // namespace attain::dsl::templates
