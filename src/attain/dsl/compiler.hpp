// The compiler of Fig. 7: validates a parsed attack against the system
// model and the attacker capabilities model, and produces the executable
// form the runtime injector runs. Compilation fails (CompileError) when an
// attack is structurally ill-formed or requires capabilities the attacker
// was not granted on a rule's connection — the framework's enforcement of
// the §IV-C model.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "attain/lang/attack.hpp"
#include "attain/lang/program.hpp"
#include "attain/model/capabilities.hpp"
#include "topo/system_model.hpp"

namespace attain::dsl {

class CompileError : public std::runtime_error {
 public:
  explicit CompileError(const std::string& what) : std::runtime_error(what) {}
};

/// A rule with its capability requirement resolved and its GoTo targets
/// pre-resolved to state indices for O(1) transitions at runtime.
///
/// compile() also lowers the conditional (and every action's expression
/// operand) to flat lang::Programs — the executor's hot path. A hand-built
/// CompiledRule without programs (has_programs == false) still runs via the
/// tree-walk oracle.
struct CompiledRule {
  lang::Rule rule;
  model::CapabilitySet required;
  lang::Program program;  // compiled conditional, carries the guard
  /// Aligned with rule.actions; entries for actions without an expression
  /// operand are empty Programs.
  std::vector<lang::Program> action_programs;
  bool has_programs{false};
};

struct CompiledState {
  std::string name;
  std::vector<CompiledRule> rules;
};

/// Executable attack: states indexed, start resolved, storage declarations
/// carried over. The executor (attain/inject/executor.hpp) consumes this.
struct CompiledAttack {
  std::string name;
  std::vector<CompiledState> states;
  std::size_t start_index{0};
  std::vector<std::pair<std::string, std::vector<lang::Value>>> deques;
  /// The source attack (kept for graph rendering and listings).
  lang::Attack source;

  std::size_t state_index(const std::string& state_name) const;
};

/// Options controlling compile-time enforcement.
struct CompileOptions {
  /// Reject capability grants that exceed Γ_TLS on TLS-marked connections
  /// (on by default: an attacker cannot read/forge ciphertext without
  /// breaking the PKI, §IV-C2).
  bool enforce_tls_consistency{true};
};

CompiledAttack compile(const lang::Attack& attack, const topo::SystemModel& system,
                       const model::CapabilityMap& capabilities, CompileOptions options = {});

}  // namespace attain::dsl
