#include "attain/dsl/parser.hpp"

#include <map>

#include "attain/dsl/lexer.hpp"
#include "ofp/constants.hpp"

namespace attain::dsl {

namespace {

using lang::Expr;
using lang::ExprPtr;

/// Built-in named integer constants available in expressions.
const std::map<std::string, std::int64_t>& builtin_constants() {
  static const std::map<std::string, std::int64_t> table = [] {
    std::map<std::string, std::int64_t> t;
    using ofp::MsgType;
    const std::pair<const char*, MsgType> types[] = {
        {"HELLO", MsgType::Hello},
        {"ERROR", MsgType::Error},
        {"ECHO_REQUEST", MsgType::EchoRequest},
        {"ECHO_REPLY", MsgType::EchoReply},
        {"VENDOR", MsgType::Vendor},
        {"FEATURES_REQUEST", MsgType::FeaturesRequest},
        {"FEATURES_REPLY", MsgType::FeaturesReply},
        {"GET_CONFIG_REQUEST", MsgType::GetConfigRequest},
        {"GET_CONFIG_REPLY", MsgType::GetConfigReply},
        {"SET_CONFIG", MsgType::SetConfig},
        {"PACKET_IN", MsgType::PacketIn},
        {"FLOW_REMOVED", MsgType::FlowRemoved},
        {"PORT_STATUS", MsgType::PortStatus},
        {"PACKET_OUT", MsgType::PacketOut},
        {"FLOW_MOD", MsgType::FlowMod},
        {"PORT_MOD", MsgType::PortMod},
        {"STATS_REQUEST", MsgType::StatsRequest},
        {"STATS_REPLY", MsgType::StatsReply},
        {"BARRIER_REQUEST", MsgType::BarrierRequest},
        {"BARRIER_REPLY", MsgType::BarrierReply},
    };
    for (const auto& [name, type] : types) t[name] = static_cast<std::int64_t>(type);
    t["FLOW_MOD_ADD"] = 0;
    t["FLOW_MOD_MODIFY"] = 1;
    t["FLOW_MOD_MODIFY_STRICT"] = 2;
    t["FLOW_MOD_DELETE"] = 3;
    t["FLOW_MOD_DELETE_STRICT"] = 4;
    t["NO_BUFFER"] = static_cast<std::int64_t>(ofp::kNoBuffer);
    t["PORT_FLOOD"] = static_cast<std::int64_t>(ofp::Port::Flood);
    t["PORT_CONTROLLER"] = static_cast<std::int64_t>(ofp::Port::Controller);
    t["PORT_NONE"] = static_cast<std::int64_t>(ofp::Port::None);
    t["TO_CONTROLLER"] = 0;  // Direction values for msg.direction comparisons
    t["TO_SWITCH"] = 1;
    return t;
  }();
  return table;
}

class Parser {
 public:
  Parser(const std::string& source, const topo::SystemModel* external)
      : tokens_(lex(source)), external_(external) {
    if (external_ != nullptr) {
      doc_.system = *external_;
      doc_.has_system = true;
    }
  }

  Document parse() {
    while (!at(TokenKind::End)) {
      const Token& t = peek();
      if (is_keyword("system")) {
        parse_system_block();
      } else if (is_keyword("attacker")) {
        parse_attacker_block();
      } else if (is_keyword("attack")) {
        parse_attack_block();
      } else {
        fail("expected 'system', 'attacker', or 'attack' block, got '" + t.text + "'");
      }
    }
    return std::move(doc_);
  }

 private:
  // -- token plumbing --
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  bool at(TokenKind kind) const { return peek().kind == kind; }
  bool is_keyword(const char* word) const {
    return at(TokenKind::Ident) && peek().text == word;
  }
  const Token& advance() { return tokens_[pos_++]; }
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, peek().line, peek().column);
  }
  const Token& expect(TokenKind kind, const char* what) {
    if (!at(kind)) fail(std::string("expected ") + what + ", got " + to_string(peek().kind));
    return advance();
  }
  bool accept(TokenKind kind) {
    if (at(kind)) {
      advance();
      return true;
    }
    return false;
  }
  bool accept_keyword(const char* word) {
    if (is_keyword(word)) {
      advance();
      return true;
    }
    return false;
  }
  std::string expect_ident(const char* what) { return expect(TokenKind::Ident, what).text; }
  void expect_keyword(const char* word) {
    if (!accept_keyword(word)) fail(std::string("expected '") + word + "'");
  }

  topo::SystemModel& system() {
    if (!doc_.has_system) fail("a 'system' block (or external model) is required first");
    return doc_.system;
  }

  EntityId entity(const std::string& name) {
    const auto id = system().find(name);
    if (!id) fail("unknown entity '" + name + "'");
    return *id;
  }

  ConnectionId connection_pair() {
    expect(TokenKind::LParen, "'('");
    const EntityId controller = entity(expect_ident("controller name"));
    expect(TokenKind::Comma, "','");
    const EntityId sw = entity(expect_ident("switch name"));
    expect(TokenKind::RParen, "')'");
    if (controller.kind != EntityKind::Controller || sw.kind != EntityKind::Switch) {
      fail("connection pairs are (controller, switch)");
    }
    return ConnectionId{controller, sw};
  }

  // -- system block --
  void parse_system_block() {
    expect_keyword("system");
    if (external_ != nullptr) fail("'system' block not allowed with an external system model");
    doc_.has_system = true;
    expect(TokenKind::LBrace, "'{'");
    while (!accept(TokenKind::RBrace)) {
      if (accept_keyword("controller")) {
        parse_controller();
      } else if (accept_keyword("switch")) {
        parse_switch();
      } else if (accept_keyword("host")) {
        parse_host();
      } else if (accept_keyword("link")) {
        parse_link();
      } else if (accept_keyword("connection")) {
        parse_connection();
      } else {
        fail("expected controller/switch/host/link/connection declaration");
      }
    }
  }

  void parse_controller() {
    topo::ControllerSpec spec;
    spec.name = expect_ident("controller name");
    expect(TokenKind::LBrace, "'{'");
    while (!accept(TokenKind::RBrace)) {
      if (accept_keyword("ip")) {
        spec.address = pkt::Ipv4Address::parse(expect(TokenKind::String, "ip string").text);
      } else if (accept_keyword("port")) {
        spec.listen_port = static_cast<std::uint16_t>(expect(TokenKind::Integer, "port").int_value);
      } else {
        fail("expected 'ip' or 'port' in controller body");
      }
      expect(TokenKind::Semicolon, "';'");
    }
    doc_.system.add_controller(std::move(spec));
  }

  void parse_switch() {
    topo::SwitchSpec spec;
    spec.name = expect_ident("switch name");
    expect(TokenKind::LBrace, "'{'");
    while (!accept(TokenKind::RBrace)) {
      if (accept_keyword("dpid")) {
        spec.dpid = static_cast<std::uint64_t>(expect(TokenKind::Integer, "dpid").int_value);
      } else if (accept_keyword("ports")) {
        spec.num_ports =
            static_cast<std::uint16_t>(expect(TokenKind::Integer, "port count").int_value);
      } else if (accept_keyword("fail_mode")) {
        const std::string mode = expect_ident("'safe' or 'secure'");
        if (mode == "secure") {
          spec.fail_secure = true;
        } else if (mode == "safe") {
          spec.fail_secure = false;
        } else {
          fail("fail_mode must be 'safe' or 'secure'");
        }
      } else {
        fail("expected 'dpid', 'ports', or 'fail_mode' in switch body");
      }
      expect(TokenKind::Semicolon, "';'");
    }
    doc_.system.add_switch(std::move(spec));
  }

  void parse_host() {
    topo::HostSpec spec;
    spec.name = expect_ident("host name");
    expect(TokenKind::LBrace, "'{'");
    while (!accept(TokenKind::RBrace)) {
      if (accept_keyword("mac")) {
        spec.mac = pkt::MacAddress::parse(expect(TokenKind::String, "mac string").text);
      } else if (accept_keyword("ip")) {
        spec.ip = pkt::Ipv4Address::parse(expect(TokenKind::String, "ip string").text);
      } else {
        fail("expected 'mac' or 'ip' in host body");
      }
      expect(TokenKind::Semicolon, "';'");
    }
    doc_.system.add_host(std::move(spec));
  }

  void parse_link() {
    auto endpoint = [this]() -> std::pair<EntityId, std::optional<std::uint16_t>> {
      const EntityId id = entity(expect_ident("link endpoint"));
      std::optional<std::uint16_t> port;
      if (accept(TokenKind::Colon)) {
        port = static_cast<std::uint16_t>(expect(TokenKind::Integer, "port number").int_value);
      }
      return {id, port};
    };
    const auto [a, a_port] = endpoint();
    expect(TokenKind::DashDash, "'--'");
    const auto [b, b_port] = endpoint();
    expect(TokenKind::Semicolon, "';'");
    doc_.system.add_link(a, a_port, b, b_port);
  }

  void parse_connection() {
    const EntityId controller = entity(expect_ident("controller name"));
    expect(TokenKind::Arrow, "'->'");
    const EntityId sw = entity(expect_ident("switch name"));
    const bool tls = accept_keyword("tls");
    expect(TokenKind::Semicolon, "';'");
    doc_.system.add_control_connection(controller, sw, tls);
  }

  // -- attacker block --
  model::CapabilitySet parse_grant() {
    if (accept_keyword("no_tls") || accept_keyword("all")) return model::CapabilitySet::no_tls();
    if (accept_keyword("tls")) return model::CapabilitySet::tls();
    if (accept_keyword("none")) return model::CapabilitySet::none();
    expect(TokenKind::LBrace, "'{' or a capability class name");
    model::CapabilitySet caps;
    do {
      const std::string name = expect_ident("capability name");
      const auto cap = model::capability_from_string(name);
      if (!cap) fail("unknown capability '" + name + "'");
      caps.insert(*cap);
    } while (accept(TokenKind::Comma));
    expect(TokenKind::RBrace, "'}'");
    return caps;
  }

  void parse_attacker_block() {
    expect_keyword("attacker");
    expect(TokenKind::LBrace, "'{'");
    while (!accept(TokenKind::RBrace)) {
      expect_keyword("on");
      const ConnectionId conn = connection_pair();
      expect_keyword("grant");
      const model::CapabilitySet caps = parse_grant();
      expect(TokenKind::Semicolon, "';'");
      doc_.capabilities.grant(conn, caps);
    }
  }

  // -- attack block --
  void parse_attack_block() {
    expect_keyword("attack");
    lang::Attack attack;
    attack.name = expect_ident("attack name");
    expect(TokenKind::LBrace, "'{'");
    while (!accept(TokenKind::RBrace)) {
      if (accept_keyword("deque")) {
        parse_deque(attack);
      } else {
        const bool is_start = accept_keyword("start");
        expect_keyword("state");
        parse_state(attack, is_start);
      }
    }
    if (attack.start_state.empty() && !attack.states.empty()) {
      attack.start_state = attack.states.front().name;
    }
    doc_.attacks.push_back(std::move(attack));
  }

  void parse_deque(lang::Attack& attack) {
    const std::string name = expect_ident("deque name");
    std::vector<lang::Value> initial;
    if (accept(TokenKind::Assign)) {
      expect(TokenKind::LBracket, "'['");
      if (!at(TokenKind::RBracket)) {
        do {
          initial.push_back(parse_const_value());
        } while (accept(TokenKind::Comma));
      }
      expect(TokenKind::RBracket, "']'");
    }
    expect(TokenKind::Semicolon, "';'");
    attack.deques.emplace_back(name, std::move(initial));
  }

  void parse_state(lang::Attack& attack, bool is_start) {
    lang::AttackState state;
    state.name = expect_ident("state name");
    if (is_start) {
      if (!attack.start_state.empty()) fail("attack has two start states");
      attack.start_state = state.name;
    }
    if (accept(TokenKind::Semicolon)) {
      attack.states.push_back(std::move(state));  // `state x;` — empty end state
      return;
    }
    expect(TokenKind::LBrace, "'{'");
    while (!accept(TokenKind::RBrace)) {
      expect_keyword("rule");
      state.rules.push_back(parse_rule());
    }
    attack.states.push_back(std::move(state));
  }

  lang::Rule parse_rule() {
    lang::Rule rule;
    rule.name = expect_ident("rule name");
    expect_keyword("on");
    rule.connection = connection_pair();
    expect(TokenKind::LBrace, "'{'");
    if (accept_keyword("requires")) {
      rule.capabilities = parse_grant();
      expect(TokenKind::Semicolon, "';'");
    }
    expect_keyword("when");
    rule.conditional = parse_expr();
    expect(TokenKind::Semicolon, "';'");
    expect_keyword("do");
    expect(TokenKind::LBrace, "'{'");
    while (!accept(TokenKind::RBrace)) {
      rule.actions.push_back(parse_action());
      expect(TokenKind::Semicolon, "';'");
    }
    expect(TokenKind::RBrace, "'}'");
    return rule;
  }

  // -- expressions --
  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr left = parse_and();
    while (accept_keyword("or")) {
      left = Expr::binary(lang::BinaryOp::Or, std::move(left), parse_and());
    }
    return left;
  }

  ExprPtr parse_and() {
    ExprPtr left = parse_not();
    while (accept_keyword("and")) {
      left = Expr::binary(lang::BinaryOp::And, std::move(left), parse_not());
    }
    return left;
  }

  ExprPtr parse_not() {
    if (accept_keyword("not")) return Expr::negate(parse_not());
    return parse_comparison();
  }

  ExprPtr parse_comparison() {
    ExprPtr left = parse_additive();
    if (accept(TokenKind::EqEq)) {
      return Expr::binary(lang::BinaryOp::Eq, std::move(left), parse_additive());
    }
    if (accept(TokenKind::NotEq)) {
      return Expr::binary(lang::BinaryOp::Ne, std::move(left), parse_additive());
    }
    if (accept(TokenKind::Lt)) {
      return Expr::binary(lang::BinaryOp::Lt, std::move(left), parse_additive());
    }
    if (accept(TokenKind::Le)) {
      return Expr::binary(lang::BinaryOp::Le, std::move(left), parse_additive());
    }
    if (accept(TokenKind::Gt)) {
      return Expr::binary(lang::BinaryOp::Gt, std::move(left), parse_additive());
    }
    if (accept(TokenKind::Ge)) {
      return Expr::binary(lang::BinaryOp::Ge, std::move(left), parse_additive());
    }
    if (accept_keyword("in")) {
      expect(TokenKind::LBrace, "'{'");
      std::vector<lang::Value> set;
      if (!at(TokenKind::RBrace)) {
        do {
          set.push_back(parse_const_value());
        } while (accept(TokenKind::Comma));
      }
      expect(TokenKind::RBrace, "'}'");
      return Expr::in_set(std::move(left), std::move(set));
    }
    return left;
  }

  ExprPtr parse_additive() {
    ExprPtr left = parse_primary();
    while (true) {
      if (accept(TokenKind::Plus)) {
        left = Expr::binary(lang::BinaryOp::Add, std::move(left), parse_primary());
      } else if (accept(TokenKind::Minus)) {
        left = Expr::binary(lang::BinaryOp::Sub, std::move(left), parse_primary());
      } else {
        return left;
      }
    }
  }

  ExprPtr parse_primary() {
    if (at(TokenKind::Integer)) return Expr::literal_int(advance().int_value);
    if (at(TokenKind::String)) return Expr::literal_value(lang::Value{advance().text});
    if (accept(TokenKind::LParen)) {
      ExprPtr inner = parse_expr();
      expect(TokenKind::RParen, "')'");
      return inner;
    }
    if (accept(TokenKind::Minus)) {
      return Expr::binary(lang::BinaryOp::Sub, Expr::literal_int(0), parse_primary());
    }
    if (!at(TokenKind::Ident)) fail("expected expression");
    const std::string name = advance().text;

    if (name == "msg") {
      expect(TokenKind::Dot, "'.' after msg");
      const std::string prop = expect_ident("message property");
      if (prop == "field") {
        expect(TokenKind::LParen, "'('");
        const std::string path = expect(TokenKind::String, "field path string").text;
        expect(TokenKind::RParen, "')'");
        return Expr::field(path);
      }
      static const std::map<std::string, lang::Property> props = {
          {"source", lang::Property::Source},
          {"destination", lang::Property::Destination},
          {"timestamp", lang::Property::Timestamp},
          {"length", lang::Property::Length},
          {"id", lang::Property::Id},
          {"direction", lang::Property::Direction},
          {"type", lang::Property::Type},
      };
      const auto it = props.find(prop);
      if (it == props.end()) fail("unknown message property '" + prop + "'");
      return Expr::prop(it->second);
    }
    if (name == "ip" || name == "mac") {
      expect(TokenKind::LParen, "'('");
      std::int64_t value;
      if (at(TokenKind::String)) {
        const std::string text = advance().text;
        value = name == "ip"
                    ? static_cast<std::int64_t>(pkt::Ipv4Address::parse(text).value)
                    : static_cast<std::int64_t>(pkt::MacAddress::parse(text).to_u64());
      } else {
        const EntityId host = entity(expect_ident("host name"));
        const topo::HostSpec& spec = system().host(host);
        value = name == "ip" ? static_cast<std::int64_t>(spec.ip.value)
                             : static_cast<std::int64_t>(spec.mac.to_u64());
      }
      expect(TokenKind::RParen, "')'");
      return Expr::literal_int(value);
    }
    if (name == "rand") {
      expect(TokenKind::LParen, "'('");
      const std::int64_t bound = expect(TokenKind::Integer, "rand bound").int_value;
      expect(TokenKind::RParen, "')'");
      if (bound <= 0) fail("rand() bound must be positive");
      return Expr::random(bound);
    }
    if (name == "examine_front" || name == "examine_end" || name == "len") {
      expect(TokenKind::LParen, "'('");
      const std::string deque = expect_ident("deque name");
      expect(TokenKind::RParen, "')'");
      if (name == "examine_front") return Expr::deque_front(deque);
      if (name == "examine_end") return Expr::deque_end(deque);
      return Expr::deque_len(deque);
    }
    // Built-in constant?
    const auto& constants = builtin_constants();
    const auto constant = constants.find(name);
    if (constant != constants.end()) return Expr::literal_int(constant->second);
    // Entity name?
    if (doc_.has_system) {
      const auto id = doc_.system.find(name);
      if (id) return Expr::literal_int(lang::entity_value(*id));
    }
    fail("unknown identifier '" + name + "' in expression");
  }

  /// Constant values for set members and deque initializers.
  lang::Value parse_const_value() {
    if (at(TokenKind::Integer)) return lang::Value{advance().int_value};
    if (at(TokenKind::String)) return lang::Value{advance().text};
    if (accept(TokenKind::Minus)) {
      return lang::Value{-expect(TokenKind::Integer, "integer").int_value};
    }
    if (at(TokenKind::Ident)) {
      const std::string name = peek().text;
      if (name == "ip" || name == "mac") {
        // reuse expression machinery, then unwrap the literal
        const ExprPtr e = parse_primary();
        return e->literal;
      }
      advance();
      const auto& constants = builtin_constants();
      const auto constant = constants.find(name);
      if (constant != constants.end()) return lang::Value{constant->second};
      if (doc_.has_system) {
        const auto id = doc_.system.find(name);
        if (id) return lang::Value{lang::entity_value(*id)};
      }
      fail("unknown constant '" + name + "'");
    }
    fail("expected constant value");
  }

  SimTime parse_time() {
    double value;
    if (at(TokenKind::Float)) {
      value = advance().float_value;
    } else {
      value = static_cast<double>(expect(TokenKind::Integer, "time value").int_value);
    }
    const std::string unit = expect_ident("time unit (s/ms/us)");
    if (unit == "s") return seconds(value);
    if (unit == "ms") return static_cast<SimTime>(value * kMillisecond);
    if (unit == "us") return static_cast<SimTime>(value * kMicrosecond);
    fail("unknown time unit '" + unit + "'");
  }

  /// Parses `msg` or an expression for deque-store actions. Returns nullptr
  /// for the bare `msg` keyword (store the current message).
  ExprPtr parse_value_or_msg() {
    if (is_keyword("msg") && peek(1).kind != TokenKind::Dot) {
      advance();
      return nullptr;
    }
    return parse_expr();
  }

  void expect_msg_arg() {
    const std::string arg = expect_ident("'msg'");
    if (arg != "msg") fail("this action takes 'msg' as its argument");
  }

  // -- actions --
  lang::ActionSpec parse_action() {
    const std::string name = expect_ident("action name");
    expect(TokenKind::LParen, "'('");
    lang::ActionSpec action = parse_action_body(name);
    expect(TokenKind::RParen, "')'");
    return action;
  }

  lang::ActionSpec parse_action_body(const std::string& name) {
    if (name == "drop") {
      expect_msg_arg();
      return lang::ActDrop{};
    }
    if (name == "pass") {
      expect_msg_arg();
      return lang::ActPass{};
    }
    if (name == "delay") {
      expect_msg_arg();
      expect(TokenKind::Comma, "','");
      return lang::ActDelay{parse_time()};
    }
    if (name == "duplicate") {
      expect_msg_arg();
      return lang::ActDuplicate{};
    }
    if (name == "read_meta" || name == "read") {
      expect_msg_arg();
      std::string note;
      if (accept(TokenKind::Comma)) note = expect(TokenKind::String, "note string").text;
      if (name == "read_meta") return lang::ActReadMeta{note};
      return lang::ActRead{note};
    }
    if (name == "modify") {
      expect_msg_arg();
      expect(TokenKind::Comma, "','");
      const std::string path = expect(TokenKind::String, "field path").text;
      expect(TokenKind::Comma, "','");
      return lang::ActModifyField{path, parse_expr()};
    }
    if (name == "redirect") {
      expect_msg_arg();
      expect(TokenKind::Comma, "','");
      const EntityId target = entity(expect_ident("entity name"));
      lang::ActModifyMeta meta;
      meta.new_destination = target;
      return meta;
    }
    if (name == "fuzz") {
      expect_msg_arg();
      lang::ActFuzz fuzz;
      if (accept(TokenKind::Comma)) {
        fuzz.bit_flips =
            static_cast<unsigned>(expect(TokenKind::Integer, "bit flip count").int_value);
      }
      return fuzz;
    }
    if (name == "inject") {
      return parse_inject();
    }
    if (name == "send_front" || name == "send_end" || name == "peek_send_front" ||
        name == "peek_send_end") {
      lang::ActSendStored send;
      send.deque = expect_ident("deque name");
      send.from_end = (name == "send_end" || name == "peek_send_end");
      send.remove = (name == "send_front" || name == "send_end");
      return send;
    }
    if (name == "prepend" || name == "append") {
      const std::string deque = expect_ident("deque name");
      expect(TokenKind::Comma, "','");
      ExprPtr value = parse_value_or_msg();
      if (name == "prepend") return lang::ActPrepend{deque, std::move(value)};
      return lang::ActAppend{deque, std::move(value)};
    }
    if (name == "shift") return lang::ActShift{expect_ident("deque name")};
    if (name == "pop") return lang::ActPop{expect_ident("deque name")};
    if (name == "goto") return lang::ActGoTo{expect_ident("state name")};
    if (name == "sleep") return lang::ActSleep{parse_time()};
    if (name == "syscmd") {
      const std::string host = expect_ident("host name");
      entity(host);  // must exist
      expect(TokenKind::Comma, "','");
      const std::string command = expect(TokenKind::String, "command string").text;
      return lang::ActSysCmd{host, command};
    }
    fail("unknown action '" + name + "'");
  }

  lang::ActionSpec parse_inject() {
    const std::string tmpl = expect_ident("inject template");
    lang::ActInject inject;
    if (tmpl == "hello") {
      inject.message = ofp::make_message(0, ofp::Hello{});
    } else if (tmpl == "echo_request") {
      inject.message = ofp::make_message(0, ofp::EchoRequest{});
    } else if (tmpl == "barrier_request") {
      inject.message = ofp::make_message(0, ofp::BarrierRequest{});
    } else if (tmpl == "features_request") {
      inject.message = ofp::make_message(0, ofp::FeaturesRequest{});
    } else if (tmpl == "flow_mod_delete_all") {
      ofp::FlowMod mod;
      mod.command = ofp::FlowModCommand::Delete;
      mod.match = ofp::Match::wildcard_all();
      inject.message = ofp::make_message(0, std::move(mod));
    } else if (tmpl == "packet_out_flood") {
      ofp::PacketOut out;
      out.actions = ofp::output_to(ofp::Port::Flood);
      inject.message = ofp::make_message(0, std::move(out));
    } else if (tmpl == "packet_in") {
      // Canned table-miss notification (reason NoMatch, nothing buffered):
      // the volumetric PACKET_IN-flood building block — each injection
      // forces a controller table lookup/decision with no switch involved.
      ofp::PacketIn in;
      in.buffer_id = ofp::kNoBuffer;
      in.reason = ofp::PacketInReason::NoMatch;
      inject.message = ofp::make_message(0, std::move(in));
    } else {
      fail("unknown inject template '" + tmpl + "'");
    }
    expect(TokenKind::Comma, "','");
    const std::string direction = expect_ident("'to_switch' or 'to_controller'");
    if (direction == "to_switch") {
      inject.direction = lang::Direction::ControllerToSwitch;
    } else if (direction == "to_controller") {
      inject.direction = lang::Direction::SwitchToController;
    } else {
      fail("inject direction must be to_switch or to_controller");
    }
    return inject;
  }

  std::vector<Token> tokens_;
  std::size_t pos_{0};
  const topo::SystemModel* external_;
  Document doc_;
};

}  // namespace

Document parse_document(const std::string& source) {
  return Parser(source, nullptr).parse();
}

Document parse_document(const std::string& source, const topo::SystemModel& system) {
  return Parser(source, &system).parse();
}

}  // namespace attain::dsl
