#include "attain/dsl/codegen.hpp"

#include <algorithm>
#include <sstream>

namespace attain::dsl {

std::string generate_listing(const CompiledAttack& attack, const topo::SystemModel& system) {
  std::ostringstream out;
  out << "attack " << attack.name << "\n";
  out << "  start state: " << attack.states[attack.start_index].name << "\n";
  const auto absorbing = attack.source.absorbing_states();
  const auto ends = attack.source.end_states();
  out << "  absorbing states: {";
  for (std::size_t i = 0; i < absorbing.size(); ++i) out << (i ? "," : "") << absorbing[i];
  out << "}\n  end states: {";
  for (std::size_t i = 0; i < ends.size(); ++i) out << (i ? "," : "") << ends[i];
  out << "}\n";
  if (!attack.deques.empty()) {
    out << "  storage:\n";
    for (const auto& [name, initial] : attack.deques) {
      out << "    deque " << name << " = [";
      for (std::size_t i = 0; i < initial.size(); ++i) {
        out << (i ? "," : "") << lang::to_string(initial[i]);
      }
      out << "]\n";
    }
  }
  for (const CompiledState& state : attack.states) {
    out << "  state " << state.name << (state.rules.empty() ? " (end)" : "") << "\n";
    for (const CompiledRule& compiled : state.rules) {
      const lang::Rule& rule = compiled.rule;
      out << "    rule " << rule.name << "\n";
      out << "      n = (" << system.name_of(rule.connection.controller) << ","
          << system.name_of(rule.connection.sw) << ")\n";
      out << "      gamma = " << compiled.required.to_string() << "\n";
      out << "      lambda = " << rule.conditional->to_string() << "\n";
      out << "      alpha = [";
      for (std::size_t i = 0; i < rule.actions.size(); ++i) {
        out << (i ? "; " : "") << lang::to_string(rule.actions[i]);
      }
      out << "]\n";
    }
  }
  return out.str();
}

std::string generate_state_graph_dot(const CompiledAttack& attack) {
  const lang::StateGraph graph = attack.source.graph();
  const auto absorbing = attack.source.absorbing_states();
  const auto ends = attack.source.end_states();
  std::ostringstream out;
  out << "digraph \"" << attack.name << "\" {\n";
  out << "  rankdir=LR;\n";
  for (const std::string& v : graph.vertices) {
    const bool is_start = v == attack.states[attack.start_index].name;
    const bool is_end = std::find(ends.begin(), ends.end(), v) != ends.end();
    const bool is_absorbing =
        std::find(absorbing.begin(), absorbing.end(), v) != absorbing.end();
    out << "  \"" << v << "\" [shape=" << (is_end ? "doublecircle" : "circle");
    if (is_start) out << ", style=bold";
    if (is_absorbing && !is_end) out << ", peripheries=2";
    out << "];\n";
  }
  for (const lang::StateGraph::Edge& e : graph.edges) {
    out << "  \"" << e.from << "\" -> \"" << e.to << "\" [label=\"";
    for (std::size_t i = 0; i < e.action_labels.size(); ++i) {
      if (i > 0) out << "\\n";
      // Escape embedded quotes for DOT.
      for (const char c : e.action_labels[i]) {
        if (c == '"') out << "\\\"";
        else out << c;
      }
    }
    out << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace attain::dsl
