// Recursive-descent parser for the ATTAIN DSL: the user-facing form of the
// paper's three input files (system model, attack model, attack states —
// Fig. 7's compiler inputs). One source may contain any mix of blocks.
//
// Grammar (EBNF-ish; '#' comments; ';' terminates items):
//
//   document      := (system_block | attacker_block | attack_block)*
//
//   system_block  := "system" "{" system_item* "}"
//   system_item   := "controller" NAME "{" ("ip" STRING ";")? ("port" INT ";")? "}"
//                  | "switch" NAME "{" "dpid" INT ";" "ports" INT ";"
//                        ("fail_mode" ("safe"|"secure") ";")? "}"
//                  | "host" NAME "{" "mac" STRING ";" "ip" STRING ";" "}"
//                  | "link" endpoint "--" endpoint ";"
//                  | "connection" NAME "->" NAME ("tls")? ";"
//   endpoint      := NAME (":" INT)?          # switches take a port, hosts don't
//
//   attacker_block:= "attacker" "{" grant_item* "}"
//   grant_item    := "on" "(" NAME "," NAME ")" "grant" grant ";"
//   grant         := "no_tls" | "tls" | "all" | "none"
//                  | "{" capability ("," capability)* "}"
//
//   attack_block  := "attack" NAME "{" (deque_decl | state_decl)* "}"
//   deque_decl    := "deque" NAME ("=" "[" const_value ("," const_value)* "]")? ";"
//   state_decl    := ("start")? "state" NAME ("{" rule* "}" | ";")
//   rule          := "rule" NAME "on" "(" NAME "," NAME ")" "{"
//                        ("requires" grant ";")?
//                        "when" expr ";"
//                        "do" "{" (action ";")* "}"
//                    "}"
//
//   expr          := or over and over not over comparison over +/- over primary
//   comparison ops: == != < <= > >= , and `expr in { const_value, ... }`
//   primary       := INT | STRING | "(" expr ")" | "msg" "." prop
//                  | "msg" "." "field" "(" STRING ")"
//                  | "ip" "(" STRING|NAME ")" | "mac" "(" STRING|NAME ")"
//                  | "examine_front" "(" NAME ")" | "examine_end" "(" NAME ")"
//                  | "len" "(" NAME ")"
//                  | "rand" "(" INT ")"   # uniform in [0, INT): stochastic
//                                         # extension (paper §VIII-A future work)
//                  | NAME          # entity name, OpenFlow type, or constant
//   prop          := source | destination | timestamp | length | id | direction | type
//
//   action        := drop(msg) | pass(msg) | delay(msg, TIME) | duplicate(msg)
//                  | read_meta(msg [, STRING]) | read(msg [, STRING])
//                  | modify(msg, STRING, expr) | redirect(msg, NAME)
//                  | fuzz(msg [, INT])
//                  | inject(TEMPLATE, to_switch|to_controller)
//                  | send_front(NAME) | send_end(NAME)          # remove + re-emit
//                  | peek_send_front(NAME) | peek_send_end(NAME) # re-emit, keep stored
//                  | prepend(NAME, expr|msg) | append(NAME, expr|msg)
//                  | shift(NAME) | pop(NAME)
//                  | goto(NAME) | sleep(TIME) | syscmd(NAME, STRING)
//   TIME          := NUMBER ("s"|"ms"|"us")
//   TEMPLATE      := hello | echo_request | barrier_request | features_request
//                  | flow_mod_delete_all | packet_out_flood
//
// Built-in constants usable as NAME in expressions: the OpenFlow message
// types (HELLO, ERROR, ECHO_REQUEST, ..., BARRIER_REPLY), FLOW_MOD commands
// (FLOW_MOD_ADD, FLOW_MOD_MODIFY, FLOW_MOD_DELETE), NO_BUFFER, and the
// reserved ports (PORT_FLOOD, PORT_CONTROLLER, PORT_NONE). Entity names
// resolve to comparable address values (for msg.source / msg.destination).
#pragma once

#include <string>
#include <vector>

#include "attain/lang/attack.hpp"
#include "attain/model/capabilities.hpp"
#include "topo/system_model.hpp"

namespace attain::dsl {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, unsigned line, unsigned column)
      : std::runtime_error("parse error at " + std::to_string(line) + ":" +
                           std::to_string(column) + ": " + what) {}
};

/// Everything a source buffer declared.
struct Document {
  topo::SystemModel system;
  bool has_system{false};
  model::CapabilityMap capabilities;
  std::vector<lang::Attack> attacks;
};

/// Parses a self-contained document (system block required before any
/// attacker/attack block that references entities).
Document parse_document(const std::string& source);

/// Parses attacker/attack blocks against an externally built system model
/// (the common programmatic path: build the model in C++, write attacks in
/// the DSL).
Document parse_document(const std::string& source, const topo::SystemModel& system);

}  // namespace attain::dsl
