#include "attain/dsl/lexer.hpp"

#include <cctype>
#include <charconv>

namespace attain::dsl {

std::string to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::Ident: return "identifier";
    case TokenKind::Integer: return "integer";
    case TokenKind::Float: return "float";
    case TokenKind::String: return "string";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::Comma: return "','";
    case TokenKind::Semicolon: return "';'";
    case TokenKind::Colon: return "':'";
    case TokenKind::Dot: return "'.'";
    case TokenKind::Arrow: return "'->'";
    case TokenKind::DashDash: return "'--'";
    case TokenKind::EqEq: return "'=='";
    case TokenKind::NotEq: return "'!='";
    case TokenKind::Le: return "'<='";
    case TokenKind::Ge: return "'>='";
    case TokenKind::Lt: return "'<'";
    case TokenKind::Gt: return "'>'";
    case TokenKind::Assign: return "'='";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::End: return "end of input";
  }
  return "?";
}

std::vector<Token> lex(const std::string& source) {
  std::vector<Token> tokens;
  unsigned line = 1;
  unsigned column = 1;
  std::size_t i = 0;

  auto push = [&](TokenKind kind, unsigned start_col) {
    Token t;
    t.kind = kind;
    t.line = line;
    t.column = start_col;
    tokens.push_back(std::move(t));
  };

  while (i < source.size()) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      column = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++column;
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    const unsigned start_col = column;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) || source[i] == '_')) {
        ident.push_back(source[i]);
        ++i;
        ++column;
      }
      Token t;
      t.kind = TokenKind::Ident;
      t.text = std::move(ident);
      t.line = line;
      t.column = start_col;
      tokens.push_back(std::move(t));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Integer (decimal or 0x hex) or float.
      std::size_t end = i;
      bool is_float = false;
      if (source[i] == '0' && i + 1 < source.size() && (source[i + 1] == 'x' || source[i + 1] == 'X')) {
        end = i + 2;
        while (end < source.size() && std::isxdigit(static_cast<unsigned char>(source[end]))) ++end;
      } else {
        while (end < source.size() && std::isdigit(static_cast<unsigned char>(source[end]))) ++end;
        if (end < source.size() && source[end] == '.' && end + 1 < source.size() &&
            std::isdigit(static_cast<unsigned char>(source[end + 1]))) {
          is_float = true;
          ++end;
          while (end < source.size() && std::isdigit(static_cast<unsigned char>(source[end]))) ++end;
        }
      }
      const std::string text = source.substr(i, end - i);
      Token t;
      t.line = line;
      t.column = start_col;
      if (is_float) {
        t.kind = TokenKind::Float;
        t.float_value = std::stod(text);
      } else {
        t.kind = TokenKind::Integer;
        t.int_value = std::stoll(text, nullptr, 0);
      }
      t.text = text;
      tokens.push_back(std::move(t));
      column += static_cast<unsigned>(end - i);
      i = end;
      continue;
    }

    if (c == '"') {
      std::string text;
      ++i;
      ++column;
      while (i < source.size() && source[i] != '"') {
        if (source[i] == '\n') throw LexError("unterminated string", line, start_col);
        if (source[i] == '\\' && i + 1 < source.size()) {
          ++i;
          ++column;
        }
        text.push_back(source[i]);
        ++i;
        ++column;
      }
      if (i == source.size()) throw LexError("unterminated string", line, start_col);
      ++i;  // closing quote
      ++column;
      Token t;
      t.kind = TokenKind::String;
      t.text = std::move(text);
      t.line = line;
      t.column = start_col;
      tokens.push_back(std::move(t));
      continue;
    }

    auto two = [&](char second) {
      return i + 1 < source.size() && source[i + 1] == second;
    };
    switch (c) {
      case '(': push(TokenKind::LParen, start_col); break;
      case ')': push(TokenKind::RParen, start_col); break;
      case '{': push(TokenKind::LBrace, start_col); break;
      case '}': push(TokenKind::RBrace, start_col); break;
      case '[': push(TokenKind::LBracket, start_col); break;
      case ']': push(TokenKind::RBracket, start_col); break;
      case ',': push(TokenKind::Comma, start_col); break;
      case ';': push(TokenKind::Semicolon, start_col); break;
      case ':': push(TokenKind::Colon, start_col); break;
      case '.': push(TokenKind::Dot, start_col); break;
      case '+': push(TokenKind::Plus, start_col); break;
      case '-':
        if (two('>')) {
          push(TokenKind::Arrow, start_col);
          ++i;
          ++column;
        } else if (two('-')) {
          push(TokenKind::DashDash, start_col);
          ++i;
          ++column;
        } else {
          push(TokenKind::Minus, start_col);
        }
        break;
      case '=':
        if (two('=')) {
          push(TokenKind::EqEq, start_col);
          ++i;
          ++column;
        } else {
          push(TokenKind::Assign, start_col);
        }
        break;
      case '!':
        if (two('=')) {
          push(TokenKind::NotEq, start_col);
          ++i;
          ++column;
        } else {
          throw LexError("unexpected '!'", line, start_col);
        }
        break;
      case '<':
        if (two('=')) {
          push(TokenKind::Le, start_col);
          ++i;
          ++column;
        } else {
          push(TokenKind::Lt, start_col);
        }
        break;
      case '>':
        if (two('=')) {
          push(TokenKind::Ge, start_col);
          ++i;
          ++column;
        } else {
          push(TokenKind::Gt, start_col);
        }
        break;
      default:
        throw LexError(std::string("unexpected character '") + c + "'", line, start_col);
    }
    ++i;
    ++column;
  }

  Token end;
  end.kind = TokenKind::End;
  end.line = line;
  end.column = column;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace attain::dsl
