#include "attain/dsl/compiler.hpp"

namespace attain::dsl {

std::size_t CompiledAttack::state_index(const std::string& state_name) const {
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (states[i].name == state_name) return i;
  }
  throw CompileError("attack '" + name + "' has no state '" + state_name + "'");
}

CompiledAttack compile(const lang::Attack& attack, const topo::SystemModel& system,
                       const model::CapabilityMap& capabilities, CompileOptions options) {
  // 1. Structural validation (|Σ| ≥ 1, start state, GoTo targets, deques).
  try {
    attack.validate_structure();
  } catch (const std::invalid_argument& err) {
    throw CompileError(err.what());
  }

  // 2. TLS consistency of the capability model itself.
  if (options.enforce_tls_consistency) {
    for (const auto& conn : system.control_connections()) {
      if (!conn.tls) continue;
      const model::CapabilitySet granted = capabilities.capabilities_on(conn.id);
      const model::CapabilitySet excess = granted - model::CapabilitySet::tls();
      if (!excess.empty()) {
        throw CompileError("capability grant on TLS connection (" +
                           system.name_of(conn.id.controller) + "," + system.name_of(conn.id.sw) +
                           ") exceeds Γ_TLS by " + excess.to_string());
      }
    }
  }

  // 3. Per-rule checks: connection exists in N_C; required ⊆ granted.
  CompiledAttack compiled;
  compiled.name = attack.name;
  compiled.deques = attack.deques;
  compiled.source = attack;
  // Deque declaration order is the DequeStore slot order the executor will
  // use, so rule programs can intern names to slots here, once.
  std::vector<std::string> deque_names;
  deque_names.reserve(attack.deques.size());
  for (const auto& [deque_name, initial] : attack.deques) deque_names.push_back(deque_name);
  const lang::Program::CompileEnv program_env{&deque_names};
  for (const lang::AttackState& state : attack.states) {
    CompiledState out;
    out.name = state.name;
    for (const lang::Rule& rule : state.rules) {
      if (!system.has_control_connection(rule.connection)) {
        // name_of would itself throw for out-of-range ids; render safely.
        auto safe_name = [&system](EntityId id) -> std::string {
          try {
            return system.name_of(id);
          } catch (const topo::ModelError&) {
            return to_string(id.kind) + "#" + std::to_string(id.index);
          }
        };
        throw CompileError("rule '" + rule.name + "' targets connection (" +
                           safe_name(rule.connection.controller) + "," +
                           safe_name(rule.connection.sw) + ") which is not in N_C");
      }
      const model::CapabilitySet required = rule.required_capabilities();
      const model::CapabilitySet granted = capabilities.capabilities_on(rule.connection);
      if (!granted.contains_all(required)) {
        const model::CapabilitySet missing = required - granted;
        throw CompileError("rule '" + rule.name + "' on (" +
                           system.name_of(rule.connection.controller) + "," +
                           system.name_of(rule.connection.sw) + ") requires capabilities " +
                           missing.to_string() + " the attacker was not granted");
      }
      CompiledRule compiled_rule{rule, required};
      if (rule.conditional) {
        compiled_rule.program = lang::Program::compile(*rule.conditional, program_env);
        compiled_rule.action_programs.reserve(rule.actions.size());
        for (const lang::ActionSpec& action : rule.actions) {
          const lang::ExprPtr* operand = nullptr;
          if (const auto* modify = std::get_if<lang::ActModifyField>(&action)) {
            operand = &modify->value;
          } else if (const auto* prepend = std::get_if<lang::ActPrepend>(&action)) {
            operand = &prepend->value;
          } else if (const auto* append = std::get_if<lang::ActAppend>(&action)) {
            operand = &append->value;
          }
          lang::Program operand_program;
          if (operand != nullptr && *operand) {
            operand_program = lang::Program::compile(**operand, program_env);
          }
          compiled_rule.action_programs.push_back(std::move(operand_program));
        }
        compiled_rule.has_programs = true;
      }
      out.rules.push_back(std::move(compiled_rule));
    }
    compiled.states.push_back(std::move(out));
  }
  compiled.start_index = compiled.state_index(attack.start_state);
  return compiled;
}

}  // namespace attain::dsl
