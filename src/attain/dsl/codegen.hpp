// The "executable code generator" of Fig. 7. The paper's Python artifact
// emitted a Python file included at attack runtime; the C++ reproduction
// executes the CompiledAttack directly, and this module emits the
// equivalent human-auditable artifacts: a full listing of the compiled
// program (states, rules, conditionals, actions, capability requirements)
// and a Graphviz rendering of the attack state graph Σ_G.
#pragma once

#include <string>

#include "attain/dsl/compiler.hpp"

namespace attain::dsl {

/// Renders the compiled attack as a listing, one section per state, in the
/// paper's φ = (n, γ, λ, α) notation.
std::string generate_listing(const CompiledAttack& attack, const topo::SystemModel& system);

/// Renders Σ_G as Graphviz DOT (wraps lang::StateGraph::to_dot with the
/// start/absorbing/end classification of §V-F).
std::string generate_state_graph_dot(const CompiledAttack& attack);

}  // namespace attain::dsl
