// Attack state-graph templates — the paper's §X future work: "predefined
// attack state graph templates to generate larger and more complex attack
// descriptions without having to manually generate many of the lower-level
// details."
//
// Each template takes a handful of parameters and emits complete DSL source
// (attacker block + attack block) ready for parse → compile against the
// caller's system model. Template output is ordinary DSL text so generated
// attacks remain auditable, shareable, and hand-editable.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace attain::dsl::templates {

/// A (controller, switch) pair by entity name, e.g. {"c1", "s2"}.
struct ConnRef {
  std::string controller;
  std::string sw;
};

/// Fig. 10 generalized: drop every message of `message_type` (a DSL type
/// constant such as "FLOW_MOD" or "PACKET_IN") on each listed connection.
/// One absorbing start state with one rule per connection.
std::string suppress_type(const std::vector<ConnRef>& connections,
                          const std::string& message_type);

/// §VIII-B counter gate: pass the first `count` messages of `message_type`
/// on `connection`, drop the rest. Single state + counter deque.
std::string count_gate(const ConnRef& connection, const std::string& message_type,
                       unsigned count);

/// Add `delay` to every message on each connection (control-plane latency
/// degradation — exercises DELAYMESSAGE).
std::string delay_all(const std::vector<ConnRef>& connections, double delay_seconds);

/// Fig. 12 generalized: wait for connection setup (FEATURES_REPLY) on
/// `connection`, then wait for a message of `trigger_type`, then black-hole
/// the connection. Three chained states σ1 → σ2 → σ3.
std::string interrupt_after(const ConnRef& connection, const std::string& trigger_type);

/// Stochastic extension: drop each message on `connection` independently
/// with probability `percent`/100 (uses the rand() extension; requires only
/// DROPMESSAGE + PASSMESSAGE, so it compiles under Γ_TLS).
std::string stochastic_drop(const ConnRef& connection, unsigned percent);

/// Fuzz every message of `message_type` on `connection` with `bit_flips`
/// random bit flips (semantically invalid mutation — FUZZMESSAGE).
std::string fuzz_type(const ConnRef& connection, const std::string& message_type,
                      unsigned bit_flips);

/// Replay amplifier: capture the first message of `message_type`, then
/// re-send it `replay_count` extra times whenever another message of that
/// type passes (flooding via storage, §VIII-A).
std::string replay_amplifier(const ConnRef& connection, const std::string& message_type,
                             unsigned replay_count);

/// Volumetric PACKET_IN flood: every passing message of `trigger_type` on
/// `connection` is amplified into `burst` canned table-miss PACKET_INs
/// injected toward the controller (the scenario-level flood's control-
/// plane-only sibling — no data-plane frames involved). Uses the
/// `packet_in` inject template; requires InjectNewMessage.
std::string packet_in_flood(const ConnRef& connection, const std::string& trigger_type,
                            unsigned burst);

}  // namespace attain::dsl::templates
