// Conditional expressions λ (§V-B): propositional logic over message
// properties with equality, ordering, set membership, and deque reads, plus
// the small integer arithmetic needed for counter idioms (§VIII-B).
//
// Capability accounting: evaluating a metadata property (source,
// destination, timestamp, length, id, direction) requires
// READMESSAGEMETADATA; evaluating the payload (type or a type-option field)
// requires READMESSAGE. required_capabilities() computes the union for a
// whole expression so the compiler can check feasibility against Γ_{N_C}.
#pragma once

#include <memory>
#include <stdexcept>
#include <vector>

#include "attain/lang/deque_store.hpp"
#include "attain/lang/value.hpp"
#include "attain/model/capabilities.hpp"
#include "common/rng.hpp"

namespace attain::lang {

class EvalError : public std::runtime_error {
 public:
  explicit EvalError(const std::string& what) : std::runtime_error(what) {}
};

/// Message properties referencable in expressions (§V-A).
enum class Property : std::uint8_t {
  Source,       // metadata
  Destination,  // metadata
  Timestamp,    // metadata (microseconds)
  Length,       // metadata
  Id,           // metadata
  Direction,    // metadata (0 = switch->controller, 1 = controller->switch)
  Type,         // payload (OpenFlow message type)
};

std::string to_string(Property property);

enum class BinaryOp : std::uint8_t { And, Or, Eq, Ne, Lt, Le, Gt, Ge, Add, Sub };

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// AST node. A tree is immutable after construction and shared freely
/// between compiled rules.
struct Expr {
  enum class Kind : std::uint8_t {
    Literal,       // value
    Prop,          // property of the current message
    Field,         // payload field by dotted path (ofp::get_field)
    DequeFront,    // EXAMINEFRONT(δ) as an expression
    DequeEnd,      // EXAMINEEND(δ)
    DequeLen,      // |δ| (convenience; counts as no capability)
    Not,           // logical negation of child a
    Binary,        // op over children a, b
    InSet,         // a ∈ {set...}
    Random,        // uniform integer in [0, bound) — the stochastic
                   // extension the paper defers to future work (§VIII-A);
                   // draws from the injector's seeded RNG, so runs stay
                   // replayable
  };

  Kind kind{Kind::Literal};
  Value literal{std::int64_t{0}};
  Property property{Property::Source};
  std::string field_path;   // Field
  std::string deque_name;   // DequeFront/DequeEnd/DequeLen
  BinaryOp op{BinaryOp::And};
  ExprPtr a;
  ExprPtr b;
  std::vector<Value> set;        // InSet members
  std::int64_t random_bound{0};  // Random

  // -- factories --
  static ExprPtr literal_int(std::int64_t v);
  static ExprPtr literal_value(Value v);
  static ExprPtr prop(Property p);
  static ExprPtr field(std::string path);
  static ExprPtr deque_front(std::string name);
  static ExprPtr deque_end(std::string name);
  static ExprPtr deque_len(std::string name);
  static ExprPtr negate(ExprPtr a);
  static ExprPtr binary(BinaryOp op, ExprPtr a, ExprPtr b);
  static ExprPtr in_set(ExprPtr a, std::vector<Value> set);
  /// rand(bound): uniform in [0, bound); bound must be > 0. Evaluating it
  /// without an Rng in the context is an EvalError.
  static ExprPtr random(std::int64_t bound);

  /// Renders the expression in the paper's notation (∧ as "and", etc.).
  std::string to_string() const;
};

/// Shorthand factories for the common connective spellings.
inline ExprPtr operator&&(ExprPtr a, ExprPtr b) {
  return Expr::binary(BinaryOp::And, std::move(a), std::move(b));
}
inline ExprPtr operator||(ExprPtr a, ExprPtr b) {
  return Expr::binary(BinaryOp::Or, std::move(a), std::move(b));
}

/// Evaluation context: the current message plus attack storage, and the
/// seeded RNG backing the stochastic extension.
struct EvalContext {
  const InFlightMessage* message{nullptr};
  const DequeStore* storage{nullptr};
  Rng* rng{nullptr};
};

/// Evaluates to a Value. Logical results are int64 0/1. Throws EvalError on
/// type mismatches, missing payload fields, or payload access on an
/// undecodable/TLS message.
Value evaluate(const Expr& expr, const EvalContext& ctx);

/// Evaluates as a boolean conditional. A rule whose conditional throws is
/// treated as non-matching by the executor (and reported to the monitor),
/// so a FLOW_MOD-field reference simply never matches an ECHO message.
bool evaluate_bool(const Expr& expr, const EvalContext& ctx);

/// Union of the read capabilities the expression needs (§IV-C).
model::CapabilitySet required_capabilities(const Expr& expr);

}  // namespace attain::lang
