// Attack actions α (§V-D): actuations of attacker capabilities plus the
// storage, state-transition, and framework actions. Each action knows the
// capabilities it requires so the compiler can check Γ_{N_C} feasibility.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "attain/lang/conditional.hpp"
#include "attain/model/capabilities.hpp"
#include "ofp/messages.hpp"

namespace attain::lang {

// -- capability-derived actions (Table I) --

struct ActDrop {};        // DROPMESSAGE(msg)
struct ActPass {};        // PASSMESSAGE(msg)
struct ActDelay {         // DELAYMESSAGE(msg, t)
  SimTime delay{0};
};
struct ActDuplicate {};   // DUPLICATEMESSAGE(msg)
struct ActReadMeta {      // READMESSAGEMETADATA(msg): record to the monitor
  std::string note;       // free-form annotation in the monitor log
};
struct ActRead {          // READMESSAGE(msg): record decoded payload
  std::string note;
};
struct ActModifyField {   // MODIFYMESSAGE(msg): semantically valid payload edit
  std::string path;       // ofp::set_field path
  ExprPtr value;          // evaluated at actuation time
};
struct ActModifyMeta {    // MODIFYMESSAGEMETADATA(msg): redirect the message
  enum class Target : std::uint8_t { Destination } target{Target::Destination};
  EntityId new_destination;
};
struct ActFuzz {          // FUZZMESSAGE(msg)
  unsigned bit_flips{8};
};
struct ActInject {        // INJECTNEWMESSAGE(msg): emit a fresh message
  ofp::Message message;   // template; xid refreshed at injection time
  Direction direction{Direction::ControllerToSwitch};
};
/// Re-emit a message previously captured into a deque (replay/reorder,
/// §VIII-A). Requires PASSMESSAGE — the paper composes replay from
/// SHIFT/POP + PASSMESSAGE.
struct ActSendStored {
  std::string deque;
  bool from_end{false};   // POP (end) vs SHIFT (front)
  bool remove{true};      // false = EXAMINE + send (keeps the copy stored)
};

// -- storage actions (§V-D deque operations) --

struct ActPrepend {
  std::string deque;
  ExprPtr value;          // special case: a `msg` literal stores the message
};
struct ActAppend {
  std::string deque;
  ExprPtr value;
};
struct ActShift {         // SHIFT(δ), result discarded
  std::string deque;
};
struct ActPop {           // POP(δ), result discarded
  std::string deque;
};

// -- framework actions --

struct ActGoTo {          // GOTOSTATE(σ)
  std::string state;
};
struct ActSleep {         // SLEEP(t): pause rule processing on the injector
  SimTime duration{0};
};
struct ActSysCmd {        // SYSCMD(host, cmd): run a command on a test host
  std::string host;
  std::string command;
};

using ActionSpec =
    std::variant<ActDrop, ActPass, ActDelay, ActDuplicate, ActReadMeta, ActRead, ActModifyField,
                 ActModifyMeta, ActFuzz, ActInject, ActSendStored, ActPrepend, ActAppend,
                 ActShift, ActPop, ActGoTo, ActSleep, ActSysCmd>;

/// Capabilities the action itself needs (expression operands add theirs via
/// required_capabilities on the expressions).
model::CapabilitySet action_capabilities(const ActionSpec& action);

/// Capabilities including embedded expressions.
model::CapabilitySet total_action_capabilities(const ActionSpec& action);

std::string to_string(const ActionSpec& action);

}  // namespace attain::lang
