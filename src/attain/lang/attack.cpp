#include "attain/lang/attack.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace attain::lang {

model::CapabilitySet Rule::required_capabilities() const {
  model::CapabilitySet caps = capabilities;
  if (conditional) caps = caps | lang::required_capabilities(*conditional);
  for (const ActionSpec& action : actions) {
    caps = caps | total_action_capabilities(action);
  }
  return caps;
}

std::set<std::string> AttackState::goto_targets() const {
  std::set<std::string> targets;
  for (const Rule& rule : rules) {
    for (const ActionSpec& action : rule.actions) {
      if (const auto* go = std::get_if<ActGoTo>(&action)) {
        if (go->state != name) targets.insert(go->state);
      }
    }
  }
  return targets;
}

std::string StateGraph::to_dot() const {
  std::ostringstream out;
  out << "digraph attack {\n";
  for (const std::string& v : vertices) {
    out << "  \"" << v << "\";\n";
  }
  for (const Edge& e : edges) {
    out << "  \"" << e.from << "\" -> \"" << e.to << "\" [label=\"";
    for (std::size_t i = 0; i < e.action_labels.size(); ++i) {
      if (i > 0) out << "\\n";
      out << e.action_labels[i];
    }
    out << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

const AttackState* Attack::find_state(const std::string& state_name) const {
  for (const AttackState& state : states) {
    if (state.name == state_name) return &state;
  }
  return nullptr;
}

std::vector<std::string> Attack::absorbing_states() const {
  std::vector<std::string> out;
  for (const AttackState& state : states) {
    if (state.goto_targets().empty()) out.push_back(state.name);
  }
  return out;
}

std::vector<std::string> Attack::end_states() const {
  std::vector<std::string> out;
  for (const std::string& name : absorbing_states()) {
    if (find_state(name)->is_end()) out.push_back(name);
  }
  return out;
}

StateGraph Attack::graph() const {
  StateGraph graph;
  for (const AttackState& state : states) graph.vertices.push_back(state.name);
  for (const AttackState& state : states) {
    // Group actions by target so each edge carries the actions of the
    // rules that transition along it (A_{Σ_G}).
    std::map<std::string, std::vector<std::string>> by_target;
    for (const Rule& rule : state.rules) {
      std::optional<std::string> target;
      for (const ActionSpec& action : rule.actions) {
        if (const auto* go = std::get_if<ActGoTo>(&action)) target = go->state;
      }
      if (target && *target != state.name) {
        auto& labels = by_target[*target];
        for (const ActionSpec& action : rule.actions) {
          labels.push_back(to_string(action));
        }
      }
    }
    for (auto& [target, labels] : by_target) {
      graph.edges.push_back(StateGraph::Edge{state.name, target, std::move(labels)});
    }
  }
  return graph;
}

void collect_deque_refs(const Expr& expr, std::set<std::string>& out) {
  switch (expr.kind) {
    case Expr::Kind::DequeFront:
    case Expr::Kind::DequeEnd:
    case Expr::Kind::DequeLen:
      out.insert(expr.deque_name);
      break;
    case Expr::Kind::Not:
      collect_deque_refs(*expr.a, out);
      break;
    case Expr::Kind::Binary:
      collect_deque_refs(*expr.a, out);
      collect_deque_refs(*expr.b, out);
      break;
    case Expr::Kind::InSet:
      collect_deque_refs(*expr.a, out);
      break;
    default:
      break;
  }
}

void collect_deque_refs(const ActionSpec& action, std::set<std::string>& out) {
  if (const auto* a = std::get_if<ActPrepend>(&action)) {
    out.insert(a->deque);
    if (a->value) collect_deque_refs(*a->value, out);
  } else if (const auto* a = std::get_if<ActAppend>(&action)) {
    out.insert(a->deque);
    if (a->value) collect_deque_refs(*a->value, out);
  } else if (const auto* a = std::get_if<ActShift>(&action)) {
    out.insert(a->deque);
  } else if (const auto* a = std::get_if<ActPop>(&action)) {
    out.insert(a->deque);
  } else if (const auto* a = std::get_if<ActSendStored>(&action)) {
    out.insert(a->deque);
  } else if (const auto* a = std::get_if<ActModifyField>(&action)) {
    if (a->value) collect_deque_refs(*a->value, out);
  }
}

void Attack::validate_structure() const {
  if (states.empty()) throw std::invalid_argument("attack '" + name + "': |Σ| >= 1 violated");
  if (find_state(start_state) == nullptr) {
    throw std::invalid_argument("attack '" + name + "': start state '" + start_state +
                                "' is not defined");
  }
  std::set<std::string> declared;
  for (const auto& [deque_name, _] : deques) {
    if (!declared.insert(deque_name).second) {
      throw std::invalid_argument("attack '" + name + "': deque '" + deque_name +
                                  "' declared twice");
    }
  }
  std::set<std::string> state_names;
  for (const AttackState& state : states) {
    if (!state_names.insert(state.name).second) {
      throw std::invalid_argument("attack '" + name + "': state '" + state.name +
                                  "' defined twice");
    }
  }
  for (const AttackState& state : states) {
    for (const std::string& target : state.goto_targets()) {
      if (find_state(target) == nullptr) {
        throw std::invalid_argument("attack '" + name + "': state '" + state.name +
                                    "' transitions to undefined state '" + target + "'");
      }
    }
    for (const Rule& rule : state.rules) {
      if (!rule.conditional) {
        throw std::invalid_argument("attack '" + name + "': rule '" + rule.name +
                                    "' has no conditional");
      }
      std::set<std::string> refs;
      collect_deque_refs(*rule.conditional, refs);
      for (const ActionSpec& action : rule.actions) collect_deque_refs(action, refs);
      for (const std::string& ref : refs) {
        if (!declared.contains(ref)) {
          throw std::invalid_argument("attack '" + name + "': rule '" + rule.name +
                                      "' references undeclared deque '" + ref + "'");
        }
      }
    }
  }
}

}  // namespace attain::lang
