#include "attain/lang/actions.hpp"

namespace attain::lang {

model::CapabilitySet action_capabilities(const ActionSpec& action) {
  using model::Capability;
  using model::CapabilitySet;
  struct Visitor {
    CapabilitySet operator()(const ActDrop&) const { return {Capability::DropMessage}; }
    CapabilitySet operator()(const ActPass&) const { return {Capability::PassMessage}; }
    CapabilitySet operator()(const ActDelay&) const { return {Capability::DelayMessage}; }
    CapabilitySet operator()(const ActDuplicate&) const {
      return {Capability::DuplicateMessage};
    }
    CapabilitySet operator()(const ActReadMeta&) const {
      return {Capability::ReadMessageMetadata};
    }
    CapabilitySet operator()(const ActRead&) const { return {Capability::ReadMessage}; }
    CapabilitySet operator()(const ActModifyField&) const {
      return {Capability::ModifyMessage};
    }
    CapabilitySet operator()(const ActModifyMeta&) const {
      return {Capability::ModifyMessageMetadata};
    }
    CapabilitySet operator()(const ActFuzz&) const { return {Capability::FuzzMessage}; }
    CapabilitySet operator()(const ActInject&) const { return {Capability::InjectNewMessage}; }
    CapabilitySet operator()(const ActSendStored&) const { return {Capability::PassMessage}; }
    CapabilitySet operator()(const ActPrepend&) const { return {}; }
    CapabilitySet operator()(const ActAppend&) const { return {}; }
    CapabilitySet operator()(const ActShift&) const { return {}; }
    CapabilitySet operator()(const ActPop&) const { return {}; }
    CapabilitySet operator()(const ActGoTo&) const { return {}; }
    CapabilitySet operator()(const ActSleep&) const { return {}; }
    CapabilitySet operator()(const ActSysCmd&) const { return {}; }
  };
  return std::visit(Visitor{}, action);
}

model::CapabilitySet total_action_capabilities(const ActionSpec& action) {
  model::CapabilitySet caps = action_capabilities(action);
  if (const auto* modify = std::get_if<ActModifyField>(&action)) {
    if (modify->value) caps = caps | required_capabilities(*modify->value);
  } else if (const auto* prepend = std::get_if<ActPrepend>(&action)) {
    if (prepend->value) caps = caps | required_capabilities(*prepend->value);
  } else if (const auto* append = std::get_if<ActAppend>(&action)) {
    if (append->value) caps = caps | required_capabilities(*append->value);
  }
  return caps;
}

std::string to_string(const ActionSpec& action) {
  struct Visitor {
    std::string operator()(const ActDrop&) const { return "DropMessage(msg)"; }
    std::string operator()(const ActPass&) const { return "PassMessage(msg)"; }
    std::string operator()(const ActDelay& a) const {
      return "DelayMessage(msg, " + std::to_string(to_seconds(a.delay)) + "s)";
    }
    std::string operator()(const ActDuplicate&) const { return "DuplicateMessage(msg)"; }
    std::string operator()(const ActReadMeta& a) const {
      return a.note.empty() ? "ReadMessageMetadata(msg)"
                            : "ReadMessageMetadata(msg, \"" + a.note + "\")";
    }
    std::string operator()(const ActRead& a) const {
      return a.note.empty() ? "ReadMessage(msg)" : "ReadMessage(msg, \"" + a.note + "\")";
    }
    std::string operator()(const ActModifyField& a) const {
      return "ModifyMessage(msg, " + a.path + " := " + (a.value ? a.value->to_string() : "?") +
             ")";
    }
    std::string operator()(const ActModifyMeta&) const {
      return "ModifyMessageMetadata(msg, destination)";
    }
    std::string operator()(const ActFuzz& a) const {
      return "FuzzMessage(msg, bits=" + std::to_string(a.bit_flips) + ")";
    }
    std::string operator()(const ActInject& a) const {
      return "InjectNewMessage(" + ofp::to_string(a.message.type()) + ", " +
             lang::to_string(a.direction) + ")";
    }
    std::string operator()(const ActSendStored& a) const {
      return std::string("SendStored(") + a.deque + (a.from_end ? ", end" : ", front") + ")";
    }
    std::string operator()(const ActPrepend& a) const {
      return "Prepend(" + a.deque + ", " + (a.value ? a.value->to_string() : "msg") + ")";
    }
    std::string operator()(const ActAppend& a) const {
      return "Append(" + a.deque + ", " + (a.value ? a.value->to_string() : "msg") + ")";
    }
    std::string operator()(const ActShift& a) const { return "Shift(" + a.deque + ")"; }
    std::string operator()(const ActPop& a) const { return "Pop(" + a.deque + ")"; }
    std::string operator()(const ActGoTo& a) const { return "GoToState(" + a.state + ")"; }
    std::string operator()(const ActSleep& a) const {
      return "Sleep(" + std::to_string(to_seconds(a.duration)) + "s)";
    }
    std::string operator()(const ActSysCmd& a) const {
      return "SysCmd(" + a.host + ", \"" + a.command + "\")";
    }
  };
  return std::visit(Visitor{}, action);
}

}  // namespace attain::lang
