// Compiled form of a conditional expression: a flat instruction vector run
// by a tight stack loop, plus a guard prefilter derived from the paths the
// expression touches.
//
// The tree-walk in conditional.cpp stays as the semantic oracle (same
// pattern as swsim::NaiveFlowTable); this is the hot path the injector runs
// for every rule on every interposed message. Three things make it cheap:
//
//   * compilation interns every dotted field path to an ofp::FieldId and
//     every deque name to a DequeStore slot, so evaluation never parses a
//     string or hashes a map;
//   * evaluation reports failures as an ExecStatus instead of throwing —
//     the steady-state "rule's field is absent on this message type" case
//     costs a status code, not a thrown-and-caught EvalError;
//   * the per-rule Guard (required message-type set x direction x
//     decodability) lets the executor skip a whole rule with one bitmask
//     test, before any program runs.
//
// Equivalence contract with the oracle: for every (expression, context),
// run_bool() returns Ok with the same boolean evaluate_bool() returns, or a
// non-Ok status whose error_detail() equals the EvalError/StorageError
// message the tree throws; RNG draws happen in the same order, so replays
// stay byte-identical (enforced by tests/test_program_differential.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "attain/lang/conditional.hpp"
#include "ofp/fields.hpp"

namespace attain::lang {

/// Evaluation outcome of a compiled program. Every non-Ok value maps to
/// exactly one tree-walk exception (see ProgramEvaluator::error_detail).
enum class ExecStatus : std::uint8_t {
  Ok,
  NoMessage,          // "no message in evaluation context"
  PayloadUnreadable,  // TLS or undecodable frame
  FieldAbsent,        // message type has no such field
  NoStorage,          // "no storage in evaluation context"
  DequeUndeclared,
  DequeEmpty,
  NoRng,
  BadRandomBound,
  TypeMismatch,  // non-integer operand to ordering/arithmetic
  NotBoolean,    // non-integer value in boolean position
  BadProgram,    // empty/corrupt program (never produced by compile())
};

std::string to_string(ExecStatus status);

/// Message-shape prefilter: a sound over-approximation of the contexts in
/// which the compiled conditional can evaluate to true. If admits() is
/// false the rule can only evaluate false or raise, so the executor skips
/// it without running the program (and without the RNG-stream side effects
/// rand() would have — expressions containing rand() always get a
/// pass-everything guard).
struct Guard {
  static constexpr std::uint32_t kAllTypes = (1u << 20) - 1;  // MsgType 0..19

  std::uint32_t type_mask{kAllTypes};
  std::uint8_t direction_mask{0b11};  // bit 1 << static_cast<int>(Direction)
  bool undecodable_ok{true};          // admit sealed/unparseable payloads?

  bool admits(const InFlightMessage& msg) const {
    if ((direction_mask & (1u << static_cast<unsigned>(msg.direction))) == 0) return false;
    const ofp::Message* payload = msg.payload();
    if (payload == nullptr) return undecodable_ok;
    return (type_mask >> static_cast<unsigned>(payload->type())) & 1u;
  }

  bool pass_all() const {
    return type_mask == kAllTypes && direction_mask == 0b11 && undecodable_ok;
  }
};

/// One instruction. `a` indexes a side table (constant pool, deque refs,
/// FieldId, Property); `imm` holds integer literals, rand() bounds, set
/// sizes, and jump targets.
struct Instr {
  enum class Op : std::uint8_t {
    PushInt,         // push imm
    PushConst,       // push pool[a] by reference
    PushProp,        // push property a of the current message
    PushField,       // push field FieldId(a) of the payload
    PushBadField,    // a path no message type has: bad_fields_[a]; always fails
    PushDequeFront,  // deques_[a]
    PushDequeEnd,
    PushDequeLen,
    PushRandom,    // imm = bound
    Not,           // pop as bool, push negation
    ToBool,        // pop as bool, push 0/1
    JumpIfFalse,   // AND probe: pop as bool; false -> push 0, jump imm
    JumpIfTrue,    // OR probe: pop as bool; true -> push 1, jump imm
    Eq,            // pop b, pop a, push value_equals(a, b)
    Ne,
    Lt,            // pop b, pop a, integers only
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    InSet,         // pop a, push membership in pool[a .. a+imm)
  };

  Op op{Op::PushInt};
  std::uint16_t a{0};
  std::int64_t imm{0};
};

class ProgramEvaluator;

class Program {
 public:
  /// Compile-time name environment. deque_names lists the attack's deque
  /// declarations in declaration order — the same order AttackExecutor
  /// declares them into its DequeStore, so list index == store slot. A
  /// referenced name absent from the list compiles to a program that fails
  /// with DequeUndeclared at run time, like the tree.
  struct CompileEnv {
    const std::vector<std::string>* deque_names{nullptr};
  };

  Program() = default;

  /// Lowers an expression. Interns field paths and deque names, constant-
  /// folds literal subtrees (a fully literal conditional becomes a single
  /// PushInt), and derives the guard. Never throws: expressions that can
  /// only fail (unknown field path, undeclared deque) compile to programs
  /// that report the failure as a status, preserving oracle semantics.
  static Program compile(const Expr& expr, const CompileEnv& env);
  static Program compile(const Expr& expr) { return compile(expr, CompileEnv{}); }

  /// True for a default-constructed Program (e.g. an action slot with no
  /// expression operand). compile() always yields at least one instruction.
  bool empty() const { return code_.empty(); }

  const Guard& guard() const { return guard_; }
  const std::vector<Instr>& code() const { return code_; }
  std::size_t max_stack() const { return max_stack_; }

  /// Human-readable listing, one instruction per line (tests, debugging).
  std::string disassemble() const;

 private:
  friend class ProgramEvaluator;
  friend struct ProgramBuilder;  // the compilation pass (program.cpp)

  struct DequeRef {
    std::string name;                                       // diagnostics
    std::size_t slot{static_cast<std::size_t>(-1)};         // -1: undeclared
  };

  std::vector<Instr> code_;
  std::vector<Value> pool_;         // non-integer literals and InSet members
  std::vector<DequeRef> deques_;
  std::vector<std::string> bad_fields_;  // unknown paths, kept for messages
  Guard guard_;
  std::uint16_t max_stack_{0};
};

/// Runs programs against an EvalContext with a reusable scratch stack: after
/// warm-up, evaluation performs no heap allocation and throws nothing. One
/// evaluator per executor; not thread-safe (neither is the executor).
class ProgramEvaluator {
 public:
  /// Evaluates as a rule conditional (the oracle's evaluate_bool). On Ok,
  /// `out` holds the boolean; on failure the status/error state sticks
  /// until the next run for error_detail().
  ExecStatus run_bool(const Program& program, const EvalContext& ctx, bool& out);

  /// Evaluates as a value-producing operand (the oracle's evaluate), for
  /// action operands like modify(msg, field, <expr>).
  ExecStatus run_value(const Program& program, const EvalContext& ctx, Value& out);

  /// The oracle-compatible message for the last non-Ok run: byte-for-byte
  /// what evaluate()/evaluate_bool() would have put in the thrown
  /// exception's what(). `ctx` must be the context of that run.
  std::string error_detail(const Program& program, const EvalContext& ctx) const;

 private:
  /// A stack slot: either an inline integer (ref == nullptr) or a borrowed
  /// Value (constant pool / deque element), so evaluation never copies or
  /// allocates a Value.
  struct Slot {
    std::int64_t i{0};
    const Value* ref{nullptr};
  };

  ExecStatus run(const Program& program, const EvalContext& ctx, Slot& result);
  ExecStatus fail(ExecStatus status, std::size_t ip);
  ExecStatus fail_value(ExecStatus status, std::size_t ip, const Slot& offending);

  std::vector<Slot> stack_;
  ExecStatus status_{ExecStatus::Ok};
  std::size_t error_ip_{0};
  Value error_value_{std::int64_t{0}};  // offending operand (TypeMismatch/NotBoolean)
};

}  // namespace attain::lang
