#include "attain/lang/conditional.hpp"

#include "ofp/fields.hpp"

namespace attain::lang {

std::string to_string(Property property) {
  switch (property) {
    case Property::Source: return "msg.source";
    case Property::Destination: return "msg.destination";
    case Property::Timestamp: return "msg.timestamp";
    case Property::Length: return "msg.length";
    case Property::Id: return "msg.id";
    case Property::Direction: return "msg.direction";
    case Property::Type: return "msg.type";
  }
  return "?";
}

namespace {

std::string op_name(BinaryOp op) {
  switch (op) {
    case BinaryOp::And: return "and";
    case BinaryOp::Or: return "or";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "!=";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
  }
  return "?";
}

std::int64_t as_int(const Value& v, const char* what) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
  throw EvalError(std::string("expected integer operand for ") + what + ", got " +
                  to_string(v));
}

}  // namespace

ExprPtr Expr::literal_int(std::int64_t v) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::Literal;
  e->literal = v;
  return e;
}

ExprPtr Expr::literal_value(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::Literal;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::prop(Property p) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::Prop;
  e->property = p;
  return e;
}

ExprPtr Expr::field(std::string path) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::Field;
  e->field_path = std::move(path);
  return e;
}

ExprPtr Expr::deque_front(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::DequeFront;
  e->deque_name = std::move(name);
  return e;
}

ExprPtr Expr::deque_end(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::DequeEnd;
  e->deque_name = std::move(name);
  return e;
}

ExprPtr Expr::deque_len(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::DequeLen;
  e->deque_name = std::move(name);
  return e;
}

ExprPtr Expr::negate(ExprPtr a) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::Not;
  e->a = std::move(a);
  return e;
}

ExprPtr Expr::binary(BinaryOp op, ExprPtr a, ExprPtr b) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::Binary;
  e->op = op;
  e->a = std::move(a);
  e->b = std::move(b);
  return e;
}

ExprPtr Expr::in_set(ExprPtr a, std::vector<Value> set) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::InSet;
  e->a = std::move(a);
  e->set = std::move(set);
  return e;
}

ExprPtr Expr::random(std::int64_t bound) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::Random;
  e->random_bound = bound;
  return e;
}

std::string Expr::to_string() const {
  switch (kind) {
    case Kind::Literal: return lang::to_string(literal);
    case Kind::Prop: return lang::to_string(property);
    case Kind::Field: return "msg.field(\"" + field_path + "\")";
    case Kind::DequeFront: return "examine_front(" + deque_name + ")";
    case Kind::DequeEnd: return "examine_end(" + deque_name + ")";
    case Kind::DequeLen: return "len(" + deque_name + ")";
    case Kind::Not: return "not (" + a->to_string() + ")";
    case Kind::Binary:
      return "(" + a->to_string() + " " + op_name(op) + " " + b->to_string() + ")";
    case Kind::Random:
      return "rand(" + std::to_string(random_bound) + ")";
    case Kind::InSet: {
      std::string out = a->to_string() + " in {";
      const char* sep = "";
      for (const Value& v : set) {
        out += sep;
        out += lang::to_string(v);
        sep = ",";
      }
      return out + "}";
    }
  }
  return "?";
}

namespace {

Value eval_prop(Property property, const EvalContext& ctx) {
  if (ctx.message == nullptr) throw EvalError("no message in evaluation context");
  const InFlightMessage& msg = *ctx.message;
  switch (property) {
    case Property::Source: return entity_value(msg.source);
    case Property::Destination: return entity_value(msg.destination);
    case Property::Timestamp: return static_cast<std::int64_t>(msg.timestamp);
    case Property::Length: return static_cast<std::int64_t>(msg.length());
    case Property::Id: return static_cast<std::int64_t>(msg.id);
    case Property::Direction: return static_cast<std::int64_t>(msg.direction);
    case Property::Type:
      if (msg.payload() == nullptr) throw EvalError("payload not readable (TLS or undecodable)");
      return static_cast<std::int64_t>(msg.payload()->type());
  }
  throw EvalError("bad property");
}

}  // namespace

Value evaluate(const Expr& expr, const EvalContext& ctx) {
  switch (expr.kind) {
    case Expr::Kind::Literal:
      return expr.literal;
    case Expr::Kind::Prop:
      return eval_prop(expr.property, ctx);
    case Expr::Kind::Field: {
      if (ctx.message == nullptr) throw EvalError("no message in evaluation context");
      const ofp::Message* payload = ctx.message->payload();
      if (payload == nullptr) throw EvalError("payload not readable (TLS or undecodable)");
      const auto value = ofp::get_field(*payload, expr.field_path);
      if (!value) {
        throw EvalError("message type " + to_string(payload->type()) + " has no field " +
                        expr.field_path);
      }
      return static_cast<std::int64_t>(*value);
    }
    case Expr::Kind::DequeFront:
      if (ctx.storage == nullptr) throw EvalError("no storage in evaluation context");
      return ctx.storage->examine_front(expr.deque_name);
    case Expr::Kind::DequeEnd:
      if (ctx.storage == nullptr) throw EvalError("no storage in evaluation context");
      return ctx.storage->examine_end(expr.deque_name);
    case Expr::Kind::DequeLen:
      if (ctx.storage == nullptr) throw EvalError("no storage in evaluation context");
      return static_cast<std::int64_t>(ctx.storage->size(expr.deque_name));
    case Expr::Kind::Not:
      return static_cast<std::int64_t>(!evaluate_bool(*expr.a, ctx));
    case Expr::Kind::Binary: {
      switch (expr.op) {
        case BinaryOp::And:  // short-circuit, so a FLOW_MOD-field guard works
          return static_cast<std::int64_t>(evaluate_bool(*expr.a, ctx) &&
                                           evaluate_bool(*expr.b, ctx));
        case BinaryOp::Or:
          return static_cast<std::int64_t>(evaluate_bool(*expr.a, ctx) ||
                                           evaluate_bool(*expr.b, ctx));
        default:
          break;
      }
      const Value va = evaluate(*expr.a, ctx);
      const Value vb = evaluate(*expr.b, ctx);
      switch (expr.op) {
        case BinaryOp::Eq: return static_cast<std::int64_t>(value_equals(va, vb));
        case BinaryOp::Ne: return static_cast<std::int64_t>(!value_equals(va, vb));
        case BinaryOp::Lt: return static_cast<std::int64_t>(as_int(va, "<") < as_int(vb, "<"));
        case BinaryOp::Le: return static_cast<std::int64_t>(as_int(va, "<=") <= as_int(vb, "<="));
        case BinaryOp::Gt: return static_cast<std::int64_t>(as_int(va, ">") > as_int(vb, ">"));
        case BinaryOp::Ge: return static_cast<std::int64_t>(as_int(va, ">=") >= as_int(vb, ">="));
        case BinaryOp::Add: return as_int(va, "+") + as_int(vb, "+");
        case BinaryOp::Sub: return as_int(va, "-") - as_int(vb, "-");
        case BinaryOp::And:
        case BinaryOp::Or:
          break;
      }
      throw EvalError("bad binary op");
    }
    case Expr::Kind::InSet: {
      const Value v = evaluate(*expr.a, ctx);
      for (const Value& member : expr.set) {
        if (value_equals(v, member)) return std::int64_t{1};
      }
      return std::int64_t{0};
    }
    case Expr::Kind::Random: {
      if (ctx.rng == nullptr) throw EvalError("no RNG in evaluation context for rand()");
      if (expr.random_bound <= 0) throw EvalError("rand() bound must be positive");
      return static_cast<std::int64_t>(
          ctx.rng->next_below(static_cast<std::uint64_t>(expr.random_bound)));
    }
  }
  throw EvalError("bad expression kind");
}

bool evaluate_bool(const Expr& expr, const EvalContext& ctx) {
  const Value v = evaluate(expr, ctx);
  if (const auto* i = std::get_if<std::int64_t>(&v)) return *i != 0;
  throw EvalError("conditional did not evaluate to a boolean/integer: " + to_string(v));
}

model::CapabilitySet required_capabilities(const Expr& expr) {
  model::CapabilitySet caps;
  switch (expr.kind) {
    case Expr::Kind::Prop:
      if (expr.property == Property::Type) {
        caps.insert(model::Capability::ReadMessage);
      } else {
        caps.insert(model::Capability::ReadMessageMetadata);
      }
      break;
    case Expr::Kind::Field:
      caps.insert(model::Capability::ReadMessage);
      break;
    case Expr::Kind::Not:
      caps = required_capabilities(*expr.a);
      break;
    case Expr::Kind::Binary:
      caps = required_capabilities(*expr.a) | required_capabilities(*expr.b);
      break;
    case Expr::Kind::InSet:
      caps = required_capabilities(*expr.a);
      break;
    default:
      break;
  }
  return caps;
}

}  // namespace attain::lang
