// Runtime values of the attack language: the message-in-flight record the
// injector evaluates rules against (§V-A message properties), and the Value
// variant stored in deques and produced by expressions.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>

#include "chan/envelope.hpp"
#include "common/bytes.hpp"
#include "common/types.hpp"
#include "ofp/messages.hpp"

namespace attain::lang {

/// Which way a control-plane message is travelling on its connection.
/// (Canonically defined by the channel layer; aliased here for the
/// language's message-property vocabulary.)
using Direction = chan::Direction;
using chan::to_string;

/// A control message as seen by the runtime injector's proxy, carrying the
/// paper's message properties. Metadata (source, destination, timestamp,
/// length, id) is always populated; the payload view (via the envelope's
/// decode-once cache) is readable only for non-TLS connections — a sealed
/// envelope answers payload() with nullptr, since the injector cannot
/// parse ciphertext.
struct InFlightMessage {
  ConnectionId connection;
  Direction direction{Direction::SwitchToController};
  EntityId source;        // MESSAGESOURCE (∈ C ∪ S)
  EntityId destination;   // MESSAGEDESTINATION (∈ C ∪ S)
  SimTime timestamp{0};   // MESSAGETIMESTAMP (arrival time)
  std::uint64_t id{0};    // MESSAGEID (unique, injector-assigned)
  /// The frame itself: wire bytes + decoded view, lazily cross-derived.
  chan::Envelope envelope;
  bool tls{false};

  /// MESSAGELENGTH — the frame's wire size.
  std::size_t length() const { return envelope.wire_size(); }
  /// Decoded payload (MESSAGETYPE + MESSAGETYPEOPTIONS); nullptr when the
  /// envelope is sealed (TLS) or the frame does not parse.
  const ofp::Message* payload() const { return envelope.message(); }
  ofp::Message* mutable_payload() { return envelope.mutable_message(); }
  const Bytes& wire() const { return envelope.wire(); }
};

/// Encodes an entity id as an expression-comparable integer. Guaranteed
/// distinct across kinds and indices.
constexpr std::int64_t entity_value(EntityId id) {
  return (static_cast<std::int64_t>(id.kind) + 1) * (std::int64_t{1} << 32) +
         static_cast<std::int64_t>(id.index);
}

/// A stored message (deques hold snapshots so replay survives the original
/// leaving the pipeline).
using StoredMessage = std::shared_ptr<const InFlightMessage>;

/// The language's value domain: integers (counters, addresses, field
/// values), strings (rare: monitor annotations), and captured messages.
using Value = std::variant<std::int64_t, std::string, StoredMessage>;

std::string to_string(const Value& value);

/// True iff both are integers/strings and equal, or both reference the
/// same stored message.
bool value_equals(const Value& a, const Value& b);

}  // namespace attain::lang
