// Runtime values of the attack language: the message-in-flight record the
// injector evaluates rules against (§V-A message properties), and the Value
// variant stored in deques and produced by expressions.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "ofp/messages.hpp"

namespace attain::lang {

/// Which way a control-plane message is travelling on its connection.
enum class Direction : std::uint8_t { SwitchToController, ControllerToSwitch };

std::string to_string(Direction direction);

/// A control message as seen by the runtime injector's proxy, carrying the
/// paper's message properties. Metadata (source, destination, timestamp,
/// length, id) is always populated; the decoded payload view is populated
/// only for non-TLS connections (the injector cannot parse ciphertext).
struct InFlightMessage {
  ConnectionId connection;
  Direction direction{Direction::SwitchToController};
  EntityId source;        // MESSAGESOURCE (∈ C ∪ S)
  EntityId destination;   // MESSAGEDESTINATION (∈ C ∪ S)
  SimTime timestamp{0};   // MESSAGETIMESTAMP (arrival time)
  std::uint64_t id{0};    // MESSAGEID (unique, injector-assigned)
  Bytes wire;             // raw frame; MESSAGELENGTH = wire.size()
  /// Decoded payload (MESSAGETYPE + MESSAGETYPEOPTIONS); std::nullopt when
  /// the connection is TLS-protected or the frame does not parse.
  std::optional<ofp::Message> payload;
  bool tls{false};

  std::size_t length() const { return wire.size(); }
};

/// Encodes an entity id as an expression-comparable integer. Guaranteed
/// distinct across kinds and indices.
constexpr std::int64_t entity_value(EntityId id) {
  return (static_cast<std::int64_t>(id.kind) + 1) * (std::int64_t{1} << 32) +
         static_cast<std::int64_t>(id.index);
}

/// A stored message (deques hold snapshots so replay survives the original
/// leaving the pipeline).
using StoredMessage = std::shared_ptr<const InFlightMessage>;

/// The language's value domain: integers (counters, addresses, field
/// values), strings (rare: monitor annotations), and captured messages.
using Value = std::variant<std::int64_t, std::string, StoredMessage>;

std::string to_string(const Value& value);

/// True iff both are integers/strings and equal, or both reference the
/// same stored message.
bool value_equals(const Value& a, const Value& b);

}  // namespace attain::lang
