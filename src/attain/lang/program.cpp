#include "attain/lang/program.hpp"

namespace attain::lang {

std::string to_string(ExecStatus status) {
  switch (status) {
    case ExecStatus::Ok: return "ok";
    case ExecStatus::NoMessage: return "no_message";
    case ExecStatus::PayloadUnreadable: return "payload_unreadable";
    case ExecStatus::FieldAbsent: return "field_absent";
    case ExecStatus::NoStorage: return "no_storage";
    case ExecStatus::DequeUndeclared: return "deque_undeclared";
    case ExecStatus::DequeEmpty: return "deque_empty";
    case ExecStatus::NoRng: return "no_rng";
    case ExecStatus::BadRandomBound: return "bad_random_bound";
    case ExecStatus::TypeMismatch: return "type_mismatch";
    case ExecStatus::NotBoolean: return "not_boolean";
    case ExecStatus::BadProgram: return "bad_program";
  }
  return "?";
}

namespace {

using Op = Instr::Op;

constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

// ---------------------------------------------------------------------------
// Guard derivation.
//
// Two sound over-approximations per subexpression, each a (message-type set,
// direction set, decodability) triple:
//   nothrow(e)  ⊇ contexts where evaluating e might not raise;
//   truthy(e)   ⊇ contexts where e might evaluate to a truthy integer.
// The rule guard is truthy(conditional): everywhere else the conditional is
// guaranteed to evaluate false or raise, both of which the executor treats
// as "no match", so the rule is skippable. Expressions containing rand()
// are never narrowed — a skipped evaluation must not change the RNG stream
// (replays are byte-compared across runs).

struct GuardSet {
  std::uint32_t types{0};
  std::uint8_t dirs{0};
  bool undec{false};
};

constexpr GuardSet kAll{Guard::kAllTypes, 0b11, true};
constexpr GuardSet kNone{0, 0, false};

GuardSet intersect(GuardSet a, GuardSet b) {
  return GuardSet{a.types & b.types, static_cast<std::uint8_t>(a.dirs & b.dirs),
                  a.undec && b.undec};
}

GuardSet unite(GuardSet a, GuardSet b) {
  return GuardSet{a.types | b.types, static_cast<std::uint8_t>(a.dirs | b.dirs),
                  a.undec || b.undec};
}

bool contains_random(const Expr& e) {
  if (e.kind == Expr::Kind::Random) return true;
  if (e.a && contains_random(*e.a)) return true;
  if (e.b && contains_random(*e.b)) return true;
  return false;
}

GuardSet guard_nothrow(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::Literal:
    case Expr::Kind::DequeFront:
    case Expr::Kind::DequeEnd:
    case Expr::Kind::DequeLen:
    case Expr::Kind::Random:
      return kAll;
    case Expr::Kind::Prop:
      if (e.property == Property::Type) return GuardSet{Guard::kAllTypes, 0b11, false};
      return kAll;
    case Expr::Kind::Field: {
      const auto id = ofp::field_id(e.field_path);
      if (!id) return kNone;  // no message type has it: always raises
      return GuardSet{ofp::field_presence_mask(*id), 0b11, false};
    }
    case Expr::Kind::Not:
      return guard_nothrow(*e.a);
    case Expr::Kind::Binary:
      switch (e.op) {
        case BinaryOp::And:
        case BinaryOp::Or:
          // A short-circuiting connective survives wherever its first
          // operand does (a false/true probe ends evaluation early).
          return guard_nothrow(*e.a);
        default:
          return intersect(guard_nothrow(*e.a), guard_nothrow(*e.b));
      }
    case Expr::Kind::InSet:
      return guard_nothrow(*e.a);
  }
  return kAll;
}

/// The int64 payload of a literal-int expression, if it is one.
std::optional<std::int64_t> literal_int(const Expr& e) {
  if (e.kind != Expr::Kind::Literal) return std::nullopt;
  if (const auto* i = std::get_if<std::int64_t>(&e.literal)) return *i;
  return std::nullopt;
}

GuardSet guard_truthy(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::Literal: {
      const auto i = literal_int(e);
      return (i && *i != 0) ? kAll : kNone;  // non-int literal: never boolean-true
    }
    case Expr::Kind::Prop:
      switch (e.property) {
        case Property::Direction:
          // Truthy iff direction == ControllerToSwitch (wire value 1).
          return GuardSet{Guard::kAllTypes, 0b10, true};
        case Property::Type:
          // Truthy iff the decoded type's wire value is nonzero (Hello = 0).
          return GuardSet{Guard::kAllTypes & ~1u, 0b11, false};
        default:
          return kAll;
      }
    case Expr::Kind::Field:
      return guard_nothrow(e);
    case Expr::Kind::DequeFront:
    case Expr::Kind::DequeEnd:
    case Expr::Kind::DequeLen:
    case Expr::Kind::Random:
      return kAll;
    case Expr::Kind::Not:
      // Truthy wherever the child evaluates to integer zero; bound that by
      // "child does not raise".
      return guard_nothrow(*e.a);
    case Expr::Kind::Binary:
      switch (e.op) {
        case BinaryOp::And:
          return intersect(guard_truthy(*e.a), guard_truthy(*e.b));
        case BinaryOp::Or:
          return unite(guard_truthy(*e.a),
                       intersect(guard_nothrow(*e.a), guard_truthy(*e.b)));
        case BinaryOp::Eq: {
          // The workhorse: msg.type == FLOW_MOD / msg.direction == d narrow
          // the guard to exactly one type / direction bit.
          const Expr* prop = nullptr;
          const Expr* lit = nullptr;
          if (e.a->kind == Expr::Kind::Prop && literal_int(*e.b)) {
            prop = e.a.get();
            lit = e.b.get();
          } else if (e.b->kind == Expr::Kind::Prop && literal_int(*e.a)) {
            prop = e.b.get();
            lit = e.a.get();
          }
          if (prop != nullptr) {
            const std::int64_t k = *literal_int(*lit);
            if (prop->property == Property::Type) {
              if (k < 0 || k >= 20) return kNone;
              return GuardSet{1u << static_cast<unsigned>(k), 0b11, false};
            }
            if (prop->property == Property::Direction) {
              if (k != 0 && k != 1) return kNone;
              return GuardSet{Guard::kAllTypes, static_cast<std::uint8_t>(1u << k), true};
            }
          }
          return intersect(guard_nothrow(*e.a), guard_nothrow(*e.b));
        }
        default:
          return intersect(guard_nothrow(*e.a), guard_nothrow(*e.b));
      }
    case Expr::Kind::InSet: {
      if (e.a->kind == Expr::Kind::Prop &&
          (e.a->property == Property::Type || e.a->property == Property::Direction)) {
        GuardSet out = e.a->property == Property::Type ? GuardSet{0, 0b11, false}
                                                       : GuardSet{Guard::kAllTypes, 0, true};
        for (const Value& member : e.set) {
          const auto* i = std::get_if<std::int64_t>(&member);
          if (i == nullptr) continue;  // non-int member never equals the int prop
          if (e.a->property == Property::Type) {
            if (*i >= 0 && *i < 20) out.types |= 1u << static_cast<unsigned>(*i);
          } else {
            if (*i == 0 || *i == 1) out.dirs |= 1u << static_cast<unsigned>(*i);
          }
        }
        return out;
      }
      return guard_nothrow(*e.a);
    }
  }
  return kAll;
}

Guard derive_guard(const Expr& e) {
  if (contains_random(e)) return Guard{};  // pass-all: preserve RNG draws
  const GuardSet m = guard_truthy(e);
  return Guard{m.types, m.dirs, m.undec};
}

}  // namespace

// ---------------------------------------------------------------------------
// Compilation: constant folding + flat-code emission.

struct ProgramBuilder {
 public:
  explicit ProgramBuilder(const Program::CompileEnv& env) : env_(env) {}

  Program take(const Expr& expr) {
    emit(expr);
    program_.guard_ = derive_guard(expr);
    program_.max_stack_ = static_cast<std::uint16_t>(max_depth_);
    return std::move(program_);
  }

 private:
  /// Compile-time value of a side-effect-free literal subtree, or nullopt.
  /// Mirrors the oracle exactly: folding only happens where the tree could
  /// not have raised, so error behaviour is preserved un-folded.
  std::optional<Value> fold(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::Literal:
        return e.literal;
      case Expr::Kind::Not: {
        const auto a = fold(*e.a);
        if (!a) return std::nullopt;
        const auto* i = std::get_if<std::int64_t>(&*a);
        if (i == nullptr) return std::nullopt;  // runtime NotBoolean, not folded
        return Value{static_cast<std::int64_t>(*i == 0)};
      }
      case Expr::Kind::Binary: {
        if (e.op == BinaryOp::And || e.op == BinaryOp::Or) {
          const auto a = fold(*e.a);
          if (!a) return std::nullopt;
          const auto* ai = std::get_if<std::int64_t>(&*a);
          if (ai == nullptr) return std::nullopt;
          const bool a_true = *ai != 0;
          if (e.op == BinaryOp::And && !a_true) return Value{std::int64_t{0}};
          if (e.op == BinaryOp::Or && a_true) return Value{std::int64_t{1}};
          // Short-circuit decided by b alone.
          const auto b = fold(*e.b);
          if (!b) return std::nullopt;
          const auto* bi = std::get_if<std::int64_t>(&*b);
          if (bi == nullptr) return std::nullopt;
          return Value{static_cast<std::int64_t>(*bi != 0)};
        }
        const auto a = fold(*e.a);
        const auto b = a ? fold(*e.b) : std::nullopt;
        if (!a || !b) return std::nullopt;
        if (e.op == BinaryOp::Eq) return Value{static_cast<std::int64_t>(value_equals(*a, *b))};
        if (e.op == BinaryOp::Ne) return Value{static_cast<std::int64_t>(!value_equals(*a, *b))};
        const auto* ai = std::get_if<std::int64_t>(&*a);
        const auto* bi = std::get_if<std::int64_t>(&*b);
        if (ai == nullptr || bi == nullptr) return std::nullopt;  // runtime TypeMismatch
        switch (e.op) {
          case BinaryOp::Lt: return Value{static_cast<std::int64_t>(*ai < *bi)};
          case BinaryOp::Le: return Value{static_cast<std::int64_t>(*ai <= *bi)};
          case BinaryOp::Gt: return Value{static_cast<std::int64_t>(*ai > *bi)};
          case BinaryOp::Ge: return Value{static_cast<std::int64_t>(*ai >= *bi)};
          case BinaryOp::Add: return Value{*ai + *bi};
          case BinaryOp::Sub: return Value{*ai - *bi};
          default: return std::nullopt;
        }
      }
      case Expr::Kind::InSet: {
        const auto a = fold(*e.a);
        if (!a) return std::nullopt;
        for (const Value& member : e.set) {
          if (value_equals(*a, member)) return Value{std::int64_t{1}};
        }
        return Value{std::int64_t{0}};
      }
      default:
        return std::nullopt;  // Prop/Field/Deque/Random depend on the context
    }
  }

  void emit(const Expr& e) {
    if (const auto folded = fold(e)) {
      push_value(*folded);
      return;
    }
    switch (e.kind) {
      case Expr::Kind::Literal:
        push_value(e.literal);  // non-int literal (int ones fold)
        return;
      case Expr::Kind::Prop:
        add(Op::PushProp, static_cast<std::uint16_t>(e.property), 0, +1);
        return;
      case Expr::Kind::Field: {
        const auto id = ofp::field_id(e.field_path);
        if (id) {
          add(Op::PushField, static_cast<std::uint16_t>(*id), 0, +1);
        } else {
          program_.bad_fields_.push_back(e.field_path);
          add(Op::PushBadField,
              static_cast<std::uint16_t>(program_.bad_fields_.size() - 1), 0, +1);
        }
        return;
      }
      case Expr::Kind::DequeFront:
        add(Op::PushDequeFront, deque_ref(e.deque_name), 0, +1);
        return;
      case Expr::Kind::DequeEnd:
        add(Op::PushDequeEnd, deque_ref(e.deque_name), 0, +1);
        return;
      case Expr::Kind::DequeLen:
        add(Op::PushDequeLen, deque_ref(e.deque_name), 0, +1);
        return;
      case Expr::Kind::Random:
        add(Op::PushRandom, 0, e.random_bound, +1);
        return;
      case Expr::Kind::Not:
        emit(*e.a);
        add(Op::Not, 0, 0, 0);
        return;
      case Expr::Kind::Binary:
        switch (e.op) {
          case BinaryOp::And:
          case BinaryOp::Or: {
            const bool is_and = e.op == BinaryOp::And;
            if (const auto a = fold(*e.a)) {
              if (std::get_if<std::int64_t>(&*a) != nullptr) {
                // The first operand folded but the whole didn't: it decided
                // nothing (true for AND / false for OR), so only b matters.
                emit(*e.b);
                add(Op::ToBool, 0, 0, 0);
                return;
              }
            }
            emit(*e.a);
            const std::size_t probe =
                add(is_and ? Op::JumpIfFalse : Op::JumpIfTrue, 0, 0, -1);
            emit(*e.b);
            add(Op::ToBool, 0, 0, 0);
            program_.code_[probe].imm = static_cast<std::int64_t>(program_.code_.size());
            // The probe's short-circuit branch re-pushes the 0/1 result, so
            // both joins land at the same depth as b's value.
            note_depth(depth_ + 1);
            return;
          }
          case BinaryOp::Eq:
          case BinaryOp::Ne:
          case BinaryOp::Lt:
          case BinaryOp::Le:
          case BinaryOp::Gt:
          case BinaryOp::Ge:
          case BinaryOp::Add:
          case BinaryOp::Sub: {
            emit(*e.a);
            emit(*e.b);
            static constexpr Op kOps[] = {Op::Eq, Op::Ne, Op::Lt, Op::Le,
                                          Op::Gt, Op::Ge, Op::Add, Op::Sub};
            add(kOps[static_cast<int>(e.op) - static_cast<int>(BinaryOp::Eq)], 0, 0, -1);
            return;
          }
        }
        return;
      case Expr::Kind::InSet: {
        emit(*e.a);
        const std::size_t start = program_.pool_.size();
        for (const Value& member : e.set) program_.pool_.push_back(member);
        add(Op::InSet, static_cast<std::uint16_t>(start),
            static_cast<std::int64_t>(e.set.size()), 0);
        return;
      }
    }
  }

  void push_value(const Value& v) {
    if (const auto* i = std::get_if<std::int64_t>(&v)) {
      add(Op::PushInt, 0, *i, +1);
      return;
    }
    program_.pool_.push_back(v);
    add(Op::PushConst, static_cast<std::uint16_t>(program_.pool_.size() - 1), 0, +1);
  }

  std::uint16_t deque_ref(const std::string& name) {
    for (std::size_t i = 0; i < program_.deques_.size(); ++i) {
      if (program_.deques_[i].name == name) return static_cast<std::uint16_t>(i);
    }
    std::size_t slot = kNoSlot;
    if (env_.deque_names != nullptr) {
      for (std::size_t i = 0; i < env_.deque_names->size(); ++i) {
        if ((*env_.deque_names)[i] == name) {
          slot = i;
          break;
        }
      }
    }
    program_.deques_.push_back(Program::DequeRef{name, slot});
    return static_cast<std::uint16_t>(program_.deques_.size() - 1);
  }

  std::size_t add(Op op, std::uint16_t a, std::int64_t imm, int stack_effect) {
    program_.code_.push_back(Instr{op, a, imm});
    depth_ += stack_effect;
    note_depth(depth_);
    return program_.code_.size() - 1;
  }

  void note_depth(int depth) {
    if (depth > max_depth_) max_depth_ = depth;
  }

  const Program::CompileEnv& env_;
  Program program_;
  int depth_{0};
  int max_depth_{0};
};

namespace {

const char* op_name(Op op) {
  switch (op) {
    case Op::PushInt: return "push_int";
    case Op::PushConst: return "push_const";
    case Op::PushProp: return "push_prop";
    case Op::PushField: return "push_field";
    case Op::PushBadField: return "push_bad_field";
    case Op::PushDequeFront: return "push_deque_front";
    case Op::PushDequeEnd: return "push_deque_end";
    case Op::PushDequeLen: return "push_deque_len";
    case Op::PushRandom: return "push_random";
    case Op::Not: return "not";
    case Op::ToBool: return "to_bool";
    case Op::JumpIfFalse: return "jump_if_false";
    case Op::JumpIfTrue: return "jump_if_true";
    case Op::Eq: return "eq";
    case Op::Ne: return "ne";
    case Op::Lt: return "lt";
    case Op::Le: return "le";
    case Op::Gt: return "gt";
    case Op::Ge: return "ge";
    case Op::Add: return "add";
    case Op::Sub: return "sub";
    case Op::InSet: return "in_set";
  }
  return "?";
}

/// The operand spelling the oracle's as_int() uses in its error message.
const char* op_symbol(Op op) {
  switch (op) {
    case Op::Lt: return "<";
    case Op::Le: return "<=";
    case Op::Gt: return ">";
    case Op::Ge: return ">=";
    case Op::Add: return "+";
    case Op::Sub: return "-";
    default: return "?";
  }
}

}  // namespace

Program Program::compile(const Expr& expr, const CompileEnv& env) {
  return ProgramBuilder(env).take(expr);
}

std::string Program::disassemble() const {
  std::string out;
  for (std::size_t i = 0; i < code_.size(); ++i) {
    const Instr& ins = code_[i];
    out += std::to_string(i) + ": " + op_name(ins.op);
    switch (ins.op) {
      case Op::PushInt:
      case Op::PushRandom:
        out += " " + std::to_string(ins.imm);
        break;
      case Op::PushConst:
        out += " " + lang::to_string(pool_[ins.a]);
        break;
      case Op::PushProp:
        out += " " + lang::to_string(static_cast<Property>(ins.a));
        break;
      case Op::PushField:
        out += " " + std::string(ofp::field_path(static_cast<ofp::FieldId>(ins.a)));
        break;
      case Op::PushBadField:
        out += " " + bad_fields_[ins.a] + " (unknown)";
        break;
      case Op::PushDequeFront:
      case Op::PushDequeEnd:
      case Op::PushDequeLen:
        out += " " + deques_[ins.a].name + "@" +
               (deques_[ins.a].slot == kNoSlot ? std::string("?")
                                               : std::to_string(deques_[ins.a].slot));
        break;
      case Op::JumpIfFalse:
      case Op::JumpIfTrue:
        out += " -> " + std::to_string(ins.imm);
        break;
      case Op::InSet:
        out += " pool[" + std::to_string(ins.a) + ".." +
               std::to_string(ins.a + static_cast<std::size_t>(ins.imm)) + ")";
        break;
      default:
        break;
    }
    out += "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Evaluation.

namespace {

/// Boolean view of a slot; false return = not an integer.
inline bool slot_as_bool(const ProgramEvaluator&, std::int64_t i, const Value* ref, bool& out) {
  if (ref == nullptr) {
    out = i != 0;
    return true;
  }
  const auto* v = std::get_if<std::int64_t>(ref);
  if (v == nullptr) return false;
  out = *v != 0;
  return true;
}

}  // namespace

ExecStatus ProgramEvaluator::fail(ExecStatus status, std::size_t ip) {
  status_ = status;
  error_ip_ = ip;
  return status;
}

ExecStatus ProgramEvaluator::fail_value(ExecStatus status, std::size_t ip,
                                        const Slot& offending) {
  // Error paths may allocate (the offending Value is copied for the
  // diagnostic); the steady-state Ok path never reaches here.
  error_value_ = offending.ref != nullptr ? *offending.ref : Value{offending.i};
  return fail(status, ip);
}

ExecStatus ProgramEvaluator::run(const Program& p, const EvalContext& ctx, Slot& result) {
  const std::size_t n = p.code_.size();
  if (n == 0) return fail(ExecStatus::BadProgram, 0);
  if (stack_.size() < p.max_stack_) stack_.resize(p.max_stack_);
  const Instr* code = p.code_.data();
  Slot* st = stack_.data();
  std::size_t sp = 0;
  status_ = ExecStatus::Ok;

  const auto as_bool = [&](const Slot& s, bool& out) {
    return slot_as_bool(*this, s.i, s.ref, out);
  };
  const auto as_int = [](const Slot& s, std::int64_t& out) {
    if (s.ref == nullptr) {
      out = s.i;
      return true;
    }
    const auto* v = std::get_if<std::int64_t>(s.ref);
    if (v == nullptr) return false;
    out = *v;
    return true;
  };
  const auto slots_equal = [](const Slot& a, const Slot& b) {
    if (a.ref == nullptr && b.ref == nullptr) return a.i == b.i;
    if (a.ref != nullptr && b.ref != nullptr) return value_equals(*a.ref, *b.ref);
    const Slot& intslot = a.ref == nullptr ? a : b;
    const Value& val = a.ref == nullptr ? *b.ref : *a.ref;
    const auto* v = std::get_if<std::int64_t>(&val);
    return v != nullptr && *v == intslot.i;
  };

  for (std::size_t ip = 0; ip < n; ++ip) {
    const Instr& ins = code[ip];
    switch (ins.op) {
      case Op::PushInt:
        st[sp++] = Slot{ins.imm, nullptr};
        break;
      case Op::PushConst:
        st[sp++] = Slot{0, &p.pool_[ins.a]};
        break;
      case Op::PushProp: {
        if (ctx.message == nullptr) return fail(ExecStatus::NoMessage, ip);
        const InFlightMessage& m = *ctx.message;
        std::int64_t v = 0;
        switch (static_cast<Property>(ins.a)) {
          case Property::Source: v = entity_value(m.source); break;
          case Property::Destination: v = entity_value(m.destination); break;
          case Property::Timestamp: v = static_cast<std::int64_t>(m.timestamp); break;
          case Property::Length: v = static_cast<std::int64_t>(m.length()); break;
          case Property::Id: v = static_cast<std::int64_t>(m.id); break;
          case Property::Direction: v = static_cast<std::int64_t>(m.direction); break;
          case Property::Type: {
            const ofp::Message* payload = m.payload();
            if (payload == nullptr) return fail(ExecStatus::PayloadUnreadable, ip);
            v = static_cast<std::int64_t>(payload->type());
            break;
          }
        }
        st[sp++] = Slot{v, nullptr};
        break;
      }
      case Op::PushField: {
        if (ctx.message == nullptr) return fail(ExecStatus::NoMessage, ip);
        const ofp::Message* payload = ctx.message->payload();
        if (payload == nullptr) return fail(ExecStatus::PayloadUnreadable, ip);
        const auto value = ofp::get_field(*payload, static_cast<ofp::FieldId>(ins.a));
        if (!value) return fail(ExecStatus::FieldAbsent, ip);
        st[sp++] = Slot{static_cast<std::int64_t>(*value), nullptr};
        break;
      }
      case Op::PushBadField: {
        if (ctx.message == nullptr) return fail(ExecStatus::NoMessage, ip);
        if (ctx.message->payload() == nullptr) return fail(ExecStatus::PayloadUnreadable, ip);
        return fail(ExecStatus::FieldAbsent, ip);
      }
      case Op::PushDequeFront:
      case Op::PushDequeEnd: {
        if (ctx.storage == nullptr) return fail(ExecStatus::NoStorage, ip);
        const auto& ref = p.deques_[ins.a];
        if (ref.slot == kNoSlot || ref.slot >= ctx.storage->slot_count()) {
          return fail(ExecStatus::DequeUndeclared, ip);
        }
        const Value* v = ins.op == Op::PushDequeFront ? ctx.storage->peek_front(ref.slot)
                                                      : ctx.storage->peek_end(ref.slot);
        if (v == nullptr) return fail(ExecStatus::DequeEmpty, ip);
        st[sp++] = Slot{0, v};
        break;
      }
      case Op::PushDequeLen: {
        if (ctx.storage == nullptr) return fail(ExecStatus::NoStorage, ip);
        const auto& ref = p.deques_[ins.a];
        if (ref.slot == kNoSlot || ref.slot >= ctx.storage->slot_count()) {
          return fail(ExecStatus::DequeUndeclared, ip);
        }
        st[sp++] = Slot{static_cast<std::int64_t>(ctx.storage->size_at(ref.slot)), nullptr};
        break;
      }
      case Op::PushRandom: {
        if (ctx.rng == nullptr) return fail(ExecStatus::NoRng, ip);
        if (ins.imm <= 0) return fail(ExecStatus::BadRandomBound, ip);
        st[sp++] = Slot{
            static_cast<std::int64_t>(ctx.rng->next_below(static_cast<std::uint64_t>(ins.imm))),
            nullptr};
        break;
      }
      case Op::Not: {
        bool b = false;
        if (!as_bool(st[sp - 1], b)) return fail_value(ExecStatus::NotBoolean, ip, st[sp - 1]);
        st[sp - 1] = Slot{static_cast<std::int64_t>(!b), nullptr};
        break;
      }
      case Op::ToBool: {
        bool b = false;
        if (!as_bool(st[sp - 1], b)) return fail_value(ExecStatus::NotBoolean, ip, st[sp - 1]);
        st[sp - 1] = Slot{static_cast<std::int64_t>(b), nullptr};
        break;
      }
      case Op::JumpIfFalse:
      case Op::JumpIfTrue: {
        bool b = false;
        if (!as_bool(st[sp - 1], b)) return fail_value(ExecStatus::NotBoolean, ip, st[sp - 1]);
        --sp;
        const bool taken = ins.op == Op::JumpIfTrue ? b : !b;
        if (taken) {
          st[sp++] = Slot{static_cast<std::int64_t>(b), nullptr};
          ip = static_cast<std::size_t>(ins.imm) - 1;  // loop ++ lands on target
        }
        break;
      }
      case Op::Eq:
      case Op::Ne: {
        const bool eq = slots_equal(st[sp - 2], st[sp - 1]);
        --sp;
        st[sp - 1] = Slot{static_cast<std::int64_t>(ins.op == Op::Eq ? eq : !eq), nullptr};
        break;
      }
      case Op::Lt:
      case Op::Le:
      case Op::Gt:
      case Op::Ge:
      case Op::Add:
      case Op::Sub: {
        std::int64_t a = 0;
        std::int64_t b = 0;
        // Operand order matters for the diagnostic: the oracle checks the
        // left value first.
        if (!as_int(st[sp - 2], a)) return fail_value(ExecStatus::TypeMismatch, ip, st[sp - 2]);
        if (!as_int(st[sp - 1], b)) return fail_value(ExecStatus::TypeMismatch, ip, st[sp - 1]);
        --sp;
        std::int64_t r = 0;
        switch (ins.op) {
          case Op::Lt: r = static_cast<std::int64_t>(a < b); break;
          case Op::Le: r = static_cast<std::int64_t>(a <= b); break;
          case Op::Gt: r = static_cast<std::int64_t>(a > b); break;
          case Op::Ge: r = static_cast<std::int64_t>(a >= b); break;
          case Op::Add: r = a + b; break;
          case Op::Sub: r = a - b; break;
          default: break;
        }
        st[sp - 1] = Slot{r, nullptr};
        break;
      }
      case Op::InSet: {
        bool found = false;
        const Slot& s = st[sp - 1];
        for (std::int64_t i = 0; i < ins.imm && !found; ++i) {
          const Value& member = p.pool_[ins.a + static_cast<std::size_t>(i)];
          if (s.ref == nullptr) {
            const auto* v = std::get_if<std::int64_t>(&member);
            found = v != nullptr && *v == s.i;
          } else {
            found = value_equals(*s.ref, member);
          }
        }
        st[sp - 1] = Slot{static_cast<std::int64_t>(found), nullptr};
        break;
      }
    }
  }
  if (sp != 1) return fail(ExecStatus::BadProgram, n == 0 ? 0 : n - 1);
  result = st[0];
  return ExecStatus::Ok;
}

ExecStatus ProgramEvaluator::run_bool(const Program& program, const EvalContext& ctx, bool& out) {
  Slot result;
  const ExecStatus status = run(program, ctx, result);
  if (status != ExecStatus::Ok) return status;
  if (!slot_as_bool(*this, result.i, result.ref, out)) {
    return fail_value(ExecStatus::NotBoolean, program.code_.size() - 1, result);
  }
  return ExecStatus::Ok;
}

ExecStatus ProgramEvaluator::run_value(const Program& program, const EvalContext& ctx,
                                       Value& out) {
  Slot result;
  const ExecStatus status = run(program, ctx, result);
  if (status != ExecStatus::Ok) return status;
  out = result.ref != nullptr ? *result.ref : Value{result.i};
  return ExecStatus::Ok;
}

std::string ProgramEvaluator::error_detail(const Program& program, const EvalContext& ctx) const {
  const Instr* ins =
      error_ip_ < program.code_.size() ? &program.code_[error_ip_] : nullptr;
  switch (status_) {
    case ExecStatus::Ok:
      return "";
    case ExecStatus::NoMessage:
      return "no message in evaluation context";
    case ExecStatus::PayloadUnreadable:
      return "payload not readable (TLS or undecodable)";
    case ExecStatus::FieldAbsent: {
      std::string path = "?";
      if (ins != nullptr) {
        path = ins->op == Op::PushBadField
                   ? program.bad_fields_[ins->a]
                   : std::string(ofp::field_path(static_cast<ofp::FieldId>(ins->a)));
      }
      std::string type = "?";
      if (ctx.message != nullptr && ctx.message->payload() != nullptr) {
        type = ofp::to_string(ctx.message->payload()->type());
      }
      return "message type " + type + " has no field " + path;
    }
    case ExecStatus::NoStorage:
      return "no storage in evaluation context";
    case ExecStatus::DequeUndeclared:
      return "undeclared deque: " + (ins != nullptr ? program.deques_[ins->a].name : "?");
    case ExecStatus::DequeEmpty: {
      const std::string name = ins != nullptr ? program.deques_[ins->a].name : "?";
      const bool front = ins != nullptr && ins->op == Op::PushDequeFront;
      return (front ? "examine_front" : "examine_end") + std::string(" on empty deque: ") + name;
    }
    case ExecStatus::NoRng:
      return "no RNG in evaluation context for rand()";
    case ExecStatus::BadRandomBound:
      return "rand() bound must be positive";
    case ExecStatus::TypeMismatch:
      return std::string("expected integer operand for ") +
             (ins != nullptr ? op_symbol(ins->op) : "?") + ", got " +
             lang::to_string(error_value_);
    case ExecStatus::NotBoolean:
      return "conditional did not evaluate to a boolean/integer: " +
             lang::to_string(error_value_);
    case ExecStatus::BadProgram:
      return "bad program";
  }
  return "?";
}

}  // namespace attain::lang
