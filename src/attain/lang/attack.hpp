// Rules φ (§V-E), attack states Σ (§V-F), and the attack state graph Σ_G
// (§V-G). An Attack is the in-memory form the compiler produces and the
// runtime injector executes.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "attain/lang/actions.hpp"
#include "attain/lang/conditional.hpp"

namespace attain::lang {

/// φ = (n, γ, λ, α): connection, required capabilities, conditional, and
/// the ordered action list it triggers.
struct Rule {
  std::string name;                      // "phi1"
  ConnectionId connection;               // n ∈ N_C
  model::CapabilitySet capabilities;     // γ: declared requirement
  ExprPtr conditional;                   // λ
  std::vector<ActionSpec> actions;       // α (ordered)

  /// Capabilities actually needed: declared γ ∪ conditional reads ∪ action
  /// actuations (the compiler checks this against Γ_{N_C}).
  model::CapabilitySet required_capabilities() const;
};

/// σ: a named stage of the attack with an (unordered) rule set. A state
/// with no rules is an end state σ_end — every message passes untouched.
struct AttackState {
  std::string name;
  std::vector<Rule> rules;

  bool is_end() const { return rules.empty(); }
  /// States this state can transition to (targets of GoToState actions).
  std::set<std::string> goto_targets() const;
};

/// Σ_G = (V, E, A): vertices are state names; each edge carries the set of
/// actions (rendered) from rules of the source state that transition to
/// the target (the paper's edge-labelled attributes A_{Σ_G}).
struct StateGraph {
  struct Edge {
    std::string from;
    std::string to;
    std::vector<std::string> action_labels;
  };
  std::vector<std::string> vertices;
  std::vector<Edge> edges;

  /// Graphviz DOT rendering (for documentation and monitors).
  std::string to_dot() const;
};

/// A complete attack description: storage declarations Δ, states Σ, and
/// the designated start state σ_start.
struct Attack {
  std::string name;
  /// Deque declarations with initial contents.
  std::vector<std::pair<std::string, std::vector<Value>>> deques;
  std::vector<AttackState> states;
  std::string start_state;

  const AttackState* find_state(const std::string& state_name) const;

  /// σ_absorbing: states with no outgoing transitions to other states.
  std::vector<std::string> absorbing_states() const;
  /// σ_end ⊆ σ_absorbing: absorbing states with no rules.
  std::vector<std::string> end_states() const;

  StateGraph graph() const;

  /// Structural validation (independent of any capability model):
  /// |Σ| ≥ 1, the start state exists, every GoToState target exists, every
  /// deque reference is declared, every rule has a conditional. Throws
  /// std::invalid_argument describing the first violation.
  void validate_structure() const;
};

/// Collects the deque names an expression references.
void collect_deque_refs(const Expr& expr, std::set<std::string>& out);
/// Collects the deque names an action references (including via embedded
/// expressions).
void collect_deque_refs(const ActionSpec& action, std::set<std::string>& out);

}  // namespace attain::lang
