// The attack language's storage Δ (§V-C): named double-ended queues with
// the six operations of §V-D (PREPEND, APPEND, EXAMINEFRONT, EXAMINEEND,
// SHIFT, POP). Deques hold Values, so the same mechanism serves counters,
// general variables, and message capture for replay/reordering (§VIII-A).
//
// Deques are addressable two ways: by name (the DSL surface, throws
// StorageError) and by slot — the declaration-order index, interned once by
// the rule compiler so the hot path never hashes a name or throws. The
// peek_*/size_at slot accessors report emptiness via nullptr instead of an
// exception; slots stay stable for the life of the store (declare only
// appends, reset only re-assigns contents).
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "attain/lang/value.hpp"
#include "common/arena.hpp"

namespace attain::lang {

class StorageError : public std::runtime_error {
 public:
  explicit StorageError(const std::string& what) : std::runtime_error(what) {}
};

class DequeStore {
 public:
  /// Declares δ with optional initial contents. Redeclaration throws.
  void declare(const std::string& name, std::vector<Value> initial = {});
  bool exists(const std::string& name) const { return index_.contains(name); }

  // §V-D operations; all throw StorageError on an undeclared deque, and
  // the examine/remove operations throw on an empty deque (an attack-
  // description bug the executor surfaces via the monitor).
  void prepend(const std::string& name, Value value);
  void append(const std::string& name, Value value);
  Value examine_front(const std::string& name) const;
  Value examine_end(const std::string& name) const;
  Value shift(const std::string& name);
  Value pop(const std::string& name);

  std::size_t size(const std::string& name) const;
  bool empty(const std::string& name) const { return size(name) == 0; }

  /// Resets every deque to its declared initial contents (used when an
  /// attack is re-armed).
  void reset();

  /// Declared names in sorted order.
  std::vector<std::string> names() const;

  // Slot surface — used by compiled rule programs.

  /// The declaration-order slot of a name, if declared. Slot i is the
  /// i-th declare() call.
  std::optional<std::size_t> slot_of(const std::string& name) const;
  std::size_t slot_count() const { return deques_.size(); }

  /// Front/back element of slot i, or nullptr when empty. The pointer is
  /// valid until the deque is next mutated.
  const Value* peek_front(std::size_t slot) const {
    const auto& d = deques_[slot];
    return d.empty() ? nullptr : &d.front();
  }
  const Value* peek_end(std::size_t slot) const {
    const auto& d = deques_[slot];
    return d.empty() ? nullptr : &d.back();
  }
  std::size_t size_at(std::size_t slot) const { return deques_[slot].size(); }

 private:
  const mem::deque<Value>& require(const std::string& name) const;
  mem::deque<Value>& require(const std::string& name);

  // Parallel, declaration-ordered; index_ maps name -> slot.
  std::vector<mem::deque<Value>> deques_;
  std::vector<std::vector<Value>> initial_;
  std::map<std::string, std::size_t> index_;
};

}  // namespace attain::lang
