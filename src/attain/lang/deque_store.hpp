// The attack language's storage Δ (§V-C): named double-ended queues with
// the six operations of §V-D (PREPEND, APPEND, EXAMINEFRONT, EXAMINEEND,
// SHIFT, POP). Deques hold Values, so the same mechanism serves counters,
// general variables, and message capture for replay/reordering (§VIII-A).
#pragma once

#include <deque>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "attain/lang/value.hpp"

namespace attain::lang {

class StorageError : public std::runtime_error {
 public:
  explicit StorageError(const std::string& what) : std::runtime_error(what) {}
};

class DequeStore {
 public:
  /// Declares δ with optional initial contents. Redeclaration throws.
  void declare(const std::string& name, std::vector<Value> initial = {});
  bool exists(const std::string& name) const { return deques_.contains(name); }

  // §V-D operations; all throw StorageError on an undeclared deque, and
  // the examine/remove operations throw on an empty deque (an attack-
  // description bug the executor surfaces via the monitor).
  void prepend(const std::string& name, Value value);
  void append(const std::string& name, Value value);
  Value examine_front(const std::string& name) const;
  Value examine_end(const std::string& name) const;
  Value shift(const std::string& name);
  Value pop(const std::string& name);

  std::size_t size(const std::string& name) const;
  bool empty(const std::string& name) const { return size(name) == 0; }

  /// Resets every deque to its declared initial contents (used when an
  /// attack is re-armed).
  void reset();

  std::vector<std::string> names() const;

 private:
  const std::deque<Value>& require(const std::string& name) const;
  std::deque<Value>& require(const std::string& name);

  std::map<std::string, std::deque<Value>> deques_;
  std::map<std::string, std::vector<Value>> initial_;
};

}  // namespace attain::lang
