#include "attain/lang/deque_store.hpp"

namespace attain::lang {

void DequeStore::declare(const std::string& name, std::vector<Value> initial) {
  if (index_.contains(name)) throw StorageError("deque redeclared: " + name);
  index_.emplace(name, deques_.size());
  deques_.emplace_back(initial.begin(), initial.end());
  initial_.push_back(std::move(initial));
}

const mem::deque<Value>& DequeStore::require(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) throw StorageError("undeclared deque: " + name);
  return deques_[it->second];
}

mem::deque<Value>& DequeStore::require(const std::string& name) {
  const auto it = index_.find(name);
  if (it == index_.end()) throw StorageError("undeclared deque: " + name);
  return deques_[it->second];
}

void DequeStore::prepend(const std::string& name, Value value) {
  require(name).push_front(std::move(value));
}

void DequeStore::append(const std::string& name, Value value) {
  require(name).push_back(std::move(value));
}

Value DequeStore::examine_front(const std::string& name) const {
  const auto& d = require(name);
  if (d.empty()) throw StorageError("examine_front on empty deque: " + name);
  return d.front();
}

Value DequeStore::examine_end(const std::string& name) const {
  const auto& d = require(name);
  if (d.empty()) throw StorageError("examine_end on empty deque: " + name);
  return d.back();
}

Value DequeStore::shift(const std::string& name) {
  auto& d = require(name);
  if (d.empty()) throw StorageError("shift on empty deque: " + name);
  Value v = std::move(d.front());
  d.pop_front();
  return v;
}

Value DequeStore::pop(const std::string& name) {
  auto& d = require(name);
  if (d.empty()) throw StorageError("pop on empty deque: " + name);
  Value v = std::move(d.back());
  d.pop_back();
  return v;
}

std::size_t DequeStore::size(const std::string& name) const { return require(name).size(); }

void DequeStore::reset() {
  for (std::size_t i = 0; i < deques_.size(); ++i) {
    deques_[i].assign(initial_[i].begin(), initial_[i].end());
  }
}

std::vector<std::string> DequeStore::names() const {
  std::vector<std::string> out;
  out.reserve(index_.size());
  for (const auto& [name, _] : index_) out.push_back(name);
  return out;
}

std::optional<std::size_t> DequeStore::slot_of(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace attain::lang
