#include "attain/lang/value.hpp"

namespace attain::lang {

std::string to_string(const Value& value) {
  struct Visitor {
    std::string operator()(std::int64_t v) const { return std::to_string(v); }
    std::string operator()(const std::string& v) const { return "\"" + v + "\""; }
    std::string operator()(const StoredMessage& v) const {
      if (!v) return "<null message>";
      return "<message id=" + std::to_string(v->id) + ">";
    }
  };
  return std::visit(Visitor{}, value);
}

bool value_equals(const Value& a, const Value& b) {
  if (a.index() != b.index()) return false;
  if (const auto* ai = std::get_if<std::int64_t>(&a)) return *ai == std::get<std::int64_t>(b);
  if (const auto* as = std::get_if<std::string>(&a)) return *as == std::get<std::string>(b);
  return std::get<StoredMessage>(a) == std::get<StoredMessage>(b);
}

}  // namespace attain::lang
