// Minimal field-order-stable JSON emitter. The sweep engine's determinism
// guarantee ("the same grid produces byte-identical JSON at any thread
// count") depends on emission being a pure function of the values written
// and the order they are written in — so this writer keeps insertion order
// (no map-based reordering), formats doubles with a fixed round-trippable
// format, and never emits locale-dependent text.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace attain {

/// Streaming writer for one JSON document. Objects and arrays are opened
/// and closed explicitly; keys appear exactly in call order.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Starts a keyed member inside an object; follow with a value call or
  /// begin_object()/begin_array().
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(double v);
  JsonWriter& null();

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }
  /// Optional field: emits JSON null when absent (the paper's "*" cells).
  JsonWriter& field_or_null(const std::string& name, const std::optional<double>& v);

  const std::string& str() const { return out_; }

  /// Escapes a string per RFC 8259 (without surrounding quotes).
  static std::string escape(const std::string& raw);
  /// Fixed, locale-independent double format ("%.9g", with "-0" folded to
  /// "0" so algebraically equal results emit identical bytes).
  static std::string format_double(double v);

 private:
  void comma_if_needed();

  std::string out_;
  // One entry per open container: true while the next emission needs a
  // leading comma.
  std::vector<bool> need_comma_;
  // True immediately after key(): the next emission is that key's value and
  // takes no separator.
  bool after_key_{false};
};

}  // namespace attain
