// Fundamental identifier and time types shared across the ATTAIN codebase.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace attain {

/// Virtual simulation time in integer microseconds. All timing in the
/// simulator is expressed in SimTime so experiments are deterministic and
/// replayable (no wall-clock leakage).
using SimTime = std::int64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/// Converts a floating-point second count to SimTime, rounding to the
/// nearest microsecond.
constexpr SimTime seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond) + 0.5);
}

constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Kind of a system-model entity (paper §IV-A).
enum class EntityKind : std::uint8_t { Controller, Switch, Host };

/// Identifier for a controller, switch, or host. Entities are compared by
/// (kind, index); the human-readable name ("c1", "s2", "h3") is kept by the
/// system model.
struct EntityId {
  EntityKind kind{EntityKind::Host};
  std::uint32_t index{0};

  friend auto operator<=>(const EntityId&, const EntityId&) = default;
};

/// A control-plane connection n = (controller, switch) in N_C (paper §IV-A5).
struct ConnectionId {
  EntityId controller;
  EntityId sw;

  friend auto operator<=>(const ConnectionId&, const ConnectionId&) = default;
};

std::string to_string(EntityKind kind);

}  // namespace attain
