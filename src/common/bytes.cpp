#include "common/bytes.hpp"

#include <algorithm>

namespace attain {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::pad(std::size_t n) { buf_.insert(buf_.end(), n, 0); }

void ByteWriter::fixed_string(const std::string& s, std::size_t width) {
  const std::size_t copy = std::min(s.size(), width);
  buf_.insert(buf_.end(), s.begin(), s.begin() + static_cast<std::ptrdiff_t>(copy));
  pad(width - copy);
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > buf_.size()) {
    throw std::out_of_range("ByteWriter::patch_u16 past end");
  }
  buf_[offset] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<std::uint8_t>(v);
}

void ByteReader::require(std::size_t n) const {
  if (pos_ + n > data_.size()) {
    throw DecodeError("buffer underrun: need " + std::to_string(n) + " bytes at offset " +
                      std::to_string(pos_) + ", have " + std::to_string(data_.size() - pos_));
  }
}

std::uint8_t ByteReader::u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  require(2);
  const std::uint16_t v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t hi = u32();
  return (hi << 32) | u32();
}

Bytes ByteReader::raw(std::size_t n) {
  const std::span<const std::uint8_t> v = view(n);
  return Bytes(v.begin(), v.end());
}

std::span<const std::uint8_t> ByteReader::view(std::size_t n) {
  require(n);
  const std::span<const std::uint8_t> v = data_.subspan(pos_, n);
  pos_ += n;
  return v;
}

void ByteReader::skip(std::size_t n) {
  require(n);
  pos_ += n;
}

std::string ByteReader::fixed_string(std::size_t width) {
  require(width);
  std::string s;
  for (std::size_t i = 0; i < width; ++i) {
    const char c = static_cast<char>(data_[pos_ + i]);
    if (c == '\0') break;
    s.push_back(c);
  }
  pos_ += width;
  return s;
}

std::uint64_t fnv1a64(std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (const std::uint8_t b : data) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

}  // namespace attain
