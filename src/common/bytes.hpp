// Big-endian byte buffer reader/writer used by every wire codec in the
// repository (OpenFlow 1.0 and the data-plane packet formats are both
// network byte order).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/arena.hpp"

namespace attain {

/// Wire-byte buffer. Slab-backed: capacity recycles through the calling
/// thread's size-class freelists (mem::thread_slab()), so the per-frame
/// encode/decode buffers of a warmed-up simulate loop never touch the
/// general heap.
using Bytes = std::vector<std::uint8_t, mem::SlabAllocator<std::uint8_t>>;

/// Error thrown when a decoder runs past the end of its buffer or meets a
/// malformed structure. Codecs never read out of bounds.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends big-endian scalar values to a growable byte buffer.
class ByteWriter {
 public:
  /// Pre-sizes the buffer (capacity hint, e.g. from a message header's
  /// length field) so body encoding appends without regrowth.
  void reserve(std::size_t n) { buf_.reserve(n); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void raw(std::span<const std::uint8_t> data);
  /// Appends `n` zero bytes (struct padding).
  void pad(std::size_t n);
  /// Writes a fixed-width, zero-padded ASCII field (e.g. port names).
  void fixed_string(const std::string& s, std::size_t width);

  /// Overwrites a previously written big-endian u16 at `offset` — used to
  /// patch message lengths after the body is known.
  void patch_u16(std::size_t offset, std::uint16_t v);

  std::size_t size() const { return buf_.size(); }
  const Bytes& bytes() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Reads big-endian scalar values from a byte span with bounds checking.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  /// Copies `n` bytes out of the buffer.
  Bytes raw(std::size_t n);
  /// Zero-copy read: returns a bounds-checked view of the next `n` bytes
  /// and advances past them. The span aliases the reader's source buffer,
  /// so it is valid only while that buffer outlives the caller's use —
  /// decode sites that store the bytes must copy (use raw()).
  std::span<const std::uint8_t> view(std::size_t n);
  /// Skips `n` padding bytes.
  void skip(std::size_t n);
  /// Reads a fixed-width zero-padded ASCII field, trimming trailing NULs.
  std::string fixed_string(std::size_t width);

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_{0};
};

/// Renders bytes as lowercase hex, two digits per byte ("dead beef" style,
/// no separators) — used by logs and fuzz-test diagnostics.
std::string to_hex(std::span<const std::uint8_t> data);

/// FNV-1a over a byte span: the stable 64-bit content digest used by the
/// campaign journal records, the distributed result frames, and
/// scenario::result_digest. Not cryptographic — it detects truncation and
/// corruption, not adversaries.
std::uint64_t fnv1a64(std::span<const std::uint8_t> data);
inline std::uint64_t fnv1a64(const std::string& s) {
  return fnv1a64({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

}  // namespace attain
