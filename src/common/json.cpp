#include "common/json.hpp"

#include <cmath>
#include <cstdio>

namespace attain {

void JsonWriter::comma_if_needed() {
  if (after_key_) {
    // The value directly follows its "key": — no separator.
    after_key_ = false;
    return;
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_ += ',';
    need_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  need_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  need_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(bool v) {
  comma_if_needed();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_if_needed();
  out_ += format_double(v);
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_if_needed();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::field_or_null(const std::string& name, const std::optional<double>& v) {
  key(name);
  if (v.has_value()) return value(*v);
  return null();
}

std::string JsonWriter::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonWriter::format_double(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == 0.0) return "0";  // folds -0.0
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace attain
