// Minimal structured logging with per-component severities. The runtime
// injector and monitors log through this so tests can capture and assert on
// emitted events.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "common/types.hpp"

namespace attain {

enum class LogLevel : std::uint8_t { Trace, Debug, Info, Warn, Error, Off };

std::string to_string(LogLevel level);

/// A single log record. `sim_time` is the virtual time at emission (or -1
/// when no simulation clock is active).
struct LogRecord {
  LogLevel level{LogLevel::Info};
  SimTime sim_time{-1};
  std::string component;
  std::string message;
};

/// Process-wide log sink. Defaults to stderr above Warn; tests and the
/// experiment harness install their own sinks. The virtual clock is
/// thread-local: each sweep worker runs its own Scheduler, and records
/// emitted on that thread carry that scheduler's time. emit() serializes
/// sink invocations, so concurrent simulations never interleave a record;
/// set_sink()/set_level() are still main-thread-before-workers operations.
class Logger {
 public:
  using Sink = std::function<void(const LogRecord&)>;

  static Logger& instance();

  void set_sink(Sink sink);
  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Virtual clock hook for the calling thread; the simulator installs
  /// this so records carry simulation timestamps.
  void set_clock(std::function<SimTime()> clock);

  void emit(LogLevel level, std::string component, std::string message);

 private:
  Logger();

  Sink sink_;
  LogLevel level_{LogLevel::Warn};
};

/// Convenience: stream-style logging.
///   ATTAIN_LOG(Info, "injector") << "dropped " << n << " messages";
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() { Logger::instance().emit(level_, std::move(component_), stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

#define ATTAIN_LOG(severity, component)                                       \
  if (::attain::LogLevel::severity < ::attain::Logger::instance().level()) {} \
  else ::attain::LogStream(::attain::LogLevel::severity, (component))

}  // namespace attain
