// Counting replacement for the global allocation functions. See
// alloc_hook.hpp for the opt-in contract: this TU is linked only into
// binaries that measure allocations (the test suite, bench_memory), never
// into attain_lib itself.
//
// The replacements forward to malloc/free, so they compose with
// sanitizers' malloc interposition (ASan still sees every byte) and with
// the slab pools (which sit above operator new, not below it).
#include "common/alloc_hook.hpp"

#include <execinfo.h>
#include <unistd.h>

#include <cstdlib>
#include <new>

namespace {

void* counted_alloc(std::size_t size) {
  if (attain::memhook::g_backtrace_on_alloc.load(std::memory_order_relaxed)) {
    // Drop the flag while printing: backtrace() may allocate internally on
    // its first call (lazy libgcc load), and that must not recurse here.
    attain::memhook::g_backtrace_on_alloc.store(false, std::memory_order_relaxed);
    void* frames[32];
    const int n = backtrace(frames, 32);
    backtrace_symbols_fd(frames, n, STDERR_FILENO);
    [[maybe_unused]] const auto ignored = write(STDERR_FILENO, "----\n", 5);
    attain::memhook::g_backtrace_on_alloc.store(true, std::memory_order_relaxed);
  }
  attain::memhook::g_news.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  return std::malloc(size);
}

void* counted_alloc(std::size_t size, std::align_val_t align) {
  attain::memhook::g_news.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  const std::size_t a = static_cast<std::size_t>(align);
  void* p = nullptr;
  // posix_memalign requires a multiple of sizeof(void*).
  if (posix_memalign(&p, a < sizeof(void*) ? sizeof(void*) : a, size) != 0) return nullptr;
  return p;
}

void counted_free(void* p) {
  if (p == nullptr) return;
  attain::memhook::g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

const bool g_mark_installed = [] {
  attain::memhook::g_installed.store(true, std::memory_order_relaxed);
  return true;
}();

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = counted_alloc(size, align)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = counted_alloc(size, align)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return counted_alloc(size, align);
}

void* operator new[](std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return counted_alloc(size, align);
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_free(p); }
