// Deterministic pseudo-random number generation. Everything stochastic in
// the framework (fuzzing, jitter) draws from a seeded Rng so experiments are
// exactly replayable.
#pragma once

#include <cstdint>

namespace attain {

/// SplitMix64 generator: tiny, fast, and good enough for fuzzing and
/// workload jitter. Not cryptographic — this is a testing framework.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace attain
