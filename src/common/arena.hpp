// Arena/slab memory architecture for the end-to-end hot path.
//
// Three layers, bottom up:
//
//  - Arena: a chained-block bump allocator (the reserve/commit idiom,
//    portable): allocation advances a cursor through geometrically growing
//    blocks; nothing is freed individually. TempScope marks a position and
//    unwinds to it; reset() rewinds the whole arena while *retaining* its
//    blocks, so the next run reuses the committed memory with zero calls
//    into the general heap. Per-arena byte/high-water stats make ownership
//    visible to benches and tests.
//
//  - SlabPool: power-of-two size-class freelists carved out of an Arena.
//    allocate/deallocate recycle blocks of a class in LIFO order; once a
//    workload's working set has been seen, every subsequent allocation is
//    a freelist pop — zero malloc/free in steady state. Requests beyond
//    the largest class fall through to ::operator new (counted).
//
//  - SlabAllocator<T>: a stateless std-allocator over the calling thread's
//    SlabPool (thread_slab()). The repo's hot containers — Bytes,
//    ofp::ActionList, flow-table indexes, scheduler queues — are typedef'd
//    onto it, which is what drives the simulate loop's steady-state
//    allocation count to zero (tests/test_memory_guard.cpp pins this).
//
// Thread slabs are registered in a process-global registry and deliberately
// never destroyed ("leak by design"): a container allocated on one thread
// may be freed on another (the sweep engine ships results across threads),
// and the freeing thread's freelist may hand that block out again later —
// so backing memory must outlive every thread. The registry keeps the
// pools reachable, which also keeps LeakSanitizer quiet.
//
// Lifetime rules per layer are documented in docs/architecture.md
// ("Memory architecture").
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <new>
#include <unordered_map>
#include <vector>

namespace attain::mem {

/// Chained-block bump arena. Not thread-safe; one arena belongs to one
/// owner (a run, a connection, a monitor).
class Arena {
 public:
  static constexpr std::size_t kDefaultBlockSize = 64 * 1024;
  static constexpr std::size_t kMaxBlockSize = 1024 * 1024;

  struct Stats {
    std::size_t bytes_in_use{0};    // currently committed to live allocations
    std::size_t bytes_reserved{0};  // sum of block payload capacities
    std::size_t high_water{0};      // max bytes_in_use ever observed
    std::size_t block_count{0};
    std::uint64_t allocations{0};   // allocate() calls over the arena's lifetime
    std::uint64_t resets{0};
  };

  explicit Arena(std::size_t first_block_size = kDefaultBlockSize);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `size` bytes aligned to `align` (a power of two, at
  /// most alignof(std::max_align_t)). Never returns nullptr; grows the
  /// chain when the current block is exhausted. Oversized requests get a
  /// dedicated block.
  void* allocate(std::size_t size, std::size_t align = alignof(std::max_align_t));

  /// Ensures at least `size` contiguous bytes can be allocated without a
  /// new block (the "reserve" half of reserve/commit).
  void reserve(std::size_t size);

  /// Rewinds the whole arena to empty. Every block is retained for reuse —
  /// the wholesale teardown at run boundaries costs no heap traffic.
  void reset();

  /// reset(), then returns every block but the first to the heap (for
  /// arenas whose high-water was a one-off spike).
  void reset_and_trim();

  const Stats& stats() const { return stats_; }

  /// A position in the arena; TempScope unwinds to one.
  struct Mark {
    void* block{nullptr};
    std::size_t used{0};
    std::size_t bytes_in_use{0};
  };

  Mark mark() const;
  /// Unwinds to `m`: everything allocated after mark() is discarded.
  /// Blocks stay on the chain. Marks must unwind in LIFO order.
  void rewind(const Mark& m);

 private:
  struct Block;

  Block* new_block(std::size_t payload);

  Block* head_{nullptr};     // first block of the chain
  Block* current_{nullptr};  // block the cursor is in
  std::size_t first_block_size_;
  Stats stats_;
};

/// RAII temporary-memory scope: everything allocated from `arena` while
/// the scope is alive is released when it dies. Scopes nest LIFO.
class TempScope {
 public:
  explicit TempScope(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
  ~TempScope() { arena_.rewind(mark_); }

  TempScope(const TempScope&) = delete;
  TempScope& operator=(const TempScope&) = delete;

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

/// Size-class slab pool over an Arena. allocate() pops the class freelist
/// or bumps the arena; deallocate() pushes back. Not thread-safe.
class SlabPool {
 public:
  static constexpr std::size_t kMinClass = 16;  // one freelist pointer + slack
  /// Large enough that big steady-state containers (the scheduler's slot
  /// pool, its event queue, flow-table slot vectors) recycle their doubling
  /// reallocations through freelists instead of the general heap. Beyond:
  /// ::operator new (counted).
  static constexpr std::size_t kMaxClass = 4 * 1024 * 1024;
  static constexpr std::size_t kClassCount = 19;  // 16,32,...,4 MiB

  struct Stats {
    std::uint64_t allocs{0};          // all allocate() calls
    std::uint64_t freelist_hits{0};   // served by recycling
    std::uint64_t arena_refills{0};   // served by bumping the arena
    std::uint64_t oversize_allocs{0}; // fell through to ::operator new
    std::uint64_t oversize_hits{0};   // oversize served by the exact-size freelist
    std::size_t bytes_live{0};        // currently handed out (rounded to class)
    std::size_t high_water{0};
  };

  explicit SlabPool(std::size_t first_block_size = Arena::kDefaultBlockSize)
      : arena_(first_block_size) {}

  void* allocate(std::size_t size);
  void deallocate(void* p, std::size_t size);

  const Stats& stats() const { return stats_; }
  const Arena::Stats& arena_stats() const { return arena_.stats(); }

  /// Rounded allocation size for `size` (what bytes_live accounts).
  static std::size_t class_size(std::size_t size);

 private:
  static int class_index(std::size_t size);

  struct FreeNode {
    FreeNode* next;
  };
  /// Oversize (> kMaxClass) recycling: a header-prefixed exact-size
  /// freelist. Oversize requests are rare and, in deterministic runs,
  /// repeat the same sizes (vector-doubling capacities), so a short
  /// scanned list recycles them the way the classes recycle small blocks.
  struct BigNode {
    BigNode* next;
    std::size_t size;
  };

  void* allocate_oversize(std::size_t size);
  void deallocate_oversize(void* p, std::size_t size);

  Arena arena_;
  FreeNode* free_[kClassCount]{};
  BigNode* big_free_{nullptr};
  Stats stats_;
};

/// The calling thread's slab pool. Created on first use, registered in a
/// process-global registry, and never destroyed (see file comment).
SlabPool& thread_slab();

/// Aggregate view over every thread slab ever created (registry-wide sums;
/// other threads' counters are read racily — use for reporting only).
SlabPool::Stats all_slabs_stats();

/// Number of thread slabs ever created.
std::size_t thread_slab_count();

/// Marks a run (sweep-cell) boundary on this thread: bumps the boundary
/// counter benches key per-cell deltas from. Run-scoped arenas (monitor
/// event logs, per-connection frame buffers) are torn down wholesale by
/// their owners' destructors; the thread slab persists by design so the
/// next cell reuses its freelists.
void run_boundary();

/// Boundaries recorded on this thread (run_boundary() calls).
std::uint64_t run_boundaries();

/// Std-allocator over thread_slab(). Stateless: all instances are equal,
/// memory may be freed on a different thread than it was allocated on.
template <typename T>
struct SlabAllocator {
  using value_type = T;

  SlabAllocator() noexcept = default;
  template <typename U>
  SlabAllocator(const SlabAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(thread_slab().allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    thread_slab().deallocate(p, n * sizeof(T));
  }

  friend bool operator==(const SlabAllocator&, const SlabAllocator&) { return true; }
  friend bool operator!=(const SlabAllocator&, const SlabAllocator&) { return false; }
};

/// Std-allocator over one specific Arena — for run-scoped containers whose
/// elements all die together (monitor event logs). deallocate() is a no-op;
/// the owner resets or destroys the arena wholesale.
template <typename T>
struct ArenaAllocator {
  using value_type = T;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  Arena* arena{nullptr};

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena& a) noexcept : arena(&a) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept : arena(other.arena) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena == b.arena;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena != b.arena;
  }
};

// Slab-backed aliases for the simulator's hot containers.
template <typename T>
using vector = std::vector<T, SlabAllocator<T>>;
template <typename T>
using deque = std::deque<T, SlabAllocator<T>>;
template <typename K, typename V, typename C = std::less<K>>
using map = std::map<K, V, C, SlabAllocator<std::pair<const K, V>>>;
template <typename K, typename V, typename H = std::hash<K>, typename E = std::equal_to<K>>
using unordered_map =
    std::unordered_map<K, V, H, E, SlabAllocator<std::pair<const K, V>>>;

}  // namespace attain::mem
