#include "common/rng.hpp"

namespace attain {

std::uint64_t Rng::next_u64() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias; bound is tiny relative to 2^64
  // in practice so the loop almost never iterates.
  const std::uint64_t limit = bound * ((~0ULL) / bound);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace attain
