#include "common/log.hpp"

#include <cstdio>
#include <mutex>

namespace attain {

namespace {

// Per-thread virtual clock: each sweep worker thread owns one Scheduler at
// a time, and that scheduler's constructor installs the clock for exactly
// that thread.
thread_local std::function<SimTime()> t_clock;

std::mutex& emit_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

std::string to_string(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

std::string to_string(EntityKind kind) {
  switch (kind) {
    case EntityKind::Controller: return "controller";
    case EntityKind::Switch: return "switch";
    case EntityKind::Host: return "host";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](const LogRecord& rec) {
    std::fprintf(stderr, "[%s] t=%.6fs %s: %s\n", to_string(rec.level).c_str(),
                 rec.sim_time >= 0 ? to_seconds(rec.sim_time) : -1.0, rec.component.c_str(),
                 rec.message.c_str());
  };
}

void Logger::set_sink(Sink sink) { sink_ = std::move(sink); }

void Logger::set_clock(std::function<SimTime()> clock) { t_clock = std::move(clock); }

void Logger::emit(LogLevel level, std::string component, std::string message) {
  if (level < level_) return;
  LogRecord rec;
  rec.level = level;
  rec.sim_time = t_clock ? t_clock() : -1;
  rec.component = std::move(component);
  rec.message = std::move(message);
  const std::lock_guard<std::mutex> lock(emit_mutex());
  if (sink_) sink_(rec);
}

}  // namespace attain
