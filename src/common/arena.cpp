#include "common/arena.hpp"

#include <algorithm>
#include <cstdlib>
#include <mutex>

namespace attain::mem {

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

struct Arena::Block {
  Block* next{nullptr};
  std::size_t capacity{0};
  std::size_t used{0};
  // Payload follows the header, max_align_t-aligned.
  unsigned char* data() {
    return reinterpret_cast<unsigned char*>(this) + header_size();
  }
  static constexpr std::size_t header_size() {
    return (sizeof(Block) + alignof(std::max_align_t) - 1) &
           ~(alignof(std::max_align_t) - 1);
  }
};

Arena::Arena(std::size_t first_block_size)
    : first_block_size_(std::max<std::size_t>(first_block_size, 256)) {}

Arena::~Arena() {
  Block* b = head_;
  while (b != nullptr) {
    Block* next = b->next;
    ::operator delete(static_cast<void*>(b));
    b = next;
  }
}

Arena::Block* Arena::new_block(std::size_t payload) {
  void* raw = ::operator new(Block::header_size() + payload);
  Block* b = new (raw) Block;
  b->capacity = payload;
  stats_.bytes_reserved += payload;
  ++stats_.block_count;
  return b;
}

void* Arena::allocate(std::size_t size, std::size_t align) {
  ++stats_.allocations;
  if (size == 0) size = 1;
  for (Block* b = current_; b != nullptr; b = b->next) {
    const std::size_t aligned = (b->used + align - 1) & ~(align - 1);
    if (aligned + size <= b->capacity) {
      b->used = aligned + size;
      current_ = b;
      stats_.bytes_in_use += size;
      stats_.high_water = std::max(stats_.high_water, stats_.bytes_in_use);
      return b->data() + aligned;
    }
    // Fall through to the next retained block (left over from a reset).
  }
  // Chain a fresh block: geometric growth, capped, and big enough for
  // oversized requests in one piece.
  std::size_t payload = first_block_size_;
  if (current_ != nullptr) {
    payload = std::min(kMaxBlockSize, current_->capacity * 2);
  }
  payload = std::max(payload, size + align);
  Block* b = new_block(payload);
  if (head_ == nullptr) {
    head_ = b;
  } else {
    // Append at the end of the chain so retained blocks keep their order.
    Block* tail = current_ != nullptr ? current_ : head_;
    while (tail->next != nullptr) tail = tail->next;
    tail->next = b;
  }
  current_ = b;
  const std::size_t aligned = (b->used + align - 1) & ~(align - 1);
  b->used = aligned + size;
  stats_.bytes_in_use += size;
  stats_.high_water = std::max(stats_.high_water, stats_.bytes_in_use);
  return b->data() + aligned;
}

void Arena::reserve(std::size_t size) {
  for (Block* b = current_; b != nullptr; b = b->next) {
    if (b->used + size <= b->capacity) return;
  }
  Block* b = new_block(std::max(first_block_size_, size));
  if (head_ == nullptr) {
    head_ = b;
    current_ = b;
  } else {
    Block* tail = head_;
    while (tail->next != nullptr) tail = tail->next;
    tail->next = b;
  }
}

void Arena::reset() {
  for (Block* b = head_; b != nullptr; b = b->next) b->used = 0;
  current_ = head_;
  stats_.bytes_in_use = 0;
  ++stats_.resets;
}

void Arena::reset_and_trim() {
  reset();
  if (head_ == nullptr) return;
  Block* b = head_->next;
  head_->next = nullptr;
  current_ = head_;
  while (b != nullptr) {
    Block* next = b->next;
    stats_.bytes_reserved -= b->capacity;
    --stats_.block_count;
    ::operator delete(static_cast<void*>(b));
    b = next;
  }
}

Arena::Mark Arena::mark() const {
  Mark m;
  m.block = current_;
  m.used = current_ != nullptr ? current_->used : 0;
  m.bytes_in_use = stats_.bytes_in_use;
  return m;
}

void Arena::rewind(const Mark& m) {
  Block* target = static_cast<Block*>(m.block);
  if (target == nullptr) {
    // Mark taken before the first allocation: empty everything.
    for (Block* b = head_; b != nullptr; b = b->next) b->used = 0;
    current_ = head_;
  } else {
    target->used = m.used;
    for (Block* b = target->next; b != nullptr; b = b->next) b->used = 0;
    current_ = target;
  }
  stats_.bytes_in_use = m.bytes_in_use;
}

// ---------------------------------------------------------------------------
// SlabPool
// ---------------------------------------------------------------------------

namespace {
// Oversize header, sized to preserve max_align_t alignment of the payload.
constexpr std::size_t big_header_size(std::size_t node_size) {
  return (node_size + alignof(std::max_align_t) - 1) & ~(alignof(std::max_align_t) - 1);
}
}  // namespace

int SlabPool::class_index(std::size_t size) {
  if (size > kMaxClass) return -1;
  std::size_t c = kMinClass;
  int index = 0;
  while (c < size) {
    c <<= 1;
    ++index;
  }
  return index;
}

std::size_t SlabPool::class_size(std::size_t size) {
  const int index = class_index(size);
  if (index < 0) return size;
  return kMinClass << index;
}

void* SlabPool::allocate_oversize(std::size_t size) {
  stats_.bytes_live += size;
  stats_.high_water = std::max(stats_.high_water, stats_.bytes_live);
  for (BigNode** prev = &big_free_; *prev != nullptr; prev = &(*prev)->next) {
    BigNode* node = *prev;
    if (node->size == size) {
      *prev = node->next;
      ++stats_.oversize_hits;
      return reinterpret_cast<unsigned char*>(node) + big_header_size(sizeof(BigNode));
    }
  }
  ++stats_.oversize_allocs;
  void* raw = ::operator new(big_header_size(sizeof(BigNode)) + size);
  BigNode* node = new (raw) BigNode{nullptr, size};
  return reinterpret_cast<unsigned char*>(node) + big_header_size(sizeof(BigNode));
}

void SlabPool::deallocate_oversize(void* p, std::size_t size) {
  stats_.bytes_live -= size;
  BigNode* node =
      reinterpret_cast<BigNode*>(static_cast<unsigned char*>(p) - big_header_size(sizeof(BigNode)));
  node->next = big_free_;
  node->size = size;
  big_free_ = node;
}

void* SlabPool::allocate(std::size_t size) {
  ++stats_.allocs;
  const int index = class_index(size);
  if (index < 0) return allocate_oversize(size);
  const std::size_t rounded = kMinClass << index;
  stats_.bytes_live += rounded;
  stats_.high_water = std::max(stats_.high_water, stats_.bytes_live);
  if (FreeNode* node = free_[index]) {
    free_[index] = node->next;
    ++stats_.freelist_hits;
    return node;
  }
  ++stats_.arena_refills;
  return arena_.allocate(rounded);
}

void SlabPool::deallocate(void* p, std::size_t size) {
  if (p == nullptr) return;
  const int index = class_index(size);
  if (index < 0) {
    deallocate_oversize(p, size);
    return;
  }
  stats_.bytes_live -= kMinClass << index;
  FreeNode* node = static_cast<FreeNode*>(p);
  node->next = free_[index];
  free_[index] = node;
}

// ---------------------------------------------------------------------------
// Thread slabs
// ---------------------------------------------------------------------------

namespace {

// Keeps every thread slab reachable for the process lifetime: cross-thread
// frees may recycle another thread's backing memory, so pools must never
// die (and LeakSanitizer sees them as still reachable, not leaked).
struct SlabRegistry {
  std::mutex mu;
  std::vector<SlabPool*> pools;
};

SlabRegistry& registry() {
  static SlabRegistry* r = new SlabRegistry;  // leaked: outlives every thread
  return *r;
}

SlabPool* make_thread_slab() {
  SlabPool* pool = new SlabPool;
  SlabRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.pools.push_back(pool);
  return pool;
}

thread_local std::uint64_t t_run_boundaries = 0;

}  // namespace

SlabPool& thread_slab() {
  static thread_local SlabPool* pool = make_thread_slab();
  return *pool;
}

SlabPool::Stats all_slabs_stats() {
  SlabPool::Stats sum;
  SlabRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const SlabPool* pool : r.pools) {
    const SlabPool::Stats& s = pool->stats();
    sum.allocs += s.allocs;
    sum.freelist_hits += s.freelist_hits;
    sum.arena_refills += s.arena_refills;
    sum.oversize_allocs += s.oversize_allocs;
    sum.oversize_hits += s.oversize_hits;
    sum.bytes_live += s.bytes_live;
    sum.high_water += s.high_water;
  }
  return sum;
}

std::size_t thread_slab_count() {
  SlabRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.pools.size();
}

void run_boundary() { ++t_run_boundaries; }

std::uint64_t run_boundaries() { return t_run_boundaries; }

}  // namespace attain::mem
