// Global-allocation counting, for the zero-steady-state-allocation guard
// tests and the memory bench harness.
//
// The counters live here as inline atomics so any TU can read them; the
// actual operator new/delete replacement lives in alloc_hook.cpp, which is
// deliberately NOT part of attain_lib. A binary opts in by listing
// alloc_hook.cpp among its sources — the replacement then applies
// binary-wide (ODR: one global operator new per program). Binaries that do
// not opt in see counters frozen at zero and installed() == false, so
// guard code can skip itself instead of asserting on a dead counter.
#pragma once

#include <atomic>
#include <cstdint>

namespace attain::memhook {

// Relaxed ordering throughout: the counters are statistics, not
// synchronization. Reads race with other threads' allocations by design;
// guard tests quiesce their own thread's window instead.
inline std::atomic<std::uint64_t> g_news{0};
inline std::atomic<std::uint64_t> g_deletes{0};
inline std::atomic<bool> g_installed{false};
/// Debug aid: when set, every counted allocation prints its stack to
/// stderr (async-signal-safe backtrace_symbols_fd; no heap use). The
/// memory-guard tests enable it inside their measured window so a failure
/// names the allocation site instead of just a count.
inline std::atomic<bool> g_backtrace_on_alloc{false};

/// True when alloc_hook.cpp is linked into this binary.
inline bool installed() { return g_installed.load(std::memory_order_relaxed); }

/// Global operator-new calls since process start (0 if not installed).
inline std::uint64_t news() { return g_news.load(std::memory_order_relaxed); }

/// Global operator-delete calls since process start (0 if not installed).
inline std::uint64_t deletes() { return g_deletes.load(std::memory_order_relaxed); }

/// Snapshot for windowed measurement: allocations between two scopes.
struct Window {
  std::uint64_t news_at_open{0};

  static Window open() { return Window{news()}; }
  std::uint64_t allocations() const { return news() - news_at_open; }
};

}  // namespace attain::memhook
