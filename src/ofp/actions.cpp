#include "ofp/actions.hpp"

#include <sstream>

namespace attain::ofp {

ActionType action_type(const Action& action) {
  struct Visitor {
    ActionType operator()(const ActionOutput&) const { return ActionType::Output; }
    ActionType operator()(const ActionSetVlanVid&) const { return ActionType::SetVlanVid; }
    ActionType operator()(const ActionSetVlanPcp&) const { return ActionType::SetVlanPcp; }
    ActionType operator()(const ActionStripVlan&) const { return ActionType::StripVlan; }
    ActionType operator()(const ActionSetDlSrc&) const { return ActionType::SetDlSrc; }
    ActionType operator()(const ActionSetDlDst&) const { return ActionType::SetDlDst; }
    ActionType operator()(const ActionSetNwSrc&) const { return ActionType::SetNwSrc; }
    ActionType operator()(const ActionSetNwDst&) const { return ActionType::SetNwDst; }
    ActionType operator()(const ActionSetNwTos&) const { return ActionType::SetNwTos; }
    ActionType operator()(const ActionSetTpSrc&) const { return ActionType::SetTpSrc; }
    ActionType operator()(const ActionSetTpDst&) const { return ActionType::SetTpDst; }
    ActionType operator()(const ActionEnqueue&) const { return ActionType::Enqueue; }
  };
  return std::visit(Visitor{}, action);
}

std::size_t action_wire_size(const Action& action) {
  switch (action_type(action)) {
    case ActionType::SetDlSrc:
    case ActionType::SetDlDst:
    case ActionType::Enqueue:
      return 16;
    default:
      return 8;
  }
}

std::size_t actions_wire_size(const ActionList& actions) {
  std::size_t size = 0;
  for (const Action& a : actions) size += action_wire_size(a);
  return size;
}

void apply_rewrite(const Action& action, pkt::Packet& p) {
  struct Visitor {
    pkt::Packet& p;
    void operator()(const ActionOutput&) const {}
    void operator()(const ActionEnqueue&) const {}
    void operator()(const ActionSetVlanVid& a) const { p.eth.vlan_id = a.vlan_vid; }
    void operator()(const ActionSetVlanPcp& a) const { p.eth.vlan_pcp = a.vlan_pcp; }
    void operator()(const ActionStripVlan&) const {
      p.eth.vlan_id = kVlanNone;
      p.eth.vlan_pcp = 0;
    }
    void operator()(const ActionSetDlSrc& a) const { p.eth.src = a.mac; }
    void operator()(const ActionSetDlDst& a) const { p.eth.dst = a.mac; }
    void operator()(const ActionSetNwSrc& a) const {
      if (p.ipv4) p.ipv4->src = a.ip;
    }
    void operator()(const ActionSetNwDst& a) const {
      if (p.ipv4) p.ipv4->dst = a.ip;
    }
    void operator()(const ActionSetNwTos& a) const {
      if (p.ipv4) p.ipv4->tos = a.tos;
    }
    void operator()(const ActionSetTpSrc& a) const {
      if (p.tcp) p.tcp->src_port = a.port;
      if (p.udp) p.udp->src_port = a.port;
    }
    void operator()(const ActionSetTpDst& a) const {
      if (p.tcp) p.tcp->dst_port = a.port;
      if (p.udp) p.udp->dst_port = a.port;
    }
  };
  std::visit(Visitor{p}, action);
}

std::string to_string(const Action& action) {
  struct Visitor {
    std::string operator()(const ActionOutput& a) const {
      switch (static_cast<Port>(a.port)) {
        case Port::Flood: return "output(FLOOD)";
        case Port::All: return "output(ALL)";
        case Port::Controller: return "output(CONTROLLER)";
        case Port::InPort: return "output(IN_PORT)";
        case Port::Table: return "output(TABLE)";
        default: return "output(" + std::to_string(a.port) + ")";
      }
    }
    std::string operator()(const ActionSetVlanVid& a) const {
      return "set_vlan_vid(" + std::to_string(a.vlan_vid) + ")";
    }
    std::string operator()(const ActionSetVlanPcp& a) const {
      return "set_vlan_pcp(" + std::to_string(a.vlan_pcp) + ")";
    }
    std::string operator()(const ActionStripVlan&) const { return "strip_vlan"; }
    std::string operator()(const ActionSetDlSrc& a) const {
      return "set_dl_src(" + a.mac.to_string() + ")";
    }
    std::string operator()(const ActionSetDlDst& a) const {
      return "set_dl_dst(" + a.mac.to_string() + ")";
    }
    std::string operator()(const ActionSetNwSrc& a) const {
      return "set_nw_src(" + a.ip.to_string() + ")";
    }
    std::string operator()(const ActionSetNwDst& a) const {
      return "set_nw_dst(" + a.ip.to_string() + ")";
    }
    std::string operator()(const ActionSetNwTos& a) const {
      return "set_nw_tos(" + std::to_string(a.tos) + ")";
    }
    std::string operator()(const ActionSetTpSrc& a) const {
      return "set_tp_src(" + std::to_string(a.port) + ")";
    }
    std::string operator()(const ActionSetTpDst& a) const {
      return "set_tp_dst(" + std::to_string(a.port) + ")";
    }
    std::string operator()(const ActionEnqueue& a) const {
      return "enqueue(" + std::to_string(a.port) + ",q" + std::to_string(a.queue_id) + ")";
    }
  };
  return std::visit(Visitor{}, action);
}

std::string to_string(const ActionList& actions) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (i > 0) out << ",";
    out << to_string(actions[i]);
  }
  out << "]";
  return out.str();
}

void encode_action(ByteWriter& w, const Action& action) {
  w.u16(static_cast<std::uint16_t>(action_type(action)));
  w.u16(static_cast<std::uint16_t>(action_wire_size(action)));
  struct Visitor {
    ByteWriter& w;
    void operator()(const ActionOutput& a) const {
      w.u16(a.port);
      w.u16(a.max_len);
    }
    void operator()(const ActionSetVlanVid& a) const {
      w.u16(a.vlan_vid);
      w.pad(2);
    }
    void operator()(const ActionSetVlanPcp& a) const {
      w.u8(a.vlan_pcp);
      w.pad(3);
    }
    void operator()(const ActionStripVlan&) const { w.pad(4); }
    void operator()(const ActionSetDlSrc& a) const {
      w.raw(a.mac.octets);
      w.pad(6);
    }
    void operator()(const ActionSetDlDst& a) const {
      w.raw(a.mac.octets);
      w.pad(6);
    }
    void operator()(const ActionSetNwSrc& a) const { w.u32(a.ip.value); }
    void operator()(const ActionSetNwDst& a) const { w.u32(a.ip.value); }
    void operator()(const ActionSetNwTos& a) const {
      w.u8(a.tos);
      w.pad(3);
    }
    void operator()(const ActionSetTpSrc& a) const {
      w.u16(a.port);
      w.pad(2);
    }
    void operator()(const ActionSetTpDst& a) const {
      w.u16(a.port);
      w.pad(2);
    }
    void operator()(const ActionEnqueue& a) const {
      w.u16(a.port);
      w.pad(6);
      w.u32(a.queue_id);
    }
  };
  std::visit(Visitor{w}, action);
}

Action decode_action(ByteReader& r) {
  const auto type = static_cast<ActionType>(r.u16());
  const std::uint16_t len = r.u16();
  if (len < 8) throw DecodeError("action length < 8");
  switch (type) {
    case ActionType::Output: {
      ActionOutput a;
      a.port = r.u16();
      a.max_len = r.u16();
      return a;
    }
    case ActionType::SetVlanVid: {
      ActionSetVlanVid a;
      a.vlan_vid = r.u16();
      r.skip(2);
      return a;
    }
    case ActionType::SetVlanPcp: {
      ActionSetVlanPcp a;
      a.vlan_pcp = r.u8();
      r.skip(3);
      return a;
    }
    case ActionType::StripVlan:
      r.skip(4);
      return ActionStripVlan{};
    case ActionType::SetDlSrc: {
      ActionSetDlSrc a;
      const auto mac = r.view(6);
      std::copy(mac.begin(), mac.end(), a.mac.octets.begin());
      r.skip(6);
      return a;
    }
    case ActionType::SetDlDst: {
      ActionSetDlDst a;
      const auto mac = r.view(6);
      std::copy(mac.begin(), mac.end(), a.mac.octets.begin());
      r.skip(6);
      return a;
    }
    case ActionType::SetNwSrc:
      return ActionSetNwSrc{pkt::Ipv4Address{r.u32()}};
    case ActionType::SetNwDst:
      return ActionSetNwDst{pkt::Ipv4Address{r.u32()}};
    case ActionType::SetNwTos: {
      ActionSetNwTos a;
      a.tos = r.u8();
      r.skip(3);
      return a;
    }
    case ActionType::SetTpSrc: {
      ActionSetTpSrc a;
      a.port = r.u16();
      r.skip(2);
      return a;
    }
    case ActionType::SetTpDst: {
      ActionSetTpDst a;
      a.port = r.u16();
      r.skip(2);
      return a;
    }
    case ActionType::Enqueue: {
      ActionEnqueue a;
      a.port = r.u16();
      r.skip(6);
      a.queue_id = r.u32();
      return a;
    }
  }
  throw DecodeError("unknown action type " + std::to_string(static_cast<int>(type)));
}

void encode_actions(ByteWriter& w, const ActionList& actions) {
  for (const Action& a : actions) encode_action(w, a);
}

ActionList decode_actions(ByteReader& r, std::size_t len) {
  const std::size_t end = r.position() + len;
  ActionList actions;
  while (r.position() < end) {
    actions.push_back(decode_action(r));
  }
  if (r.position() != end) throw DecodeError("action list overran declared length");
  return actions;
}

ActionList output_to(std::uint16_t port) { return {ActionOutput{port, 0xffff}}; }
ActionList output_to(Port port) { return output_to(static_cast<std::uint16_t>(port)); }

}  // namespace attain::ofp
