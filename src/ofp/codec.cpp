#include "ofp/codec.hpp"

namespace attain::ofp {

namespace {

void encode_phy_port(ByteWriter& w, const PhyPort& port) {
  w.u16(port.port_no);
  w.raw(port.hw_addr.octets);
  w.fixed_string(port.name, 16);
  w.u32(port.config);
  w.u32(port.state);
  w.u32(port.curr);
  w.u32(port.advertised);
  w.u32(port.supported);
  w.u32(port.peer);
}

PhyPort decode_phy_port(ByteReader& r) {
  PhyPort port;
  port.port_no = r.u16();
  const auto mac = r.view(6);
  std::copy(mac.begin(), mac.end(), port.hw_addr.octets.begin());
  port.name = r.fixed_string(16);
  port.config = r.u32();
  port.state = r.u32();
  port.curr = r.u32();
  port.advertised = r.u32();
  port.supported = r.u32();
  port.peer = r.u32();
  return port;
}

struct BodyEncoder {
  ByteWriter& w;

  void operator()(const Hello&) const {}
  void operator()(const Error& m) const {
    w.u16(static_cast<std::uint16_t>(m.type));
    w.u16(m.code);
    w.raw(m.data);
  }
  void operator()(const EchoRequest& m) const { w.raw(m.data); }
  void operator()(const EchoReply& m) const { w.raw(m.data); }
  void operator()(const Vendor& m) const {
    w.u32(m.vendor);
    w.raw(m.data);
  }
  void operator()(const FeaturesRequest&) const {}
  void operator()(const FeaturesReply& m) const {
    w.u64(m.datapath_id);
    w.u32(m.n_buffers);
    w.u8(m.n_tables);
    w.pad(3);
    w.u32(m.capabilities);
    w.u32(m.actions);
    for (const PhyPort& p : m.ports) encode_phy_port(w, p);
  }
  void operator()(const GetConfigRequest&) const {}
  void operator()(const GetConfigReply& m) const {
    w.u16(m.flags);
    w.u16(m.miss_send_len);
  }
  void operator()(const SetConfig& m) const {
    w.u16(m.flags);
    w.u16(m.miss_send_len);
  }
  void operator()(const PacketIn& m) const {
    w.u32(m.buffer_id);
    w.u16(m.total_len);
    w.u16(m.in_port);
    w.u8(static_cast<std::uint8_t>(m.reason));
    w.pad(1);
    w.raw(m.data);
  }
  void operator()(const FlowRemoved& m) const {
    m.match.encode(w);
    w.u64(m.cookie);
    w.u16(m.priority);
    w.u8(static_cast<std::uint8_t>(m.reason));
    w.pad(1);
    w.u32(m.duration_sec);
    w.u32(m.duration_nsec);
    w.u16(m.idle_timeout);
    w.pad(2);
    w.u64(m.packet_count);
    w.u64(m.byte_count);
  }
  void operator()(const PortStatus& m) const {
    w.u8(static_cast<std::uint8_t>(m.reason));
    w.pad(7);
    encode_phy_port(w, m.desc);
  }
  void operator()(const PacketOut& m) const {
    w.u32(m.buffer_id);
    w.u16(m.in_port);
    w.u16(static_cast<std::uint16_t>(actions_wire_size(m.actions)));
    encode_actions(w, m.actions);
    w.raw(m.data);
  }
  void operator()(const FlowMod& m) const {
    m.match.encode(w);
    w.u64(m.cookie);
    w.u16(static_cast<std::uint16_t>(m.command));
    w.u16(m.idle_timeout);
    w.u16(m.hard_timeout);
    w.u16(m.priority);
    w.u32(m.buffer_id);
    w.u16(m.out_port);
    w.u16(m.flags);
    encode_actions(w, m.actions);
  }
  void operator()(const PortMod& m) const {
    w.u16(m.port_no);
    w.raw(m.hw_addr.octets);
    w.u32(m.config);
    w.u32(m.mask);
    w.u32(m.advertise);
    w.pad(4);
  }
  void operator()(const StatsRequest& m) const {
    w.u16(static_cast<std::uint16_t>(m.stats_type()));
    w.u16(m.flags);
    struct Sub {
      ByteWriter& w;
      void operator()(const DescStatsRequest&) const {}
      void operator()(const FlowStatsRequest& b) const {
        b.match.encode(w);
        w.u8(b.table_id);
        w.pad(1);
        w.u16(b.out_port);
      }
      void operator()(const AggregateStatsRequest& b) const {
        b.match.encode(w);
        w.u8(b.table_id);
        w.pad(1);
        w.u16(b.out_port);
      }
      void operator()(const PortStatsRequest& b) const {
        w.u16(b.port_no);
        w.pad(6);
      }
    };
    std::visit(Sub{w}, m.body);
  }
  void operator()(const StatsReply& m) const {
    w.u16(static_cast<std::uint16_t>(m.stats_type()));
    w.u16(m.flags);
    struct Sub {
      ByteWriter& w;
      void operator()(const DescStats& b) const {
        w.fixed_string(b.mfr_desc, 256);
        w.fixed_string(b.hw_desc, 256);
        w.fixed_string(b.sw_desc, 256);
        w.fixed_string(b.serial_num, 32);
        w.fixed_string(b.dp_desc, 256);
      }
      void operator()(const std::vector<FlowStatsEntry>& entries) const {
        for (const FlowStatsEntry& e : entries) {
          const std::size_t entry_len = 88 + actions_wire_size(e.actions);
          w.u16(static_cast<std::uint16_t>(entry_len));
          w.u8(e.table_id);
          w.pad(1);
          e.match.encode(w);
          w.u32(e.duration_sec);
          w.u32(e.duration_nsec);
          w.u16(e.priority);
          w.u16(e.idle_timeout);
          w.u16(e.hard_timeout);
          w.pad(6);
          w.u64(e.cookie);
          w.u64(e.packet_count);
          w.u64(e.byte_count);
          encode_actions(w, e.actions);
        }
      }
      void operator()(const AggregateStats& b) const {
        w.u64(b.packet_count);
        w.u64(b.byte_count);
        w.u32(b.flow_count);
        w.pad(4);
      }
      void operator()(const std::vector<PortStatsEntry>& entries) const {
        for (const PortStatsEntry& e : entries) {
          w.u16(e.port_no);
          w.pad(6);
          w.u64(e.rx_packets);
          w.u64(e.tx_packets);
          w.u64(e.rx_bytes);
          w.u64(e.tx_bytes);
          w.u64(e.rx_dropped);
          w.u64(e.tx_dropped);
        }
      }
    };
    std::visit(Sub{w}, m.body);
  }
  void operator()(const BarrierRequest&) const {}
  void operator()(const BarrierReply&) const {}
};

Body decode_body(MsgType type, ByteReader& r) {
  switch (type) {
    case MsgType::Hello:
      r.skip(r.remaining());  // HELLO may carry elements; ignored in 1.0
      return Hello{};
    case MsgType::Error: {
      Error m;
      m.type = static_cast<ErrorType>(r.u16());
      m.code = r.u16();
      m.data = r.raw(r.remaining());
      return m;
    }
    case MsgType::EchoRequest:
      return EchoRequest{r.raw(r.remaining())};
    case MsgType::EchoReply:
      return EchoReply{r.raw(r.remaining())};
    case MsgType::Vendor: {
      Vendor m;
      m.vendor = r.u32();
      m.data = r.raw(r.remaining());
      return m;
    }
    case MsgType::FeaturesRequest:
      return FeaturesRequest{};
    case MsgType::FeaturesReply: {
      FeaturesReply m;
      m.datapath_id = r.u64();
      m.n_buffers = r.u32();
      m.n_tables = r.u8();
      r.skip(3);
      m.capabilities = r.u32();
      m.actions = r.u32();
      while (r.remaining() >= 48) m.ports.push_back(decode_phy_port(r));
      if (r.remaining() != 0) throw DecodeError("trailing bytes in FEATURES_REPLY");
      return m;
    }
    case MsgType::GetConfigRequest:
      return GetConfigRequest{};
    case MsgType::GetConfigReply: {
      GetConfigReply m;
      m.flags = r.u16();
      m.miss_send_len = r.u16();
      return m;
    }
    case MsgType::SetConfig: {
      SetConfig m;
      m.flags = r.u16();
      m.miss_send_len = r.u16();
      return m;
    }
    case MsgType::PacketIn: {
      PacketIn m;
      m.buffer_id = r.u32();
      m.total_len = r.u16();
      m.in_port = r.u16();
      m.reason = static_cast<PacketInReason>(r.u8());
      r.skip(1);
      m.data = r.raw(r.remaining());
      return m;
    }
    case MsgType::FlowRemoved: {
      FlowRemoved m;
      m.match = Match::decode(r);
      m.cookie = r.u64();
      m.priority = r.u16();
      m.reason = static_cast<FlowRemovedReason>(r.u8());
      r.skip(1);
      m.duration_sec = r.u32();
      m.duration_nsec = r.u32();
      m.idle_timeout = r.u16();
      r.skip(2);
      m.packet_count = r.u64();
      m.byte_count = r.u64();
      return m;
    }
    case MsgType::PortStatus: {
      PortStatus m;
      m.reason = static_cast<PortReason>(r.u8());
      r.skip(7);
      m.desc = decode_phy_port(r);
      return m;
    }
    case MsgType::PacketOut: {
      PacketOut m;
      m.buffer_id = r.u32();
      m.in_port = r.u16();
      const std::uint16_t actions_len = r.u16();
      m.actions = decode_actions(r, actions_len);
      m.data = r.raw(r.remaining());
      return m;
    }
    case MsgType::FlowMod: {
      FlowMod m;
      m.match = Match::decode(r);
      m.cookie = r.u64();
      m.command = static_cast<FlowModCommand>(r.u16());
      m.idle_timeout = r.u16();
      m.hard_timeout = r.u16();
      m.priority = r.u16();
      m.buffer_id = r.u32();
      m.out_port = r.u16();
      m.flags = r.u16();
      m.actions = decode_actions(r, r.remaining());
      return m;
    }
    case MsgType::PortMod: {
      PortMod m;
      m.port_no = r.u16();
      const auto mac = r.view(6);
      std::copy(mac.begin(), mac.end(), m.hw_addr.octets.begin());
      m.config = r.u32();
      m.mask = r.u32();
      m.advertise = r.u32();
      r.skip(4);
      return m;
    }
    case MsgType::StatsRequest: {
      StatsRequest m;
      const auto stats_type = static_cast<StatsType>(r.u16());
      m.flags = r.u16();
      switch (stats_type) {
        case StatsType::Desc:
          m.body = DescStatsRequest{};
          break;
        case StatsType::Flow: {
          FlowStatsRequest b;
          b.match = Match::decode(r);
          b.table_id = r.u8();
          r.skip(1);
          b.out_port = r.u16();
          m.body = b;
          break;
        }
        case StatsType::Aggregate: {
          AggregateStatsRequest b;
          b.match = Match::decode(r);
          b.table_id = r.u8();
          r.skip(1);
          b.out_port = r.u16();
          m.body = b;
          break;
        }
        case StatsType::Port: {
          PortStatsRequest b;
          b.port_no = r.u16();
          r.skip(6);
          m.body = b;
          break;
        }
        default:
          throw DecodeError("unsupported stats request type");
      }
      return m;
    }
    case MsgType::StatsReply: {
      StatsReply m;
      const auto stats_type = static_cast<StatsType>(r.u16());
      m.flags = r.u16();
      switch (stats_type) {
        case StatsType::Desc: {
          DescStats b;
          b.mfr_desc = r.fixed_string(256);
          b.hw_desc = r.fixed_string(256);
          b.sw_desc = r.fixed_string(256);
          b.serial_num = r.fixed_string(32);
          b.dp_desc = r.fixed_string(256);
          m.body = b;
          break;
        }
        case StatsType::Flow: {
          std::vector<FlowStatsEntry> entries;
          while (r.remaining() > 0) {
            const std::size_t start = r.position();
            const std::uint16_t entry_len = r.u16();
            if (entry_len < 88) throw DecodeError("flow stats entry too short");
            FlowStatsEntry e;
            e.table_id = r.u8();
            r.skip(1);
            e.match = Match::decode(r);
            e.duration_sec = r.u32();
            e.duration_nsec = r.u32();
            e.priority = r.u16();
            e.idle_timeout = r.u16();
            e.hard_timeout = r.u16();
            r.skip(6);
            e.cookie = r.u64();
            e.packet_count = r.u64();
            e.byte_count = r.u64();
            e.actions = decode_actions(r, entry_len - (r.position() - start));
            entries.push_back(std::move(e));
          }
          m.body = std::move(entries);
          break;
        }
        case StatsType::Aggregate: {
          AggregateStats b;
          b.packet_count = r.u64();
          b.byte_count = r.u64();
          b.flow_count = r.u32();
          r.skip(4);
          m.body = b;
          break;
        }
        case StatsType::Port: {
          std::vector<PortStatsEntry> entries;
          while (r.remaining() >= 56) {
            PortStatsEntry e;
            e.port_no = r.u16();
            r.skip(6);
            e.rx_packets = r.u64();
            e.tx_packets = r.u64();
            e.rx_bytes = r.u64();
            e.tx_bytes = r.u64();
            e.rx_dropped = r.u64();
            e.tx_dropped = r.u64();
            entries.push_back(e);
          }
          if (r.remaining() != 0) throw DecodeError("trailing bytes in port stats");
          m.body = std::move(entries);
          break;
        }
        default:
          throw DecodeError("unsupported stats reply type");
      }
      return m;
    }
    case MsgType::BarrierRequest:
      return BarrierRequest{};
    case MsgType::BarrierReply:
      return BarrierReply{};
  }
  throw DecodeError("unknown message type " + std::to_string(static_cast<int>(type)));
}

/// Upper-bound body sizes for the pre-encode reserve() in encode(). Exact
/// for every hot-path message (PacketIn/Out, FlowMod, EchoRequest/Reply);
/// variable-length stats replies fall back to a per-entry bound. A hint
/// only sizes the buffer, so an overestimate costs slack bytes, never
/// correctness — but keeping it tight keeps slab classes small.
struct BodySizeHint {
  std::size_t operator()(const Hello&) const { return 0; }
  std::size_t operator()(const Error& m) const { return 4 + m.data.size(); }
  std::size_t operator()(const EchoRequest& m) const { return m.data.size(); }
  std::size_t operator()(const EchoReply& m) const { return m.data.size(); }
  std::size_t operator()(const Vendor& m) const { return 4 + m.data.size(); }
  std::size_t operator()(const FeaturesRequest&) const { return 0; }
  std::size_t operator()(const FeaturesReply& m) const { return 24 + m.ports.size() * 48; }
  std::size_t operator()(const GetConfigRequest&) const { return 0; }
  std::size_t operator()(const GetConfigReply&) const { return 4; }
  std::size_t operator()(const SetConfig&) const { return 4; }
  std::size_t operator()(const PacketIn& m) const { return 10 + m.data.size(); }
  std::size_t operator()(const FlowRemoved&) const { return 80; }
  std::size_t operator()(const PortStatus&) const { return 56; }
  std::size_t operator()(const PacketOut& m) const {
    return 8 + actions_wire_size(m.actions) + m.data.size();
  }
  std::size_t operator()(const FlowMod& m) const {
    return 64 + actions_wire_size(m.actions);
  }
  std::size_t operator()(const PortMod&) const { return 24; }
  std::size_t operator()(const StatsRequest&) const { return 48; }
  std::size_t operator()(const StatsReply& m) const {
    struct Sub {
      std::size_t operator()(const DescStats&) const { return 1056; }
      std::size_t operator()(const std::vector<FlowStatsEntry>& entries) const {
        std::size_t total = 0;
        for (const FlowStatsEntry& e : entries) total += 88 + actions_wire_size(e.actions);
        return total;
      }
      std::size_t operator()(const AggregateStats&) const { return 24; }
      std::size_t operator()(const std::vector<PortStatsEntry>& entries) const {
        return entries.size() * 56;
      }
    };
    return 4 + std::visit(Sub{}, m.body);
  }
  std::size_t operator()(const BarrierRequest&) const { return 0; }
  std::size_t operator()(const BarrierReply&) const { return 0; }
};

}  // namespace

CodecOpCounters& codec_ops() {
  thread_local CodecOpCounters counters;
  return counters;
}

void reset_codec_ops() { codec_ops() = CodecOpCounters{}; }

Bytes encode(const Message& message) {
  ++codec_ops().encodes;
  ByteWriter w;
  w.reserve(kHeaderSize + std::visit(BodySizeHint{}, message.body));
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(message.type()));
  w.u16(0);  // length patched below
  w.u32(message.xid);
  std::visit(BodyEncoder{w}, message.body);
  if (w.size() > 0xffff) throw std::length_error("OpenFlow message exceeds 64 KiB");
  w.patch_u16(2, static_cast<std::uint16_t>(w.size()));
  return std::move(w).take();
}

Header decode_header(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  Header h;
  h.version = r.u8();
  if (h.version != kVersion) {
    throw DecodeError("unsupported OpenFlow version " + std::to_string(h.version));
  }
  const std::uint8_t type = r.u8();
  if (type > static_cast<std::uint8_t>(MsgType::BarrierReply)) {
    throw DecodeError("unknown OpenFlow type " + std::to_string(type));
  }
  h.type = static_cast<MsgType>(type);
  h.length = r.u16();
  if (h.length < kHeaderSize) throw DecodeError("OpenFlow length shorter than header");
  h.xid = r.u32();
  return h;
}

Message decode(std::span<const std::uint8_t> data) {
  ++codec_ops().decodes;
  const Header h = decode_header(data);
  if (h.length > data.size()) throw DecodeError("truncated OpenFlow message");
  ByteReader body(data.subspan(kHeaderSize, h.length - kHeaderSize));
  Message m;
  m.xid = h.xid;
  m.body = decode_body(h.type, body);
  return m;
}

void FrameAssembler::feed(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::optional<Bytes> FrameAssembler::next_frame() {
  if (buf_.size() < kHeaderSize) return std::nullopt;
  const Header h = decode_header(buf_);
  if (buf_.size() < h.length) return std::nullopt;
  Bytes frame(buf_.begin(), buf_.begin() + h.length);
  buf_.erase(buf_.begin(), buf_.begin() + h.length);
  return frame;
}

}  // namespace attain::ofp
