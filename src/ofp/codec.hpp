// OpenFlow 1.0 wire codec: header framing plus per-message body
// encode/decode. The runtime injector interposes on these wire bytes, so
// everything the switches and controllers exchange round-trips through this
// codec (like the paper's use of Loxi).
#pragma once

#include <span>

#include "common/bytes.hpp"
#include "ofp/messages.hpp"

namespace attain::ofp {

/// Decoded struct ofp_header.
struct Header {
  std::uint8_t version{kVersion};
  MsgType type{MsgType::Hello};
  std::uint16_t length{kHeaderSize};
  std::uint32_t xid{0};
};

/// Per-thread codec invocation counters. encode()/decode() bump these; the
/// channel-pipeline bench (bench_channel_codec) measures the decode-once
/// envelope path against the encode/decode/decode byte pipeline with them.
/// Thread-local so parallel sweep workers never race — each cell reads its
/// own thread's tally.
struct CodecOpCounters {
  std::uint64_t encodes{0};
  std::uint64_t decodes{0};
  std::uint64_t total() const { return encodes + decodes; }
};

CodecOpCounters& codec_ops();
void reset_codec_ops();

/// Serializes a message (header + body) to wire bytes.
Bytes encode(const Message& message);

/// Peeks at the 8-byte header without touching the body. Throws DecodeError
/// if fewer than 8 bytes are available or the version is not 0x01.
Header decode_header(std::span<const std::uint8_t> data);

/// Decodes one complete message. Throws DecodeError on truncation, version
/// mismatch, or malformed bodies.
Message decode(std::span<const std::uint8_t> data);

/// Stream reassembler: feed TCP-segment-like byte chunks, pop complete
/// OpenFlow frames (length taken from each header). Used by the proxy to be
/// robust to arbitrary chunking.
class FrameAssembler {
 public:
  void feed(std::span<const std::uint8_t> data);

  /// Extracts the next complete frame's raw bytes, or std::nullopt if more
  /// input is needed. Throws DecodeError on an unparseable header.
  std::optional<Bytes> next_frame();

  std::size_t buffered() const { return buf_.size(); }

 private:
  Bytes buf_;
};

}  // namespace attain::ofp
