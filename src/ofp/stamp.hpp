// Template-stamped OpenFlow encoding for flood-shaped message streams.
//
// A StampedTemplate runs the full visitor encoder once over a prototype
// Message, then discovers — by mutate/re-encode/diff against ofp::encode —
// the wire offsets of the header/body fields that vary across a volumetric
// flood (xid, buffer_id, in_port, total_len, and the trailing raw-data
// region). Emitting a flood instance is then O(patched bytes): in-place
// big-endian stores plus one same-length memcpy for the payload, with the
// typed message patched in lock step so wire() == ofp::encode(message())
// always holds. chan::Envelope::from_parts() turns the pair into an
// envelope with both views cached, skipping the first-hop encode entirely.
//
// Discovery is self-validating: each field is probed with two values whose
// encodings differ in every byte, the probe bytes must land verbatim at a
// unique offset, and a pure byte patch must reproduce the full re-encode
// byte-for-byte — otherwise the field reports unstampable and callers fall
// back to the full codec. tests/test_stamp.cpp differential-fuzzes the
// stamped emit against ofp::encode across all stampable message types.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/bytes.hpp"
#include "ofp/messages.hpp"

namespace attain::ofp {

class StampedTemplate {
 public:
  /// Builds a template from a prototype (one full encode + a few probe
  /// encodes). Never fails outright; fields that cannot be discovered or
  /// validated are reported unstampable.
  explicit StampedTemplate(Message prototype);

  bool can_stamp_xid() const { return xid_off_.has_value(); }
  bool can_stamp_buffer_id() const { return buffer_id_off_.has_value(); }
  bool can_stamp_in_port() const { return in_port_off_.has_value(); }
  bool can_stamp_total_len() const { return total_len_off_.has_value(); }
  /// Data stamping is a same-length splice of the trailing raw region.
  bool can_stamp_data(std::size_t size) const {
    return data_off_.has_value() && size == data_size_;
  }

  /// Stampers patch the wire image and the typed message together; each
  /// returns false (leaving both views unchanged) when the field is not
  /// stampable for this prototype.
  bool set_xid(std::uint32_t xid);
  bool set_buffer_id(std::uint32_t buffer_id);
  bool set_in_port(std::uint16_t in_port);
  bool set_total_len(std::uint16_t total_len);
  bool set_data(std::span<const std::uint8_t> data);

  /// Current views; wire() is byte-identical to ofp::encode(message()).
  const Message& message() const { return message_; }
  const Bytes& wire() const { return wire_; }

  Message emit_message() const { return message_; }
  Bytes emit_wire() const { return wire_; }

 private:
  void discover();

  Message message_;
  Bytes wire_;
  std::optional<std::size_t> xid_off_;
  std::optional<std::size_t> buffer_id_off_;
  std::optional<std::size_t> in_port_off_;
  std::optional<std::size_t> total_len_off_;
  std::optional<std::size_t> data_off_;
  std::size_t data_size_{0};
};

}  // namespace attain::ofp
