#include "ofp/messages.hpp"

#include <sstream>

namespace attain::ofp {

std::string to_string(MsgType type) {
  switch (type) {
    case MsgType::Hello: return "HELLO";
    case MsgType::Error: return "ERROR";
    case MsgType::EchoRequest: return "ECHO_REQUEST";
    case MsgType::EchoReply: return "ECHO_REPLY";
    case MsgType::Vendor: return "VENDOR";
    case MsgType::FeaturesRequest: return "FEATURES_REQUEST";
    case MsgType::FeaturesReply: return "FEATURES_REPLY";
    case MsgType::GetConfigRequest: return "GET_CONFIG_REQUEST";
    case MsgType::GetConfigReply: return "GET_CONFIG_REPLY";
    case MsgType::SetConfig: return "SET_CONFIG";
    case MsgType::PacketIn: return "PACKET_IN";
    case MsgType::FlowRemoved: return "FLOW_REMOVED";
    case MsgType::PortStatus: return "PORT_STATUS";
    case MsgType::PacketOut: return "PACKET_OUT";
    case MsgType::FlowMod: return "FLOW_MOD";
    case MsgType::PortMod: return "PORT_MOD";
    case MsgType::StatsRequest: return "STATS_REQUEST";
    case MsgType::StatsReply: return "STATS_REPLY";
    case MsgType::BarrierRequest: return "BARRIER_REQUEST";
    case MsgType::BarrierReply: return "BARRIER_REPLY";
  }
  return "UNKNOWN";
}

std::string to_string(FlowModCommand command) {
  switch (command) {
    case FlowModCommand::Add: return "ADD";
    case FlowModCommand::Modify: return "MODIFY";
    case FlowModCommand::ModifyStrict: return "MODIFY_STRICT";
    case FlowModCommand::Delete: return "DELETE";
    case FlowModCommand::DeleteStrict: return "DELETE_STRICT";
  }
  return "?";
}

StatsType StatsRequest::stats_type() const {
  struct Visitor {
    StatsType operator()(const DescStatsRequest&) const { return StatsType::Desc; }
    StatsType operator()(const FlowStatsRequest&) const { return StatsType::Flow; }
    StatsType operator()(const AggregateStatsRequest&) const { return StatsType::Aggregate; }
    StatsType operator()(const PortStatsRequest&) const { return StatsType::Port; }
  };
  return std::visit(Visitor{}, body);
}

StatsType StatsReply::stats_type() const {
  struct Visitor {
    StatsType operator()(const DescStats&) const { return StatsType::Desc; }
    StatsType operator()(const std::vector<FlowStatsEntry>&) const { return StatsType::Flow; }
    StatsType operator()(const AggregateStats&) const { return StatsType::Aggregate; }
    StatsType operator()(const std::vector<PortStatsEntry>&) const { return StatsType::Port; }
  };
  return std::visit(Visitor{}, body);
}

MsgType Message::type() const {
  struct Visitor {
    MsgType operator()(const Hello&) const { return MsgType::Hello; }
    MsgType operator()(const Error&) const { return MsgType::Error; }
    MsgType operator()(const EchoRequest&) const { return MsgType::EchoRequest; }
    MsgType operator()(const EchoReply&) const { return MsgType::EchoReply; }
    MsgType operator()(const Vendor&) const { return MsgType::Vendor; }
    MsgType operator()(const FeaturesRequest&) const { return MsgType::FeaturesRequest; }
    MsgType operator()(const FeaturesReply&) const { return MsgType::FeaturesReply; }
    MsgType operator()(const GetConfigRequest&) const { return MsgType::GetConfigRequest; }
    MsgType operator()(const GetConfigReply&) const { return MsgType::GetConfigReply; }
    MsgType operator()(const SetConfig&) const { return MsgType::SetConfig; }
    MsgType operator()(const PacketIn&) const { return MsgType::PacketIn; }
    MsgType operator()(const FlowRemoved&) const { return MsgType::FlowRemoved; }
    MsgType operator()(const PortStatus&) const { return MsgType::PortStatus; }
    MsgType operator()(const PacketOut&) const { return MsgType::PacketOut; }
    MsgType operator()(const FlowMod&) const { return MsgType::FlowMod; }
    MsgType operator()(const PortMod&) const { return MsgType::PortMod; }
    MsgType operator()(const StatsRequest&) const { return MsgType::StatsRequest; }
    MsgType operator()(const StatsReply&) const { return MsgType::StatsReply; }
    MsgType operator()(const BarrierRequest&) const { return MsgType::BarrierRequest; }
    MsgType operator()(const BarrierReply&) const { return MsgType::BarrierReply; }
  };
  return std::visit(Visitor{}, body);
}

std::string Message::summary() const {
  std::ostringstream out;
  out << to_string(type()) << " xid=" << xid;
  if (const auto* fm = std::get_if<FlowMod>(&body)) {
    out << " " << to_string(fm->command) << " " << fm->match.to_string() << " actions="
        << to_string(fm->actions) << " buffer="
        << (fm->buffer_id == kNoBuffer ? std::string("none") : std::to_string(fm->buffer_id));
  } else if (const auto* pi = std::get_if<PacketIn>(&body)) {
    out << " in_port=" << pi->in_port << " buffer="
        << (pi->buffer_id == kNoBuffer ? std::string("none") : std::to_string(pi->buffer_id))
        << " total_len=" << pi->total_len;
  } else if (const auto* po = std::get_if<PacketOut>(&body)) {
    out << " in_port=" << po->in_port << " actions=" << to_string(po->actions) << " buffer="
        << (po->buffer_id == kNoBuffer ? std::string("none") : std::to_string(po->buffer_id));
  } else if (const auto* fr = std::get_if<FlowRemoved>(&body)) {
    out << " " << fr->match.to_string() << " reason=" << static_cast<int>(fr->reason);
  }
  return out.str();
}

}  // namespace attain::ofp
