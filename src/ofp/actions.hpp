// OpenFlow 1.0 flow actions (struct ofp_action_*): typed variants, packet
// application semantics, and wire codec.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "ofp/constants.hpp"
#include "packet/packet.hpp"

namespace attain::ofp {

/// OFPAT_OUTPUT: forward to a port (possibly a reserved port such as
/// FLOOD or CONTROLLER). max_len caps bytes sent to the controller.
struct ActionOutput {
  std::uint16_t port{0};
  std::uint16_t max_len{0xffff};
  friend bool operator==(const ActionOutput&, const ActionOutput&) = default;
};

struct ActionSetVlanVid {
  std::uint16_t vlan_vid{0};
  friend bool operator==(const ActionSetVlanVid&, const ActionSetVlanVid&) = default;
};

struct ActionSetVlanPcp {
  std::uint8_t vlan_pcp{0};
  friend bool operator==(const ActionSetVlanPcp&, const ActionSetVlanPcp&) = default;
};

struct ActionStripVlan {
  friend bool operator==(const ActionStripVlan&, const ActionStripVlan&) = default;
};

struct ActionSetDlSrc {
  pkt::MacAddress mac;
  friend bool operator==(const ActionSetDlSrc&, const ActionSetDlSrc&) = default;
};

struct ActionSetDlDst {
  pkt::MacAddress mac;
  friend bool operator==(const ActionSetDlDst&, const ActionSetDlDst&) = default;
};

struct ActionSetNwSrc {
  pkt::Ipv4Address ip;
  friend bool operator==(const ActionSetNwSrc&, const ActionSetNwSrc&) = default;
};

struct ActionSetNwDst {
  pkt::Ipv4Address ip;
  friend bool operator==(const ActionSetNwDst&, const ActionSetNwDst&) = default;
};

struct ActionSetNwTos {
  std::uint8_t tos{0};
  friend bool operator==(const ActionSetNwTos&, const ActionSetNwTos&) = default;
};

struct ActionSetTpSrc {
  std::uint16_t port{0};
  friend bool operator==(const ActionSetTpSrc&, const ActionSetTpSrc&) = default;
};

struct ActionSetTpDst {
  std::uint16_t port{0};
  friend bool operator==(const ActionSetTpDst&, const ActionSetTpDst&) = default;
};

/// OFPAT_ENQUEUE: output to a port through a specific queue.
struct ActionEnqueue {
  std::uint16_t port{0};
  std::uint32_t queue_id{0};
  friend bool operator==(const ActionEnqueue&, const ActionEnqueue&) = default;
};

using Action = std::variant<ActionOutput, ActionSetVlanVid, ActionSetVlanPcp, ActionStripVlan,
                            ActionSetDlSrc, ActionSetDlDst, ActionSetNwSrc, ActionSetNwDst,
                            ActionSetNwTos, ActionSetTpSrc, ActionSetTpDst, ActionEnqueue>;

/// Slab-backed (see common/arena.hpp): action lists ride inside every
/// FLOW_MOD / PACKET_OUT on the hot path, so their storage recycles
/// through the thread's size-class freelists instead of the general heap.
using ActionList = std::vector<Action, mem::SlabAllocator<Action>>;

ActionType action_type(const Action& action);

/// On-wire size of one action (all OF1.0 actions are 8 or 16 bytes).
std::size_t action_wire_size(const Action& action);
std::size_t actions_wire_size(const ActionList& actions);

/// Applies a header-rewrite action in place. Output/Enqueue are forwarding
/// decisions, not rewrites, and are ignored here (the switch pipeline
/// handles them).
void apply_rewrite(const Action& action, pkt::Packet& packet);

std::string to_string(const Action& action);
std::string to_string(const ActionList& actions);

void encode_action(ByteWriter& w, const Action& action);
Action decode_action(ByteReader& r);

/// Encodes/decodes a packed action list occupying exactly `len` bytes.
void encode_actions(ByteWriter& w, const ActionList& actions);
ActionList decode_actions(ByteReader& r, std::size_t len);

/// Convenience: a single-output action list.
ActionList output_to(std::uint16_t port);
ActionList output_to(Port port);

}  // namespace attain::ofp
