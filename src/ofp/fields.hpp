// Field reflection over OpenFlow messages — the MESSAGE TYPE OPTIONS of the
// paper's attack language (§V-A). Conditional expressions reference message
// payload fields by dotted path ("match.nw_src", "buffer_id", ...); the
// MODIFYMESSAGE action writes them back through set_field.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ofp/messages.hpp"

namespace attain::ofp {

/// All reflected fields are numeric (addresses are exposed as their integer
/// encodings: MACs as 48-bit, IPv4 as 32-bit, enums as their wire values).
using FieldValue = std::uint64_t;

/// Reads a payload field. Returns std::nullopt if the message type has no
/// such field. Common paths:
///   any message:  "xid"
///   FLOW_MOD:     "command", "idle_timeout", "hard_timeout", "priority",
///                 "buffer_id", "out_port", "flags", "cookie", "match.*"
///   PACKET_IN:    "buffer_id", "total_len", "in_port", "reason"
///   PACKET_OUT:   "buffer_id", "in_port"
///   FLOW_REMOVED: "reason", "priority", "idle_timeout", "packet_count",
///                 "byte_count", "duration_sec", "match.*"
///   FEATURES_REPLY: "datapath_id", "n_buffers", "n_tables"
///   SET_CONFIG / GET_CONFIG_REPLY: "flags", "miss_send_len"
///   PORT_STATUS:  "reason", "port_no"
///   ERROR:        "err_type", "err_code"
///   STATS_*:      "stats_type"
/// where "match.*" is one of in_port, dl_src, dl_dst, dl_vlan, dl_vlan_pcp,
/// dl_type, nw_tos, nw_proto, nw_src, nw_dst, tp_src, tp_dst, wildcards,
/// nw_src_wild_bits, nw_dst_wild_bits.
std::optional<FieldValue> get_field(const Message& message, std::string_view path);

/// Writes a payload field; returns false if the path does not exist for the
/// message's type. Writing keeps the message semantically valid (the
/// MODIFYMESSAGE capability), unlike fuzzing.
bool set_field(Message& message, std::string_view path, FieldValue value);

/// The reflected field paths available for a message type (documentation
/// and DSL diagnostics).
std::vector<std::string> field_names(MsgType type);

}  // namespace attain::ofp
