// Field reflection over OpenFlow messages — the MESSAGE TYPE OPTIONS of the
// paper's attack language (§V-A). Conditional expressions reference message
// payload fields by dotted path ("match.nw_src", "buffer_id", ...); the
// MODIFYMESSAGE action writes them back through set_field.
//
// Two access surfaces share one registry:
//   * the string API (get_field/set_field by dotted path) — used by the DSL,
//     diagnostics, and ad-hoc callers;
//   * the FieldId fast API — the dotted path interned once (field_id) into a
//     small numeric id, then read/written with a switch and no parsing. The
//     compiled rule programs (attain/lang/program.hpp) resolve every path at
//     compile time and only ever touch the id accessors on the hot path.
// The string accessors are implemented on top of the id accessors, so the
// two can never disagree (asserted field-by-field in test_ofp_fields.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ofp/messages.hpp"

namespace attain::ofp {

/// All reflected fields are numeric (addresses are exposed as their integer
/// encodings: MACs as 48-bit, IPv4 as 32-bit, enums as their wire values).
using FieldValue = std::uint64_t;

/// One id per registered dotted path. A path like "buffer_id" that exists
/// on several message types still has a single id; presence is a property
/// of (id, message type) — see field_presence_mask.
enum class FieldId : std::uint8_t {
  Xid,
  Command,
  IdleTimeout,
  HardTimeout,
  Priority,
  BufferId,
  OutPort,
  Flags,
  Cookie,
  NActions,
  TotalLen,
  InPort,
  Reason,
  PacketCount,
  ByteCount,
  DurationSec,
  DatapathId,
  NBuffers,
  NTables,
  NPorts,
  MissSendLen,
  PortNo,
  Config,
  Mask,
  ErrType,
  ErrCode,
  StatsType,
  DataLen,
  Vendor,
  MatchInPort,
  MatchDlSrc,
  MatchDlDst,
  MatchDlVlan,
  MatchDlVlanPcp,
  MatchDlType,
  MatchNwTos,
  MatchNwProto,
  MatchNwSrc,
  MatchNwDst,
  MatchTpSrc,
  MatchTpDst,
  MatchWildcards,
  MatchNwSrcWildBits,
  MatchNwDstWildBits,
};

inline constexpr std::size_t kFieldIdCount = 44;

/// Interns a dotted path. Returns std::nullopt for paths no message type
/// has ("", "match.", "bogus", "match.bogus", "xid.extra", ...). This is
/// the only place path strings are parsed; do it once, then use the id.
std::optional<FieldId> field_id(std::string_view path);

/// The dotted path an id was interned from ("match.nw_src", ...).
std::string_view field_path(FieldId id);

/// Bitmask over MsgType wire values (bit `1u << static_cast<unsigned>(type)`)
/// of the message types on which get_field(msg, id) yields a value. Used by
/// the compiled-rule guard prefilter to skip whole rules on one mask test.
std::uint32_t field_presence_mask(FieldId id);

/// Reads a payload field by interned id. Returns std::nullopt if the
/// message's type has no such field. No parsing, no allocation.
std::optional<FieldValue> get_field(const Message& message, FieldId id);

/// Writes a payload field by interned id; returns false if the field does
/// not exist (or is read-only, e.g. "n_actions") for the message's type.
bool set_field(Message& message, FieldId id, FieldValue value);

/// Reads a payload field. Returns std::nullopt if the message type has no
/// such field. Common paths:
///   any message:  "xid"
///   FLOW_MOD:     "command", "idle_timeout", "hard_timeout", "priority",
///                 "buffer_id", "out_port", "flags", "cookie", "match.*"
///   PACKET_IN:    "buffer_id", "total_len", "in_port", "reason"
///   PACKET_OUT:   "buffer_id", "in_port"
///   FLOW_REMOVED: "reason", "priority", "idle_timeout", "packet_count",
///                 "byte_count", "duration_sec", "match.*"
///   FEATURES_REPLY: "datapath_id", "n_buffers", "n_tables"
///   SET_CONFIG / GET_CONFIG_REPLY: "flags", "miss_send_len"
///   PORT_STATUS:  "reason", "port_no"
///   ERROR:        "err_type", "err_code"
///   STATS_*:      "stats_type"
/// where "match.*" is one of in_port, dl_src, dl_dst, dl_vlan, dl_vlan_pcp,
/// dl_type, nw_tos, nw_proto, nw_src, nw_dst, tp_src, tp_dst, wildcards,
/// nw_src_wild_bits, nw_dst_wild_bits.
std::optional<FieldValue> get_field(const Message& message, std::string_view path);

/// Writes a payload field; returns false if the path does not exist for the
/// message's type. Writing keeps the message semantically valid (the
/// MODIFYMESSAGE capability), unlike fuzzing.
bool set_field(Message& message, std::string_view path, FieldValue value);

/// The reflected field paths available for a message type (documentation
/// and DSL diagnostics).
std::vector<std::string> field_names(MsgType type);

}  // namespace attain::ofp
