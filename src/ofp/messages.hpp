// OpenFlow 1.0 messages as typed C++ structures. Each wire message type has
// a struct; `Message` couples a transaction id with a body variant. The wire
// codec lives in ofp/codec.hpp; field reflection for the attack language in
// ofp/fields.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "ofp/actions.hpp"
#include "ofp/constants.hpp"
#include "ofp/match.hpp"

namespace attain::ofp {

struct Hello {
  friend bool operator==(const Hello&, const Hello&) = default;
};

struct Error {
  ErrorType type{ErrorType::BadRequest};
  std::uint16_t code{0};
  Bytes data;
  friend bool operator==(const Error&, const Error&) = default;
};

struct EchoRequest {
  Bytes data;
  friend bool operator==(const EchoRequest&, const EchoRequest&) = default;
};

struct EchoReply {
  Bytes data;
  friend bool operator==(const EchoReply&, const EchoReply&) = default;
};

struct Vendor {
  std::uint32_t vendor{0};
  Bytes data;
  friend bool operator==(const Vendor&, const Vendor&) = default;
};

struct FeaturesRequest {
  friend bool operator==(const FeaturesRequest&, const FeaturesRequest&) = default;
};

/// struct ofp_phy_port.
struct PhyPort {
  std::uint16_t port_no{0};
  pkt::MacAddress hw_addr;
  std::string name;
  std::uint32_t config{0};
  std::uint32_t state{0};
  std::uint32_t curr{0};
  std::uint32_t advertised{0};
  std::uint32_t supported{0};
  std::uint32_t peer{0};
  friend bool operator==(const PhyPort&, const PhyPort&) = default;
};

struct FeaturesReply {
  std::uint64_t datapath_id{0};
  std::uint32_t n_buffers{256};
  std::uint8_t n_tables{1};
  std::uint32_t capabilities{0};
  std::uint32_t actions{0xfff};  // bitmap of supported ofp_action_type
  std::vector<PhyPort> ports;
  friend bool operator==(const FeaturesReply&, const FeaturesReply&) = default;
};

struct GetConfigRequest {
  friend bool operator==(const GetConfigRequest&, const GetConfigRequest&) = default;
};

struct GetConfigReply {
  std::uint16_t flags{0};
  std::uint16_t miss_send_len{128};
  friend bool operator==(const GetConfigReply&, const GetConfigReply&) = default;
};

struct SetConfig {
  std::uint16_t flags{0};
  std::uint16_t miss_send_len{128};
  friend bool operator==(const SetConfig&, const SetConfig&) = default;
};

struct PacketIn {
  std::uint32_t buffer_id{kNoBuffer};
  std::uint16_t total_len{0};
  std::uint16_t in_port{0};
  PacketInReason reason{PacketInReason::NoMatch};
  /// Raw frame bytes (possibly truncated to miss_send_len when buffered).
  Bytes data;
  friend bool operator==(const PacketIn&, const PacketIn&) = default;
};

struct FlowRemoved {
  Match match;
  std::uint64_t cookie{0};
  std::uint16_t priority{0};
  FlowRemovedReason reason{FlowRemovedReason::IdleTimeout};
  std::uint32_t duration_sec{0};
  std::uint32_t duration_nsec{0};
  std::uint16_t idle_timeout{0};
  std::uint64_t packet_count{0};
  std::uint64_t byte_count{0};
  friend bool operator==(const FlowRemoved&, const FlowRemoved&) = default;
};

struct PortStatus {
  PortReason reason{PortReason::Modify};
  PhyPort desc;
  friend bool operator==(const PortStatus&, const PortStatus&) = default;
};

struct PacketOut {
  std::uint32_t buffer_id{kNoBuffer};
  std::uint16_t in_port{static_cast<std::uint16_t>(Port::None)};
  ActionList actions;
  /// Frame bytes; meaningful only when buffer_id == kNoBuffer.
  Bytes data;
  friend bool operator==(const PacketOut&, const PacketOut&) = default;
};

struct FlowMod {
  Match match;
  std::uint64_t cookie{0};
  FlowModCommand command{FlowModCommand::Add};
  std::uint16_t idle_timeout{0};
  std::uint16_t hard_timeout{0};
  std::uint16_t priority{0x8000};
  std::uint32_t buffer_id{kNoBuffer};
  std::uint16_t out_port{static_cast<std::uint16_t>(Port::None)};
  std::uint16_t flags{0};
  ActionList actions;
  friend bool operator==(const FlowMod&, const FlowMod&) = default;
};

struct PortMod {
  std::uint16_t port_no{0};
  pkt::MacAddress hw_addr;
  std::uint32_t config{0};
  std::uint32_t mask{0};
  std::uint32_t advertise{0};
  friend bool operator==(const PortMod&, const PortMod&) = default;
};

// ---- Statistics ----

struct DescStatsRequest {
  friend bool operator==(const DescStatsRequest&, const DescStatsRequest&) = default;
};

struct DescStats {
  std::string mfr_desc;
  std::string hw_desc;
  std::string sw_desc;
  std::string serial_num;
  std::string dp_desc;
  friend bool operator==(const DescStats&, const DescStats&) = default;
};

struct FlowStatsRequest {
  Match match;
  std::uint8_t table_id{0xff};
  std::uint16_t out_port{static_cast<std::uint16_t>(Port::None)};
  friend bool operator==(const FlowStatsRequest&, const FlowStatsRequest&) = default;
};

struct FlowStatsEntry {
  std::uint8_t table_id{0};
  Match match;
  std::uint32_t duration_sec{0};
  std::uint32_t duration_nsec{0};
  std::uint16_t priority{0};
  std::uint16_t idle_timeout{0};
  std::uint16_t hard_timeout{0};
  std::uint64_t cookie{0};
  std::uint64_t packet_count{0};
  std::uint64_t byte_count{0};
  ActionList actions;
  friend bool operator==(const FlowStatsEntry&, const FlowStatsEntry&) = default;
};

struct AggregateStatsRequest {
  Match match;
  std::uint8_t table_id{0xff};
  std::uint16_t out_port{static_cast<std::uint16_t>(Port::None)};
  friend bool operator==(const AggregateStatsRequest&, const AggregateStatsRequest&) = default;
};

struct AggregateStats {
  std::uint64_t packet_count{0};
  std::uint64_t byte_count{0};
  std::uint32_t flow_count{0};
  friend bool operator==(const AggregateStats&, const AggregateStats&) = default;
};

struct PortStatsRequest {
  std::uint16_t port_no{static_cast<std::uint16_t>(Port::None)};
  friend bool operator==(const PortStatsRequest&, const PortStatsRequest&) = default;
};

struct PortStatsEntry {
  std::uint16_t port_no{0};
  std::uint64_t rx_packets{0};
  std::uint64_t tx_packets{0};
  std::uint64_t rx_bytes{0};
  std::uint64_t tx_bytes{0};
  std::uint64_t rx_dropped{0};
  std::uint64_t tx_dropped{0};
  friend bool operator==(const PortStatsEntry&, const PortStatsEntry&) = default;
};

struct StatsRequest {
  std::uint16_t flags{0};
  std::variant<DescStatsRequest, FlowStatsRequest, AggregateStatsRequest, PortStatsRequest> body;
  StatsType stats_type() const;
  friend bool operator==(const StatsRequest&, const StatsRequest&) = default;
};

struct StatsReply {
  std::uint16_t flags{0};
  std::variant<DescStats, std::vector<FlowStatsEntry>, AggregateStats,
               std::vector<PortStatsEntry>>
      body;
  StatsType stats_type() const;
  friend bool operator==(const StatsReply&, const StatsReply&) = default;
};

struct BarrierRequest {
  friend bool operator==(const BarrierRequest&, const BarrierRequest&) = default;
};

struct BarrierReply {
  friend bool operator==(const BarrierReply&, const BarrierReply&) = default;
};

using Body = std::variant<Hello, Error, EchoRequest, EchoReply, Vendor, FeaturesRequest,
                          FeaturesReply, GetConfigRequest, GetConfigReply, SetConfig, PacketIn,
                          FlowRemoved, PortStatus, PacketOut, FlowMod, PortMod, StatsRequest,
                          StatsReply, BarrierRequest, BarrierReply>;

/// A complete OpenFlow message: transaction id + typed body. The wire
/// header's version/type/length are derived during encoding.
struct Message {
  std::uint32_t xid{0};
  Body body;

  MsgType type() const;

  template <typename T>
  bool is() const {
    return std::holds_alternative<T>(body);
  }
  template <typename T>
  const T& as() const {
    return std::get<T>(body);
  }
  template <typename T>
  T& as() {
    return std::get<T>(body);
  }

  /// One-line rendering for monitors/logs.
  std::string summary() const;

  friend bool operator==(const Message&, const Message&) = default;
};

/// Builds a message with the given xid and body.
template <typename T>
Message make_message(std::uint32_t xid, T body) {
  return Message{xid, Body{std::move(body)}};
}

}  // namespace attain::ofp
