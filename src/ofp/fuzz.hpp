// FUZZMESSAGE support (paper Table I): random, possibly semantically
// invalid mutation of a message's wire bytes. The proxy fuzzes the encoded
// frame, preserving the header length field so the frame still parses as a
// frame (the receiver may then reject the body, which is the point).
#pragma once

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "ofp/messages.hpp"

namespace attain::ofp {

struct FuzzOptions {
  /// Number of random bit flips applied to the frame.
  unsigned bit_flips{8};
  /// Keep the 8-byte ofp_header intact so framing survives; matches the
  /// paper's TLS model where an attacker without READMESSAGE can still
  /// corrupt ciphertext payloads but not forge valid headers.
  bool preserve_header{true};
};

/// Flips random bits of `frame` in place.
void fuzz_frame(Bytes& frame, Rng& rng, const FuzzOptions& options = {});

/// Fuzzes a typed message by encoding, flipping bits, and re-decoding.
/// Returns std::nullopt when the mutation no longer parses (the caller then
/// forwards the raw corrupt bytes instead — receivers must handle garbage).
std::optional<Message> fuzz_message(const Message& message, Rng& rng,
                                    const FuzzOptions& options = {});

}  // namespace attain::ofp
