// OpenFlow 1.0 twelve-tuple flow match (struct ofp_match) with wildcard
// semantics, including the CIDR-style nw_src/nw_dst wildcard bit counts.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "ofp/constants.hpp"
#include "packet/flow_key.hpp"
#include "packet/packet.hpp"

namespace attain::ofp {

/// ofp_flow_wildcards bits.
namespace wc {
inline constexpr std::uint32_t kInPort = 1 << 0;
inline constexpr std::uint32_t kDlVlan = 1 << 1;
inline constexpr std::uint32_t kDlSrc = 1 << 2;
inline constexpr std::uint32_t kDlDst = 1 << 3;
inline constexpr std::uint32_t kDlType = 1 << 4;
inline constexpr std::uint32_t kNwProto = 1 << 5;
inline constexpr std::uint32_t kTpSrc = 1 << 6;
inline constexpr std::uint32_t kTpDst = 1 << 7;
inline constexpr std::uint32_t kNwSrcShift = 8;   // 6-bit count of wildcarded low bits
inline constexpr std::uint32_t kNwSrcMask = 0x3f << kNwSrcShift;
inline constexpr std::uint32_t kNwDstShift = 14;
inline constexpr std::uint32_t kNwDstMask = 0x3f << kNwDstShift;
inline constexpr std::uint32_t kDlVlanPcp = 1 << 20;
inline constexpr std::uint32_t kNwTos = 1 << 21;
/// All fields wildcarded (the spec's OFPFW_ALL).
inline constexpr std::uint32_t kAll = ((1 << 22) - 1);
}  // namespace wc

/// struct ofp_match. A field whose wildcard bit is set is ignored during
/// matching; nw_src/nw_dst use a 6-bit count of ignored low-order bits
/// (>= 32 means fully wildcarded).
struct Match {
  std::uint32_t wildcards{wc::kAll};
  std::uint16_t in_port{0};
  pkt::MacAddress dl_src;
  pkt::MacAddress dl_dst;
  std::uint16_t dl_vlan{0xffff};
  std::uint8_t dl_vlan_pcp{0};
  std::uint16_t dl_type{0};
  std::uint8_t nw_tos{0};
  std::uint8_t nw_proto{0};
  pkt::Ipv4Address nw_src;
  pkt::Ipv4Address nw_dst;
  std::uint16_t tp_src{0};
  std::uint16_t tp_dst{0};

  /// A match with every field wildcarded (matches everything).
  static Match wildcard_all() { return Match{}; }

  /// Builds the exact-match the POX `ofp_match.from_packet` helper builds:
  /// every field present in the packet is matched exactly, in_port
  /// included. This is what `forwarding.l2_learning` installs.
  static Match from_packet(const pkt::Packet& packet, std::uint16_t in_port);

  /// Builds the L2-only match Ryu's OF1.0 `simple_switch.py` installs:
  /// in_port + dl_src + dl_dst, everything else wildcarded. The IP fields
  /// being wildcarded here is exactly why rule φ2 of the connection-
  /// interruption attack never fires against Ryu (paper §VII-C4).
  static Match l2_only(std::uint16_t in_port, pkt::MacAddress dl_src, pkt::MacAddress dl_dst);

  /// Number of wildcarded low bits of nw_src/nw_dst (0 = exact, >=32 = any).
  std::uint32_t nw_src_wild_bits() const { return (wildcards & wc::kNwSrcMask) >> wc::kNwSrcShift; }
  std::uint32_t nw_dst_wild_bits() const { return (wildcards & wc::kNwDstMask) >> wc::kNwDstShift; }
  void set_nw_src_wild_bits(std::uint32_t bits);
  void set_nw_dst_wild_bits(std::uint32_t bits);

  bool is_exact() const { return wildcards == 0; }

  /// True if `packet` arriving on `in_port` matches.
  bool matches(const pkt::Packet& packet, std::uint16_t in_port) const;

  /// Key-based matching: equivalent to matches(packet, in_port) for
  /// key == pkt::FlowKey::from_packet(packet, in_port), without re-parsing
  /// the packet's header chain. This is the hot-path overload the flow
  /// table classifier uses.
  bool matches(const pkt::FlowKey& key) const;

  /// Projects this match's field values into a FlowKey. For an exact match
  /// (wildcards == 0) the projection is the unique key it matches — the
  /// flow table's exact-match hash index is keyed on it. For wildcard
  /// matches combine with masked_flow_key() to get the bucket key.
  pkt::FlowKey key_projection() const;

  /// True if every flow matched by `other` is also matched by this match
  /// (this is equal-or-more-general). Used for non-strict FLOW_MOD
  /// delete/modify semantics.
  bool subsumes(const Match& other) const;

  /// Strict equality: same wildcards and same values on non-wildcarded
  /// fields (used by OFPFC_DELETE_STRICT / MODIFY_STRICT).
  bool strictly_equals(const Match& other) const;

  /// Field-wise equality (wildcarded field *values* count too; use
  /// strictly_equals for OF1.0 strict-match semantics).
  friend bool operator==(const Match&, const Match&) = default;

  std::string to_string() const;

  void encode(ByteWriter& w) const;
  static Match decode(ByteReader& r);
};

/// Canonicalizes `key` under an ofp_flow_wildcards mask: wildcarded fields
/// are zeroed and the CIDR fields are masked to their significant bits, so
/// two keys compare equal iff they are indistinguishable to any match with
/// exactly these wildcards. Two same-wildcards matches are strictly_equals
/// iff their masked key projections are equal — the property the flow
/// table's per-mask wildcard buckets are built on.
pkt::FlowKey masked_flow_key(const pkt::FlowKey& key, std::uint32_t wildcards);

}  // namespace attain::ofp
