#include "ofp/stamp.hpp"

#include <algorithm>
#include <array>
#include <variant>

#include "ofp/codec.hpp"

namespace attain::ofp {

namespace {

// Probe values whose big-endian encodings differ in every byte (B = ~A), so
// a diff between the two probe encodings exposes the field's full byte span.
constexpr std::array<std::uint8_t, 6> kProbeA = {0x13, 0x24, 0x35, 0x46, 0x57, 0x68};

std::uint64_t probe_value(std::size_t width, bool inverted) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < width; ++i) {
    value = (value << 8) | static_cast<std::uint64_t>(inverted ? ~kProbeA[i] & 0xff : kProbeA[i]);
  }
  return value;
}

void store_be(Bytes& wire, std::size_t offset, std::uint64_t value, std::size_t width) {
  for (std::size_t i = 0; i < width; ++i) {
    wire[offset + i] = static_cast<std::uint8_t>(value >> (8 * (width - 1 - i)));
  }
}

bool match_be(const Bytes& wire, std::size_t offset, std::uint64_t value, std::size_t width) {
  for (std::size_t i = 0; i < width; ++i) {
    if (wire[offset + i] != static_cast<std::uint8_t>(value >> (8 * (width - 1 - i)))) return false;
  }
  return true;
}

std::optional<std::size_t> locate_probe(const Bytes& e1, const Bytes& e2, std::uint64_t a,
                                        std::uint64_t b, std::size_t width) {
  std::optional<std::size_t> found;
  if (e1.size() != e2.size() || e1.size() < width) return std::nullopt;
  for (std::size_t p = 0; p + width <= e1.size(); ++p) {
    if (match_be(e1, p, a, width) && match_be(e2, p, b, width)) {
      if (found) return std::nullopt;  // ambiguous
      found = p;
    }
  }
  return found;
}

/// Applies `set` to a copy of the prototype for each probe value, re-encodes
/// through the full codec, and accepts the offset only when a pure byte
/// patch reproduces the re-encode exactly.
template <typename Setter>
std::optional<std::size_t> discover_field(const Message& prototype, std::size_t wire_size,
                                          Setter set, std::size_t width) {
  const std::uint64_t a = probe_value(width, false);
  const std::uint64_t b = probe_value(width, true);
  Message m1 = prototype;
  Message m2 = prototype;
  if (!set(m1, a) || !set(m2, b)) return std::nullopt;
  const Bytes e1 = encode(m1);
  const Bytes e2 = encode(m2);
  if (e1.size() != wire_size || e2.size() != wire_size) return std::nullopt;
  const std::optional<std::size_t> offset = locate_probe(e1, e2, a, b, width);
  if (!offset) return std::nullopt;
  Bytes candidate = e1;
  store_be(candidate, *offset, b, width);
  if (!std::equal(candidate.begin(), candidate.end(), e2.begin())) return std::nullopt;
  return offset;
}

bool set_buffer_id_field(Message& m, std::uint64_t v) {
  return std::visit(
      [v](auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, PacketIn> || std::is_same_v<T, PacketOut> ||
                      std::is_same_v<T, FlowMod>) {
          body.buffer_id = static_cast<std::uint32_t>(v);
          return true;
        } else {
          return false;
        }
      },
      m.body);
}

bool set_in_port_field(Message& m, std::uint64_t v) {
  return std::visit(
      [v](auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, PacketIn> || std::is_same_v<T, PacketOut>) {
          body.in_port = static_cast<std::uint16_t>(v);
          return true;
        } else {
          return false;
        }
      },
      m.body);
}

bool set_total_len_field(Message& m, std::uint64_t v) {
  if (auto* pin = std::get_if<PacketIn>(&m.body)) {
    pin->total_len = static_cast<std::uint16_t>(v);
    return true;
  }
  return false;
}

/// The trailing raw-data member of the body types that carry one.
Bytes* data_field(Message& m) {
  return std::visit(
      [](auto& body) -> Bytes* {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, Error> || std::is_same_v<T, EchoRequest> ||
                      std::is_same_v<T, EchoReply> || std::is_same_v<T, Vendor> ||
                      std::is_same_v<T, PacketIn> || std::is_same_v<T, PacketOut>) {
          return &body.data;
        } else {
          return nullptr;
        }
      },
      m.body);
}

void fill_pattern(Bytes& data, bool inverted) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::uint8_t base = kProbeA[i % kProbeA.size()];
    data[i] = inverted ? static_cast<std::uint8_t>(~base) : base;
  }
}

bool match_pattern(const Bytes& wire, std::size_t offset, std::size_t size, bool inverted) {
  for (std::size_t i = 0; i < size; ++i) {
    const std::uint8_t base = kProbeA[i % kProbeA.size()];
    if (wire[offset + i] != (inverted ? static_cast<std::uint8_t>(~base) : base)) return false;
  }
  return true;
}

/// Locates the trailing raw-data region by splicing two full-length probe
/// patterns through the codec and requiring a same-length byte splice to
/// reproduce the re-encode.
std::optional<std::size_t> discover_data(const Message& prototype, std::size_t wire_size,
                                         std::size_t data_size) {
  if (data_size == 0) return std::nullopt;
  Message m1 = prototype;
  Message m2 = prototype;
  fill_pattern(*data_field(m1), false);
  fill_pattern(*data_field(m2), true);
  const Bytes e1 = encode(m1);
  const Bytes e2 = encode(m2);
  if (e1.size() != wire_size || e2.size() != wire_size) return std::nullopt;
  std::optional<std::size_t> found;
  for (std::size_t p = 0; p + data_size <= e1.size(); ++p) {
    if (match_pattern(e1, p, data_size, false) && match_pattern(e2, p, data_size, true)) {
      if (found) return std::nullopt;  // ambiguous
      found = p;
    }
  }
  if (!found) return std::nullopt;
  Bytes candidate = e1;
  for (std::size_t i = 0; i < data_size; ++i) {
    candidate[*found + i] = e2[*found + i];
  }
  if (!std::equal(candidate.begin(), candidate.end(), e2.begin())) return std::nullopt;
  return found;
}

}  // namespace

StampedTemplate::StampedTemplate(Message prototype) : message_(std::move(prototype)) {
  wire_ = encode(message_);
  discover();
}

void StampedTemplate::discover() {
  xid_off_ = discover_field(
      message_, wire_.size(),
      [](Message& m, std::uint64_t v) {
        m.xid = static_cast<std::uint32_t>(v);
        return true;
      },
      4);
  buffer_id_off_ = discover_field(message_, wire_.size(), set_buffer_id_field, 4);
  in_port_off_ = discover_field(message_, wire_.size(), set_in_port_field, 2);
  total_len_off_ = discover_field(message_, wire_.size(), set_total_len_field, 2);
  if (Bytes* data = data_field(message_)) {
    data_size_ = data->size();
    data_off_ = discover_data(message_, wire_.size(), data_size_);
  }
}

bool StampedTemplate::set_xid(std::uint32_t xid) {
  if (!xid_off_) return false;
  message_.xid = xid;
  store_be(wire_, *xid_off_, xid, 4);
  return true;
}

bool StampedTemplate::set_buffer_id(std::uint32_t buffer_id) {
  if (!buffer_id_off_) return false;
  set_buffer_id_field(message_, buffer_id);
  store_be(wire_, *buffer_id_off_, buffer_id, 4);
  return true;
}

bool StampedTemplate::set_in_port(std::uint16_t in_port) {
  if (!in_port_off_) return false;
  set_in_port_field(message_, in_port);
  store_be(wire_, *in_port_off_, in_port, 2);
  return true;
}

bool StampedTemplate::set_total_len(std::uint16_t total_len) {
  if (!total_len_off_) return false;
  set_total_len_field(message_, total_len);
  store_be(wire_, *total_len_off_, total_len, 2);
  return true;
}

bool StampedTemplate::set_data(std::span<const std::uint8_t> data) {
  if (!can_stamp_data(data.size())) return false;
  Bytes* field = data_field(message_);
  field->assign(data.begin(), data.end());
  std::copy(data.begin(), data.end(), wire_.begin() + static_cast<long>(*data_off_));
  return true;
}

}  // namespace attain::ofp
