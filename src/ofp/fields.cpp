#include "ofp/fields.hpp"

#include <array>

namespace attain::ofp {

namespace {

constexpr std::uint32_t type_bit(MsgType t) { return 1u << static_cast<unsigned>(t); }

constexpr std::uint32_t kAllTypes = (1u << 20) - 1;  // MsgType wire values 0..19

struct FieldSpec {
  std::string_view path;
  std::uint32_t presence;  // message types where get_field yields a value
};

constexpr std::uint32_t kMatchTypes = type_bit(MsgType::FlowMod) | type_bit(MsgType::FlowRemoved);

/// Indexed by FieldId. Order must match the enum exactly (statically
/// asserted below via kFieldIdCount; agreement with the accessors is
/// asserted field-by-field in test_ofp_fields.cpp).
constexpr std::array<FieldSpec, kFieldIdCount> kFields = {{
    {"xid", kAllTypes},
    {"command", type_bit(MsgType::FlowMod)},
    {"idle_timeout", type_bit(MsgType::FlowMod) | type_bit(MsgType::FlowRemoved)},
    {"hard_timeout", type_bit(MsgType::FlowMod)},
    {"priority", type_bit(MsgType::FlowMod) | type_bit(MsgType::FlowRemoved)},
    {"buffer_id",
     type_bit(MsgType::FlowMod) | type_bit(MsgType::PacketIn) | type_bit(MsgType::PacketOut)},
    {"out_port", type_bit(MsgType::FlowMod)},
    {"flags",
     type_bit(MsgType::FlowMod) | type_bit(MsgType::SetConfig) | type_bit(MsgType::GetConfigReply)},
    {"cookie", type_bit(MsgType::FlowMod) | type_bit(MsgType::FlowRemoved)},
    {"n_actions", type_bit(MsgType::FlowMod) | type_bit(MsgType::PacketOut)},
    {"total_len", type_bit(MsgType::PacketIn)},
    {"in_port", type_bit(MsgType::PacketIn) | type_bit(MsgType::PacketOut)},
    {"reason",
     type_bit(MsgType::PacketIn) | type_bit(MsgType::FlowRemoved) | type_bit(MsgType::PortStatus)},
    {"packet_count", type_bit(MsgType::FlowRemoved)},
    {"byte_count", type_bit(MsgType::FlowRemoved)},
    {"duration_sec", type_bit(MsgType::FlowRemoved)},
    {"datapath_id", type_bit(MsgType::FeaturesReply)},
    {"n_buffers", type_bit(MsgType::FeaturesReply)},
    {"n_tables", type_bit(MsgType::FeaturesReply)},
    {"n_ports", type_bit(MsgType::FeaturesReply)},
    {"miss_send_len", type_bit(MsgType::SetConfig) | type_bit(MsgType::GetConfigReply)},
    {"port_no", type_bit(MsgType::PortStatus) | type_bit(MsgType::PortMod)},
    {"config", type_bit(MsgType::PortMod)},
    {"mask", type_bit(MsgType::PortMod)},
    {"err_type", type_bit(MsgType::Error)},
    {"err_code", type_bit(MsgType::Error)},
    {"stats_type", type_bit(MsgType::StatsRequest) | type_bit(MsgType::StatsReply)},
    {"data_len", type_bit(MsgType::EchoRequest) | type_bit(MsgType::EchoReply)},
    {"vendor", type_bit(MsgType::Vendor)},
    {"match.in_port", kMatchTypes},
    {"match.dl_src", kMatchTypes},
    {"match.dl_dst", kMatchTypes},
    {"match.dl_vlan", kMatchTypes},
    {"match.dl_vlan_pcp", kMatchTypes},
    {"match.dl_type", kMatchTypes},
    {"match.nw_tos", kMatchTypes},
    {"match.nw_proto", kMatchTypes},
    {"match.nw_src", kMatchTypes},
    {"match.nw_dst", kMatchTypes},
    {"match.tp_src", kMatchTypes},
    {"match.tp_dst", kMatchTypes},
    {"match.wildcards", kMatchTypes},
    {"match.nw_src_wild_bits", kMatchTypes},
    {"match.nw_dst_wild_bits", kMatchTypes},
}};

std::optional<FieldValue> get_match_field(const Match& m, FieldId id) {
  switch (id) {
    case FieldId::MatchInPort: return m.in_port;
    case FieldId::MatchDlSrc: return m.dl_src.to_u64();
    case FieldId::MatchDlDst: return m.dl_dst.to_u64();
    case FieldId::MatchDlVlan: return m.dl_vlan;
    case FieldId::MatchDlVlanPcp: return m.dl_vlan_pcp;
    case FieldId::MatchDlType: return m.dl_type;
    case FieldId::MatchNwTos: return m.nw_tos;
    case FieldId::MatchNwProto: return m.nw_proto;
    case FieldId::MatchNwSrc: return m.nw_src.value;
    case FieldId::MatchNwDst: return m.nw_dst.value;
    case FieldId::MatchTpSrc: return m.tp_src;
    case FieldId::MatchTpDst: return m.tp_dst;
    case FieldId::MatchWildcards: return m.wildcards;
    case FieldId::MatchNwSrcWildBits: return m.nw_src_wild_bits();
    case FieldId::MatchNwDstWildBits: return m.nw_dst_wild_bits();
    default: return std::nullopt;
  }
}

bool set_match_field(Match& m, FieldId id, FieldValue v) {
  switch (id) {
    case FieldId::MatchInPort: m.in_port = static_cast<std::uint16_t>(v); break;
    case FieldId::MatchDlSrc: m.dl_src = pkt::MacAddress::from_u64(v); break;
    case FieldId::MatchDlDst: m.dl_dst = pkt::MacAddress::from_u64(v); break;
    case FieldId::MatchDlVlan: m.dl_vlan = static_cast<std::uint16_t>(v); break;
    case FieldId::MatchDlVlanPcp: m.dl_vlan_pcp = static_cast<std::uint8_t>(v); break;
    case FieldId::MatchDlType: m.dl_type = static_cast<std::uint16_t>(v); break;
    case FieldId::MatchNwTos: m.nw_tos = static_cast<std::uint8_t>(v); break;
    case FieldId::MatchNwProto: m.nw_proto = static_cast<std::uint8_t>(v); break;
    case FieldId::MatchNwSrc: m.nw_src.value = static_cast<std::uint32_t>(v); break;
    case FieldId::MatchNwDst: m.nw_dst.value = static_cast<std::uint32_t>(v); break;
    case FieldId::MatchTpSrc: m.tp_src = static_cast<std::uint16_t>(v); break;
    case FieldId::MatchTpDst: m.tp_dst = static_cast<std::uint16_t>(v); break;
    case FieldId::MatchWildcards: m.wildcards = static_cast<std::uint32_t>(v); break;
    case FieldId::MatchNwSrcWildBits: m.set_nw_src_wild_bits(static_cast<std::uint32_t>(v)); break;
    case FieldId::MatchNwDstWildBits: m.set_nw_dst_wild_bits(static_cast<std::uint32_t>(v)); break;
    default: return false;
  }
  return true;
}

constexpr bool is_match_field(FieldId id) {
  return static_cast<unsigned>(id) >= static_cast<unsigned>(FieldId::MatchInPort);
}

}  // namespace

std::optional<FieldId> field_id(std::string_view path) {
  for (std::size_t i = 0; i < kFields.size(); ++i) {
    if (kFields[i].path == path) return static_cast<FieldId>(i);
  }
  return std::nullopt;
}

std::string_view field_path(FieldId id) { return kFields[static_cast<std::size_t>(id)].path; }

std::uint32_t field_presence_mask(FieldId id) {
  return kFields[static_cast<std::size_t>(id)].presence;
}

std::optional<FieldValue> get_field(const Message& msg, FieldId id) {
  if (id == FieldId::Xid) return msg.xid;

  if (const auto* m = std::get_if<FlowMod>(&msg.body)) {
    if (is_match_field(id)) return get_match_field(m->match, id);
    switch (id) {
      case FieldId::Command: return static_cast<FieldValue>(m->command);
      case FieldId::IdleTimeout: return m->idle_timeout;
      case FieldId::HardTimeout: return m->hard_timeout;
      case FieldId::Priority: return m->priority;
      case FieldId::BufferId: return m->buffer_id;
      case FieldId::OutPort: return m->out_port;
      case FieldId::Flags: return m->flags;
      case FieldId::Cookie: return m->cookie;
      case FieldId::NActions: return m->actions.size();
      default: break;
    }
  } else if (const auto* m = std::get_if<PacketIn>(&msg.body)) {
    switch (id) {
      case FieldId::BufferId: return m->buffer_id;
      case FieldId::TotalLen: return m->total_len;
      case FieldId::InPort: return m->in_port;
      case FieldId::Reason: return static_cast<FieldValue>(m->reason);
      default: break;
    }
  } else if (const auto* m = std::get_if<PacketOut>(&msg.body)) {
    switch (id) {
      case FieldId::BufferId: return m->buffer_id;
      case FieldId::InPort: return m->in_port;
      case FieldId::NActions: return m->actions.size();
      default: break;
    }
  } else if (const auto* m = std::get_if<FlowRemoved>(&msg.body)) {
    if (is_match_field(id)) return get_match_field(m->match, id);
    switch (id) {
      case FieldId::Reason: return static_cast<FieldValue>(m->reason);
      case FieldId::Priority: return m->priority;
      case FieldId::IdleTimeout: return m->idle_timeout;
      case FieldId::PacketCount: return m->packet_count;
      case FieldId::ByteCount: return m->byte_count;
      case FieldId::DurationSec: return m->duration_sec;
      case FieldId::Cookie: return m->cookie;
      default: break;
    }
  } else if (const auto* m = std::get_if<FeaturesReply>(&msg.body)) {
    switch (id) {
      case FieldId::DatapathId: return m->datapath_id;
      case FieldId::NBuffers: return m->n_buffers;
      case FieldId::NTables: return m->n_tables;
      case FieldId::NPorts: return m->ports.size();
      default: break;
    }
  } else if (const auto* m = std::get_if<SetConfig>(&msg.body)) {
    switch (id) {
      case FieldId::Flags: return m->flags;
      case FieldId::MissSendLen: return m->miss_send_len;
      default: break;
    }
  } else if (const auto* m = std::get_if<GetConfigReply>(&msg.body)) {
    switch (id) {
      case FieldId::Flags: return m->flags;
      case FieldId::MissSendLen: return m->miss_send_len;
      default: break;
    }
  } else if (const auto* m = std::get_if<PortStatus>(&msg.body)) {
    switch (id) {
      case FieldId::Reason: return static_cast<FieldValue>(m->reason);
      case FieldId::PortNo: return m->desc.port_no;
      default: break;
    }
  } else if (const auto* m = std::get_if<Error>(&msg.body)) {
    switch (id) {
      case FieldId::ErrType: return static_cast<FieldValue>(m->type);
      case FieldId::ErrCode: return m->code;
      default: break;
    }
  } else if (const auto* m = std::get_if<PortMod>(&msg.body)) {
    switch (id) {
      case FieldId::PortNo: return m->port_no;
      case FieldId::Config: return m->config;
      case FieldId::Mask: return m->mask;
      default: break;
    }
  } else if (const auto* m = std::get_if<StatsRequest>(&msg.body)) {
    if (id == FieldId::StatsType) return static_cast<FieldValue>(m->stats_type());
  } else if (const auto* m = std::get_if<StatsReply>(&msg.body)) {
    if (id == FieldId::StatsType) return static_cast<FieldValue>(m->stats_type());
  } else if (const auto* m = std::get_if<EchoRequest>(&msg.body)) {
    if (id == FieldId::DataLen) return m->data.size();
  } else if (const auto* m = std::get_if<EchoReply>(&msg.body)) {
    if (id == FieldId::DataLen) return m->data.size();
  } else if (const auto* m = std::get_if<Vendor>(&msg.body)) {
    if (id == FieldId::Vendor) return m->vendor;
  }
  return std::nullopt;
}

bool set_field(Message& msg, FieldId id, FieldValue value) {
  if (id == FieldId::Xid) {
    msg.xid = static_cast<std::uint32_t>(value);
    return true;
  }

  if (auto* m = std::get_if<FlowMod>(&msg.body)) {
    if (is_match_field(id)) return set_match_field(m->match, id, value);
    switch (id) {
      case FieldId::Command: m->command = static_cast<FlowModCommand>(value); return true;
      case FieldId::IdleTimeout: m->idle_timeout = static_cast<std::uint16_t>(value); return true;
      case FieldId::HardTimeout: m->hard_timeout = static_cast<std::uint16_t>(value); return true;
      case FieldId::Priority: m->priority = static_cast<std::uint16_t>(value); return true;
      case FieldId::BufferId: m->buffer_id = static_cast<std::uint32_t>(value); return true;
      case FieldId::OutPort: m->out_port = static_cast<std::uint16_t>(value); return true;
      case FieldId::Flags: m->flags = static_cast<std::uint16_t>(value); return true;
      case FieldId::Cookie: m->cookie = value; return true;
      default: return false;
    }
  }
  if (auto* m = std::get_if<PacketIn>(&msg.body)) {
    switch (id) {
      case FieldId::BufferId: m->buffer_id = static_cast<std::uint32_t>(value); return true;
      case FieldId::TotalLen: m->total_len = static_cast<std::uint16_t>(value); return true;
      case FieldId::InPort: m->in_port = static_cast<std::uint16_t>(value); return true;
      case FieldId::Reason: m->reason = static_cast<PacketInReason>(value); return true;
      default: return false;
    }
  }
  if (auto* m = std::get_if<PacketOut>(&msg.body)) {
    switch (id) {
      case FieldId::BufferId: m->buffer_id = static_cast<std::uint32_t>(value); return true;
      case FieldId::InPort: m->in_port = static_cast<std::uint16_t>(value); return true;
      default: return false;
    }
  }
  if (auto* m = std::get_if<SetConfig>(&msg.body)) {
    switch (id) {
      case FieldId::Flags: m->flags = static_cast<std::uint16_t>(value); return true;
      case FieldId::MissSendLen: m->miss_send_len = static_cast<std::uint16_t>(value); return true;
      default: return false;
    }
  }
  if (auto* m = std::get_if<PortMod>(&msg.body)) {
    switch (id) {
      case FieldId::PortNo: m->port_no = static_cast<std::uint16_t>(value); return true;
      case FieldId::Config: m->config = static_cast<std::uint32_t>(value); return true;
      case FieldId::Mask: m->mask = static_cast<std::uint32_t>(value); return true;
      default: return false;
    }
  }
  return false;
}

std::optional<FieldValue> get_field(const Message& msg, std::string_view path) {
  const auto id = field_id(path);
  if (!id) return std::nullopt;
  return get_field(msg, *id);
}

bool set_field(Message& msg, std::string_view path, FieldValue value) {
  const auto id = field_id(path);
  if (!id) return false;
  return set_field(msg, *id, value);
}

std::vector<std::string> field_names(MsgType type) {
  std::vector<std::string> names;
  const std::uint32_t bit = type_bit(type);
  // "xid" first, then plain fields, then match.* — the registry is laid out
  // in that order already.
  for (const FieldSpec& spec : kFields) {
    if ((spec.presence & bit) != 0) names.emplace_back(spec.path);
  }
  return names;
}

}  // namespace attain::ofp
