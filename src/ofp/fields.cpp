#include "ofp/fields.hpp"

namespace attain::ofp {

namespace {

std::optional<FieldValue> get_match_field(const Match& m, std::string_view f) {
  if (f == "in_port") return m.in_port;
  if (f == "dl_src") return m.dl_src.to_u64();
  if (f == "dl_dst") return m.dl_dst.to_u64();
  if (f == "dl_vlan") return m.dl_vlan;
  if (f == "dl_vlan_pcp") return m.dl_vlan_pcp;
  if (f == "dl_type") return m.dl_type;
  if (f == "nw_tos") return m.nw_tos;
  if (f == "nw_proto") return m.nw_proto;
  if (f == "nw_src") return m.nw_src.value;
  if (f == "nw_dst") return m.nw_dst.value;
  if (f == "tp_src") return m.tp_src;
  if (f == "tp_dst") return m.tp_dst;
  if (f == "wildcards") return m.wildcards;
  if (f == "nw_src_wild_bits") return m.nw_src_wild_bits();
  if (f == "nw_dst_wild_bits") return m.nw_dst_wild_bits();
  return std::nullopt;
}

bool set_match_field(Match& m, std::string_view f, FieldValue v) {
  if (f == "in_port") m.in_port = static_cast<std::uint16_t>(v);
  else if (f == "dl_src") m.dl_src = pkt::MacAddress::from_u64(v);
  else if (f == "dl_dst") m.dl_dst = pkt::MacAddress::from_u64(v);
  else if (f == "dl_vlan") m.dl_vlan = static_cast<std::uint16_t>(v);
  else if (f == "dl_vlan_pcp") m.dl_vlan_pcp = static_cast<std::uint8_t>(v);
  else if (f == "dl_type") m.dl_type = static_cast<std::uint16_t>(v);
  else if (f == "nw_tos") m.nw_tos = static_cast<std::uint8_t>(v);
  else if (f == "nw_proto") m.nw_proto = static_cast<std::uint8_t>(v);
  else if (f == "nw_src") m.nw_src.value = static_cast<std::uint32_t>(v);
  else if (f == "nw_dst") m.nw_dst.value = static_cast<std::uint32_t>(v);
  else if (f == "tp_src") m.tp_src = static_cast<std::uint16_t>(v);
  else if (f == "tp_dst") m.tp_dst = static_cast<std::uint16_t>(v);
  else if (f == "wildcards") m.wildcards = static_cast<std::uint32_t>(v);
  else if (f == "nw_src_wild_bits") m.set_nw_src_wild_bits(static_cast<std::uint32_t>(v));
  else if (f == "nw_dst_wild_bits") m.set_nw_dst_wild_bits(static_cast<std::uint32_t>(v));
  else return false;
  return true;
}

/// Splits "match.nw_src" into ("match", "nw_src"); no dot yields ("", path).
std::pair<std::string_view, std::string_view> split_path(std::string_view path) {
  const std::size_t dot = path.find('.');
  if (dot == std::string_view::npos) return {"", path};
  return {path.substr(0, dot), path.substr(dot + 1)};
}

}  // namespace

std::optional<FieldValue> get_field(const Message& msg, std::string_view path) {
  if (path == "xid") return msg.xid;
  const auto [head, tail] = split_path(path);

  if (const auto* m = std::get_if<FlowMod>(&msg.body)) {
    if (head == "match") return get_match_field(m->match, tail);
    if (path == "command") return static_cast<FieldValue>(m->command);
    if (path == "idle_timeout") return m->idle_timeout;
    if (path == "hard_timeout") return m->hard_timeout;
    if (path == "priority") return m->priority;
    if (path == "buffer_id") return m->buffer_id;
    if (path == "out_port") return m->out_port;
    if (path == "flags") return m->flags;
    if (path == "cookie") return m->cookie;
    if (path == "n_actions") return m->actions.size();
  } else if (const auto* m = std::get_if<PacketIn>(&msg.body)) {
    if (path == "buffer_id") return m->buffer_id;
    if (path == "total_len") return m->total_len;
    if (path == "in_port") return m->in_port;
    if (path == "reason") return static_cast<FieldValue>(m->reason);
  } else if (const auto* m = std::get_if<PacketOut>(&msg.body)) {
    if (path == "buffer_id") return m->buffer_id;
    if (path == "in_port") return m->in_port;
    if (path == "n_actions") return m->actions.size();
  } else if (const auto* m = std::get_if<FlowRemoved>(&msg.body)) {
    if (head == "match") return get_match_field(m->match, tail);
    if (path == "reason") return static_cast<FieldValue>(m->reason);
    if (path == "priority") return m->priority;
    if (path == "idle_timeout") return m->idle_timeout;
    if (path == "packet_count") return m->packet_count;
    if (path == "byte_count") return m->byte_count;
    if (path == "duration_sec") return m->duration_sec;
    if (path == "cookie") return m->cookie;
  } else if (const auto* m = std::get_if<FeaturesReply>(&msg.body)) {
    if (path == "datapath_id") return m->datapath_id;
    if (path == "n_buffers") return m->n_buffers;
    if (path == "n_tables") return m->n_tables;
    if (path == "n_ports") return m->ports.size();
  } else if (const auto* m = std::get_if<SetConfig>(&msg.body)) {
    if (path == "flags") return m->flags;
    if (path == "miss_send_len") return m->miss_send_len;
  } else if (const auto* m = std::get_if<GetConfigReply>(&msg.body)) {
    if (path == "flags") return m->flags;
    if (path == "miss_send_len") return m->miss_send_len;
  } else if (const auto* m = std::get_if<PortStatus>(&msg.body)) {
    if (path == "reason") return static_cast<FieldValue>(m->reason);
    if (path == "port_no") return m->desc.port_no;
  } else if (const auto* m = std::get_if<Error>(&msg.body)) {
    if (path == "err_type") return static_cast<FieldValue>(m->type);
    if (path == "err_code") return m->code;
  } else if (const auto* m = std::get_if<PortMod>(&msg.body)) {
    if (path == "port_no") return m->port_no;
    if (path == "config") return m->config;
    if (path == "mask") return m->mask;
  } else if (const auto* m = std::get_if<StatsRequest>(&msg.body)) {
    if (path == "stats_type") return static_cast<FieldValue>(m->stats_type());
  } else if (const auto* m = std::get_if<StatsReply>(&msg.body)) {
    if (path == "stats_type") return static_cast<FieldValue>(m->stats_type());
  } else if (const auto* m = std::get_if<EchoRequest>(&msg.body)) {
    if (path == "data_len") return m->data.size();
  } else if (const auto* m = std::get_if<EchoReply>(&msg.body)) {
    if (path == "data_len") return m->data.size();
  } else if (const auto* m = std::get_if<Vendor>(&msg.body)) {
    if (path == "vendor") return m->vendor;
  }
  return std::nullopt;
}

bool set_field(Message& msg, std::string_view path, FieldValue value) {
  if (path == "xid") {
    msg.xid = static_cast<std::uint32_t>(value);
    return true;
  }
  const auto [head, tail] = split_path(path);

  if (auto* m = std::get_if<FlowMod>(&msg.body)) {
    if (head == "match") return set_match_field(m->match, tail, value);
    if (path == "command") m->command = static_cast<FlowModCommand>(value);
    else if (path == "idle_timeout") m->idle_timeout = static_cast<std::uint16_t>(value);
    else if (path == "hard_timeout") m->hard_timeout = static_cast<std::uint16_t>(value);
    else if (path == "priority") m->priority = static_cast<std::uint16_t>(value);
    else if (path == "buffer_id") m->buffer_id = static_cast<std::uint32_t>(value);
    else if (path == "out_port") m->out_port = static_cast<std::uint16_t>(value);
    else if (path == "flags") m->flags = static_cast<std::uint16_t>(value);
    else if (path == "cookie") m->cookie = value;
    else return false;
    return true;
  }
  if (auto* m = std::get_if<PacketIn>(&msg.body)) {
    if (path == "buffer_id") m->buffer_id = static_cast<std::uint32_t>(value);
    else if (path == "total_len") m->total_len = static_cast<std::uint16_t>(value);
    else if (path == "in_port") m->in_port = static_cast<std::uint16_t>(value);
    else if (path == "reason") m->reason = static_cast<PacketInReason>(value);
    else return false;
    return true;
  }
  if (auto* m = std::get_if<PacketOut>(&msg.body)) {
    if (path == "buffer_id") m->buffer_id = static_cast<std::uint32_t>(value);
    else if (path == "in_port") m->in_port = static_cast<std::uint16_t>(value);
    else return false;
    return true;
  }
  if (auto* m = std::get_if<SetConfig>(&msg.body)) {
    if (path == "flags") m->flags = static_cast<std::uint16_t>(value);
    else if (path == "miss_send_len") m->miss_send_len = static_cast<std::uint16_t>(value);
    else return false;
    return true;
  }
  if (auto* m = std::get_if<PortMod>(&msg.body)) {
    if (path == "port_no") m->port_no = static_cast<std::uint16_t>(value);
    else if (path == "config") m->config = static_cast<std::uint32_t>(value);
    else if (path == "mask") m->mask = static_cast<std::uint32_t>(value);
    else return false;
    return true;
  }
  return false;
}

std::vector<std::string> field_names(MsgType type) {
  static const std::vector<std::string> match_fields = {
      "in_port", "dl_src",  "dl_dst", "dl_vlan", "dl_vlan_pcp",
      "dl_type", "nw_tos",  "nw_proto", "nw_src", "nw_dst",
      "tp_src",  "tp_dst",  "wildcards", "nw_src_wild_bits", "nw_dst_wild_bits"};
  std::vector<std::string> names = {"xid"};
  auto add_match = [&names] {
    for (const std::string& f : match_fields) names.push_back("match." + f);
  };
  switch (type) {
    case MsgType::FlowMod:
      for (const char* f : {"command", "idle_timeout", "hard_timeout", "priority", "buffer_id",
                            "out_port", "flags", "cookie", "n_actions"}) {
        names.emplace_back(f);
      }
      add_match();
      break;
    case MsgType::PacketIn:
      for (const char* f : {"buffer_id", "total_len", "in_port", "reason"}) names.emplace_back(f);
      break;
    case MsgType::PacketOut:
      for (const char* f : {"buffer_id", "in_port", "n_actions"}) names.emplace_back(f);
      break;
    case MsgType::FlowRemoved:
      for (const char* f : {"reason", "priority", "idle_timeout", "packet_count", "byte_count",
                            "duration_sec", "cookie"}) {
        names.emplace_back(f);
      }
      add_match();
      break;
    case MsgType::FeaturesReply:
      for (const char* f : {"datapath_id", "n_buffers", "n_tables", "n_ports"}) {
        names.emplace_back(f);
      }
      break;
    case MsgType::SetConfig:
    case MsgType::GetConfigReply:
      for (const char* f : {"flags", "miss_send_len"}) names.emplace_back(f);
      break;
    case MsgType::PortStatus:
      for (const char* f : {"reason", "port_no"}) names.emplace_back(f);
      break;
    case MsgType::Error:
      for (const char* f : {"err_type", "err_code"}) names.emplace_back(f);
      break;
    case MsgType::PortMod:
      for (const char* f : {"port_no", "config", "mask"}) names.emplace_back(f);
      break;
    case MsgType::StatsRequest:
    case MsgType::StatsReply:
      names.emplace_back("stats_type");
      break;
    case MsgType::EchoRequest:
    case MsgType::EchoReply:
      names.emplace_back("data_len");
      break;
    case MsgType::Vendor:
      names.emplace_back("vendor");
      break;
    default:
      break;
  }
  return names;
}

}  // namespace attain::ofp
