#include "ofp/match.hpp"

#include <algorithm>
#include <sstream>

#include "ofp/constants.hpp"

namespace attain::ofp {

namespace {

/// Mask of IPv4 bits that participate in matching given a wildcard bit
/// count (0 -> all 32 bits matter; >= 32 -> none do).
std::uint32_t nw_mask(std::uint32_t wild_bits) {
  if (wild_bits >= 32) return 0;
  return ~0u << wild_bits;
}

bool packet_l4_ports(const pkt::Packet& p, std::uint16_t& src, std::uint16_t& dst) {
  if (p.tcp) {
    src = p.tcp->src_port;
    dst = p.tcp->dst_port;
    return true;
  }
  if (p.udp) {
    src = p.udp->src_port;
    dst = p.udp->dst_port;
    return true;
  }
  if (p.icmp) {
    // OF1.0 reuses tp_src/tp_dst for ICMP type/code.
    src = static_cast<std::uint16_t>(p.icmp->type);
    dst = p.icmp->code;
    return true;
  }
  return false;
}

}  // namespace

void Match::set_nw_src_wild_bits(std::uint32_t bits) {
  bits = std::min(bits, 63u);
  wildcards = (wildcards & ~wc::kNwSrcMask) | (bits << wc::kNwSrcShift);
}

void Match::set_nw_dst_wild_bits(std::uint32_t bits) {
  bits = std::min(bits, 63u);
  wildcards = (wildcards & ~wc::kNwDstMask) | (bits << wc::kNwDstShift);
}

Match Match::from_packet(const pkt::Packet& p, std::uint16_t in_port) {
  Match m;
  m.wildcards = 0;
  m.in_port = in_port;
  m.dl_src = p.eth.src;
  m.dl_dst = p.eth.dst;
  m.dl_vlan = p.eth.vlan_id;
  m.dl_vlan_pcp = p.eth.vlan_pcp;
  m.dl_type = p.eth.ether_type;
  if (p.ipv4) {
    m.nw_tos = p.ipv4->tos;
    m.nw_proto = p.ipv4->proto;
    m.nw_src = p.ipv4->src;
    m.nw_dst = p.ipv4->dst;
    std::uint16_t tp_s = 0;
    std::uint16_t tp_d = 0;
    if (packet_l4_ports(p, tp_s, tp_d)) {
      m.tp_src = tp_s;
      m.tp_dst = tp_d;
    } else {
      m.wildcards |= wc::kTpSrc | wc::kTpDst;
    }
  } else if (p.arp) {
    // OF1.0 matches ARP opcode via nw_proto and sender/target IP via
    // nw_src/nw_dst (spec §3.4).
    m.nw_proto = static_cast<std::uint8_t>(static_cast<std::uint16_t>(p.arp->op));
    m.nw_src = p.arp->sender_ip;
    m.nw_dst = p.arp->target_ip;
    m.wildcards |= wc::kNwTos | wc::kTpSrc | wc::kTpDst;
  } else {
    m.wildcards |= wc::kNwTos | wc::kNwProto | wc::kTpSrc | wc::kTpDst;
    m.set_nw_src_wild_bits(32);
    m.set_nw_dst_wild_bits(32);
  }
  return m;
}

Match Match::l2_only(std::uint16_t in_port, pkt::MacAddress dl_src, pkt::MacAddress dl_dst) {
  Match m;
  m.wildcards = wc::kAll & ~(wc::kInPort | wc::kDlSrc | wc::kDlDst);
  m.in_port = in_port;
  m.dl_src = dl_src;
  m.dl_dst = dl_dst;
  return m;
}

bool Match::matches(const pkt::Packet& p, std::uint16_t port) const {
  if (!(wildcards & wc::kInPort) && in_port != port) return false;
  if (!(wildcards & wc::kDlSrc) && dl_src != p.eth.src) return false;
  if (!(wildcards & wc::kDlDst) && dl_dst != p.eth.dst) return false;
  if (!(wildcards & wc::kDlVlan) && dl_vlan != p.eth.vlan_id) return false;
  if (!(wildcards & wc::kDlVlanPcp) && dl_vlan_pcp != p.eth.vlan_pcp) return false;
  if (!(wildcards & wc::kDlType) && dl_type != p.eth.ether_type) return false;

  std::uint8_t pkt_tos = 0;
  std::uint8_t pkt_proto = 0;
  std::uint32_t pkt_nw_src = 0;
  std::uint32_t pkt_nw_dst = 0;
  if (p.ipv4) {
    pkt_tos = p.ipv4->tos;
    pkt_proto = p.ipv4->proto;
    pkt_nw_src = p.ipv4->src.value;
    pkt_nw_dst = p.ipv4->dst.value;
  } else if (p.arp) {
    pkt_proto = static_cast<std::uint8_t>(static_cast<std::uint16_t>(p.arp->op));
    pkt_nw_src = p.arp->sender_ip.value;
    pkt_nw_dst = p.arp->target_ip.value;
  }
  if (!(wildcards & wc::kNwTos) && nw_tos != pkt_tos) return false;
  if (!(wildcards & wc::kNwProto) && nw_proto != pkt_proto) return false;
  {
    const std::uint32_t mask = nw_mask(nw_src_wild_bits());
    if ((nw_src.value & mask) != (pkt_nw_src & mask)) return false;
  }
  {
    const std::uint32_t mask = nw_mask(nw_dst_wild_bits());
    if ((nw_dst.value & mask) != (pkt_nw_dst & mask)) return false;
  }

  std::uint16_t pkt_tp_src = 0;
  std::uint16_t pkt_tp_dst = 0;
  packet_l4_ports(p, pkt_tp_src, pkt_tp_dst);
  if (!(wildcards & wc::kTpSrc) && tp_src != pkt_tp_src) return false;
  if (!(wildcards & wc::kTpDst) && tp_dst != pkt_tp_dst) return false;
  return true;
}

bool Match::matches(const pkt::FlowKey& k) const {
  if (!(wildcards & wc::kInPort) && in_port != k.in_port) return false;
  if (!(wildcards & wc::kDlSrc) && dl_src.to_u64() != k.dl_src) return false;
  if (!(wildcards & wc::kDlDst) && dl_dst.to_u64() != k.dl_dst) return false;
  if (!(wildcards & wc::kDlVlan) && dl_vlan != k.dl_vlan) return false;
  if (!(wildcards & wc::kDlVlanPcp) && dl_vlan_pcp != k.dl_vlan_pcp) return false;
  if (!(wildcards & wc::kDlType) && dl_type != k.dl_type) return false;
  if (!(wildcards & wc::kNwTos) && nw_tos != k.nw_tos) return false;
  if (!(wildcards & wc::kNwProto) && nw_proto != k.nw_proto) return false;
  {
    const std::uint32_t mask = nw_mask(nw_src_wild_bits());
    if ((nw_src.value & mask) != (k.nw_src & mask)) return false;
  }
  {
    const std::uint32_t mask = nw_mask(nw_dst_wild_bits());
    if ((nw_dst.value & mask) != (k.nw_dst & mask)) return false;
  }
  if (!(wildcards & wc::kTpSrc) && tp_src != k.tp_src) return false;
  if (!(wildcards & wc::kTpDst) && tp_dst != k.tp_dst) return false;
  return true;
}

pkt::FlowKey Match::key_projection() const {
  pkt::FlowKey k;
  k.in_port = in_port;
  k.dl_src = dl_src.to_u64();
  k.dl_dst = dl_dst.to_u64();
  k.dl_vlan = dl_vlan;
  k.dl_vlan_pcp = dl_vlan_pcp;
  k.dl_type = dl_type;
  k.nw_tos = nw_tos;
  k.nw_proto = nw_proto;
  k.nw_src = nw_src.value;
  k.nw_dst = nw_dst.value;
  k.tp_src = tp_src;
  k.tp_dst = tp_dst;
  return k;
}

pkt::FlowKey masked_flow_key(const pkt::FlowKey& key, std::uint32_t wildcards) {
  pkt::FlowKey k = key;
  if (wildcards & wc::kInPort) k.in_port = 0;
  if (wildcards & wc::kDlSrc) k.dl_src = 0;
  if (wildcards & wc::kDlDst) k.dl_dst = 0;
  if (wildcards & wc::kDlVlan) k.dl_vlan = 0;
  if (wildcards & wc::kDlVlanPcp) k.dl_vlan_pcp = 0;
  if (wildcards & wc::kDlType) k.dl_type = 0;
  if (wildcards & wc::kNwTos) k.nw_tos = 0;
  if (wildcards & wc::kNwProto) k.nw_proto = 0;
  k.nw_src &= nw_mask((wildcards & wc::kNwSrcMask) >> wc::kNwSrcShift);
  k.nw_dst &= nw_mask((wildcards & wc::kNwDstMask) >> wc::kNwDstShift);
  if (wildcards & wc::kTpSrc) k.tp_src = 0;
  if (wildcards & wc::kTpDst) k.tp_dst = 0;
  return k;
}

bool Match::subsumes(const Match& other) const {
  // For every boolean-wildcard field: we must be wildcarded wherever the
  // other match is, and agree on values where both are exact.
  struct BoolField {
    std::uint32_t bit;
    bool values_equal;
  };
  const BoolField fields[] = {
      {wc::kInPort, in_port == other.in_port},
      {wc::kDlSrc, dl_src == other.dl_src},
      {wc::kDlDst, dl_dst == other.dl_dst},
      {wc::kDlVlan, dl_vlan == other.dl_vlan},
      {wc::kDlVlanPcp, dl_vlan_pcp == other.dl_vlan_pcp},
      {wc::kDlType, dl_type == other.dl_type},
      {wc::kNwTos, nw_tos == other.nw_tos},
      {wc::kNwProto, nw_proto == other.nw_proto},
      {wc::kTpSrc, tp_src == other.tp_src},
      {wc::kTpDst, tp_dst == other.tp_dst},
  };
  for (const auto& f : fields) {
    const bool self_wild = (wildcards & f.bit) != 0;
    const bool other_wild = (other.wildcards & f.bit) != 0;
    if (self_wild) continue;
    if (other_wild) return false;  // other is more general on this field
    if (!f.values_equal) return false;
  }
  // CIDR fields: our prefix must be no longer than theirs and agree.
  {
    const std::uint32_t self_bits = nw_src_wild_bits();
    const std::uint32_t other_bits = other.nw_src_wild_bits();
    if (self_bits < other_bits) return false;
    const std::uint32_t mask = nw_mask(self_bits);
    if ((nw_src.value & mask) != (other.nw_src.value & mask)) return false;
  }
  {
    const std::uint32_t self_bits = nw_dst_wild_bits();
    const std::uint32_t other_bits = other.nw_dst_wild_bits();
    if (self_bits < other_bits) return false;
    const std::uint32_t mask = nw_mask(self_bits);
    if ((nw_dst.value & mask) != (other.nw_dst.value & mask)) return false;
  }
  return true;
}

bool Match::strictly_equals(const Match& other) const {
  if (wildcards != other.wildcards) return false;
  return subsumes(other) && other.subsumes(*this);
}

std::string Match::to_string() const {
  if (wildcards == wc::kAll) return "match{*}";
  std::ostringstream out;
  out << "match{";
  const char* sep = "";
  auto field = [&](bool wild, const std::string& name, const std::string& value) {
    if (wild) return;
    out << sep << name << "=" << value;
    sep = ",";
  };
  field((wildcards & wc::kInPort) != 0, "in_port", std::to_string(in_port));
  field((wildcards & wc::kDlSrc) != 0, "dl_src", dl_src.to_string());
  field((wildcards & wc::kDlDst) != 0, "dl_dst", dl_dst.to_string());
  field((wildcards & wc::kDlVlan) != 0, "dl_vlan", std::to_string(dl_vlan));
  field((wildcards & wc::kDlVlanPcp) != 0, "dl_vlan_pcp", std::to_string(dl_vlan_pcp));
  field((wildcards & wc::kDlType) != 0, "dl_type", std::to_string(dl_type));
  field((wildcards & wc::kNwTos) != 0, "nw_tos", std::to_string(nw_tos));
  field((wildcards & wc::kNwProto) != 0, "nw_proto", std::to_string(nw_proto));
  field(nw_src_wild_bits() >= 32, "nw_src",
        nw_src.to_string() + "/" + std::to_string(32 - std::min(nw_src_wild_bits(), 32u)));
  field(nw_dst_wild_bits() >= 32, "nw_dst",
        nw_dst.to_string() + "/" + std::to_string(32 - std::min(nw_dst_wild_bits(), 32u)));
  field((wildcards & wc::kTpSrc) != 0, "tp_src", std::to_string(tp_src));
  field((wildcards & wc::kTpDst) != 0, "tp_dst", std::to_string(tp_dst));
  out << "}";
  return out.str();
}

void Match::encode(ByteWriter& w) const {
  w.u32(wildcards);
  w.u16(in_port);
  w.raw(dl_src.octets);
  w.raw(dl_dst.octets);
  w.u16(dl_vlan);
  w.u8(dl_vlan_pcp);
  w.pad(1);
  w.u16(dl_type);
  w.u8(nw_tos);
  w.u8(nw_proto);
  w.pad(2);
  w.u32(nw_src.value);
  w.u32(nw_dst.value);
  w.u16(tp_src);
  w.u16(tp_dst);
}

Match Match::decode(ByteReader& r) {
  Match m;
  m.wildcards = r.u32();
  m.in_port = r.u16();
  const auto src = r.view(6);
  std::copy(src.begin(), src.end(), m.dl_src.octets.begin());
  const auto dst = r.view(6);
  std::copy(dst.begin(), dst.end(), m.dl_dst.octets.begin());
  m.dl_vlan = r.u16();
  m.dl_vlan_pcp = r.u8();
  r.skip(1);
  m.dl_type = r.u16();
  m.nw_tos = r.u8();
  m.nw_proto = r.u8();
  r.skip(2);
  m.nw_src.value = r.u32();
  m.nw_dst.value = r.u32();
  m.tp_src = r.u16();
  m.tp_dst = r.u16();
  return m;
}

}  // namespace attain::ofp
