#include "ofp/fuzz.hpp"

#include "ofp/codec.hpp"

namespace attain::ofp {

void fuzz_frame(Bytes& frame, Rng& rng, const FuzzOptions& options) {
  const std::size_t start = options.preserve_header ? kHeaderSize : 0;
  if (frame.size() <= start) return;
  const std::size_t mutable_bits = (frame.size() - start) * 8;
  for (unsigned i = 0; i < options.bit_flips; ++i) {
    const std::size_t bit = static_cast<std::size_t>(rng.next_below(mutable_bits));
    frame[start + bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

std::optional<Message> fuzz_message(const Message& message, Rng& rng, const FuzzOptions& options) {
  Bytes frame = encode(message);
  fuzz_frame(frame, rng, options);
  try {
    return decode(frame);
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace attain::ofp
