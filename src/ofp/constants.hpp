// OpenFlow 1.0 protocol constants (OpenFlow Switch Specification v1.0.0,
// wire protocol 0x01). Names follow the spec's ofp_* enumerations.
#pragma once

#include <cstdint>
#include <string>

namespace attain::ofp {

inline constexpr std::uint8_t kVersion = 0x01;
inline constexpr std::size_t kHeaderSize = 8;
inline constexpr std::size_t kMatchSize = 40;

/// ofp_type: top-level message types.
enum class MsgType : std::uint8_t {
  Hello = 0,
  Error = 1,
  EchoRequest = 2,
  EchoReply = 3,
  Vendor = 4,
  FeaturesRequest = 5,
  FeaturesReply = 6,
  GetConfigRequest = 7,
  GetConfigReply = 8,
  SetConfig = 9,
  PacketIn = 10,
  FlowRemoved = 11,
  PortStatus = 12,
  PacketOut = 13,
  FlowMod = 14,
  PortMod = 15,
  StatsRequest = 16,
  StatsReply = 17,
  BarrierRequest = 18,
  BarrierReply = 19,
};

std::string to_string(MsgType type);

/// ofp_port: reserved port numbers.
enum class Port : std::uint16_t {
  Max = 0xff00,
  InPort = 0xfff8,
  Table = 0xfff9,
  Normal = 0xfffa,
  Flood = 0xfffb,
  All = 0xfffc,
  Controller = 0xfffd,
  Local = 0xfffe,
  None = 0xffff,
};

/// ofp_flow_mod_command.
enum class FlowModCommand : std::uint16_t {
  Add = 0,
  Modify = 1,
  ModifyStrict = 2,
  Delete = 3,
  DeleteStrict = 4,
};

std::string to_string(FlowModCommand command);

/// ofp_flow_mod_flags.
inline constexpr std::uint16_t kFlowModSendFlowRem = 1 << 0;
inline constexpr std::uint16_t kFlowModCheckOverlap = 1 << 1;
inline constexpr std::uint16_t kFlowModEmerg = 1 << 2;

/// ofp_packet_in_reason.
enum class PacketInReason : std::uint8_t { NoMatch = 0, Action = 1 };

/// ofp_flow_removed_reason.
enum class FlowRemovedReason : std::uint8_t {
  IdleTimeout = 0,
  HardTimeout = 1,
  Delete = 2,
};

/// ofp_port_reason (PORT_STATUS).
enum class PortReason : std::uint8_t { Add = 0, Delete = 1, Modify = 2 };

/// ofp_error_type.
enum class ErrorType : std::uint16_t {
  HelloFailed = 0,
  BadRequest = 1,
  BadAction = 2,
  FlowModFailed = 3,
  PortModFailed = 4,
  QueueOpFailed = 5,
};

/// ofp_stats_types.
enum class StatsType : std::uint16_t {
  Desc = 0,
  Flow = 1,
  Aggregate = 2,
  Table = 3,
  Port = 4,
  Queue = 5,
  Vendor = 0xffff,
};

/// ofp_action_type.
enum class ActionType : std::uint16_t {
  Output = 0,
  SetVlanVid = 1,
  SetVlanPcp = 2,
  StripVlan = 3,
  SetDlSrc = 4,
  SetDlDst = 5,
  SetNwSrc = 6,
  SetNwDst = 7,
  SetNwTos = 8,
  SetTpSrc = 9,
  SetTpDst = 10,
  Enqueue = 11,
};

/// "No buffer" sentinel for buffer_id fields.
inline constexpr std::uint32_t kNoBuffer = 0xffffffff;

/// OFP_VLAN_NONE: packet has no 802.1Q tag.
inline constexpr std::uint16_t kVlanNone = 0xffff;

/// Default TCP port a controller listens on (pre-IANA OpenFlow port).
inline constexpr std::uint16_t kDefaultControllerPort = 6633;

}  // namespace attain::ofp
