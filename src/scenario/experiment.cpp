#include "scenario/experiment.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <unordered_set>

#include "attain/dsl/parser.hpp"
#include "common/arena.hpp"
#include "packet/codec.hpp"
#include "packet/stamp.hpp"
#include "sim/batching.hpp"
#include "topo/generators.hpp"

namespace attain::scenario {

Testbed::Testbed(topo::SystemModel model, TestbedOptions options)
    : model_(std::move(model)), options_(options) {
  build();
}

dpl::Host& Testbed::host(const std::string& name) {
  const EntityId id = model_.require(name);
  if (id.kind != EntityKind::Host) throw std::invalid_argument(name + " is not a host");
  return *hosts_[id.index];
}

swsim::OpenFlowSwitch& Testbed::switch_named(const std::string& name) {
  const EntityId id = model_.require(name);
  if (id.kind != EntityKind::Switch) throw std::invalid_argument(name + " is not a switch");
  return *switches_[id.index];
}

void Testbed::build() {
  monitor_.set_counters_only(options_.monitor_counters_only);

  controller_ = ctl::make_controller(options_.controller, sched_, options_.controller_processing);

  injector_ = std::make_unique<inject::RuntimeInjector>(sched_, model_, monitor_);
  injector_->set_use_compiled(options_.use_compiled);

  // Hosts and switches.
  for (const topo::HostSpec& spec : model_.hosts()) {
    hosts_.push_back(std::make_unique<dpl::Host>(sched_, spec.name, spec.mac, spec.ip));
  }
  for (const topo::SwitchSpec& spec : model_.switches()) {
    swsim::SwitchConfig config;
    config.name = spec.name;
    config.dpid = spec.dpid;
    config.num_ports = spec.num_ports;
    config.fail_secure = spec.fail_secure;
    config.table_capacity = options_.table_capacity;
    switches_.push_back(std::make_unique<swsim::OpenFlowSwitch>(sched_, config));
  }

  // Data-plane links: one pipe per direction per link; switch packet
  // senders look their output pipe up by (switch index, port).
  std::map<std::pair<std::uint32_t, std::uint16_t>, sim::Pipe<pkt::Packet>*> switch_out;
  for (const topo::LinkSpec& link : model_.links()) {
    auto a_to_b = std::make_unique<sim::Pipe<pkt::Packet>>(sched_, options_.data_link);
    auto b_to_a = std::make_unique<sim::Pipe<pkt::Packet>>(sched_, options_.data_link);

    auto wire_receiver = [this](EntityId dst, std::optional<std::uint16_t> dst_port,
                                sim::Pipe<pkt::Packet>& pipe) {
      if (dst.kind == EntityKind::Host) {
        dpl::Host* h = hosts_[dst.index].get();
        pipe.set_receiver([h](pkt::Packet p) { h->on_packet(p); });
      } else {
        swsim::OpenFlowSwitch* sw = switches_[dst.index].get();
        const std::uint16_t port = dst_port.value();
        pipe.set_receiver([sw, port](pkt::Packet p) { sw->on_packet(port, std::move(p)); });
      }
    };
    wire_receiver(link.b, link.b_port, *a_to_b);
    wire_receiver(link.a, link.a_port, *b_to_a);

    auto wire_sender = [&](EntityId src, std::optional<std::uint16_t> src_port,
                           sim::Pipe<pkt::Packet>* pipe) {
      if (src.kind == EntityKind::Host) {
        hosts_[src.index]->set_sender(
            [pipe](pkt::Packet p) { pipe->send(p, p.wire_size()); });
      } else {
        switch_out[{src.index, src_port.value()}] = pipe;
      }
    };
    wire_sender(link.a, link.a_port, a_to_b.get());
    wire_sender(link.b, link.b_port, b_to_a.get());

    data_pipes_.push_back(std::move(a_to_b));
    data_pipes_.push_back(std::move(b_to_a));
  }
  for (std::uint32_t i = 0; i < switches_.size(); ++i) {
    swsim::OpenFlowSwitch* sw = switches_[i].get();
    auto lookup = switch_out;  // copy for capture (small)
    sw->set_packet_sender([i, lookup](std::uint16_t port, pkt::Packet p) {
      const auto it = lookup.find({i, port});
      if (it != lookup.end()) it->second->send(p, p.wire_size());
    });
  }

  // Control-plane connections: switch <-> proxy <-> controller, one
  // chan::Channel per connection (two duplex pipe segments inside). The
  // switch never talks to the controller directly — exactly the paper's
  // deployment. Frames travel as decode-once envelopes: the sender's
  // encode is the only mandatory codec op; the proxy and the far endpoint
  // reuse the cached typed view.
  for (const topo::ControlConnSpec& conn : model_.control_connections()) {
    swsim::OpenFlowSwitch* sw = switches_[conn.id.sw.index].get();

    chan::ChannelConfig channel_config;
    channel_config.name = model_.name_of(conn.id.sw) + "<->" + model_.name_of(conn.id.controller);
    channel_config.tls = conn.tls;
    channel_config.segment = options_.control_link;
    auto channel = std::make_unique<chan::Channel>(sched_, channel_config);

    const ctl::ConnHandle handle = controller_->add_connection(channel->controller_sender());

    channel->set_switch_sink(
        [sw](chan::Envelope e) { sw->on_control_envelope(std::move(e)); });
    channel->set_controller_sink([this, handle](chan::Envelope e) {
      controller_->on_envelope(handle, std::move(e));
    });

    injector_->attach_channel(*channel, conn.id);

    sw->set_control_sender(channel->switch_sender());

    channels_.push_back(std::move(channel));
  }
}

chan::DirectionCounters Testbed::channel_totals() const {
  chan::DirectionCounters totals;
  for (const auto& channel : channels_) totals.add(channel->totals());
  return totals;
}

void Testbed::connect_switches_at(SimTime when) {
  for (auto& sw : switches_) {
    sched_.at(when, [s = sw.get()] { s->connect(); });
  }
}

dsl::CompiledAttack Testbed::compile_attack(const std::string& dsl_source) {
  const dsl::Document doc = dsl::parse_document(dsl_source, model_);
  if (doc.attacks.empty()) throw std::invalid_argument("DSL source declares no attack");
  return dsl::compile(doc.attacks.front(), model_, doc.capabilities);
}

void Testbed::arm_attack_at(SimTime when, const std::string& dsl_source) {
  const dsl::Document doc = dsl::parse_document(dsl_source, model_);
  if (doc.attacks.empty()) throw std::invalid_argument("DSL source declares no attack");
  arm_attack_at(when, doc.attacks.front(), doc.capabilities);
}

void Testbed::arm_attack_at(SimTime when, const lang::Attack& attack,
                            const model::CapabilityMap& capabilities) {
  auto armed = std::make_unique<ArmedAttack>();
  armed->capabilities = capabilities;
  armed->attack = dsl::compile(attack, model_, armed->capabilities);
  ArmedAttack* raw = armed.get();
  armed_.push_back(std::move(armed));
  sched_.at(when, [this, raw] { injector_->arm(raw->attack, raw->capabilities); });
}

// ---------------------------------------------------------------------------
// Experiment 1: flow modification suppression.
// ---------------------------------------------------------------------------

RunSpec to_run_spec(const SuppressionConfig& config) {
  RunSpec spec;
  spec.experiment = ExperimentKind::FlowModSuppression;
  spec.controller = config.controller;
  spec.attack_enabled = config.attack_enabled;
  spec.ping_trials = config.ping_trials;
  spec.iperf_trials = config.iperf_trials;
  spec.iperf_duration = config.iperf_duration;
  spec.iperf_gap = config.iperf_gap;
  return spec;
}

std::optional<double> SuppressionResult::mean_throughput_mbps() const {
  if (iperf_mbps.empty()) return std::nullopt;
  double sum = 0.0;
  bool any_nonzero = false;
  for (const double v : iperf_mbps) {
    sum += v;
    if (v > 0.0) any_nonzero = true;
  }
  if (!any_nonzero) return std::nullopt;  // the paper's "*": zero throughput
  return sum / static_cast<double>(iperf_mbps.size());
}

std::optional<double> SuppressionResult::mean_latency_ms() const {
  const auto rtt = ping.mean_rtt_seconds();
  if (!rtt) return std::nullopt;  // "*": latency infinite
  return *rtt * 1e3;
}

double SuppressionResult::control_amplification() const {
  const double data =
      static_cast<double>(data_packets_delivered > 0 ? data_packets_delivered : 1);
  return static_cast<double>(packet_ins + packet_outs + flow_mods_observed) / data;
}

std::vector<std::string> SuppressionResult::row_header() const {
  return {"controller", "mode",       "throughput Mbps", "RTT ms",    "loss %",
          "PACKET_IN",  "PACKET_OUT", "FLOW_MOD",        "suppressed", "data pkts",
          "ctl msgs/pkt", "interposed", "codec saved"};
}

std::vector<std::string> SuppressionResult::to_row() const {
  using monitor::TextTable;
  return {to_string(controller),
          attack_enabled ? "attack" : "baseline",
          TextTable::num_or_star(mean_throughput_mbps()),
          TextTable::num_or_star(mean_latency_ms(), 3),
          TextTable::num(ping.sent() > 0 ? ping.loss_fraction() * 100.0 : 0.0, 1),
          std::to_string(packet_ins),
          std::to_string(packet_outs),
          std::to_string(flow_mods_observed),
          std::to_string(flow_mods_suppressed),
          std::to_string(data_packets_delivered),
          TextTable::num(control_amplification(), 3),
          std::to_string(messages_interposed),
          std::to_string(codec_ops_saved)};
}

void SuppressionResult::write_json_fields(JsonWriter& w) const {
  w.key("ping").begin_object();
  w.field("sent", static_cast<std::uint64_t>(ping.sent()));
  w.field("received", static_cast<std::uint64_t>(ping.received()));
  w.field("loss", ping.sent() > 0 ? ping.loss_fraction() : 0.0);
  w.field_or_null("mean_rtt_ms", mean_latency_ms());
  w.end_object();
  w.key("iperf_mbps").begin_array();
  for (const double v : iperf_mbps) w.value(v);
  w.end_array();
  w.field_or_null("mean_throughput_mbps", mean_throughput_mbps());
  w.field("packet_ins", packet_ins);
  w.field("packet_outs", packet_outs);
  w.field("flow_mods_observed", flow_mods_observed);
  w.field("flow_mods_suppressed", flow_mods_suppressed);
  w.field("data_packets_delivered", data_packets_delivered);
}

namespace {

/// Phase A of the suppression experiment: testbed built and the full
/// workload scripted, minus attack arming (a fork-time parameter applied
/// by finish()). The schedule must stay in lockstep with
/// suppression_end() in scenario/run.cpp.
class SuppressionWarmup final : public WarmupPhase {
 public:
  explicit SuppressionWarmup(const RunSpec& rep) : rep_(rep) {
    if (!rep_.topology.is_enterprise()) {
      throw std::invalid_argument(
          "flow-mod suppression runs on the enterprise topology only (its §VII-B "
          "script names h1/h6); use ExperimentKind::Volumetric for generated "
          "topologies");
    }
    TestbedOptions options;
    options.controller = rep_.controller;
    options.use_compiled = rep_.options.use_compiled;
    bed_ = std::make_unique<Testbed>(make_enterprise_model(), options);
    auto& sched = bed_->scheduler();

    // §VII-B timing: controller at t=0 (always-on here), injector armed to
    // σ1 at t=5 s (by finish(), before any control traffic), switches
    // connect at t=6 s so every message is interposed, ping at t=30 s,
    // iperf afterwards.
    bed_->connect_switches_at(seconds(6));

    dpl::Host& h1 = bed_->host("h1");
    dpl::Host& h6 = bed_->host("h6");

    ping_ = std::make_unique<dpl::PingApp>(h1, h6.ip(), /*icmp_id=*/100);
    sched.at(seconds(30), [this] { ping_->start(rep_.ping_trials); });

    // iperf trials: server on h6, fresh client per trial (distinct ports so
    // stragglers from a finished trial cannot ack into the next one).
    const SimTime iperf_start = seconds(30) + static_cast<SimTime>(rep_.ping_trials) * kSecond +
                                5 * kSecond;
    SimTime t = iperf_start;
    for (unsigned trial = 0; trial < rep_.iperf_trials; ++trial) {
      sched.at(t, [this, trial] {
        dpl::IperfClientConfig cc;
        cc.server_port = static_cast<std::uint16_t>(5001 + trial);
        cc.client_port = static_cast<std::uint16_t>(50000 + trial);
        servers_.push_back(std::make_unique<dpl::IperfServer>(bed_->host("h6"), cc.server_port));
        clients_.push_back(
            std::make_unique<dpl::IperfClient>(bed_->host("h1"), bed_->host("h6").ip(), cc));
        clients_.back()->start(rep_.iperf_duration);
      });
      t += rep_.iperf_duration + rep_.iperf_gap;
    }
    end_ = t + 2 * kSecond;
  }

  void advance_to(SimTime deadline) override { bed_->run_until(deadline); }

  RunResultPtr finish(const RunSpec& cell) override {
    // The arm event is the cell's only divergence from the shared prefix.
    // It is safe to schedule it at the current virtual time (the fork
    // point IS the arm time): nothing else is due at that instant for the
    // default t=5 s start, and campaign starts assign it the same
    // post-script sequence number in cold and warm runs alike.
    if (cell.attack_enabled) {
      bed_->arm_attack_at(resolved_attack_start(cell), flow_mod_suppression_dsl());
    }
    bed_->run_until(end_);

    auto& sched = bed_->scheduler();
    auto result = std::make_unique<SuppressionResult>();
    result->controller = cell.controller;
    result->attack_enabled = cell.attack_enabled;
    result->options = cell.options;
    result->virtual_time = sched.now();
    result->events_executed = sched.events_executed();
    result->ping = ping_->report();
    for (const auto& client : clients_) {
      result->iperf_mbps.push_back(client->result().throughput_mbps());
    }
    const monitor::Monitor& mon = bed_->monitor();
    result->packet_ins = mon.observed_of_type(ofp::MsgType::PacketIn);
    result->packet_outs = mon.observed_of_type(ofp::MsgType::PacketOut);
    result->flow_mods_observed = mon.observed_of_type(ofp::MsgType::FlowMod);
    result->flow_mods_suppressed = mon.count(monitor::EventKind::MessageDropped);
    for (const topo::HostSpec& hspec : bed_->model().hosts()) {
      result->data_packets_delivered += bed_->host(hspec.name).counters().packets_received;
    }
    result->messages_interposed = bed_->injector().stats().messages_interposed;
    result->messages_suppressed = bed_->injector().stats().messages_suppressed;
    result->codec_ops_saved = bed_->channel_totals().codec_ops_saved;
    if (const inject::AttackExecutor* exec = bed_->injector().executor()) {
      result->rules_skipped_by_guard = exec->stats().rules_skipped_by_guard;
      result->programs_executed = exec->stats().programs_executed;
    }
    return result;
  }

 private:
  RunSpec rep_;
  std::unique_ptr<Testbed> bed_;
  std::unique_ptr<dpl::PingApp> ping_;
  std::vector<std::unique_ptr<dpl::IperfServer>> servers_;
  std::vector<std::unique_ptr<dpl::IperfClient>> clients_;
  SimTime end_{0};
};

}  // namespace

SuppressionResult run_flow_mod_suppression(const SuppressionConfig& config) {
  RunResultPtr result = run(to_run_spec(config));
  return std::move(static_cast<SuppressionResult&>(*result));
}

// ---------------------------------------------------------------------------
// Experiment 2: connection interruption.
// ---------------------------------------------------------------------------

RunSpec to_run_spec(const InterruptionConfig& config) {
  RunSpec spec;
  spec.experiment = ExperimentKind::ConnectionInterruption;
  spec.controller = config.controller;
  spec.attack_enabled = true;
  spec.options.fail_secure = config.s2_fail_secure;
  return spec;
}

std::vector<std::string> InterruptionResult::row_header() const {
  return {"controller",   "s2 fail mode",  "ext->ext t30", "int->ext t30",
          "ext->int t50", "int->ext t95",  "sigma3",       "interposed",
          "suppressed",   "codec saved"};
}

std::vector<std::string> InterruptionResult::to_row() const {
  auto yn = [](bool v) { return std::string(v ? "yes" : "no"); };
  return {to_string(controller),
          s2_fail_secure ? "fail-secure" : "fail-safe",
          yn(ext_to_ext_t30),
          yn(int_to_ext_t30),
          yn(ext_to_int_t50),
          yn(int_to_ext_t95),
          yn(attack_reached_sigma3),
          std::to_string(messages_interposed),
          std::to_string(messages_suppressed),
          std::to_string(codec_ops_saved)};
}

void InterruptionResult::write_json_fields(JsonWriter& w) const {
  w.field("s2_fail_secure", s2_fail_secure);
  w.field("ext_to_ext_t30", ext_to_ext_t30);
  w.field("int_to_ext_t30", int_to_ext_t30);
  w.field("ext_to_int_t50", ext_to_int_t50);
  w.field("int_to_ext_t95", int_to_ext_t95);
  w.field("attack_reached_sigma3", attack_reached_sigma3);
}

namespace {

/// Phase A of the interruption experiment: the full §VII-C script is
/// scheduled up front (arm, connect, all four probes), so the prefix is
/// byte-identical to a straight-through run; the only fork-time parameter
/// is the s2 fail mode, which is a plain config write.
class InterruptionWarmup final : public WarmupPhase {
 public:
  explicit InterruptionWarmup(const RunSpec& rep) : rep_(rep) {
    if (!rep_.topology.is_enterprise()) {
      throw std::invalid_argument(
          "connection interruption runs on the enterprise topology only (its "
          "§VII-C script names s2/h1/h2/h3/h6); use ExperimentKind::Volumetric "
          "for generated topologies");
    }
    TestbedOptions options;
    options.controller = rep_.controller;
    options.use_compiled = rep_.options.use_compiled;
    EnterpriseOptions enterprise;
    enterprise.s2_fail_secure = rep_.options.fail_secure;
    bed_ = std::make_unique<Testbed>(make_enterprise_model(enterprise), options);
    auto& sched = bed_->scheduler();

    // §VII-C timing: fail mode applied at the fork point (finish()),
    // controller at t=5, injector to σ1 at t=10, switches connect at t=12
    // (through the armed proxy so σ1 observes the connection setup),
    // probes at t=30/50/95.
    if (rep_.attack_enabled) {
      bed_->arm_attack_at(resolved_attack_start(rep_), connection_interruption_dsl());
    }
    bed_->connect_switches_at(seconds(12));

    pings_.resize(4);
    auto schedule_ping = [&](SimTime when, const char* src, const char* dst, unsigned trials,
                             std::uint16_t icmp_id, std::size_t slot) {
      sched.at(when, [this, src, dst, trials, icmp_id, slot] {
        pings_[slot] = std::make_unique<dpl::PingApp>(bed_->host(src), bed_->host(dst).ip(), icmp_id);
        pings_[slot]->start(trials);
      });
    };
    schedule_ping(seconds(30), "h2", "h1", 10, 201, 0);  // external -> external
    schedule_ping(seconds(30), "h6", "h1", 10, 202, 1);  // internal -> external
    schedule_ping(seconds(50), "h2", "h3", 60, 203, 2);  // external -> internal
    schedule_ping(seconds(95), "h6", "h1", 10, 204, 3);  // internal -> external (post)
  }

  void advance_to(SimTime deadline) override { bed_->run_until(deadline); }

  RunResultPtr finish(const RunSpec& cell) override {
    // The fail-mode bit is only consulted once s2's control channel leaves
    // Connected (first at the t=62 s loss), so writing it at the t=55 s
    // fork point is indistinguishable from building the model with it.
    bed_->switch_named("s2").set_fail_secure(cell.options.fail_secure);
    bed_->run_until(seconds(125));

    auto& sched = bed_->scheduler();
    auto result = std::make_unique<InterruptionResult>();
    result->controller = cell.controller;
    result->attack_enabled = cell.attack_enabled;
    result->options = cell.options;
    result->virtual_time = sched.now();
    result->events_executed = sched.events_executed();
    result->s2_fail_secure = cell.options.fail_secure;
    result->ext_to_ext_t30 = pings_[0]->report().received() > 0;
    result->int_to_ext_t30 = pings_[1]->report().received() > 0;
    result->ext_to_int_t50 = pings_[2]->report().received() > 0;
    result->int_to_ext_t95 = pings_[3]->report().received() > 0;
    result->attack_reached_sigma3 =
        bed_->injector().current_state() == std::optional<std::string>("sigma3");
    result->messages_interposed = bed_->injector().stats().messages_interposed;
    result->messages_suppressed = bed_->injector().stats().messages_suppressed;
    result->codec_ops_saved = bed_->channel_totals().codec_ops_saved;
    if (const inject::AttackExecutor* exec = bed_->injector().executor()) {
      result->rules_skipped_by_guard = exec->stats().rules_skipped_by_guard;
      result->programs_executed = exec->stats().programs_executed;
    }
    return result;
  }

 private:
  RunSpec rep_;
  std::unique_ptr<Testbed> bed_;
  std::vector<std::unique_ptr<dpl::PingApp>> pings_;
};

}  // namespace

InterruptionResult run_connection_interruption(const InterruptionConfig& config) {
  RunResultPtr result = run(to_run_spec(config));
  return std::move(static_cast<InterruptionResult&>(*result));
}

// ---------------------------------------------------------------------------
// Experiment 3: volumetric control-plane workloads.
// ---------------------------------------------------------------------------

std::optional<double> VolumetricResult::probe_mean_rtt_ms() const {
  const auto rtt = probe.mean_rtt_seconds();
  if (!rtt) return std::nullopt;  // "*": every probe lost
  return *rtt * 1e3;
}

std::vector<std::string> VolumetricResult::row_header() const {
  return {"controller", "topology", "mode",     "injected", "PACKET_IN",
          "FLOW_MOD",   "rejected", "misses",   "drops",    "entries",
          "peak",       "probe RTT ms", "probe loss %"};
}

std::vector<std::string> VolumetricResult::to_row() const {
  using monitor::TextTable;
  return {to_string(controller),
          topology_id,
          attack_enabled ? to_string(volumetric) : "baseline",
          std::to_string(flood_packets_injected),
          std::to_string(packet_ins),
          std::to_string(flow_mods_observed),
          std::to_string(flow_mods_rejected),
          std::to_string(table_misses),
          std::to_string(miss_drops),
          std::to_string(table_entries_final),
          std::to_string(table_entries_peak),
          TextTable::num_or_star(probe_mean_rtt_ms(), 3),
          TextTable::num(probe.sent() > 0 ? probe.loss_fraction() * 100.0 : 0.0, 1)};
}

void VolumetricResult::write_json_fields(JsonWriter& w) const {
  w.field("volumetric", to_string(volumetric));
  w.field("topology", topology_id);
  w.field("flood_packets_injected", flood_packets_injected);
  w.field("packet_ins", packet_ins);
  w.field("packet_outs", packet_outs);
  w.field("flow_mods_observed", flow_mods_observed);
  w.field("flow_mods_rejected", flow_mods_rejected);
  w.field("table_misses", table_misses);
  w.field("miss_drops", miss_drops);
  w.field("table_entries_final", table_entries_final);
  w.field("table_entries_peak", table_entries_peak);
  w.key("probe").begin_object();
  w.field("sent", static_cast<std::uint64_t>(probe.sent()));
  w.field("received", static_cast<std::uint64_t>(probe.received()));
  w.field("loss", probe.sent() > 0 ? probe.loss_fraction() : 0.0);
  w.field_or_null("mean_rtt_ms", probe_mean_rtt_ms());
  w.end_object();
}

namespace {

/// Phase A of a volumetric cell: testbed built on the cell's (generated)
/// topology, background probe ping and the 1 s occupancy sampler scripted.
/// The flood itself — kind, flow count, batching, timing — is a fork-time
/// parameter applied by finish(). The schedule must stay in lockstep with
/// volumetric_end() in scenario/run.cpp.
class VolumetricWarmup final : public WarmupPhase {
 public:
  explicit VolumetricWarmup(const RunSpec& rep) : rep_(rep) {
    TestbedOptions options;
    options.controller = rep_.controller;
    options.use_compiled = rep_.options.use_compiled;
    options.table_capacity = rep_.table_capacity;
    topo::BuildOptions build;
    build.chokepoint_fail_secure = rep_.options.fail_secure;
    bed_ = std::make_unique<Testbed>(topo::build_model(rep_.topology, build), options);
    auto& sched = bed_->scheduler();

    // Timing: switches connect at t=1 s, the probe crosses the fabric from
    // t=3 s (one trial per second, sized to outlast the default-start flood
    // window plus settle time), flood per the cell's attack_start.
    bed_->connect_switches_at(seconds(1));

    const auto& hosts = bed_->model().hosts();
    const topo::HostSpec& src = hosts.front();
    const topo::HostSpec& dst = hosts.back();
    const unsigned trials = static_cast<unsigned>(rep_.flood_duration / kSecond) + 10;
    ping_ = std::make_unique<dpl::PingApp>(bed_->host(src.name), dst.ip, /*icmp_id=*/300);
    sched.at(seconds(3), [this, trials] { ping_->start(trials); });
    end_ = seconds(3) + static_cast<SimTime>(trials) * kSecond + 2 * kSecond;

    // Occupancy sampler: total live entries across the fabric every second.
    // Scripted in the shared prefix so cold and warm runs execute identical
    // event sequences.
    for (SimTime t = seconds(2); t < end_; t += kSecond) {
      sched.at(t, [this] { peak_ = std::max(peak_, total_entries()); });
    }
  }

  void advance_to(SimTime deadline) override { bed_->run_until(deadline); }

  RunResultPtr finish(const RunSpec& cell) override {
    if (cell.attack_enabled) schedule_flood(cell);
    bed_->run_until(end_);

    auto& sched = bed_->scheduler();
    auto result = std::make_unique<VolumetricResult>();
    result->controller = cell.controller;
    result->attack_enabled = cell.attack_enabled;
    result->options = cell.options;
    result->virtual_time = sched.now();
    result->events_executed = sched.events_executed();
    result->volumetric = cell.volumetric;
    result->topology_id = cell.topology.id();
    result->flood_packets_injected = injected_;
    const monitor::Monitor& mon = bed_->monitor();
    result->packet_ins = mon.observed_of_type(ofp::MsgType::PacketIn);
    result->packet_outs = mon.observed_of_type(ofp::MsgType::PacketOut);
    result->flow_mods_observed = mon.observed_of_type(ofp::MsgType::FlowMod);
    for (const topo::SwitchSpec& spec : bed_->model().switches()) {
      const swsim::SwitchCounters& c = bed_->switch_named(spec.name).counters();
      result->flow_mods_rejected += c.flow_mods_rejected;
      result->table_misses += c.table_misses;
      result->miss_drops += c.miss_drops;
    }
    result->table_entries_final = total_entries();
    result->table_entries_peak = std::max(peak_, result->table_entries_final);
    result->probe = ping_->report();
    result->messages_interposed = bed_->injector().stats().messages_interposed;
    result->messages_suppressed = bed_->injector().stats().messages_suppressed;
    result->codec_ops_saved = bed_->channel_totals().codec_ops_saved;
    return result;
  }

 private:
  std::uint64_t total_entries() const {
    std::uint64_t total = 0;
    for (const topo::SwitchSpec& spec : bed_->model().switches()) {
      total += bed_->switch_named(spec.name).flow_table().size();
    }
    return total;
  }

  /// Schedules the flood: one injection source per host-bearing switch
  /// (the first attached host's port, in model order), one scheduler event
  /// per source per batch interval. Every spoofed frame carries a distinct
  /// source address drawn from the source's disjoint 192.0.0.0/2 slice, so
  /// each opens a fresh flow toward the last host:
  ///   PacketInFlood / TableOverflow — the source's flood_flows flows are
  ///   spread evenly across the batches (each frame a fresh table miss);
  ///   SlowRate — every batch re-sends the same flood_flows flows, keeping
  ///   idle timers refreshed so the entries pin the table indefinitely.
  void schedule_flood(const RunSpec& cell) {
    const topo::SystemModel& model = bed_->model();
    const topo::HostSpec& victim = model.hosts().back();
    const pkt::MacAddress victim_mac = victim.mac;
    const pkt::Ipv4Address victim_ip = victim.ip;

    struct Source {
      std::string sw;
      std::uint16_t port;
    };
    std::vector<Source> sources;
    std::unordered_set<std::uint32_t> seen;
    for (const topo::HostSpec& h : model.hosts()) {
      const auto [sw, port] = model.attachment_of(model.require(h.name));
      if (seen.insert(sw.index).second) sources.push_back({model.name_of(sw), port});
    }

    auto& sched = bed_->scheduler();
    const SimTime start = resolved_attack_start(cell);
    const SimTime batch_gap = std::max<SimTime>(1, cell.flood_batch);
    const std::uint64_t batches =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(cell.flood_duration / batch_gap));
    const bool slow_rate = cell.volumetric == VolumetricKind::SlowRate;

    for (std::size_t s = 0; s < sources.size(); ++s) {
      const std::uint64_t base = static_cast<std::uint64_t>(s) * cell.flood_flows;
      for (std::uint64_t b = 0; b < batches; ++b) {
        const std::uint64_t lo = slow_rate ? 0 : b * cell.flood_flows / batches;
        const std::uint64_t hi = slow_rate ? cell.flood_flows : (b + 1) * cell.flood_flows / batches;
        if (lo == hi) continue;
        sched.at(start + static_cast<SimTime>(b) * batch_gap,
                 [this, name = sources[s].sw, port = sources[s].port, base, lo, hi, victim_mac,
                  victim_ip] {
                   swsim::OpenFlowSwitch& sw = bed_->switch_named(name);
                   if (sim::batching_enabled() &&
                       emit_flood_batch(sw, port, base, lo, hi, victim_mac, victim_ip)) {
                     return;
                   }
                   for (std::uint64_t f = lo; f < hi; ++f) {
                     pkt::TcpHeader tcp;
                     tcp.src_port = static_cast<std::uint16_t>(40000 + (f & 0x3fff));
                     tcp.dst_port = 80;
                     tcp.flags = pkt::kTcpSyn;
                     pkt::Packet p = pkt::make_tcp(
                         pkt::MacAddress::from_u64(0x0aad00000000ULL | (base + f)), victim_mac,
                         pkt::Ipv4Address{static_cast<std::uint32_t>(0xc0000000u + base + f)},
                         victim_ip, tcp, /*payload_size=*/0, /*tag=*/0);
                     sw.on_packet(port, std::move(p));
                     ++injected_;
                   }
                 });
      }
    }
  }

  /// Batched flood emission: one PacketBatch per (source, interval) event,
  /// frames produced by a template stamper (memcpy + src MAC/IP/port patch,
  /// bytes validated identical to the scalar make_tcp + pkt::encode path).
  /// Returns false — caller falls back to the scalar loop — if any flood-
  /// varying field turned out unstampable on this prototype.
  bool emit_flood_batch(swsim::OpenFlowSwitch& sw, std::uint16_t port, std::uint64_t base,
                        std::uint64_t lo, std::uint64_t hi, pkt::MacAddress victim_mac,
                        pkt::Ipv4Address victim_ip) {
    if (!flood_stamper_) {
      pkt::TcpHeader tcp;
      tcp.src_port = 40000;
      tcp.dst_port = 80;
      tcp.flags = pkt::kTcpSyn;
      flood_stamper_.emplace(pkt::make_tcp(pkt::MacAddress::from_u64(0x0aad00000000ULL),
                                           victim_mac, pkt::Ipv4Address{0xc0000000u}, victim_ip,
                                           tcp, /*payload_size=*/0, /*tag=*/0));
    }
    pkt::FrameStamper& st = *flood_stamper_;
    if (!st.can_stamp_src_mac() || !st.can_stamp_src_ip() || !st.can_stamp_src_port()) {
      return false;
    }
    swsim::PacketBatch batch;
    batch.port = port;
    batch.packets.reserve(hi - lo);
    batch.wires.reserve(hi - lo);
    for (std::uint64_t f = lo; f < hi; ++f) {
      st.set_src_mac(pkt::MacAddress::from_u64(0x0aad00000000ULL | (base + f)));
      st.set_src_ip(pkt::Ipv4Address{static_cast<std::uint32_t>(0xc0000000u + base + f)});
      st.set_src_port(static_cast<std::uint16_t>(40000 + (f & 0x3fff)));
      batch.packets.push_back(st.emit_packet());
      batch.wires.push_back(st.emit_wire());
      ++injected_;
    }
    sw.on_packet_batch(std::move(batch));
    return true;
  }

  RunSpec rep_;
  std::unique_ptr<Testbed> bed_;
  std::unique_ptr<dpl::PingApp> ping_;
  std::optional<pkt::FrameStamper> flood_stamper_;
  std::uint64_t injected_{0};
  std::uint64_t peak_{0};
  SimTime end_{0};
};

}  // namespace

// ---------------------------------------------------------------------------
// RunSpec dispatch (declared in scenario/run.hpp).
// ---------------------------------------------------------------------------

WarmupPhasePtr warm_up(const RunSpec& representative) {
  switch (representative.experiment) {
    case ExperimentKind::FlowModSuppression:
      return std::make_unique<SuppressionWarmup>(representative);
    case ExperimentKind::ConnectionInterruption:
      return std::make_unique<InterruptionWarmup>(representative);
    case ExperimentKind::Volumetric:
      return std::make_unique<VolumetricWarmup>(representative);
    case ExperimentKind::Custom:
      break;
  }
  throw std::invalid_argument("warm_up: custom cells have no warm-up phase");
}

RunResultPtr run(const RunSpec& spec) {
  if (spec.experiment == ExperimentKind::Custom) {
    if (!spec.custom) {
      throw std::invalid_argument("RunSpec: ExperimentKind::Custom without a runner");
    }
    return spec.custom(spec);
  }
  // Cold runs take the phased path too: a forked (warm) cell replays the
  // exact instruction sequence of a cold one, which is what makes the
  // warm-start byte-determinism guarantee structural.
  WarmupPhasePtr phase = warm_up(warmup_representative(spec));
  phase->advance_to(fork_time(spec));
  RunResultPtr result = phase->finish(spec);
  // One cell done: mark the boundary so per-cell allocation deltas (bench
  // harness, memory-guard tests) can key off it. The thread slab persists —
  // the next cell on this thread reuses its freelists.
  mem::run_boundary();
  return result;
}

// ---------------------------------------------------------------------------
// Binary result round-trip (the snapshot fork's process boundary).
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint8_t kSuppressionTag = 1;
constexpr std::uint8_t kInterruptionTag = 2;
constexpr std::uint8_t kVolumetricTag = 3;

void save_common(const RunResult& r, ByteWriter& w) {
  w.u8(static_cast<std::uint8_t>(r.controller));
  w.u8(r.attack_enabled ? 1 : 0);
  w.u8(static_cast<std::uint8_t>((r.options.fail_secure ? 1 : 0) |
                                 (r.options.use_compiled ? 2 : 0) |
                                 (r.options.extended_control_channel_json ? 4 : 0)));
  w.u64(static_cast<std::uint64_t>(r.virtual_time));
  w.u64(r.events_executed);
  w.u64(r.messages_interposed);
  w.u64(r.messages_suppressed);
  w.u64(r.codec_ops_saved);
  w.u64(r.rules_skipped_by_guard);
  w.u64(r.programs_executed);
}

void load_common(RunResult& r, ByteReader& rd) {
  r.controller = static_cast<ControllerKind>(rd.u8());
  r.attack_enabled = rd.u8() != 0;
  const std::uint8_t opts = rd.u8();
  r.options.fail_secure = (opts & 1) != 0;
  r.options.use_compiled = (opts & 2) != 0;
  r.options.extended_control_channel_json = (opts & 4) != 0;
  r.virtual_time = static_cast<SimTime>(rd.u64());
  r.events_executed = rd.u64();
  r.messages_interposed = rd.u64();
  r.messages_suppressed = rd.u64();
  r.codec_ops_saved = rd.u64();
  r.rules_skipped_by_guard = rd.u64();
  r.programs_executed = rd.u64();
}

void save_f64(ByteWriter& w, double v) { w.u64(std::bit_cast<std::uint64_t>(v)); }
double load_f64(ByteReader& r) { return std::bit_cast<double>(r.u64()); }

}  // namespace

void save_result(const RunResult& result, ByteWriter& w) {
  if (const auto* s = dynamic_cast<const SuppressionResult*>(&result)) {
    w.u8(kSuppressionTag);
    save_common(result, w);
    w.u32(static_cast<std::uint32_t>(s->ping.trials.size()));
    for (const dpl::PingTrial& trial : s->ping.trials) {
      w.u16(trial.seq);
      w.u64(static_cast<std::uint64_t>(trial.sent_at));
      w.u8(trial.rtt.has_value() ? 1 : 0);
      if (trial.rtt) w.u64(static_cast<std::uint64_t>(*trial.rtt));
    }
    w.u32(static_cast<std::uint32_t>(s->iperf_mbps.size()));
    for (const double v : s->iperf_mbps) save_f64(w, v);
    w.u64(s->packet_ins);
    w.u64(s->packet_outs);
    w.u64(s->flow_mods_observed);
    w.u64(s->flow_mods_suppressed);
    w.u64(s->data_packets_delivered);
    return;
  }
  if (const auto* i = dynamic_cast<const InterruptionResult*>(&result)) {
    w.u8(kInterruptionTag);
    save_common(result, w);
    w.u8(i->s2_fail_secure ? 1 : 0);
    w.u8(i->ext_to_ext_t30 ? 1 : 0);
    w.u8(i->int_to_ext_t30 ? 1 : 0);
    w.u8(i->ext_to_int_t50 ? 1 : 0);
    w.u8(i->int_to_ext_t95 ? 1 : 0);
    w.u8(i->attack_reached_sigma3 ? 1 : 0);
    return;
  }
  if (const auto* v = dynamic_cast<const VolumetricResult*>(&result)) {
    w.u8(kVolumetricTag);
    save_common(result, w);
    w.u8(static_cast<std::uint8_t>(v->volumetric));
    w.u32(static_cast<std::uint32_t>(v->topology_id.size()));
    w.raw({reinterpret_cast<const std::uint8_t*>(v->topology_id.data()), v->topology_id.size()});
    w.u64(v->flood_packets_injected);
    w.u64(v->packet_ins);
    w.u64(v->packet_outs);
    w.u64(v->flow_mods_observed);
    w.u64(v->flow_mods_rejected);
    w.u64(v->table_misses);
    w.u64(v->miss_drops);
    w.u64(v->table_entries_final);
    w.u64(v->table_entries_peak);
    w.u32(static_cast<std::uint32_t>(v->probe.trials.size()));
    for (const dpl::PingTrial& trial : v->probe.trials) {
      w.u16(trial.seq);
      w.u64(static_cast<std::uint64_t>(trial.sent_at));
      w.u8(trial.rtt.has_value() ? 1 : 0);
      if (trial.rtt) w.u64(static_cast<std::uint64_t>(*trial.rtt));
    }
    return;
  }
  throw std::invalid_argument("save_result: unsupported result type: " + result.kind_name());
}

RunResultPtr load_result(ByteReader& r) {
  const std::uint8_t tag = r.u8();
  switch (tag) {
    case kSuppressionTag: {
      auto s = std::make_unique<SuppressionResult>();
      load_common(*s, r);
      const std::uint32_t trials = r.u32();
      s->ping.trials.reserve(trials);
      for (std::uint32_t i = 0; i < trials; ++i) {
        dpl::PingTrial trial;
        trial.seq = r.u16();
        trial.sent_at = static_cast<SimTime>(r.u64());
        if (r.u8() != 0) trial.rtt = static_cast<SimTime>(r.u64());
        s->ping.trials.push_back(trial);
      }
      const std::uint32_t mbps = r.u32();
      s->iperf_mbps.reserve(mbps);
      for (std::uint32_t i = 0; i < mbps; ++i) s->iperf_mbps.push_back(load_f64(r));
      s->packet_ins = r.u64();
      s->packet_outs = r.u64();
      s->flow_mods_observed = r.u64();
      s->flow_mods_suppressed = r.u64();
      s->data_packets_delivered = r.u64();
      return s;
    }
    case kInterruptionTag: {
      auto i = std::make_unique<InterruptionResult>();
      load_common(*i, r);
      i->s2_fail_secure = r.u8() != 0;
      i->ext_to_ext_t30 = r.u8() != 0;
      i->int_to_ext_t30 = r.u8() != 0;
      i->ext_to_int_t50 = r.u8() != 0;
      i->int_to_ext_t95 = r.u8() != 0;
      i->attack_reached_sigma3 = r.u8() != 0;
      return i;
    }
    case kVolumetricTag: {
      auto v = std::make_unique<VolumetricResult>();
      load_common(*v, r);
      v->volumetric = static_cast<VolumetricKind>(r.u8());
      const std::uint32_t id_len = r.u32();
      const Bytes id_bytes = r.raw(id_len);
      v->topology_id.assign(id_bytes.begin(), id_bytes.end());
      v->flood_packets_injected = r.u64();
      v->packet_ins = r.u64();
      v->packet_outs = r.u64();
      v->flow_mods_observed = r.u64();
      v->flow_mods_rejected = r.u64();
      v->table_misses = r.u64();
      v->miss_drops = r.u64();
      v->table_entries_final = r.u64();
      v->table_entries_peak = r.u64();
      const std::uint32_t trials = r.u32();
      v->probe.trials.reserve(trials);
      for (std::uint32_t i = 0; i < trials; ++i) {
        dpl::PingTrial trial;
        trial.seq = r.u16();
        trial.sent_at = static_cast<SimTime>(r.u64());
        if (r.u8() != 0) trial.rtt = static_cast<SimTime>(r.u64());
        v->probe.trials.push_back(trial);
      }
      return v;
    }
    default:
      throw DecodeError("load_result: unknown result tag " + std::to_string(tag));
  }
}

std::uint64_t result_digest(const RunResult& result) {
  ByteWriter w;
  save_result(result, w);
  return fnv1a64(w.bytes());
}

// ---------------------------------------------------------------------------

std::string render_table2(const std::vector<InterruptionResult>& results) {
  monitor::TextTable table({"question", "Floodlight/safe", "Floodlight/secure", "POX/safe",
                            "POX/secure", "Ryu/safe", "Ryu/secure"});
  auto find = [&](ControllerKind kind, bool secure) -> const InterruptionResult* {
    for (const InterruptionResult& r : results) {
      if (r.controller == kind && r.s2_fail_secure == secure) return &r;
    }
    return nullptr;
  };
  auto row = [&](const char* question, auto getter) {
    std::vector<std::string> cells{question};
    for (const ControllerKind kind :
         {ControllerKind::Floodlight, ControllerKind::Pox, ControllerKind::Ryu}) {
      for (const bool secure : {false, true}) {
        const InterruptionResult* r = find(kind, secure);
        cells.push_back(r == nullptr ? "?" : (getter(*r) ? "yes" : "no"));
      }
    }
    table.add_row(std::move(cells));
  };
  row("ext->ext reachable (t=30s)", [](const InterruptionResult& r) { return r.ext_to_ext_t30; });
  row("int->ext reachable (t=30s)", [](const InterruptionResult& r) { return r.int_to_ext_t30; });
  row("ext->int reachable (t=50s)", [](const InterruptionResult& r) { return r.ext_to_int_t50; });
  row("int->ext reachable (t=95s)", [](const InterruptionResult& r) { return r.int_to_ext_t95; });
  return table.to_string();
}

std::string render_table2(const std::vector<const RunResult*>& results) {
  std::vector<InterruptionResult> rows;
  for (const RunResult* r : results) {
    if (const auto* ir = dynamic_cast<const InterruptionResult*>(r)) rows.push_back(*ir);
  }
  return render_table2(rows);
}

}  // namespace attain::scenario
