// The DSN'17 case study (§VII-A): a small enterprise network with an
// external-facing web server (h1), an Internet gateway (h2), internal
// servers (h3, h4), user workstations (h5, h6), an external switch (s1), a
// DMZ firewall switch (s2), intranet switches (s3, s4), and one controller
// (c1) holding a control-plane connection to every switch (Figs. 8–9).
#pragma once

#include <string>

#include "attain/lang/attack.hpp"
#include "topo/system_model.hpp"

namespace attain::scenario {

struct EnterpriseOptions {
  /// The DMZ firewall switch's disconnection policy — the Table II knob.
  bool s2_fail_secure{false};
  /// Applied to the other switches (the paper leaves them fail-safe).
  bool others_fail_secure{false};
  /// Mark every control-plane connection TLS (for capability-model tests;
  /// the paper's experiments ran plain TCP).
  bool tls{false};
};

/// Builds and validates the Fig. 8/Fig. 9 system model:
///   s1: h1 on port 1, h2 on port 2, s2 on port 3
///   s2: s1 on port 1, s3 on port 2            (the DMZ chokepoint)
///   s3: s2 on port 1, h3 on port 2, h4 on port 3, s4 on port 4
///   s4: s3 on port 1, h5 on port 2, h6 on port 3
/// Host addressing: hN has IP 10.0.0.N and MAC 00:00:00:00:00:0N.
topo::SystemModel make_enterprise_model(const EnterpriseOptions& options = {});

/// The same model in DSL form (round-trips through the parser; used by the
/// DSL tests and the quickstart example).
std::string enterprise_model_dsl(const EnterpriseOptions& options = {});

/// Fig. 10: the flow-modification suppression attack — one state, one rule
/// per control-plane connection, dropping every controller-to-switch
/// FLOW_MOD. Includes the attacker block granting Γ_NoTLS on all four
/// connections.
std::string flow_mod_suppression_dsl();

/// Fig. 12: the connection interruption attack — σ1 waits for (c1, s2)
/// connection setup (FEATURES_REPLY), σ2 waits for a FLOW_MOD whose match
/// says "traffic from h2 to an internal host", σ3 (absorbing) drops every
/// (c1, s2) message. Includes the attacker block.
std::string connection_interruption_dsl();

/// §V-G: the trivial single-state "attack" that passes all messages
/// (normal control-plane operation, Fig. 5).
std::string trivial_pass_all_dsl();

/// The §II-A4 / Hong et al. LLDP link-fabrication attack, expressible in
/// the ATTAIN language as the paper claims: forged LLDP PACKET_INs are
/// injected (INJECTNEWMESSAGE) on the (c1, sw_a) and (c1, sw_b)
/// connections, convincing a discovery-based controller (Floodlight) that
/// a bidirectional link (sw_a:port_a) <-> (sw_b:port_b) exists. Routing
/// then prefers the fake shortcut and forwards into an unwired port —
/// black-hole routing. The injected frames carry crafted data-plane
/// payloads, so this attack is built programmatically (the DSL's inject()
/// templates cover only canned control messages); it returns the
/// in-memory attack plus the capability map it needs.
struct LinkFabricationAttack {
  lang::Attack attack;
  model::CapabilityMap capabilities;
};
LinkFabricationAttack make_link_fabrication_attack(const topo::SystemModel& model,
                                                   const std::string& sw_a,
                                                   std::uint16_t port_a,
                                                   const std::string& sw_b,
                                                   std::uint16_t port_b);

}  // namespace attain::scenario
