#include "scenario/enterprise.hpp"

#include <sstream>

#include "packet/codec.hpp"
#include "topo/generators.hpp"

namespace attain::scenario {

topo::SystemModel make_enterprise_model(const EnterpriseOptions& options) {
  // The Fig. 8 wiring itself lives in topo/generators.cpp now, behind
  // TopologySpec::enterprise(); this wrapper keeps the historical entry
  // point and its option names.
  topo::BuildOptions build;
  build.chokepoint_fail_secure = options.s2_fail_secure;
  build.others_fail_secure = options.others_fail_secure;
  build.tls = options.tls;
  return topo::build_model(topo::TopologySpec::enterprise(), build);
}

std::string enterprise_model_dsl(const EnterpriseOptions& options) {
  std::ostringstream out;
  out << "system {\n";
  out << "  controller c1 { ip \"10.0.100.1\"; port 6633; }\n";
  auto sw = [&](const char* name, int dpid, bool secure) {
    out << "  switch " << name << " { dpid " << dpid << "; ports 4; fail_mode "
        << (secure ? "secure" : "safe") << "; }\n";
  };
  sw("s1", 1, options.others_fail_secure);
  sw("s2", 2, options.s2_fail_secure);
  sw("s3", 3, options.others_fail_secure);
  sw("s4", 4, options.others_fail_secure);
  for (int n = 1; n <= 6; ++n) {
    out << "  host h" << n << " { mac \"00:00:00:00:00:0" << n << "\"; ip \"10.0.0." << n
        << "\"; }\n";
  }
  out << "  link h1 -- s1:1;\n  link h2 -- s1:2;\n  link s1:3 -- s2:1;\n";
  out << "  link s2:2 -- s3:1;\n  link h3 -- s3:2;\n  link h4 -- s3:3;\n";
  out << "  link s3:4 -- s4:1;\n  link h5 -- s4:2;\n  link h6 -- s4:3;\n";
  const char* tls = options.tls ? " tls" : "";
  for (int n = 1; n <= 4; ++n) out << "  connection c1 -> s" << n << tls << ";\n";
  out << "}\n";
  return out.str();
}

namespace {

std::string grant_all_block() {
  return "attacker {\n"
         "  on (c1, s1) grant no_tls;\n"
         "  on (c1, s2) grant no_tls;\n"
         "  on (c1, s3) grant no_tls;\n"
         "  on (c1, s4) grant no_tls;\n"
         "}\n";
}

}  // namespace

std::string flow_mod_suppression_dsl() {
  std::ostringstream out;
  out << grant_all_block();
  out << "attack flow_mod_suppression {\n";
  out << "  start state sigma1 {\n";
  for (int n = 1; n <= 4; ++n) {
    out << "    rule phi" << n << " on (c1, s" << n << ") {\n"
        << "      requires { ReadMessage, DropMessage };\n"
        << "      when msg.type == FLOW_MOD;\n"
        << "      do { drop(msg); }\n"
        << "    }\n";
  }
  out << "  }\n}\n";
  return out.str();
}

std::string connection_interruption_dsl() {
  std::ostringstream out;
  out << grant_all_block();
  out << "attack connection_interruption {\n"
      << "  start state sigma1 {\n"
      << "    rule phi1 on (c1, s2) {\n"
      << "      requires { ReadMessage, PassMessage };\n"
      << "      when msg.type == FEATURES_REPLY;\n"
      << "      do { pass(msg); goto(sigma2); }\n"
      << "    }\n"
      << "  }\n"
      << "  state sigma2 {\n"
      << "    rule phi2 on (c1, s2) {\n"
      << "      requires { ReadMessage, DropMessage };\n"
      << "      when msg.type == FLOW_MOD and msg.field(\"match.nw_src\") == ip(h2)\n"
      << "           and msg.field(\"match.nw_dst\") in { ip(h3), ip(h4), ip(h5), ip(h6) };\n"
      << "      do { drop(msg); goto(sigma3); }\n"
      << "    }\n"
      << "  }\n"
      << "  state sigma3 {\n"
      << "    rule phi3 on (c1, s2) {\n"
      << "      requires { ReadMessageMetadata, DropMessage };\n"
      << "      when msg.length >= 0;\n"
      << "      do { drop(msg); }\n"
      << "    }\n"
      << "  }\n"
      << "}\n";
  return out.str();
}

std::string trivial_pass_all_dsl() {
  return "attack trivial_pass_all {\n"
         "  start state sigma1;\n"  // a state with no rules: all messages pass
         "}\n";
}

LinkFabricationAttack make_link_fabrication_attack(const topo::SystemModel& model,
                                                   const std::string& sw_a, std::uint16_t port_a,
                                                   const std::string& sw_b,
                                                   std::uint16_t port_b) {
  using namespace lang;
  const EntityId c1 = model.require("c1");
  const EntityId a = model.require(sw_a);
  const EntityId b = model.require(sw_b);
  const std::uint64_t dpid_a = model.switch_at(a).dpid;
  const std::uint64_t dpid_b = model.switch_at(b).dpid;

  // The forged PACKET_IN delivered on (c1, target): "an LLDP probe from
  // (origin_dpid, origin_port) arrived at my port `in_port`".
  auto forged_packet_in = [](std::uint64_t origin_dpid, std::uint16_t origin_port,
                             std::uint16_t in_port) {
    ofp::PacketIn pin;
    pin.buffer_id = ofp::kNoBuffer;
    pin.in_port = in_port;
    pin.reason = ofp::PacketInReason::NoMatch;
    pin.data = pkt::encode(pkt::make_lldp(
        pkt::MacAddress::from_u64((origin_dpid << 8) | origin_port), origin_dpid, origin_port));
    pin.total_len = static_cast<std::uint16_t>(pin.data.size());
    return ofp::make_message(0, std::move(pin));
  };

  // One rule per direction, each firing exactly once (guarded by a flag
  // deque). The trigger is the switch's first ECHO_REQUEST: by then the
  // handshake is complete, so the controller can attribute the forged
  // PACKET_IN to the right datapath.
  auto make_rule = [&](const std::string& name, EntityId sw, const std::string& flag,
                       ofp::Message forged) {
    Rule rule;
    rule.name = name;
    rule.connection = ConnectionId{c1, sw};
    rule.conditional = Expr::binary(
        BinaryOp::And,
        Expr::binary(BinaryOp::Eq, Expr::prop(Property::Type),
                     Expr::literal_int(static_cast<std::int64_t>(ofp::MsgType::EchoRequest))),
        Expr::binary(BinaryOp::Eq, Expr::deque_len(flag), Expr::literal_int(0)));
    ActInject inject;
    inject.message = std::move(forged);
    inject.direction = Direction::SwitchToController;
    rule.actions.push_back(std::move(inject));
    rule.actions.push_back(ActAppend{flag, Expr::literal_int(1)});
    return rule;
  };

  LinkFabricationAttack result;
  result.attack.name = "lldp_link_fabrication";
  result.attack.start_state = "forging";
  result.attack.deques.emplace_back("done_a", std::vector<Value>{});
  result.attack.deques.emplace_back("done_b", std::vector<Value>{});
  AttackState state;
  state.name = "forging";
  // Link b -> a is announced via a PACKET_IN on (c1, a), and vice versa.
  state.rules.push_back(
      make_rule("forge_on_a", a, "done_a", forged_packet_in(dpid_b, port_b, port_a)));
  state.rules.push_back(
      make_rule("forge_on_b", b, "done_b", forged_packet_in(dpid_a, port_a, port_b)));
  result.attack.states.push_back(std::move(state));

  result.capabilities.grant(ConnectionId{c1, a}, model::CapabilitySet::no_tls());
  result.capabilities.grant(ConnectionId{c1, b}, model::CapabilitySet::no_tls());
  return result;
}

}  // namespace attain::scenario
