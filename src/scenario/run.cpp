#include "scenario/run.hpp"

#include <atomic>

#include "attain/monitor/metrics.hpp"

namespace attain::scenario {

namespace {
std::atomic<bool> g_extended_control_channel_json{false};
}  // namespace

void set_extended_control_channel_json(bool enabled) {
  g_extended_control_channel_json.store(enabled, std::memory_order_relaxed);
}

bool extended_control_channel_json() {
  return g_extended_control_channel_json.load(std::memory_order_relaxed);
}

std::string to_string(ExperimentKind kind) {
  switch (kind) {
    case ExperimentKind::FlowModSuppression: return "suppression";
    case ExperimentKind::ConnectionInterruption: return "interruption";
    case ExperimentKind::Custom: return "custom";
  }
  return "?";
}

namespace {

/// "/t35" for whole seconds, "/t3500000us" otherwise — appended to ids of
/// cells with an explicit attack start so campaign cells stay distinct.
std::string attack_start_suffix(SimTime start) {
  if (start % kSecond == 0) return "/t" + std::to_string(start / kSecond);
  return "/t" + std::to_string(start) + "us";
}

}  // namespace

std::string RunSpec::id() const {
  if (!name.empty()) return name;
  std::string id = to_string(experiment);
  id += '/';
  id += to_string(controller);
  switch (experiment) {
    case ExperimentKind::FlowModSuppression:
      id += attack_enabled ? "/attack" : "/baseline";
      break;
    case ExperimentKind::ConnectionInterruption:
      id += s2_fail_secure ? "/fail-secure" : "/fail-safe";
      if (!attack_enabled) id += "/baseline";
      break;
    case ExperimentKind::Custom:
      break;
  }
  if (attack_enabled && attack_start >= 0) id += attack_start_suffix(attack_start);
  return id;
}

void RunSpec::write_json(JsonWriter& w) const {
  w.begin_object();
  w.field("id", id());
  w.field("experiment", to_string(experiment));
  w.field("controller", to_string(controller));
  w.field("attack", attack_enabled);
  switch (experiment) {
    case ExperimentKind::FlowModSuppression:
      w.field("ping_trials", static_cast<std::uint64_t>(ping_trials));
      w.field("iperf_trials", static_cast<std::uint64_t>(iperf_trials));
      w.field("iperf_duration_us", static_cast<std::int64_t>(iperf_duration));
      w.field("iperf_gap_us", static_cast<std::int64_t>(iperf_gap));
      break;
    case ExperimentKind::ConnectionInterruption:
      w.field("s2_fail_secure", s2_fail_secure);
      break;
    case ExperimentKind::Custom:
      break;
  }
  // Only explicit starts are encoded, keeping the default grids' JSON
  // byte-identical to earlier releases (the sweep determinism contract).
  if (attack_start >= 0) w.field("attack_start_us", static_cast<std::int64_t>(attack_start));
  w.end_object();
}

std::string RunSpec::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

void RunResult::write_json(JsonWriter& w) const {
  w.begin_object();
  w.field("experiment", kind_name());
  w.field("controller", to_string(controller));
  w.field("attack", attack_enabled);
  w.field("virtual_time_us", static_cast<std::int64_t>(virtual_time));
  w.field("events_executed", events_executed);
  write_json_fields(w);
  w.key("control_channel").begin_object();
  w.field("messages_interposed", messages_interposed);
  w.field("messages_suppressed", messages_suppressed);
  w.field("codec_ops_saved", codec_ops_saved);
  if (extended_control_channel_json()) {
    w.field("rules_skipped_by_guard", rules_skipped_by_guard);
    w.field("programs_executed", programs_executed);
  }
  w.end_object();
  w.end_object();
}

std::string RunResult::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

std::vector<RunSpec> table2_grid() {
  std::vector<RunSpec> grid;
  for (const ControllerKind kind : all_controller_kinds()) {
    for (const bool secure : {false, true}) {
      RunSpec spec;
      spec.experiment = ExperimentKind::ConnectionInterruption;
      spec.controller = kind;
      spec.attack_enabled = true;
      spec.s2_fail_secure = secure;
      grid.push_back(std::move(spec));
    }
  }
  return grid;
}

std::vector<RunSpec> fig11_grid(unsigned ping_trials, unsigned iperf_trials,
                                SimTime iperf_duration, SimTime iperf_gap) {
  std::vector<RunSpec> grid;
  for (const ControllerKind kind : all_controller_kinds()) {
    for (const bool attack : {false, true}) {
      RunSpec spec;
      spec.experiment = ExperimentKind::FlowModSuppression;
      spec.controller = kind;
      spec.attack_enabled = attack;
      spec.ping_trials = ping_trials;
      spec.iperf_trials = iperf_trials;
      spec.iperf_duration = iperf_duration;
      spec.iperf_gap = iperf_gap;
      grid.push_back(std::move(spec));
    }
  }
  return grid;
}

std::vector<RunSpec> fig11_campaign_grid(std::vector<SimTime> attack_starts,
                                         unsigned ping_trials, unsigned iperf_trials,
                                         SimTime iperf_duration, SimTime iperf_gap) {
  if (attack_starts.empty()) {
    attack_starts = {seconds(5), seconds(35), seconds(45)};
  }
  std::vector<RunSpec> grid;
  for (const ControllerKind kind : all_controller_kinds()) {
    RunSpec base;
    base.experiment = ExperimentKind::FlowModSuppression;
    base.controller = kind;
    base.ping_trials = ping_trials;
    base.iperf_trials = iperf_trials;
    base.iperf_duration = iperf_duration;
    base.iperf_gap = iperf_gap;

    RunSpec baseline = base;
    baseline.attack_enabled = false;
    grid.push_back(std::move(baseline));
    for (const SimTime start : attack_starts) {
      RunSpec attack = base;
      attack.attack_enabled = true;
      attack.attack_start = start;
      grid.push_back(std::move(attack));
    }
  }
  return grid;
}

// ---------------------------------------------------------------------------
// Warm-start support (spec-level pieces; warm_up/save/load live with the
// experiment implementations in scenario/experiment.cpp).
// ---------------------------------------------------------------------------

SimTime resolved_attack_start(const RunSpec& spec) {
  if (spec.attack_start >= 0) return spec.attack_start;
  return spec.experiment == ExperimentKind::ConnectionInterruption ? seconds(10) : seconds(5);
}

namespace {

/// End of the suppression workload script: pings from t=30 s, then the
/// iperf trials, then the 2 s drain (mirrors the schedule in
/// run_suppression_cell — the two must stay in lockstep).
SimTime suppression_end(const RunSpec& spec) {
  const SimTime iperf_start =
      seconds(30) + static_cast<SimTime>(spec.ping_trials) * kSecond + 5 * kSecond;
  return iperf_start +
         static_cast<SimTime>(spec.iperf_trials) * (spec.iperf_duration + spec.iperf_gap) +
         2 * kSecond;
}

}  // namespace

std::optional<std::string> warmup_signature(const RunSpec& spec) {
  switch (spec.experiment) {
    case ExperimentKind::FlowModSuppression: {
      // Excludes attack_enabled / attack_start / name: arming happens at
      // fork time, so any attack timing shares the workload prefix.
      std::string sig = "suppression/";
      sig += to_string(spec.controller);
      sig += "/p" + std::to_string(spec.ping_trials);
      sig += "/i" + std::to_string(spec.iperf_trials);
      sig += "/d" + std::to_string(spec.iperf_duration);
      sig += "/g" + std::to_string(spec.iperf_gap);
      return sig;
    }
    case ExperimentKind::ConnectionInterruption: {
      // The arm time is part of the prefix here (the injector observes the
      // connection setup), so it is in the signature; the s2 fail mode is
      // applied at the fork point and stays out.
      std::string sig = "interruption/";
      sig += to_string(spec.controller);
      sig += spec.attack_enabled ? "/attack" : "/baseline";
      sig += "/t" + std::to_string(resolved_attack_start(spec));
      return sig;
    }
    case ExperimentKind::Custom:
      return std::nullopt;
  }
  return std::nullopt;
}

RunSpec warmup_representative(const RunSpec& spec) {
  RunSpec rep = spec;
  rep.name.clear();
  rep.custom = nullptr;
  switch (spec.experiment) {
    case ExperimentKind::FlowModSuppression:
      rep.attack_enabled = false;
      rep.attack_start = -1;
      break;
    case ExperimentKind::ConnectionInterruption:
      rep.s2_fail_secure = false;
      break;
    case ExperimentKind::Custom:
      break;
  }
  return rep;
}

SimTime fork_time(const RunSpec& spec) {
  switch (spec.experiment) {
    case ExperimentKind::FlowModSuppression:
      // Baselines never diverge from the representative: fork at the end
      // and the whole run is shared.
      return spec.attack_enabled ? resolved_attack_start(spec) : suppression_end(spec);
    case ExperimentKind::ConnectionInterruption:
      // The s2 fail bit is first read when the switch notices the lost
      // connection at t=62 s; t=55 s is safely after σ2 has fired and
      // before any read.
      return seconds(55);
    case ExperimentKind::Custom:
      break;
  }
  throw std::invalid_argument("fork_time: custom cells have no shared warm-up");
}

std::string render_results_table(const std::vector<const RunResult*>& results) {
  const RunResult* first = nullptr;
  for (const RunResult* r : results) {
    if (r != nullptr) {
      first = r;
      break;
    }
  }
  if (first == nullptr) return "";
  monitor::TextTable table(first->row_header());
  for (const RunResult* r : results) {
    if (r != nullptr) table.add_row(r->to_row());
  }
  return table.to_string();
}

}  // namespace attain::scenario
