#include "scenario/run.hpp"

#include "attain/monitor/metrics.hpp"

namespace attain::scenario {

std::string to_string(ExperimentKind kind) {
  switch (kind) {
    case ExperimentKind::FlowModSuppression: return "suppression";
    case ExperimentKind::ConnectionInterruption: return "interruption";
    case ExperimentKind::Custom: return "custom";
  }
  return "?";
}

std::string RunSpec::id() const {
  if (!name.empty()) return name;
  std::string id = to_string(experiment);
  id += '/';
  id += to_string(controller);
  switch (experiment) {
    case ExperimentKind::FlowModSuppression:
      id += attack_enabled ? "/attack" : "/baseline";
      break;
    case ExperimentKind::ConnectionInterruption:
      id += s2_fail_secure ? "/fail-secure" : "/fail-safe";
      if (!attack_enabled) id += "/baseline";
      break;
    case ExperimentKind::Custom:
      break;
  }
  return id;
}

void RunSpec::write_json(JsonWriter& w) const {
  w.begin_object();
  w.field("id", id());
  w.field("experiment", to_string(experiment));
  w.field("controller", to_string(controller));
  w.field("attack", attack_enabled);
  switch (experiment) {
    case ExperimentKind::FlowModSuppression:
      w.field("ping_trials", static_cast<std::uint64_t>(ping_trials));
      w.field("iperf_trials", static_cast<std::uint64_t>(iperf_trials));
      w.field("iperf_duration_us", static_cast<std::int64_t>(iperf_duration));
      w.field("iperf_gap_us", static_cast<std::int64_t>(iperf_gap));
      break;
    case ExperimentKind::ConnectionInterruption:
      w.field("s2_fail_secure", s2_fail_secure);
      break;
    case ExperimentKind::Custom:
      break;
  }
  w.end_object();
}

std::string RunSpec::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

void RunResult::write_json(JsonWriter& w) const {
  w.begin_object();
  w.field("experiment", kind_name());
  w.field("controller", to_string(controller));
  w.field("attack", attack_enabled);
  w.field("virtual_time_us", static_cast<std::int64_t>(virtual_time));
  w.field("events_executed", events_executed);
  write_json_fields(w);
  w.key("control_channel").begin_object();
  w.field("messages_interposed", messages_interposed);
  w.field("messages_suppressed", messages_suppressed);
  w.field("codec_ops_saved", codec_ops_saved);
  w.end_object();
  w.end_object();
}

std::string RunResult::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

std::vector<RunSpec> table2_grid() {
  std::vector<RunSpec> grid;
  for (const ControllerKind kind : all_controller_kinds()) {
    for (const bool secure : {false, true}) {
      RunSpec spec;
      spec.experiment = ExperimentKind::ConnectionInterruption;
      spec.controller = kind;
      spec.attack_enabled = true;
      spec.s2_fail_secure = secure;
      grid.push_back(std::move(spec));
    }
  }
  return grid;
}

std::vector<RunSpec> fig11_grid(unsigned ping_trials, unsigned iperf_trials,
                                SimTime iperf_duration, SimTime iperf_gap) {
  std::vector<RunSpec> grid;
  for (const ControllerKind kind : all_controller_kinds()) {
    for (const bool attack : {false, true}) {
      RunSpec spec;
      spec.experiment = ExperimentKind::FlowModSuppression;
      spec.controller = kind;
      spec.attack_enabled = attack;
      spec.ping_trials = ping_trials;
      spec.iperf_trials = iperf_trials;
      spec.iperf_duration = iperf_duration;
      spec.iperf_gap = iperf_gap;
      grid.push_back(std::move(spec));
    }
  }
  return grid;
}

std::string render_results_table(const std::vector<const RunResult*>& results) {
  const RunResult* first = nullptr;
  for (const RunResult* r : results) {
    if (r != nullptr) {
      first = r;
      break;
    }
  }
  if (first == nullptr) return "";
  monitor::TextTable table(first->row_header());
  for (const RunResult* r : results) {
    if (r != nullptr) table.add_row(r->to_row());
  }
  return table.to_string();
}

}  // namespace attain::scenario
