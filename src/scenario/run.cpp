#include "scenario/run.hpp"

#include <algorithm>
#include <atomic>

#include "attain/monitor/metrics.hpp"

namespace attain::scenario {

namespace {
std::atomic<bool> g_extended_control_channel_json{false};
}  // namespace

void set_extended_control_channel_json(bool enabled) {
  g_extended_control_channel_json.store(enabled, std::memory_order_relaxed);
}

bool extended_control_channel_json() {
  return g_extended_control_channel_json.load(std::memory_order_relaxed);
}

std::string to_string(ExperimentKind kind) {
  switch (kind) {
    case ExperimentKind::FlowModSuppression: return "suppression";
    case ExperimentKind::ConnectionInterruption: return "interruption";
    case ExperimentKind::Volumetric: return "volumetric";
    case ExperimentKind::Custom: return "custom";
  }
  return "?";
}

std::string to_string(VolumetricKind kind) {
  switch (kind) {
    case VolumetricKind::PacketInFlood: return "packet-in-flood";
    case VolumetricKind::TableOverflow: return "table-overflow";
    case VolumetricKind::SlowRate: return "slow-rate";
  }
  return "?";
}

namespace {

/// "/t35" for whole seconds, "/t3500000us" otherwise — appended to ids of
/// cells with an explicit attack start so campaign cells stay distinct.
std::string attack_start_suffix(SimTime start) {
  if (start % kSecond == 0) return "/t" + std::to_string(start / kSecond);
  return "/t" + std::to_string(start) + "us";
}

}  // namespace

std::string RunSpec::id() const {
  if (!name.empty()) return name;
  std::string id = to_string(experiment);
  if (experiment == ExperimentKind::Volumetric) {
    id += '/' + to_string(volumetric) + '/' + topology.id();
  } else if (!topology.is_enterprise()) {
    id += '/' + topology.id();
  }
  id += '/';
  id += to_string(controller);
  switch (experiment) {
    case ExperimentKind::FlowModSuppression:
      id += attack_enabled ? "/attack" : "/baseline";
      break;
    case ExperimentKind::ConnectionInterruption:
      id += options.fail_secure ? "/fail-secure" : "/fail-safe";
      if (!attack_enabled) id += "/baseline";
      break;
    case ExperimentKind::Volumetric:
      if (!attack_enabled) id += "/baseline";
      break;
    case ExperimentKind::Custom:
      break;
  }
  if (attack_enabled && attack_start >= 0) id += attack_start_suffix(attack_start);
  return id;
}

void RunSpec::write_json(JsonWriter& w) const {
  w.begin_object();
  w.field("id", id());
  w.field("experiment", to_string(experiment));
  w.field("controller", to_string(controller));
  w.field("attack", attack_enabled);
  switch (experiment) {
    case ExperimentKind::FlowModSuppression:
      w.field("ping_trials", static_cast<std::uint64_t>(ping_trials));
      w.field("iperf_trials", static_cast<std::uint64_t>(iperf_trials));
      w.field("iperf_duration_us", static_cast<std::int64_t>(iperf_duration));
      w.field("iperf_gap_us", static_cast<std::int64_t>(iperf_gap));
      break;
    case ExperimentKind::ConnectionInterruption:
      w.field("s2_fail_secure", options.fail_secure);
      break;
    case ExperimentKind::Volumetric:
      w.field("volumetric", to_string(volumetric));
      w.field("fail_secure", options.fail_secure);
      w.field("flood_flows", static_cast<std::uint64_t>(flood_flows));
      w.field("flood_duration_us", static_cast<std::int64_t>(flood_duration));
      w.field("flood_batch_us", static_cast<std::int64_t>(flood_batch));
      w.field("table_capacity", static_cast<std::uint64_t>(table_capacity));
      break;
    case ExperimentKind::Custom:
      break;
  }
  // The default topology and default options are left implicit, keeping the
  // historical grids' JSON byte-identical to earlier releases (the sweep
  // determinism contract). Non-default values round-trip explicitly.
  if (!topology.is_enterprise()) {
    w.key("topology");
    topology.write_json(w);
  }
  if (options.use_compiled != Options{}.use_compiled ||
      options.extended_control_channel_json != Options{}.extended_control_channel_json) {
    w.key("options").begin_object();
    w.field("use_compiled", options.use_compiled);
    w.field("extended_control_channel_json", options.extended_control_channel_json);
    w.end_object();
  }
  // Only explicit starts are encoded, for the same reason.
  if (attack_start >= 0) w.field("attack_start_us", static_cast<std::int64_t>(attack_start));
  w.end_object();
}

std::string RunSpec::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

void RunResult::write_json(JsonWriter& w) const {
  w.begin_object();
  w.field("experiment", kind_name());
  w.field("controller", to_string(controller));
  w.field("attack", attack_enabled);
  w.field("virtual_time_us", static_cast<std::int64_t>(virtual_time));
  w.field("events_executed", events_executed);
  write_json_fields(w);
  w.key("control_channel").begin_object();
  w.field("messages_interposed", messages_interposed);
  w.field("messages_suppressed", messages_suppressed);
  w.field("codec_ops_saved", codec_ops_saved);
  if (options.extended_control_channel_json || extended_control_channel_json()) {
    w.field("rules_skipped_by_guard", rules_skipped_by_guard);
    w.field("programs_executed", programs_executed);
  }
  w.end_object();
  w.end_object();
}

std::string RunResult::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

GridBuilder& GridBuilder::experiment(ExperimentKind kind) {
  experiment_ = kind;
  return *this;
}

GridBuilder& GridBuilder::volumetric(VolumetricKind kind) {
  experiment_ = ExperimentKind::Volumetric;
  volumetrics_.push_back(kind);
  return *this;
}

GridBuilder& GridBuilder::controllers(std::vector<ControllerKind> kinds) {
  controllers_ = std::move(kinds);
  return *this;
}

GridBuilder& GridBuilder::topology(topo::TopologySpec spec) {
  spec.check();
  topologies_.push_back(std::move(spec));
  return *this;
}

GridBuilder& GridBuilder::attack_modes(std::vector<bool> modes) {
  attack_modes_ = std::move(modes);
  return *this;
}

GridBuilder& GridBuilder::fail_modes(std::vector<bool> modes) {
  fail_modes_ = std::move(modes);
  return *this;
}

GridBuilder& GridBuilder::attack_starts(std::vector<SimTime> starts) {
  attack_starts_ = std::move(starts);
  return *this;
}

GridBuilder& GridBuilder::workload(unsigned ping_trials, unsigned iperf_trials,
                                   SimTime iperf_duration, SimTime iperf_gap) {
  ping_trials_ = ping_trials;
  iperf_trials_ = iperf_trials;
  iperf_duration_ = iperf_duration;
  iperf_gap_ = iperf_gap;
  return *this;
}

GridBuilder& GridBuilder::flood(std::uint32_t flows, SimTime duration, SimTime batch) {
  flood_flows_ = flows;
  flood_duration_ = duration;
  flood_batch_ = batch;
  return *this;
}

GridBuilder& GridBuilder::table_capacity(std::uint32_t capacity) {
  table_capacity_ = capacity;
  return *this;
}

GridBuilder& GridBuilder::options(Options base) {
  options_ = base;
  return *this;
}

std::vector<RunSpec> GridBuilder::build() const {
  // Resolve per-experiment axis defaults.
  std::vector<ControllerKind> controllers = controllers_;
  if (controllers.empty()) controllers = all_controller_kinds();
  std::vector<topo::TopologySpec> topologies = topologies_;
  if (topologies.empty()) topologies = {topo::TopologySpec::enterprise()};
  std::vector<bool> attack_modes = attack_modes_;
  if (attack_modes.empty()) {
    attack_modes = experiment_ == ExperimentKind::ConnectionInterruption
                       ? std::vector<bool>{true}
                       : std::vector<bool>{false, true};
  }
  std::vector<bool> fail_modes = fail_modes_;
  if (fail_modes.empty()) {
    fail_modes = experiment_ == ExperimentKind::ConnectionInterruption
                     ? std::vector<bool>{false, true}
                     : std::vector<bool>{options_.fail_secure};
  }
  std::vector<VolumetricKind> volumetrics = volumetrics_;
  if (volumetrics.empty()) volumetrics = {VolumetricKind::PacketInFlood};

  auto base_cell = [&](const topo::TopologySpec& topology, ControllerKind controller) {
    RunSpec spec;
    spec.experiment = experiment_;
    spec.controller = controller;
    spec.topology = topology;
    spec.options = options_;
    spec.ping_trials = ping_trials_;
    spec.iperf_trials = iperf_trials_;
    spec.iperf_duration = iperf_duration_;
    spec.iperf_gap = iperf_gap_;
    spec.flood_flows = flood_flows_;
    spec.flood_duration = flood_duration_;
    spec.flood_batch = flood_batch_;
    spec.table_capacity = table_capacity_;
    return spec;
  };

  // The attack axis for one (topology, controller, ...) slot: either the
  // plain on/off modes, or the campaign expansion (baseline cell when the
  // axis includes "off", then one attack cell per start).
  auto emit_attack_axis = [&](std::vector<RunSpec>& grid, const RunSpec& base) {
    if (attack_starts_.empty()) {
      for (const bool attack : attack_modes) {
        RunSpec cell = base;
        cell.attack_enabled = attack;
        grid.push_back(std::move(cell));
      }
      return;
    }
    if (std::find(attack_modes.begin(), attack_modes.end(), false) != attack_modes.end()) {
      RunSpec baseline = base;
      baseline.attack_enabled = false;
      grid.push_back(std::move(baseline));
    }
    for (const SimTime start : attack_starts_) {
      RunSpec cell = base;
      cell.attack_enabled = true;
      cell.attack_start = start;
      grid.push_back(std::move(cell));
    }
  };

  std::vector<RunSpec> grid;
  for (const topo::TopologySpec& topology : topologies) {
    for (const ControllerKind controller : controllers) {
      switch (experiment_) {
        case ExperimentKind::ConnectionInterruption:
          for (const bool secure : fail_modes) {
            RunSpec base = base_cell(topology, controller);
            base.options.fail_secure = secure;
            emit_attack_axis(grid, base);
          }
          break;
        case ExperimentKind::Volumetric:
          for (const VolumetricKind vkind : volumetrics) {
            for (const bool secure : fail_modes) {
              RunSpec base = base_cell(topology, controller);
              base.volumetric = vkind;
              base.options.fail_secure = secure;
              emit_attack_axis(grid, base);
            }
          }
          break;
        case ExperimentKind::FlowModSuppression:
        case ExperimentKind::Custom:
          for (const bool secure : fail_modes) {
            RunSpec base = base_cell(topology, controller);
            base.options.fail_secure = secure;
            emit_attack_axis(grid, base);
          }
          break;
      }
    }
  }
  return grid;
}

std::vector<RunSpec> table2_grid() {
  return GridBuilder().experiment(ExperimentKind::ConnectionInterruption).build();
}

std::vector<RunSpec> fig11_grid(unsigned ping_trials, unsigned iperf_trials,
                                SimTime iperf_duration, SimTime iperf_gap) {
  return GridBuilder()
      .experiment(ExperimentKind::FlowModSuppression)
      .workload(ping_trials, iperf_trials, iperf_duration, iperf_gap)
      .build();
}

std::vector<RunSpec> fig11_campaign_grid(std::vector<SimTime> attack_starts,
                                         unsigned ping_trials, unsigned iperf_trials,
                                         SimTime iperf_duration, SimTime iperf_gap) {
  if (attack_starts.empty()) {
    attack_starts = {seconds(5), seconds(35), seconds(45)};
  }
  return GridBuilder()
      .experiment(ExperimentKind::FlowModSuppression)
      .workload(ping_trials, iperf_trials, iperf_duration, iperf_gap)
      .attack_starts(std::move(attack_starts))
      .build();
}

// ---------------------------------------------------------------------------
// Warm-start support (spec-level pieces; warm_up/save/load live with the
// experiment implementations in scenario/experiment.cpp).
// ---------------------------------------------------------------------------

SimTime resolved_attack_start(const RunSpec& spec) {
  if (spec.attack_start >= 0) return spec.attack_start;
  return spec.experiment == ExperimentKind::ConnectionInterruption ? seconds(10) : seconds(5);
}

namespace {

/// End of the suppression workload script: pings from t=30 s, then the
/// iperf trials, then the 2 s drain (mirrors the schedule in
/// run_suppression_cell — the two must stay in lockstep).
SimTime suppression_end(const RunSpec& spec) {
  const SimTime iperf_start =
      seconds(30) + static_cast<SimTime>(spec.ping_trials) * kSecond + 5 * kSecond;
  return iperf_start +
         static_cast<SimTime>(spec.iperf_trials) * (spec.iperf_duration + spec.iperf_gap) +
         2 * kSecond;
}

/// Shared-prefix signature tokens for the axes every experiment carries:
/// the topology (enterprise implied for the historical signatures) and the
/// rule-evaluation engine (compiled implied; it changes the armed
/// executor's trajectory, so interpreter cells never share a prefix with
/// compiled ones).
std::string common_signature_suffix(const RunSpec& spec) {
  std::string sig;
  if (!spec.topology.is_enterprise()) sig += "/" + spec.topology.id();
  if (!spec.options.use_compiled) sig += "/interp";
  return sig;
}

}  // namespace

namespace {

/// End of the volumetric probe script: switches connect at t=1 s, the
/// probe ping starts at t=3 s (one trial per second, sized to outlast the
/// flood window), then a 2 s drain. Mirrors VolumetricWarmup's schedule.
unsigned volumetric_probe_trials(const RunSpec& spec) {
  return static_cast<unsigned>(spec.flood_duration / kSecond) + 10;
}

SimTime volumetric_end(const RunSpec& spec) {
  return seconds(3) + static_cast<SimTime>(volumetric_probe_trials(spec)) * kSecond +
         2 * kSecond;
}

}  // namespace

std::optional<std::string> warmup_signature(const RunSpec& spec) {
  switch (spec.experiment) {
    case ExperimentKind::FlowModSuppression: {
      // Excludes attack_enabled / attack_start / name: arming happens at
      // fork time, so any attack timing shares the workload prefix.
      std::string sig = "suppression/";
      sig += to_string(spec.controller);
      sig += "/p" + std::to_string(spec.ping_trials);
      sig += "/i" + std::to_string(spec.iperf_trials);
      sig += "/d" + std::to_string(spec.iperf_duration);
      sig += "/g" + std::to_string(spec.iperf_gap);
      return sig + common_signature_suffix(spec);
    }
    case ExperimentKind::ConnectionInterruption: {
      // The arm time is part of the prefix here (the injector observes the
      // connection setup), so it is in the signature; the s2 fail mode is
      // applied at the fork point and stays out.
      std::string sig = "interruption/";
      sig += to_string(spec.controller);
      sig += spec.attack_enabled ? "/attack" : "/baseline";
      sig += "/t" + std::to_string(resolved_attack_start(spec));
      return sig + common_signature_suffix(spec);
    }
    case ExperimentKind::Volumetric: {
      // The flood itself (shape, flow count, batching, timing) is applied
      // at fork time; the probe script depends only on flood_duration. The
      // table cap and chokepoint fail mode are build-time parameters.
      std::string sig = "volumetric/";
      sig += to_string(spec.controller);
      sig += "/d" + std::to_string(spec.flood_duration);
      sig += "/cap" + std::to_string(spec.table_capacity);
      if (spec.options.fail_secure) sig += "/secure";
      return sig + common_signature_suffix(spec);
    }
    case ExperimentKind::Custom:
      return std::nullopt;
  }
  return std::nullopt;
}

RunSpec warmup_representative(const RunSpec& spec) {
  RunSpec rep = spec;
  rep.name.clear();
  rep.custom = nullptr;
  switch (spec.experiment) {
    case ExperimentKind::FlowModSuppression:
      rep.attack_enabled = false;
      rep.attack_start = -1;
      break;
    case ExperimentKind::ConnectionInterruption:
      rep.options.fail_secure = false;
      break;
    case ExperimentKind::Volumetric:
      // Everything outside the signature normalizes to the defaults; the
      // flood is scheduled by finish(), so the representative is a pure
      // baseline.
      rep.attack_enabled = false;
      rep.attack_start = -1;
      rep.volumetric = VolumetricKind::PacketInFlood;
      rep.flood_flows = RunSpec{}.flood_flows;
      rep.flood_batch = RunSpec{}.flood_batch;
      break;
    case ExperimentKind::Custom:
      break;
  }
  return rep;
}

SimTime fork_time(const RunSpec& spec) {
  switch (spec.experiment) {
    case ExperimentKind::FlowModSuppression:
      // Baselines never diverge from the representative: fork at the end
      // and the whole run is shared.
      return spec.attack_enabled ? resolved_attack_start(spec) : suppression_end(spec);
    case ExperimentKind::ConnectionInterruption:
      // The s2 fail bit is first read when the switch notices the lost
      // connection at t=62 s; t=55 s is safely after σ2 has fired and
      // before any read.
      return seconds(55);
    case ExperimentKind::Volumetric:
      return spec.attack_enabled ? resolved_attack_start(spec) : volumetric_end(spec);
    case ExperimentKind::Custom:
      break;
  }
  throw std::invalid_argument("fork_time: custom cells have no shared warm-up");
}

std::uint64_t grid_digest(const std::vector<RunSpec>& grid) {
  // Digest the concatenated spec documents with a separator the JSON can
  // never contain, so cell boundaries stay unambiguous.
  std::string doc;
  for (const RunSpec& spec : grid) {
    doc += spec.to_json();
    doc += '\n';
  }
  return fnv1a64(doc);
}

std::string render_results_table(const std::vector<const RunResult*>& results) {
  const RunResult* first = nullptr;
  for (const RunResult* r : results) {
    if (r != nullptr) {
      first = r;
      break;
    }
  }
  if (first == nullptr) return "";
  monitor::TextTable table(first->row_header());
  for (const RunResult* r : results) {
    if (r != nullptr) table.add_row(r->to_row());
  }
  return table.to_string();
}

}  // namespace attain::scenario
