// The experiment harness: assembles a full testbed (simulated hosts,
// switches, controller, injector proxy, monitors) from a system model, and
// runs the paper's two case-study experiments with their §VII timing
// scripts. Cells are described by scenario::RunSpec (scenario/run.hpp) and
// executed — serially here or in parallel by sweep::SweepRunner — through
// scenario::run(); the SuppressionConfig/InterruptionConfig entry points
// below are thin compatibility wrappers over that API.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attain/dsl/compiler.hpp"
#include "attain/inject/proxy.hpp"
#include "attain/monitor/metrics.hpp"
#include "attain/monitor/monitor.hpp"
#include "chan/channel.hpp"
#include "ctl/controller.hpp"
#include "dpl/host.hpp"
#include "dpl/iperf.hpp"
#include "dpl/ping.hpp"
#include "scenario/enterprise.hpp"
#include "scenario/run.hpp"
#include "sim/link.hpp"
#include "sim/scheduler.hpp"
#include "swsim/switch.hpp"

namespace attain::scenario {

struct TestbedOptions {
  ControllerKind controller{ControllerKind::Pox};
  /// Data-plane links: the paper's 100 Mbps GENI links.
  sim::PipeConfig data_link{100'000'000, 200 * kMicrosecond, 512};
  /// Control-plane network (a dedicated switch in the paper's deployment);
  /// two segments per connection (switch↔proxy, proxy↔controller).
  sim::PipeConfig control_link{1'000'000'000, 150 * kMicrosecond, 0};
  /// Override the controller's per-message processing delay; negative
  /// keeps the controller implementation's default.
  SimTime controller_processing{-1};
  /// Record only counters in the monitor (full event logs get large under
  /// the iperf workloads).
  bool monitor_counters_only{true};
  /// Rule-evaluation engine for the injector (scenario::Options::use_compiled).
  bool use_compiled{true};
  /// Per-switch flow-table entry cap (0 = unlimited); the table-overflow
  /// attack's target surface.
  std::uint32_t table_capacity{0};
};

/// A fully wired simulated deployment of one system model. All components
/// share one Scheduler; every control-plane connection runs through one
/// RuntimeInjector instance (the paper's centralized, totally-ordered
/// proxy). A Testbed is single-threaded by construction — concurrent
/// Testbeds (the sweep engine) must each live on their own thread.
class Testbed {
 public:
  Testbed(topo::SystemModel model, TestbedOptions options = {});

  sim::Scheduler& scheduler() { return sched_; }
  const topo::SystemModel& model() const { return model_; }
  dpl::Host& host(const std::string& name);
  swsim::OpenFlowSwitch& switch_named(const std::string& name);
  ctl::Controller& controller() { return *controller_; }
  inject::RuntimeInjector& injector() { return *injector_; }
  monitor::Monitor& monitor() { return monitor_; }

  /// The control channels, in control_connections() order.
  const std::vector<std::unique_ptr<chan::Channel>>& channels() const { return channels_; }
  /// Counters summed across every channel and both directions.
  chan::DirectionCounters channel_totals() const;

  /// Schedules every switch's OpenFlow connect() at `when`.
  void connect_switches_at(SimTime when);

  /// Compiles the DSL source (attacker + attack blocks) against this
  /// testbed's system model. Throws on parse/compile errors.
  dsl::CompiledAttack compile_attack(const std::string& dsl_source);

  /// The single arming path: compiles `attack` (with full capability
  /// checking) and schedules arming it at `when`. The compiled attack and
  /// its capability map are kept alive by the testbed.
  void arm_attack_at(SimTime when, const lang::Attack& attack,
                     const model::CapabilityMap& capabilities);

  /// Thin DSL wrapper: parses `dsl_source` and delegates to the
  /// programmatic overload above.
  void arm_attack_at(SimTime when, const std::string& dsl_source);

  /// Runs the simulation to `deadline`.
  void run_until(SimTime deadline) { sched_.run_until(deadline); }

 private:
  void build();

  topo::SystemModel model_;
  TestbedOptions options_;
  sim::Scheduler sched_;
  monitor::Monitor monitor_;

  std::vector<std::unique_ptr<dpl::Host>> hosts_;
  std::vector<std::unique_ptr<swsim::OpenFlowSwitch>> switches_;
  std::unique_ptr<ctl::Controller> controller_;
  std::unique_ptr<inject::RuntimeInjector> injector_;

  // Data-plane pipes; owned here, looked up by (entity, port) for senders.
  std::vector<std::unique_ptr<sim::Pipe<pkt::Packet>>> data_pipes_;
  // Control-plane channels, one per control connection (pipes inside).
  std::vector<std::unique_ptr<chan::Channel>> channels_;

  // Armed attacks kept alive (executor holds references).
  struct ArmedAttack {
    dsl::CompiledAttack attack;
    model::CapabilityMap capabilities;
  };
  std::vector<std::unique_ptr<ArmedAttack>> armed_;
};

// ---------------------------------------------------------------------------
// Experiment 1 (§VII-B, Fig. 11): flow modification suppression.
// ---------------------------------------------------------------------------

/// Legacy cell description; to_run_spec() lifts it into the RunSpec API.
struct SuppressionConfig {
  ControllerKind controller{ControllerKind::Pox};
  bool attack_enabled{true};
  unsigned ping_trials{60};
  unsigned iperf_trials{5};
  SimTime iperf_duration{3 * kSecond};
  SimTime iperf_gap{2 * kSecond};
};

RunSpec to_run_spec(const SuppressionConfig& config);

class SuppressionResult : public RunResult {
 public:
  dpl::PingReport ping;
  std::vector<double> iperf_mbps;  // per trial

  // Control-plane accounting for the amplification analysis (E6).
  std::uint64_t packet_ins{0};
  std::uint64_t packet_outs{0};
  std::uint64_t flow_mods_observed{0};
  std::uint64_t flow_mods_suppressed{0};
  std::uint64_t data_packets_delivered{0};

  /// Mean throughput; std::nullopt when every trial moved zero bytes (the
  /// paper's "*", denial of service).
  std::optional<double> mean_throughput_mbps() const;
  /// Mean RTT in ms; std::nullopt when no ping was ever answered ("*").
  std::optional<double> mean_latency_ms() const;
  /// Control messages per delivered data packet (§VII-B's 2n + 2 bound).
  double control_amplification() const;

  std::string kind_name() const override { return "suppression"; }
  std::vector<std::string> row_header() const override;
  std::vector<std::string> to_row() const override;
  RunResultPtr clone() const override { return std::make_unique<SuppressionResult>(*this); }

 protected:
  void write_json_fields(JsonWriter& w) const override;
};

SuppressionResult run_flow_mod_suppression(const SuppressionConfig& config);

// ---------------------------------------------------------------------------
// Experiment 2 (§VII-C, Table II): connection interruption.
// ---------------------------------------------------------------------------

/// Legacy cell description; to_run_spec() lifts it into the RunSpec API.
struct InterruptionConfig {
  ControllerKind controller{ControllerKind::Pox};
  bool s2_fail_secure{false};
};

RunSpec to_run_spec(const InterruptionConfig& config);

class InterruptionResult : public RunResult {
 public:
  bool s2_fail_secure{false};

  // Table II's four questions (✓ = true).
  bool ext_to_ext_t30{false};   // h2 -> h1
  bool int_to_ext_t30{false};   // h6 -> h1
  bool ext_to_int_t50{false};   // h2 -> h3 (true = unauthorized access post-interruption)
  bool int_to_ext_t95{false};   // h6 -> h1 (false = denial of service)

  bool attack_reached_sigma3{false};  // Ryu: stays false (φ2 never fires)

  std::string kind_name() const override { return "interruption"; }
  std::vector<std::string> row_header() const override;
  std::vector<std::string> to_row() const override;
  RunResultPtr clone() const override { return std::make_unique<InterruptionResult>(*this); }

 protected:
  void write_json_fields(JsonWriter& w) const override;
};

InterruptionResult run_connection_interruption(const InterruptionConfig& config);

// ---------------------------------------------------------------------------
// Experiment 3: volumetric control-plane workloads (PACKET_IN flood, flow-
// table overflow, slow-rate starvation) on any generated topology.
// ---------------------------------------------------------------------------

class VolumetricResult : public RunResult {
 public:
  VolumetricKind volumetric{VolumetricKind::PacketInFlood};
  std::string topology_id;

  /// Attack-side accounting: spoofed frames injected at the edge, and the
  /// control-plane storm they provoked.
  std::uint64_t flood_packets_injected{0};
  std::uint64_t packet_ins{0};
  std::uint64_t packet_outs{0};
  std::uint64_t flow_mods_observed{0};
  /// FLOW_MOD ADDs refused by capped tables (summed over every switch);
  /// nonzero is the table-overflow attack's success observable.
  std::uint64_t flow_mods_rejected{0};
  std::uint64_t table_misses{0};
  std::uint64_t miss_drops{0};
  /// Flow-table occupancy summed over every switch: at the end of the run,
  /// and the peak seen by the 1 s occupancy sampler.
  std::uint64_t table_entries_final{0};
  std::uint64_t table_entries_peak{0};

  /// Victim-side observable: a background ping crossing the fabric for the
  /// whole flood window.
  dpl::PingReport probe;

  /// Probe mean RTT in ms; std::nullopt when no echo ever returned ("*").
  std::optional<double> probe_mean_rtt_ms() const;

  std::string kind_name() const override { return "volumetric"; }
  std::vector<std::string> row_header() const override;
  std::vector<std::string> to_row() const override;
  RunResultPtr clone() const override { return std::make_unique<VolumetricResult>(*this); }

 protected:
  void write_json_fields(JsonWriter& w) const override;
};

/// Renders Table II (the paper's transposed layout: questions as rows,
/// controller × fail-mode as columns) from the six runs.
std::string render_table2(const std::vector<InterruptionResult>& results);
/// Same, over sweep-produced results (non-interruption entries ignored).
std::string render_table2(const std::vector<const RunResult*>& results);

}  // namespace attain::scenario
