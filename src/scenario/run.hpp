// The redesigned scenario API: every experiment cell is a RunSpec (a pure
// value describing one deterministic simulation) and produces a RunResult
// (a polymorphic record that knows how to render itself as a table row and
// as field-order-stable JSON). The paper's two case studies — flow-mod
// suppression (§VII-B, Fig. 11) and connection interruption (§VII-C,
// Table II) — are the built-in experiments; RunSpec::custom opens the same
// machinery to arbitrary user scenarios. The sweep engine (src/sweep/)
// executes grids of RunSpecs in parallel; run() is the single-cell entry
// point it fans out over.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/types.hpp"
#include "ctl/factory.hpp"

namespace attain::scenario {

using ctl::ControllerKind;
using ctl::all_controller_kinds;
using ctl::controller_kind_from_name;
using ctl::make_controller;
using ctl::to_string;

enum class ExperimentKind {
  FlowModSuppression,    // §VII-B / Fig. 11
  ConnectionInterruption,  // §VII-C / Table II
  Custom,                // user-supplied runner in RunSpec::custom
};

std::string to_string(ExperimentKind kind);

class RunResult;
using RunResultPtr = std::unique_ptr<RunResult>;

/// One experiment cell: everything needed to reproduce one deterministic
/// simulation run. Specs are plain values — copyable, comparable by their
/// JSON form, and safe to ship across threads.
struct RunSpec {
  ExperimentKind experiment{ExperimentKind::FlowModSuppression};
  ControllerKind controller{ControllerKind::Pox};
  bool attack_enabled{true};

  /// Connection interruption: the Table II fail-mode knob.
  bool s2_fail_secure{false};

  /// Flow-mod suppression workload shape (§VII-B parameters).
  unsigned ping_trials{60};
  unsigned iperf_trials{5};
  SimTime iperf_duration{3 * kSecond};
  SimTime iperf_gap{2 * kSecond};

  /// Explicit cell id; when empty, id() derives one from the fields.
  std::string name;

  /// ExperimentKind::Custom: the cell's runner. Must be thread-safe with
  /// respect to other cells (no shared mutable state).
  std::function<RunResultPtr(const RunSpec&)> custom;

  /// Stable cell identifier, e.g. "interruption/POX/fail-secure" or
  /// "suppression/Ryu/attack".
  std::string id() const;

  /// Field-order-stable JSON encoding of the spec (custom runners encode
  /// only their id).
  void write_json(JsonWriter& w) const;
  std::string to_json() const;
};

/// Base of the result hierarchy. Concrete results (SuppressionResult,
/// InterruptionResult in scenario/experiment.hpp, or user types for custom
/// cells) add their experiment's metrics and implement the row/JSON
/// interface the sweep report and table renderers consume.
class RunResult {
 public:
  RunResult() = default;
  virtual ~RunResult() = default;

  ControllerKind controller{ControllerKind::Pox};
  bool attack_enabled{false};

  /// Virtual time the cell simulated (scheduler clock at teardown) and the
  /// number of events the scheduler executed — both deterministic.
  SimTime virtual_time{0};
  std::uint64_t events_executed{0};

  /// Control-channel accounting: injector stats plus chan::Channel counters
  /// summed across the testbed's connections (all deterministic).
  std::uint64_t messages_interposed{0};
  std::uint64_t messages_suppressed{0};
  std::uint64_t codec_ops_saved{0};

  /// Short experiment tag ("suppression", "interruption", ...).
  virtual std::string kind_name() const = 0;
  /// Column headers matching to_row(); identical for all results of one
  /// kind, so a grid renders as one monitor::TextTable.
  virtual std::vector<std::string> row_header() const = 0;
  /// This result as one table row.
  virtual std::vector<std::string> to_row() const = 0;
  /// Deep copy through the base pointer.
  virtual RunResultPtr clone() const = 0;

  /// Emits one JSON object: common fields first, then the subclass's
  /// metrics (write_json_fields). Field order is fixed — the sweep
  /// determinism tests compare these bytes.
  void write_json(JsonWriter& w) const;
  std::string to_json() const;

 protected:
  virtual void write_json_fields(JsonWriter& w) const = 0;
};

/// Runs one cell to completion on the calling thread. Dispatches on
/// spec.experiment; throws std::invalid_argument for a Custom spec without
/// a runner. This is the function the sweep engine parallelizes over.
RunResultPtr run(const RunSpec& spec);

// ---------------------------------------------------------------------------
// Grid builders for the paper's evaluation.
// ---------------------------------------------------------------------------

/// Table II grid: {Floodlight, POX, Ryu} × {fail-safe, fail-secure}.
std::vector<RunSpec> table2_grid();

/// Fig. 11 grid: {Floodlight, POX, Ryu} × {baseline, attack} with the given
/// workload shape (defaults are the quick-bench parameters).
std::vector<RunSpec> fig11_grid(unsigned ping_trials = 20, unsigned iperf_trials = 5,
                                SimTime iperf_duration = 3 * kSecond,
                                SimTime iperf_gap = 2 * kSecond);

/// Renders homogeneous results as one aligned table via the
/// row_header()/to_row() interface (null entries are skipped).
std::string render_results_table(const std::vector<const RunResult*>& results);

}  // namespace attain::scenario
