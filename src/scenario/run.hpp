// The redesigned scenario API: every experiment cell is a RunSpec (a pure
// value describing one deterministic simulation) and produces a RunResult
// (a polymorphic record that knows how to render itself as a table row and
// as field-order-stable JSON). The paper's two case studies — flow-mod
// suppression (§VII-B, Fig. 11) and connection interruption (§VII-C,
// Table II) — are the built-in experiments; RunSpec::custom opens the same
// machinery to arbitrary user scenarios. The sweep engine (src/sweep/)
// executes grids of RunSpecs in parallel; run() is the single-cell entry
// point it fans out over.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/json.hpp"
#include "common/types.hpp"
#include "ctl/factory.hpp"
#include "topo/generators.hpp"

namespace attain::scenario {

using ctl::ControllerKind;
using ctl::all_controller_kinds;
using ctl::controller_kind_from_name;
using ctl::make_controller;
using ctl::to_string;

enum class ExperimentKind {
  FlowModSuppression,    // §VII-B / Fig. 11
  ConnectionInterruption,  // §VII-C / Table II
  Volumetric,            // DDoS workload class (ROADMAP: flooding / slow-rate)
  Custom,                // user-supplied runner in RunSpec::custom
};

std::string to_string(ExperimentKind kind);

/// The volumetric (DDoS) workload shapes. All three inject spoofed
/// data-plane traffic at every host-bearing edge switch with per-switch
/// event batching (one scheduler event per switch per batch interval), so
/// event counts stay affordable on enterprise-scale fabrics.
enum class VolumetricKind {
  PacketInFlood,   // every packet a fresh flow: table miss -> PACKET_IN storm
  TableOverflow,   // fresh flows against a capped flow table: TABLE_FULL errors
  SlowRate,        // a small flow set re-sent each batch, pinning table entries
};

std::string to_string(VolumetricKind kind);

/// Cross-cutting run options, replacing the former post-construction
/// setters (set_extended_control_channel_json and friends). Carried by
/// value on RunSpec and RunResult and round-tripped through to_json /
/// save_result.
struct Options {
  /// Fail mode of the topology's chokepoint switch (s2 for the enterprise
  /// net — the Table II knob; the first core/spine for generated fabrics).
  bool fail_secure{false};
  /// Rule-evaluation engine: compiled flat programs (default) vs. the
  /// tree-walking interpreter.
  bool use_compiled{true};
  /// Emit the rule-engine counters in the result JSON's control_channel
  /// object (off by default: the sweep JSON stays byte-identical to
  /// earlier releases).
  bool extended_control_channel_json{false};

  friend bool operator==(const Options&, const Options&) = default;
};

class RunResult;
using RunResultPtr = std::unique_ptr<RunResult>;

/// One experiment cell: everything needed to reproduce one deterministic
/// simulation run. Specs are plain values — copyable, comparable by their
/// JSON form, and safe to ship across threads.
struct RunSpec {
  ExperimentKind experiment{ExperimentKind::FlowModSuppression};
  ControllerKind controller{ControllerKind::Pox};
  bool attack_enabled{true};

  /// The network under test. Defaults to the enterprise net, keeping
  /// pre-topology specs' ids and JSON byte-identical. Suppression and
  /// interruption run their §VII scripts on the enterprise net only;
  /// volumetric cells accept any topology.
  topo::TopologySpec topology{};

  /// Cross-cutting knobs (fail mode, rule engine, JSON extras). For
  /// interruption cells options.fail_secure is the Table II
  /// "s2 fail-secure" axis.
  Options options{};

  /// When the injector arms (virtual time). Negative means the
  /// experiment's §VII script default: 5 s for suppression, 10 s for
  /// interruption. Explicit values model injection campaigns ("same
  /// baseline, different attack timing") — see fig11_campaign_grid().
  SimTime attack_start{-1};

  /// Flow-mod suppression workload shape (§VII-B parameters).
  unsigned ping_trials{60};
  unsigned iperf_trials{5};
  SimTime iperf_duration{3 * kSecond};
  SimTime iperf_gap{2 * kSecond};

  /// Volumetric workload shape: which attack, how many distinct flows per
  /// edge switch, for how long, and the per-switch batching interval.
  VolumetricKind volumetric{VolumetricKind::PacketInFlood};
  std::uint32_t flood_flows{256};
  SimTime flood_duration{10 * kSecond};
  SimTime flood_batch{100 * kMillisecond};
  /// Per-switch flow-table cap (0 = unlimited); the TableOverflow target.
  std::uint32_t table_capacity{0};

  /// Explicit cell id; when empty, id() derives one from the fields.
  std::string name;

  /// ExperimentKind::Custom: the cell's runner. Must be thread-safe with
  /// respect to other cells (no shared mutable state).
  std::function<RunResultPtr(const RunSpec&)> custom;

  /// Stable cell identifier, e.g. "interruption/POX/fail-secure" or
  /// "suppression/Ryu/attack".
  std::string id() const;

  /// Field-order-stable JSON encoding of the spec (custom runners encode
  /// only their id).
  void write_json(JsonWriter& w) const;
  std::string to_json() const;
};

/// Base of the result hierarchy. Concrete results (SuppressionResult,
/// InterruptionResult in scenario/experiment.hpp, or user types for custom
/// cells) add their experiment's metrics and implement the row/JSON
/// interface the sweep report and table renderers consume.
class RunResult {
 public:
  RunResult() = default;
  virtual ~RunResult() = default;

  ControllerKind controller{ControllerKind::Pox};
  bool attack_enabled{false};

  /// The spec's options, echoed into the result so JSON rendering and the
  /// binary round-trip are self-contained (no process-global state needed).
  Options options{};

  /// Virtual time the cell simulated (scheduler clock at teardown) and the
  /// number of events the scheduler executed — both deterministic.
  SimTime virtual_time{0};
  std::uint64_t events_executed{0};

  /// Control-channel accounting: injector stats plus chan::Channel counters
  /// summed across the testbed's connections (all deterministic).
  std::uint64_t messages_interposed{0};
  std::uint64_t messages_suppressed{0};
  std::uint64_t codec_ops_saved{0};

  /// Rule-engine accounting (AttackExecutor stats; zero when no attack was
  /// armed). Deterministic, but emitted in JSON only when
  /// options.extended_control_channel_json (or the legacy process-global
  /// set_extended_control_channel_json(true)) — the default JSON stays
  /// byte-identical across releases (the sweep determinism contract).
  std::uint64_t rules_skipped_by_guard{0};
  std::uint64_t programs_executed{0};

  /// Short experiment tag ("suppression", "interruption", ...).
  virtual std::string kind_name() const = 0;
  /// Column headers matching to_row(); identical for all results of one
  /// kind, so a grid renders as one monitor::TextTable.
  virtual std::vector<std::string> row_header() const = 0;
  /// This result as one table row.
  virtual std::vector<std::string> to_row() const = 0;
  /// Deep copy through the base pointer.
  virtual RunResultPtr clone() const = 0;

  /// Emits one JSON object: common fields first, then the subclass's
  /// metrics (write_json_fields). Field order is fixed — the sweep
  /// determinism tests compare these bytes.
  void write_json(JsonWriter& w) const;
  std::string to_json() const;

 protected:
  virtual void write_json_fields(JsonWriter& w) const = 0;
};

/// Runs one cell to completion on the calling thread. Dispatches on
/// spec.experiment; throws std::invalid_argument for a Custom spec without
/// a runner. This is the function the sweep engine parallelizes over.
RunResultPtr run(const RunSpec& spec);

/// Legacy process-global variant of Options::extended_control_channel_json;
/// prefer the per-spec option. Either source being true enables the extra
/// counters at render time.
void set_extended_control_channel_json(bool enabled);
bool extended_control_channel_json();

// ---------------------------------------------------------------------------
// Grid construction. GridBuilder composes the axes (topology x controller x
// attack x fail mode x attack start x volumetric shape); the named
// functions below are thin wrappers preserving the paper grids' exact cell
// order and bytes.
// ---------------------------------------------------------------------------

/// Fluent builder for sweep grids. Unset axes take the experiment's
/// defaults, so e.g. GridBuilder().experiment(interruption).build() is
/// exactly table2_grid(). Cell order is row-major over
/// topologies (outer) x controllers x the experiment's inner axes — the
/// historical grid orders fall out as the single-topology case.
class GridBuilder {
 public:
  GridBuilder& experiment(ExperimentKind kind);
  /// Adds one volumetric shape (implies ExperimentKind::Volumetric).
  GridBuilder& volumetric(VolumetricKind kind);
  GridBuilder& controllers(std::vector<ControllerKind> kinds);
  /// Adds one topology to the axis (default: enterprise only).
  GridBuilder& topology(topo::TopologySpec spec);
  /// Attack on/off axis (default per experiment: suppression and
  /// volumetric {baseline, attack}; interruption {attack}).
  GridBuilder& attack_modes(std::vector<bool> modes);
  /// Chokepoint fail-mode axis (default: interruption {safe, secure};
  /// others {safe}).
  GridBuilder& fail_modes(std::vector<bool> modes);
  /// Campaign axis: one attack cell per start (plus a baseline when the
  /// attack axis includes false). Empty = the experiment's default start.
  GridBuilder& attack_starts(std::vector<SimTime> starts);
  /// Suppression workload shape.
  GridBuilder& workload(unsigned ping_trials, unsigned iperf_trials, SimTime iperf_duration,
                        SimTime iperf_gap);
  /// Volumetric workload shape.
  GridBuilder& flood(std::uint32_t flows, SimTime duration, SimTime batch);
  GridBuilder& table_capacity(std::uint32_t capacity);
  /// Base options applied to every cell (fail_modes overrides fail_secure).
  GridBuilder& options(Options base);

  std::vector<RunSpec> build() const;

 private:
  ExperimentKind experiment_{ExperimentKind::FlowModSuppression};
  std::vector<VolumetricKind> volumetrics_;
  std::vector<ControllerKind> controllers_;
  std::vector<topo::TopologySpec> topologies_;
  std::vector<bool> attack_modes_;
  std::vector<bool> fail_modes_;
  std::vector<SimTime> attack_starts_;
  unsigned ping_trials_{60};
  unsigned iperf_trials_{5};
  SimTime iperf_duration_{3 * kSecond};
  SimTime iperf_gap_{2 * kSecond};
  std::uint32_t flood_flows_{256};
  SimTime flood_duration_{10 * kSecond};
  SimTime flood_batch_{100 * kMillisecond};
  std::uint32_t table_capacity_{0};
  Options options_{};
};

/// Table II grid: {Floodlight, POX, Ryu} × {fail-safe, fail-secure}.
std::vector<RunSpec> table2_grid();

/// Fig. 11 grid: {Floodlight, POX, Ryu} × {baseline, attack} with the given
/// workload shape (defaults are the quick-bench parameters).
std::vector<RunSpec> fig11_grid(unsigned ping_trials = 20, unsigned iperf_trials = 5,
                                SimTime iperf_duration = 3 * kSecond,
                                SimTime iperf_gap = 2 * kSecond);

/// Injection-campaign grid: for each controller, one baseline plus one
/// attack cell per entry of `attack_starts` (empty means the default
/// {5 s, 35 s, 45 s} sweep over attack timing). All cells of one
/// controller share a single warm-up signature, so warm-start sweeps run
/// the workload prefix once per controller instead of once per cell.
std::vector<RunSpec> fig11_campaign_grid(std::vector<SimTime> attack_starts = {},
                                         unsigned ping_trials = 20, unsigned iperf_trials = 5,
                                         SimTime iperf_duration = 3 * kSecond,
                                         SimTime iperf_gap = 2 * kSecond);

// ---------------------------------------------------------------------------
// Warm-start support: the phased run contract the snapshot/fork layer
// (src/snap/) and the sweep engine's warm-start mode build on. run() is
// implemented as exactly warm_up + advance_to + finish, so a forked (warm)
// cell and a cold cell execute the same instruction sequence — byte-equal
// results are guaranteed structurally, not incidentally. See
// docs/sweep.md's warm-start section.
// ---------------------------------------------------------------------------

/// The arm time `spec` resolves to: attack_start when >= 0, otherwise the
/// experiment's script default (5 s suppression, 10 s interruption).
SimTime resolved_attack_start(const RunSpec& spec);

/// Warm-up signature: cells with equal signatures share a byte-identical
/// pre-fork trajectory and can run from one shared warm-up. The signature
/// covers topology + controller + traffic shape and excludes everything
/// applied at fork time (suppression: attack arming and timing;
/// interruption: the s2 fail mode). Custom cells return nullopt and are
/// never grouped.
std::optional<std::string> warmup_signature(const RunSpec& spec);

/// The spec whose warm-up a signature group shares: `spec` with its
/// fork-applied parameters normalized away. Every cell of one signature
/// maps to the same representative.
RunSpec warmup_representative(const RunSpec& spec);

/// Virtual time at which `spec` diverges from its group's shared prefix:
/// the attack arm time for suppression and volumetric attack cells, the
/// workload end for their baselines (the whole run is shared), and t=55 s
/// for interruption cells (after σ2, before the fail-mode bit is first
/// read at the t=62 s connection loss). Throws for Custom specs.
SimTime fork_time(const RunSpec& spec);

/// A paused in-flight experiment: testbed built and workload scripted, but
/// advanced only part-way. advance_to() may be called repeatedly with
/// increasing deadlines (the group runner steps through its cells' fork
/// times in order); finish() applies one cell's fork-time parameters and
/// runs it to completion. After finish() the phase is spent.
class WarmupPhase {
 public:
  virtual ~WarmupPhase() = default;
  virtual void advance_to(SimTime deadline) = 0;
  virtual RunResultPtr finish(const RunSpec& cell) = 0;
};
using WarmupPhasePtr = std::unique_ptr<WarmupPhase>;

/// Builds and scripts the testbed for `representative` (as produced by
/// warmup_representative) without running it. Throws for Custom specs.
WarmupPhasePtr warm_up(const RunSpec& representative);

/// Binary round-trip for shipping results across the snapshot fork's
/// process boundary. Suppression, interruption, and volumetric results
/// only; custom result types throw std::invalid_argument.
void save_result(const RunResult& result, ByteWriter& w);
RunResultPtr load_result(ByteReader& r);

/// Stable content digest of a result: fnv1a64 over its save_result
/// encoding. The campaign journal (sweep/journal.*) stores it per record
/// so a resumed campaign can verify what it loaded. Throws like
/// save_result for custom result types.
std::uint64_t result_digest(const RunResult& result);

/// Stable digest of a whole grid (over the specs' JSON forms, in grid
/// order). A campaign journal is bound to this value: resuming against a
/// different grid is an error, not a silent partial re-run.
std::uint64_t grid_digest(const std::vector<RunSpec>& grid);

/// Renders homogeneous results as one aligned table via the
/// row_header()/to_row() interface (null entries are skipped).
std::string render_results_table(const std::vector<const RunResult*>& results);

}  // namespace attain::scenario
