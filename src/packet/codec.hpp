// Wire codec for data-plane packets. OpenFlow PACKET_IN/PACKET_OUT carry
// raw frame bytes, so the simulator serializes packets to a faithful wire
// format and parses them back; the injector can therefore inspect, modify,
// and fuzz the embedded frames exactly as a real interposer would.
//
// Encoding notes: standard Ethernet/ARP/IPv4/ICMP/TCP/UDP layouts are used.
// The simulator's non-materialized payload is encoded as `payload_size`
// bytes, the first 8 of which carry `payload_tag` (big-endian) when the
// payload is large enough; checksums are computed but not verified.
#pragma once

#include <span>

#include "common/bytes.hpp"
#include "packet/packet.hpp"

namespace attain::pkt {

/// Serializes a packet to wire bytes. The result's size equals
/// `packet.wire_size()`.
Bytes encode(const Packet& packet);

/// Parses wire bytes back into a Packet. Throws DecodeError on truncated or
/// unsupported frames (only EtherTypes/IpProtos modelled above are valid).
Packet decode(std::span<const std::uint8_t> data);

/// RFC 1071 ones'-complement checksum over `data` (used for IPv4/ICMP).
std::uint16_t inet_checksum(std::span<const std::uint8_t> data);

}  // namespace attain::pkt
