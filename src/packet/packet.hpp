// Data-plane packet model: address types and typed protocol headers for the
// protocols the case study exercises (Ethernet, ARP, IPv4, ICMP, TCP-lite,
// UDP). Packets can be serialized to wire bytes (packet/codec.hpp) so the
// OpenFlow PACKET_IN / PACKET_OUT path carries real frames.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace attain::pkt {

/// 48-bit MAC address.
struct MacAddress {
  std::array<std::uint8_t, 6> octets{};

  static MacAddress broadcast() { return MacAddress{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}}; }
  /// Parses "aa:bb:cc:dd:ee:ff"; throws std::invalid_argument on bad input.
  static MacAddress parse(const std::string& text);

  bool is_broadcast() const { return *this == broadcast(); }
  bool is_multicast() const { return (octets[0] & 0x01) != 0; }
  std::uint64_t to_u64() const;
  static MacAddress from_u64(std::uint64_t value);
  std::string to_string() const;

  friend auto operator<=>(const MacAddress&, const MacAddress&) = default;
};

/// IPv4 address stored in host order for arithmetic convenience.
struct Ipv4Address {
  std::uint32_t value{0};

  /// Parses dotted-quad "10.0.1.2"; throws std::invalid_argument on bad input.
  static Ipv4Address parse(const std::string& text);
  std::string to_string() const;

  friend auto operator<=>(const Ipv4Address&, const Ipv4Address&) = default;
};

enum class EtherType : std::uint16_t {
  Ipv4 = 0x0800,
  Arp = 0x0806,
  Lldp = 0x88cc,
};

enum class IpProto : std::uint8_t {
  Icmp = 1,
  Tcp = 6,
  Udp = 17,
};

struct EthernetHeader {
  MacAddress dst;
  MacAddress src;
  std::uint16_t ether_type{0x0800};
  /// 802.1Q VLAN id, 0xffff = untagged (OpenFlow 1.0 OFP_VLAN_NONE).
  std::uint16_t vlan_id{0xffff};
  std::uint8_t vlan_pcp{0};
};

enum class ArpOp : std::uint16_t { Request = 1, Reply = 2 };

struct ArpHeader {
  ArpOp op{ArpOp::Request};
  MacAddress sender_mac;
  Ipv4Address sender_ip;
  MacAddress target_mac;
  Ipv4Address target_ip;
};

struct Ipv4Header {
  std::uint8_t tos{0};
  std::uint8_t ttl{64};
  std::uint8_t proto{6};
  Ipv4Address src;
  Ipv4Address dst;
};

enum class IcmpType : std::uint8_t { EchoReply = 0, EchoRequest = 8 };

struct IcmpHeader {
  IcmpType type{IcmpType::EchoRequest};
  std::uint8_t code{0};
  std::uint16_t id{0};
  std::uint16_t seq{0};
};

/// Simplified TCP header: enough for the iperf-like reliable transport and
/// for OpenFlow L4 matching (ports). Flags follow real TCP bit positions.
struct TcpHeader {
  std::uint16_t src_port{0};
  std::uint16_t dst_port{0};
  std::uint32_t seq{0};
  std::uint32_t ack{0};
  std::uint8_t flags{0};  // FIN=0x01 SYN=0x02 RST=0x04 PSH=0x08 ACK=0x10
  std::uint16_t window{0};
};

inline constexpr std::uint8_t kTcpFin = 0x01;
inline constexpr std::uint8_t kTcpSyn = 0x02;
inline constexpr std::uint8_t kTcpRst = 0x04;
inline constexpr std::uint8_t kTcpPsh = 0x08;
inline constexpr std::uint8_t kTcpAck = 0x10;

struct UdpHeader {
  std::uint16_t src_port{0};
  std::uint16_t dst_port{0};
};

/// A data-plane packet: an Ethernet frame with at most one L3 header and at
/// most one L4 header. `payload_size` counts application bytes that are not
/// materialized (the simulator tracks sizes, not content); `payload_tag`
/// optionally carries a small amount of application metadata end to end
/// (e.g. a ping sequence's send timestamp).
struct Packet {
  EthernetHeader eth;
  std::optional<ArpHeader> arp;
  std::optional<Ipv4Header> ipv4;
  std::optional<IcmpHeader> icmp;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::uint32_t payload_size{0};
  std::uint64_t payload_tag{0};

  /// Total on-wire frame size in bytes (headers + payload).
  std::size_t wire_size() const;

  /// One-line human-readable rendering for logs ("h1→h6 ICMP echo-req seq=3").
  std::string summary() const;
};

/// Convenience constructors for the packet shapes the workloads use.
Packet make_arp_request(MacAddress sender_mac, Ipv4Address sender_ip, Ipv4Address target_ip);
Packet make_arp_reply(MacAddress sender_mac, Ipv4Address sender_ip, MacAddress target_mac,
                      Ipv4Address target_ip);
Packet make_icmp_echo(MacAddress src_mac, MacAddress dst_mac, Ipv4Address src_ip,
                      Ipv4Address dst_ip, IcmpType type, std::uint16_t id, std::uint16_t seq,
                      std::uint64_t tag);
Packet make_tcp(MacAddress src_mac, MacAddress dst_mac, Ipv4Address src_ip, Ipv4Address dst_ip,
                const TcpHeader& tcp, std::uint32_t payload_size, std::uint64_t tag);

/// LLDP-style discovery probe, as emitted by controllers for topology
/// discovery. The chassis/port TLVs are packed into the payload tag:
/// (datapath id << 16) | port number. Destination is the LLDP nearest-
/// bridge multicast group.
Packet make_lldp(MacAddress src_mac, std::uint64_t dpid, std::uint16_t port);

/// Extracts (dpid, port) from an LLDP probe; returns false if the packet
/// is not one of ours.
bool parse_lldp(const Packet& packet, std::uint64_t& dpid, std::uint16_t& port);

}  // namespace attain::pkt
