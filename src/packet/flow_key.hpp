// Canonical packed 12-tuple flow key. The data-plane fast path extracts a
// FlowKey exactly once per packet at switch ingress; all downstream flow
// classification (exact-match hash lookup, per-wildcard-mask bucket probes)
// operates on the key instead of re-parsing the packet's optional protocol
// headers per table entry.
//
// The field derivation mirrors OpenFlow 1.0 matching (ofp::Match::matches):
// absent L3/L4 fields canonicalize to zero, ARP reuses nw_proto for the
// opcode and nw_src/nw_dst for sender/target IP, and ICMP type/code ride in
// tp_src/tp_dst. The invariant the classifier relies on (and
// test_flow_key.cpp checks):
//
//   match.matches(packet, port) == match.matches(FlowKey::from_packet(packet, port))
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "packet/packet.hpp"

namespace attain::pkt {

struct FlowKey {
  std::uint64_t dl_src{0};  // 48-bit MAC in the low bits
  std::uint64_t dl_dst{0};
  std::uint32_t nw_src{0};
  std::uint32_t nw_dst{0};
  std::uint16_t in_port{0};
  std::uint16_t dl_vlan{0};
  std::uint16_t dl_type{0};
  std::uint16_t tp_src{0};
  std::uint16_t tp_dst{0};
  std::uint8_t dl_vlan_pcp{0};
  std::uint8_t nw_tos{0};
  std::uint8_t nw_proto{0};

  /// Extracts the key for `packet` arriving on `in_port` (one parse of the
  /// optional header chain, total).
  static FlowKey from_packet(const Packet& packet, std::uint16_t in_port);

  /// Cheap mixing hash over the packed fields (SplitMix64 finalizer per
  /// 64-bit word). Not cryptographic; collision quality is good enough for
  /// the flow-table hash maps.
  std::size_t hash() const;

  std::string to_string() const;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

/// Hasher for unordered containers keyed by FlowKey.
struct FlowKeyHash {
  std::size_t operator()(const FlowKey& key) const { return key.hash(); }
};

}  // namespace attain::pkt
