#include "packet/codec.hpp"

namespace attain::pkt {

namespace {

constexpr std::uint16_t kEthTypeVlan = 0x8100;

void encode_payload(ByteWriter& w, std::uint32_t payload_size, std::uint64_t tag) {
  if (payload_size >= 8) {
    w.u64(tag);
    w.pad(payload_size - 8);
  } else {
    w.pad(payload_size);
  }
}

struct PayloadInfo {
  std::uint32_t size;
  std::uint64_t tag;
};

PayloadInfo decode_payload(ByteReader& r) {
  PayloadInfo info{static_cast<std::uint32_t>(r.remaining()), 0};
  if (info.size >= 8) {
    info.tag = r.u64();
    r.skip(info.size - 8);
  } else {
    r.skip(info.size);
  }
  return info;
}

}  // namespace

std::uint16_t inet_checksum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (data.size() % 2 != 0) sum += static_cast<std::uint32_t>(data.back() << 8);
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

Bytes encode(const Packet& p) {
  ByteWriter w;
  w.raw(p.eth.dst.octets);
  w.raw(p.eth.src.octets);
  if (p.eth.vlan_id != 0xffff) {
    w.u16(kEthTypeVlan);
    w.u16(static_cast<std::uint16_t>((p.eth.vlan_pcp << 13) | (p.eth.vlan_id & 0x0fff)));
  }
  w.u16(p.eth.ether_type);

  if (p.arp) {
    w.u16(1);       // hardware type: Ethernet
    w.u16(0x0800);  // protocol type: IPv4
    w.u8(6);
    w.u8(4);
    w.u16(static_cast<std::uint16_t>(p.arp->op));
    w.raw(p.arp->sender_mac.octets);
    w.u32(p.arp->sender_ip.value);
    w.raw(p.arp->target_mac.octets);
    w.u32(p.arp->target_ip.value);
  } else if (p.ipv4) {
    std::size_t l4 = 0;
    if (p.icmp) l4 = 8;
    if (p.tcp) l4 = 20;
    if (p.udp) l4 = 8;
    const std::uint16_t total_len = static_cast<std::uint16_t>(20 + l4 + p.payload_size);
    const std::size_t ip_start = w.size();
    w.u8(0x45);  // version 4, IHL 5
    w.u8(p.ipv4->tos);
    w.u16(total_len);
    w.u16(0);       // identification
    w.u16(0x4000);  // don't fragment
    w.u8(p.ipv4->ttl);
    w.u8(p.ipv4->proto);
    w.u16(0);  // checksum placeholder
    w.u32(p.ipv4->src.value);
    w.u32(p.ipv4->dst.value);
    const std::uint16_t csum =
        inet_checksum(std::span(w.bytes()).subspan(ip_start, 20));
    w.patch_u16(ip_start + 10, csum);

    if (p.icmp) {
      w.u8(static_cast<std::uint8_t>(p.icmp->type));
      w.u8(p.icmp->code);
      w.u16(0);  // checksum (not verified by the simulator)
      w.u16(p.icmp->id);
      w.u16(p.icmp->seq);
      encode_payload(w, p.payload_size, p.payload_tag);
    } else if (p.tcp) {
      w.u16(p.tcp->src_port);
      w.u16(p.tcp->dst_port);
      w.u32(p.tcp->seq);
      w.u32(p.tcp->ack);
      w.u8(0x50);  // data offset 5 words
      w.u8(p.tcp->flags);
      w.u16(p.tcp->window);
      w.u16(0);  // checksum
      w.u16(0);  // urgent pointer
      encode_payload(w, p.payload_size, p.payload_tag);
    } else if (p.udp) {
      w.u16(p.udp->src_port);
      w.u16(p.udp->dst_port);
      w.u16(static_cast<std::uint16_t>(8 + p.payload_size));
      w.u16(0);  // checksum
      encode_payload(w, p.payload_size, p.payload_tag);
    } else {
      encode_payload(w, p.payload_size, p.payload_tag);
    }
  } else {
    encode_payload(w, p.payload_size, p.payload_tag);
  }
  return std::move(w).take();
}

Packet decode(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  Packet p;
  const auto dst = r.view(6);
  const auto src = r.view(6);
  std::copy(dst.begin(), dst.end(), p.eth.dst.octets.begin());
  std::copy(src.begin(), src.end(), p.eth.src.octets.begin());
  std::uint16_t ether_type = r.u16();
  if (ether_type == kEthTypeVlan) {
    const std::uint16_t tci = r.u16();
    p.eth.vlan_id = tci & 0x0fff;
    p.eth.vlan_pcp = static_cast<std::uint8_t>(tci >> 13);
    ether_type = r.u16();
  }
  p.eth.ether_type = ether_type;

  if (ether_type == static_cast<std::uint16_t>(EtherType::Arp)) {
    r.skip(6);  // htype, ptype, hlen, plen
    ArpHeader arp;
    arp.op = static_cast<ArpOp>(r.u16());
    const auto smac = r.view(6);
    std::copy(smac.begin(), smac.end(), arp.sender_mac.octets.begin());
    arp.sender_ip.value = r.u32();
    const auto tmac = r.view(6);
    std::copy(tmac.begin(), tmac.end(), arp.target_mac.octets.begin());
    arp.target_ip.value = r.u32();
    p.arp = arp;
  } else if (ether_type == static_cast<std::uint16_t>(EtherType::Ipv4)) {
    const std::uint8_t ver_ihl = r.u8();
    if ((ver_ihl >> 4) != 4) throw DecodeError("not IPv4");
    Ipv4Header ip;
    ip.tos = r.u8();
    r.skip(6);  // total length, id, flags/frag
    ip.ttl = r.u8();
    ip.proto = r.u8();
    r.skip(2);  // checksum
    ip.src.value = r.u32();
    ip.dst.value = r.u32();
    const std::size_t options = (static_cast<std::size_t>(ver_ihl & 0xf) - 5) * 4;
    r.skip(options);
    p.ipv4 = ip;

    if (ip.proto == static_cast<std::uint8_t>(IpProto::Icmp)) {
      IcmpHeader icmp;
      icmp.type = static_cast<IcmpType>(r.u8());
      icmp.code = r.u8();
      r.skip(2);
      icmp.id = r.u16();
      icmp.seq = r.u16();
      p.icmp = icmp;
      const PayloadInfo info = decode_payload(r);
      p.payload_size = info.size;
      p.payload_tag = info.tag;
    } else if (ip.proto == static_cast<std::uint8_t>(IpProto::Tcp)) {
      TcpHeader tcp;
      tcp.src_port = r.u16();
      tcp.dst_port = r.u16();
      tcp.seq = r.u32();
      tcp.ack = r.u32();
      const std::uint8_t offset = r.u8();
      tcp.flags = r.u8();
      tcp.window = r.u16();
      r.skip(4);  // checksum + urgent
      r.skip((static_cast<std::size_t>(offset >> 4) - 5) * 4);
      p.tcp = tcp;
      const PayloadInfo info = decode_payload(r);
      p.payload_size = info.size;
      p.payload_tag = info.tag;
    } else if (ip.proto == static_cast<std::uint8_t>(IpProto::Udp)) {
      UdpHeader udp;
      udp.src_port = r.u16();
      udp.dst_port = r.u16();
      r.skip(4);  // length + checksum
      p.udp = udp;
      const PayloadInfo info = decode_payload(r);
      p.payload_size = info.size;
      p.payload_tag = info.tag;
    } else {
      const PayloadInfo info = decode_payload(r);
      p.payload_size = info.size;
      p.payload_tag = info.tag;
    }
  } else {
    const PayloadInfo info = decode_payload(r);
    p.payload_size = info.size;
    p.payload_tag = info.tag;
  }
  return p;
}

}  // namespace attain::pkt
