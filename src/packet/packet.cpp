#include "packet/packet.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace attain::pkt {

namespace {

std::uint8_t parse_hex_byte(const std::string& text, std::size_t pos) {
  auto hex = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  const int hi = hex(text[pos]);
  const int lo = hex(text[pos + 1]);
  if (hi < 0 || lo < 0) throw std::invalid_argument("bad MAC address: " + text);
  return static_cast<std::uint8_t>(hi * 16 + lo);
}

}  // namespace

MacAddress MacAddress::parse(const std::string& text) {
  if (text.size() != 17) throw std::invalid_argument("bad MAC address: " + text);
  MacAddress mac;
  for (int i = 0; i < 6; ++i) {
    const std::size_t pos = static_cast<std::size_t>(i) * 3;
    if (i < 5 && text[pos + 2] != ':') throw std::invalid_argument("bad MAC address: " + text);
    mac.octets[static_cast<std::size_t>(i)] = parse_hex_byte(text, pos);
  }
  return mac;
}

std::uint64_t MacAddress::to_u64() const {
  std::uint64_t v = 0;
  for (const std::uint8_t o : octets) v = (v << 8) | o;
  return v;
}

MacAddress MacAddress::from_u64(std::uint64_t value) {
  MacAddress mac;
  for (int i = 5; i >= 0; --i) {
    mac.octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(value & 0xff);
    value >>= 8;
  }
  return mac;
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets[0], octets[1], octets[2],
                octets[3], octets[4], octets[5]);
  return buf;
}

Ipv4Address Ipv4Address::parse(const std::string& text) {
  std::uint32_t value = 0;
  std::size_t pos = 0;
  for (int octet = 0; octet < 4; ++octet) {
    if (octet > 0) {
      if (pos >= text.size() || text[pos] != '.') {
        throw std::invalid_argument("bad IPv4 address: " + text);
      }
      ++pos;
    }
    unsigned v = 0;
    const auto [next, ec] = std::from_chars(text.data() + pos, text.data() + text.size(), v);
    if (ec != std::errc{} || v > 255) throw std::invalid_argument("bad IPv4 address: " + text);
    pos = static_cast<std::size_t>(next - text.data());
    value = (value << 8) | v;
  }
  if (pos != text.size()) throw std::invalid_argument("bad IPv4 address: " + text);
  return Ipv4Address{value};
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value >> 24) & 0xff, (value >> 16) & 0xff,
                (value >> 8) & 0xff, value & 0xff);
  return buf;
}

std::size_t Packet::wire_size() const {
  std::size_t size = 14;  // Ethernet header
  if (eth.vlan_id != 0xffff) size += 4;
  if (arp) size += 28;
  if (ipv4) size += 20;
  if (icmp) size += 8;
  if (tcp) size += 20;
  if (udp) size += 8;
  return size + payload_size;
}

std::string Packet::summary() const {
  std::ostringstream out;
  out << eth.src.to_string() << "->" << eth.dst.to_string();
  if (arp) {
    out << " ARP " << (arp->op == ArpOp::Request ? "who-has " : "is-at ")
        << arp->target_ip.to_string();
  } else if (ipv4) {
    out << " " << ipv4->src.to_string() << ">" << ipv4->dst.to_string();
    if (icmp) {
      out << " ICMP " << (icmp->type == IcmpType::EchoRequest ? "echo-req" : "echo-rep") << " seq="
          << icmp->seq;
    } else if (tcp) {
      out << " TCP " << tcp->src_port << ">" << tcp->dst_port << " seq=" << tcp->seq;
    } else if (udp) {
      out << " UDP " << udp->src_port << ">" << udp->dst_port;
    }
  }
  out << " len=" << wire_size();
  return out.str();
}

Packet make_arp_request(MacAddress sender_mac, Ipv4Address sender_ip, Ipv4Address target_ip) {
  Packet p;
  p.eth.src = sender_mac;
  p.eth.dst = MacAddress::broadcast();
  p.eth.ether_type = static_cast<std::uint16_t>(EtherType::Arp);
  p.arp = ArpHeader{ArpOp::Request, sender_mac, sender_ip, MacAddress{}, target_ip};
  return p;
}

Packet make_arp_reply(MacAddress sender_mac, Ipv4Address sender_ip, MacAddress target_mac,
                      Ipv4Address target_ip) {
  Packet p;
  p.eth.src = sender_mac;
  p.eth.dst = target_mac;
  p.eth.ether_type = static_cast<std::uint16_t>(EtherType::Arp);
  p.arp = ArpHeader{ArpOp::Reply, sender_mac, sender_ip, target_mac, target_ip};
  return p;
}

Packet make_icmp_echo(MacAddress src_mac, MacAddress dst_mac, Ipv4Address src_ip,
                      Ipv4Address dst_ip, IcmpType type, std::uint16_t id, std::uint16_t seq,
                      std::uint64_t tag) {
  Packet p;
  p.eth.src = src_mac;
  p.eth.dst = dst_mac;
  p.eth.ether_type = static_cast<std::uint16_t>(EtherType::Ipv4);
  p.ipv4 = Ipv4Header{.tos = 0, .ttl = 64, .proto = static_cast<std::uint8_t>(IpProto::Icmp),
                      .src = src_ip, .dst = dst_ip};
  p.icmp = IcmpHeader{type, 0, id, seq};
  p.payload_size = 56;  // standard ping payload
  p.payload_tag = tag;
  return p;
}

Packet make_lldp(MacAddress src_mac, std::uint64_t dpid, std::uint16_t port) {
  Packet p;
  p.eth.src = src_mac;
  p.eth.dst = MacAddress{{0x01, 0x80, 0xc2, 0x00, 0x00, 0x0e}};
  p.eth.ether_type = static_cast<std::uint16_t>(EtherType::Lldp);
  p.payload_size = 32;  // chassis + port + TTL TLVs, roughly
  p.payload_tag = (dpid << 16) | port;
  return p;
}

bool parse_lldp(const Packet& packet, std::uint64_t& dpid, std::uint16_t& port) {
  if (packet.eth.ether_type != static_cast<std::uint16_t>(EtherType::Lldp)) return false;
  dpid = packet.payload_tag >> 16;
  port = static_cast<std::uint16_t>(packet.payload_tag & 0xffff);
  return true;
}

Packet make_tcp(MacAddress src_mac, MacAddress dst_mac, Ipv4Address src_ip, Ipv4Address dst_ip,
                const TcpHeader& tcp, std::uint32_t payload_size, std::uint64_t tag) {
  Packet p;
  p.eth.src = src_mac;
  p.eth.dst = dst_mac;
  p.eth.ether_type = static_cast<std::uint16_t>(EtherType::Ipv4);
  p.ipv4 = Ipv4Header{.tos = 0, .ttl = 64, .proto = static_cast<std::uint8_t>(IpProto::Tcp),
                      .src = src_ip, .dst = dst_ip};
  p.tcp = tcp;
  p.payload_size = payload_size;
  p.payload_tag = tag;
  return p;
}

}  // namespace attain::pkt
