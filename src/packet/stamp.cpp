#include "packet/stamp.hpp"

#include <algorithm>
#include <array>

#include "packet/codec.hpp"

namespace attain::pkt {

namespace {

// Probe values whose big-endian encodings differ in every byte (B = ~A), so
// a diff between the two probe encodings exposes the field's full byte span.
constexpr std::array<std::uint8_t, 6> kProbeA = {0x13, 0x24, 0x35, 0x46, 0x57, 0x68};

std::uint64_t probe_value(std::size_t width, bool inverted) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < width; ++i) {
    value = (value << 8) | static_cast<std::uint64_t>(inverted ? ~kProbeA[i] & 0xff : kProbeA[i]);
  }
  return value;
}

void store_be(Bytes& wire, std::size_t offset, std::uint64_t value, std::size_t width) {
  for (std::size_t i = 0; i < width; ++i) {
    wire[offset + i] = static_cast<std::uint8_t>(value >> (8 * (width - 1 - i)));
  }
}

bool match_be(const Bytes& wire, std::size_t offset, std::uint64_t value, std::size_t width) {
  for (std::size_t i = 0; i < width; ++i) {
    if (wire[offset + i] != static_cast<std::uint8_t>(value >> (8 * (width - 1 - i)))) return false;
  }
  return true;
}

/// Recomputes the IPv4 header checksum over the 20-byte header starting at
/// `ip_start`, mirroring the codec's inet_checksum-over-zeroed-field pass.
void patch_ip_checksum(Bytes& wire, std::size_t ip_start) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < 20; i += 2) {
    if (i == 10) continue;  // checksum field counts as zero
    sum += static_cast<std::uint32_t>((wire[ip_start + i] << 8) | wire[ip_start + i + 1]);
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  const std::uint16_t csum = static_cast<std::uint16_t>(~sum);
  wire[ip_start + 10] = static_cast<std::uint8_t>(csum >> 8);
  wire[ip_start + 11] = static_cast<std::uint8_t>(csum & 0xff);
}

/// Locates the unique offset where probe A appears in e1 and probe B in e2.
std::optional<std::size_t> locate_probe(const Bytes& e1, const Bytes& e2, std::uint64_t a,
                                        std::uint64_t b, std::size_t width) {
  std::optional<std::size_t> found;
  if (e1.size() != e2.size() || e1.size() < width) return std::nullopt;
  for (std::size_t p = 0; p + width <= e1.size(); ++p) {
    if (match_be(e1, p, a, width) && match_be(e2, p, b, width)) {
      if (found) return std::nullopt;  // ambiguous
      found = p;
    }
  }
  return found;
}

/// Discovers the wire offset of one field: encodes the prototype with two
/// probe values, requires the probes to land verbatim at a unique offset,
/// and requires a pure byte patch (plus the IPv4 checksum recompute when
/// `ip_checksum` is set) to reproduce the full re-encode exactly.
template <typename Setter>
std::optional<std::size_t> discover_field(const Packet& prototype, std::size_t wire_size,
                                          Setter set, std::size_t width, bool ip_checksum) {
  const std::uint64_t a = probe_value(width, false);
  const std::uint64_t b = probe_value(width, true);
  Packet p1 = prototype;
  Packet p2 = prototype;
  set(p1, a);
  set(p2, b);
  const Bytes e1 = encode(p1);
  const Bytes e2 = encode(p2);
  if (e1.size() != wire_size || e2.size() != wire_size) return std::nullopt;
  const std::optional<std::size_t> offset = locate_probe(e1, e2, a, b, width);
  if (!offset) return std::nullopt;
  Bytes candidate = e1;
  store_be(candidate, *offset, b, width);
  if (ip_checksum) {
    if (*offset < 12) return std::nullopt;
    patch_ip_checksum(candidate, *offset - 12);
  }
  if (!std::equal(candidate.begin(), candidate.end(), e2.begin())) return std::nullopt;
  return offset;
}

}  // namespace

FrameStamper::FrameStamper(Packet prototype) : packet_(std::move(prototype)) {
  wire_ = encode(packet_);
  discover();
}

void FrameStamper::discover() {
  src_mac_off_ = discover_field(
      packet_, wire_.size(),
      [](Packet& p, std::uint64_t v) { p.eth.src = MacAddress::from_u64(v); }, 6, false);
  if (packet_.ipv4) {
    src_ip_off_ = discover_field(
        packet_, wire_.size(),
        [](Packet& p, std::uint64_t v) { p.ipv4->src = Ipv4Address{static_cast<std::uint32_t>(v)}; },
        4, true);
  }
  if (packet_.tcp) {
    src_port_off_ = discover_field(
        packet_, wire_.size(),
        [](Packet& p, std::uint64_t v) { p.tcp->src_port = static_cast<std::uint16_t>(v); }, 2,
        false);
    tcp_seq_off_ = discover_field(
        packet_, wire_.size(),
        [](Packet& p, std::uint64_t v) { p.tcp->seq = static_cast<std::uint32_t>(v); }, 4, false);
  } else if (packet_.udp) {
    src_port_off_ = discover_field(
        packet_, wire_.size(),
        [](Packet& p, std::uint64_t v) { p.udp->src_port = static_cast<std::uint16_t>(v); }, 2,
        false);
  }
}

void FrameStamper::refresh_ip_checksum() { patch_ip_checksum(wire_, *src_ip_off_ - 12); }

bool FrameStamper::set_src_mac(MacAddress mac) {
  if (!src_mac_off_) return false;
  packet_.eth.src = mac;
  std::copy(mac.octets.begin(), mac.octets.end(), wire_.begin() + static_cast<long>(*src_mac_off_));
  return true;
}

bool FrameStamper::set_src_ip(Ipv4Address ip) {
  if (!src_ip_off_) return false;
  packet_.ipv4->src = ip;
  store_be(wire_, *src_ip_off_, ip.value, 4);
  refresh_ip_checksum();
  return true;
}

bool FrameStamper::set_src_port(std::uint16_t port) {
  if (!src_port_off_) return false;
  if (packet_.tcp) {
    packet_.tcp->src_port = port;
  } else {
    packet_.udp->src_port = port;
  }
  store_be(wire_, *src_port_off_, port, 2);
  return true;
}

bool FrameStamper::set_tcp_seq(std::uint32_t seq) {
  if (!tcp_seq_off_) return false;
  packet_.tcp->seq = seq;
  store_be(wire_, *tcp_seq_off_, seq, 4);
  return true;
}

}  // namespace attain::pkt
