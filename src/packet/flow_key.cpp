#include "packet/flow_key.hpp"

#include <sstream>

namespace attain::pkt {

namespace {

/// SplitMix64 finalizer: cheap avalanche for one 64-bit word.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FlowKey FlowKey::from_packet(const Packet& p, std::uint16_t in_port) {
  FlowKey k;
  k.in_port = in_port;
  k.dl_src = p.eth.src.to_u64();
  k.dl_dst = p.eth.dst.to_u64();
  k.dl_vlan = p.eth.vlan_id;
  k.dl_vlan_pcp = p.eth.vlan_pcp;
  k.dl_type = p.eth.ether_type;
  if (p.ipv4) {
    k.nw_tos = p.ipv4->tos;
    k.nw_proto = p.ipv4->proto;
    k.nw_src = p.ipv4->src.value;
    k.nw_dst = p.ipv4->dst.value;
  } else if (p.arp) {
    // OF1.0 matches the ARP opcode via nw_proto and sender/target IP via
    // nw_src/nw_dst (spec §3.4).
    k.nw_proto = static_cast<std::uint8_t>(static_cast<std::uint16_t>(p.arp->op));
    k.nw_src = p.arp->sender_ip.value;
    k.nw_dst = p.arp->target_ip.value;
  }
  if (p.tcp) {
    k.tp_src = p.tcp->src_port;
    k.tp_dst = p.tcp->dst_port;
  } else if (p.udp) {
    k.tp_src = p.udp->src_port;
    k.tp_dst = p.udp->dst_port;
  } else if (p.icmp) {
    // OF1.0 reuses tp_src/tp_dst for ICMP type/code.
    k.tp_src = static_cast<std::uint16_t>(p.icmp->type);
    k.tp_dst = p.icmp->code;
  }
  return k;
}

std::size_t FlowKey::hash() const {
  // Pack the twelve fields into four 64-bit words, then mix.
  const std::uint64_t w0 = dl_src | (static_cast<std::uint64_t>(in_port) << 48);
  const std::uint64_t w1 = dl_dst | (static_cast<std::uint64_t>(dl_vlan) << 48);
  const std::uint64_t w2 =
      static_cast<std::uint64_t>(nw_src) | (static_cast<std::uint64_t>(nw_dst) << 32);
  const std::uint64_t w3 = static_cast<std::uint64_t>(dl_type) |
                           (static_cast<std::uint64_t>(tp_src) << 16) |
                           (static_cast<std::uint64_t>(tp_dst) << 32) |
                           (static_cast<std::uint64_t>(dl_vlan_pcp) << 48) |
                           (static_cast<std::uint64_t>(nw_tos) << 56);
  std::uint64_t h = mix64(w0);
  h = mix64(h ^ w1);
  h = mix64(h ^ w2);
  h = mix64(h ^ w3);
  h = mix64(h ^ nw_proto);
  return static_cast<std::size_t>(h);
}

std::string FlowKey::to_string() const {
  std::ostringstream out;
  out << "key{in_port=" << in_port << ",dl_src=" << MacAddress::from_u64(dl_src).to_string()
      << ",dl_dst=" << MacAddress::from_u64(dl_dst).to_string() << ",dl_type=" << dl_type
      << ",dl_vlan=" << dl_vlan << ",pcp=" << static_cast<unsigned>(dl_vlan_pcp)
      << ",nw_tos=" << static_cast<unsigned>(nw_tos)
      << ",nw_proto=" << static_cast<unsigned>(nw_proto)
      << ",nw_src=" << Ipv4Address{nw_src}.to_string()
      << ",nw_dst=" << Ipv4Address{nw_dst}.to_string() << ",tp_src=" << tp_src
      << ",tp_dst=" << tp_dst << "}";
  return out.str();
}

}  // namespace attain::pkt
