// Template-stamped data-plane frame encoding for flood generators.
//
// A FrameStamper encodes a prototype pkt::Packet once, then discovers —
// by mutate/re-encode/diff against the real codec — the wire offsets of the
// fields a volumetric flood varies (src MAC, src IPv4 address, L4 source
// port, TCP sequence number). Emitting a flood instance is then a handful
// of in-place byte patches (plus an IPv4 header-checksum recompute over the
// fixed 20-byte header) instead of a full pkt::encode pass, while the typed
// packet view is patched in lock step so (packet(), wire()) always satisfy
// wire() == pkt::encode(packet()).
//
// The discovery is self-validating: every field is probed with two values
// whose big-endian encodings differ in every byte, and the patch offsets
// are only accepted if the probe encodings round-trip through the full
// codec byte-for-byte. A field that does not validate simply reports
// unstampable and the caller falls back to pkt::encode (tests fuzz the
// stamped path against the codec to keep this contract honest).
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "packet/packet.hpp"

namespace attain::pkt {

class FrameStamper {
 public:
  /// Builds a stamper from a prototype. Never fails outright; fields that
  /// cannot be discovered/validated are reported unstampable.
  explicit FrameStamper(Packet prototype);

  bool can_stamp_src_mac() const { return src_mac_off_.has_value(); }
  bool can_stamp_src_ip() const { return src_ip_off_.has_value(); }
  bool can_stamp_src_port() const { return src_port_off_.has_value(); }
  bool can_stamp_tcp_seq() const { return tcp_seq_off_.has_value(); }

  /// Stampers patch the wire image and the typed packet together; each
  /// returns false (leaving both views unchanged) when the field is not
  /// stampable for this prototype.
  bool set_src_mac(MacAddress mac);
  bool set_src_ip(Ipv4Address ip);
  bool set_src_port(std::uint16_t port);
  bool set_tcp_seq(std::uint32_t seq);

  /// Current views; wire() is byte-identical to pkt::encode(packet()).
  const Packet& packet() const { return packet_; }
  const Bytes& wire() const { return wire_; }

  Packet emit_packet() const { return packet_; }
  Bytes emit_wire() const { return wire_; }

 private:
  void discover();
  void refresh_ip_checksum();

  Packet packet_;
  Bytes wire_;
  std::optional<std::size_t> src_mac_off_;
  std::optional<std::size_t> src_ip_off_;    // IPv4 source; header at off-12
  std::optional<std::size_t> src_port_off_;  // TCP or UDP source port
  std::optional<std::size_t> tcp_seq_off_;
};

}  // namespace attain::pkt
