// Reference OF1.0 flow table: the seed's linear-scan implementation, kept
// verbatim as the differential-testing oracle for the two-tier classifier
// in flow_table.hpp. TEST/BENCH ONLY — production code must use FlowTable;
// this table is O(entries) per packet and O(entries) per expiry tick by
// construction, which is exactly what bench_flow_lookup measures against.
//
// Semantics contract shared with FlowTable (test_flow_table.cpp runs the
// same suite over both, and test_flow_table_differential.cpp fuzzes them
// side by side):
//   * exact entries outrank all wildcard entries regardless of priority;
//   * among equally-exact entries, higher priority wins;
//   * equal-priority overlapping entries resolve in insertion order
//     (earliest installed wins) — OF1.0 leaves this undefined, our
//     determinism guarantee pins it down;
//   * ADD onto an identical (match, priority) replaces in place, resetting
//     counters but keeping the insertion rank;
//   * expire() reports hard-timeout before idle-timeout when both elapsed,
//     in insertion order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "ofp/messages.hpp"
#include "swsim/flow_table.hpp"

namespace attain::swsim {

class NaiveFlowTable {
 public:
  ExpiredList apply(const ofp::FlowMod& mod, SimTime now) {
    switch (mod.command) {
      case ofp::FlowModCommand::Add:
        add(mod, now);
        return {};
      case ofp::FlowModCommand::Modify:
        modify(mod, now, /*strict=*/false);
        return {};
      case ofp::FlowModCommand::ModifyStrict:
        modify(mod, now, /*strict=*/true);
        return {};
      case ofp::FlowModCommand::Delete:
        return erase(mod, /*strict=*/false);
      case ofp::FlowModCommand::DeleteStrict:
        return erase(mod, /*strict=*/true);
    }
    return {};
  }

  const FlowEntry* match_packet(const pkt::Packet& packet, std::uint16_t in_port, SimTime now,
                                std::size_t wire_size) {
    FlowEntry* best = nullptr;
    bool best_exact = false;
    for (FlowEntry& entry : entries_) {
      if (!entry.match.matches(packet, in_port)) continue;
      const bool exact = entry.match.is_exact();
      if (best == nullptr || (exact && !best_exact) ||
          (exact == best_exact && entry.priority > best->priority)) {
        best = &entry;
        best_exact = exact;
      }
    }
    if (best != nullptr) {
      best->last_used = now;
      ++best->packet_count;
      best->byte_count += wire_size;
    }
    return best;
  }

  ExpiredList expire(SimTime now) {
    ExpiredList expired;
    std::erase_if(entries_, [&](const FlowEntry& entry) {
      ofp::FlowRemovedReason reason;
      if (entry.hard_timeout != 0 &&
          now - entry.installed_at >= static_cast<SimTime>(entry.hard_timeout) * kSecond) {
        reason = ofp::FlowRemovedReason::HardTimeout;
      } else if (entry.idle_timeout != 0 &&
                 now - entry.last_used >= static_cast<SimTime>(entry.idle_timeout) * kSecond) {
        reason = ofp::FlowRemovedReason::IdleTimeout;
      } else {
        return false;
      }
      expired.push_back(ExpiredEntry{entry, reason});
      return true;
    });
    return expired;
  }

  /// Same snapshot interface as FlowTable::entries() so the differential
  /// tests and the shared typed suite can compare the two uniformly.
  std::vector<const FlowEntry*> entries() const {
    std::vector<const FlowEntry*> out;
    out.reserve(entries_.size());
    for (const FlowEntry& entry : entries_) out.push_back(&entry);
    return out;
  }

  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  static bool out_port_filter(const FlowEntry& entry, std::uint16_t out_port) {
    if (out_port == static_cast<std::uint16_t>(ofp::Port::None)) return true;
    return std::any_of(entry.actions.begin(), entry.actions.end(), [&](const ofp::Action& a) {
      const auto* out = std::get_if<ofp::ActionOutput>(&a);
      return out != nullptr && out->port == out_port;
    });
  }

  void add(const ofp::FlowMod& mod, SimTime now) {
    for (FlowEntry& entry : entries_) {
      if (entry.priority == mod.priority && entry.match.strictly_equals(mod.match)) {
        entry.cookie = mod.cookie;
        entry.idle_timeout = mod.idle_timeout;
        entry.hard_timeout = mod.hard_timeout;
        entry.flags = mod.flags;
        entry.actions = mod.actions;
        entry.installed_at = now;
        entry.last_used = now;
        entry.packet_count = 0;
        entry.byte_count = 0;
        return;
      }
    }
    FlowEntry entry;
    entry.match = mod.match;
    entry.priority = mod.priority;
    entry.cookie = mod.cookie;
    entry.idle_timeout = mod.idle_timeout;
    entry.hard_timeout = mod.hard_timeout;
    entry.flags = mod.flags;
    entry.actions = mod.actions;
    entry.installed_at = now;
    entry.last_used = now;
    entries_.push_back(std::move(entry));
  }

  void modify(const ofp::FlowMod& mod, SimTime now, bool strict) {
    bool any = false;
    for (FlowEntry& entry : entries_) {
      const bool hit = strict ? entry.priority == mod.priority &&
                                    entry.match.strictly_equals(mod.match)
                              : mod.match.subsumes(entry.match);
      if (hit) {
        entry.actions = mod.actions;  // counters and timeouts preserved (spec §4.6)
        any = true;
      }
    }
    if (!any) add(mod, now);  // OF1.0: MODIFY with no match behaves like ADD
  }

  ExpiredList erase(const ofp::FlowMod& mod, bool strict) {
    ExpiredList removed;
    std::erase_if(entries_, [&](const FlowEntry& entry) {
      const bool hit = (strict ? entry.priority == mod.priority &&
                                     entry.match.strictly_equals(mod.match)
                               : mod.match.subsumes(entry.match)) &&
                       out_port_filter(entry, mod.out_port);
      if (hit) {
        removed.push_back(ExpiredEntry{entry, ofp::FlowRemovedReason::Delete});
      }
      return hit;
    });
    return removed;
  }

  std::vector<FlowEntry> entries_;
};

}  // namespace attain::swsim
