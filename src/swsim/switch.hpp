// OpenFlow 1.0 software switch (the Open vSwitch substitute). Implements
// the data-plane pipeline (flow-table lookup, buffering, PACKET_IN), the
// switch side of the OpenFlow channel (handshake, echo liveness, FLOW_MOD /
// PACKET_OUT / STATS handling), and the two disconnection policies the
// Table II experiment turns on: fail-safe (standalone L2 learning) and
// fail-secure (drop on table miss).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "chan/envelope.hpp"
#include "common/bytes.hpp"
#include "common/types.hpp"
#include "ofp/codec.hpp"
#include "ofp/messages.hpp"
#include "ofp/stamp.hpp"
#include "packet/packet.hpp"
#include "sim/scheduler.hpp"
#include "swsim/flow_table.hpp"

namespace attain::swsim {

/// A burst of data-plane frames arriving on one ingress port at one
/// instant (the volumetric flood generators emit these). `wires`, when the
/// same length as `packets`, carries each packet's encoded frame —
/// byte-identical to pkt::encode(packets[i]) — so a table miss reuses it
/// instead of re-encoding; leave it empty to encode on demand.
struct PacketBatch {
  std::uint16_t port{0};
  mem::vector<pkt::Packet> packets;
  mem::vector<Bytes> wires;
};

struct SwitchConfig {
  std::string name{"s?"};
  std::uint64_t dpid{1};
  std::uint16_t num_ports{4};
  bool fail_secure{false};
  std::uint32_t buffer_capacity{256};
  std::uint16_t miss_send_len{128};
  /// Flow-table entry cap (0 = unlimited). A FLOW_MOD ADD against a full
  /// table draws an OFPET_FLOW_MOD_FAILED / ALL_TABLES_FULL error — the
  /// table-overflow attack's observable.
  std::uint32_t table_capacity{0};
  /// Echo liveness: a request every `echo_interval`; the connection is
  /// declared dead after `echo_miss_limit` consecutive unanswered echoes.
  SimTime echo_interval{5 * kSecond};
  unsigned echo_miss_limit{2};
  /// Flow-expiry scan period.
  SimTime expiry_interval{1 * kSecond};
};

struct SwitchCounters {
  std::uint64_t packets_in{0};          // data-plane packets received
  std::uint64_t packets_forwarded{0};   // data-plane packets emitted
  std::uint64_t table_misses{0};
  std::uint64_t miss_drops{0};          // misses dropped (fail-secure or buffer exhaustion)
  std::uint64_t packet_in_sent{0};
  std::uint64_t flow_mods_applied{0};
  std::uint64_t flow_mods_rejected{0};  // ADDs refused by a full flow table
  std::uint64_t packet_outs_applied{0};
  std::uint64_t flow_removed_sent{0};
  std::uint64_t echo_requests_sent{0};
  std::uint64_t control_rx{0};
  std::uint64_t control_tx{0};
  std::uint64_t decode_errors{0};       // malformed (e.g. fuzzed) control frames
  std::uint64_t standalone_forwards{0}; // packets forwarded by fail-safe fallback
};

/// The switch's view of its controller connection.
enum class ChannelState : std::uint8_t {
  Disconnected,   // no transport
  HandshakePending,
  Connected,      // HELLO + FEATURES exchange complete, echoes healthy
};

class OpenFlowSwitch {
 public:
  /// `send_control` transmits control-channel envelopes toward the
  /// controller (through the injector proxy in an ATTAIN deployment);
  /// `send_packet(port, pkt)` emits a data-plane frame.
  OpenFlowSwitch(sim::Scheduler& sched, SwitchConfig config);

  void set_control_sender(chan::EnvelopeSink send_control);
  void set_packet_sender(std::function<void(std::uint16_t, pkt::Packet)> send_packet);

  /// Starts the OpenFlow channel: sends HELLO and begins echo liveness.
  void connect();

  /// Delivers a control-channel envelope from the controller side. An
  /// unparseable frame draws a BadRequest error reply.
  void on_control_envelope(chan::Envelope envelope);
  /// Raw-wire convenience overload (frames one envelope).
  void on_control_bytes(const Bytes& frame);

  /// Delivers a data-plane frame arriving on `port`.
  void on_packet(std::uint16_t port, pkt::Packet packet);

  /// Delivers a burst of data-plane frames arriving together on one port.
  /// Observationally identical to calling on_packet() once per frame in
  /// order; when batching is enabled and the channel is Connected, the
  /// flow-table lookups run through match_batch() (prefetched) and table
  /// misses emit PACKET_INs through the stamped template.
  void on_packet_batch(PacketBatch batch);

  /// Administratively raises/lowers a port (models link failure at this
  /// end). Lowering drops all egress on the port and emits a PORT_STATUS
  /// (reason Modify, OFPPS_LINK_DOWN) to the controller; raising clears
  /// the state and notifies likewise. Ingress is governed by the peer.
  void set_port_up(std::uint16_t port, bool up);
  bool port_up(std::uint16_t port) const { return !down_ports_.contains(port); }

  const SwitchCounters& counters() const { return counters_; }
  const FlowTable& flow_table() const { return table_; }
  ChannelState channel_state() const { return state_; }
  const SwitchConfig& config() const { return config_; }
  /// Re-targets the fail mode at runtime. The bit is only consulted once
  /// the channel leaves Connected, so flipping it while connected is
  /// invisible to the simulation — scenario warm-start forking relies on
  /// this to apply the Table II fail-mode knob at the fork point.
  void set_fail_secure(bool v) { config_.fail_secure = v; }
  bool in_standalone_mode() const;

 private:
  void handle_message(const ofp::Message& msg);
  void handle_flow_mod(std::uint32_t xid, const ofp::FlowMod& mod);
  void handle_packet_out(const ofp::PacketOut& out);
  void handle_stats_request(std::uint32_t xid, const ofp::StatsRequest& req);
  void apply_actions(const ofp::ActionList& actions, pkt::Packet packet, std::uint16_t in_port);
  void output_packet(std::uint16_t out_port, const pkt::Packet& packet, std::uint16_t in_port);
  void flood(const pkt::Packet& packet, std::uint16_t in_port);
  void table_miss(const pkt::Packet& packet, std::uint16_t in_port);
  /// table_miss with the packet's frame already encoded (`frame` must equal
  /// pkt::encode(packet) byte-for-byte).
  void table_miss(const pkt::Packet& packet, const Bytes& frame, std::uint16_t in_port);
  /// Lazily built stamped PACKET_IN template for misses whose shipped data
  /// region is `data_size` bytes; nullptr when the shape is unstampable.
  ofp::StampedTemplate* miss_template(std::size_t data_size);
  void standalone_forward(const pkt::Packet& packet, std::uint16_t in_port);
  void send_message(const ofp::Message& msg);
  void send_flow_removed(const ExpiredEntry& expired);
  void schedule_echo();
  void schedule_expiry();
  void on_echo_timer();
  void mark_disconnected();
  std::uint32_t next_xid() { return xid_++; }

  sim::Scheduler& sched_;
  SwitchConfig config_;
  FlowTable table_;
  SwitchCounters counters_;

  chan::EnvelopeSink send_control_;
  std::function<void(std::uint16_t, pkt::Packet)> send_packet_;

  ChannelState state_{ChannelState::Disconnected};
  std::uint32_t xid_{1};
  unsigned echo_misses_{0};
  bool echo_outstanding_{false};

  // PACKET_IN buffer pool. Entries the controller never references (e.g.
  // consumed LLDP probes) age out so the pool cannot leak full.
  struct Buffered {
    pkt::Packet packet;
    std::uint16_t in_port;
    SimTime buffered_at{0};
  };
  static constexpr SimTime kBufferTtl = 10 * kSecond;
  mem::map<std::uint32_t, Buffered> buffers_;
  std::uint32_t next_buffer_id_{1};

  /// Stamped PACKET_IN templates keyed by shipped-data size (flood traffic
  /// is a handful of frame sizes; nullopt caches "unstampable"). A miss
  /// then costs one memcpy plus in-place field stamps instead of a full
  /// ofp::encode — same bytes, validated at template construction.
  mem::map<std::size_t, std::optional<ofp::StampedTemplate>> miss_templates_;

  // Standalone (fail-safe) learning table: MAC -> port.
  mem::map<std::uint64_t, std::uint16_t> standalone_macs_;

  // Administratively/link-down ports (egress suppressed).
  std::set<std::uint16_t> down_ports_;
};

}  // namespace attain::swsim
