// OpenFlow 1.0 flow table: priority + wildcard lookup, idle/hard timeout
// expiry, counters, and the five FLOW_MOD commands with OF1.0 strict /
// non-strict semantics.
//
// Lookup is a two-tier classifier, the same shape as OVS's exact-match fast
// path in front of a wildcard classifier:
//
//   tier 1: an exact-match hash index (packet FlowKey -> entry) consulted
//           first — OF1.0 §3.4 gives exact entries precedence over every
//           wildcard entry, so a tier-1 hit never needs tier 2;
//   tier 2: wildcard entries bucketed by their exact wildcard mask. A miss
//           probes each distinct mask once (hash lookup on the masked
//           packet key), so match_packet costs O(1) + O(distinct masks)
//           instead of the seed's O(entries) linear scan.
//
// Expiry runs on a sim::TimerWheel keyed on each entry's next idle/hard
// deadline. Idle deadlines are refreshed lazily: a packet hit only bumps
// last_used; when the stale wheel timer pops, the entry re-arms at its true
// deadline. expire(now) therefore touches only entries whose deadline
// actually arrived, not the whole table.
//
// Selection semantics are bit-for-bit those of the seed's linear scan:
// exact beats wildcard, then higher priority, and equal-priority ties
// resolve to the earliest-inserted entry (see the determinism note on
// match_packet). An ADD that replaces an identical (match, priority) entry
// keeps the original insertion rank, exactly like the seed's in-place
// vector overwrite.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/arena.hpp"
#include "common/types.hpp"
#include "ofp/messages.hpp"
#include "packet/flow_key.hpp"
#include "sim/timer_wheel.hpp"

namespace attain::swsim {

struct FlowEntry {
  ofp::Match match;
  std::uint16_t priority{0x8000};
  std::uint64_t cookie{0};
  std::uint16_t idle_timeout{0};  // seconds; 0 = never
  std::uint16_t hard_timeout{0};  // seconds; 0 = never
  std::uint16_t flags{0};
  ofp::ActionList actions;

  SimTime installed_at{0};
  SimTime last_used{0};
  std::uint64_t packet_count{0};
  std::uint64_t byte_count{0};
};

/// An entry evicted by expire(), with why it left the table.
struct ExpiredEntry {
  FlowEntry entry;
  ofp::FlowRemovedReason reason{ofp::FlowRemovedReason::IdleTimeout};
};

/// Slab-backed eviction list: expire()/apply() return one per call on the
/// steady-state path, so its storage recycles instead of churning the heap.
using ExpiredList = std::vector<ExpiredEntry, mem::SlabAllocator<ExpiredEntry>>;

class FlowTable {
 public:
  /// Applies a FLOW_MOD. Returns entries removed by Delete/DeleteStrict
  /// (the switch decides whether each warrants a FLOW_REMOVED, based on
  /// the entry's SEND_FLOW_REM flag).
  ExpiredList apply(const ofp::FlowMod& mod, SimTime now);

  /// Highest-precedence matching entry for `key` (the packet's canonical
  /// 12-tuple, extracted once at ingress), or nullptr on table miss.
  /// Updates the entry's counters and idle timestamp.
  ///
  /// Selection contract (the determinism guarantee the sweep JSON relies
  /// on): exact-match entries outrank all wildcard entries regardless of
  /// priority (OF1.0 §3.4); among wildcard entries higher priority wins;
  /// equal-priority overlapping entries resolve in insertion order —
  /// earliest installed wins. OF1.0 leaves the equal-priority case
  /// undefined; this table pins it down and tests enforce it.
  const FlowEntry* match_packet(const pkt::FlowKey& key, SimTime now, std::size_t wire_size);

  /// Convenience overload that extracts the key itself. Prefer the FlowKey
  /// overload on the hot path (one extraction per packet).
  const FlowEntry* match_packet(const pkt::Packet& packet, std::uint16_t in_port, SimTime now,
                                std::size_t wire_size);

  /// Batch lookup: observationally identical to calling the FlowKey
  /// overload once per key in order (same winners, same counter updates —
  /// nothing between two keys of a batch can change the table's
  /// structure), with one upfront pass that hashes every key and
  /// software-prefetches its exact-tier bucket, so the dependent cache
  /// misses overlap across the batch instead of serializing per packet.
  void match_batch(const pkt::FlowKey* keys, const std::size_t* wire_sizes, std::size_t count,
                   SimTime now, const FlowEntry** out);

  /// Removes entries whose idle or hard timeout has elapsed, in insertion
  /// order. When both timeouts elapsed by `now`, the hard timeout wins the
  /// FLOW_REMOVED reason (checked first, as the seed scan did).
  ExpiredList expire(SimTime now);

  /// Live entries in insertion order (snapshot of pointers; invalidated by
  /// the next mutating call).
  std::vector<const FlowEntry*> entries() const;

  std::size_t size() const { return live_count_; }
  void clear();

  /// Caps live entries (0 = unlimited, the default). An ADD of a new
  /// (match, priority) against a full table is rejected and counted;
  /// ADD-replace of an existing entry still succeeds (it takes no slot).
  /// Models hardware TCAM exhaustion — the flow-table overflow attack's
  /// target (OFPFMFC_ALL_TABLES_FULL at the switch layer).
  void set_capacity(std::size_t capacity) { capacity_ = capacity; }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t adds_rejected() const { return adds_rejected_; }

  /// Introspection for tests/benches: number of distinct wildcard masks
  /// (tier-2 buckets) currently live, and pending wheel timers.
  std::size_t distinct_wildcard_masks() const { return buckets_.size(); }
  std::size_t pending_timers() const { return wheel_.pending(); }

 private:
  static constexpr std::uint32_t kNil = std::numeric_limits<std::uint32_t>::max();
  static constexpr SimTime kNoDeadline = std::numeric_limits<SimTime>::max();

  struct Slot {
    FlowEntry entry;
    pkt::FlowKey bucket_key;  // masked key projection under entry's own mask
    std::uint64_t seq{0};     // insertion rank (stable across ADD-replace)
    std::uint32_t timer_gen{0};  // invalidates stale wheel cookies
    std::uint32_t prev{kNil};
    std::uint32_t next{kNil};
    bool live{false};
  };

  /// Entry ids sorted by (priority desc, seq asc) — front() is the winner.
  using IdList = mem::vector<std::uint32_t>;
  struct Bucket {
    std::uint32_t wildcards{0};
    mem::unordered_map<pkt::FlowKey, IdList, pkt::FlowKeyHash> by_key;
    std::size_t entry_count{0};
  };

  void add(const ofp::FlowMod& mod, SimTime now);
  void modify(const ofp::FlowMod& mod, SimTime now, bool strict);
  ExpiredList erase(const ofp::FlowMod& mod, bool strict);

  std::uint32_t find_strict(const ofp::Match& match, std::uint16_t priority) const;
  std::uint32_t acquire_slot();
  void remove_entry(std::uint32_t id);
  void index_insert(std::uint32_t id);
  void index_remove(std::uint32_t id);
  void arm_timer(std::uint32_t id);
  static SimTime next_deadline(const FlowEntry& entry);
  static std::uint64_t make_cookie(std::uint32_t id, std::uint32_t gen) {
    return (static_cast<std::uint64_t>(gen) << 32) | id;
  }

  mem::vector<Slot> slots_;
  mem::vector<std::uint32_t> free_slots_;
  std::uint32_t head_{kNil};
  std::uint32_t tail_{kNil};
  std::size_t live_count_{0};
  std::uint64_t next_seq_{0};
  std::size_t capacity_{0};
  std::uint64_t adds_rejected_{0};

  mem::unordered_map<pkt::FlowKey, IdList, pkt::FlowKeyHash> exact_;
  mem::vector<Bucket> buckets_;
  mem::unordered_map<std::uint32_t, std::size_t> bucket_of_;  // wildcards -> buckets_ index

  sim::TimerWheel wheel_;
  mem::vector<std::uint64_t> due_scratch_;
};

}  // namespace attain::swsim
