// OpenFlow 1.0 flow table: priority + wildcard lookup, idle/hard timeout
// expiry, counters, and the five FLOW_MOD commands with OF1.0 strict /
// non-strict semantics.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "ofp/messages.hpp"

namespace attain::swsim {

struct FlowEntry {
  ofp::Match match;
  std::uint16_t priority{0x8000};
  std::uint64_t cookie{0};
  std::uint16_t idle_timeout{0};  // seconds; 0 = never
  std::uint16_t hard_timeout{0};  // seconds; 0 = never
  std::uint16_t flags{0};
  ofp::ActionList actions;

  SimTime installed_at{0};
  SimTime last_used{0};
  std::uint64_t packet_count{0};
  std::uint64_t byte_count{0};
};

/// An entry evicted by expire(), with why it left the table.
struct ExpiredEntry {
  FlowEntry entry;
  ofp::FlowRemovedReason reason{ofp::FlowRemovedReason::IdleTimeout};
};

class FlowTable {
 public:
  /// Applies a FLOW_MOD. Returns entries removed by Delete/DeleteStrict
  /// (the switch decides whether each warrants a FLOW_REMOVED, based on
  /// the entry's SEND_FLOW_REM flag).
  std::vector<ExpiredEntry> apply(const ofp::FlowMod& mod, SimTime now);

  /// Highest-priority matching entry for a packet arriving on `in_port`,
  /// or nullptr on table miss. Updates the entry's counters and idle
  /// timestamp. Per OF1.0 §3.4, exact-match entries outrank all wildcard
  /// entries regardless of priority.
  const FlowEntry* match_packet(const pkt::Packet& packet, std::uint16_t in_port, SimTime now,
                                std::size_t wire_size);

  /// Removes entries whose idle or hard timeout has elapsed.
  std::vector<ExpiredEntry> expire(SimTime now);

  const std::vector<FlowEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  void add(const ofp::FlowMod& mod, SimTime now);
  void modify(const ofp::FlowMod& mod, SimTime now, bool strict);
  std::vector<ExpiredEntry> erase(const ofp::FlowMod& mod, bool strict);

  std::vector<FlowEntry> entries_;
};

}  // namespace attain::swsim
