#include "swsim/flow_table.hpp"

#include <algorithm>

#include "ofp/match.hpp"

namespace attain::swsim {

namespace {

bool out_port_filter(const FlowEntry& entry, std::uint16_t out_port) {
  if (out_port == static_cast<std::uint16_t>(ofp::Port::None)) return true;
  return std::any_of(entry.actions.begin(), entry.actions.end(), [&](const ofp::Action& a) {
    const auto* out = std::get_if<ofp::ActionOutput>(&a);
    return out != nullptr && out->port == out_port;
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// Slab + insertion-order list

std::uint32_t FlowTable::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t id = free_slots_.back();
    free_slots_.pop_back();
    return id;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void FlowTable::remove_entry(std::uint32_t id) {
  Slot& slot = slots_[id];
  index_remove(id);
  if (slot.prev != kNil) {
    slots_[slot.prev].next = slot.next;
  } else {
    head_ = slot.next;
  }
  if (slot.next != kNil) {
    slots_[slot.next].prev = slot.prev;
  } else {
    tail_ = slot.prev;
  }
  slot.prev = slot.next = kNil;
  slot.live = false;
  ++slot.timer_gen;  // orphan any pending wheel cookie
  slot.entry = FlowEntry{};
  free_slots_.push_back(id);
  --live_count_;
}

// ---------------------------------------------------------------------------
// Hash index maintenance

void FlowTable::index_insert(std::uint32_t id) {
  const Slot& slot = slots_[id];
  IdList* list;
  if (slot.entry.match.wildcards == 0) {
    list = &exact_[slot.bucket_key];
  } else {
    const std::uint32_t wildcards = slot.entry.match.wildcards;
    auto it = bucket_of_.find(wildcards);
    if (it == bucket_of_.end()) {
      it = bucket_of_.emplace(wildcards, buckets_.size()).first;
      buckets_.emplace_back();
      buckets_.back().wildcards = wildcards;
    }
    Bucket& bucket = buckets_[it->second];
    ++bucket.entry_count;
    list = &bucket.by_key[slot.bucket_key];
  }
  // Keep the list sorted by (priority desc, seq asc): front() is the entry
  // match_packet selects, matching the linear scan's pick exactly.
  const auto pos = std::find_if(list->begin(), list->end(), [&](std::uint32_t other) {
    const Slot& o = slots_[other];
    return o.entry.priority < slot.entry.priority ||
           (o.entry.priority == slot.entry.priority && o.seq > slot.seq);
  });
  list->insert(pos, id);
}

void FlowTable::index_remove(std::uint32_t id) {
  const Slot& slot = slots_[id];
  auto drop = [&](auto& map) {
    const auto it = map.find(slot.bucket_key);
    IdList& list = it->second;
    list.erase(std::find(list.begin(), list.end(), id));
    if (list.empty()) map.erase(it);
  };
  if (slot.entry.match.wildcards == 0) {
    drop(exact_);
    return;
  }
  const std::uint32_t wildcards = slot.entry.match.wildcards;
  const auto bit = bucket_of_.find(wildcards);
  Bucket& bucket = buckets_[bit->second];
  drop(bucket.by_key);
  if (--bucket.entry_count == 0) {
    // Swap-and-pop so a miss only ever probes live masks.
    const std::size_t index = bit->second;
    bucket_of_.erase(bit);
    if (index != buckets_.size() - 1) {
      buckets_[index] = std::move(buckets_.back());
      bucket_of_[buckets_[index].wildcards] = index;
    }
    buckets_.pop_back();
  }
}

std::uint32_t FlowTable::find_strict(const ofp::Match& match, std::uint16_t priority) const {
  // strictly_equals(a, b) == (same wildcards && same masked key projection),
  // so the strict lookup is one hash probe in the entry's own bucket.
  const pkt::FlowKey key = ofp::masked_flow_key(match.key_projection(), match.wildcards);
  const IdList* list = nullptr;
  if (match.wildcards == 0) {
    const auto it = exact_.find(key);
    if (it != exact_.end()) list = &it->second;
  } else {
    const auto bit = bucket_of_.find(match.wildcards);
    if (bit != bucket_of_.end()) {
      const auto it = buckets_[bit->second].by_key.find(key);
      if (it != buckets_[bit->second].by_key.end()) list = &it->second;
    }
  }
  if (list != nullptr) {
    for (const std::uint32_t id : *list) {
      if (slots_[id].entry.priority == priority) return id;
    }
  }
  return kNil;
}

// ---------------------------------------------------------------------------
// Timer wheel

SimTime FlowTable::next_deadline(const FlowEntry& entry) {
  SimTime deadline = kNoDeadline;
  if (entry.hard_timeout != 0) {
    deadline = std::min(deadline,
                        entry.installed_at + static_cast<SimTime>(entry.hard_timeout) * kSecond);
  }
  if (entry.idle_timeout != 0) {
    deadline =
        std::min(deadline, entry.last_used + static_cast<SimTime>(entry.idle_timeout) * kSecond);
  }
  return deadline;
}

void FlowTable::arm_timer(std::uint32_t id) {
  Slot& slot = slots_[id];
  const SimTime deadline = next_deadline(slot.entry);
  if (deadline == kNoDeadline) return;  // permanent entry, never on the wheel
  wheel_.schedule(deadline, make_cookie(id, slot.timer_gen));
}

// ---------------------------------------------------------------------------
// FLOW_MOD commands

ExpiredList FlowTable::apply(const ofp::FlowMod& mod, SimTime now) {
  switch (mod.command) {
    case ofp::FlowModCommand::Add:
      add(mod, now);
      return {};
    case ofp::FlowModCommand::Modify:
      modify(mod, now, /*strict=*/false);
      return {};
    case ofp::FlowModCommand::ModifyStrict:
      modify(mod, now, /*strict=*/true);
      return {};
    case ofp::FlowModCommand::Delete:
      return erase(mod, /*strict=*/false);
    case ofp::FlowModCommand::DeleteStrict:
      return erase(mod, /*strict=*/true);
  }
  return {};
}

void FlowTable::add(const ofp::FlowMod& mod, SimTime now) {
  // OF1.0: ADD replaces an entry with identical match and priority,
  // resetting counters. The replaced entry keeps its insertion rank (the
  // seed overwrote the vector element in place).
  const std::uint32_t existing = find_strict(mod.match, mod.priority);
  if (existing != kNil) {
    Slot& slot = slots_[existing];
    FlowEntry& entry = slot.entry;
    entry.cookie = mod.cookie;
    entry.idle_timeout = mod.idle_timeout;
    entry.hard_timeout = mod.hard_timeout;
    entry.flags = mod.flags;
    entry.actions = mod.actions;
    entry.installed_at = now;
    entry.last_used = now;
    entry.packet_count = 0;
    entry.byte_count = 0;
    ++slot.timer_gen;  // drop the old deadline, arm the new one
    arm_timer(existing);
    return;
  }

  if (capacity_ != 0 && live_count_ >= capacity_) {
    ++adds_rejected_;
    return;
  }

  const std::uint32_t id = acquire_slot();
  Slot& slot = slots_[id];
  FlowEntry& entry = slot.entry;
  entry.match = mod.match;
  entry.priority = mod.priority;
  entry.cookie = mod.cookie;
  entry.idle_timeout = mod.idle_timeout;
  entry.hard_timeout = mod.hard_timeout;
  entry.flags = mod.flags;
  entry.actions = mod.actions;
  entry.installed_at = now;
  entry.last_used = now;
  slot.bucket_key = ofp::masked_flow_key(entry.match.key_projection(), entry.match.wildcards);
  slot.seq = next_seq_++;
  slot.live = true;
  slot.prev = tail_;
  slot.next = kNil;
  if (tail_ != kNil) {
    slots_[tail_].next = id;
  } else {
    head_ = id;
  }
  tail_ = id;
  ++live_count_;
  index_insert(id);
  arm_timer(id);
}

void FlowTable::modify(const ofp::FlowMod& mod, SimTime now, bool strict) {
  bool any = false;
  if (strict) {
    const std::uint32_t id = find_strict(mod.match, mod.priority);
    if (id != kNil) {
      slots_[id].entry.actions = mod.actions;  // counters and timeouts preserved (spec §4.6)
      any = true;
    }
  } else {
    for (std::uint32_t id = head_; id != kNil; id = slots_[id].next) {
      if (mod.match.subsumes(slots_[id].entry.match)) {
        slots_[id].entry.actions = mod.actions;
        any = true;
      }
    }
  }
  if (!any) add(mod, now);  // OF1.0: MODIFY with no match behaves like ADD
}

ExpiredList FlowTable::erase(const ofp::FlowMod& mod, bool strict) {
  std::vector<std::uint32_t> victims;
  if (strict) {
    const std::uint32_t id = find_strict(mod.match, mod.priority);
    if (id != kNil && out_port_filter(slots_[id].entry, mod.out_port)) victims.push_back(id);
  } else {
    for (std::uint32_t id = head_; id != kNil; id = slots_[id].next) {
      if (mod.match.subsumes(slots_[id].entry.match) &&
          out_port_filter(slots_[id].entry, mod.out_port)) {
        victims.push_back(id);
      }
    }
  }
  ExpiredList removed;
  removed.reserve(victims.size());
  for (const std::uint32_t id : victims) {
    removed.push_back(ExpiredEntry{slots_[id].entry, ofp::FlowRemovedReason::Delete});
    remove_entry(id);
  }
  return removed;
}

// ---------------------------------------------------------------------------
// Lookup

const FlowEntry* FlowTable::match_packet(const pkt::FlowKey& key, SimTime now,
                                         std::size_t wire_size) {
  FlowEntry* best = nullptr;
  // Tier 1: exact match. OF1.0 §3.4 gives exact entries precedence over
  // every wildcard entry, so a hit here ends the lookup.
  const auto exact_hit = exact_.find(key);
  if (exact_hit != exact_.end()) {
    best = &slots_[exact_hit->second.front()].entry;
  } else {
    // Tier 2: one masked-key probe per distinct wildcard mask.
    std::uint64_t best_seq = 0;
    for (const Bucket& bucket : buckets_) {
      const auto hit = bucket.by_key.find(ofp::masked_flow_key(key, bucket.wildcards));
      if (hit == bucket.by_key.end()) continue;
      Slot& candidate = slots_[hit->second.front()];
      if (best == nullptr || candidate.entry.priority > best->priority ||
          (candidate.entry.priority == best->priority && candidate.seq < best_seq)) {
        best = &candidate.entry;
        best_seq = candidate.seq;
      }
    }
  }
  if (best != nullptr) {
    // Idle deadline refresh is lazy: only last_used moves here; the wheel
    // re-arms when the stale timer pops in expire().
    best->last_used = now;
    ++best->packet_count;
    best->byte_count += wire_size;
  }
  return best;
}

const FlowEntry* FlowTable::match_packet(const pkt::Packet& packet, std::uint16_t in_port,
                                         SimTime now, std::size_t wire_size) {
  return match_packet(pkt::FlowKey::from_packet(packet, in_port), now, wire_size);
}

void FlowTable::match_batch(const pkt::FlowKey* keys, const std::size_t* wire_sizes,
                            std::size_t count, SimTime now, const FlowEntry** out) {
#if defined(__GNUC__)
  // Pass 1: hash every key and prefetch its exact-tier bucket head so the
  // per-packet dependent load (bucket array -> node) overlaps across the
  // batch. The walk in pass 2 re-does the (now cached) hash lookup.
  if (!exact_.empty()) {
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t b = exact_.bucket(keys[i]);
      const auto head = exact_.begin(b);
      if (head != exact_.end(b)) __builtin_prefetch(&*head);
    }
  }
#endif
  // Pass 2: scalar-order matching, byte-identical semantics.
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = match_packet(keys[i], now, wire_sizes[i]);
  }
}

// ---------------------------------------------------------------------------
// Expiry

ExpiredList FlowTable::expire(SimTime now) {
  due_scratch_.clear();
  wheel_.advance(now, due_scratch_);

  struct Victim {
    std::uint64_t seq;
    std::uint32_t id;
    ofp::FlowRemovedReason reason;
  };
  std::vector<Victim> victims;
  for (const std::uint64_t cookie : due_scratch_) {
    const std::uint32_t id = static_cast<std::uint32_t>(cookie);
    const std::uint32_t gen = static_cast<std::uint32_t>(cookie >> 32);
    Slot& slot = slots_[id];
    if (!slot.live || slot.timer_gen != gen) continue;  // removed or replaced meanwhile
    const FlowEntry& entry = slot.entry;
    if (entry.hard_timeout != 0 &&
        now - entry.installed_at >= static_cast<SimTime>(entry.hard_timeout) * kSecond) {
      victims.push_back(Victim{slot.seq, id, ofp::FlowRemovedReason::HardTimeout});
    } else if (entry.idle_timeout != 0 &&
               now - entry.last_used >= static_cast<SimTime>(entry.idle_timeout) * kSecond) {
      victims.push_back(Victim{slot.seq, id, ofp::FlowRemovedReason::IdleTimeout});
    } else {
      // The idle deadline moved while the timer sat in the wheel; re-arm at
      // the entry's true next deadline (always in the future here).
      arm_timer(id);
    }
  }
  // Report in insertion order — the order the seed's vector scan produced,
  // which the FLOW_REMOVED message sequence (and thus the sweep JSON)
  // depends on.
  std::sort(victims.begin(), victims.end(),
            [](const Victim& a, const Victim& b) { return a.seq < b.seq; });
  ExpiredList expired;
  expired.reserve(victims.size());
  for (const Victim& victim : victims) {
    expired.push_back(ExpiredEntry{slots_[victim.id].entry, victim.reason});
    remove_entry(victim.id);
  }
  return expired;
}

// ---------------------------------------------------------------------------

std::vector<const FlowEntry*> FlowTable::entries() const {
  std::vector<const FlowEntry*> out;
  out.reserve(live_count_);
  for (std::uint32_t id = head_; id != kNil; id = slots_[id].next) {
    out.push_back(&slots_[id].entry);
  }
  return out;
}

void FlowTable::clear() {
  slots_.clear();
  free_slots_.clear();
  exact_.clear();
  buckets_.clear();
  bucket_of_.clear();
  head_ = tail_ = kNil;
  live_count_ = 0;
  wheel_.reset(wheel_.now());  // keep the clock monotone across clear()
  due_scratch_.clear();
}

}  // namespace attain::swsim
