#include "swsim/flow_table.hpp"

#include <algorithm>

namespace attain::swsim {

namespace {

bool out_port_filter(const FlowEntry& entry, std::uint16_t out_port) {
  if (out_port == static_cast<std::uint16_t>(ofp::Port::None)) return true;
  return std::any_of(entry.actions.begin(), entry.actions.end(), [&](const ofp::Action& a) {
    const auto* out = std::get_if<ofp::ActionOutput>(&a);
    return out != nullptr && out->port == out_port;
  });
}

}  // namespace

std::vector<ExpiredEntry> FlowTable::apply(const ofp::FlowMod& mod, SimTime now) {
  switch (mod.command) {
    case ofp::FlowModCommand::Add:
      add(mod, now);
      return {};
    case ofp::FlowModCommand::Modify:
      modify(mod, now, /*strict=*/false);
      return {};
    case ofp::FlowModCommand::ModifyStrict:
      modify(mod, now, /*strict=*/true);
      return {};
    case ofp::FlowModCommand::Delete:
      return erase(mod, /*strict=*/false);
    case ofp::FlowModCommand::DeleteStrict:
      return erase(mod, /*strict=*/true);
  }
  return {};
}

void FlowTable::add(const ofp::FlowMod& mod, SimTime now) {
  // OF1.0: ADD replaces an entry with identical match and priority,
  // resetting counters.
  for (FlowEntry& entry : entries_) {
    if (entry.priority == mod.priority && entry.match.strictly_equals(mod.match)) {
      entry.cookie = mod.cookie;
      entry.idle_timeout = mod.idle_timeout;
      entry.hard_timeout = mod.hard_timeout;
      entry.flags = mod.flags;
      entry.actions = mod.actions;
      entry.installed_at = now;
      entry.last_used = now;
      entry.packet_count = 0;
      entry.byte_count = 0;
      return;
    }
  }
  FlowEntry entry;
  entry.match = mod.match;
  entry.priority = mod.priority;
  entry.cookie = mod.cookie;
  entry.idle_timeout = mod.idle_timeout;
  entry.hard_timeout = mod.hard_timeout;
  entry.flags = mod.flags;
  entry.actions = mod.actions;
  entry.installed_at = now;
  entry.last_used = now;
  entries_.push_back(std::move(entry));
}

void FlowTable::modify(const ofp::FlowMod& mod, SimTime now, bool strict) {
  bool any = false;
  for (FlowEntry& entry : entries_) {
    const bool hit = strict ? entry.priority == mod.priority &&
                                  entry.match.strictly_equals(mod.match)
                            : mod.match.subsumes(entry.match);
    if (hit) {
      entry.actions = mod.actions;  // counters and timeouts preserved (spec §4.6)
      any = true;
    }
  }
  if (!any) add(mod, now);  // OF1.0: MODIFY with no match behaves like ADD
}

std::vector<ExpiredEntry> FlowTable::erase(const ofp::FlowMod& mod, bool strict) {
  std::vector<ExpiredEntry> removed;
  std::erase_if(entries_, [&](const FlowEntry& entry) {
    const bool hit = (strict ? entry.priority == mod.priority &&
                                   entry.match.strictly_equals(mod.match)
                             : mod.match.subsumes(entry.match)) &&
                     out_port_filter(entry, mod.out_port);
    if (hit) {
      removed.push_back(ExpiredEntry{entry, ofp::FlowRemovedReason::Delete});
    }
    return hit;
  });
  return removed;
}

const FlowEntry* FlowTable::match_packet(const pkt::Packet& packet, std::uint16_t in_port,
                                         SimTime now, std::size_t wire_size) {
  FlowEntry* best = nullptr;
  bool best_exact = false;
  for (FlowEntry& entry : entries_) {
    if (!entry.match.matches(packet, in_port)) continue;
    const bool exact = entry.match.is_exact();
    if (best == nullptr || (exact && !best_exact) ||
        (exact == best_exact && entry.priority > best->priority)) {
      best = &entry;
      best_exact = exact;
    }
  }
  if (best != nullptr) {
    best->last_used = now;
    ++best->packet_count;
    best->byte_count += wire_size;
  }
  return best;
}

std::vector<ExpiredEntry> FlowTable::expire(SimTime now) {
  std::vector<ExpiredEntry> expired;
  std::erase_if(entries_, [&](const FlowEntry& entry) {
    ofp::FlowRemovedReason reason;
    if (entry.hard_timeout != 0 &&
        now - entry.installed_at >= static_cast<SimTime>(entry.hard_timeout) * kSecond) {
      reason = ofp::FlowRemovedReason::HardTimeout;
    } else if (entry.idle_timeout != 0 &&
               now - entry.last_used >= static_cast<SimTime>(entry.idle_timeout) * kSecond) {
      reason = ofp::FlowRemovedReason::IdleTimeout;
    } else {
      return false;
    }
    expired.push_back(ExpiredEntry{entry, reason});
    return true;
  });
  return expired;
}

}  // namespace attain::swsim
