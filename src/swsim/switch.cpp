#include "swsim/switch.hpp"

#include <span>

#include "common/log.hpp"
#include "packet/codec.hpp"
#include "sim/batching.hpp"

namespace attain::swsim {

OpenFlowSwitch::OpenFlowSwitch(sim::Scheduler& sched, SwitchConfig config)
    : sched_(sched), config_(std::move(config)) {
  table_.set_capacity(config_.table_capacity);
}

void OpenFlowSwitch::set_control_sender(chan::EnvelopeSink send_control) {
  send_control_ = std::move(send_control);
}

void OpenFlowSwitch::set_packet_sender(std::function<void(std::uint16_t, pkt::Packet)> send_packet) {
  send_packet_ = std::move(send_packet);
}

bool OpenFlowSwitch::in_standalone_mode() const {
  return state_ != ChannelState::Connected && !config_.fail_secure;
}

void OpenFlowSwitch::connect() {
  state_ = ChannelState::HandshakePending;
  echo_misses_ = 0;
  echo_outstanding_ = false;
  send_message(ofp::make_message(next_xid(), ofp::Hello{}));
  schedule_echo();
  schedule_expiry();
}

void OpenFlowSwitch::send_message(const ofp::Message& msg) {
  if (!send_control_) return;
  ++counters_.control_tx;
  send_control_(chan::Envelope(msg));  // wire bytes materialize at the first pipe hop
}

void OpenFlowSwitch::on_control_envelope(chan::Envelope envelope) {
  ++counters_.control_rx;
  const ofp::Message* msg =
      chan::ingress_decode(envelope, config_.name, counters_.decode_errors);
  if (msg == nullptr) {
    ofp::Error reply;
    reply.type = ofp::ErrorType::BadRequest;
    reply.code = 0;
    send_message(ofp::make_message(next_xid(), std::move(reply)));
    return;
  }
  handle_message(*msg);
}

void OpenFlowSwitch::on_control_bytes(const Bytes& frame) {
  on_control_envelope(chan::Envelope(frame));
}

void OpenFlowSwitch::handle_message(const ofp::Message& msg) {
  using ofp::MsgType;
  switch (msg.type()) {
    case MsgType::Hello:
      // Controller's HELLO; reply with FEATURES once asked. Connection is
      // usable after FEATURES exchange.
      break;
    case MsgType::FeaturesRequest: {
      ofp::FeaturesReply reply;
      reply.datapath_id = config_.dpid;
      reply.n_buffers = config_.buffer_capacity;
      reply.n_tables = 1;
      for (std::uint16_t p = 1; p <= config_.num_ports; ++p) {
        ofp::PhyPort port;
        port.port_no = p;
        port.hw_addr = pkt::MacAddress::from_u64((config_.dpid << 8) | p);
        port.name = config_.name + "-eth" + std::to_string(p);
        reply.ports.push_back(std::move(port));
      }
      send_message(ofp::Message{msg.xid, std::move(reply)});
      state_ = ChannelState::Connected;
      echo_misses_ = 0;
      ATTAIN_LOG(Info, config_.name) << "OpenFlow channel connected";
      break;
    }
    case MsgType::GetConfigRequest: {
      ofp::GetConfigReply reply;
      reply.miss_send_len = config_.miss_send_len;
      send_message(ofp::Message{msg.xid, std::move(reply)});
      break;
    }
    case MsgType::SetConfig:
      config_.miss_send_len = msg.as<ofp::SetConfig>().miss_send_len;
      break;
    case MsgType::EchoRequest:
      send_message(ofp::Message{msg.xid, ofp::EchoReply{msg.as<ofp::EchoRequest>().data}});
      break;
    case MsgType::EchoReply:
      echo_outstanding_ = false;
      echo_misses_ = 0;
      break;
    case MsgType::FlowMod:
      handle_flow_mod(msg.xid, msg.as<ofp::FlowMod>());
      break;
    case MsgType::PacketOut:
      handle_packet_out(msg.as<ofp::PacketOut>());
      break;
    case MsgType::BarrierRequest:
      send_message(ofp::Message{msg.xid, ofp::BarrierReply{}});
      break;
    case MsgType::StatsRequest:
      handle_stats_request(msg.xid, msg.as<ofp::StatsRequest>());
      break;
    case MsgType::PortMod:
    case MsgType::Vendor:
    case MsgType::Error:
      break;  // accepted, no behaviour modelled
    default: {
      ofp::Error reply;
      reply.type = ofp::ErrorType::BadRequest;
      reply.code = 1;  // OFPBRC_BAD_TYPE
      send_message(ofp::make_message(next_xid(), std::move(reply)));
      break;
    }
  }
}

void OpenFlowSwitch::handle_flow_mod(std::uint32_t xid, const ofp::FlowMod& mod) {
  ++counters_.flow_mods_applied;
  const std::uint64_t rejected_before = table_.adds_rejected();
  for (const ExpiredEntry& removed : table_.apply(mod, sched_.now())) {
    if ((removed.entry.flags & ofp::kFlowModSendFlowRem) != 0) send_flow_removed(removed);
  }
  if (table_.adds_rejected() != rejected_before) {
    ++counters_.flow_mods_rejected;
    ofp::Error reply;
    reply.type = ofp::ErrorType::FlowModFailed;
    reply.code = 0;  // OFPFMFC_ALL_TABLES_FULL
    send_message(ofp::make_message(xid, std::move(reply)));
  }
  // A FLOW_MOD carrying a buffer id also releases the buffered packet
  // through the new actions (this is the POX l2_learning idiom whose
  // suppression yields the Fig. 11 denial of service).
  if (mod.buffer_id != ofp::kNoBuffer) {
    const auto it = buffers_.find(mod.buffer_id);
    if (it != buffers_.end()) {
      const Buffered buffered = it->second;
      buffers_.erase(it);
      if (mod.command == ofp::FlowModCommand::Add ||
          mod.command == ofp::FlowModCommand::Modify ||
          mod.command == ofp::FlowModCommand::ModifyStrict) {
        apply_actions(mod.actions, buffered.packet, buffered.in_port);
      }
    }
  }
}

void OpenFlowSwitch::handle_packet_out(const ofp::PacketOut& out) {
  ++counters_.packet_outs_applied;
  pkt::Packet packet;
  std::uint16_t in_port = out.in_port;
  if (out.buffer_id != ofp::kNoBuffer) {
    const auto it = buffers_.find(out.buffer_id);
    if (it == buffers_.end()) return;  // stale reference
    packet = it->second.packet;
    if (in_port == static_cast<std::uint16_t>(ofp::Port::None)) in_port = it->second.in_port;
    buffers_.erase(it);
  } else {
    if (out.data.empty()) return;
    try {
      packet = pkt::decode(out.data);
    } catch (const DecodeError&) {
      ++counters_.decode_errors;
      return;
    }
  }
  apply_actions(out.actions, std::move(packet), in_port);
}

void OpenFlowSwitch::handle_stats_request(std::uint32_t xid, const ofp::StatsRequest& req) {
  ofp::StatsReply reply;
  switch (req.stats_type()) {
    case ofp::StatsType::Desc: {
      ofp::DescStats desc;
      desc.mfr_desc = "ATTAIN reproduction";
      desc.hw_desc = "simulated datapath";
      desc.sw_desc = "swsim";
      desc.serial_num = std::to_string(config_.dpid);
      desc.dp_desc = config_.name;
      reply.body = std::move(desc);
      break;
    }
    case ofp::StatsType::Flow: {
      const auto& body = std::get<ofp::FlowStatsRequest>(req.body);
      std::vector<ofp::FlowStatsEntry> entries;
      for (const FlowEntry* e : table_.entries()) {
        if (!body.match.subsumes(e->match)) continue;
        ofp::FlowStatsEntry out;
        out.match = e->match;
        out.priority = e->priority;
        out.idle_timeout = e->idle_timeout;
        out.hard_timeout = e->hard_timeout;
        out.cookie = e->cookie;
        out.packet_count = e->packet_count;
        out.byte_count = e->byte_count;
        out.duration_sec =
            static_cast<std::uint32_t>((sched_.now() - e->installed_at) / kSecond);
        out.actions = e->actions;
        entries.push_back(std::move(out));
      }
      reply.body = std::move(entries);
      break;
    }
    case ofp::StatsType::Aggregate: {
      const auto& body = std::get<ofp::AggregateStatsRequest>(req.body);
      ofp::AggregateStats agg;
      for (const FlowEntry* e : table_.entries()) {
        if (!body.match.subsumes(e->match)) continue;
        agg.packet_count += e->packet_count;
        agg.byte_count += e->byte_count;
        ++agg.flow_count;
      }
      reply.body = agg;
      break;
    }
    case ofp::StatsType::Port: {
      std::vector<ofp::PortStatsEntry> entries;
      ofp::PortStatsEntry e;
      e.port_no = static_cast<std::uint16_t>(ofp::Port::None);
      e.rx_packets = counters_.packets_in;
      e.tx_packets = counters_.packets_forwarded;
      entries.push_back(e);
      reply.body = std::move(entries);
      break;
    }
    default:
      return;
  }
  send_message(ofp::Message{xid, std::move(reply)});
}

void OpenFlowSwitch::apply_actions(const ofp::ActionList& actions, pkt::Packet packet,
                                   std::uint16_t in_port) {
  for (const ofp::Action& action : actions) {
    if (const auto* out = std::get_if<ofp::ActionOutput>(&action)) {
      output_packet(out->port, packet, in_port);
    } else if (const auto* enq = std::get_if<ofp::ActionEnqueue>(&action)) {
      output_packet(enq->port, packet, in_port);
    } else {
      ofp::apply_rewrite(action, packet);
    }
  }
}

void OpenFlowSwitch::output_packet(std::uint16_t out_port, const pkt::Packet& packet,
                                   std::uint16_t in_port) {
  using ofp::Port;
  // OF1.0 forbids sending back out the ingress port unless explicitly
  // requested through OFPP_IN_PORT.
  bool allow_in_port = false;
  switch (static_cast<Port>(out_port)) {
    case Port::Flood:
    case Port::All:
      flood(packet, static_cast<Port>(out_port) == Port::All ? 0 : in_port);
      return;
    case Port::InPort:
      out_port = in_port;
      allow_in_port = true;
      break;
    case Port::Controller: {
      table_miss(packet, in_port);  // deliver to controller as PACKET_IN(action)
      return;
    }
    case Port::Table: {
      const FlowEntry* entry =
          table_.match_packet(packet, in_port, sched_.now(), packet.wire_size());
      if (entry != nullptr) apply_actions(entry->actions, packet, in_port);
      return;
    }
    case Port::None:
      return;
    default:
      break;
  }
  if (out_port == 0 || out_port > config_.num_ports) return;
  if (out_port == in_port && !allow_in_port) return;
  if (down_ports_.contains(out_port)) return;
  ++counters_.packets_forwarded;
  if (send_packet_) send_packet_(out_port, packet);
}

void OpenFlowSwitch::flood(const pkt::Packet& packet, std::uint16_t except_port) {
  for (std::uint16_t p = 1; p <= config_.num_ports; ++p) {
    if (p == except_port || down_ports_.contains(p)) continue;
    ++counters_.packets_forwarded;
    if (send_packet_) send_packet_(p, packet);
  }
}

void OpenFlowSwitch::set_port_up(std::uint16_t port, bool up) {
  if (port == 0 || port > config_.num_ports) return;
  const bool was_up = !down_ports_.contains(port);
  if (up == was_up) return;
  if (up) {
    down_ports_.erase(port);
  } else {
    down_ports_.insert(port);
  }
  ofp::PortStatus status;
  status.reason = ofp::PortReason::Modify;
  status.desc.port_no = port;
  status.desc.hw_addr = pkt::MacAddress::from_u64((config_.dpid << 8) | port);
  status.desc.name = config_.name + "-eth" + std::to_string(port);
  status.desc.state = up ? 0 : 1;  // OFPPS_LINK_DOWN
  send_message(ofp::make_message(next_xid(), std::move(status)));
}

void OpenFlowSwitch::on_packet(std::uint16_t port, pkt::Packet packet) {
  ++counters_.packets_in;
  // Fast path: the 12-tuple key is extracted exactly once per packet; the
  // classifier never re-parses the header chain per entry.
  const pkt::FlowKey key = pkt::FlowKey::from_packet(packet, port);
  const FlowEntry* entry = table_.match_packet(key, sched_.now(), packet.wire_size());
  if (entry != nullptr) {
    apply_actions(entry->actions, std::move(packet), port);
    return;
  }
  ++counters_.table_misses;
  if (state_ == ChannelState::Connected) {
    table_miss(packet, port);
  } else if (config_.fail_secure) {
    ++counters_.miss_drops;
  } else {
    standalone_forward(packet, port);
  }
}

void OpenFlowSwitch::on_packet_batch(PacketBatch batch) {
  if (!sim::batching_enabled() || state_ != ChannelState::Connected) {
    // Disconnected fail-mode handling (and the batching-off oracle) take
    // the scalar path unchanged.
    for (pkt::Packet& packet : batch.packets) on_packet(batch.port, std::move(packet));
    return;
  }
  const SimTime now = sched_.now();
  const std::size_t count = batch.packets.size();
  const bool have_wires = batch.wires.size() == count;
  // Slab-backed scratch: steady-state batches recycle these pages.
  mem::vector<pkt::FlowKey> keys;
  mem::vector<std::size_t> sizes;
  mem::vector<const FlowEntry*> entries(count, nullptr);
  keys.reserve(count);
  sizes.reserve(count);
  for (const pkt::Packet& packet : batch.packets) {
    keys.push_back(pkt::FlowKey::from_packet(packet, batch.port));
    sizes.push_back(packet.wire_size());
  }
  // Nothing below mutates the table's structure (control messages travel
  // over pipes), so matching every key up front — with the prefetch pass —
  // selects exactly what per-packet matching would.
  table_.match_batch(keys.data(), sizes.data(), count, now, entries.data());
  for (std::size_t i = 0; i < count; ++i) {
    ++counters_.packets_in;
    if (entries[i] != nullptr) {
      apply_actions(entries[i]->actions, std::move(batch.packets[i]), batch.port);
      continue;
    }
    ++counters_.table_misses;
    if (have_wires) {
      table_miss(batch.packets[i], batch.wires[i], batch.port);
    } else {
      table_miss(batch.packets[i], batch.port);
    }
  }
}

void OpenFlowSwitch::table_miss(const pkt::Packet& packet, std::uint16_t in_port) {
  table_miss(packet, pkt::encode(packet), in_port);
}

void OpenFlowSwitch::table_miss(const pkt::Packet& packet, const Bytes& frame,
                                std::uint16_t in_port) {
  // Buffering decision first, exactly the scalar order: buffer id, then
  // the shipped data region (miss_send_len-truncated when buffered, the
  // whole frame when the pool is exhausted), then the xid.
  std::uint32_t buffer_id = ofp::kNoBuffer;
  std::size_t data_size = frame.size();
  if (buffers_.size() < config_.buffer_capacity) {
    buffer_id = next_buffer_id_++;
    buffers_[buffer_id] = Buffered{packet, in_port, sched_.now()};
    data_size = std::min<std::size_t>(frame.size(), config_.miss_send_len);
  }
  ++counters_.packet_in_sent;

  if (sim::batching_enabled() && send_control_) {
    if (ofp::StampedTemplate* tmpl = miss_template(data_size)) {
      // O(patched bytes) emission: memcpy the prototype wire and stamp the
      // flood-varying fields — bytes validated identical to a full encode
      // at template construction (and by the differential fuzz tests).
      tmpl->set_xid(next_xid());
      tmpl->set_buffer_id(buffer_id);
      tmpl->set_in_port(in_port);
      tmpl->set_total_len(static_cast<std::uint16_t>(frame.size()));
      tmpl->set_data(std::span<const std::uint8_t>(frame.data(), data_size));
      ++counters_.control_tx;
      send_control_(chan::Envelope::from_parts(tmpl->emit_message(), tmpl->emit_wire()));
      return;
    }
  }

  ofp::PacketIn pin;
  pin.in_port = in_port;
  pin.reason = ofp::PacketInReason::NoMatch;
  pin.total_len = static_cast<std::uint16_t>(frame.size());
  pin.buffer_id = buffer_id;
  pin.data.assign(frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(data_size));
  send_message(ofp::make_message(next_xid(), std::move(pin)));
}

ofp::StampedTemplate* OpenFlowSwitch::miss_template(std::size_t data_size) {
  const auto it = miss_templates_.find(data_size);
  if (it != miss_templates_.end()) return it->second ? &*it->second : nullptr;
  if (miss_templates_.size() >= 16) miss_templates_.clear();  // pathological size churn
  ofp::PacketIn proto;
  proto.reason = ofp::PacketInReason::NoMatch;
  proto.data.assign(data_size, 0);
  ofp::StampedTemplate tmpl(ofp::Message{0, std::move(proto)});
  std::optional<ofp::StampedTemplate>& slot = miss_templates_[data_size];
  if (tmpl.can_stamp_xid() && tmpl.can_stamp_buffer_id() && tmpl.can_stamp_in_port() &&
      tmpl.can_stamp_total_len() && tmpl.can_stamp_data(data_size)) {
    slot.emplace(std::move(tmpl));
    return &*slot;
  }
  return nullptr;  // slot stays nullopt: negative cache
}

void OpenFlowSwitch::standalone_forward(const pkt::Packet& packet, std::uint16_t in_port) {
  // Fail-safe fallback: behave as an autonomous learning switch, exactly
  // what OVS standalone mode does after `max_backoff` with no controller.
  ++counters_.standalone_forwards;
  standalone_macs_[packet.eth.src.to_u64()] = in_port;
  const auto it = standalone_macs_.find(packet.eth.dst.to_u64());
  if (!packet.eth.dst.is_multicast() && it != standalone_macs_.end()) {
    if (it->second != in_port) {
      ++counters_.packets_forwarded;
      if (send_packet_) send_packet_(it->second, packet);
    }
  } else {
    flood(packet, in_port);
  }
}

void OpenFlowSwitch::send_flow_removed(const ExpiredEntry& expired) {
  ofp::FlowRemoved msg;
  msg.match = expired.entry.match;
  msg.cookie = expired.entry.cookie;
  msg.priority = expired.entry.priority;
  msg.reason = expired.reason;
  msg.duration_sec =
      static_cast<std::uint32_t>((sched_.now() - expired.entry.installed_at) / kSecond);
  msg.idle_timeout = expired.entry.idle_timeout;
  msg.packet_count = expired.entry.packet_count;
  msg.byte_count = expired.entry.byte_count;
  ++counters_.flow_removed_sent;
  send_message(ofp::make_message(next_xid(), std::move(msg)));
}

void OpenFlowSwitch::schedule_echo() {
  sched_.after(config_.echo_interval, [this] { on_echo_timer(); });
}

void OpenFlowSwitch::on_echo_timer() {
  if (state_ != ChannelState::Disconnected) {
    if (echo_outstanding_) {
      ++echo_misses_;
      if (echo_misses_ >= config_.echo_miss_limit) mark_disconnected();
    }
    if (state_ != ChannelState::Disconnected) {
      echo_outstanding_ = true;
      ++counters_.echo_requests_sent;
      send_message(ofp::make_message(next_xid(), ofp::EchoRequest{}));
    }
  } else {
    // Periodic reconnect attempt, like OVS's backoff loop. The channel
    // stays Disconnected until the controller actually completes a new
    // handshake (FEATURES exchange).
    send_message(ofp::make_message(next_xid(), ofp::Hello{}));
    echo_outstanding_ = false;
    echo_misses_ = 0;
  }
  schedule_echo();
}

void OpenFlowSwitch::mark_disconnected() {
  if (state_ == ChannelState::Disconnected) return;
  state_ = ChannelState::Disconnected;
  echo_outstanding_ = false;
  standalone_macs_.clear();
  ATTAIN_LOG(Warn, config_.name)
      << "controller connection lost; entering "
      << (config_.fail_secure ? "fail-secure" : "fail-safe (standalone)") << " mode";
}

void OpenFlowSwitch::schedule_expiry() {
  sched_.after(config_.expiry_interval, [this] {
    for (const ExpiredEntry& expired : table_.expire(sched_.now())) {
      if ((expired.entry.flags & ofp::kFlowModSendFlowRem) != 0 &&
          state_ == ChannelState::Connected) {
        send_flow_removed(expired);
      }
    }
    std::erase_if(buffers_, [this](const auto& entry) {
      return sched_.now() - entry.second.buffered_at >= kBufferTtl;
    });
    schedule_expiry();
  });
}

}  // namespace attain::swsim
