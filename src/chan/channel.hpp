// The unified control-channel pipeline. One Channel models one switch <->
// controller control connection routed through the interposition point:
//
//   switch ==pipe==> [proxy point: stage 0 -> stage 1 -> ...] ==pipe==> controller
//          <==pipe== [                 ...                  ] <==pipe==
//
// Both directions traverse the same ordered stage chain at the proxy point.
// A stage observes (monitor tap, trace) and passes the envelope to `next`,
// or consumes it (the injector proxy stage) and later re-enters the channel
// through forward() — possibly on a different channel, which is how
// redirected messages travel. Endpoints attach as envelope sinks, so the
// whole path is typed: the frame is encoded once (at the first pipe hop)
// and decoded at most once, instead of the encode/decode/decode round-trip
// the previous std::function<void(Bytes)> plumbing paid per frame.
//
// Each channel keeps per-direction counters and a bounded trace ring that
// sweep results can serialize; both are deterministic (virtual-time stamps
// only).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "attain/monitor/monitor.hpp"
#include "chan/envelope.hpp"
#include "common/arena.hpp"
#include "common/json.hpp"
#include "sim/link.hpp"
#include "sim/scheduler.hpp"

namespace attain::chan {

/// Per-direction channel accounting. codec_ops_saved counts the
/// ofp::encode/ofp::decode invocations the envelope cache avoided relative
/// to the byte pipeline (one proxy decode per readable frame, one endpoint
/// decode per delivered frame).
struct DirectionCounters {
  std::uint64_t frames{0};            // entered the channel at this direction's ingress
  std::uint64_t forwarded{0};         // left the proxy point toward the endpoint
  std::uint64_t suppressed{0};        // consumed at the proxy point (injector verdict)
  std::uint64_t decode_errors{0};     // frames whose wire bytes do not parse
  std::uint64_t codec_ops_saved{0};

  void add(const DirectionCounters& other);
  void write_json(JsonWriter& w) const;
};

/// One trace-ring record: a frame passing the proxy point.
struct TraceEntry {
  SimTime time{0};
  Direction direction{Direction::SwitchToController};
  std::optional<ofp::MsgType> type;  // absent for sealed/undecodable frames
  std::uint32_t xid{0};
  std::size_t length{0};
};

/// Bounded ring of the most recent TraceEntry records (oldest evicted).
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity) : capacity_(capacity) {
    // The ring is a run-scoped buffer: grab the whole capacity up front so
    // steady-state pushes never grow the vector.
    entries_.reserve(capacity_);
  }

  void push(TraceEntry entry);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }
  /// Entries evicted to make room (total pushed = size() + dropped()).
  std::uint64_t dropped() const { return total_ > entries_.size() ? total_ - entries_.size() : 0; }
  /// Oldest-first copy of the retained entries.
  std::vector<TraceEntry> snapshot() const;

  void write_json(JsonWriter& w) const;

 private:
  std::size_t capacity_;
  mem::vector<TraceEntry> entries_;  // ring storage, wraps at capacity_
  std::size_t head_{0};              // index of the oldest entry once full
  std::uint64_t total_{0};
};

class Channel;

/// A coalesced burst of envelopes sharing one delivery instant on one pipe
/// (see sim::PayloadBatch and Pipe::set_batch_receiver).
using EnvelopeBatch = sim::PayloadBatch<Envelope>;

/// The frame shape a fast-path decision is made against: direction, TLS
/// opacity, and (for readable frames) the decoded message type. Two frames
/// with equal shapes are indistinguishable to every stage's plan_fast().
struct BatchShape {
  Direction direction{Direction::SwitchToController};
  bool sealed{false};
  std::optional<ofp::MsgType> type;  // absent for sealed/undecodable frames

  friend bool operator==(const BatchShape&, const BatchShape&) = default;
};

/// One interposition stage at the channel's proxy point. on_envelope()
/// receives every frame (both directions) and either passes it on via
/// `next` (zero or more times; zero consumes it) or re-enters the channel
/// later through Channel::forward().
class Stage {
 public:
  virtual ~Stage() = default;
  virtual const char* name() const = 0;
  virtual void on_envelope(Channel& channel, Direction direction, Envelope envelope,
                           const EnvelopeSink& next) = 0;

  /// Fast-path contract: return true when, for every frame matching
  /// `shape`, this stage's on_envelope() is exactly equivalent to
  /// on_envelope_fast() — same counters, same monitor effects, same
  /// forwarding — with no event scheduling. The channel queries all stages
  /// once per batch (or once per frame on the scalar ingress) and falls
  /// back to on_envelope() whenever any stage declines, so the default is
  /// safely "no fast path".
  virtual bool plan_fast(Channel& channel, const BatchShape& shape) {
    (void)channel;
    (void)shape;
    return false;
  }
  /// Only called for shapes plan_fast() accepted. Returns true to pass the
  /// envelope to the next stage (the channel forward()s after the last
  /// stage); false when the stage consumed it and owns all forwarding or
  /// suppression accounting itself.
  virtual bool on_envelope_fast(Channel& channel, Direction direction, Envelope& envelope) {
    (void)channel;
    (void)direction;
    (void)envelope;
    return true;
  }
};

struct ChannelConfig {
  std::string name{"chan"};
  /// TLS connection: frames are sealed at the proxy point (stages cannot
  /// read the payload) and unsealed at delivery.
  bool tls{false};
  /// Per-hop pipe configuration (switch<->proxy and proxy<->controller
  /// segments — two hops per direction, as in the paper's deployment where
  /// the proxy sits on a dedicated control network).
  sim::PipeConfig segment{1'000'000'000, 150 * kMicrosecond, 0};
  std::size_t trace_capacity{64};
};

class Channel {
 public:
  Channel(sim::Scheduler& sched, ChannelConfig config);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  const ChannelConfig& config() const { return config_; }
  sim::Scheduler& scheduler() { return sched_; }

  // --- endpoint wiring -----------------------------------------------------
  /// Delivery sinks at the two ends (invoked after the egress pipe hop,
  /// with the envelope unsealed).
  void set_switch_sink(EnvelopeSink sink) { switch_sink_ = std::move(sink); }
  void set_controller_sink(EnvelopeSink sink) { controller_sink_ = std::move(sink); }

  /// Ingress: endpoints send their frames here (the switch's control
  /// sender / the controller's connection sender).
  void send_from_switch(Envelope envelope);
  void send_from_controller(Envelope envelope);
  /// The above, bound as sinks for handing to endpoints.
  EnvelopeSink switch_sender();
  EnvelopeSink controller_sender();

  // --- stages --------------------------------------------------------------
  /// Appends a stage to the proxy point; stages run in insertion order.
  void add_stage(std::unique_ptr<Stage> stage);
  std::size_t stage_count() const { return stages_.size(); }

  /// Egress from the proxy point: sends the envelope down the pipe toward
  /// the endpoint `direction` points at. Used by the injector stage (and
  /// by the channel itself when the stage chain runs to completion).
  void forward(Direction direction, Envelope envelope);
  /// Accounting hook for a stage that consumed a frame.
  void note_suppressed(Direction direction);

  // --- observability -------------------------------------------------------
  const DirectionCounters& counters(Direction direction) const {
    return counters_[static_cast<std::size_t>(direction)];
  }
  /// Both directions summed.
  DirectionCounters totals() const;
  TraceRing& trace() { return trace_; }
  const TraceRing& trace() const { return trace_; }

  /// Deterministic JSON: {"name", "tls", "switch_to_controller": {...},
  /// "controller_to_switch": {...}, "trace": [...]}.
  void write_json(JsonWriter& w) const;
  std::string to_json() const;

 private:
  void arrive_at_proxy(Direction direction, Envelope envelope);
  /// Batch ingress: per-envelope preamble identical to arrive_at_proxy(),
  /// with one stage plan per run of same-shaped envelopes instead of one
  /// dispatch chain per frame. Any shape change or declined plan falls back
  /// to the scalar stage chain for that envelope (and forces a replan,
  /// since scalar stage work may change injector state).
  void arrive_at_proxy_batch(Direction direction, EnvelopeBatch batch);
  void deliver_batch(Direction direction, EnvelopeBatch batch);
  static BatchShape shape_of(Direction direction, const Envelope& envelope);
  /// Scalar fast path: plan + run the fast hooks for one frame; returns
  /// false (envelope untouched) if any stage declines.
  bool try_run_fast(Direction direction, Envelope& envelope);
  void run_fast(Direction direction, Envelope envelope);
  void run_stage(std::size_t index, Direction direction, Envelope envelope);
  void deliver(Direction direction, Envelope envelope);
  DirectionCounters& dir_counters(Direction direction) {
    return counters_[static_cast<std::size_t>(direction)];
  }

  sim::Scheduler& sched_;
  ChannelConfig config_;

  sim::Pipe<Envelope> switch_to_proxy_;
  sim::Pipe<Envelope> proxy_to_switch_;
  sim::Pipe<Envelope> controller_to_proxy_;
  sim::Pipe<Envelope> proxy_to_controller_;

  std::vector<std::unique_ptr<Stage>> stages_;
  /// Pre-bound continuation sinks, one per (stage, direction): stage i's
  /// `next` forwards to stage i+1. Built in add_stage() so the per-frame
  /// dispatch constructs no std::function (the capture exceeds the
  /// small-buffer size, so building one per frame was a heap round-trip).
  std::vector<std::array<EnvelopeSink, 2>> next_sinks_;
  EnvelopeSink switch_sink_;
  EnvelopeSink controller_sink_;

  std::array<DirectionCounters, 2> counters_{};
  TraceRing trace_;
};

// ---------------------------------------------------------------------------
// Stock stages.
// ---------------------------------------------------------------------------

/// Records a monitor::EventKind::MessageObserved event for every frame
/// passing the proxy point (the §VI-B3 monitor attachment). `message_id`
/// supplies the id the injector will assign to the frame (so tap events and
/// injector events agree); defaults to 0 for standalone use.
class MonitorTapStage : public Stage {
 public:
  MonitorTapStage(monitor::Monitor& monitor, ConnectionId connection,
                  std::function<std::uint64_t()> message_id = {});

  const char* name() const override { return "monitor-tap"; }
  void on_envelope(Channel& channel, Direction direction, Envelope envelope,
                   const EnvelopeSink& next) override;

  /// Fast when the monitor keeps counters only: tally_observed() bumps the
  /// same kind/type/connection counters record() would, and the Event the
  /// scalar path builds would be dropped anyway.
  bool plan_fast(Channel& channel, const BatchShape& shape) override;
  bool on_envelope_fast(Channel& channel, Direction direction, Envelope& envelope) override;

 private:
  monitor::Monitor& monitor_;
  ConnectionId connection_;
  std::function<std::uint64_t()> message_id_;
};

/// Appends a TraceEntry to the channel's ring for every frame passing the
/// proxy point.
class TraceStage : public Stage {
 public:
  const char* name() const override { return "trace"; }
  void on_envelope(Channel& channel, Direction direction, Envelope envelope,
                   const EnvelopeSink& next) override;

  /// Always fast: the ring push is identical either way.
  bool plan_fast(Channel& channel, const BatchShape& shape) override;
  bool on_envelope_fast(Channel& channel, Direction direction, Envelope& envelope) override;
};

}  // namespace attain::chan
