#include "chan/channel.hpp"

namespace attain::chan {

void DirectionCounters::add(const DirectionCounters& other) {
  frames += other.frames;
  forwarded += other.forwarded;
  suppressed += other.suppressed;
  decode_errors += other.decode_errors;
  codec_ops_saved += other.codec_ops_saved;
}

void DirectionCounters::write_json(JsonWriter& w) const {
  w.begin_object();
  w.field("frames", frames);
  w.field("forwarded", forwarded);
  w.field("suppressed", suppressed);
  w.field("decode_errors", decode_errors);
  w.field("codec_ops_saved", codec_ops_saved);
  w.end_object();
}

void TraceRing::push(TraceEntry entry) {
  ++total_;
  if (capacity_ == 0) return;
  if (entries_.size() < capacity_) {
    entries_.push_back(std::move(entry));
    return;
  }
  entries_[head_] = std::move(entry);
  head_ = (head_ + 1) % capacity_;
}

std::vector<TraceEntry> TraceRing::snapshot() const {
  std::vector<TraceEntry> out;
  out.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out.push_back(entries_[(head_ + i) % entries_.size()]);
  }
  return out;
}

void TraceRing::write_json(JsonWriter& w) const {
  w.begin_object();
  w.field("capacity", static_cast<std::uint64_t>(capacity_));
  w.field("dropped", dropped());
  w.key("entries").begin_array();
  for (const TraceEntry& entry : snapshot()) {
    w.begin_object();
    w.field("t_us", static_cast<std::int64_t>(entry.time));
    w.field("dir", to_string(entry.direction));
    if (entry.type.has_value()) {
      w.field("type", ofp::to_string(*entry.type));
    } else {
      w.key("type").null();
    }
    w.field("xid", static_cast<std::uint64_t>(entry.xid));
    w.field("len", static_cast<std::uint64_t>(entry.length));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

Channel::Channel(sim::Scheduler& sched, ChannelConfig config)
    : sched_(sched),
      config_(std::move(config)),
      switch_to_proxy_(sched, config_.segment),
      proxy_to_switch_(sched, config_.segment),
      controller_to_proxy_(sched, config_.segment),
      proxy_to_controller_(sched, config_.segment),
      trace_(config_.trace_capacity) {
  switch_to_proxy_.set_receiver([this](Envelope e) {
    arrive_at_proxy(Direction::SwitchToController, std::move(e));
  });
  controller_to_proxy_.set_receiver([this](Envelope e) {
    arrive_at_proxy(Direction::ControllerToSwitch, std::move(e));
  });
  proxy_to_switch_.set_receiver([this](Envelope e) {
    deliver(Direction::ControllerToSwitch, std::move(e));
  });
  proxy_to_controller_.set_receiver([this](Envelope e) {
    deliver(Direction::SwitchToController, std::move(e));
  });
  // Opt all four hops into burst coalescing (sim/batching.hpp gates it at
  // run time). Flood-shaped traffic — many sends sharing a zero-serialize
  // delivery instant — then crosses each hop as one event per burst.
  switch_to_proxy_.set_batch_receiver([this](EnvelopeBatch batch) {
    arrive_at_proxy_batch(Direction::SwitchToController, std::move(batch));
  });
  controller_to_proxy_.set_batch_receiver([this](EnvelopeBatch batch) {
    arrive_at_proxy_batch(Direction::ControllerToSwitch, std::move(batch));
  });
  proxy_to_switch_.set_batch_receiver([this](EnvelopeBatch batch) {
    deliver_batch(Direction::ControllerToSwitch, std::move(batch));
  });
  proxy_to_controller_.set_batch_receiver([this](EnvelopeBatch batch) {
    deliver_batch(Direction::SwitchToController, std::move(batch));
  });
}

void Channel::send_from_switch(Envelope envelope) {
  ++dir_counters(Direction::SwitchToController).frames;
  const std::size_t size = envelope.wire_size();  // the one mandatory encode
  switch_to_proxy_.send(std::move(envelope), size);
}

void Channel::send_from_controller(Envelope envelope) {
  ++dir_counters(Direction::ControllerToSwitch).frames;
  const std::size_t size = envelope.wire_size();
  controller_to_proxy_.send(std::move(envelope), size);
}

EnvelopeSink Channel::switch_sender() {
  return [this](Envelope e) { send_from_switch(std::move(e)); };
}

EnvelopeSink Channel::controller_sender() {
  return [this](Envelope e) { send_from_controller(std::move(e)); };
}

void Channel::add_stage(std::unique_ptr<Stage> stage) {
  stages_.push_back(std::move(stage));
  const std::size_t index = stages_.size() - 1;
  std::array<EnvelopeSink, 2> sinks;
  for (const Direction direction :
       {Direction::SwitchToController, Direction::ControllerToSwitch}) {
    sinks[static_cast<std::size_t>(direction)] = [this, index, direction](Envelope e) {
      run_stage(index + 1, direction, std::move(e));
    };
  }
  next_sinks_.push_back(std::move(sinks));
}

void Channel::arrive_at_proxy(Direction direction, Envelope envelope) {
  DirectionCounters& counters = dir_counters(direction);
  if (config_.tls && !envelope.sealed()) envelope.seal();
  if (!envelope.sealed()) {
    // The byte pipeline decoded every readable frame here; a cached view
    // makes that a no-op, a raw-wire frame decodes exactly once.
    if (envelope.has_message()) {
      ++counters.codec_ops_saved;
    } else if (envelope.message() == nullptr && envelope.has_wire()) {
      ++counters.decode_errors;
    }
  }
  if (sim::batching_enabled() && try_run_fast(direction, envelope)) return;
  run_stage(0, direction, std::move(envelope));
}

BatchShape Channel::shape_of(Direction direction, const Envelope& envelope) {
  BatchShape shape;
  shape.direction = direction;
  shape.sealed = envelope.sealed();
  if (!shape.sealed) {
    if (const ofp::Message* message = envelope.message()) shape.type = message->type();
  }
  return shape;
}

bool Channel::try_run_fast(Direction direction, Envelope& envelope) {
  if (stages_.empty()) return false;
  const BatchShape shape = shape_of(direction, envelope);
  for (const std::unique_ptr<Stage>& stage : stages_) {
    if (!stage->plan_fast(*this, shape)) return false;
  }
  run_fast(direction, std::move(envelope));
  return true;
}

void Channel::run_fast(Direction direction, Envelope envelope) {
  for (const std::unique_ptr<Stage>& stage : stages_) {
    if (!stage->on_envelope_fast(*this, direction, envelope)) return;  // consumed
  }
  forward(direction, std::move(envelope));
}

void Channel::arrive_at_proxy_batch(Direction direction, EnvelopeBatch batch) {
  DirectionCounters& counters = dir_counters(direction);
  std::optional<BatchShape> plan_shape;
  bool plan_ok = false;
  for (sim::BatchItem<Envelope>& item : batch) {
    Envelope& envelope = item.payload;
    if (config_.tls && !envelope.sealed()) envelope.seal();
    if (!envelope.sealed()) {
      if (envelope.has_message()) {
        ++counters.codec_ops_saved;
      } else if (envelope.message() == nullptr && envelope.has_wire()) {
        ++counters.decode_errors;
      }
    }
    if (stages_.empty() || !sim::batching_enabled()) {
      run_stage(0, direction, std::move(envelope));
      continue;
    }
    const BatchShape shape = shape_of(direction, envelope);
    if (!plan_shape || !(shape == *plan_shape)) {
      plan_shape = shape;
      plan_ok = true;
      for (const std::unique_ptr<Stage>& stage : stages_) {
        if (!stage->plan_fast(*this, shape)) {
          plan_ok = false;
          break;
        }
      }
    }
    if (plan_ok) {
      run_fast(direction, std::move(envelope));
    } else {
      run_stage(0, direction, std::move(envelope));
      // Scalar stage work may change injector/monitor state; replan.
      plan_shape.reset();
    }
  }
}

void Channel::run_stage(std::size_t index, Direction direction, Envelope envelope) {
  if (index >= stages_.size()) {
    forward(direction, std::move(envelope));
    return;
  }
  Stage& stage = *stages_[index];
  const EnvelopeSink& next = next_sinks_[index][static_cast<std::size_t>(direction)];
  stage.on_envelope(*this, direction, std::move(envelope), next);
}

void Channel::forward(Direction direction, Envelope envelope) {
  ++dir_counters(direction).forwarded;
  const std::size_t size = envelope.wire_size();
  if (direction == Direction::SwitchToController) {
    proxy_to_controller_.send(std::move(envelope), size);
  } else {
    proxy_to_switch_.send(std::move(envelope), size);
  }
}

void Channel::note_suppressed(Direction direction) {
  ++dir_counters(direction).suppressed;
}

void Channel::deliver(Direction direction, Envelope envelope) {
  envelope.unseal();
  if (envelope.has_message()) {
    // The endpoint consumes the cached view instead of re-decoding.
    ++dir_counters(direction).codec_ops_saved;
  }
  EnvelopeSink& sink =
      direction == Direction::SwitchToController ? controller_sink_ : switch_sink_;
  if (sink) sink(std::move(envelope));
}

void Channel::deliver_batch(Direction direction, EnvelopeBatch batch) {
  for (sim::BatchItem<Envelope>& item : batch) {
    deliver(direction, std::move(item.payload));
  }
}

DirectionCounters Channel::totals() const {
  DirectionCounters sum;
  for (const DirectionCounters& c : counters_) sum.add(c);
  return sum;
}

void Channel::write_json(JsonWriter& w) const {
  w.begin_object();
  w.field("name", config_.name);
  w.field("tls", config_.tls);
  w.key("switch_to_controller");
  counters(Direction::SwitchToController).write_json(w);
  w.key("controller_to_switch");
  counters(Direction::ControllerToSwitch).write_json(w);
  w.key("trace");
  trace_.write_json(w);
  w.end_object();
}

std::string Channel::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

// ---------------------------------------------------------------------------
// Stock stages.
// ---------------------------------------------------------------------------

MonitorTapStage::MonitorTapStage(monitor::Monitor& monitor, ConnectionId connection,
                                 std::function<std::uint64_t()> message_id)
    : monitor_(monitor), connection_(connection), message_id_(std::move(message_id)) {}

void MonitorTapStage::on_envelope(Channel& channel, Direction direction, Envelope envelope,
                                  const EnvelopeSink& next) {
  monitor::Event event;
  event.kind = monitor::EventKind::MessageObserved;
  event.time = channel.scheduler().now();
  event.connection = connection_;
  event.direction = direction;
  event.message_id = message_id_ ? message_id_() : 0;
  if (const ofp::Message* message = envelope.message()) {
    event.message_type = message->type();
  }
  event.length = envelope.wire_size();
  monitor_.record(std::move(event));
  next(std::move(envelope));
}

bool MonitorTapStage::plan_fast(Channel& channel, const BatchShape& shape) {
  (void)channel;
  (void)shape;
  // record() stores the Event only when !counters_only; in counters-only
  // mode tally_observed() reproduces its counter effects exactly. The
  // message_id_() peek the scalar path performs is side-effect free.
  return monitor_.counters_only();
}

bool MonitorTapStage::on_envelope_fast(Channel& channel, Direction direction,
                                       Envelope& envelope) {
  (void)channel;
  const ofp::Message* message = envelope.message();
  monitor_.tally_observed(
      message != nullptr ? std::optional<ofp::MsgType>(message->type()) : std::nullopt,
      connection_, direction);
  return true;
}

void TraceStage::on_envelope(Channel& channel, Direction direction, Envelope envelope,
                             const EnvelopeSink& next) {
  TraceEntry entry;
  entry.time = channel.scheduler().now();
  entry.direction = direction;
  if (const ofp::Message* message = envelope.message()) {
    entry.type = message->type();
    entry.xid = message->xid;
  }
  entry.length = envelope.wire_size();
  channel.trace().push(entry);
  next(std::move(envelope));
}

bool TraceStage::plan_fast(Channel& channel, const BatchShape& shape) {
  (void)channel;
  (void)shape;
  return true;
}

bool TraceStage::on_envelope_fast(Channel& channel, Direction direction, Envelope& envelope) {
  TraceEntry entry;
  entry.time = channel.scheduler().now();
  entry.direction = direction;
  if (const ofp::Message* message = envelope.message()) {
    entry.type = message->type();
    entry.xid = message->xid;
  }
  entry.length = envelope.wire_size();
  channel.trace().push(entry);
  return true;
}

}  // namespace attain::chan
