#include "chan/envelope.hpp"

#include "common/log.hpp"

namespace attain::chan {

std::string to_string(Direction direction) {
  return direction == Direction::SwitchToController ? "switch->controller"
                                                    : "controller->switch";
}

void Envelope::ensure_message() const {
  if (message_.has_value() && !message_stale_) return;
  if (!wire_.has_value() || wire_stale_) return;  // empty envelope
  if (decode_attempted_) return;                  // sticky failure for this wire
  decode_attempted_ = true;
  try {
    message_ = ofp::decode(*wire_);
    message_stale_ = false;
    decode_error_.clear();
  } catch (const DecodeError& err) {
    message_.reset();
    decode_error_ = err.what();
  }
}

const ofp::Message* Envelope::message() const {
  if (sealed_) return nullptr;
  ensure_message();
  if (!message_.has_value() || message_stale_) return nullptr;
  return &*message_;
}

ofp::Message* Envelope::mutable_message() {
  if (sealed_) return nullptr;
  ensure_message();
  if (!message_.has_value() || message_stale_) return nullptr;
  wire_stale_ = true;
  return &*message_;
}

void Envelope::set_message(ofp::Message message) {
  message_ = std::move(message);
  message_stale_ = false;
  wire_stale_ = true;
  decode_attempted_ = false;
  decode_error_.clear();
}

void Envelope::ensure_wire() const {
  if (wire_.has_value() && !wire_stale_) return;
  if (message_.has_value() && !message_stale_) {
    wire_ = ofp::encode(*message_);
  } else if (!wire_.has_value()) {
    wire_ = Bytes{};
  }
  wire_stale_ = false;
}

const Bytes& Envelope::wire() const {
  ensure_wire();
  return *wire_;
}

Bytes& Envelope::mutable_wire() {
  ensure_wire();
  message_stale_ = true;
  decode_attempted_ = false;
  decode_error_.clear();
  return *wire_;
}

const ofp::Message* ingress_decode(Envelope& envelope, const std::string& who,
                                   std::uint64_t& decode_errors, const std::string& context) {
  envelope.unseal();
  const ofp::Message* message = envelope.message();
  if (message == nullptr) {
    ++decode_errors;
    ATTAIN_LOG(Debug, who) << "undecodable control frame"
                           << (context.empty() ? "" : " from " + context) << ": "
                           << envelope.decode_error();
  }
  return message;
}

}  // namespace attain::chan
