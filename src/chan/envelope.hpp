// Decode-once control-channel envelopes. An Envelope carries one OpenFlow
// frame in whichever representation it currently has — the decoded
// ofp::Message, the wire bytes, or both — and materializes the missing view
// lazily, caching the result. The byte pipeline it replaces paid a full
// encode at the switch, a decode at the injector proxy, and another decode
// at the controller for every interposed frame; an envelope built from a
// typed message pays exactly one encode (at the first pipe hop, which needs
// the wire size) and zero decodes on the happy path.
//
// Cache coherence: mutable_message() marks the wire bytes stale (they are
// re-encoded from the mutated message on the next wire() call) and
// mutable_wire() marks the decoded view stale (re-decoded on the next
// message() call) — so a modifier edit or a fuzzer bit-flip can never leak
// a mismatched view.
//
// TLS is modelled by seal(): a sealed envelope answers message() with
// nullptr (an interposer cannot parse ciphertext) while wire() — the
// ciphertext-sized frame — stays readable; the receiving endpoint unseal()s
// and recovers the cached decoded view without a codec call.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "ofp/codec.hpp"
#include "ofp/messages.hpp"

namespace attain::chan {

/// Which way a control-plane frame travels on its connection.
enum class Direction : std::uint8_t { SwitchToController, ControllerToSwitch };

std::string to_string(Direction direction);

class Envelope {
 public:
  Envelope() = default;
  /// Raw-wire ingress (e.g. from a socket or a fuzzed frame); the decoded
  /// view materializes on the first message() call.
  Envelope(Bytes wire) : wire_(std::move(wire)) {}
  /// Typed origin (an endpoint composing a message); the wire bytes
  /// materialize on the first wire() call.
  Envelope(ofp::Message message) : message_(std::move(message)) {}

  static Envelope from_wire(Bytes wire) { return Envelope(std::move(wire)); }
  static Envelope from_message(ofp::Message message) { return Envelope(std::move(message)); }
  /// Both views up front, both caches valid — the stamped-template emit
  /// path uses this to skip the first-hop encode. The caller guarantees
  /// `wire` is byte-identical to ofp::encode(message) (StampedTemplate
  /// validates this invariant at build time and under differential fuzz).
  static Envelope from_parts(ofp::Message message, Bytes wire) {
    Envelope envelope(std::move(message));
    envelope.wire_ = std::move(wire);
    return envelope;
  }

  /// The decoded view: cached after the first call. Returns nullptr while
  /// sealed, when the envelope is empty, or when the wire bytes do not
  /// parse (see decode_error()).
  const ofp::Message* message() const;
  /// Mutable decoded view for modifiers; marks the wire bytes stale so the
  /// next wire() re-encodes. Returns nullptr exactly when message() would.
  ofp::Message* mutable_message();
  /// Replaces the payload wholesale (wire re-encodes lazily).
  void set_message(ofp::Message message);

  /// The wire bytes: cached after the first call (encoded on demand from
  /// the decoded view). An empty envelope yields empty bytes.
  const Bytes& wire() const;
  /// Mutable wire bytes for fuzzing; materializes them first and marks the
  /// decoded view stale so the next message() re-decodes.
  Bytes& mutable_wire();
  std::size_t wire_size() const { return wire().size(); }

  /// TLS opacity: while sealed, message()/mutable_message() return nullptr.
  /// The cached decoded view is hidden, not destroyed — unseal() restores
  /// it without a codec call.
  void seal() { sealed_ = true; }
  void unseal() { sealed_ = false; }
  bool sealed() const { return sealed_; }

  /// True when the decoded view is cached and current (a message() call
  /// would not invoke the codec). Sealing does not clear this.
  bool has_message() const { return message_.has_value() && !message_stale_; }
  /// True when the wire bytes are cached and current.
  bool has_wire() const { return wire_.has_value() && !wire_stale_; }
  /// True when the current wire bytes were tried and failed to decode.
  /// Reset when the wire changes.
  bool decode_failed() const { return decode_attempted_ && !message_.has_value(); }
  /// The DecodeError text of the last failed decode attempt.
  const std::string& decode_error() const { return decode_error_; }

 private:
  void ensure_message() const;
  void ensure_wire() const;

  // Lazy caches: logically const, mutated on first access. Envelopes live
  // on one scheduler thread (a cell is single-threaded by construction),
  // so no synchronization is needed.
  mutable std::optional<ofp::Message> message_;
  mutable std::optional<Bytes> wire_;
  mutable bool message_stale_{false};  // wire mutated since message_ was derived
  mutable bool wire_stale_{false};     // message mutated since wire_ was derived
  mutable bool decode_attempted_{false};
  mutable std::string decode_error_;
  bool sealed_{false};
};

/// A typed destination for envelopes: endpoint delivery, channel ingress,
/// and injector side-inputs all share this shape.
using EnvelopeSink = std::function<void(Envelope)>;

/// Shared endpoint-ingress step (the switch and the controller used to
/// carry copy-pasted decode-catch-log loops): unseals the envelope and
/// returns the decoded view, or nullptr after bumping `decode_errors` and
/// logging a Debug line as "<who>". `context` annotates the log line (e.g.
/// "conn 3"). The switch's BadRequest error reply stays at its call site.
const ofp::Message* ingress_decode(Envelope& envelope, const std::string& who,
                                   std::uint64_t& decode_errors,
                                   const std::string& context = {});

}  // namespace attain::chan
