#include "ctl/factory.hpp"

#include <cctype>
#include <stdexcept>

#include "ctl/floodlight.hpp"
#include "ctl/pox.hpp"
#include "ctl/ryu.hpp"

namespace attain::ctl {

namespace {

template <typename C>
ControllerEntry entry(ControllerKind kind, const char* name) {
  ControllerEntry e;
  e.kind = kind;
  e.name = name;
  e.default_processing_delay = C::kDefaultProcessingDelay;
  e.make = [](sim::Scheduler& sched, SimTime delay) -> std::unique_ptr<Controller> {
    return std::make_unique<C>(sched, delay);
  };
  return e;
}

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

const std::vector<ControllerEntry>& controller_registry() {
  static const std::vector<ControllerEntry> registry = {
      entry<FloodlightForwarding>(ControllerKind::Floodlight, "Floodlight"),
      entry<PoxL2Learning>(ControllerKind::Pox, "POX"),
      entry<RyuSimpleSwitch>(ControllerKind::Ryu, "Ryu"),
  };
  return registry;
}

const ControllerEntry& controller_entry(ControllerKind kind) {
  for (const ControllerEntry& e : controller_registry()) {
    if (e.kind == kind) return e;
  }
  throw std::out_of_range("unregistered ControllerKind");
}

std::optional<ControllerKind> controller_kind_from_name(std::string_view name) {
  const std::string needle = lower(name);
  for (const ControllerEntry& e : controller_registry()) {
    if (lower(e.name) == needle) return e.kind;
  }
  return std::nullopt;
}

std::string to_string(ControllerKind kind) { return controller_entry(kind).name; }

std::vector<ControllerKind> all_controller_kinds() {
  std::vector<ControllerKind> kinds;
  for (const ControllerEntry& e : controller_registry()) kinds.push_back(e.kind);
  return kinds;
}

std::unique_ptr<Controller> make_controller(ControllerKind kind, sim::Scheduler& sched,
                                            SimTime processing_delay) {
  const ControllerEntry& e = controller_entry(kind);
  return e.make(sched, processing_delay >= 0 ? processing_delay : e.default_processing_delay);
}

}  // namespace attain::ctl
