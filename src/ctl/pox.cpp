#include "ctl/pox.hpp"

#include "common/log.hpp"
#include "packet/codec.hpp"

namespace attain::ctl {

void PoxL2Learning::on_packet_in(ConnHandle conn, const ofp::PacketIn& pin) {
  pkt::Packet packet;
  try {
    packet = pkt::decode(pin.data);
  } catch (const DecodeError&) {
    return;
  }
  auto& macs = tables_[conn];
  macs[packet.eth.src.to_u64()] = pin.in_port;

  auto flood = [&] {
    ofp::PacketOut out;
    out.buffer_id = pin.buffer_id;
    out.in_port = pin.in_port;
    out.actions = ofp::output_to(ofp::Port::Flood);
    if (pin.buffer_id == ofp::kNoBuffer) out.data = pin.data;
    send(conn, ofp::make_message(next_xid(), std::move(out)));
  };

  if (packet.eth.dst.is_multicast()) {
    flood();
    return;
  }
  const auto it = macs.find(packet.eth.dst.to_u64());
  if (it == macs.end()) {
    flood();
    return;
  }
  if (it->second == pin.in_port) {
    // "Same port for packet from %s -> %s: drop" — POX installs nothing
    // and releases the buffer with an action-less PACKET_OUT.
    ofp::PacketOut out;
    out.buffer_id = pin.buffer_id;
    out.in_port = pin.in_port;
    send(conn, ofp::make_message(next_xid(), std::move(out)));
    return;
  }

  // Install an exact match built from the packet and let the FLOW_MOD
  // release the buffered packet (no separate PACKET_OUT).
  ofp::FlowMod mod;
  mod.match = ofp::Match::from_packet(packet, pin.in_port);
  mod.command = ofp::FlowModCommand::Add;
  mod.idle_timeout = kIdleTimeout;
  mod.hard_timeout = kHardTimeout;
  mod.buffer_id = pin.buffer_id;
  mod.actions = ofp::output_to(it->second);
  send(conn, ofp::make_message(next_xid(), std::move(mod)));

  // When the switch could not buffer the packet, POX falls back to an
  // explicit PACKET_OUT carrying the frame.
  if (pin.buffer_id == ofp::kNoBuffer && !pin.data.empty()) {
    ofp::PacketOut out;
    out.in_port = pin.in_port;
    out.actions = ofp::output_to(it->second);
    out.data = pin.data;
    send(conn, ofp::make_message(next_xid(), std::move(out)));
  }
}

}  // namespace attain::ctl
