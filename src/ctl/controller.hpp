// Controller-side OpenFlow runtime: connection bookkeeping, handshake,
// echo handling, and a single-threaded processing queue that models the
// controller's per-message CPU cost (the dominant bottleneck for the
// Python controllers in the paper's testbed — it is what turns FLOW_MOD
// suppression into a throughput collapse rather than a mere latency bump).
//
// Concrete network applications (ctl/floodlight.hpp, ctl/pox.hpp,
// ctl/ryu.hpp) subclass Controller and implement the packet-in hook.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "chan/envelope.hpp"
#include "common/bytes.hpp"
#include "common/types.hpp"
#include "ofp/codec.hpp"
#include "ofp/messages.hpp"
#include "sim/scheduler.hpp"

namespace attain::ctl {

/// Handle for one switch connection from the controller's point of view.
using ConnHandle = std::size_t;

struct ControllerCounters {
  std::uint64_t messages_received{0};
  std::uint64_t messages_sent{0};
  std::uint64_t packet_ins{0};
  std::uint64_t flow_mods_sent{0};
  std::uint64_t packet_outs_sent{0};
  std::uint64_t decode_errors{0};
  std::uint64_t switches_connected{0};
};

class Controller {
 public:
  /// `processing_delay` is the modelled single-threaded CPU time per
  /// control message (0 = infinitely fast controller).
  Controller(sim::Scheduler& sched, std::string name, SimTime processing_delay);
  virtual ~Controller() = default;

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Registers a switch connection; `send` transmits control-channel
  /// envelopes toward the switch (through the injector proxy in an ATTAIN
  /// deployment).
  ConnHandle add_connection(chan::EnvelopeSink send);

  /// Delivers an envelope arriving from connection `conn`. The message is
  /// queued behind the controller's processing backlog.
  void on_envelope(ConnHandle conn, chan::Envelope envelope);
  /// Raw-wire convenience overload (frames one envelope).
  void on_bytes(ConnHandle conn, const Bytes& frame);

  const ControllerCounters& counters() const { return counters_; }
  const std::string& name() const { return name_; }
  std::size_t connection_count() const { return conns_.size(); }
  /// Datapath id learned during the handshake; 0 until FEATURES_REPLY.
  std::uint64_t dpid_of(ConnHandle conn) const { return conns_.at(conn).dpid; }
  bool handshake_complete(ConnHandle conn) const { return conns_.at(conn).ready; }
  /// Physical ports advertised in the FEATURES_REPLY (empty until then).
  const std::vector<ofp::PhyPort>& ports_of(ConnHandle conn) const {
    return conns_.at(conn).ports;
  }

  /// Statistics collection (the paper's monitoring workflows): sends a
  /// wildcard FLOW (or PORT) STATS_REQUEST on `conn`. The most recent
  /// reply is retained per connection for inspection.
  void poll_flow_stats(ConnHandle conn);
  void poll_port_stats(ConnHandle conn);
  const std::optional<ofp::StatsReply>& last_stats_reply(ConnHandle conn) const {
    return conns_.at(conn).last_stats;
  }
  std::uint64_t stats_replies_received() const { return stats_replies_received_; }

 protected:
  /// Application hooks.
  virtual void on_switch_ready(ConnHandle conn) { (void)conn; }
  virtual void on_packet_in(ConnHandle conn, const ofp::PacketIn& pin) = 0;
  virtual void on_flow_removed(ConnHandle conn, const ofp::FlowRemoved& removed) {
    (void)conn;
    (void)removed;
  }
  virtual void on_port_status(ConnHandle conn, const ofp::PortStatus& status) {
    (void)conn;
    (void)status;
  }
  virtual void on_error(ConnHandle conn, const ofp::Error& error) {
    (void)conn;
    (void)error;
  }
  virtual void on_stats_reply(ConnHandle conn, const ofp::StatsReply& reply) {
    (void)conn;
    (void)reply;
  }

  /// Sends a message on a connection (counted, encoded).
  void send(ConnHandle conn, const ofp::Message& msg);
  std::uint32_t next_xid() { return xid_++; }

  sim::Scheduler& sched() { return sched_; }

 private:
  struct Conn {
    chan::EnvelopeSink send;
    std::uint64_t dpid{0};
    bool ready{false};
    std::vector<ofp::PhyPort> ports;
    std::optional<ofp::StatsReply> last_stats;
  };

  void process(ConnHandle conn, chan::Envelope& envelope);
  void handle(ConnHandle conn, const ofp::Message& msg);

  sim::Scheduler& sched_;
  std::string name_;
  SimTime processing_delay_;
  SimTime busy_until_{0};
  std::vector<Conn> conns_;
  ControllerCounters counters_;
  std::uint32_t xid_{1};
  std::uint64_t stats_replies_received_{0};
};

}  // namespace attain::ctl
