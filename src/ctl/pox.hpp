// POX `forwarding.l2_learning` reproduction. The behaviour that matters to
// the paper's evaluation (and is reproduced exactly):
//   * one independent MAC table per switch connection;
//   * unknown/multicast destinations are flooded with a PACKET_OUT;
//   * known destinations install an *exact 12-tuple* match built from the
//     packet (ofp_match.from_packet), idle timeout 10 s, hard timeout 30 s;
//   * crucially, the FLOW_MOD carries the PACKET_IN's buffer_id — the
//     buffered packet is released by the flow-mod itself and no separate
//     PACKET_OUT is sent. Suppressing the FLOW_MOD therefore also destroys
//     the packet, which is why POX shows a full denial of service in
//     Fig. 11 (the asterisk rows).
#pragma once

#include <map>

#include "common/arena.hpp"
#include "ctl/controller.hpp"
#include "packet/packet.hpp"

namespace attain::ctl {

class PoxL2Learning : public Controller {
 public:
  /// POX is a single-threaded Python controller; the default processing
  /// delay reflects that (§VII experimental shape, not an absolute claim).
  static constexpr SimTime kDefaultProcessingDelay = 800;  // 0.8 ms

  PoxL2Learning(sim::Scheduler& sched, SimTime processing_delay = kDefaultProcessingDelay)
      : Controller(sched, "pox.forwarding.l2_learning", processing_delay) {}

  static constexpr std::uint16_t kIdleTimeout = 10;
  static constexpr std::uint16_t kHardTimeout = 30;

 protected:
  void on_packet_in(ConnHandle conn, const ofp::PacketIn& pin) override;

 private:
  /// MAC -> port, per connection (POX instantiates one LearningSwitch per
  /// datapath).
  mem::map<ConnHandle, mem::map<std::uint64_t, std::uint16_t>> tables_;
};

}  // namespace attain::ctl
