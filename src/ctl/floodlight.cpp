#include "ctl/floodlight.hpp"

#include <algorithm>
#include <deque>

#include "common/log.hpp"
#include "packet/codec.hpp"

namespace attain::ctl {

void FloodlightForwarding::on_switch_ready(ConnHandle conn) {
  conn_by_dpid_[dpid_of(conn)] = conn;
  send_lldp_probes(conn);
}

void FloodlightForwarding::send_lldp_probes(ConnHandle conn) {
  if (!handshake_complete(conn)) {
    // The switch reconnect machinery will call on_switch_ready again.
    return;
  }
  const std::uint64_t dpid = dpid_of(conn);
  for (const ofp::PhyPort& port : ports_of(conn)) {
    ofp::PacketOut out;
    out.buffer_id = ofp::kNoBuffer;
    out.in_port = static_cast<std::uint16_t>(ofp::Port::None);
    out.actions = ofp::output_to(port.port_no);
    out.data = pkt::encode(pkt::make_lldp(port.hw_addr, dpid, port.port_no));
    ++lldp_probes_sent_;
    send(conn, ofp::make_message(next_xid(), std::move(out)));
  }
  sched().after(kLldpInterval, [this, conn] { send_lldp_probes(conn); });
}

void FloodlightForwarding::on_packet_in(ConnHandle conn, const ofp::PacketIn& pin) {
  pkt::Packet packet;
  try {
    packet = pkt::decode(pin.data);
  } catch (const DecodeError&) {
    return;
  }
  const std::uint64_t dpid = dpid_of(conn);
  const PortRef here{dpid, pin.in_port};

  // Link discovery: an LLDP probe arriving here reveals the link
  // (origin -> here). The frame is consumed (never forwarded).
  {
    std::uint64_t origin_dpid = 0;
    std::uint16_t origin_port = 0;
    if (pkt::parse_lldp(packet, origin_dpid, origin_port)) {
      const PortRef origin{origin_dpid, origin_port};
      if (!links_.contains(origin) || links_.at(origin) != here) {
        links_[origin] = here;
        ATTAIN_LOG(Debug, name()) << "discovered link dpid" << origin_dpid << ":" << origin_port
                                  << " -> dpid" << dpid << ":" << pin.in_port;
      }
      return;
    }
  }

  // Device manager: learn attachment points at the network edge only
  // (ports with a discovered link are switch-to-switch).
  if (!is_internal_port(here)) {
    device_table_[packet.eth.src.to_u64()] = here;
  }

  auto flood_here = [&] {
    ofp::PacketOut out;
    out.buffer_id = pin.buffer_id;
    out.in_port = pin.in_port;
    out.actions = ofp::output_to(ofp::Port::Flood);
    if (pin.buffer_id == ofp::kNoBuffer) out.data = pin.data;
    send(conn, ofp::make_message(next_xid(), std::move(out)));
  };

  const auto dst_it = device_table_.find(packet.eth.dst.to_u64());
  if (packet.eth.dst.is_multicast() || dst_it == device_table_.end()) {
    flood_here();
    return;
  }

  // Route from the *source's* attachment point (the route is installed for
  // the whole stream, not just from the PACKET_IN switch, mirroring
  // Floodlight's route push) toward the destination attachment point.
  const auto src_it = device_table_.find(packet.eth.src.to_u64());
  const PortRef src_ap = src_it != device_table_.end() ? src_it->second : here;
  const std::vector<PathHop> hops = route(src_ap, dst_it->second);
  if (hops.empty()) {
    flood_here();
    return;
  }

  // The PACKET_IN may come from any switch along the route (e.g. a
  // downstream switch missing after an upstream PACKET_OUT); release the
  // packet out of *this* switch's hop.
  const auto here_hop = std::find_if(hops.begin(), hops.end(),
                                     [&](const PathHop& h) { return h.dpid == dpid; });
  if (here_hop == hops.end()) {
    flood_here();
    return;
  }

  // Push the route tail-to-head (Floodlight installs from the destination
  // switch backwards so the path is ready when the packet is released).
  for (auto hop = hops.rbegin(); hop != hops.rend(); ++hop) {
    const auto hop_conn = conn_by_dpid_.find(hop->dpid);
    if (hop_conn == conn_by_dpid_.end()) continue;
    ofp::FlowMod mod;
    mod.match = ofp::Match::from_packet(packet, hop->in_port);
    mod.command = ofp::FlowModCommand::Add;
    mod.idle_timeout = kIdleTimeout;
    mod.hard_timeout = 0;
    mod.priority = 1;  // FLOWMOD_DEFAULT_PRIORITY
    mod.buffer_id = ofp::kNoBuffer;
    mod.actions = ofp::output_to(hop->out_port);
    send(hop_conn->second, ofp::make_message(next_xid(), std::move(mod)));
  }

  // Release the triggering packet at the PACKET_IN switch.
  ofp::PacketOut out;
  out.buffer_id = pin.buffer_id;
  out.in_port = pin.in_port;
  out.actions = ofp::output_to(here_hop->out_port);
  if (pin.buffer_id == ofp::kNoBuffer) out.data = pin.data;
  send(conn, ofp::make_message(next_xid(), std::move(out)));
}

void FloodlightForwarding::on_port_status(ConnHandle conn, const ofp::PortStatus& status) {
  const bool down =
      status.reason == ofp::PortReason::Delete || (status.desc.state & 0x1) != 0;
  if (!down) return;  // a returning port is re-learned by the next probes
  const PortRef here{dpid_of(conn), status.desc.port_no};
  links_.erase(here);
  std::erase_if(links_, [&](const auto& entry) { return entry.second == here; });
  std::erase_if(device_table_, [&](const auto& entry) { return entry.second == here; });
  ATTAIN_LOG(Debug, name()) << "port down: dpid" << here.dpid << ":" << here.port
                            << "; purged topology state";
}

std::vector<FloodlightForwarding::PathHop> FloodlightForwarding::route(PortRef from,
                                                                       PortRef to) const {
  if (from.dpid == to.dpid) {
    return {PathHop{from.dpid, from.port, to.port}};
  }
  struct Visit {
    std::uint64_t prev_dpid;
    std::uint16_t prev_out_port;
    std::uint16_t in_port;
  };
  std::map<std::uint64_t, Visit> visited;
  visited[from.dpid] = Visit{from.dpid, 0, from.port};
  std::deque<std::uint64_t> frontier{from.dpid};
  while (!frontier.empty()) {
    const std::uint64_t dpid = frontier.front();
    frontier.pop_front();
    if (dpid == to.dpid) break;
    for (const auto& [a, b] : links_) {
      if (a.dpid != dpid || visited.contains(b.dpid)) continue;
      visited[b.dpid] = Visit{dpid, a.port, b.port};
      frontier.push_back(b.dpid);
    }
  }
  if (!visited.contains(to.dpid)) return {};

  std::vector<PathHop> path;
  std::uint64_t dpid = to.dpid;
  std::uint16_t out_port = to.port;
  while (true) {
    const Visit& v = visited.at(dpid);
    path.push_back(PathHop{dpid, v.in_port, out_port});
    if (dpid == from.dpid) break;
    out_port = v.prev_out_port;
    dpid = v.prev_dpid;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace attain::ctl
