// Ryu `simple_switch.py` (OpenFlow 1.0) reproduction. Decision-relevant
// behaviour copied from the original:
//   * per-datapath MAC table;
//   * flows are installed with an L2-only match — in_port + dl_dst (the IP
//     fields are wildcarded), permanent timeouts, SEND_FLOW_REM set. The
//     wildcarded nw_src/nw_dst is why rule φ2 of the connection-interruption
//     attack never fires against Ryu (Table II, "Ryu did not trigger φ2");
//   * the packet itself is always released by a separate PACKET_OUT that
//     references the switch buffer — so FLOW_MOD suppression degrades Ryu
//     (a controller round trip per packet) but does not black-hole it.
#pragma once

#include <map>

#include "common/arena.hpp"
#include "ctl/controller.hpp"
#include "packet/packet.hpp"

namespace attain::ctl {

class RyuSimpleSwitch : public Controller {
 public:
  static constexpr SimTime kDefaultProcessingDelay = 500;  // 0.5 ms

  RyuSimpleSwitch(sim::Scheduler& sched, SimTime processing_delay = kDefaultProcessingDelay)
      : Controller(sched, "ryu.simple_switch", processing_delay) {}

 protected:
  void on_packet_in(ConnHandle conn, const ofp::PacketIn& pin) override;

 private:
  mem::map<ConnHandle, mem::map<std::uint64_t, std::uint16_t>> tables_;
};

}  // namespace attain::ctl
