#include "ctl/controller.hpp"

#include "common/log.hpp"

namespace attain::ctl {

Controller::Controller(sim::Scheduler& sched, std::string name, SimTime processing_delay)
    : sched_(sched), name_(std::move(name)), processing_delay_(processing_delay) {}

ConnHandle Controller::add_connection(chan::EnvelopeSink send) {
  conns_.push_back(Conn{std::move(send), 0, false, {}, {}});
  return conns_.size() - 1;
}

void Controller::on_envelope(ConnHandle conn, chan::Envelope envelope) {
  ++counters_.messages_received;
  if (processing_delay_ == 0) {
    process(conn, envelope);
    return;
  }
  // Single-threaded processing: each message occupies the controller for
  // processing_delay_, FIFO behind the current backlog.
  const SimTime start = std::max(sched_.now(), busy_until_);
  busy_until_ = start + processing_delay_;
  sched_.at(busy_until_, [this, conn, envelope = std::move(envelope)]() mutable {
    process(conn, envelope);
  });
}

void Controller::on_bytes(ConnHandle conn, const Bytes& frame) {
  on_envelope(conn, chan::Envelope(frame));
}

void Controller::process(ConnHandle conn, chan::Envelope& envelope) {
  const ofp::Message* msg = chan::ingress_decode(envelope, name_, counters_.decode_errors,
                                                 "conn " + std::to_string(conn));
  if (msg == nullptr) return;
  handle(conn, *msg);
}

void Controller::handle(ConnHandle conn, const ofp::Message& msg) {
  using ofp::MsgType;
  switch (msg.type()) {
    case MsgType::Hello:
      // Switch (re)initiated the channel: advertise ourselves and learn the
      // datapath's features.
      conns_[conn].ready = false;
      send(conn, ofp::make_message(next_xid(), ofp::Hello{}));
      send(conn, ofp::make_message(next_xid(), ofp::FeaturesRequest{}));
      break;
    case MsgType::FeaturesReply: {
      conns_[conn].dpid = msg.as<ofp::FeaturesReply>().datapath_id;
      conns_[conn].ports = msg.as<ofp::FeaturesReply>().ports;
      conns_[conn].ready = true;
      ++counters_.switches_connected;
      ofp::SetConfig config;
      config.miss_send_len = 128;
      send(conn, ofp::make_message(next_xid(), config));
      ATTAIN_LOG(Info, name_) << "switch dpid=" << conns_[conn].dpid << " ready on conn " << conn;
      on_switch_ready(conn);
      break;
    }
    case MsgType::EchoRequest:
      send(conn, ofp::Message{msg.xid, ofp::EchoReply{msg.as<ofp::EchoRequest>().data}});
      break;
    case MsgType::EchoReply:
      break;
    case MsgType::PacketIn:
      ++counters_.packet_ins;
      on_packet_in(conn, msg.as<ofp::PacketIn>());
      break;
    case MsgType::FlowRemoved:
      on_flow_removed(conn, msg.as<ofp::FlowRemoved>());
      break;
    case MsgType::PortStatus:
      on_port_status(conn, msg.as<ofp::PortStatus>());
      break;
    case MsgType::Error:
      on_error(conn, msg.as<ofp::Error>());
      break;
    case MsgType::StatsReply:
      ++stats_replies_received_;
      conns_[conn].last_stats = msg.as<ofp::StatsReply>();
      on_stats_reply(conn, msg.as<ofp::StatsReply>());
      break;
    case MsgType::GetConfigReply:
    case MsgType::BarrierReply:
      break;
    default:
      ATTAIN_LOG(Debug, name_) << "ignoring " << to_string(msg.type()) << " on conn " << conn;
      break;
  }
}

void Controller::poll_flow_stats(ConnHandle conn) {
  ofp::StatsRequest req;
  ofp::FlowStatsRequest body;
  body.match = ofp::Match::wildcard_all();
  req.body = body;
  send(conn, ofp::make_message(next_xid(), std::move(req)));
}

void Controller::poll_port_stats(ConnHandle conn) {
  ofp::StatsRequest req;
  req.body = ofp::PortStatsRequest{static_cast<std::uint16_t>(ofp::Port::None)};
  send(conn, ofp::make_message(next_xid(), std::move(req)));
}

void Controller::send(ConnHandle conn, const ofp::Message& msg) {
  Conn& c = conns_.at(conn);
  if (!c.send) return;
  ++counters_.messages_sent;
  switch (msg.type()) {
    case ofp::MsgType::FlowMod: ++counters_.flow_mods_sent; break;
    case ofp::MsgType::PacketOut: ++counters_.packet_outs_sent; break;
    default: break;
  }
  c.send(chan::Envelope(msg));  // wire bytes materialize at the first pipe hop
}

}  // namespace attain::ctl
