// Floodlight `Forwarding` module reproduction, with its supporting
// services implemented the way the real controller implements them:
//
//   * link discovery — periodic LLDP probes PACKET_OUT'd on every switch
//     port; probes arriving back as PACKET_INs on a neighbouring switch
//     reveal a (switch, port) <-> (switch, port) link. No topology is fed
//     in from outside; the controller knows only what discovery tells it
//     (which is also what makes it vulnerable to LLDP link fabrication,
//     the §II attack reproduced in the link-fabrication tests/example);
//   * device manager — host attachment points learned from PACKET_INs
//     arriving on edge ports (ports with no discovered link);
//   * forwarding — known destinations get the whole shortest-path route
//     pushed at once: one FLOW_MOD per switch on the route, each with a
//     *full-tuple* match (in_port + L2 + L3 + L4), idle timeout 5 s, no
//     buffer reference; the triggering packet is released with a
//     PACKET_OUT at the PACKET_IN switch. Under FLOW_MOD suppression the
//     PACKET_OUT still flows, so Floodlight degrades but stays alive.
#pragma once

#include <map>

#include "common/arena.hpp"
#include "ctl/controller.hpp"
#include "packet/packet.hpp"

namespace attain::ctl {

class FloodlightForwarding : public Controller {
 public:
  static constexpr SimTime kDefaultProcessingDelay = 200;  // 0.2 ms (Java, faster than POX/Ryu)
  static constexpr std::uint16_t kIdleTimeout = 5;         // FLOWMOD_DEFAULT_IDLE_TIMEOUT
  static constexpr SimTime kLldpInterval = 2 * kSecond;    // discovery probe period

  explicit FloodlightForwarding(sim::Scheduler& sched,
                                SimTime processing_delay = kDefaultProcessingDelay)
      : Controller(sched, "floodlight.forwarding", processing_delay) {}

  /// A (datapath, port) endpoint in the discovered topology.
  struct PortRef {
    std::uint64_t dpid{0};
    std::uint16_t port{0};
    friend auto operator<=>(const PortRef&, const PortRef&) = default;
  };

  /// Discovered directed links (both directions appear once discovery has
  /// run on both endpoints). Exposed for tests and monitors.
  const mem::map<PortRef, PortRef>& links() const { return links_; }
  std::size_t device_count() const { return device_table_.size(); }
  std::uint64_t lldp_probes_sent() const { return lldp_probes_sent_; }

 protected:
  void on_switch_ready(ConnHandle conn) override;
  void on_packet_in(ConnHandle conn, const ofp::PacketIn& pin) override;
  /// Link-down PORT_STATUS purges discovered links and device attachments
  /// on that port; discovery re-learns after the port returns.
  void on_port_status(ConnHandle conn, const ofp::PortStatus& status) override;

 private:
  struct PathHop {
    std::uint64_t dpid{0};
    std::uint16_t in_port{0};
    std::uint16_t out_port{0};
  };

  void send_lldp_probes(ConnHandle conn);
  bool is_internal_port(PortRef ref) const { return links_.contains(ref); }
  /// BFS over discovered links from `from` (entering on from.port) to the
  /// switch of `to`, leaving on to.port. Empty if not connected.
  std::vector<PathHop> route(PortRef from, PortRef to) const;

  mem::map<std::uint64_t, ConnHandle> conn_by_dpid_;
  mem::map<PortRef, PortRef> links_;               // discovered topology
  mem::map<std::uint64_t, PortRef> device_table_;  // MAC -> attachment point
  std::uint64_t lldp_probes_sent_{0};
};

}  // namespace attain::ctl
