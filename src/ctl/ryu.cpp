#include "ctl/ryu.hpp"

#include "packet/codec.hpp"

namespace attain::ctl {

void RyuSimpleSwitch::on_packet_in(ConnHandle conn, const ofp::PacketIn& pin) {
  pkt::Packet packet;
  try {
    packet = pkt::decode(pin.data);
  } catch (const DecodeError&) {
    return;
  }
  auto& macs = tables_[conn];
  macs[packet.eth.src.to_u64()] = pin.in_port;

  const auto it = macs.find(packet.eth.dst.to_u64());
  const std::uint16_t out_port = (it != macs.end() && !packet.eth.dst.is_multicast())
                                     ? it->second
                                     : static_cast<std::uint16_t>(ofp::Port::Flood);
  const ofp::ActionList actions = ofp::output_to(out_port);

  if (out_port != static_cast<std::uint16_t>(ofp::Port::Flood)) {
    // add_flow(): match on in_port + dl_dst only, permanent entry,
    // SEND_FLOW_REM flag — verbatim from ryu/app/simple_switch.py.
    ofp::FlowMod mod;
    mod.match.wildcards = ofp::wc::kAll & ~(ofp::wc::kInPort | ofp::wc::kDlDst);
    mod.match.in_port = pin.in_port;
    mod.match.dl_dst = packet.eth.dst;
    mod.command = ofp::FlowModCommand::Add;
    mod.idle_timeout = 0;
    mod.hard_timeout = 0;
    mod.flags = ofp::kFlowModSendFlowRem;
    mod.actions = actions;
    send(conn, ofp::make_message(next_xid(), std::move(mod)));
  }

  // The packet is always released via PACKET_OUT (buffer reference when the
  // switch buffered it, raw data otherwise).
  ofp::PacketOut out;
  out.buffer_id = pin.buffer_id;
  out.in_port = pin.in_port;
  out.actions = actions;
  if (pin.buffer_id == ofp::kNoBuffer) out.data = pin.data;
  send(conn, ofp::make_message(next_xid(), std::move(out)));
}

}  // namespace attain::ctl
