// Controller registry: one place that knows how to name, enumerate, and
// construct the network applications the experiments run against. The
// experiment harness, sweep engine, benches, and tests all go through
// make_controller() — adding a controller means adding one registry row,
// not editing switch statements scattered across the repo.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "ctl/controller.hpp"

namespace attain::ctl {

enum class ControllerKind { Floodlight, Pox, Ryu };

/// One registry row: display name and factory for a controller kind.
struct ControllerEntry {
  ControllerKind kind{ControllerKind::Pox};
  /// Display/lookup name ("Floodlight", "POX", "Ryu"); lookup is
  /// case-insensitive.
  std::string name;
  /// The controller implementation's default per-message processing delay.
  SimTime default_processing_delay{0};
  /// Builds the controller on `sched` with the given processing delay.
  std::function<std::unique_ptr<Controller>(sim::Scheduler&, SimTime)> make;
};

/// All registered controllers, in paper order (Floodlight, POX, Ryu).
const std::vector<ControllerEntry>& controller_registry();

/// Registry row for a kind (throws std::out_of_range if unregistered).
const ControllerEntry& controller_entry(ControllerKind kind);

/// Name → kind, case-insensitive ("pox", "POX", "Pox" all resolve). Returns
/// std::nullopt for unknown names.
std::optional<ControllerKind> controller_kind_from_name(std::string_view name);

/// Display name for a kind.
std::string to_string(ControllerKind kind);

/// Every registered kind, in registry order — the canonical iteration for
/// "for each controller" grids.
std::vector<ControllerKind> all_controller_kinds();

/// Constructs a controller. `processing_delay < 0` keeps the
/// implementation's default (the TestbedOptions convention).
std::unique_ptr<Controller> make_controller(ControllerKind kind, sim::Scheduler& sched,
                                            SimTime processing_delay = -1);

}  // namespace attain::ctl
