#include "dpl/iperf.hpp"

namespace attain::dpl {

IperfServer::IperfServer(Host& host, std::uint16_t port) : host_(host), port_(port) {
  host_.register_tcp_port(port_, [this](const pkt::Packet& packet) { on_segment(packet); });
}

void IperfServer::on_segment(const pkt::Packet& packet) {
  if (!packet.tcp || !packet.ipv4) return;
  const std::uint32_t seq = packet.tcp->seq;
  const std::uint32_t len = packet.payload_size;
  if (seq == expected_) {
    expected_ += len;
    // Drain any previously buffered segments that are now contiguous.
    auto it = out_of_order_.begin();
    while (it != out_of_order_.end() && it->first <= expected_) {
      expected_ = std::max(expected_, it->second);
      it = out_of_order_.erase(it);
    }
  } else if (seq > expected_ && out_of_order_.size() < kReassemblyLimit) {
    auto& end = out_of_order_[seq];
    end = std::max(end, seq + len);
  } else if (seq < expected_) {
    ++discarded_;  // duplicate (retransmission overlap)
  } else {
    ++discarded_;  // reassembly buffer full
  }
  // Cumulative ACK (duplicate when out of order — go-back-N discards gaps).
  const pkt::Ipv4Address client_ip = packet.ipv4->src;
  const std::uint16_t client_port = packet.tcp->src_port;
  pkt::TcpHeader ack;
  ack.src_port = port_;
  ack.dst_port = client_port;
  ack.ack = expected_;
  ack.flags = pkt::kTcpAck;
  host_.send_ip(client_ip, [this, ack, client_ip](pkt::MacAddress dst_mac) {
    return pkt::make_tcp(host_.mac(), dst_mac, host_.ip(), client_ip, ack, 0, 0);
  });
}

IperfClient::IperfClient(Host& host, pkt::Ipv4Address server_ip, Config config)
    : host_(host), server_ip_(server_ip), config_(config) {
  host_.register_tcp_port(config_.client_port,
                          [this](const pkt::Packet& packet) { on_ack(packet); });
}

void IperfClient::start(SimTime duration) {
  running_ = true;
  started_at_ = host_.scheduler().now();
  deadline_ = started_at_ + duration;
  host_.scheduler().at(deadline_, [this] { finish(); });
  arm_timer();
  fill_window();
}

void IperfClient::fill_window() {
  if (!running_) return;
  while (next_ < base_ + config_.window_bytes && host_.scheduler().now() < deadline_) {
    send_segment(next_);
    next_ += config_.segment_bytes;
  }
}

void IperfClient::send_segment(std::uint32_t seq) {
  ++result_.segments_sent;
  pkt::TcpHeader tcp;
  tcp.src_port = config_.client_port;
  tcp.dst_port = config_.server_port;
  tcp.seq = seq;
  tcp.flags = pkt::kTcpPsh | pkt::kTcpAck;
  host_.send_ip(server_ip_, [this, tcp](pkt::MacAddress dst_mac) {
    return pkt::make_tcp(host_.mac(), dst_mac, host_.ip(), server_ip_, tcp, config_.segment_bytes,
                         0);
  });
}

void IperfClient::on_ack(const pkt::Packet& packet) {
  if (!running_ || !packet.tcp || (packet.tcp->flags & pkt::kTcpAck) == 0) return;
  const std::uint32_t ack = packet.tcp->ack;
  if (ack > base_) {
    base_ = ack;
    arm_timer();
    fill_window();
  }
}

void IperfClient::on_rto() {
  if (!running_) return;
  // Go-back-N: resend everything from the lowest unacked byte.
  ++result_.retransmissions;
  next_ = base_;
  arm_timer();
  fill_window();
}

void IperfClient::arm_timer() {
  rto_timer_.cancel();
  rto_timer_ = host_.scheduler().after(config_.rto, [this] { on_rto(); });
}

void IperfClient::finish() {
  running_ = false;
  done_ = true;
  rto_timer_.cancel();
  result_.bytes_acked = base_;
  result_.duration = host_.scheduler().now() - started_at_;
}

}  // namespace attain::dpl
