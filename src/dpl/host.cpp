#include "dpl/host.hpp"

#include "common/log.hpp"

namespace attain::dpl {

Host::Host(sim::Scheduler& sched, std::string name, pkt::MacAddress mac, pkt::Ipv4Address ip)
    : sched_(sched), name_(std::move(name)), mac_(mac), ip_(ip) {}

void Host::set_sender(std::function<void(pkt::Packet)> send) { send_ = std::move(send); }

void Host::set_icmp_echo_handler(std::function<void(const pkt::Packet&)> handler) {
  icmp_echo_handler_ = std::move(handler);
}

void Host::register_tcp_port(std::uint16_t port, std::function<void(const pkt::Packet&)> handler) {
  tcp_ports_[port] = std::move(handler);
}

void Host::transmit(pkt::Packet packet) {
  ++counters_.packets_sent;
  if (send_) send_(std::move(packet));
}

void Host::on_packet(const pkt::Packet& packet) {
  if (packet.eth.dst != mac_ && !packet.eth.dst.is_broadcast() && !packet.eth.dst.is_multicast()) {
    return;  // not for us (flooded unicast to another host)
  }
  ++counters_.packets_received;

  if (packet.arp) {
    on_arp(*packet.arp);
    return;
  }
  if (!packet.ipv4 || packet.ipv4->dst != ip_) return;

  if (packet.icmp) {
    if (packet.icmp->type == pkt::IcmpType::EchoRequest) {
      ++counters_.echo_replies_sent;
      pkt::Packet reply = pkt::make_icmp_echo(mac_, packet.eth.src, ip_, packet.ipv4->src,
                                              pkt::IcmpType::EchoReply, packet.icmp->id,
                                              packet.icmp->seq, packet.payload_tag);
      transmit(std::move(reply));
    } else if (icmp_echo_handler_) {
      icmp_echo_handler_(packet);
    }
    return;
  }
  if (packet.tcp) {
    const auto it = tcp_ports_.find(packet.tcp->dst_port);
    if (it != tcp_ports_.end()) it->second(packet);
    return;
  }
}

void Host::send_ip(pkt::Ipv4Address dst_ip, std::function<pkt::Packet(pkt::MacAddress)> build) {
  const auto cached = arp_cache_.find(dst_ip.value);
  if (cached != arp_cache_.end()) {
    transmit(build(cached->second));
    return;
  }
  arp_pending_[dst_ip.value].push_back(PendingSend{dst_ip, std::move(build)});
  if (!arp_timers_.contains(dst_ip.value)) start_arp(dst_ip);
}

void Host::start_arp(pkt::Ipv4Address dst_ip) {
  ++counters_.arp_requests_sent;
  transmit(pkt::make_arp_request(mac_, ip_, dst_ip));
  arp_timers_[dst_ip.value] =
      sched_.after(kArpTimeout, [this, dst_ip] { arp_timer(dst_ip, 1); });
}

void Host::arp_timer(pkt::Ipv4Address dst_ip, unsigned attempt) {
  if (arp_cache_.contains(dst_ip.value)) return;  // resolved meanwhile
  if (attempt >= kArpRetries) {
    ATTAIN_LOG(Debug, name_) << "ARP resolution failed for " << dst_ip.to_string();
    auto& queue = arp_pending_[dst_ip.value];
    counters_.arp_failures += queue.size();
    queue.clear();
    arp_timers_.erase(dst_ip.value);
    return;
  }
  ++counters_.arp_requests_sent;
  transmit(pkt::make_arp_request(mac_, ip_, dst_ip));
  arp_timers_[dst_ip.value] =
      sched_.after(kArpTimeout, [this, dst_ip, attempt] { arp_timer(dst_ip, attempt + 1); });
}

void Host::on_arp(const pkt::ArpHeader& arp) {
  // Opportunistic learning from any ARP we see addressed to us.
  if (arp.op == pkt::ArpOp::Request) {
    if (arp.target_ip == ip_) {
      arp_cache_[arp.sender_ip.value] = arp.sender_mac;
      ++counters_.arp_replies_sent;
      transmit(pkt::make_arp_reply(mac_, ip_, arp.sender_mac, arp.sender_ip));
    }
    return;
  }
  // ARP reply: cache and flush pending sends.
  arp_cache_[arp.sender_ip.value] = arp.sender_mac;
  const auto timer = arp_timers_.find(arp.sender_ip.value);
  if (timer != arp_timers_.end()) {
    timer->second.cancel();
    arp_timers_.erase(timer);
  }
  auto pending = arp_pending_.find(arp.sender_ip.value);
  if (pending != arp_pending_.end()) {
    for (PendingSend& send : pending->second) {
      transmit(send.build(arp.sender_mac));
    }
    arp_pending_.erase(pending);
  }
}

}  // namespace attain::dpl
