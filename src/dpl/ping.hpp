// The `ping` workload of the paper's experiments: periodic ICMP echo
// trials with per-trial RTT measurement (§VII-B timing scripts).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/arena.hpp"
#include "dpl/host.hpp"

namespace attain::dpl {

struct PingTrial {
  std::uint16_t seq{0};
  SimTime sent_at{0};
  /// Round-trip time; std::nullopt when the reply never arrived within the
  /// trial timeout (the paper's "latency is infinite" case).
  std::optional<SimTime> rtt;
};

struct PingReport {
  /// Slab-backed: one push per trial during the simulate loop.
  mem::vector<PingTrial> trials;

  std::size_t sent() const { return trials.size(); }
  std::size_t received() const;
  double loss_fraction() const;
  /// Mean RTT over answered trials, in seconds; std::nullopt if none.
  std::optional<double> mean_rtt_seconds() const;
  std::optional<double> min_rtt_seconds() const;
  std::optional<double> max_rtt_seconds() const;
};

/// Runs `ping -c trials` from `src` toward `dst_ip`. Results accumulate in
/// report(); done() flips after the last trial's timeout.
class PingApp {
 public:
  PingApp(Host& src, pkt::Ipv4Address dst_ip, std::uint16_t icmp_id = 1);

  /// Starts `trials` echo requests, `interval` apart, each with `timeout`
  /// to answer.
  void start(unsigned trials, SimTime interval = 1 * kSecond, SimTime timeout = 1 * kSecond);

  const PingReport& report() const { return report_; }
  bool done() const { return done_; }

 private:
  void send_trial(unsigned index, unsigned total, SimTime interval, SimTime timeout);
  void on_echo_reply(const pkt::Packet& packet);

  Host& src_;
  pkt::Ipv4Address dst_ip_;
  std::uint16_t icmp_id_;
  std::uint16_t next_seq_{1};
  PingReport report_;
  bool done_{false};
};

}  // namespace attain::dpl
