#include "dpl/ping.hpp"

#include <algorithm>

namespace attain::dpl {

std::size_t PingReport::received() const {
  return static_cast<std::size_t>(
      std::count_if(trials.begin(), trials.end(), [](const PingTrial& t) { return t.rtt.has_value(); }));
}

double PingReport::loss_fraction() const {
  if (trials.empty()) return 0.0;
  return 1.0 - static_cast<double>(received()) / static_cast<double>(trials.size());
}

std::optional<double> PingReport::mean_rtt_seconds() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const PingTrial& t : trials) {
    if (t.rtt) {
      sum += to_seconds(*t.rtt);
      ++n;
    }
  }
  if (n == 0) return std::nullopt;
  return sum / static_cast<double>(n);
}

std::optional<double> PingReport::min_rtt_seconds() const {
  std::optional<double> best;
  for (const PingTrial& t : trials) {
    if (t.rtt && (!best || to_seconds(*t.rtt) < *best)) best = to_seconds(*t.rtt);
  }
  return best;
}

std::optional<double> PingReport::max_rtt_seconds() const {
  std::optional<double> best;
  for (const PingTrial& t : trials) {
    if (t.rtt && (!best || to_seconds(*t.rtt) > *best)) best = to_seconds(*t.rtt);
  }
  return best;
}

PingApp::PingApp(Host& src, pkt::Ipv4Address dst_ip, std::uint16_t icmp_id)
    : src_(src), dst_ip_(dst_ip), icmp_id_(icmp_id) {
  src_.set_icmp_echo_handler([this](const pkt::Packet& packet) { on_echo_reply(packet); });
}

void PingApp::start(unsigned trials, SimTime interval, SimTime timeout) {
  if (trials == 0) {
    done_ = true;
    return;
  }
  report_.trials.reserve(trials);
  send_trial(0, trials, interval, timeout);
}

void PingApp::send_trial(unsigned index, unsigned total, SimTime interval, SimTime timeout) {
  const std::uint16_t seq = next_seq_++;
  PingTrial trial;
  trial.seq = seq;
  trial.sent_at = src_.scheduler().now();
  report_.trials.push_back(trial);

  src_.send_ip(dst_ip_, [this, seq](pkt::MacAddress dst_mac) {
    return pkt::make_icmp_echo(src_.mac(), dst_mac, src_.ip(), dst_ip_,
                               pkt::IcmpType::EchoRequest, icmp_id_, seq,
                               static_cast<std::uint64_t>(src_.scheduler().now()));
  });

  if (index + 1 < total) {
    src_.scheduler().after(interval,
                           [this, index, total, interval, timeout] {
                             send_trial(index + 1, total, interval, timeout);
                           });
  } else {
    src_.scheduler().after(timeout, [this] { done_ = true; });
  }
}

void PingApp::on_echo_reply(const pkt::Packet& packet) {
  if (!packet.icmp || packet.icmp->id != icmp_id_) return;
  const std::uint16_t seq = packet.icmp->seq;
  for (PingTrial& trial : report_.trials) {
    if (trial.seq == seq && !trial.rtt) {
      trial.rtt = src_.scheduler().now() - static_cast<SimTime>(packet.payload_tag);
      return;
    }
  }
}

}  // namespace attain::dpl
