// Simulated end host: an Ethernet/IP stack with ARP resolution, ICMP echo
// responding, and a registry of TCP port handlers used by the iperf-like
// application. Hosts are the traffic sources/sinks of the paper's
// evaluation workloads.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "common/arena.hpp"
#include "common/types.hpp"
#include "packet/packet.hpp"
#include "sim/scheduler.hpp"

namespace attain::dpl {

struct HostStackCounters {
  std::uint64_t packets_sent{0};
  std::uint64_t packets_received{0};
  std::uint64_t arp_requests_sent{0};
  std::uint64_t arp_replies_sent{0};
  std::uint64_t arp_failures{0};
  std::uint64_t echo_replies_sent{0};
};

class Host {
 public:
  Host(sim::Scheduler& sched, std::string name, pkt::MacAddress mac, pkt::Ipv4Address ip);

  /// Wires the uplink toward the attached switch.
  void set_sender(std::function<void(pkt::Packet)> send);

  /// Delivers a frame from the attached switch. Frames not addressed to
  /// this host (unicast to another MAC) are dropped, mirroring a NIC
  /// without promiscuous mode.
  void on_packet(const pkt::Packet& packet);

  /// Sends an IP packet to `dst_ip`, resolving the destination MAC first
  /// (ARP with retry). `build` receives the resolved MAC and must return
  /// the complete packet. On resolution failure the send is dropped and
  /// counted in arp_failures.
  void send_ip(pkt::Ipv4Address dst_ip, std::function<pkt::Packet(pkt::MacAddress)> build);

  /// Handlers for inbound traffic. ICMP echo *replies* land on the echo
  /// handler (requests are answered by the stack itself); TCP segments
  /// land on the handler registered for their destination port.
  void set_icmp_echo_handler(std::function<void(const pkt::Packet&)> handler);
  void register_tcp_port(std::uint16_t port, std::function<void(const pkt::Packet&)> handler);

  const std::string& name() const { return name_; }
  pkt::MacAddress mac() const { return mac_; }
  pkt::Ipv4Address ip() const { return ip_; }
  const HostStackCounters& counters() const { return counters_; }
  sim::Scheduler& scheduler() { return sched_; }

  /// Injects a static ARP entry (used by tests).
  void add_arp_entry(pkt::Ipv4Address ip, pkt::MacAddress mac) { arp_cache_[ip.value] = mac; }

 private:
  struct PendingSend {
    pkt::Ipv4Address dst_ip;
    std::function<pkt::Packet(pkt::MacAddress)> build;
  };

  void transmit(pkt::Packet packet);
  void start_arp(pkt::Ipv4Address dst_ip);
  void on_arp(const pkt::ArpHeader& arp);
  void arp_timer(pkt::Ipv4Address dst_ip, unsigned attempt);

  sim::Scheduler& sched_;
  std::string name_;
  pkt::MacAddress mac_;
  pkt::Ipv4Address ip_;
  std::function<void(pkt::Packet)> send_;
  std::function<void(const pkt::Packet&)> icmp_echo_handler_;
  mem::map<std::uint16_t, std::function<void(const pkt::Packet&)>> tcp_ports_;

  mem::map<std::uint32_t, pkt::MacAddress> arp_cache_;
  mem::map<std::uint32_t, mem::deque<PendingSend>> arp_pending_;
  mem::map<std::uint32_t, sim::EventHandle> arp_timers_;
  HostStackCounters counters_;

  static constexpr SimTime kArpTimeout = 1 * kSecond;
  static constexpr unsigned kArpRetries = 3;
};

}  // namespace attain::dpl
