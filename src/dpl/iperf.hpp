// The `iperf` workload of the paper's experiments: a windowed reliable
// byte stream (go-back-N over the simulated data plane) whose acknowledged
// goodput over a fixed duration is the throughput metric of Fig. 11(a).
//
// The transport is intentionally TCP-lite: fixed window, per-segment
// cumulative ACKs, timer-driven go-back-N retransmission. This captures
// what the experiment measures — how many application bytes survive the
// forwarding path per unit time — without modelling congestion control,
// which the 100 Mbps single-bottleneck topology never exercises.
#pragma once

#include <cstdint>
#include <map>

#include "common/arena.hpp"
#include "dpl/host.hpp"

namespace attain::dpl {

struct IperfResult {
  std::uint64_t bytes_acked{0};
  std::uint64_t segments_sent{0};
  std::uint64_t retransmissions{0};
  SimTime duration{0};

  double throughput_bps() const {
    if (duration <= 0) return 0.0;
    return static_cast<double>(bytes_acked) * 8.0 / to_seconds(duration);
  }
  double throughput_mbps() const { return throughput_bps() / 1e6; }
};

/// Server side: acknowledges data on a TCP port with cumulative ACKs.
/// Out-of-order segments are held in a bounded reassembly buffer (like a
/// real TCP receive window) — necessary because controller-released
/// (buffered) packets legitimately interleave with fast-path packets
/// during flow setup.
class IperfServer {
 public:
  IperfServer(Host& host, std::uint16_t port = 5001);

  std::uint64_t bytes_received() const { return expected_; }
  std::uint64_t segments_discarded() const { return discarded_; }

 private:
  void on_segment(const pkt::Packet& packet);

  Host& host_;
  std::uint16_t port_;
  std::uint32_t expected_{0};  // next expected byte (cumulative)
  /// seq -> end-of-segment for segments received ahead of `expected_`.
  mem::map<std::uint32_t, std::uint32_t> out_of_order_;
  std::uint64_t discarded_{0};

  static constexpr std::size_t kReassemblyLimit = 4096;
};

struct IperfClientConfig {
  std::uint16_t server_port{5001};
  std::uint16_t client_port{50000};
  std::uint32_t window_bytes{64 * 1024};
  std::uint32_t segment_bytes{1460};
  SimTime rto{500 * kMillisecond};
};

/// Client side: pushes a windowed stream for `duration`, measuring acked
/// goodput.
class IperfClient {
 public:
  using Config = IperfClientConfig;

  IperfClient(Host& host, pkt::Ipv4Address server_ip, Config config = {});

  /// Starts the transfer; it self-terminates after `duration`.
  void start(SimTime duration);

  bool done() const { return done_; }
  const IperfResult& result() const { return result_; }

 private:
  void fill_window();
  void send_segment(std::uint32_t seq);
  void on_ack(const pkt::Packet& packet);
  void on_rto();
  void arm_timer();
  void finish();

  Host& host_;
  pkt::Ipv4Address server_ip_;
  Config config_;

  std::uint32_t base_{0};  // lowest unacked byte
  std::uint32_t next_{0};  // next byte to send
  SimTime started_at_{0};
  SimTime deadline_{0};
  sim::EventHandle rto_timer_;
  bool running_{false};
  bool done_{false};
  IperfResult result_;
};

}  // namespace attain::dpl
