// Deterministic discrete-event scheduler. All network elements (links,
// switches, controllers, hosts, the injector) schedule callbacks on a single
// Scheduler instance; virtual time advances only through run()/run_until().
//
// Events live in a slab-recycled pool: the priority queue holds plain
// 24-byte records and cancellation uses (slot, generation) tags, so
// scheduling an event performs no allocation at all in steady state. The
// callback is a sim::Task whose inline buffer is sized for the fattest
// hot-path lambda (a pipe delivery carrying a chan::Envelope); oversized
// callables recycle through the thread's slab pool, and the pool/queue
// vectors themselves are slab-backed, so once the pool reaches its
// high-water mark the event loop never touches the general heap.
#pragma once

#include <cstdint>
#include <queue>

#include "common/arena.hpp"
#include "common/types.hpp"
#include "sim/task.hpp"

namespace attain::sim {

class Scheduler;

/// Handle for a scheduled event; lets the owner cancel it. Copyable; all
/// copies refer to the same pending event. A handle is a (slot, generation)
/// tag into the scheduler's event pool and must not outlive the Scheduler
/// that issued it.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not yet fired. Safe to call repeatedly or
  /// on a default-constructed handle.
  void cancel();

  bool pending() const;

 private:
  friend class Scheduler;
  EventHandle(Scheduler* sched, std::uint32_t slot, std::uint32_t gen)
      : sched_(sched), slot_(slot), gen_(gen) {}

  Scheduler* sched_{nullptr};
  std::uint32_t slot_{0};
  std::uint32_t gen_{0};
};

/// Min-heap event loop keyed by (time, sequence). Ties break in insertion
/// order, which makes runs bit-for-bit reproducible.
class Scheduler {
 public:
  Scheduler();
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `when`. A `when` in the
  /// past is clamped to now(): stale timers fire immediately instead of
  /// running time backwards (or blowing up mid-simulation).
  EventHandle at(SimTime when, Task fn);

  /// Schedules `fn` to run `delay` microseconds from now.
  EventHandle after(SimTime delay, Task fn);

  /// Runs events until the queue drains.
  void run();

  /// Runs events with time <= `deadline`, then sets now() to `deadline`
  /// (even if the queue drained earlier).
  void run_until(SimTime deadline);

  /// Number of events executed since construction.
  std::uint64_t events_executed() const { return executed_; }

  /// Monotone count of at()/after() calls issued so far. The pipe batcher
  /// compares snapshots of this counter to prove that no event was scheduled
  /// anywhere in the process between two sends — the order-isomorphism guard
  /// that makes coalescing same-instant deliveries safe.
  std::uint64_t issue_seq() const { return seq_; }

  /// Credits `n` extra logical events against events_executed(). A batch
  /// event that delivers k coalesced payloads reports k-1 extras so the
  /// executed count matches the scalar schedule exactly.
  void count_extra_events(std::uint64_t n) { executed_ += n; }

  std::size_t pending_events() const { return queue_.size(); }

 private:
  friend class EventHandle;

  /// Pooled event state; the heap refers to it by slot index + generation.
  struct Slot {
    Task fn;
    std::uint32_t gen{0};
    bool cancelled{false};
    bool pending{false};
  };
  /// What the priority queue actually orders: plain values, no ownership.
  struct QueuedEvent {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const QueuedEvent& a, const QueuedEvent& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  std::uint32_t acquire_slot(Task fn);
  /// Recycles a slot: bumps the generation (invalidating handles) and
  /// returns the std::function state to the pool for reuse.
  void release_slot(std::uint32_t slot);
  void dispatch(const QueuedEvent& ev);

  SimTime now_{0};
  std::uint64_t seq_{0};
  std::uint64_t executed_{0};
  std::priority_queue<QueuedEvent, mem::vector<QueuedEvent>, Later> queue_;
  mem::vector<Slot> pool_;
  mem::vector<std::uint32_t> free_slots_;
};

}  // namespace attain::sim
