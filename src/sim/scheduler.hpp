// Deterministic discrete-event scheduler. All network elements (links,
// switches, controllers, hosts, the injector) schedule callbacks on a single
// Scheduler instance; virtual time advances only through run()/run_until().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace attain::sim {

/// Handle for a scheduled event; lets the owner cancel it. Copyable; all
/// copies refer to the same pending event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not yet fired. Safe to call repeatedly or
  /// on a default-constructed handle.
  void cancel();

  bool pending() const;

 private:
  friend class Scheduler;
  explicit EventHandle(std::shared_ptr<bool> cancelled) : cancelled_(std::move(cancelled)) {}

  std::shared_ptr<bool> cancelled_;
};

/// Min-heap event loop keyed by (time, sequence). Ties break in insertion
/// order, which makes runs bit-for-bit reproducible.
class Scheduler {
 public:
  Scheduler();
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `when` (>= now).
  EventHandle at(SimTime when, std::function<void()> fn);

  /// Schedules `fn` to run `delay` microseconds from now.
  EventHandle after(SimTime delay, std::function<void()> fn);

  /// Runs events until the queue drains.
  void run();

  /// Runs events with time <= `deadline`, then sets now() to `deadline`
  /// (even if the queue drained earlier).
  void run_until(SimTime deadline);

  /// Number of events executed since construction.
  std::uint64_t events_executed() const { return executed_; }

  std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  void dispatch(Event& ev);

  SimTime now_{0};
  std::uint64_t seq_{0};
  std::uint64_t executed_{0};
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace attain::sim
