// Point-to-point link and channel models.
//
// Pipe<T> is a unidirectional FIFO transmission pipe with finite bandwidth,
// propagation delay, and a bounded drop-tail queue. The data plane sends
// packet::Packet through pairs of pipes; the control plane sends framed
// OpenFlow byte vectors (with effectively infinite bandwidth but nonzero
// latency, modelling a healthy management network as in the paper's GENI
// deployment, where the control network was a separate switch).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "common/types.hpp"
#include "sim/scheduler.hpp"

namespace attain::sim {

/// Counters describing a pipe's lifetime behaviour; used by monitors and
/// the benchmark harness.
struct PipeStats {
  std::uint64_t enqueued{0};
  std::uint64_t delivered{0};
  std::uint64_t dropped_overflow{0};
  std::uint64_t bytes_delivered{0};
};

/// Configuration for a Pipe. bandwidth_bps == 0 means "infinite" (no
/// serialization delay); queue_limit == 0 means unbounded.
struct PipeConfig {
  std::uint64_t bandwidth_bps{100'000'000};  // paper: 100 Mbps links
  SimTime propagation_delay{500 * kMicrosecond};
  std::size_t queue_limit{256};
};

/// Unidirectional transmission pipe. The receiver is a callback taking the
/// payload by value; payload sizes are supplied by the caller so the pipe
/// stays agnostic of the payload type.
template <typename T>
class Pipe {
 public:
  using Receiver = std::function<void(T)>;

  Pipe(Scheduler& sched, PipeConfig config) : sched_(&sched), config_(config) {}

  void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

  const PipeStats& stats() const { return stats_; }
  const PipeConfig& config() const { return config_; }

  /// True while the pipe forwards traffic. A severed pipe silently drops
  /// everything — used to model physical link failure / hard connection
  /// interruption.
  bool up() const { return up_; }
  void set_up(bool up) { up_ = up; }

  /// Submits a payload of `size_bytes` for transmission. Serialization
  /// occupies the pipe for size*8/bandwidth; payloads queue FIFO behind the
  /// current transmission and overflow is dropped at the tail.
  void send(T payload, std::size_t size_bytes) {
    if (!up_) return;
    if (config_.queue_limit != 0 && in_flight_ >= config_.queue_limit) {
      ++stats_.dropped_overflow;
      return;
    }
    ++stats_.enqueued;
    ++in_flight_;
    const SimTime serialize =
        config_.bandwidth_bps == 0
            ? 0
            : static_cast<SimTime>(static_cast<__int128>(size_bytes) * 8 * kSecond /
                                   config_.bandwidth_bps);
    const SimTime start = std::max(sched_->now(), busy_until_);
    busy_until_ = start + serialize;
    const SimTime deliver_at = busy_until_ + config_.propagation_delay;
    sched_->at(deliver_at, [this, payload = std::move(payload), size_bytes]() mutable {
      --in_flight_;
      if (!up_) return;
      ++stats_.delivered;
      stats_.bytes_delivered += size_bytes;
      if (receiver_) receiver_(std::move(payload));
    });
  }

 private:
  Scheduler* sched_;
  PipeConfig config_;
  Receiver receiver_;
  PipeStats stats_;
  SimTime busy_until_{0};
  std::size_t in_flight_{0};
  bool up_{true};
};

/// A bidirectional link: two independent pipes sharing a configuration.
template <typename T>
class Duplex {
 public:
  Duplex(Scheduler& sched, PipeConfig config) : a_to_b_(sched, config), b_to_a_(sched, config) {}

  Pipe<T>& a_to_b() { return a_to_b_; }
  Pipe<T>& b_to_a() { return b_to_a_; }

  void set_up(bool up) {
    a_to_b_.set_up(up);
    b_to_a_.set_up(up);
  }

 private:
  Pipe<T> a_to_b_;
  Pipe<T> b_to_a_;
};

/// Returns the one-way latency a payload of `size_bytes` experiences on an
/// idle pipe with `config` — used by tests and the analytical models in
/// EXPERIMENTS.md.
SimTime idle_pipe_latency(const PipeConfig& config, std::size_t size_bytes);

}  // namespace attain::sim
