// Point-to-point link and channel models.
//
// Pipe<T> is a unidirectional FIFO transmission pipe with finite bandwidth,
// propagation delay, and a bounded drop-tail queue. The data plane sends
// packet::Packet through pairs of pipes; the control plane sends framed
// OpenFlow byte vectors (with effectively infinite bandwidth but nonzero
// latency, modelling a healthy management network as in the paper's GENI
// deployment, where the control network was a separate switch).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "common/arena.hpp"
#include "common/types.hpp"
#include "sim/batching.hpp"
#include "sim/scheduler.hpp"

namespace attain::sim {

/// One coalesced payload inside a PayloadBatch.
template <typename T>
struct BatchItem {
  T payload;
  std::size_t size_bytes{0};
};

/// A burst of payloads that share one delivery instant on one pipe. The
/// batch fires as a single scheduler event but counts as one logical event
/// per item (Scheduler::count_extra_events), so events_executed() and every
/// delivery side effect stay byte-identical to the scalar schedule.
template <typename T>
using PayloadBatch = mem::vector<BatchItem<T>>;

/// Counters describing a pipe's lifetime behaviour; used by monitors and
/// the benchmark harness.
struct PipeStats {
  std::uint64_t enqueued{0};
  std::uint64_t delivered{0};
  std::uint64_t dropped_overflow{0};
  std::uint64_t bytes_delivered{0};
};

/// Configuration for a Pipe. bandwidth_bps == 0 means "infinite" (no
/// serialization delay); queue_limit == 0 means unbounded.
struct PipeConfig {
  std::uint64_t bandwidth_bps{100'000'000};  // paper: 100 Mbps links
  SimTime propagation_delay{500 * kMicrosecond};
  std::size_t queue_limit{256};
};

/// Unidirectional transmission pipe. The receiver is a callback taking the
/// payload by value; payload sizes are supplied by the caller so the pipe
/// stays agnostic of the payload type.
template <typename T>
class Pipe {
 public:
  using Receiver = std::function<void(T)>;
  using BatchReceiver = std::function<void(PayloadBatch<T>)>;

  Pipe(Scheduler& sched, PipeConfig config) : sched_(&sched), config_(config) {}

  void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

  /// Opts this pipe into delivery coalescing: consecutive sends that share a
  /// delivery instant — with no event scheduled anywhere in between (see
  /// Scheduler::issue_seq) — are handed to `receiver` as one batch instead
  /// of one event each. Delivery order, per-payload stats, and
  /// events_executed() accounting are preserved exactly; when
  /// sim::batching_enabled() is off the pipe runs the scalar path even with
  /// a batch receiver installed.
  void set_batch_receiver(BatchReceiver receiver) { batch_receiver_ = std::move(receiver); }

  const PipeStats& stats() const { return stats_; }
  const PipeConfig& config() const { return config_; }

  /// True while the pipe forwards traffic. A severed pipe silently drops
  /// everything — used to model physical link failure / hard connection
  /// interruption.
  bool up() const { return up_; }
  void set_up(bool up) { up_ = up; }

  /// Submits a payload of `size_bytes` for transmission. Serialization
  /// occupies the pipe for size*8/bandwidth; payloads queue FIFO behind the
  /// current transmission and overflow is dropped at the tail.
  void send(T payload, std::size_t size_bytes) {
    if (!up_) return;
    if (config_.queue_limit != 0 && in_flight_ >= config_.queue_limit) {
      ++stats_.dropped_overflow;
      return;
    }
    ++stats_.enqueued;
    ++in_flight_;
    const SimTime serialize =
        config_.bandwidth_bps == 0
            ? 0
            : static_cast<SimTime>(static_cast<__int128>(size_bytes) * 8 * kSecond /
                                   config_.bandwidth_bps);
    const SimTime start = std::max(sched_->now(), busy_until_);
    busy_until_ = start + serialize;
    const SimTime deliver_at = busy_until_ + config_.propagation_delay;
    if (batch_receiver_ && batching_enabled()) {
      if (open_batch_ != kNoBatch && open_deliver_at_ == deliver_at &&
          sched_->issue_seq() == open_seq_) {
        // Nothing was scheduled since the last append, so no event can be
        // ordered between this payload and the batch ahead of it: coalesce.
        batch_pool_[open_batch_].push_back(BatchItem<T>{std::move(payload), size_bytes});
        return;
      }
      const std::uint32_t slot = acquire_batch();
      batch_pool_[slot].push_back(BatchItem<T>{std::move(payload), size_bytes});
      open_batch_ = slot;
      open_deliver_at_ = deliver_at;
      sched_->at(deliver_at, [this, slot] { fire_batch(slot); });
      open_seq_ = sched_->issue_seq();  // snapshot AFTER our own at()
      return;
    }
    sched_->at(deliver_at, [this, payload = std::move(payload), size_bytes]() mutable {
      --in_flight_;
      if (!up_) return;
      ++stats_.delivered;
      stats_.bytes_delivered += size_bytes;
      if (receiver_) receiver_(std::move(payload));
    });
  }

 private:
  static constexpr std::uint32_t kNoBatch = 0xffffffffu;

  std::uint32_t acquire_batch() {
    if (!free_batches_.empty()) {
      const std::uint32_t slot = free_batches_.back();
      free_batches_.pop_back();
      return slot;
    }
    const std::uint32_t slot = static_cast<std::uint32_t>(batch_pool_.size());
    batch_pool_.emplace_back();
    return slot;
  }

  void fire_batch(std::uint32_t slot) {
    if (open_batch_ == slot) open_batch_ = kNoBatch;
    PayloadBatch<T> items = std::move(batch_pool_[slot]);
    batch_pool_[slot].clear();
    free_batches_.push_back(slot);
    if (items.size() > 1) sched_->count_extra_events(items.size() - 1);
    in_flight_ -= items.size();
    // up_ cannot differ across the batch: any set_up happens inside another
    // event, and the coalescing guard proved no event sits between these
    // deliveries in the scalar schedule.
    if (!up_) return;
    stats_.delivered += items.size();
    for (const BatchItem<T>& item : items) stats_.bytes_delivered += item.size_bytes;
    batch_receiver_(std::move(items));
  }

  Scheduler* sched_;
  PipeConfig config_;
  Receiver receiver_;
  BatchReceiver batch_receiver_;
  PipeStats stats_;
  SimTime busy_until_{0};
  std::size_t in_flight_{0};
  bool up_{true};
  mem::vector<PayloadBatch<T>> batch_pool_;
  mem::vector<std::uint32_t> free_batches_;
  std::uint32_t open_batch_{kNoBatch};
  SimTime open_deliver_at_{0};
  std::uint64_t open_seq_{0};
};

/// A bidirectional link: two independent pipes sharing a configuration.
template <typename T>
class Duplex {
 public:
  Duplex(Scheduler& sched, PipeConfig config) : a_to_b_(sched, config), b_to_a_(sched, config) {}

  Pipe<T>& a_to_b() { return a_to_b_; }
  Pipe<T>& b_to_a() { return b_to_a_; }

  void set_up(bool up) {
    a_to_b_.set_up(up);
    b_to_a_.set_up(up);
  }

 private:
  Pipe<T> a_to_b_;
  Pipe<T> b_to_a_;
};

/// Returns the one-way latency a payload of `size_bytes` experiences on an
/// idle pipe with `config` — used by tests and the analytical models in
/// EXPERIMENTS.md.
SimTime idle_pipe_latency(const PipeConfig& config, std::size_t size_bytes);

}  // namespace attain::sim
