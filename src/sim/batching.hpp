// Process-global switch for the batched fast path (pipe payload
// coalescing, channel stage fast hooks, switch packet batches, stamped
// encode). Default on; tests and bench_batch_pipeline flip it off to run
// the scalar reference pipeline and check byte-identity / measure speedup.
//
// The flag is read on hot paths but only written at run boundaries (never
// mid-simulation), so a relaxed atomic is sufficient for the multi-threaded
// sweep drivers.
#pragma once

namespace attain::sim {

bool batching_enabled();
void set_batching_enabled(bool enabled);

/// RAII guard for tests: flips the flag and restores the previous value.
class BatchingOverride {
 public:
  explicit BatchingOverride(bool enabled) : previous_(batching_enabled()) {
    set_batching_enabled(enabled);
  }
  ~BatchingOverride() { set_batching_enabled(previous_); }
  BatchingOverride(const BatchingOverride&) = delete;
  BatchingOverride& operator=(const BatchingOverride&) = delete;

 private:
  bool previous_;
};

}  // namespace attain::sim
