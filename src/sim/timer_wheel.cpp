#include "sim/timer_wheel.hpp"

#include <algorithm>
#include <utility>

namespace attain::sim {

void TimerWheel::schedule(SimTime deadline, std::uint64_t cookie) {
  place(deadline, cookie, tick_of(now_));
  ++pending_;
}

void TimerWheel::place(SimTime deadline, std::uint64_t cookie, std::int64_t now_tick) {
  // Past (or current-tick) deadlines park in the current slot so the next
  // advance() pops them.
  const std::int64_t dtick = std::max(tick_of(deadline), now_tick);
  const std::int64_t dt = dtick - now_tick;
  int level = 0;
  for (std::int64_t span = kSlots; level < kLevels - 1 && dt >= span; span <<= kSlotBits) {
    ++level;
  }
  // Beyond the top-level horizon the slot aliases; the timer re-cascades
  // each pass until its deadline enters range. Firing stays exact because
  // only level 0 fires and place() always recomputes from the deadline.
  const std::size_t slot =
      static_cast<std::size_t>((dtick >> (kSlotBits * level)) & (kSlots - 1));
  slots_[static_cast<std::size_t>(level)][slot].push_back(Timer{deadline, cookie});
}

void TimerWheel::cascade(int level, std::size_t slot) {
  mem::vector<Timer> moved = std::move(slots_[static_cast<std::size_t>(level)][slot]);
  slots_[static_cast<std::size_t>(level)][slot].clear();
  const std::int64_t now_tick = tick_of(now_);
  for (const Timer& t : moved) {
    place(t.deadline, t.cookie, now_tick);
  }
}

void TimerWheel::advance(SimTime now, mem::vector<std::uint64_t>& due) {
  if (now < now_) return;  // monotonicity guard (no-op on equal/backward)
  if (pending_ == 0) {
    now_ = now;
    return;
  }
  const std::int64_t start_tick = tick_of(now_);
  const std::int64_t final_tick = tick_of(now);
  for (std::int64_t t = start_tick; t <= final_tick; ++t) {
    now_ = std::max(now_, std::min(now, t << kTickShift));
    if (t > start_tick) {
      // Entering a new tick: cascade any wrapping higher-level slots,
      // highest level first so re-placed timers settle in one pass.
      for (int level = kLevels - 1; level >= 1; --level) {
        const std::int64_t period = std::int64_t{1} << (kSlotBits * level);
        if (t % period == 0) {
          cascade(level, static_cast<std::size_t>((t >> (kSlotBits * level)) & (kSlots - 1)));
        }
      }
    }
    mem::vector<Timer>& slot = slots_[0][static_cast<std::size_t>(t & (kSlots - 1))];
    if (slot.empty()) continue;
    if (t < final_tick) {
      // Every timer here has a deadline inside a fully elapsed tick.
      for (const Timer& timer : slot) due.push_back(timer.cookie);
      pending_ -= slot.size();
      slot.clear();
    } else {
      // Current tick: only deadlines at or before `now` are due.
      std::size_t keep = 0;
      for (Timer& timer : slot) {
        if (timer.deadline <= now) {
          due.push_back(timer.cookie);
          --pending_;
        } else {
          slot[keep++] = timer;
        }
      }
      slot.resize(keep);
    }
  }
  now_ = now;
}

void TimerWheel::reset(SimTime start) {
  for (auto& level : slots_) {
    for (auto& slot : level) slot.clear();
  }
  pending_ = 0;
  now_ = start;
}

}  // namespace attain::sim
