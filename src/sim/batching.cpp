#include "sim/batching.hpp"

#include <atomic>

namespace attain::sim {

namespace {
std::atomic<bool> g_batching_enabled{true};
}  // namespace

bool batching_enabled() { return g_batching_enabled.load(std::memory_order_relaxed); }

void set_batching_enabled(bool enabled) {
  g_batching_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace attain::sim
