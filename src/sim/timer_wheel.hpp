// Hierarchical timer wheel over SimTime deadlines. Four levels of 64 slots
// with a 2^16 µs (~65 ms) base tick: level 0 resolves individual ticks,
// each higher level covers 64x the span of the one below (~4.3 s, ~4.6 min,
// ~4.9 h per slot at the top); deadlines beyond the horizon park in the
// furthest top-level slot and re-cascade. schedule() and advance() are
// amortized O(1) per timer — the flow table uses one wheel per switch so an
// expiry tick touches only the entries whose deadline actually arrived,
// instead of rescanning the whole table (the seed's O(entries) expire()).
//
// Timers are one-shot (cookie, deadline) pairs. The wheel never invokes
// callbacks: advance() hands due cookies back to the caller, who owns
// validity (a caller that cancels a timer simply ignores the stale cookie
// when it pops — the generation-tag idiom FlowTable uses).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/arena.hpp"
#include "common/types.hpp"

namespace attain::sim {

class TimerWheel {
 public:
  explicit TimerWheel(SimTime start = 0) : now_(start) {}

  /// Registers `cookie` to fire once `deadline` is reached. A deadline at
  /// or before the current wheel time fires on the next advance().
  void schedule(SimTime deadline, std::uint64_t cookie);

  /// Appends every cookie whose deadline is <= `now` to `due` (deadline
  /// order is NOT guaranteed — callers needing an order sort the popped
  /// set) and advances the wheel clock. `now` must be monotone.
  void advance(SimTime now, mem::vector<std::uint64_t>& due);

  std::size_t pending() const { return pending_; }
  SimTime now() const { return now_; }

  /// Drops all timers and resets the clock to `start`.
  void reset(SimTime start = 0);

 private:
  static constexpr int kTickShift = 16;  // 65.536 ms per level-0 tick
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;  // 64
  static constexpr int kLevels = 4;

  struct Timer {
    SimTime deadline;
    std::uint64_t cookie;
  };

  static std::int64_t tick_of(SimTime t) { return t >> kTickShift; }
  void place(SimTime deadline, std::uint64_t cookie, std::int64_t now_tick);
  void cascade(int level, std::size_t slot);

  std::array<std::array<mem::vector<Timer>, kSlots>, kLevels> slots_;
  SimTime now_;
  std::size_t pending_{0};
};

}  // namespace attain::sim
