#include "sim/link.hpp"

namespace attain::sim {

SimTime idle_pipe_latency(const PipeConfig& config, std::size_t size_bytes) {
  const SimTime serialize =
      config.bandwidth_bps == 0
          ? 0
          : static_cast<SimTime>(static_cast<__int128>(size_bytes) * 8 * kSecond /
                                 config.bandwidth_bps);
  return serialize + config.propagation_delay;
}

}  // namespace attain::sim
