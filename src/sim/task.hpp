// Move-only callable for scheduler events. std::function<void()> has a
// ~16-byte small-buffer: every pipe-delivery lambda (which captures the
// in-flight payload — a chan::Envelope is a few hundred bytes) spilled to
// the general heap, one malloc/free per frame per hop. Task keeps a large
// inline buffer sized for the fattest hot-path lambda, so scheduling is
// allocation-free; the rare oversized callable lives on the calling
// thread's slab pool (mem::thread_slab()), which recycles it.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/arena.hpp"

namespace attain::sim {

class Task {
 public:
  /// Sized for a pipe-delivery lambda carrying an Envelope (decoded
  /// message + wire bytes caches) with slack for capture padding.
  static constexpr std::size_t kInlineSize = 384;

  Task() noexcept = default;
  Task(std::nullptr_t) noexcept {}

  template <typename F, typename = std::enable_if_t<
                            !std::is_same_v<std::decay_t<F>, Task> &&
                            std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Task(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned callables are not supported");
    if constexpr (sizeof(Fn) <= kInlineSize) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    } else {
      heap_ = mem::thread_slab().allocate(sizeof(Fn));
      heap_size_ = sizeof(Fn);
      ::new (heap_) Fn(std::forward<F>(f));
    }
    vt_ = &vtable_of<Fn>;
  }

  Task(Task&& other) noexcept { steal(other); }

  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      steal(other);
    }
    return *this;
  }

  Task& operator=(std::nullptr_t) noexcept {
    destroy();
    return *this;
  }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { destroy(); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  void operator()() { vt_->invoke(target()); }

  /// True when the callable lives in the inline buffer (introspection for
  /// tests asserting the hot-path lambdas stay allocation-free).
  bool inline_storage() const noexcept { return vt_ != nullptr && heap_ == nullptr; }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*move_construct)(void* dst, void* src);  // src destroyed
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr VTable vtable_of{
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
  };

  void* target() noexcept { return heap_ != nullptr ? heap_ : static_cast<void*>(buf_); }

  void steal(Task& other) noexcept {
    vt_ = other.vt_;
    heap_ = other.heap_;
    heap_size_ = other.heap_size_;
    if (vt_ != nullptr && heap_ == nullptr) {
      vt_->move_construct(buf_, other.buf_);
    }
    other.vt_ = nullptr;
    other.heap_ = nullptr;
    other.heap_size_ = 0;
  }

  void destroy() noexcept {
    if (vt_ == nullptr) return;
    vt_->destroy(target());
    if (heap_ != nullptr) {
      mem::thread_slab().deallocate(heap_, heap_size_);
      heap_ = nullptr;
      heap_size_ = 0;
    }
    vt_ = nullptr;
  }

  const VTable* vt_{nullptr};
  void* heap_{nullptr};
  std::size_t heap_size_{0};
  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
};

}  // namespace attain::sim
