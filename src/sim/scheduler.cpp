#include "sim/scheduler.hpp"

#include <stdexcept>

#include "common/log.hpp"

namespace attain::sim {

void EventHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

bool EventHandle::pending() const { return cancelled_ && !*cancelled_; }

Scheduler::Scheduler() {
  Logger::instance().set_clock([this] { return now_; });
}

Scheduler::~Scheduler() { Logger::instance().set_clock({}); }

EventHandle Scheduler::at(SimTime when, std::function<void()> fn) {
  if (when < now_) {
    throw std::invalid_argument("Scheduler::at: time " + std::to_string(when) +
                                " is in the past (now=" + std::to_string(now_) + ")");
  }
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{when, seq_++, std::move(fn), cancelled});
  return EventHandle{std::move(cancelled)};
}

EventHandle Scheduler::after(SimTime delay, std::function<void()> fn) {
  return at(now_ + delay, std::move(fn));
}

void Scheduler::dispatch(Event& ev) {
  now_ = ev.when;
  if (!*ev.cancelled) {
    *ev.cancelled = true;  // marks the handle as no longer pending
    ++executed_;
    ev.fn();
  }
}

void Scheduler::run() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    dispatch(ev);
  }
}

void Scheduler::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    dispatch(ev);
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace attain::sim
