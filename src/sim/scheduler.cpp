#include "sim/scheduler.hpp"

#include <utility>

#include "common/log.hpp"

namespace attain::sim {

void EventHandle::cancel() {
  if (sched_ == nullptr) return;
  Scheduler::Slot& slot = sched_->pool_[slot_];
  if (slot.gen == gen_ && slot.pending) slot.cancelled = true;
}

bool EventHandle::pending() const {
  if (sched_ == nullptr) return false;
  const Scheduler::Slot& slot = sched_->pool_[slot_];
  return slot.gen == gen_ && slot.pending && !slot.cancelled;
}

Scheduler::Scheduler() {
  Logger::instance().set_clock([this] { return now_; });
}

Scheduler::~Scheduler() { Logger::instance().set_clock({}); }

std::uint32_t Scheduler::acquire_slot(Task fn) {
  std::uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  Slot& slot = pool_[index];
  slot.fn = std::move(fn);
  slot.cancelled = false;
  slot.pending = true;
  return index;
}

void Scheduler::release_slot(std::uint32_t index) {
  Slot& slot = pool_[index];
  slot.fn = nullptr;
  slot.pending = false;
  slot.cancelled = false;
  ++slot.gen;  // invalidates outstanding handles
  free_slots_.push_back(index);
}

EventHandle Scheduler::at(SimTime when, Task fn) {
  // Clamp instead of throwing: a stale timer (e.g. one computed from a
  // deadline that already elapsed) fires immediately rather than running
  // virtual time backwards through the event loop.
  if (when < now_) when = now_;
  const std::uint32_t slot = acquire_slot(std::move(fn));
  const std::uint32_t gen = pool_[slot].gen;
  queue_.push(QueuedEvent{when, seq_++, slot, gen});
  return EventHandle{this, slot, gen};
}

EventHandle Scheduler::after(SimTime delay, Task fn) {
  return at(now_ + delay, std::move(fn));
}

void Scheduler::dispatch(const QueuedEvent& ev) {
  now_ = ev.when;  // cancelled events still advance the clock (as seeded)
  Slot& slot = pool_[ev.slot];
  // The queue entry owns its slot for exactly one generation, so a
  // generation mismatch is impossible here; cancelled is the only flag.
  const bool fire = !slot.cancelled;
  Task fn;
  if (fire) fn = std::move(slot.fn);
  // Recycle before invoking: the callback may schedule new events into the
  // slot we just freed, which is fine — `fn` was moved out first.
  release_slot(ev.slot);
  if (fire) {
    ++executed_;
    fn();
  }
}

void Scheduler::run() {
  while (!queue_.empty()) {
    const QueuedEvent ev = queue_.top();
    queue_.pop();
    dispatch(ev);
  }
}

void Scheduler::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    const QueuedEvent ev = queue_.top();
    queue_.pop();
    dispatch(ev);
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace attain::sim
