// Sweep engine: parallel == serial determinism (byte-identical JSON),
// failure isolation, retry, timeout accounting, the RunSpec/RunResult API,
// the controller registry, and the field-order-stable JSON writer.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "common/json.hpp"
#include "ctl/pox.hpp"
#include "scenario/experiment.hpp"
#include "sweep/sweep.hpp"

namespace attain {
namespace {

using scenario::ControllerKind;
using scenario::ExperimentKind;
using scenario::RunSpec;

// ---------------------------------------------------------------------------
// JSON writer.
// ---------------------------------------------------------------------------

TEST(JsonWriter, ObjectsArraysAndEscaping) {
  JsonWriter w;
  w.begin_object();
  w.field("name", std::string("a\"b\\c\nd"));
  w.field("count", std::uint64_t{3});
  w.field("neg", std::int64_t{-7});
  w.field("flag", true);
  w.key("list").begin_array();
  w.value(1.5);
  w.null();
  w.begin_object().field("k", "v").end_object();
  w.end_array();
  w.field_or_null("absent", std::nullopt);
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"a\\\"b\\\\c\\nd\",\"count\":3,\"neg\":-7,\"flag\":true,"
            "\"list\":[1.5,null,{\"k\":\"v\"}],\"absent\":null}");
}

TEST(JsonWriter, DoubleFormatIsStable) {
  EXPECT_EQ(JsonWriter::format_double(0.0), "0");
  EXPECT_EQ(JsonWriter::format_double(-0.0), "0");
  EXPECT_EQ(JsonWriter::format_double(2.5), "2.5");
  EXPECT_EQ(JsonWriter::format_double(1.0 / 3.0), "0.333333333");
}

// ---------------------------------------------------------------------------
// Controller registry.
// ---------------------------------------------------------------------------

TEST(ControllerRegistry, NamesRoundTrip) {
  for (const ControllerKind kind : ctl::all_controller_kinds()) {
    const std::string name = ctl::to_string(kind);
    EXPECT_EQ(ctl::controller_kind_from_name(name), kind);
  }
  EXPECT_EQ(ctl::controller_kind_from_name("pox"), ControllerKind::Pox);
  EXPECT_EQ(ctl::controller_kind_from_name("FLOODLIGHT"), ControllerKind::Floodlight);
  EXPECT_EQ(ctl::controller_kind_from_name("opendaylight"), std::nullopt);
}

TEST(ControllerRegistry, MakeControllerBuildsEveryKind) {
  sim::Scheduler sched;
  for (const ControllerKind kind : ctl::all_controller_kinds()) {
    const auto controller = ctl::make_controller(kind, sched);
    ASSERT_NE(controller, nullptr);
    EXPECT_FALSE(controller->name().empty());
  }
  // Negative delay keeps the registered default; an explicit delay wins.
  const auto pox = ctl::make_controller(ControllerKind::Pox, sched, 123);
  EXPECT_NE(pox, nullptr);
  EXPECT_EQ(ctl::controller_entry(ControllerKind::Pox).default_processing_delay,
            ctl::PoxL2Learning::kDefaultProcessingDelay);
}

// ---------------------------------------------------------------------------
// RunSpec / grids.
// ---------------------------------------------------------------------------

TEST(RunSpec, DerivedIdsAreStable) {
  RunSpec spec;
  spec.experiment = ExperimentKind::FlowModSuppression;
  spec.controller = ControllerKind::Ryu;
  spec.attack_enabled = false;
  EXPECT_EQ(spec.id(), "suppression/Ryu/baseline");

  spec.experiment = ExperimentKind::ConnectionInterruption;
  spec.attack_enabled = true;
  spec.options.fail_secure = true;
  EXPECT_EQ(spec.id(), "interruption/Ryu/fail-secure");

  spec.name = "my-cell";
  EXPECT_EQ(spec.id(), "my-cell");
}

TEST(RunSpec, PaperGridsCoverEveryCell) {
  const auto table2 = scenario::table2_grid();
  ASSERT_EQ(table2.size(), 6u);
  EXPECT_EQ(table2.front().id(), "interruption/Floodlight/fail-safe");
  EXPECT_EQ(table2.back().id(), "interruption/Ryu/fail-secure");

  const auto fig11 = scenario::fig11_grid();
  ASSERT_EQ(fig11.size(), 6u);
  EXPECT_EQ(fig11.front().id(), "suppression/Floodlight/baseline");
  EXPECT_EQ(fig11.back().id(), "suppression/Ryu/attack");
}

TEST(RunSpec, CustomWithoutRunnerThrows) {
  RunSpec spec;
  spec.experiment = ExperimentKind::Custom;
  EXPECT_THROW(scenario::run(spec), std::invalid_argument);
}

// A minimal custom result for the custom-cell tests below.
class TokenResult : public scenario::RunResult {
 public:
  explicit TokenResult(std::int64_t token) : token_(token) {}
  std::string kind_name() const override { return "token"; }
  std::vector<std::string> row_header() const override { return {"token"}; }
  std::vector<std::string> to_row() const override { return {std::to_string(token_)}; }
  scenario::RunResultPtr clone() const override { return std::make_unique<TokenResult>(*this); }

 protected:
  void write_json_fields(JsonWriter& w) const override { w.field("token", token_); }

 private:
  std::int64_t token_;
};

RunSpec custom_spec(std::string name, std::function<scenario::RunResultPtr(const RunSpec&)> fn) {
  RunSpec spec;
  spec.experiment = ExperimentKind::Custom;
  spec.name = std::move(name);
  spec.custom = std::move(fn);
  return spec;
}

// ---------------------------------------------------------------------------
// Sweep engine.
// ---------------------------------------------------------------------------

// A short suppression cell (~39 virtual seconds, no iperf).
RunSpec quick_suppression(ControllerKind kind, bool attack) {
  RunSpec spec;
  spec.experiment = ExperimentKind::FlowModSuppression;
  spec.controller = kind;
  spec.attack_enabled = attack;
  spec.ping_trials = 2;
  spec.iperf_trials = 0;
  return spec;
}

TEST(Sweep, ParallelResultsAreByteIdenticalToSerial) {
  const std::vector<RunSpec> grid = {
      quick_suppression(ControllerKind::Pox, false),
      quick_suppression(ControllerKind::Pox, true),
      quick_suppression(ControllerKind::Ryu, false),
      quick_suppression(ControllerKind::Ryu, true),
  };

  sweep::SweepOptions serial_options;
  serial_options.threads = 1;
  const sweep::SweepReport serial = sweep::SweepRunner(serial_options).run(grid);

  sweep::SweepOptions parallel_options;
  parallel_options.threads = 4;
  const sweep::SweepReport parallel = sweep::SweepRunner(parallel_options).run(grid);

  ASSERT_EQ(serial.cells.size(), grid.size());
  ASSERT_EQ(serial.ok(), grid.size());
  ASSERT_EQ(parallel.ok(), grid.size());
  EXPECT_EQ(serial.results_json(), parallel.results_json());

  // The attack cells really did something different from the baselines.
  const auto* baseline = serial.find("suppression/POX/baseline");
  const auto* attacked = serial.find("suppression/POX/attack");
  ASSERT_NE(baseline, nullptr);
  ASSERT_NE(attacked, nullptr);
  EXPECT_NE(baseline->result->to_json(), attacked->result->to_json());
}

TEST(Sweep, FailingCellDoesNotPoisonSiblings) {
  std::vector<RunSpec> grid;
  grid.push_back(quick_suppression(ControllerKind::Pox, false));
  grid.push_back(custom_spec("exploding-cell", [](const RunSpec&) -> scenario::RunResultPtr {
    throw std::runtime_error("boom: injected cell failure");
  }));
  grid.push_back(quick_suppression(ControllerKind::Ryu, false));

  sweep::SweepOptions options;
  options.threads = 3;
  const sweep::SweepReport report = sweep::SweepRunner(options).run(grid);

  ASSERT_EQ(report.cells.size(), 3u);
  EXPECT_EQ(report.ok(), 2u);
  EXPECT_EQ(report.failed(), 1u);

  const sweep::CellOutcome& failed = report.cells[1];
  EXPECT_EQ(failed.status, sweep::CellStatus::Failed);
  EXPECT_EQ(failed.result, nullptr);
  EXPECT_NE(failed.error.find("boom"), std::string::npos);

  EXPECT_EQ(report.cells[0].status, sweep::CellStatus::Ok);
  EXPECT_EQ(report.cells[2].status, sweep::CellStatus::Ok);
  ASSERT_NE(report.cells[0].result, nullptr);
  ASSERT_NE(report.cells[2].result, nullptr);

  // The failed cell is reported as "failed" with a null result in JSON.
  EXPECT_NE(report.results_json().find("\"status\":\"failed\""), std::string::npos);
  EXPECT_NE(report.results_json().find("\"result\":null"), std::string::npos);
}

TEST(Sweep, RetriesRecoverFlakyCells) {
  auto flaky_attempts = std::make_shared<std::atomic<int>>(0);
  const RunSpec flaky =
      custom_spec("flaky-cell", [flaky_attempts](const RunSpec&) -> scenario::RunResultPtr {
        if (flaky_attempts->fetch_add(1) == 0) throw std::runtime_error("transient");
        return std::make_unique<TokenResult>(42);
      });

  sweep::SweepOptions options;
  options.threads = 1;
  options.max_attempts = 2;
  const sweep::SweepReport report = sweep::SweepRunner(options).run({flaky});

  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_EQ(report.cells[0].status, sweep::CellStatus::Ok);
  EXPECT_EQ(report.cells[0].attempts, 2u);
  EXPECT_TRUE(report.cells[0].error.empty());
  ASSERT_NE(report.cells[0].result, nullptr);
  EXPECT_NE(report.cells[0].result->to_json().find("\"token\":42"), std::string::npos);
}

TEST(Sweep, SlowCellIsFlaggedTimedOutButKeepsItsResult) {
  const RunSpec slow = custom_spec("slow-cell", [](const RunSpec&) -> scenario::RunResultPtr {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return std::make_unique<TokenResult>(7);
  });

  sweep::SweepOptions options;
  options.threads = 1;
  options.cell_timeout_seconds = 0.001;
  const sweep::SweepReport report = sweep::SweepRunner(options).run({slow});

  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_EQ(report.cells[0].status, sweep::CellStatus::TimedOut);
  ASSERT_NE(report.cells[0].result, nullptr);  // cooperative timeout: result kept
}

TEST(Sweep, ProgressCallbackSeesEveryCell) {
  const std::vector<RunSpec> grid = {
      quick_suppression(ControllerKind::Pox, false),
      quick_suppression(ControllerKind::Ryu, false),
  };
  std::vector<std::string> seen;
  std::size_t last_total = 0;

  sweep::SweepOptions options;
  options.threads = 2;
  options.on_progress = [&](const sweep::Progress& p) {
    seen.push_back(p.cell->spec.id());  // serialized by the runner
    last_total = p.total;
  };
  const sweep::SweepReport report = sweep::SweepRunner(options).run(grid);

  EXPECT_EQ(report.ok(), 2u);
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(last_total, 2u);
}

// Retried cells must not double-count toward Progress: the callback fires
// exactly once per cell, after its outcome is final, and `completed`
// marches 1..total even when the middle cell consumes two attempts.
TEST(Sweep, RetriedCellsCountOnceInProgress) {
  auto flaky_attempts = std::make_shared<std::atomic<int>>(0);
  const std::vector<RunSpec> grid = {
      quick_suppression(ControllerKind::Pox, false),
      custom_spec("deterministic-flake",
                  [flaky_attempts](const RunSpec&) -> scenario::RunResultPtr {
                    if (flaky_attempts->fetch_add(1) == 0) {
                      throw std::runtime_error("first attempt always fails");
                    }
                    return std::make_unique<TokenResult>(9);
                  }),
      quick_suppression(ControllerKind::Ryu, false),
  };

  std::vector<std::size_t> completed_values;
  std::vector<std::string> seen_ids;
  sweep::SweepOptions options;
  options.threads = 1;
  options.max_attempts = 2;
  options.on_progress = [&](const sweep::Progress& p) {
    completed_values.push_back(p.completed);
    seen_ids.push_back(p.cell->spec.id());
    EXPECT_EQ(p.total, grid.size());
  };
  const sweep::SweepReport report = sweep::SweepRunner(options).run(grid);

  EXPECT_EQ(report.ok(), 3u);
  EXPECT_EQ(report.cells[1].attempts, 2u);
  // One notification per cell — the retry did not produce an extra one —
  // and the counter never skips or repeats.
  EXPECT_EQ(completed_values, (std::vector<std::size_t>{1, 2, 3}));
  ASSERT_EQ(seen_ids.size(), grid.size());
  for (const RunSpec& spec : grid) {
    EXPECT_EQ(std::count(seen_ids.begin(), seen_ids.end(), spec.id()), 1)
        << "cell " << spec.id() << " notified a wrong number of times";
  }
}

TEST(Sweep, ReportAccountsVirtualTime) {
  const std::vector<RunSpec> grid = {quick_suppression(ControllerKind::Pox, false)};
  sweep::SweepOptions options;
  options.threads = 1;
  const sweep::SweepReport report = sweep::SweepRunner(options).run(grid);

  ASSERT_EQ(report.ok(), 1u);
  // The quick suppression cell simulates ~39 virtual seconds.
  EXPECT_GE(report.total_virtual_time(), seconds(35));
  EXPECT_GT(report.cells[0].result->events_executed, 0u);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.time_compression(), 0.0);
  EXPECT_NE(report.to_json().find("\"timing\""), std::string::npos);
  // The deterministic document carries no wall-clock fields.
  EXPECT_EQ(report.results_json().find("wall_seconds"), std::string::npos);
}

// run(spec) matches the legacy entry points bit-for-bit.
TEST(Sweep, RunSpecMatchesLegacyEntryPoints) {
  scenario::SuppressionConfig config;
  config.controller = ControllerKind::Ryu;
  config.attack_enabled = true;
  config.ping_trials = 2;
  config.iperf_trials = 0;
  const scenario::SuppressionResult legacy = scenario::run_flow_mod_suppression(config);
  const scenario::RunResultPtr via_spec = scenario::run(scenario::to_run_spec(config));
  EXPECT_EQ(legacy.to_json(), via_spec->to_json());
}

}  // namespace
}  // namespace attain
