// Distributed runtime injection (§VIII-C): total-order coordination must be
// semantically identical to the centralized injector (at a latency cost);
// local replicas process with no added latency but diverge on attacks whose
// state spans shards.
#include "attain/inject/distributed.hpp"

#include <gtest/gtest.h>

#include "attain/dsl/parser.hpp"
#include "ofp/codec.hpp"
#include "scenario/enterprise.hpp"

namespace attain::inject {
namespace {

constexpr SimTime kCoordLatency = 2 * kMillisecond;

struct Fixture {
  sim::Scheduler sched;
  topo::SystemModel model = scenario::make_enterprise_model();
  monitor::Monitor monitor;
  std::unique_ptr<DistributedInjector> injector;
  std::map<std::string, std::vector<std::pair<SimTime, ofp::Message>>> to_controller;
  std::vector<std::unique_ptr<std::pair<dsl::CompiledAttack, model::CapabilityMap>>> armed;

  explicit Fixture(Coordination mode, unsigned shards = 2) {
    injector = std::make_unique<DistributedInjector>(sched, model, monitor, shards, mode,
                                                     kCoordLatency);
    for (const auto& conn : model.control_connections()) {
      const std::string name = model.name_of(conn.id.sw);
      injector->attach_connection(
          conn.id,
          [this, name](chan::Envelope e) {
            ASSERT_NE(e.message(), nullptr);
            to_controller[name].emplace_back(sched.now(), *e.message());
          },
          [](chan::Envelope) {});
    }
  }

  void arm(const std::string& source) {
    const dsl::Document doc = dsl::parse_document(source, model);
    auto holder = std::make_unique<std::pair<dsl::CompiledAttack, model::CapabilityMap>>();
    holder->second = doc.capabilities;
    holder->first = dsl::compile(doc.attacks.at(0), model, holder->second);
    injector->arm(holder->first, holder->second);
    armed.push_back(std::move(holder));
  }

  void send_echo(const char* sw, std::uint32_t xid) {
    const ConnectionId conn{model.require("c1"), model.require(sw)};
    injector->switch_side_input(conn)(ofp::encode(ofp::make_message(xid, ofp::EchoRequest{})));
  }
};

/// Attack whose state is global: drop everything on every connection after
/// three messages have been seen anywhere.
std::string global_count_attack() {
  return R"(
attacker {
  on (c1, s1) grant no_tls;
  on (c1, s2) grant no_tls;
  on (c1, s3) grant no_tls;
  on (c1, s4) grant no_tls;
}
attack global_gate {
  deque counter = [0];
  start state s {
    rule gate1 on (c1, s1) { when examine_front(counter) >= 3; do { drop(msg); } }
    rule tally1 on (c1, s1) { when examine_front(counter) < 3; do { pass(msg); prepend(counter, examine_front(counter) + 1); } }
    rule gate2 on (c1, s2) { when examine_front(counter) >= 3; do { drop(msg); } }
    rule tally2 on (c1, s2) { when examine_front(counter) < 3; do { pass(msg); prepend(counter, examine_front(counter) + 1); } }
  }
}
)";
}

TEST(Distributed, ShardAssignmentPartitionsConnections) {
  Fixture fx(Coordination::TotalOrder, 2);
  const ConnectionId s1{fx.model.require("c1"), fx.model.require("s1")};
  const ConnectionId s2{fx.model.require("c1"), fx.model.require("s2")};
  const ConnectionId s3{fx.model.require("c1"), fx.model.require("s3")};
  EXPECT_NE(fx.injector->shard_of(s1), fx.injector->shard_of(s2));
  EXPECT_EQ(fx.injector->shard_of(s1), fx.injector->shard_of(s3));
  EXPECT_EQ(fx.injector->shard_count(), 2u);
}

TEST(Distributed, DisarmedForwardsImmediately) {
  Fixture fx(Coordination::TotalOrder, 2);
  fx.send_echo("s1", 1);
  ASSERT_EQ(fx.to_controller["s1"].size(), 1u);
  EXPECT_EQ(fx.to_controller["s1"][0].first, 0);  // no coordination when disarmed
}

TEST(Distributed, TotalOrderAddsCoordinationLatency) {
  Fixture fx(Coordination::TotalOrder, 2);
  fx.arm(scenario::trivial_pass_all_dsl());
  fx.send_echo("s1", 1);
  EXPECT_TRUE(fx.to_controller["s1"].empty());  // still in coordination
  fx.sched.run();
  ASSERT_EQ(fx.to_controller["s1"].size(), 1u);
  EXPECT_EQ(fx.to_controller["s1"][0].first, 2 * kCoordLatency);
  EXPECT_EQ(fx.injector->stats().sequencer_round_trips, 1u);
  EXPECT_EQ(fx.injector->stats().coordination_delay_total, 4 * kMillisecond);
}

TEST(Distributed, LocalReplicasAddNoLatency) {
  Fixture fx(Coordination::LocalReplicas, 2);
  fx.arm(scenario::trivial_pass_all_dsl());
  fx.send_echo("s1", 1);
  ASSERT_EQ(fx.to_controller["s1"].size(), 1u);
  EXPECT_EQ(fx.to_controller["s1"][0].first, 0);
  EXPECT_EQ(fx.injector->stats().sequencer_round_trips, 0u);
}

TEST(Distributed, TotalOrderMatchesCentralizedSemantics) {
  // Global counting attack: with total ordering, exactly 3 messages pass
  // regardless of which connections carry them — identical to the
  // centralized injector.
  Fixture fx(Coordination::TotalOrder, 2);
  fx.arm(global_count_attack());
  // Interleave across shards: s1 (shard 1), s2 (shard 0).
  fx.send_echo("s1", 1);
  fx.send_echo("s2", 2);
  fx.send_echo("s1", 3);
  fx.send_echo("s2", 4);
  fx.send_echo("s1", 5);
  fx.send_echo("s2", 6);
  fx.sched.run();
  const std::size_t total =
      fx.to_controller["s1"].size() + fx.to_controller["s2"].size();
  EXPECT_EQ(total, 3u);
}

TEST(Distributed, LocalReplicasDivergeOnCrossShardState) {
  // The §VIII-C hazard: each replica has its own counter, so each shard
  // passes 3 messages — 6 total instead of 3.
  Fixture fx(Coordination::LocalReplicas, 2);
  fx.arm(global_count_attack());
  for (std::uint32_t i = 1; i <= 6; ++i) fx.send_echo("s1", i);
  for (std::uint32_t i = 1; i <= 6; ++i) fx.send_echo("s2", i);
  fx.sched.run();
  EXPECT_EQ(fx.to_controller["s1"].size(), 3u);
  EXPECT_EQ(fx.to_controller["s2"].size(), 3u);  // centralized would give 0 here
}

TEST(Distributed, LocalReplicaStateTransitionsAreIndependent) {
  const std::string source = R"(
attacker { on (c1, s1) grant no_tls; on (c1, s2) grant no_tls; }
attack per_conn_interrupt {
  start state waiting {
    rule trig1 on (c1, s1) { when msg.type == ECHO_REQUEST; do { pass(msg); goto(dropping); } }
    rule trig2 on (c1, s2) { when msg.type == ECHO_REQUEST; do { pass(msg); goto(dropping); } }
  }
  state dropping {
    rule d1 on (c1, s1) { when 1; do { drop(msg); } }
    rule d2 on (c1, s2) { when 1; do { drop(msg); } }
  }
}
)";
  Fixture fx(Coordination::LocalReplicas, 2);
  fx.arm(source);
  fx.send_echo("s1", 1);  // shard 1 transitions to `dropping`
  fx.sched.run();
  EXPECT_EQ(fx.injector->current_state_of_shard(fx.injector->shard_of(
                ConnectionId{fx.model.require("c1"), fx.model.require("s1")})),
            std::optional<std::string>("dropping"));
  EXPECT_EQ(fx.injector->current_state_of_shard(fx.injector->shard_of(
                ConnectionId{fx.model.require("c1"), fx.model.require("s2")})),
            std::optional<std::string>("waiting"));
  // s2's shard still passes; s1's shard drops.
  fx.send_echo("s2", 2);
  fx.send_echo("s1", 3);
  fx.sched.run();
  EXPECT_EQ(fx.to_controller["s2"].size(), 1u);
  EXPECT_EQ(fx.to_controller["s1"].size(), 1u);  // only the trigger passed
}

TEST(Distributed, TotalOrderPreservesPerConnectionOrdering) {
  Fixture fx(Coordination::TotalOrder, 4);
  fx.arm(scenario::trivial_pass_all_dsl());
  for (std::uint32_t i = 1; i <= 10; ++i) fx.send_echo("s3", i);
  fx.sched.run();
  ASSERT_EQ(fx.to_controller["s3"].size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(fx.to_controller["s3"][i].second.xid, i + 1);
  }
}

TEST(Distributed, SingleShardTotalOrderEqualsSequencerOnly) {
  Fixture fx(Coordination::TotalOrder, 1);
  fx.arm(global_count_attack());
  for (std::uint32_t i = 1; i <= 6; ++i) fx.send_echo("s1", i);
  fx.sched.run();
  EXPECT_EQ(fx.to_controller["s1"].size(), 3u);
}

}  // namespace
}  // namespace attain::inject
