// Distributed campaign runner: wire framing, the resumable campaign
// journal (round-trip, torn-tail truncation, campaign binding), N-worker
// byte-identity to the in-process SweepRunner over the paper grids,
// worker-death fault injection (SIGKILL mid-cell, corrupted and truncated
// result frames -> respawn + cold re-run + identical merged JSON),
// journal resume after coordinator death, and the per-worker memory
// steady-state accounting.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/alloc_hook.hpp"
#include "scenario/experiment.hpp"
#include "snap/wire.hpp"
#include "sweep/distributed.hpp"
#include "sweep/journal.hpp"
#include "sweep/sweep.hpp"
#include "topo/generators.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "snap/snapshot.hpp"

namespace attain {
namespace {

using scenario::ControllerKind;
using scenario::ExperimentKind;
using scenario::RunSpec;

// A short suppression cell (~39 virtual seconds, no iperf).
RunSpec quick_suppression(ControllerKind kind, bool attack) {
  RunSpec spec;
  spec.experiment = ExperimentKind::FlowModSuppression;
  spec.controller = kind;
  spec.attack_enabled = attack;
  spec.ping_trials = 2;
  spec.iperf_trials = 0;
  return spec;
}

std::vector<RunSpec> quick_grid() {
  return {
      quick_suppression(ControllerKind::Pox, false),
      quick_suppression(ControllerKind::Pox, true),
      quick_suppression(ControllerKind::Ryu, false),
      quick_suppression(ControllerKind::Ryu, true),
  };
}

// Small volumetric grid: one fat-tree, POX, flood + overflow + baselines.
std::vector<RunSpec> quick_volumetric_grid() {
  return scenario::GridBuilder()
      .volumetric(scenario::VolumetricKind::PacketInFlood)
      .volumetric(scenario::VolumetricKind::TableOverflow)
      .controllers({ControllerKind::Pox})
      .topology(topo::TopologySpec::fat_tree(4))
      .flood(/*flows=*/32, /*duration=*/2 * kSecond, /*batch=*/250 * kMillisecond)
      .table_capacity(64)
      .build();
}

RunSpec custom_spec(std::string name, std::function<scenario::RunResultPtr(const RunSpec&)> fn) {
  RunSpec spec;
  spec.experiment = ExperimentKind::Custom;
  spec.name = std::move(name);
  spec.custom = std::move(fn);
  return spec;
}

std::string temp_path(const std::string& stem) {
  const ::testing::TestInfo* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + stem + "-" + info->test_suite_name() + "-" + info->name();
}

sweep::SweepReport reference_run(const std::vector<RunSpec>& grid) {
  sweep::SweepOptions options;
  options.threads = 1;
  return sweep::SweepRunner(options).run(grid);
}

sweep::DistributedReport distributed_run(const std::vector<RunSpec>& grid, unsigned workers,
                                         bool warm = false) {
  sweep::DistributedOptions options;
  options.workers = workers;
  options.warm_start = warm;
  return sweep::DistributedRunner(options).run(grid);
}

// ---------------------------------------------------------------------------
// Wire framing.
// ---------------------------------------------------------------------------

#if defined(__unix__) || defined(__APPLE__)

TEST(Wire, FrameRoundTripAndCleanEof) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::vector<std::uint8_t> a{1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> b{};  // empty payloads are legal frames
  ASSERT_TRUE(snap::wire::write_frame(fds[1], a));
  ASSERT_TRUE(snap::wire::write_frame(fds[1], b));
  ::close(fds[1]);

  Bytes out;
  ASSERT_EQ(snap::wire::read_frame(fds[0], out), snap::wire::FrameStatus::Ok);
  EXPECT_EQ(std::vector<std::uint8_t>(out.begin(), out.end()), a);
  ASSERT_EQ(snap::wire::read_frame(fds[0], out), snap::wire::FrameStatus::Ok);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(snap::wire::read_frame(fds[0], out), snap::wire::FrameStatus::Eof);
  ::close(fds[0]);
}

TEST(Wire, TruncatedFrameIsErrorNotEof) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Header promises 8 payload bytes; deliver 3 and hang up.
  const std::uint8_t partial[] = {0, 0, 0, 8, 0xAA, 0xBB, 0xCC};
  ASSERT_TRUE(snap::wire::write_exact(fds[1], partial));
  ::close(fds[1]);
  Bytes out;
  EXPECT_EQ(snap::wire::read_frame(fds[0], out), snap::wire::FrameStatus::Error);
  ::close(fds[0]);
}

TEST(Wire, OversizePayloadLengthIsError) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::uint8_t huge[] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_TRUE(snap::wire::write_exact(fds[1], huge));
  ::close(fds[1]);
  Bytes out;
  EXPECT_EQ(snap::wire::read_frame(fds[0], out), snap::wire::FrameStatus::Error);
  ::close(fds[0]);
}

#endif  // __unix__ || __APPLE__

TEST(Wire, SealDetectsTampering) {
  ByteWriter w;
  w.u32(0xDEADBEEF);
  w.u8(7);
  Bytes sealed = snap::wire::seal(std::move(w));
  std::span<const std::uint8_t> body;
  ASSERT_TRUE(snap::wire::unseal(sealed, body));
  ASSERT_EQ(body.size(), 5u);
  ByteReader r(body);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);

  Bytes tampered = sealed;
  tampered[2] ^= 0x01;
  EXPECT_FALSE(snap::wire::unseal(tampered, body));

  Bytes short_payload;
  short_payload.resize(7);
  EXPECT_FALSE(snap::wire::unseal(short_payload, body));
}

// ---------------------------------------------------------------------------
// Campaign journal.
// ---------------------------------------------------------------------------

#if defined(__unix__) || defined(__APPLE__)

TEST(CampaignJournal, RoundTripRestoresOutcomes) {
  const std::vector<RunSpec> grid = {quick_suppression(ControllerKind::Pox, false),
                                     quick_suppression(ControllerKind::Pox, true)};
  const std::uint64_t digest = scenario::grid_digest(grid);
  const std::string path = temp_path("journal");

  sweep::SweepReport ran = reference_run(grid);
  {
    sweep::CampaignJournal journal = sweep::CampaignJournal::create(path, digest, grid.size());
    EXPECT_TRUE(journal.append(0, ran.cells[0]));
    EXPECT_TRUE(journal.append(1, ran.cells[1]));
  }

  std::vector<sweep::CampaignJournal::LoadedCell> loaded;
  sweep::CampaignJournal resumed =
      sweep::CampaignJournal::resume(path, digest, grid.size(), loaded);
  ASSERT_EQ(loaded.size(), 2u);
  for (std::size_t k = 0; k < loaded.size(); ++k) {
    EXPECT_EQ(loaded[k].index, k);
    EXPECT_EQ(loaded[k].outcome.status, ran.cells[k].status);
    EXPECT_EQ(loaded[k].outcome.attempts, ran.cells[k].attempts);
    ASSERT_NE(loaded[k].outcome.result, nullptr);
    EXPECT_EQ(loaded[k].outcome.result->to_json(), ran.cells[k].result->to_json());
  }
  std::remove(path.c_str());
}

TEST(CampaignJournal, TornTailIsTruncatedNotTrusted) {
  const std::vector<RunSpec> grid = quick_grid();
  const std::uint64_t digest = scenario::grid_digest(grid);
  const std::string path = temp_path("journal");

  sweep::SweepReport ran = reference_run(grid);
  {
    sweep::CampaignJournal journal = sweep::CampaignJournal::create(path, digest, grid.size());
    EXPECT_TRUE(journal.append(0, ran.cells[0]));
    EXPECT_TRUE(journal.append(1, ran.cells[1]));
  }
  // Simulate a coordinator killed mid-append: half a frame of garbage.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const std::uint8_t torn[] = {0, 0, 0, 40, 1, 2, 3};
    std::fwrite(torn, 1, sizeof(torn), f);
    std::fclose(f);
  }

  std::vector<sweep::CampaignJournal::LoadedCell> loaded;
  sweep::CampaignJournal resumed =
      sweep::CampaignJournal::resume(path, digest, grid.size(), loaded);
  ASSERT_EQ(loaded.size(), 2u);  // the torn record is dropped
  // The file was truncated back to the intact prefix: appending and
  // re-resuming yields exactly three records.
  EXPECT_TRUE(resumed.append(2, ran.cells[2]));
  resumed.close();
  loaded.clear();
  sweep::CampaignJournal again = sweep::CampaignJournal::resume(path, digest, grid.size(), loaded);
  EXPECT_EQ(loaded.size(), 3u);
  std::remove(path.c_str());
}

TEST(CampaignJournal, RejectsMismatchedCampaign) {
  const std::vector<RunSpec> grid = quick_grid();
  const std::string path = temp_path("journal");
  { sweep::CampaignJournal::create(path, scenario::grid_digest(grid), grid.size()); }

  std::vector<sweep::CampaignJournal::LoadedCell> loaded;
  EXPECT_THROW(sweep::CampaignJournal::resume(path, scenario::grid_digest(grid) ^ 1, grid.size(),
                                              loaded),
               std::runtime_error);
  EXPECT_THROW(sweep::CampaignJournal::resume(path, scenario::grid_digest(grid), grid.size() + 1,
                                              loaded),
               std::runtime_error);
  std::remove(path.c_str());
}

#endif  // __unix__ || __APPLE__

// ---------------------------------------------------------------------------
// Work planning.
// ---------------------------------------------------------------------------

TEST(WorkPlan, SkipFilterExcludesCompletedCells) {
  const std::vector<RunSpec> grid = quick_grid();
  std::vector<bool> skip(grid.size(), false);
  skip[0] = true;
  skip[2] = true;
  const std::vector<sweep::WorkItem> items = sweep::plan_work_items(grid, false, &skip);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].cells, (std::vector<std::size_t>{1}));
  EXPECT_EQ(items[1].cells, (std::vector<std::size_t>{3}));
}

TEST(WorkPlan, WarmGroupsNeverSplit) {
  if (!snap::fork_supported()) GTEST_SKIP() << "fork snapshots unsupported here";
  const std::vector<RunSpec> grid = quick_grid();  // two signature pairs
  const std::vector<sweep::WorkItem> items = sweep::plan_work_items(grid, true);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_TRUE(items[0].warm);
  EXPECT_TRUE(items[1].warm);
  EXPECT_EQ(items[0].cells, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(items[1].cells, (std::vector<std::size_t>{2, 3}));
}

// ---------------------------------------------------------------------------
// Byte-identity to the in-process SweepRunner.
// ---------------------------------------------------------------------------

TEST(Distributed, QuickGridByteIdenticalAcrossWorkerCounts) {
  const std::vector<RunSpec> grid = quick_grid();
  const std::string reference = reference_run(grid).results_json();
  const sweep::DistributedReport one = distributed_run(grid, 1);
  const sweep::DistributedReport four = distributed_run(grid, 4);
  EXPECT_EQ(one.results_json(), reference);
  EXPECT_EQ(four.results_json(), reference);
  EXPECT_EQ(four.workers, 4u);
  EXPECT_EQ(four.respawns, 0u);
}

TEST(Distributed, WarmStartStaysByteIdentical) {
  const std::vector<RunSpec> grid = quick_grid();
  const std::string reference = reference_run(grid).results_json();
  const sweep::DistributedReport warm = distributed_run(grid, 2, /*warm=*/true);
  EXPECT_EQ(warm.results_json(), reference);
  if (sweep::distributed_supported()) {
    EXPECT_GT(warm.sweep.warm_cells, 0u) << "signature pairs should fork warm";
  }
}

TEST(Distributed, Table2GridByteIdentical) {
  const std::vector<RunSpec> grid = scenario::table2_grid();
  const std::string reference = reference_run(grid).results_json();
  EXPECT_EQ(distributed_run(grid, 4).results_json(), reference);
}

TEST(Distributed, Fig11QuickGridByteIdentical) {
  const std::vector<RunSpec> grid = scenario::fig11_grid(/*ping_trials=*/2, /*iperf_trials=*/0);
  const std::string reference = reference_run(grid).results_json();
  EXPECT_EQ(distributed_run(grid, 3).results_json(), reference);
}

TEST(Distributed, VolumetricGridByteIdenticalColdAndWarm) {
  const std::vector<RunSpec> grid = quick_volumetric_grid();
  const std::string reference = reference_run(grid).results_json();
  EXPECT_EQ(distributed_run(grid, 4).results_json(), reference);
  EXPECT_EQ(distributed_run(grid, 2, /*warm=*/true).results_json(), reference);
}

TEST(Distributed, ProgressMarchesOncePerCell) {
  const std::vector<RunSpec> grid = quick_grid();
  sweep::DistributedOptions options;
  options.workers = 2;
  std::vector<std::size_t> ticks;
  options.on_progress = [&](const sweep::Progress& p) {
    ticks.push_back(p.completed);
    EXPECT_EQ(p.total, grid.size());
    EXPECT_NE(p.cell, nullptr);
  };
  sweep::DistributedRunner(options).run(grid);
  ASSERT_EQ(ticks.size(), grid.size());
  for (std::size_t k = 0; k < ticks.size(); ++k) EXPECT_EQ(ticks[k], k + 1);
}

TEST(Distributed, ReportSurfacesAccounting) {
  const std::vector<RunSpec> grid = quick_grid();
  const sweep::DistributedReport report = distributed_run(grid, 2);
  EXPECT_EQ(report.workers, 2u);
  EXPECT_GE(report.shards, grid.size()) << "cold cells dispatch as singleton shards";
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"workers\":2"), std::string::npos);
  EXPECT_NE(json.find("\"shards\":"), std::string::npos);
  EXPECT_NE(json.find("\"respawns\":"), std::string::npos);
  EXPECT_NE(json.find("\"resumed_cells\":"), std::string::npos);
  EXPECT_NE(report.summary().find("worker process"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fault injection: dying workers, corrupt streams.
// ---------------------------------------------------------------------------

#if defined(__unix__) || defined(__APPLE__)

// A custom cell that SIGKILLs its own process the first time any process
// executes it (the sentinel file makes the kill one-shot across respawns),
// then behaves as a plain suppression cell. Its result is a standard
// serializable type, so it crosses the worker pipe and the journal.
RunSpec killer_cell(const std::string& sentinel) {
  return custom_spec("killer-cell", [sentinel](const RunSpec&) -> scenario::RunResultPtr {
    const int fd = ::open(sentinel.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      ::close(fd);
      ::kill(::getpid(), SIGKILL);
    }
    return scenario::run(quick_suppression(ControllerKind::Pox, false));
  });
}

// The same cell without the kill: the deterministic reference.
RunSpec killer_cell_reference() {
  return custom_spec("killer-cell", [](const RunSpec&) -> scenario::RunResultPtr {
    return scenario::run(quick_suppression(ControllerKind::Pox, false));
  });
}

TEST(DistributedFaults, SigkilledWorkerIsRespawnedAndCellRerunCold) {
  if (!sweep::distributed_supported()) GTEST_SKIP() << "fork unsupported here";
  const std::string sentinel = temp_path("kill-sentinel");
  std::remove(sentinel.c_str());

  std::vector<RunSpec> grid = quick_grid();
  grid.insert(grid.begin() + 1, killer_cell(sentinel));
  std::vector<RunSpec> reference_grid = quick_grid();
  reference_grid.insert(reference_grid.begin() + 1, killer_cell_reference());
  const std::string reference = reference_run(reference_grid).results_json();

  const sweep::DistributedReport report = distributed_run(grid, 2);
  EXPECT_GE(report.respawns, 1u) << "the killed worker must be respawned";
  EXPECT_EQ(report.results_json(), reference)
      << "the lost cell must re-run cold with an identical outcome";
  EXPECT_EQ(report.sweep.failed(), 0u);
  std::remove(sentinel.c_str());
}

TEST(DistributedFaults, CorruptResultFrameTriggersRespawnAndRerun) {
  if (!sweep::distributed_supported()) GTEST_SKIP() << "fork unsupported here";
  const std::string sentinel = temp_path("corrupt-sentinel");
  std::remove(sentinel.c_str());
  ASSERT_EQ(::setenv("ATTAIN_TEST_CORRUPT_RESULT_FRAME", sentinel.c_str(), 1), 0);

  const std::vector<RunSpec> grid = quick_grid();
  const std::string reference = reference_run(grid).results_json();
  const sweep::DistributedReport report = distributed_run(grid, 2);

  ::unsetenv("ATTAIN_TEST_CORRUPT_RESULT_FRAME");
  EXPECT_GE(report.respawns, 1u) << "a corrupt frame must be treated as worker death";
  EXPECT_EQ(report.results_json(), reference);
  EXPECT_EQ(report.sweep.failed(), 0u);
  std::remove(sentinel.c_str());
}

TEST(DistributedFaults, TruncatedResultFrameTriggersRespawnAndRerun) {
  if (!sweep::distributed_supported()) GTEST_SKIP() << "fork unsupported here";
  const std::string sentinel = temp_path("truncate-sentinel");
  std::remove(sentinel.c_str());
  ASSERT_EQ(::setenv("ATTAIN_TEST_TRUNCATE_RESULT_FRAME", sentinel.c_str(), 1), 0);

  const std::vector<RunSpec> grid = quick_grid();
  const std::string reference = reference_run(grid).results_json();
  const sweep::DistributedReport report = distributed_run(grid, 2);

  ::unsetenv("ATTAIN_TEST_TRUNCATE_RESULT_FRAME");
  EXPECT_GE(report.respawns, 1u) << "a truncated frame must be treated as worker death";
  EXPECT_EQ(report.results_json(), reference);
  EXPECT_EQ(report.sweep.failed(), 0u);
  std::remove(sentinel.c_str());
}

#endif  // __unix__ || __APPLE__

// ---------------------------------------------------------------------------
// Resume.
// ---------------------------------------------------------------------------

#if defined(__unix__) || defined(__APPLE__)

TEST(DistributedResume, KilledCampaignResumesWithoutRerunningCompletedCells) {
  const std::vector<RunSpec> grid = quick_grid();
  const std::string path = temp_path("campaign-journal");

  sweep::DistributedOptions options;
  options.workers = 1;
  options.journal_path = path;
  const sweep::DistributedReport full = sweep::DistributedRunner(options).run(grid);
  ASSERT_EQ(full.journal_records, grid.size());
  const std::string reference = full.results_json();

  // Simulate a coordinator killed mid-campaign: chop the journal to ~60%
  // of its bytes, leaving some intact records and one torn one.
  struct stat st{};
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(st.st_size * 3 / 5)), 0);

  options.resume = true;
  const sweep::DistributedReport resumed = sweep::DistributedRunner(options).run(grid);
  EXPECT_GE(resumed.resumed_cells, 1u) << "intact journal records must be restored";
  EXPECT_LT(resumed.resumed_cells, grid.size()) << "the torn tail must re-run";
  EXPECT_EQ(resumed.journal_records, grid.size() - resumed.resumed_cells);
  EXPECT_EQ(resumed.respawns, 0u);
  EXPECT_EQ(resumed.results_json(), reference)
      << "a resumed campaign must merge byte-identically to an uninterrupted one";

  // Resuming the now-complete journal runs nothing at all.
  const sweep::DistributedReport complete = sweep::DistributedRunner(options).run(grid);
  EXPECT_EQ(complete.resumed_cells, grid.size());
  EXPECT_EQ(complete.journal_records, 0u);
  EXPECT_EQ(complete.results_json(), reference);
  std::remove(path.c_str());
}

TEST(DistributedResume, MismatchedGridThrows) {
  const std::vector<RunSpec> grid = quick_grid();
  const std::string path = temp_path("campaign-journal");
  sweep::DistributedOptions options;
  options.workers = 1;
  options.journal_path = path;
  sweep::DistributedRunner(options).run(grid);

  options.resume = true;
  std::vector<RunSpec> other = grid;
  other.pop_back();
  EXPECT_THROW(sweep::DistributedRunner(options).run(other), std::runtime_error);
  std::remove(path.c_str());
}

#endif  // __unix__ || __APPLE__

// ---------------------------------------------------------------------------
// Per-worker memory steady state.
// ---------------------------------------------------------------------------

TEST(DistributedMemory, WorkerLoopReachesAllocationSteadyState) {
  if (!sweep::distributed_supported()) GTEST_SKIP() << "fork unsupported here";
  if (!memhook::installed()) GTEST_SKIP() << "alloc hook not linked";
  // Four identical cells through one worker: after the first cell pays the
  // slab commits, the worker loop must hold a flat allocation count and a
  // flat slab reserve (mem::run_boundary() fires per item, so each cell
  // re-uses the previous cell's pages).
  const std::vector<RunSpec> grid(4, quick_suppression(ControllerKind::Pox, false));
  const sweep::DistributedReport report = distributed_run(grid, 1);
  ASSERT_EQ(report.sweep.failed(), 0u);
  const auto& cells = report.sweep.cells;
  ASSERT_EQ(cells.size(), 4u);
  for (const sweep::CellOutcome& cell : cells) {
    EXPECT_GT(cell.worker_allocations, 0u) << "workers inherit the counting allocator";
    EXPECT_GT(cell.worker_slab_reserved, 0u);
  }
  EXPECT_EQ(cells[2].worker_allocations, cells[3].worker_allocations)
      << "a repeated cell must not allocate more than the previous run";
  EXPECT_EQ(cells[2].worker_slab_reserved, cells[3].worker_slab_reserved)
      << "a repeated cell must not commit new slab blocks";
  EXPECT_LE(cells[3].worker_slab_reserved, cells[1].worker_slab_reserved * 2)
      << "the slab reserve must not grow per cell";
}

}  // namespace
}  // namespace attain
