#include "attain/dsl/compiler.hpp"

#include <gtest/gtest.h>

#include "attain/dsl/parser.hpp"
#include "scenario/enterprise.hpp"

namespace attain::dsl {
namespace {

struct Fixture {
  topo::SystemModel model = scenario::make_enterprise_model();

  Document parse(const std::string& source) { return parse_document(source, model); }

  CompiledAttack compile_first(const std::string& source) {
    const Document doc = parse(source);
    return compile(doc.attacks.at(0), model, doc.capabilities);
  }
};

TEST(Compiler, CompilesCaseStudyAttacks) {
  Fixture fx;
  const CompiledAttack suppression = fx.compile_first(scenario::flow_mod_suppression_dsl());
  EXPECT_EQ(suppression.name, "flow_mod_suppression");
  EXPECT_EQ(suppression.states.size(), 1u);
  EXPECT_EQ(suppression.start_index, 0u);
  EXPECT_EQ(suppression.states[0].rules.size(), 4u);
  // Derived requirement: ReadMessage (type conditional) + DropMessage.
  EXPECT_TRUE(suppression.states[0].rules[0].required.contains(model::Capability::ReadMessage));
  EXPECT_TRUE(suppression.states[0].rules[0].required.contains(model::Capability::DropMessage));

  const CompiledAttack interruption = fx.compile_first(scenario::connection_interruption_dsl());
  EXPECT_EQ(interruption.states.size(), 3u);
  EXPECT_EQ(interruption.state_index("sigma3"), 2u);
  EXPECT_THROW(interruption.state_index("sigma9"), CompileError);
}

TEST(Compiler, RejectsMissingCapabilities) {
  Fixture fx;
  // Attacker granted only metadata reading; the attack needs DropMessage.
  const std::string source = R"(
attacker { on (c1, s1) grant { ReadMessageMetadata, ReadMessage }; }
attack demo {
  start state s {
    rule phi on (c1, s1) { when msg.type == FLOW_MOD; do { drop(msg); } }
  }
}
)";
  try {
    fx.compile_first(source);
    FAIL() << "expected CompileError";
  } catch (const CompileError& err) {
    EXPECT_NE(std::string(err.what()).find("DropMessage"), std::string::npos);
  }
}

TEST(Compiler, RejectsConditionalCapabilitiesToo) {
  Fixture fx;
  // DropMessage granted but the conditional reads the payload (type).
  const std::string source = R"(
attacker { on (c1, s1) grant { DropMessage }; }
attack demo {
  start state s {
    rule phi on (c1, s1) { when msg.type == FLOW_MOD; do { drop(msg); } }
  }
}
)";
  EXPECT_THROW(fx.compile_first(source), CompileError);
}

TEST(Compiler, MetadataOnlyAttackCompilesUnderTlsGrant) {
  Fixture fx;
  const std::string source = R"(
attacker { on (c1, s1) grant tls; }
attack demo {
  start state s {
    rule phi on (c1, s1) { when msg.length >= 8; do { drop(msg); } }
  }
}
)";
  EXPECT_NO_THROW(fx.compile_first(source));
}

TEST(Compiler, PayloadAttackFailsUnderTlsGrant) {
  Fixture fx;
  const std::string source = R"(
attacker { on (c1, s1) grant tls; }
attack demo {
  start state s {
    rule phi on (c1, s1) { when msg.type == FLOW_MOD; do { drop(msg); } }
  }
}
)";
  EXPECT_THROW(fx.compile_first(source), CompileError);
}

TEST(Compiler, TlsConnectionRejectsExcessiveGrant) {
  // The system model marks connections TLS; granting Γ_NoTLS on them is
  // inconsistent with an uncompromised PKI (§IV-C2).
  scenario::EnterpriseOptions options;
  options.tls = true;
  topo::SystemModel model = scenario::make_enterprise_model(options);
  const std::string source = R"(
attacker { on (c1, s1) grant no_tls; }
attack demo {
  start state s {
    rule phi on (c1, s1) { when msg.length >= 8; do { drop(msg); } }
  }
}
)";
  const Document doc = parse_document(source, model);
  EXPECT_THROW(compile(doc.attacks.at(0), model, doc.capabilities), CompileError);

  CompileOptions lax;
  lax.enforce_tls_consistency = false;
  EXPECT_NO_THROW(compile(doc.attacks.at(0), model, doc.capabilities, lax));
}

TEST(Compiler, RejectsRuleOnNonexistentConnection) {
  // (c1, s1) exists but a hand-built rule can target a non-N_C pair.
  Fixture fx;
  const Document doc = fx.parse(scenario::flow_mod_suppression_dsl());
  lang::Attack attack = doc.attacks.at(0);
  // Point a rule at a connection with a bogus switch index.
  attack.states[0].rules[0].connection.sw = EntityId{EntityKind::Switch, 99};
  EXPECT_THROW(compile(attack, fx.model, doc.capabilities), CompileError);
}

TEST(Compiler, StructuralErrorsSurfaceAsCompileErrors) {
  Fixture fx;
  const Document doc = fx.parse(scenario::flow_mod_suppression_dsl());
  lang::Attack attack = doc.attacks.at(0);
  attack.start_state = "missing";
  EXPECT_THROW(compile(attack, fx.model, doc.capabilities), CompileError);
}

TEST(Compiler, DequesCarriedIntoCompiledAttack) {
  Fixture fx;
  const std::string source = R"(
attacker { on (c1, s1) grant no_tls; }
attack demo {
  deque counter = [0];
  deque store;
  start state s {
    rule phi on (c1, s1) {
      when examine_front(counter) < 3;
      do { prepend(counter, examine_front(counter) + 1); append(store, msg); }
    }
  }
}
)";
  const CompiledAttack compiled = fx.compile_first(source);
  ASSERT_EQ(compiled.deques.size(), 2u);
  EXPECT_EQ(compiled.deques[0].first, "counter");
  EXPECT_EQ(compiled.deques[1].first, "store");
}

}  // namespace
}  // namespace attain::dsl
