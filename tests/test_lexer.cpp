#include "attain/dsl/lexer.hpp"

#include <gtest/gtest.h>

namespace attain::dsl {
namespace {

std::vector<TokenKind> kinds(const std::string& source) {
  std::vector<TokenKind> out;
  for (const Token& t : lex(source)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInputYieldsEnd) {
  const auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::End);
}

TEST(Lexer, IdentifiersAndKeywordsAreIdents) {
  const auto tokens = lex("attack sigma1 drop_msg _x");
  ASSERT_EQ(tokens.size(), 5u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(tokens[i].kind, TokenKind::Ident);
  EXPECT_EQ(tokens[0].text, "attack");
  EXPECT_EQ(tokens[3].text, "_x");
}

TEST(Lexer, IntegersDecimalAndHex) {
  const auto tokens = lex("42 0x1f 0");
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].int_value, 31);
  EXPECT_EQ(tokens[2].int_value, 0);
  EXPECT_EQ(tokens[0].kind, TokenKind::Integer);
}

TEST(Lexer, FloatsRequireDigitsBothSides) {
  const auto tokens = lex("2.5 10");
  EXPECT_EQ(tokens[0].kind, TokenKind::Float);
  EXPECT_DOUBLE_EQ(tokens[0].float_value, 2.5);
  EXPECT_EQ(tokens[1].kind, TokenKind::Integer);
}

TEST(Lexer, DotAfterIntegerWithoutDigitIsSeparate) {
  // `msg.field` style: `1.x` lexes as Integer Dot Ident.
  const auto k = kinds("1.x");
  EXPECT_EQ(k, (std::vector<TokenKind>{TokenKind::Integer, TokenKind::Dot, TokenKind::Ident,
                                       TokenKind::End}));
}

TEST(Lexer, StringsWithEscapes) {
  const auto tokens = lex("\"match.nw_src\" \"a\\\"b\"");
  EXPECT_EQ(tokens[0].kind, TokenKind::String);
  EXPECT_EQ(tokens[0].text, "match.nw_src");
  EXPECT_EQ(tokens[1].text, "a\"b");
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(lex("\"oops"), LexError);
  EXPECT_THROW(lex("\"multi\nline\""), LexError);
}

TEST(Lexer, OperatorsAndPunctuation) {
  const auto k = kinds("( ) { } [ ] , ; : . -> -- == != <= >= < > = + -");
  const std::vector<TokenKind> expected{
      TokenKind::LParen, TokenKind::RParen, TokenKind::LBrace,  TokenKind::RBrace,
      TokenKind::LBracket, TokenKind::RBracket, TokenKind::Comma, TokenKind::Semicolon,
      TokenKind::Colon,  TokenKind::Dot,    TokenKind::Arrow,   TokenKind::DashDash,
      TokenKind::EqEq,   TokenKind::NotEq,  TokenKind::Le,      TokenKind::Ge,
      TokenKind::Lt,     TokenKind::Gt,     TokenKind::Assign,  TokenKind::Plus,
      TokenKind::Minus,  TokenKind::End};
  EXPECT_EQ(k, expected);
}

TEST(Lexer, CommentsSkippedToEndOfLine) {
  const auto tokens = lex("a # comment with \"stuff\" -> ;\nb");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, TracksLineAndColumn) {
  const auto tokens = lex("a\n  bb");
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[0].column, 1u);
  EXPECT_EQ(tokens[1].line, 2u);
  EXPECT_EQ(tokens[1].column, 3u);
}

TEST(Lexer, UnexpectedCharacterThrowsWithPosition) {
  try {
    lex("a\n  @");
    FAIL() << "expected LexError";
  } catch (const LexError& err) {
    EXPECT_EQ(err.line, 2u);
    EXPECT_EQ(err.column, 3u);
  }
}

TEST(Lexer, BangRequiresEquals) {
  EXPECT_THROW(lex("!x"), LexError);
  EXPECT_EQ(kinds("!=")[0], TokenKind::NotEq);
}

}  // namespace
}  // namespace attain::dsl
