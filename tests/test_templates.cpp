// Attack state-graph templates (§X future work): every template must emit
// DSL that parses, compiles against the enterprise model, and has the
// advertised structure.
#include "attain/dsl/templates.hpp"

#include <gtest/gtest.h>

#include "attain/dsl/compiler.hpp"
#include "attain/dsl/parser.hpp"
#include "scenario/enterprise.hpp"

namespace attain::dsl::templates {
namespace {

struct Fixture {
  topo::SystemModel model = scenario::make_enterprise_model();

  CompiledAttack compile_template(const std::string& source) {
    const Document doc = parse_document(source, model);
    return compile(doc.attacks.at(0), model, doc.capabilities);
  }
};

TEST(Templates, SuppressTypeGeneratesFig10Shape) {
  Fixture fx;
  const std::string source = suppress_type(
      {{"c1", "s1"}, {"c1", "s2"}, {"c1", "s3"}, {"c1", "s4"}}, "FLOW_MOD");
  const CompiledAttack attack = fx.compile_template(source);
  ASSERT_EQ(attack.states.size(), 1u);
  EXPECT_EQ(attack.states[0].rules.size(), 4u);
  EXPECT_EQ(attack.source.absorbing_states().size(), 1u);
  // Matches the hand-written Fig. 10 description rule-for-rule.
  const Document hand = parse_document(scenario::flow_mod_suppression_dsl(), fx.model);
  EXPECT_EQ(hand.attacks[0].states[0].rules.size(), attack.states[0].rules.size());
}

TEST(Templates, SuppressTypeForOtherMessageTypes) {
  Fixture fx;
  for (const char* type : {"PACKET_IN", "PACKET_OUT", "ECHO_REQUEST", "BARRIER_REQUEST"}) {
    const CompiledAttack attack = fx.compile_template(suppress_type({{"c1", "s1"}}, type));
    EXPECT_EQ(attack.states[0].rules.size(), 1u) << type;
  }
}

TEST(Templates, CountGateHasSingleStateAndCounter) {
  Fixture fx;
  const CompiledAttack attack =
      fx.compile_template(count_gate({"c1", "s2"}, "FLOW_MOD", 7));
  EXPECT_EQ(attack.states.size(), 1u);
  ASSERT_EQ(attack.deques.size(), 1u);
  EXPECT_EQ(attack.deques[0].first, "counter");
  EXPECT_EQ(attack.states[0].rules.size(), 2u);
}

TEST(Templates, DelayAllCompilesUnderTlsGrant) {
  // The template grants only Γ_TLS — delaying needs no payload access.
  Fixture fx;
  const CompiledAttack attack =
      fx.compile_template(delay_all({{"c1", "s1"}, {"c1", "s3"}}, 0.25));
  EXPECT_EQ(attack.states[0].rules.size(), 2u);
  const auto& rule = attack.states[0].rules[0].rule;
  const auto* delay = std::get_if<lang::ActDelay>(&rule.actions.at(0));
  ASSERT_NE(delay, nullptr);
  EXPECT_EQ(delay->delay, seconds(0.25));
  EXPECT_FALSE(attack.states[0].rules[0].required.contains(model::Capability::ReadMessage));
}

TEST(Templates, InterruptAfterGeneratesFig12Shape) {
  Fixture fx;
  const CompiledAttack attack =
      fx.compile_template(interrupt_after({"c1", "s2"}, "FLOW_MOD"));
  ASSERT_EQ(attack.states.size(), 3u);
  const lang::StateGraph graph = attack.source.graph();
  EXPECT_EQ(graph.edges.size(), 2u);
  EXPECT_EQ(attack.source.absorbing_states(), std::vector<std::string>{"sigma3"});
}

TEST(Templates, StochasticDropUsesRandAndTlsGrant) {
  Fixture fx;
  const CompiledAttack attack = fx.compile_template(stochastic_drop({"c1", "s1"}, 30));
  ASSERT_EQ(attack.states.size(), 1u);
  const std::string rendered = attack.states[0].rules[0].rule.conditional->to_string();
  EXPECT_NE(rendered.find("rand(100)"), std::string::npos);
  EXPECT_NE(rendered.find("30"), std::string::npos);
}

TEST(Templates, FuzzTypeRequiresFuzzCapability) {
  Fixture fx;
  const CompiledAttack attack = fx.compile_template(fuzz_type({"c1", "s1"}, "FLOW_MOD", 12));
  const auto& rule = attack.states[0].rules.at(0);
  EXPECT_TRUE(rule.required.contains(model::Capability::FuzzMessage));
  const auto* fuzz = std::get_if<lang::ActFuzz>(&rule.rule.actions.at(0));
  ASSERT_NE(fuzz, nullptr);
  EXPECT_EQ(fuzz->bit_flips, 12u);
}

TEST(Templates, ReplayAmplifierUnrollsReplayCount) {
  Fixture fx;
  const CompiledAttack attack =
      fx.compile_template(replay_amplifier({"c1", "s1"}, "ECHO_REQUEST", 3));
  ASSERT_EQ(attack.states.size(), 1u);
  // amplify rule: pass + 3 peek-sends.
  const auto& amplify = attack.states[0].rules.at(0).rule;
  EXPECT_EQ(amplify.actions.size(), 4u);
  unsigned peeks = 0;
  for (const auto& action : amplify.actions) {
    if (const auto* send = std::get_if<lang::ActSendStored>(&action)) {
      EXPECT_FALSE(send->remove);  // peek variants keep the batch stored
      ++peeks;
    }
  }
  EXPECT_EQ(peeks, 3u);
}

TEST(Templates, GeneratedSourcesAreReadableDsl) {
  // Every template's output should be printable, commented DSL a human can
  // audit — check a couple of markers rather than exact text.
  const std::string source = count_gate({"c1", "s2"}, "FLOW_MOD", 5);
  EXPECT_NE(source.find("attacker {"), std::string::npos);
  EXPECT_NE(source.find("attack count_gate_5"), std::string::npos);
  EXPECT_NE(source.find("deque counter = [0];"), std::string::npos);
}

}  // namespace
}  // namespace attain::dsl::templates
