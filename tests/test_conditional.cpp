#include "attain/lang/conditional.hpp"

#include <gtest/gtest.h>

#include "ofp/codec.hpp"

namespace attain::lang {
namespace {

InFlightMessage sample_message(bool tls = false) {
  InFlightMessage msg;
  msg.connection = ConnectionId{EntityId{EntityKind::Controller, 0}, EntityId{EntityKind::Switch, 1}};
  msg.direction = Direction::ControllerToSwitch;
  msg.source = msg.connection.controller;
  msg.destination = msg.connection.sw;
  msg.timestamp = 5 * kSecond;
  msg.id = 17;
  ofp::FlowMod mod;
  mod.match = ofp::Match::wildcard_all();
  mod.match.nw_src = pkt::Ipv4Address::parse("10.0.0.2");
  mod.match.set_nw_src_wild_bits(0);
  mod.buffer_id = 42;
  msg.envelope = chan::Envelope(ofp::make_message(9, std::move(mod)));
  msg.tls = tls;
  if (tls) msg.envelope.seal();
  return msg;
}

EvalContext ctx_for(const InFlightMessage& msg, const DequeStore* store = nullptr) {
  EvalContext ctx;
  ctx.message = &msg;
  ctx.storage = store;
  return ctx;
}

TEST(Conditional, MetadataProperties) {
  const InFlightMessage msg = sample_message();
  const EvalContext ctx = ctx_for(msg);
  EXPECT_TRUE(evaluate_bool(
      *Expr::binary(BinaryOp::Eq, Expr::prop(Property::Source),
                    Expr::literal_int(entity_value(msg.connection.controller))),
      ctx));
  EXPECT_TRUE(evaluate_bool(*Expr::binary(BinaryOp::Eq, Expr::prop(Property::Id),
                                          Expr::literal_int(17)),
                            ctx));
  EXPECT_TRUE(evaluate_bool(*Expr::binary(BinaryOp::Eq, Expr::prop(Property::Timestamp),
                                          Expr::literal_int(5 * kSecond)),
                            ctx));
  EXPECT_TRUE(evaluate_bool(*Expr::binary(BinaryOp::Gt, Expr::prop(Property::Length),
                                          Expr::literal_int(0)),
                            ctx));
  EXPECT_TRUE(evaluate_bool(*Expr::binary(BinaryOp::Eq, Expr::prop(Property::Direction),
                                          Expr::literal_int(1)),
                            ctx));
}

TEST(Conditional, TypeAndFieldAccess) {
  const InFlightMessage msg = sample_message();
  const EvalContext ctx = ctx_for(msg);
  EXPECT_TRUE(evaluate_bool(
      *Expr::binary(BinaryOp::Eq, Expr::prop(Property::Type),
                    Expr::literal_int(static_cast<std::int64_t>(ofp::MsgType::FlowMod))),
      ctx));
  EXPECT_TRUE(evaluate_bool(
      *Expr::binary(BinaryOp::Eq, Expr::field("buffer_id"), Expr::literal_int(42)), ctx));
  EXPECT_TRUE(evaluate_bool(
      *Expr::binary(BinaryOp::Eq, Expr::field("match.nw_src"),
                    Expr::literal_int(pkt::Ipv4Address::parse("10.0.0.2").value)),
      ctx));
}

TEST(Conditional, LogicalConnectives) {
  const InFlightMessage msg = sample_message();
  const EvalContext ctx = ctx_for(msg);
  const ExprPtr t = Expr::literal_int(1);
  const ExprPtr f = Expr::literal_int(0);
  EXPECT_TRUE(evaluate_bool(*(t && t), ctx));
  EXPECT_FALSE(evaluate_bool(*(t && f), ctx));
  EXPECT_TRUE(evaluate_bool(*(f || t), ctx));
  EXPECT_FALSE(evaluate_bool(*(f || f), ctx));
  EXPECT_TRUE(evaluate_bool(*Expr::negate(f), ctx));
  EXPECT_FALSE(evaluate_bool(*Expr::negate(t), ctx));
}

TEST(Conditional, ShortCircuitGuardsFieldAccess) {
  // `msg.type == PACKET_IN and msg.field("in_port") == 1` on a FLOW_MOD:
  // the left conjunct is false, so the missing field is never evaluated.
  const InFlightMessage msg = sample_message();
  const EvalContext ctx = ctx_for(msg);
  const ExprPtr guarded = Expr::binary(
      BinaryOp::And,
      Expr::binary(BinaryOp::Eq, Expr::prop(Property::Type),
                   Expr::literal_int(static_cast<std::int64_t>(ofp::MsgType::PacketIn))),
      Expr::binary(BinaryOp::Eq, Expr::field("in_port"), Expr::literal_int(1)));
  EXPECT_FALSE(evaluate_bool(*guarded, ctx));

  // Unguarded access to a missing field throws EvalError.
  EXPECT_THROW(
      evaluate_bool(*Expr::binary(BinaryOp::Eq, Expr::field("in_port"), Expr::literal_int(1)),
                    ctx),
      EvalError);
}

TEST(Conditional, InSetMembership) {
  const InFlightMessage msg = sample_message();
  const EvalContext ctx = ctx_for(msg);
  const std::int64_t h3 = pkt::Ipv4Address::parse("10.0.0.3").value;
  const std::int64_t h2 = pkt::Ipv4Address::parse("10.0.0.2").value;
  EXPECT_TRUE(evaluate_bool(
      *Expr::in_set(Expr::field("match.nw_src"), {Value{h2}, Value{h3}}), ctx));
  EXPECT_FALSE(evaluate_bool(*Expr::in_set(Expr::field("match.nw_src"), {Value{h3}}), ctx));
  EXPECT_FALSE(evaluate_bool(*Expr::in_set(Expr::field("match.nw_src"), {}), ctx));
}

TEST(Conditional, ArithmeticAndComparisons) {
  const InFlightMessage msg = sample_message();
  const EvalContext ctx = ctx_for(msg);
  const ExprPtr sum = Expr::binary(BinaryOp::Add, Expr::literal_int(2), Expr::literal_int(3));
  EXPECT_EQ(std::get<std::int64_t>(evaluate(*sum, ctx)), 5);
  const ExprPtr diff = Expr::binary(BinaryOp::Sub, Expr::literal_int(2), Expr::literal_int(3));
  EXPECT_EQ(std::get<std::int64_t>(evaluate(*diff, ctx)), -1);
  EXPECT_TRUE(evaluate_bool(*Expr::binary(BinaryOp::Le, sum, Expr::literal_int(5)), ctx));
  EXPECT_FALSE(evaluate_bool(*Expr::binary(BinaryOp::Lt, sum, Expr::literal_int(5)), ctx));
  EXPECT_TRUE(evaluate_bool(*Expr::binary(BinaryOp::Ge, sum, diff), ctx));
  EXPECT_TRUE(evaluate_bool(*Expr::binary(BinaryOp::Ne, sum, diff), ctx));
}

TEST(Conditional, DequeReads) {
  DequeStore store;
  store.declare("counter", {Value{std::int64_t{3}}});
  store.declare("log", {Value{std::int64_t{1}}, Value{std::int64_t{9}}});
  const InFlightMessage msg = sample_message();
  const EvalContext ctx = ctx_for(msg, &store);
  EXPECT_TRUE(evaluate_bool(
      *Expr::binary(BinaryOp::Eq, Expr::deque_front("counter"), Expr::literal_int(3)), ctx));
  EXPECT_TRUE(evaluate_bool(
      *Expr::binary(BinaryOp::Eq, Expr::deque_end("log"), Expr::literal_int(9)), ctx));
  EXPECT_TRUE(evaluate_bool(
      *Expr::binary(BinaryOp::Eq, Expr::deque_len("log"), Expr::literal_int(2)), ctx));
  // Counter threshold idiom from §VIII-B.
  EXPECT_TRUE(evaluate_bool(
      *Expr::binary(BinaryOp::Ge, Expr::deque_front("counter"), Expr::literal_int(3)), ctx));
}

TEST(Conditional, TlsHidesPayload) {
  const InFlightMessage msg = sample_message(/*tls=*/true);
  const EvalContext ctx = ctx_for(msg);
  // Metadata remains visible.
  EXPECT_TRUE(evaluate_bool(*Expr::binary(BinaryOp::Gt, Expr::prop(Property::Length),
                                          Expr::literal_int(0)),
                            ctx));
  // Payload access throws.
  EXPECT_THROW(evaluate(*Expr::prop(Property::Type), ctx), EvalError);
  EXPECT_THROW(evaluate(*Expr::field("buffer_id"), ctx), EvalError);
}

TEST(Conditional, TypeMismatchThrows) {
  const InFlightMessage msg = sample_message();
  const EvalContext ctx = ctx_for(msg);
  const ExprPtr bad = Expr::binary(BinaryOp::Add, Expr::literal_int(1),
                                   Expr::literal_value(Value{std::string("x")}));
  EXPECT_THROW(evaluate(*bad, ctx), EvalError);
  // String compares equal/unequal fine.
  EXPECT_TRUE(evaluate_bool(*Expr::binary(BinaryOp::Eq,
                                          Expr::literal_value(Value{std::string("a")}),
                                          Expr::literal_value(Value{std::string("a")})),
                            ctx));
  // A bare string is not a boolean.
  EXPECT_THROW(evaluate_bool(*Expr::literal_value(Value{std::string("a")}), ctx), EvalError);
}

TEST(Conditional, RequiredCapabilities) {
  using model::Capability;
  // Metadata-only expression.
  const ExprPtr meta = Expr::binary(BinaryOp::Eq, Expr::prop(Property::Source),
                                    Expr::literal_int(1));
  EXPECT_EQ(required_capabilities(*meta), model::CapabilitySet{Capability::ReadMessageMetadata});
  // Type requires payload reading.
  const ExprPtr type = Expr::binary(BinaryOp::Eq, Expr::prop(Property::Type),
                                    Expr::literal_int(14));
  EXPECT_EQ(required_capabilities(*type), model::CapabilitySet{Capability::ReadMessage});
  // Mixed expression unions both.
  const ExprPtr mixed = Expr::binary(BinaryOp::And, meta, Expr::in_set(Expr::field("buffer_id"), {}));
  const model::CapabilitySet expected{Capability::ReadMessageMetadata, Capability::ReadMessage};
  EXPECT_EQ(required_capabilities(*mixed), expected);
  // Pure literals and deque reads need nothing.
  EXPECT_TRUE(required_capabilities(*Expr::literal_int(1)).empty());
  EXPECT_TRUE(required_capabilities(*Expr::deque_front("d")).empty());
  // Not() passes through.
  EXPECT_EQ(required_capabilities(*Expr::negate(type)),
            model::CapabilitySet{Capability::ReadMessage});
}

TEST(Conditional, ToStringRendersStructure) {
  const ExprPtr e = Expr::binary(
      BinaryOp::And,
      Expr::binary(BinaryOp::Eq, Expr::prop(Property::Type), Expr::literal_int(14)),
      Expr::in_set(Expr::field("match.nw_dst"), {Value{std::int64_t{5}}}));
  const std::string s = e->to_string();
  EXPECT_NE(s.find("msg.type"), std::string::npos);
  EXPECT_NE(s.find("and"), std::string::npos);
  EXPECT_NE(s.find("match.nw_dst"), std::string::npos);
  EXPECT_NE(s.find("in {"), std::string::npos);
}

TEST(Conditional, UndecodablePayloadThrowsOnAccess) {
  InFlightMessage msg = sample_message();
  Bytes garbage = msg.envelope.wire();
  garbage[0] = 0x09;  // the wire bytes were fuzzed into garbage
  msg.envelope = chan::Envelope(std::move(garbage));
  const EvalContext ctx = ctx_for(msg);
  EXPECT_THROW(evaluate(*Expr::prop(Property::Type), ctx), EvalError);
  EXPECT_TRUE(evaluate_bool(*Expr::binary(BinaryOp::Gt, Expr::prop(Property::Length),
                                          Expr::literal_int(0)),
                            ctx));
}

}  // namespace
}  // namespace attain::lang
