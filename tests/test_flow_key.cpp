// FlowKey: the precomputed packet 12-tuple the fast path hashes on. The
// load-bearing property is equivalence with Match::matches on the raw
// packet — if these ever diverge, the classifier and the seed scan pick
// different entries.
#include "packet/flow_key.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.hpp"
#include "ofp/match.hpp"

namespace attain::pkt {
namespace {

Packet random_packet(Rng& rng) {
  const std::uint64_t src = 1 + rng.next_below(6);
  const std::uint64_t dst = 1 + rng.next_below(6);
  switch (rng.next_below(3)) {
    case 0:
      return make_arp_request(MacAddress::from_u64(src),
                              Ipv4Address{static_cast<std::uint32_t>(src)},
                              Ipv4Address{static_cast<std::uint32_t>(dst)});
    case 1:
      return make_icmp_echo(MacAddress::from_u64(src), MacAddress::from_u64(dst),
                            Ipv4Address{static_cast<std::uint32_t>(src)},
                            Ipv4Address{static_cast<std::uint32_t>(dst)},
                            rng.chance(0.5) ? IcmpType::EchoRequest : IcmpType::EchoReply, 1,
                            static_cast<std::uint16_t>(rng.next_below(100)), 0);
    default: {
      TcpHeader tcp;
      tcp.src_port = static_cast<std::uint16_t>(1024 + rng.next_below(1000));
      tcp.dst_port = static_cast<std::uint16_t>(rng.next_below(1024));
      return make_tcp(MacAddress::from_u64(src), MacAddress::from_u64(dst),
                      Ipv4Address{static_cast<std::uint32_t>(src)},
                      Ipv4Address{static_cast<std::uint32_t>(dst)}, tcp,
                      static_cast<std::uint32_t>(rng.next_below(1400)), 0);
    }
  }
}

ofp::Match generalize(ofp::Match m, Rng& rng) {
  const std::uint32_t bool_bits[] = {ofp::wc::kInPort, ofp::wc::kDlSrc,     ofp::wc::kDlDst,
                                     ofp::wc::kDlVlan, ofp::wc::kDlVlanPcp, ofp::wc::kDlType,
                                     ofp::wc::kNwTos,  ofp::wc::kNwProto,   ofp::wc::kTpSrc,
                                     ofp::wc::kTpDst};
  for (const std::uint32_t bit : bool_bits) {
    if (rng.chance(0.4)) m.wildcards |= bit;
  }
  if (rng.chance(0.4)) {
    m.set_nw_src_wild_bits(m.nw_src_wild_bits() + static_cast<std::uint32_t>(rng.next_below(33)));
  }
  if (rng.chance(0.4)) {
    m.set_nw_dst_wild_bits(m.nw_dst_wild_bits() + static_cast<std::uint32_t>(rng.next_below(33)));
  }
  return m;
}

TEST(FlowKey, MatchOnKeyAgreesWithMatchOnPacket) {
  // The central equivalence: for every (match, packet, port),
  //   m.matches(p, port) == m.matches(FlowKey::from_packet(p, port)).
  Rng rng(7101);
  for (int i = 0; i < 5000; ++i) {
    const Packet p = random_packet(rng);
    const std::uint16_t port = static_cast<std::uint16_t>(1 + rng.next_below(4));
    const FlowKey key = FlowKey::from_packet(p, port);
    // Test against matches derived from this packet, a different packet,
    // and generalizations of both — hits and misses alike must agree.
    const Packet other = random_packet(rng);
    const ofp::Match candidates[] = {
        ofp::Match::from_packet(p, port),
        ofp::Match::from_packet(other, port),
        generalize(ofp::Match::from_packet(p, port), rng),
        generalize(ofp::Match::from_packet(other, rng.chance(0.5) ? port : port + 1), rng),
        ofp::Match::wildcard_all(),
    };
    for (const ofp::Match& m : candidates) {
      EXPECT_EQ(m.matches(p, port), m.matches(key))
          << m.to_string() << " vs " << p.summary() << " port " << port;
    }
  }
}

TEST(FlowKey, ExactProjectionRoundTrips) {
  // An exact match built from a packet projects back to that packet's key,
  // so tier-1 hash probes find exactly the entries that would match. Only
  // L4-bearing packets yield fully exact matches (ARP wildcards tos/ports
  // per OF1.0), so gate on is_exact and make sure we saw plenty.
  Rng rng(7202);
  int exact_count = 0;
  for (int i = 0; i < 2000; ++i) {
    const Packet p = random_packet(rng);
    const std::uint16_t port = static_cast<std::uint16_t>(1 + rng.next_below(4));
    const ofp::Match m = ofp::Match::from_packet(p, port);
    const FlowKey key = FlowKey::from_packet(p, port);
    if (m.is_exact()) {
      ++exact_count;
      EXPECT_EQ(m.key_projection(), key);
    }
    // Exact or not, the masked projection of a from_packet match equals the
    // masked packet key — the invariant tier-2 bucket probes rely on.
    EXPECT_EQ(ofp::masked_flow_key(m.key_projection(), m.wildcards),
              ofp::masked_flow_key(key, m.wildcards));
  }
  EXPECT_GT(exact_count, 500);
}

TEST(FlowKey, MaskedProjectionEqualityMatchesStrictEquality) {
  // For two matches with the same wildcard mask: strictly_equals iff their
  // masked key projections are equal. This is what lets FlowTable resolve
  // strict FLOW_MODs with a single hash probe.
  Rng rng(7303);
  int same_mask = 0;
  for (int i = 0; i < 5000; ++i) {
    const ofp::Match a = generalize(ofp::Match::from_packet(random_packet(rng), 1), rng);
    const ofp::Match b = rng.chance(0.3)
                             ? a
                             : generalize(ofp::Match::from_packet(random_packet(rng), 1), rng);
    if (a.wildcards != b.wildcards) continue;
    ++same_mask;
    const FlowKey ka = ofp::masked_flow_key(a.key_projection(), a.wildcards);
    const FlowKey kb = ofp::masked_flow_key(b.key_projection(), b.wildcards);
    EXPECT_EQ(a.strictly_equals(b), ka == kb) << a.to_string() << " vs " << b.to_string();
  }
  EXPECT_GT(same_mask, 1000);
}

TEST(FlowKey, EqualKeysHashEqual) {
  Rng rng(7404);
  for (int i = 0; i < 1000; ++i) {
    const Packet p = random_packet(rng);
    const FlowKey a = FlowKey::from_packet(p, 3);
    const FlowKey b = FlowKey::from_packet(p, 3);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_NE(a, FlowKey::from_packet(p, 4));  // in_port participates
  }
}

TEST(FlowKey, HashSpreadsDistinctKeys) {
  // Not a strict requirement, but a collapse here would silently turn the
  // hash maps back into linear scans; guard against gross regressions.
  Rng rng(7505);
  std::unordered_set<std::size_t> hashes;
  std::unordered_set<FlowKey, FlowKeyHash> keys;
  for (int i = 0; i < 4000; ++i) {
    keys.insert(FlowKey::from_packet(random_packet(rng),
                                     static_cast<std::uint16_t>(1 + rng.next_below(8))));
  }
  for (const FlowKey& k : keys) hashes.insert(k.hash());
  EXPECT_GT(hashes.size(), keys.size() * 9 / 10);
}

}  // namespace
}  // namespace attain::pkt
