#include "ofp/fuzz.hpp"

#include <gtest/gtest.h>

#include "ofp/codec.hpp"

namespace attain::ofp {
namespace {

Message sample() {
  FlowMod mod;
  mod.match = Match::wildcard_all();
  mod.actions = output_to(std::uint16_t{2});
  return make_message(7, std::move(mod));
}

TEST(Fuzz, PreservesHeaderByDefault) {
  Bytes frame = encode(sample());
  const Bytes original = frame;
  Rng rng(1);
  fuzz_frame(frame, rng);
  ASSERT_EQ(frame.size(), original.size());
  for (std::size_t i = 0; i < kHeaderSize; ++i) {
    EXPECT_EQ(frame[i], original[i]) << "header byte " << i << " mutated";
  }
  EXPECT_NE(frame, original);
}

TEST(Fuzz, FlipsRequestedNumberOfBitsAtMost) {
  Bytes frame = encode(sample());
  const Bytes original = frame;
  Rng rng(2);
  FuzzOptions options;
  options.bit_flips = 3;
  fuzz_frame(frame, rng, options);
  unsigned differing_bits = 0;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    differing_bits += static_cast<unsigned>(__builtin_popcount(frame[i] ^ original[i]));
  }
  EXPECT_LE(differing_bits, 3u);  // same bit may flip twice
  EXPECT_GE(differing_bits, 1u);
}

TEST(Fuzz, DeterministicForSeed) {
  Bytes a = encode(sample());
  Bytes b = a;
  Rng rng_a(99);
  Rng rng_b(99);
  fuzz_frame(a, rng_a);
  fuzz_frame(b, rng_b);
  EXPECT_EQ(a, b);
}

TEST(Fuzz, HeaderMutationAllowedWhenRequested) {
  // With preserve_header off, eventually a header byte changes.
  Rng rng(5);
  FuzzOptions options;
  options.preserve_header = false;
  options.bit_flips = 4;
  bool header_changed = false;
  for (int i = 0; i < 50 && !header_changed; ++i) {
    Bytes frame = encode(sample());
    const Bytes original = frame;
    fuzz_frame(frame, rng, options);
    for (std::size_t b = 0; b < kHeaderSize; ++b) {
      if (frame[b] != original[b]) header_changed = true;
    }
  }
  EXPECT_TRUE(header_changed);
}

TEST(Fuzz, FuzzMessageEitherDecodesOrReturnsNullopt) {
  Rng rng(3);
  int decoded = 0;
  int garbage = 0;
  for (int i = 0; i < 200; ++i) {
    const auto result = fuzz_message(sample(), rng);
    if (result) {
      ++decoded;
      // Whatever came back must re-encode without crashing.
      EXPECT_NO_THROW(encode(*result));
    } else {
      ++garbage;
    }
  }
  EXPECT_GT(decoded, 0);  // most FLOW_MOD mutations still parse
}

/// Property: the decoder must never crash (only throw DecodeError) on any
/// random mutation of any representative frame — the switch and controller
/// rely on this when the injector fuzzes payloads.
TEST(Fuzz, DecoderTotalOnRandomMutations) {
  Rng rng(1234);
  const Message messages[] = {
      sample(),
      make_message(1, PacketIn{}),
      make_message(2, EchoRequest{{1, 2, 3, 4}}),
      make_message(3, StatsRequest{0, DescStatsRequest{}}),
      make_message(4, FeaturesReply{}),
  };
  for (const Message& m : messages) {
    for (int i = 0; i < 500; ++i) {
      Bytes frame = encode(m);
      FuzzOptions options;
      options.preserve_header = false;
      options.bit_flips = 1 + static_cast<unsigned>(rng.next_below(16));
      fuzz_frame(frame, rng, options);
      try {
        const Message out = decode(frame);
        (void)out;
      } catch (const DecodeError&) {
        // acceptable: malformed input rejected cleanly
      }
    }
  }
  SUCCEED();
}

TEST(Fuzz, EmptyBodyFrameUntouched) {
  Bytes frame = encode(make_message(1, Hello{}));  // 8-byte header only
  const Bytes original = frame;
  Rng rng(8);
  fuzz_frame(frame, rng);  // nothing mutable beyond the header
  EXPECT_EQ(frame, original);
}

}  // namespace
}  // namespace attain::ofp
