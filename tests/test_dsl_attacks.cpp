// Checks that the case-study attack descriptions (Figs. 10 and 12) parse,
// compile, and carry exactly the structure the paper diagrams.
#include <gtest/gtest.h>

#include "attain/dsl/codegen.hpp"
#include "attain/dsl/parser.hpp"
#include "scenario/enterprise.hpp"

namespace attain::scenario {
namespace {

struct Fixture {
  topo::SystemModel model = make_enterprise_model();

  dsl::CompiledAttack compile_dsl(const std::string& source) {
    const dsl::Document doc = dsl::parse_document(source, model);
    return dsl::compile(doc.attacks.at(0), model, doc.capabilities);
  }
};

TEST(Fig10, SuppressionHasOneStateFourRules) {
  Fixture fx;
  const dsl::CompiledAttack attack = fx.compile_dsl(flow_mod_suppression_dsl());
  ASSERT_EQ(attack.states.size(), 1u);
  EXPECT_EQ(attack.states[0].name, "sigma1");
  ASSERT_EQ(attack.states[0].rules.size(), 4u);
  // One rule per control-plane connection in N_C.
  std::set<std::string> switches;
  for (const auto& compiled : attack.states[0].rules) {
    switches.insert(fx.model.name_of(compiled.rule.connection.sw));
    EXPECT_EQ(fx.model.name_of(compiled.rule.connection.controller), "c1");
    ASSERT_EQ(compiled.rule.actions.size(), 1u);
    EXPECT_TRUE(std::holds_alternative<lang::ActDrop>(compiled.rule.actions[0]));
  }
  EXPECT_EQ(switches, (std::set<std::string>{"s1", "s2", "s3", "s4"}));
  // σ1 is start and absorbing, with no end states (Fig. 10b).
  EXPECT_EQ(attack.source.absorbing_states(), std::vector<std::string>{"sigma1"});
  EXPECT_TRUE(attack.source.end_states().empty());
}

TEST(Fig12, InterruptionHasThreeChainedStates) {
  Fixture fx;
  const dsl::CompiledAttack attack = fx.compile_dsl(connection_interruption_dsl());
  ASSERT_EQ(attack.states.size(), 3u);
  EXPECT_EQ(attack.states[attack.start_index].name, "sigma1");
  // Every rule targets (c1, s2): the DMZ chokepoint.
  for (const auto& state : attack.states) {
    for (const auto& compiled : state.rules) {
      EXPECT_EQ(fx.model.name_of(compiled.rule.connection.sw), "s2");
    }
  }
  // Graph: σ1→σ2→σ3, σ3 absorbing.
  const lang::StateGraph graph = attack.source.graph();
  ASSERT_EQ(graph.edges.size(), 2u);
  EXPECT_EQ(graph.edges[0].from, "sigma1");
  EXPECT_EQ(graph.edges[0].to, "sigma2");
  EXPECT_EQ(graph.edges[1].from, "sigma2");
  EXPECT_EQ(graph.edges[1].to, "sigma3");
  EXPECT_EQ(attack.source.absorbing_states(), std::vector<std::string>{"sigma3"});
}

TEST(Fig12, Phi2RequiresPayloadCapabilities) {
  Fixture fx;
  const dsl::CompiledAttack attack = fx.compile_dsl(connection_interruption_dsl());
  const auto& phi2 = attack.states[1].rules.at(0);
  EXPECT_TRUE(phi2.required.contains(model::Capability::ReadMessage));
  EXPECT_TRUE(phi2.required.contains(model::Capability::DropMessage));
  // φ3 needs only metadata + drop.
  const auto& phi3 = attack.states[2].rules.at(0);
  EXPECT_TRUE(phi3.required.contains(model::Capability::ReadMessageMetadata));
  EXPECT_FALSE(phi3.required.contains(model::Capability::ReadMessage));
}

TEST(Fig5, TrivialPassAllIsSingleEndState) {
  Fixture fx;
  // The trivial attack needs no attacker grant at all.
  const dsl::Document doc = dsl::parse_document(trivial_pass_all_dsl(), fx.model);
  const dsl::CompiledAttack attack =
      dsl::compile(doc.attacks.at(0), fx.model, doc.capabilities);
  ASSERT_EQ(attack.states.size(), 1u);
  EXPECT_TRUE(attack.states[0].rules.empty());
  EXPECT_EQ(attack.source.end_states(), std::vector<std::string>{"sigma1"});
}

TEST(CaseStudy, SuppressionCompilesUnderNoTlsButNotTls) {
  // The suppression attack reads message types (payload), so it must not
  // compile when the attacker holds only Γ_TLS.
  Fixture fx;
  std::string tls_source = flow_mod_suppression_dsl();
  // Downgrade every grant from no_tls to tls.
  std::size_t pos = 0;
  while ((pos = tls_source.find("grant no_tls", pos)) != std::string::npos) {
    tls_source.replace(pos, 12, "grant tls");
  }
  const dsl::Document doc = dsl::parse_document(tls_source, fx.model);
  EXPECT_THROW(dsl::compile(doc.attacks.at(0), fx.model, doc.capabilities),
               dsl::CompileError);
}

TEST(CaseStudy, ListingsGenerateForBothAttacks) {
  Fixture fx;
  for (const std::string& source :
       {flow_mod_suppression_dsl(), connection_interruption_dsl()}) {
    const dsl::CompiledAttack attack = fx.compile_dsl(source);
    const std::string listing = dsl::generate_listing(attack, fx.model);
    EXPECT_NE(listing.find("gamma"), std::string::npos);
    const std::string dot = dsl::generate_state_graph_dot(attack);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
  }
}

}  // namespace
}  // namespace attain::scenario
