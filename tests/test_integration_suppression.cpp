// End-to-end reproduction checks for the §VII-B flow-modification
// suppression experiment (Fig. 11): POX suffers a full denial of service
// (buffer_id rides the FLOW_MOD), Floodlight and Ryu degrade but survive
// (the packet rides a separate PACKET_OUT).
#include <gtest/gtest.h>

#include "scenario/experiment.hpp"

namespace attain::scenario {
namespace {

SuppressionConfig quick_config(ControllerKind kind, bool attack) {
  SuppressionConfig config;
  config.controller = kind;
  config.attack_enabled = attack;
  config.ping_trials = 8;
  config.iperf_trials = 1;
  config.iperf_duration = 1 * kSecond;
  config.iperf_gap = 1 * kSecond;
  return config;
}

TEST(Suppression, PoxDeniedOfService) {
  const SuppressionResult result = run_flow_mod_suppression(quick_config(ControllerKind::Pox, true));
  // The paper's asterisk: zero throughput, infinite latency.
  EXPECT_EQ(result.ping.received(), 0u);
  EXPECT_FALSE(result.mean_latency_ms().has_value());
  EXPECT_FALSE(result.mean_throughput_mbps().has_value());
  EXPECT_GT(result.flow_mods_suppressed, 0u);
}

TEST(Suppression, FloodlightDegradedButAlive) {
  const SuppressionResult attacked =
      run_flow_mod_suppression(quick_config(ControllerKind::Floodlight, true));
  const SuppressionResult baseline =
      run_flow_mod_suppression(quick_config(ControllerKind::Floodlight, false));

  // Alive: pings answered, some bytes move.
  EXPECT_GE(attacked.ping.received(), attacked.ping.sent() - 1);
  ASSERT_TRUE(attacked.mean_throughput_mbps().has_value());
  ASSERT_TRUE(baseline.mean_throughput_mbps().has_value());
  // Degraded: at least 5x throughput loss and higher latency than baseline.
  EXPECT_LT(*attacked.mean_throughput_mbps(), *baseline.mean_throughput_mbps() / 5.0);
  ASSERT_TRUE(attacked.mean_latency_ms().has_value());
  ASSERT_TRUE(baseline.mean_latency_ms().has_value());
  EXPECT_GT(*attacked.mean_latency_ms(), *baseline.mean_latency_ms());
}

TEST(Suppression, RyuDegradedButAlive) {
  const SuppressionResult attacked =
      run_flow_mod_suppression(quick_config(ControllerKind::Ryu, true));
  const SuppressionResult baseline =
      run_flow_mod_suppression(quick_config(ControllerKind::Ryu, false));
  EXPECT_GE(attacked.ping.received(), attacked.ping.sent() - 1);
  ASSERT_TRUE(attacked.mean_throughput_mbps().has_value());
  EXPECT_LT(*attacked.mean_throughput_mbps(), *baseline.mean_throughput_mbps() / 5.0);
}

TEST(Suppression, ControlPlaneTrafficAmplified) {
  // §VII-B: for n data packets, suppression can generate up to 2n+2 extra
  // controller messages. Compare PACKET_IN counts with and without the
  // attack on the same workload.
  const SuppressionResult attacked =
      run_flow_mod_suppression(quick_config(ControllerKind::Floodlight, true));
  const SuppressionResult baseline =
      run_flow_mod_suppression(quick_config(ControllerKind::Floodlight, false));
  EXPECT_GT(attacked.packet_ins, 10 * baseline.packet_ins);
  EXPECT_GT(attacked.packet_outs, baseline.packet_outs);
}

TEST(Suppression, BaselineUnaffectedByInjectorPresence) {
  // Without the attack the injector still proxies everything; throughput
  // must match the no-injector expectations (line rate).
  const SuppressionResult baseline =
      run_flow_mod_suppression(quick_config(ControllerKind::Pox, false));
  ASSERT_TRUE(baseline.mean_throughput_mbps().has_value());
  EXPECT_GT(*baseline.mean_throughput_mbps(), 60.0);
  EXPECT_EQ(baseline.ping.received(), baseline.ping.sent());
  EXPECT_EQ(baseline.flow_mods_suppressed, 0u);
}

TEST(Suppression, SuppressedCountMatchesObservedFlowMods) {
  const SuppressionResult attacked =
      run_flow_mod_suppression(quick_config(ControllerKind::Floodlight, true));
  // Every observed FLOW_MOD on any connection was dropped.
  EXPECT_EQ(attacked.flow_mods_observed, attacked.flow_mods_suppressed);
  EXPECT_GT(attacked.flow_mods_observed, 0u);
}

}  // namespace
}  // namespace attain::scenario
