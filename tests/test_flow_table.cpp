#include "swsim/flow_table.hpp"

#include <gtest/gtest.h>

namespace attain::swsim {
namespace {

pkt::Packet sample_packet() {
  pkt::TcpHeader tcp;
  tcp.src_port = 1000;
  tcp.dst_port = 80;
  return pkt::make_tcp(pkt::MacAddress::from_u64(1), pkt::MacAddress::from_u64(2),
                       pkt::Ipv4Address::parse("10.0.0.1"), pkt::Ipv4Address::parse("10.0.0.2"),
                       tcp, 100, 0);
}

ofp::FlowMod add_mod(ofp::Match match, std::uint16_t priority, std::uint16_t out_port) {
  ofp::FlowMod mod;
  mod.match = std::move(match);
  mod.command = ofp::FlowModCommand::Add;
  mod.priority = priority;
  mod.actions = ofp::output_to(out_port);
  return mod;
}

std::uint16_t output_port(const FlowEntry& entry) {
  return std::get<ofp::ActionOutput>(entry.actions.at(0)).port;
}

TEST(FlowTable, AddAndMatch) {
  FlowTable table;
  const pkt::Packet p = sample_packet();
  table.apply(add_mod(ofp::Match::from_packet(p, 1), 100, 2), 0);
  const FlowEntry* hit = table.match_packet(p, 1, 10, p.wire_size());
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(output_port(*hit), 2);
  EXPECT_EQ(hit->packet_count, 1u);
  EXPECT_EQ(hit->byte_count, p.wire_size());
  EXPECT_EQ(hit->last_used, 10);
  EXPECT_EQ(table.match_packet(p, 3, 10, p.wire_size()), nullptr);  // wrong in_port
}

TEST(FlowTable, HigherPriorityWinsAmongWildcards) {
  FlowTable table;
  const pkt::Packet p = sample_packet();
  table.apply(add_mod(ofp::Match::wildcard_all(), 10, 7), 0);
  ofp::Match l2 = ofp::Match::l2_only(1, p.eth.src, p.eth.dst);
  table.apply(add_mod(l2, 20, 8), 0);
  const FlowEntry* hit = table.match_packet(p, 1, 0, 100);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(output_port(*hit), 8);
}

TEST(FlowTable, ExactMatchOutranksHigherPriorityWildcard) {
  // OF1.0 §3.4: exact entries have precedence over wildcard entries.
  FlowTable table;
  const pkt::Packet p = sample_packet();
  table.apply(add_mod(ofp::Match::wildcard_all(), 0xffff, 7), 0);
  table.apply(add_mod(ofp::Match::from_packet(p, 1), 1, 9), 0);
  const FlowEntry* hit = table.match_packet(p, 1, 0, 100);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(output_port(*hit), 9);
}

TEST(FlowTable, AddReplacesIdenticalMatchAndResetsCounters) {
  FlowTable table;
  const pkt::Packet p = sample_packet();
  table.apply(add_mod(ofp::Match::from_packet(p, 1), 100, 2), 0);
  table.match_packet(p, 1, 5, 100);
  table.apply(add_mod(ofp::Match::from_packet(p, 1), 100, 3), 10);
  EXPECT_EQ(table.size(), 1u);
  const FlowEntry* hit = table.match_packet(p, 1, 20, 100);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(output_port(*hit), 3);
  EXPECT_EQ(hit->packet_count, 1u);  // counters reset by replacement
}

TEST(FlowTable, ModifyPreservesCounters) {
  FlowTable table;
  const pkt::Packet p = sample_packet();
  table.apply(add_mod(ofp::Match::from_packet(p, 1), 100, 2), 0);
  table.match_packet(p, 1, 5, 100);

  ofp::FlowMod modify = add_mod(ofp::Match::wildcard_all(), 100, 4);
  modify.command = ofp::FlowModCommand::Modify;  // non-strict: subsumes all
  table.apply(modify, 10);
  const FlowEntry* hit = table.match_packet(p, 1, 20, 100);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(output_port(*hit), 4);
  EXPECT_EQ(hit->packet_count, 2u);  // counter preserved across modify
}

TEST(FlowTable, ModifyWithNoMatchBehavesLikeAdd) {
  FlowTable table;
  ofp::FlowMod modify = add_mod(ofp::Match::wildcard_all(), 100, 4);
  modify.command = ofp::FlowModCommand::Modify;
  table.apply(modify, 0);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, DeleteNonStrictSubsumes) {
  FlowTable table;
  const pkt::Packet p = sample_packet();
  table.apply(add_mod(ofp::Match::from_packet(p, 1), 100, 2), 0);
  table.apply(add_mod(ofp::Match::l2_only(1, p.eth.src, p.eth.dst), 50, 3), 0);
  ofp::FlowMod del;
  del.command = ofp::FlowModCommand::Delete;
  del.match = ofp::Match::wildcard_all();
  const auto removed = table.apply(del, 1);
  EXPECT_EQ(removed.size(), 2u);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(removed[0].reason, ofp::FlowRemovedReason::Delete);
}

TEST(FlowTable, DeleteStrictRequiresExactMatchAndPriority) {
  FlowTable table;
  const pkt::Packet p = sample_packet();
  table.apply(add_mod(ofp::Match::from_packet(p, 1), 100, 2), 0);

  ofp::FlowMod del;
  del.command = ofp::FlowModCommand::DeleteStrict;
  del.match = ofp::Match::from_packet(p, 1);
  del.priority = 99;  // wrong priority
  table.apply(del, 1);
  EXPECT_EQ(table.size(), 1u);
  del.priority = 100;
  table.apply(del, 1);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, DeleteWithOutPortFilter) {
  FlowTable table;
  const pkt::Packet p = sample_packet();
  table.apply(add_mod(ofp::Match::from_packet(p, 1), 100, 2), 0);
  table.apply(add_mod(ofp::Match::l2_only(1, p.eth.src, p.eth.dst), 50, 3), 0);

  ofp::FlowMod del;
  del.command = ofp::FlowModCommand::Delete;
  del.match = ofp::Match::wildcard_all();
  del.out_port = 3;
  table.apply(del, 1);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(output_port(table.entries()[0]), 2);
}

TEST(FlowTable, IdleTimeoutExpiresUnusedEntries) {
  FlowTable table;
  const pkt::Packet p = sample_packet();
  ofp::FlowMod mod = add_mod(ofp::Match::from_packet(p, 1), 100, 2);
  mod.idle_timeout = 10;
  table.apply(mod, 0);

  EXPECT_TRUE(table.expire(9 * kSecond).empty());
  table.match_packet(p, 1, 9 * kSecond, 100);  // refresh idle timer
  EXPECT_TRUE(table.expire(18 * kSecond).empty());
  const auto expired = table.expire(19 * kSecond);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].reason, ofp::FlowRemovedReason::IdleTimeout);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, HardTimeoutExpiresRegardlessOfUse) {
  FlowTable table;
  const pkt::Packet p = sample_packet();
  ofp::FlowMod mod = add_mod(ofp::Match::from_packet(p, 1), 100, 2);
  mod.hard_timeout = 5;
  table.apply(mod, 0);
  table.match_packet(p, 1, 4 * kSecond, 100);
  const auto expired = table.expire(5 * kSecond);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].reason, ofp::FlowRemovedReason::HardTimeout);
}

TEST(FlowTable, ZeroTimeoutsArePermanent) {
  FlowTable table;
  table.apply(add_mod(ofp::Match::wildcard_all(), 1, 2), 0);
  EXPECT_TRUE(table.expire(1000 * kSecond).empty());
  EXPECT_EQ(table.size(), 1u);
}

}  // namespace
}  // namespace attain::swsim
