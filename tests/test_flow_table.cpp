// Flow-table semantics, run identically against the two-tier classifier
// (FlowTable) and the seed's linear-scan reference (NaiveFlowTable) via a
// typed suite: every OF1.0 behaviour here is part of the shared contract
// the differential fuzz test (test_flow_table_differential.cpp) also
// enforces at scale.
#include "swsim/flow_table.hpp"

#include <gtest/gtest.h>

#include "swsim/naive_flow_table.hpp"

namespace attain::swsim {
namespace {

pkt::Packet sample_packet() {
  pkt::TcpHeader tcp;
  tcp.src_port = 1000;
  tcp.dst_port = 80;
  return pkt::make_tcp(pkt::MacAddress::from_u64(1), pkt::MacAddress::from_u64(2),
                       pkt::Ipv4Address::parse("10.0.0.1"), pkt::Ipv4Address::parse("10.0.0.2"),
                       tcp, 100, 0);
}

ofp::FlowMod add_mod(ofp::Match match, std::uint16_t priority, std::uint16_t out_port) {
  ofp::FlowMod mod;
  mod.match = std::move(match);
  mod.command = ofp::FlowModCommand::Add;
  mod.priority = priority;
  mod.actions = ofp::output_to(out_port);
  return mod;
}

std::uint16_t output_port(const FlowEntry& entry) {
  return std::get<ofp::ActionOutput>(entry.actions.at(0)).port;
}

template <typename Table>
class FlowTableContract : public ::testing::Test {
 protected:
  Table table_;
};

using TableImpls = ::testing::Types<FlowTable, NaiveFlowTable>;
TYPED_TEST_SUITE(FlowTableContract, TableImpls);

TYPED_TEST(FlowTableContract, AddAndMatch) {
  auto& table = this->table_;
  const pkt::Packet p = sample_packet();
  table.apply(add_mod(ofp::Match::from_packet(p, 1), 100, 2), 0);
  const FlowEntry* hit = table.match_packet(p, 1, 10, p.wire_size());
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(output_port(*hit), 2);
  EXPECT_EQ(hit->packet_count, 1u);
  EXPECT_EQ(hit->byte_count, p.wire_size());
  EXPECT_EQ(hit->last_used, 10);
  EXPECT_EQ(table.match_packet(p, 3, 10, p.wire_size()), nullptr);  // wrong in_port
}

TYPED_TEST(FlowTableContract, HigherPriorityWinsAmongWildcards) {
  auto& table = this->table_;
  const pkt::Packet p = sample_packet();
  table.apply(add_mod(ofp::Match::wildcard_all(), 10, 7), 0);
  ofp::Match l2 = ofp::Match::l2_only(1, p.eth.src, p.eth.dst);
  table.apply(add_mod(l2, 20, 8), 0);
  const FlowEntry* hit = table.match_packet(p, 1, 0, 100);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(output_port(*hit), 8);
}

TYPED_TEST(FlowTableContract, ExactMatchOutranksHigherPriorityWildcard) {
  // OF1.0 §3.4: exact entries have precedence over wildcard entries.
  auto& table = this->table_;
  const pkt::Packet p = sample_packet();
  table.apply(add_mod(ofp::Match::wildcard_all(), 0xffff, 7), 0);
  table.apply(add_mod(ofp::Match::from_packet(p, 1), 1, 9), 0);
  const FlowEntry* hit = table.match_packet(p, 1, 0, 100);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(output_port(*hit), 9);
}

TYPED_TEST(FlowTableContract, EqualPriorityOverlapResolvesInInsertionOrder) {
  // OF1.0 leaves the equal-priority overlapping-wildcard case undefined;
  // our determinism guarantee pins it to insertion order (earliest
  // installed wins), and both implementations must agree.
  auto& table = this->table_;
  const pkt::Packet p = sample_packet();
  // Two distinct wildcard matches, same priority, both covering p.
  ofp::Match l2 = ofp::Match::l2_only(1, p.eth.src, p.eth.dst);
  ofp::Match port_only;
  port_only.wildcards = ofp::wc::kAll & ~ofp::wc::kInPort;
  port_only.in_port = 1;
  table.apply(add_mod(l2, 42, 5), 0);
  table.apply(add_mod(port_only, 42, 6), 0);
  const FlowEntry* hit = table.match_packet(p, 1, 0, 100);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(output_port(*hit), 5);  // first-installed entry wins the tie

  // Same two entries, opposite install order, in a fresh table.
  TypeParam reversed;
  reversed.apply(add_mod(port_only, 42, 6), 0);
  reversed.apply(add_mod(l2, 42, 5), 0);
  const FlowEntry* hit2 = reversed.match_packet(p, 1, 0, 100);
  ASSERT_NE(hit2, nullptr);
  EXPECT_EQ(output_port(*hit2), 6);
}

TYPED_TEST(FlowTableContract, ReplacedEntryKeepsItsInsertionRank) {
  // ADD onto an identical (match, priority) replaces in place: the entry
  // keeps its original position in the tie-break order.
  auto& table = this->table_;
  const pkt::Packet p = sample_packet();
  ofp::Match l2 = ofp::Match::l2_only(1, p.eth.src, p.eth.dst);
  ofp::Match port_only;
  port_only.wildcards = ofp::wc::kAll & ~ofp::wc::kInPort;
  port_only.in_port = 1;
  table.apply(add_mod(l2, 42, 5), 0);
  table.apply(add_mod(port_only, 42, 6), 0);
  table.apply(add_mod(l2, 42, 7), 10);  // replace the first entry
  EXPECT_EQ(table.size(), 2u);
  const FlowEntry* hit = table.match_packet(p, 1, 20, 100);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(output_port(*hit), 7);  // still first in insertion order
}

TYPED_TEST(FlowTableContract, AddReplacesIdenticalMatchAndResetsCounters) {
  auto& table = this->table_;
  const pkt::Packet p = sample_packet();
  table.apply(add_mod(ofp::Match::from_packet(p, 1), 100, 2), 0);
  table.match_packet(p, 1, 5, 100);
  table.apply(add_mod(ofp::Match::from_packet(p, 1), 100, 3), 10);
  EXPECT_EQ(table.size(), 1u);
  const FlowEntry* hit = table.match_packet(p, 1, 20, 100);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(output_port(*hit), 3);
  EXPECT_EQ(hit->packet_count, 1u);  // counters reset by replacement
}

TYPED_TEST(FlowTableContract, ModifyPreservesCounters) {
  auto& table = this->table_;
  const pkt::Packet p = sample_packet();
  table.apply(add_mod(ofp::Match::from_packet(p, 1), 100, 2), 0);
  table.match_packet(p, 1, 5, 100);

  ofp::FlowMod modify = add_mod(ofp::Match::wildcard_all(), 100, 4);
  modify.command = ofp::FlowModCommand::Modify;  // non-strict: subsumes all
  table.apply(modify, 10);
  const FlowEntry* hit = table.match_packet(p, 1, 20, 100);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(output_port(*hit), 4);
  EXPECT_EQ(hit->packet_count, 2u);  // counter preserved across modify
}

TYPED_TEST(FlowTableContract, ModifyWithNoMatchBehavesLikeAdd) {
  auto& table = this->table_;
  ofp::FlowMod modify = add_mod(ofp::Match::wildcard_all(), 100, 4);
  modify.command = ofp::FlowModCommand::Modify;
  table.apply(modify, 0);
  EXPECT_EQ(table.size(), 1u);
}

TYPED_TEST(FlowTableContract, ModifyStrictWithNoMatchBehavesLikeAdd) {
  auto& table = this->table_;
  const pkt::Packet p = sample_packet();
  table.apply(add_mod(ofp::Match::from_packet(p, 1), 100, 2), 0);

  // Same match, different priority: strict modify misses, falls back to ADD.
  ofp::FlowMod modify = add_mod(ofp::Match::from_packet(p, 1), 99, 4);
  modify.command = ofp::FlowModCommand::ModifyStrict;
  table.apply(modify, 5);
  EXPECT_EQ(table.size(), 2u);

  // Exact (match, priority) hit: actions swap, no new entry, counters kept.
  table.match_packet(p, 1, 6, 100);
  ofp::FlowMod strict_hit = add_mod(ofp::Match::from_packet(p, 1), 100, 8);
  strict_hit.command = ofp::FlowModCommand::ModifyStrict;
  table.apply(strict_hit, 7);
  EXPECT_EQ(table.size(), 2u);
  const FlowEntry* hit = table.match_packet(p, 1, 8, 100);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(output_port(*hit), 8);
}

TYPED_TEST(FlowTableContract, DeleteNonStrictSubsumes) {
  auto& table = this->table_;
  const pkt::Packet p = sample_packet();
  table.apply(add_mod(ofp::Match::from_packet(p, 1), 100, 2), 0);
  table.apply(add_mod(ofp::Match::l2_only(1, p.eth.src, p.eth.dst), 50, 3), 0);
  ofp::FlowMod del;
  del.command = ofp::FlowModCommand::Delete;
  del.match = ofp::Match::wildcard_all();
  const auto removed = table.apply(del, 1);
  EXPECT_EQ(removed.size(), 2u);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(removed[0].reason, ofp::FlowRemovedReason::Delete);
}

TYPED_TEST(FlowTableContract, DeleteStrictRequiresExactMatchAndPriority) {
  auto& table = this->table_;
  const pkt::Packet p = sample_packet();
  table.apply(add_mod(ofp::Match::from_packet(p, 1), 100, 2), 0);

  ofp::FlowMod del;
  del.command = ofp::FlowModCommand::DeleteStrict;
  del.match = ofp::Match::from_packet(p, 1);
  del.priority = 99;  // wrong priority
  table.apply(del, 1);
  EXPECT_EQ(table.size(), 1u);
  del.priority = 100;
  table.apply(del, 1);
  EXPECT_EQ(table.size(), 0u);
}

TYPED_TEST(FlowTableContract, DeleteWithOutPortFilter) {
  auto& table = this->table_;
  const pkt::Packet p = sample_packet();
  table.apply(add_mod(ofp::Match::from_packet(p, 1), 100, 2), 0);
  table.apply(add_mod(ofp::Match::l2_only(1, p.eth.src, p.eth.dst), 50, 3), 0);

  ofp::FlowMod del;
  del.command = ofp::FlowModCommand::Delete;
  del.match = ofp::Match::wildcard_all();
  del.out_port = 3;
  table.apply(del, 1);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(output_port(*table.entries()[0]), 2);
}

TYPED_TEST(FlowTableContract, DeleteStrictHonoursOutPortFilter) {
  auto& table = this->table_;
  const pkt::Packet p = sample_packet();
  table.apply(add_mod(ofp::Match::from_packet(p, 1), 100, 2), 0);

  ofp::FlowMod del;
  del.command = ofp::FlowModCommand::DeleteStrict;
  del.match = ofp::Match::from_packet(p, 1);
  del.priority = 100;
  del.out_port = 9;  // entry outputs to 2, so the filter blocks the delete
  table.apply(del, 1);
  EXPECT_EQ(table.size(), 1u);
  del.out_port = 2;
  table.apply(del, 1);
  EXPECT_EQ(table.size(), 0u);
}

TYPED_TEST(FlowTableContract, IdleTimeoutExpiresUnusedEntries) {
  auto& table = this->table_;
  const pkt::Packet p = sample_packet();
  ofp::FlowMod mod = add_mod(ofp::Match::from_packet(p, 1), 100, 2);
  mod.idle_timeout = 10;
  table.apply(mod, 0);

  EXPECT_TRUE(table.expire(9 * kSecond).empty());
  table.match_packet(p, 1, 9 * kSecond, 100);  // refresh idle timer
  EXPECT_TRUE(table.expire(18 * kSecond).empty());
  const auto expired = table.expire(19 * kSecond);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].reason, ofp::FlowRemovedReason::IdleTimeout);
  EXPECT_EQ(table.size(), 0u);
}

TYPED_TEST(FlowTableContract, HardTimeoutExpiresRegardlessOfUse) {
  auto& table = this->table_;
  const pkt::Packet p = sample_packet();
  ofp::FlowMod mod = add_mod(ofp::Match::from_packet(p, 1), 100, 2);
  mod.hard_timeout = 5;
  table.apply(mod, 0);
  table.match_packet(p, 1, 4 * kSecond, 100);
  const auto expired = table.expire(5 * kSecond);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].reason, ofp::FlowRemovedReason::HardTimeout);
}

TYPED_TEST(FlowTableContract, HardTimeoutWinsWhenBothExpireInTheSameTick) {
  // Idle and hard deadlines elapse by the same expiry tick: the reason must
  // be HardTimeout (the hard check runs first), deterministically in both
  // implementations.
  auto& table = this->table_;
  const pkt::Packet p = sample_packet();
  ofp::FlowMod mod = add_mod(ofp::Match::from_packet(p, 1), 100, 2);
  mod.idle_timeout = 3;
  mod.hard_timeout = 5;
  table.apply(mod, 0);
  table.match_packet(p, 1, 2 * kSecond, 100);  // idle deadline moves to t=5s too
  const auto expired = table.expire(5 * kSecond);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].reason, ofp::FlowRemovedReason::HardTimeout);
  EXPECT_EQ(table.size(), 0u);
}

TYPED_TEST(FlowTableContract, ExpiryReportsInInsertionOrder) {
  auto& table = this->table_;
  const pkt::Packet p = sample_packet();
  // Three entries expiring in the same tick, installed in a known order.
  for (std::uint16_t i = 0; i < 3; ++i) {
    ofp::FlowMod mod = add_mod(ofp::Match::l2_only(static_cast<std::uint16_t>(i + 1),
                                                   p.eth.src, p.eth.dst),
                               100, static_cast<std::uint16_t>(10 + i));
    mod.hard_timeout = 1;
    table.apply(mod, 0);
  }
  const auto expired = table.expire(2 * kSecond);
  ASSERT_EQ(expired.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(output_port(expired[i].entry), 10 + i);
  }
}

TYPED_TEST(FlowTableContract, ZeroTimeoutsArePermanent) {
  auto& table = this->table_;
  table.apply(add_mod(ofp::Match::wildcard_all(), 1, 2), 0);
  EXPECT_TRUE(table.expire(1000 * kSecond).empty());
  EXPECT_EQ(table.size(), 1u);
}

// --- classifier-specific structure checks (not part of the shared contract)

TEST(FlowTableClassifier, BucketCountTracksDistinctMasks) {
  FlowTable table;
  const pkt::Packet p = sample_packet();
  table.apply(add_mod(ofp::Match::from_packet(p, 1), 100, 2), 0);  // exact: no bucket
  EXPECT_EQ(table.distinct_wildcard_masks(), 0u);
  table.apply(add_mod(ofp::Match::l2_only(1, p.eth.src, p.eth.dst), 50, 3), 0);
  table.apply(add_mod(ofp::Match::l2_only(2, p.eth.dst, p.eth.src), 50, 4), 0);  // same mask
  EXPECT_EQ(table.distinct_wildcard_masks(), 1u);
  table.apply(add_mod(ofp::Match::wildcard_all(), 1, 5), 0);
  EXPECT_EQ(table.distinct_wildcard_masks(), 2u);

  ofp::FlowMod del;
  del.command = ofp::FlowModCommand::Delete;
  del.match = ofp::Match::wildcard_all();
  table.apply(del, 1);
  EXPECT_EQ(table.distinct_wildcard_masks(), 0u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTableClassifier, PermanentEntriesNeverEnterTheWheel) {
  FlowTable table;
  const pkt::Packet p = sample_packet();
  table.apply(add_mod(ofp::Match::from_packet(p, 1), 100, 2), 0);
  EXPECT_EQ(table.pending_timers(), 0u);
  ofp::FlowMod timed = add_mod(ofp::Match::l2_only(1, p.eth.src, p.eth.dst), 50, 3);
  timed.idle_timeout = 5;
  table.apply(timed, 0);
  EXPECT_EQ(table.pending_timers(), 1u);
}

TEST(FlowTableClassifier, CapacityRejectsNewAddsButNotReplacements) {
  FlowTable table;
  table.set_capacity(2);
  const pkt::Packet p = sample_packet();
  table.apply(add_mod(ofp::Match::from_packet(p, 1), 100, 2), 0);
  table.apply(add_mod(ofp::Match::l2_only(1, p.eth.src, p.eth.dst), 50, 3), 0);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.adds_rejected(), 0u);

  // A third distinct flow bounces off the cap.
  table.apply(add_mod(ofp::Match::wildcard_all(), 10, 4), 0);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.adds_rejected(), 1u);

  // OF1.0 ADD-replace of a resident entry still succeeds at capacity.
  table.apply(add_mod(ofp::Match::from_packet(p, 1), 100, 9), 0);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.adds_rejected(), 1u);
  const FlowEntry* hit = table.match_packet(p, 1, 0, 100);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(output_port(*hit), 9);
}

TEST(FlowTableClassifier, FreedSlotsReopenTheCap) {
  FlowTable table;
  table.set_capacity(1);
  const pkt::Packet p = sample_packet();
  table.apply(add_mod(ofp::Match::from_packet(p, 1), 100, 2), 0);
  ofp::FlowMod del;
  del.command = ofp::FlowModCommand::Delete;
  del.match = ofp::Match::wildcard_all();
  table.apply(del, 1);
  table.apply(add_mod(ofp::Match::wildcard_all(), 10, 4), 2);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.adds_rejected(), 0u);
}

TEST(FlowTableClassifier, KeyOverloadAgreesWithPacketOverload) {
  FlowTable table;
  const pkt::Packet p = sample_packet();
  table.apply(add_mod(ofp::Match::from_packet(p, 1), 100, 2), 0);
  const pkt::FlowKey key = pkt::FlowKey::from_packet(p, 1);
  const FlowEntry* by_key = table.match_packet(key, 10, 100);
  ASSERT_NE(by_key, nullptr);
  const FlowEntry* by_packet = table.match_packet(p, 1, 11, 100);
  EXPECT_EQ(by_key, by_packet);
  EXPECT_EQ(by_packet->packet_count, 2u);
}

}  // namespace
}  // namespace attain::swsim
