#include "attain/inject/executor.hpp"

#include <gtest/gtest.h>

#include "attain/dsl/parser.hpp"
#include "ofp/codec.hpp"
#include "scenario/enterprise.hpp"

namespace attain::inject {
namespace {

/// Builds executors from DSL snippets against the enterprise model.
struct Fixture {
  topo::SystemModel model = scenario::make_enterprise_model();
  monitor::Monitor monitor;
  Rng rng{1};
  model::CapabilityMap capabilities;
  std::optional<dsl::CompiledAttack> attack;

  AttackExecutor make(const std::string& source) {
    const dsl::Document doc = dsl::parse_document(source, model);
    capabilities = doc.capabilities;
    attack = dsl::compile(doc.attacks.at(0), model, capabilities);
    return AttackExecutor(*attack, capabilities, monitor, rng);
  }

  lang::InFlightMessage message(const char* sw_name, lang::Direction direction,
                                const ofp::Message& payload) {
    lang::InFlightMessage msg;
    msg.connection = ConnectionId{model.require("c1"), model.require(sw_name)};
    msg.direction = direction;
    if (direction == lang::Direction::ControllerToSwitch) {
      msg.source = msg.connection.controller;
      msg.destination = msg.connection.sw;
    } else {
      msg.source = msg.connection.sw;
      msg.destination = msg.connection.controller;
    }
    msg.id = ++next_id;
    msg.envelope = chan::Envelope(payload);
    return msg;
  }

  ofp::Message flow_mod() {
    ofp::FlowMod mod;
    mod.match = ofp::Match::wildcard_all();
    mod.actions = ofp::output_to(std::uint16_t{2});
    return ofp::make_message(5, std::move(mod));
  }

  std::uint64_t next_id{0};
};

TEST(Executor, StartsAtStartState) {
  Fixture fx;
  AttackExecutor exec = fx.make(scenario::connection_interruption_dsl());
  EXPECT_EQ(exec.current_state_name(), "sigma1");
}

TEST(Executor, PassesUnmatchedMessages) {
  Fixture fx;
  AttackExecutor exec = fx.make(scenario::flow_mod_suppression_dsl());
  const auto msg = fx.message("s1", lang::Direction::SwitchToController,
                              ofp::make_message(1, ofp::EchoRequest{}));
  const ExecutionResult result = exec.process(msg);
  ASSERT_EQ(result.outgoing.size(), 1u);
  EXPECT_EQ(result.outgoing[0].message.id, msg.id);
  EXPECT_EQ(exec.stats().rules_matched, 0u);
}

TEST(Executor, DropsMatchedFlowMods) {
  Fixture fx;
  AttackExecutor exec = fx.make(scenario::flow_mod_suppression_dsl());
  const auto msg = fx.message("s2", lang::Direction::ControllerToSwitch, fx.flow_mod());
  const ExecutionResult result = exec.process(msg);
  EXPECT_TRUE(result.outgoing.empty());
  EXPECT_EQ(exec.stats().rules_matched, 1u);
  EXPECT_EQ(fx.monitor.count(monitor::EventKind::MessageDropped), 1u);
}

TEST(Executor, RulesBindToTheirConnection) {
  // The suppression attack has one rule per connection; a FLOW_MOD on
  // (c1, s3) must be caught by φ3 only — and a rule for (c1, s1) must not
  // evaluate against it.
  Fixture fx;
  const std::string source = R"(
attacker { on (c1, s1) grant no_tls; }
attack demo {
  start state s {
    rule phi on (c1, s1) { when msg.type == FLOW_MOD; do { drop(msg); } }
  }
}
)";
  AttackExecutor exec = fx.make(source);
  const auto on_s3 = fx.message("s3", lang::Direction::ControllerToSwitch, fx.flow_mod());
  const ExecutionResult result = exec.process(on_s3);
  EXPECT_EQ(result.outgoing.size(), 1u);  // untouched: rule is for (c1, s1)
  EXPECT_EQ(exec.stats().rules_evaluated, 0u);
}

TEST(Executor, GoToTransitionsState) {
  Fixture fx;
  AttackExecutor exec = fx.make(scenario::connection_interruption_dsl());
  // Connection setup on (c1, s2): FEATURES_REPLY.
  const auto setup = fx.message("s2", lang::Direction::SwitchToController,
                                ofp::make_message(2, ofp::FeaturesReply{}));
  const ExecutionResult r1 = exec.process(setup);
  EXPECT_EQ(r1.outgoing.size(), 1u);  // pass(msg)
  EXPECT_EQ(exec.current_state_name(), "sigma2");
  EXPECT_EQ(exec.stats().state_transitions, 1u);
  EXPECT_EQ(fx.monitor.count(monitor::EventKind::StateTransition), 1u);
}

TEST(Executor, RulesOfArrivalStateApplyEvenAfterTransition) {
  // Algorithm 1 line 6: σ_previous is saved before processing; the
  // message is evaluated against the state it arrived in.
  Fixture fx;
  const std::string source = R"(
attacker { on (c1, s1) grant no_tls; }
attack demo {
  start state a {
    rule go on (c1, s1) { when msg.type == ECHO_REQUEST; do { goto(b); pass(msg); } }
  }
  state b {
    rule dropper on (c1, s1) { when 1; do { drop(msg); } }
  }
}
)";
  AttackExecutor exec = fx.make(source);
  const auto echo = fx.message("s1", lang::Direction::SwitchToController,
                               ofp::make_message(3, ofp::EchoRequest{}));
  const ExecutionResult r = exec.process(echo);
  // The triggering echo is passed (state b's dropper does NOT apply to it).
  EXPECT_EQ(r.outgoing.size(), 1u);
  EXPECT_EQ(exec.current_state_name(), "b");
  // The next message is dropped by state b.
  const ExecutionResult r2 = exec.process(echo);
  EXPECT_TRUE(r2.outgoing.empty());
}

TEST(Executor, InterruptionAttackFullSequence) {
  Fixture fx;
  AttackExecutor exec = fx.make(scenario::connection_interruption_dsl());
  // 1. Setup message moves σ1 → σ2.
  exec.process(fx.message("s2", lang::Direction::SwitchToController,
                          ofp::make_message(2, ofp::FeaturesReply{})));
  ASSERT_EQ(exec.current_state_name(), "sigma2");

  // 2. An unrelated FLOW_MOD (h6-sourced match) passes and stays in σ2.
  ofp::FlowMod unrelated;
  unrelated.match = ofp::Match::wildcard_all();
  unrelated.match.nw_src = pkt::Ipv4Address::parse("10.0.0.6");
  unrelated.match.set_nw_src_wild_bits(0);
  unrelated.match.nw_dst = pkt::Ipv4Address::parse("10.0.0.1");
  unrelated.match.set_nw_dst_wild_bits(0);
  const auto r2 = exec.process(fx.message("s2", lang::Direction::ControllerToSwitch,
                                          ofp::make_message(4, unrelated)));
  EXPECT_EQ(r2.outgoing.size(), 1u);
  EXPECT_EQ(exec.current_state_name(), "sigma2");

  // 3. The φ2 trigger: FLOW_MOD whose match is h2 → internal host.
  ofp::FlowMod trigger;
  trigger.match = ofp::Match::wildcard_all();
  trigger.match.nw_src = pkt::Ipv4Address::parse("10.0.0.2");
  trigger.match.set_nw_src_wild_bits(0);
  trigger.match.nw_dst = pkt::Ipv4Address::parse("10.0.0.3");
  trigger.match.set_nw_dst_wild_bits(0);
  const auto r3 = exec.process(fx.message("s2", lang::Direction::ControllerToSwitch,
                                          ofp::make_message(5, trigger)));
  EXPECT_TRUE(r3.outgoing.empty());  // dropped
  EXPECT_EQ(exec.current_state_name(), "sigma3");

  // 4. σ3 black-holes everything on (c1, s2)...
  const auto r4 = exec.process(fx.message("s2", lang::Direction::SwitchToController,
                                          ofp::make_message(6, ofp::EchoRequest{})));
  EXPECT_TRUE(r4.outgoing.empty());
  // ...but other connections still pass.
  const auto r5 = exec.process(fx.message("s1", lang::Direction::SwitchToController,
                                          ofp::make_message(7, ofp::EchoRequest{})));
  EXPECT_EQ(r5.outgoing.size(), 1u);
}

TEST(Executor, RyuStyleFlowModDoesNotTriggerPhi2) {
  // The Table II explanation: Ryu's match wildcards nw_src/nw_dst, so φ2's
  // conditional never sees h2's address.
  Fixture fx;
  AttackExecutor exec = fx.make(scenario::connection_interruption_dsl());
  exec.process(fx.message("s2", lang::Direction::SwitchToController,
                          ofp::make_message(2, ofp::FeaturesReply{})));
  ASSERT_EQ(exec.current_state_name(), "sigma2");

  ofp::FlowMod ryu_mod;
  ryu_mod.match = ofp::Match::l2_only(1, pkt::MacAddress::from_u64(2),
                                      pkt::MacAddress::from_u64(3));
  const auto r = exec.process(fx.message("s2", lang::Direction::ControllerToSwitch,
                                         ofp::make_message(5, ryu_mod)));
  EXPECT_EQ(r.outgoing.size(), 1u);              // passed through
  EXPECT_EQ(exec.current_state_name(), "sigma2");  // attack stuck in σ2 forever
}

TEST(Executor, CounterIdiomAcrossMessages) {
  // Drop every message after the third (deque-counter threshold, §VIII-B).
  Fixture fx;
  const std::string source = R"(
attacker { on (c1, s1) grant no_tls; }
attack count_then_drop {
  deque counter = [0];
  start state s {
    rule tally on (c1, s1) {
      when examine_front(counter) < 3;
      do { prepend(counter, examine_front(counter) + 1); pass(msg); }
    }
    rule dropper on (c1, s1) {
      when examine_front(counter) >= 3;
      do { drop(msg); }
    }
  }
}
)";
  AttackExecutor exec = fx.make(source);
  // Rules within a state share storage and evaluate in definition order:
  // the message that advances the counter to 3 is immediately caught by
  // `dropper` in the same pass, so exactly two messages survive.
  int passed = 0;
  for (int i = 0; i < 6; ++i) {
    const auto msg = fx.message("s1", lang::Direction::SwitchToController,
                                ofp::make_message(1, ofp::EchoRequest{}));
    const ExecutionResult r = exec.process(msg);
    if (!r.outgoing.empty()) ++passed;
  }
  EXPECT_EQ(passed, 2);
  EXPECT_EQ(std::get<std::int64_t>(exec.storage().examine_front("counter")), 3);
}

TEST(Executor, SleepAndSysCmdSurfaceInResult) {
  Fixture fx;
  const std::string source = R"(
attacker { on (c1, s1) grant no_tls; }
attack demo {
  start state s {
    rule phi on (c1, s1) {
      when 1;
      do { sleep(2 s); syscmd(h6, "iperf -s"); pass(msg); }
    }
  }
}
)";
  AttackExecutor exec = fx.make(source);
  const auto msg = fx.message("s1", lang::Direction::SwitchToController,
                              ofp::make_message(1, ofp::EchoRequest{}));
  const ExecutionResult r = exec.process(msg);
  EXPECT_EQ(r.sleep, 2 * kSecond);
  ASSERT_EQ(r.syscmds.size(), 1u);
  EXPECT_EQ(r.syscmds[0].host, "h6");
  EXPECT_EQ(r.syscmds[0].command, "iperf -s");
  EXPECT_EQ(r.outgoing.size(), 1u);
}

TEST(Executor, GuardSkipsRuleWhoseFieldCannotExist) {
  Fixture fx;
  const std::string source = R"(
attacker { on (c1, s1) grant no_tls; }
attack demo {
  start state s {
    rule phi on (c1, s1) { when msg.field("buffer_id") == 1; do { drop(msg); } }
  }
}
)";
  AttackExecutor exec = fx.make(source);
  // ECHO_REQUEST has no buffer_id: the compiled guard proves the conditional
  // can only raise, so the rule is dismissed without evaluating — no
  // EvalError event, no exception, message passes untouched.
  const auto msg = fx.message("s1", lang::Direction::SwitchToController,
                              ofp::make_message(1, ofp::EchoRequest{}));
  const ExecutionResult r = exec.process(msg);
  EXPECT_EQ(r.outgoing.size(), 1u);
  EXPECT_EQ(exec.stats().rules_skipped_by_guard, 1u);
  EXPECT_EQ(exec.stats().rules_evaluated, 0u);
  EXPECT_EQ(exec.stats().eval_errors, 0u);
  EXPECT_EQ(fx.monitor.count(monitor::EventKind::EvalError), 0u);
}

TEST(Executor, EvalErrorTreatedAsNoMatchInOracleMode) {
  Fixture fx;
  const std::string source = R"(
attacker { on (c1, s1) grant no_tls; }
attack demo {
  start state s {
    rule phi on (c1, s1) { when msg.field("buffer_id") == 1; do { drop(msg); } }
  }
}
)";
  AttackExecutor exec = fx.make(source);
  exec.set_use_compiled(false);  // tree-walk oracle: no guard, throws + catches
  // ECHO_REQUEST has no buffer_id: conditional raises, message passes.
  const auto msg = fx.message("s1", lang::Direction::SwitchToController,
                              ofp::make_message(1, ofp::EchoRequest{}));
  const ExecutionResult r = exec.process(msg);
  EXPECT_EQ(r.outgoing.size(), 1u);
  EXPECT_EQ(exec.stats().rules_skipped_by_guard, 0u);
  EXPECT_EQ(exec.stats().eval_errors, 1u);
  EXPECT_EQ(fx.monitor.count(monitor::EventKind::EvalError), 1u);
}

TEST(Executor, CompiledAndOracleAgreeOnSuppressionAttack) {
  // Same message sequence through a compiled-path executor and an oracle
  // executor: identical outgoing counts, match counts, and state.
  const std::string source = scenario::flow_mod_suppression_dsl();
  Fixture fx_prog;
  Fixture fx_tree;
  AttackExecutor prog = fx_prog.make(source);
  AttackExecutor tree = fx_tree.make(source);
  tree.set_use_compiled(false);
  for (int i = 0; i < 50; ++i) {
    const auto msg_p = fx_prog.message("s1", lang::Direction::ControllerToSwitch,
                                       i % 3 == 0 ? fx_prog.flow_mod()
                                                  : ofp::make_message(i, ofp::EchoRequest{}));
    const auto msg_t = fx_tree.message("s1", lang::Direction::ControllerToSwitch,
                                       i % 3 == 0 ? fx_tree.flow_mod()
                                                  : ofp::make_message(i, ofp::EchoRequest{}));
    const ExecutionResult rp = prog.process(msg_p);
    const ExecutionResult rt = tree.process(msg_t);
    EXPECT_EQ(rp.outgoing.size(), rt.outgoing.size()) << "message " << i;
  }
  EXPECT_EQ(prog.stats().rules_matched, tree.stats().rules_matched);
  EXPECT_EQ(prog.stats().state_transitions, tree.stats().state_transitions);
  EXPECT_EQ(prog.current_state_name(), tree.current_state_name());
  EXPECT_GT(prog.stats().programs_executed, 0u);
  EXPECT_EQ(tree.stats().programs_executed, 0u);
}

TEST(Executor, RulesOnOtherConnectionsNeverEvaluated) {
  Fixture fx;
  const std::string source = R"(
attacker { on (c1, s1) grant no_tls; on (c1, s2) grant no_tls; }
attack demo {
  start state s {
    rule phi1 on (c1, s1) { when 1; do { drop(msg); } }
    rule phi2 on (c1, s2) { when 1; do { drop(msg); } }
  }
}
)";
  AttackExecutor exec = fx.make(source);
  // A message on (c1, s1) must only ever see phi1: the per-connection rule
  // bucket dismisses phi2 without counting it as evaluated or skipped.
  const auto msg = fx.message("s1", lang::Direction::SwitchToController,
                              ofp::make_message(1, ofp::EchoRequest{}));
  exec.process(msg);
  EXPECT_EQ(exec.stats().rules_evaluated, 1u);
  EXPECT_EQ(exec.stats().rules_skipped_by_guard, 0u);
  EXPECT_EQ(exec.stats().rules_matched, 1u);
}

TEST(Executor, RuntimeCapabilityDefenceInDepth) {
  Fixture fx;
  AttackExecutor exec = fx.make(scenario::flow_mod_suppression_dsl());
  // Sabotage the capability map after compilation: runtime check refuses.
  fx.capabilities = model::CapabilityMap{};  // all grants revoked
  const auto msg = fx.message("s1", lang::Direction::ControllerToSwitch, fx.flow_mod());
  const ExecutionResult r = exec.process(msg);
  EXPECT_EQ(r.outgoing.size(), 1u);  // not dropped: rule refused
  EXPECT_EQ(exec.stats().capability_violations, 1u);
}

TEST(Executor, ResetRestoresStartStateAndStorage) {
  Fixture fx;
  AttackExecutor exec = fx.make(scenario::connection_interruption_dsl());
  exec.process(fx.message("s2", lang::Direction::SwitchToController,
                          ofp::make_message(2, ofp::FeaturesReply{})));
  EXPECT_EQ(exec.current_state_name(), "sigma2");
  exec.reset();
  EXPECT_EQ(exec.current_state_name(), "sigma1");
}

TEST(Executor, DuplicateAppendsCopy) {
  Fixture fx;
  const std::string source = R"(
attacker { on (c1, s1) grant no_tls; }
attack demo {
  start state s {
    rule phi on (c1, s1) { when msg.type == ECHO_REQUEST; do { duplicate(msg); } }
  }
}
)";
  AttackExecutor exec = fx.make(source);
  const auto msg = fx.message("s1", lang::Direction::SwitchToController,
                              ofp::make_message(1, ofp::EchoRequest{}));
  const ExecutionResult r = exec.process(msg);
  ASSERT_EQ(r.outgoing.size(), 2u);
  EXPECT_EQ(r.outgoing[0].message.wire(), r.outgoing[1].message.wire());
  EXPECT_NE(r.outgoing[0].message.id, r.outgoing[1].message.id);
}

}  // namespace
}  // namespace attain::inject
