#include "ofp/actions.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace attain::ofp {
namespace {

ActionList representative_actions() {
  return {
      ActionOutput{3, 0xffff},
      ActionOutput{static_cast<std::uint16_t>(Port::Flood), 128},
      ActionSetVlanVid{100},
      ActionSetVlanPcp{5},
      ActionStripVlan{},
      ActionSetDlSrc{pkt::MacAddress::from_u64(0xaabbcc)},
      ActionSetDlDst{pkt::MacAddress::from_u64(0xddeeff)},
      ActionSetNwSrc{pkt::Ipv4Address::parse("10.1.2.3")},
      ActionSetNwDst{pkt::Ipv4Address::parse("10.4.5.6")},
      ActionSetNwTos{0x2e},
      ActionSetTpSrc{8080},
      ActionSetTpDst{443},
      ActionEnqueue{2, 7},
  };
}

class ActionRoundTrip : public ::testing::TestWithParam<Action> {};

TEST_P(ActionRoundTrip, EncodeDecodeIdentity) {
  const Action& original = GetParam();
  ByteWriter w;
  encode_action(w, original);
  EXPECT_EQ(w.size(), action_wire_size(original));
  ByteReader r(w.bytes());
  const Action decoded = decode_action(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(decoded, original);
}

TEST_P(ActionRoundTrip, WireSizeIsEightAligned) {
  EXPECT_EQ(action_wire_size(GetParam()) % 8, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllActionTypes, ActionRoundTrip,
                         ::testing::ValuesIn(representative_actions()),
                         [](const ::testing::TestParamInfo<Action>& info) {
                           return "type" + std::to_string(static_cast<int>(
                                               action_type(info.param))) +
                                  "_" + std::to_string(info.index);
                         });

TEST(Actions, ListRoundTripPreservesOrder) {
  const ActionList original = representative_actions();
  ByteWriter w;
  encode_actions(w, original);
  EXPECT_EQ(w.size(), actions_wire_size(original));
  ByteReader r(w.bytes());
  const ActionList decoded = decode_actions(r, w.size());
  EXPECT_EQ(decoded, original);
}

TEST(Actions, DecodeRejectsBadLengths) {
  ByteWriter w;
  w.u16(0);  // type Output
  w.u16(4);  // length < 8
  w.u32(0);
  ByteReader r(w.bytes());
  EXPECT_THROW(decode_action(r), DecodeError);

  ByteWriter w2;
  w2.u16(99);  // unknown type
  w2.u16(8);
  w2.u32(0);
  ByteReader r2(w2.bytes());
  EXPECT_THROW(decode_action(r2), DecodeError);
}

TEST(Actions, RewritesApplyToPacketHeaders) {
  pkt::TcpHeader tcp;
  tcp.src_port = 1000;
  tcp.dst_port = 80;
  pkt::Packet p = pkt::make_tcp(pkt::MacAddress::from_u64(1), pkt::MacAddress::from_u64(2),
                                pkt::Ipv4Address::parse("10.0.0.1"),
                                pkt::Ipv4Address::parse("10.0.0.2"), tcp, 100, 0);
  apply_rewrite(ActionSetDlSrc{pkt::MacAddress::from_u64(0x99)}, p);
  apply_rewrite(ActionSetNwDst{pkt::Ipv4Address::parse("9.9.9.9")}, p);
  apply_rewrite(ActionSetNwTos{0x10}, p);
  apply_rewrite(ActionSetTpDst{8443}, p);
  apply_rewrite(ActionSetVlanVid{42}, p);
  EXPECT_EQ(p.eth.src, pkt::MacAddress::from_u64(0x99));
  EXPECT_EQ(p.ipv4->dst.to_string(), "9.9.9.9");
  EXPECT_EQ(p.ipv4->tos, 0x10);
  EXPECT_EQ(p.tcp->dst_port, 8443);
  EXPECT_EQ(p.eth.vlan_id, 42);
  apply_rewrite(ActionStripVlan{}, p);
  EXPECT_EQ(p.eth.vlan_id, kVlanNone);
  // Output/Enqueue are forwarding decisions: no header change.
  pkt::Packet before = p;
  apply_rewrite(ActionOutput{1, 0}, p);
  apply_rewrite(ActionEnqueue{1, 0}, p);
  EXPECT_EQ(p.eth.src, before.eth.src);
}

TEST(Actions, RewritesAreNoOpsWithoutMatchingLayer) {
  // L3/L4 rewrites on an ARP frame must not crash or change anything.
  pkt::Packet arp = pkt::make_arp_request(pkt::MacAddress::from_u64(1),
                                          pkt::Ipv4Address::parse("10.0.0.1"),
                                          pkt::Ipv4Address::parse("10.0.0.2"));
  apply_rewrite(ActionSetNwSrc{pkt::Ipv4Address::parse("9.9.9.9")}, arp);
  apply_rewrite(ActionSetTpSrc{1234}, arp);
  EXPECT_EQ(arp.arp->sender_ip.to_string(), "10.0.0.1");
}

TEST(Actions, ToStringNamesReservedPorts) {
  EXPECT_EQ(to_string(Action{ActionOutput{static_cast<std::uint16_t>(Port::Flood), 0}}),
            "output(FLOOD)");
  EXPECT_EQ(to_string(Action{ActionOutput{static_cast<std::uint16_t>(Port::Controller), 0}}),
            "output(CONTROLLER)");
  EXPECT_EQ(to_string(Action{ActionOutput{7, 0}}), "output(7)");
  const std::string list = to_string(output_to(std::uint16_t{2}));
  EXPECT_EQ(list, "[output(2)]");
}

}  // namespace
}  // namespace attain::ofp
