// End-to-end reproduction checks for the §VII-C connection interruption
// experiment (Table II): fail-safe yields unauthorized external→internal
// access after the interruption; fail-secure yields a denial of service
// for legitimate internal traffic; Ryu never triggers φ2 because its
// FLOW_MOD match wildcards the IP fields.
#include <gtest/gtest.h>

#include "scenario/experiment.hpp"

namespace attain::scenario {
namespace {

InterruptionResult run(ControllerKind kind, bool fail_secure) {
  InterruptionConfig config;
  config.controller = kind;
  config.s2_fail_secure = fail_secure;
  return run_connection_interruption(config);
}

class InterruptionMatrix : public ::testing::TestWithParam<std::tuple<ControllerKind, bool>> {};

TEST_P(InterruptionMatrix, PreAttackProbesAlwaysSucceed) {
  const auto [kind, secure] = GetParam();
  const InterruptionResult r = run(kind, secure);
  EXPECT_TRUE(r.ext_to_ext_t30) << "h2->h1 at t=30 must work";
  EXPECT_TRUE(r.int_to_ext_t30) << "h6->h1 at t=30 must work";
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, InterruptionMatrix,
    ::testing::Combine(::testing::Values(ControllerKind::Floodlight, ControllerKind::Pox,
                                         ControllerKind::Ryu),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<ControllerKind, bool>>& info) {
      return to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_secure" : "_safe");
    });

TEST(Interruption, FloodlightFailSafeGivesUnauthorizedAccess) {
  const InterruptionResult r = run(ControllerKind::Floodlight, false);
  EXPECT_TRUE(r.attack_reached_sigma3);
  EXPECT_TRUE(r.ext_to_int_t50);   // unauthorized increased access
  EXPECT_TRUE(r.int_to_ext_t95);   // traffic still flows (standalone mode)
}

TEST(Interruption, FloodlightFailSecureGivesDoS) {
  const InterruptionResult r = run(ControllerKind::Floodlight, true);
  EXPECT_TRUE(r.attack_reached_sigma3);
  EXPECT_FALSE(r.ext_to_int_t50);  // no unauthorized access...
  EXPECT_FALSE(r.int_to_ext_t95);  // ...but legitimate traffic denied
}

TEST(Interruption, PoxFailSafeGivesUnauthorizedAccess) {
  const InterruptionResult r = run(ControllerKind::Pox, false);
  EXPECT_TRUE(r.attack_reached_sigma3);
  EXPECT_TRUE(r.ext_to_int_t50);
  EXPECT_TRUE(r.int_to_ext_t95);
}

TEST(Interruption, PoxFailSecureGivesDoS) {
  const InterruptionResult r = run(ControllerKind::Pox, true);
  EXPECT_TRUE(r.attack_reached_sigma3);
  EXPECT_FALSE(r.ext_to_int_t50);
  EXPECT_FALSE(r.int_to_ext_t95);
}

TEST(Interruption, RyuNeverTriggersPhi2) {
  for (const bool secure : {false, true}) {
    const InterruptionResult r = run(ControllerKind::Ryu, secure);
    EXPECT_FALSE(r.attack_reached_sigma3) << "secure=" << secure;
    // No interruption: the network behaves like a plain learning switch —
    // everything reachable in both fail modes.
    EXPECT_TRUE(r.ext_to_int_t50) << "secure=" << secure;
    EXPECT_TRUE(r.int_to_ext_t95) << "secure=" << secure;
  }
}

TEST(Interruption, Table2RendersAllCells) {
  std::vector<InterruptionResult> results;
  for (const ControllerKind kind :
       {ControllerKind::Floodlight, ControllerKind::Pox, ControllerKind::Ryu}) {
    for (const bool secure : {false, true}) {
      results.push_back(run(kind, secure));
    }
  }
  const std::string table = render_table2(results);
  EXPECT_NE(table.find("ext->int reachable (t=50s)"), std::string::npos);
  EXPECT_NE(table.find("Floodlight/safe"), std::string::npos);
  EXPECT_NE(table.find("Ryu/secure"), std::string::npos);
  EXPECT_EQ(table.find("?"), std::string::npos);  // every cell resolved
}

}  // namespace
}  // namespace attain::scenario
