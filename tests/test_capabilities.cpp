#include "attain/model/capabilities.hpp"

#include <gtest/gtest.h>

namespace attain::model {
namespace {

TEST(CapabilitySet, AllHasEveryCapability) {
  const CapabilitySet all = CapabilitySet::all();
  EXPECT_EQ(all.size(), kCapabilityCount);
  for (std::size_t i = 0; i < kCapabilityCount; ++i) {
    EXPECT_TRUE(all.contains(static_cast<Capability>(i)));
  }
}

TEST(CapabilitySet, NoTlsEqualsAll) {
  // §IV-C1: Γ_NoTLS = Γ.
  EXPECT_EQ(CapabilitySet::no_tls(), CapabilitySet::all());
}

TEST(CapabilitySet, TlsExcludesExactlyThePaperFive) {
  // §IV-C2: Γ_TLS = Γ \ {READMESSAGE, MODIFYMESSAGE, FUZZMESSAGE,
  // INJECTNEWMESSAGE, MODIFYMESSAGEMETADATA}.
  const CapabilitySet tls = CapabilitySet::tls();
  EXPECT_EQ(tls.size(), kCapabilityCount - 5);
  EXPECT_FALSE(tls.contains(Capability::ReadMessage));
  EXPECT_FALSE(tls.contains(Capability::ModifyMessage));
  EXPECT_FALSE(tls.contains(Capability::FuzzMessage));
  EXPECT_FALSE(tls.contains(Capability::InjectNewMessage));
  EXPECT_FALSE(tls.contains(Capability::ModifyMessageMetadata));
  EXPECT_TRUE(tls.contains(Capability::DropMessage));
  EXPECT_TRUE(tls.contains(Capability::PassMessage));
  EXPECT_TRUE(tls.contains(Capability::DelayMessage));
  EXPECT_TRUE(tls.contains(Capability::DuplicateMessage));
  EXPECT_TRUE(tls.contains(Capability::ReadMessageMetadata));
}

TEST(CapabilitySet, SetAlgebra) {
  const CapabilitySet a{Capability::DropMessage, Capability::PassMessage};
  const CapabilitySet b{Capability::PassMessage, Capability::ReadMessage};
  EXPECT_EQ((a | b).size(), 3u);
  EXPECT_EQ((a & b).size(), 1u);
  EXPECT_TRUE((a & b).contains(Capability::PassMessage));
  const CapabilitySet diff = a - b;
  EXPECT_EQ(diff.size(), 1u);
  EXPECT_TRUE(diff.contains(Capability::DropMessage));
  EXPECT_TRUE(a.contains_all({Capability::DropMessage}));
  EXPECT_FALSE(a.contains_all(b));
  EXPECT_TRUE(CapabilitySet::all().contains_all(a | b));
}

TEST(CapabilitySet, InsertEraseEmpty) {
  CapabilitySet s;
  EXPECT_TRUE(s.empty());
  s.insert(Capability::FuzzMessage);
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(s.contains(Capability::FuzzMessage));
  s.erase(Capability::FuzzMessage);
  EXPECT_TRUE(s.empty());
}

TEST(CapabilitySet, ToStringListsNames) {
  const CapabilitySet s{Capability::DropMessage, Capability::ReadMessage};
  const std::string text = s.to_string();
  EXPECT_NE(text.find("DropMessage"), std::string::npos);
  EXPECT_NE(text.find("ReadMessage"), std::string::npos);
  EXPECT_EQ(text.find("FuzzMessage"), std::string::npos);
}

TEST(Capability, ParsesPaperAndSnakeCaseNames) {
  EXPECT_EQ(capability_from_string("DROPMESSAGE"), Capability::DropMessage);
  EXPECT_EQ(capability_from_string("DropMessage"), Capability::DropMessage);
  EXPECT_EQ(capability_from_string("drop_message"), Capability::DropMessage);
  EXPECT_EQ(capability_from_string("READMESSAGEMETADATA"), Capability::ReadMessageMetadata);
  EXPECT_EQ(capability_from_string("InjectNewMessage"), Capability::InjectNewMessage);
  EXPECT_FALSE(capability_from_string("EatMessage").has_value());
}

TEST(Capability, RoundTripAllNames) {
  for (std::size_t i = 0; i < kCapabilityCount; ++i) {
    const auto cap = static_cast<Capability>(i);
    EXPECT_EQ(capability_from_string(to_string(cap)), cap);
  }
}

TEST(CapabilityMap, DefaultsToNone) {
  const CapabilityMap map;
  const ConnectionId conn{EntityId{EntityKind::Controller, 0}, EntityId{EntityKind::Switch, 0}};
  EXPECT_TRUE(map.capabilities_on(conn).empty());
  EXPECT_FALSE(map.allows(conn, {Capability::PassMessage}));
  EXPECT_TRUE(map.allows(conn, {}));  // empty requirement always allowed
}

TEST(CapabilityMap, GrantsAccumulate) {
  CapabilityMap map;
  const ConnectionId conn{EntityId{EntityKind::Controller, 0}, EntityId{EntityKind::Switch, 1}};
  map.grant(conn, {Capability::DropMessage});
  map.grant(conn, {Capability::ReadMessageMetadata});
  EXPECT_TRUE(map.allows(conn, {Capability::DropMessage, Capability::ReadMessageMetadata}));
  EXPECT_FALSE(map.allows(conn, {Capability::ReadMessage}));
}

TEST(CapabilityMap, PerConnectionIsolation) {
  CapabilityMap map;
  const ConnectionId a{EntityId{EntityKind::Controller, 0}, EntityId{EntityKind::Switch, 0}};
  const ConnectionId b{EntityId{EntityKind::Controller, 0}, EntityId{EntityKind::Switch, 1}};
  map.grant(a, CapabilitySet::no_tls());
  map.grant(b, CapabilitySet::tls());
  EXPECT_TRUE(map.allows(a, {Capability::ReadMessage}));
  EXPECT_FALSE(map.allows(b, {Capability::ReadMessage}));
  EXPECT_EQ(map.entries().size(), 2u);
}

}  // namespace
}  // namespace attain::model
