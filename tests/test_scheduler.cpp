#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace attain::sim {
namespace {

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.at(30, [&] { order.push_back(3); });
  sched.at(10, [&] { order.push_back(1); });
  sched.at(20, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 30);
}

TEST(Scheduler, TiesBreakInInsertionOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.at(100, [&order, i] { order.push_back(i); });
  }
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, AfterSchedulesRelativeToNow) {
  Scheduler sched;
  SimTime fired_at = -1;
  sched.at(50, [&] {
    sched.after(25, [&] { fired_at = sched.now(); });
  });
  sched.run();
  EXPECT_EQ(fired_at, 75);
}

TEST(Scheduler, PastTimeClampsToNow) {
  // Regression: at(when < now()) used to throw, which made callers that
  // compute deadlines from stale timestamps brittle. It now clamps to
  // now(), firing the event immediately — and time never moves backwards.
  Scheduler sched;
  std::vector<SimTime> fired;
  sched.at(10, [&] {
    sched.at(5, [&] { fired.push_back(sched.now()); });
    sched.at(20, [&] { fired.push_back(sched.now()); });
  });
  sched.run();
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(sched.now(), 20);
}

TEST(Scheduler, ClampedEventsFireAfterAlreadyQueuedEventsAtNow) {
  // A clamped event lands at now() *behind* events already queued for that
  // instant: insertion order among equal timestamps is preserved.
  Scheduler sched;
  std::vector<int> order;
  sched.at(10, [&] {
    sched.at(10, [&] { order.push_back(1); });  // same-time, queued first
    sched.at(3, [&] { order.push_back(2); });   // clamped to 10, queued second
  });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  bool fired = false;
  EventHandle handle = sched.at(10, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sched.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, HandleNotPendingAfterFire) {
  Scheduler sched;
  EventHandle handle = sched.at(10, [] {});
  sched.run();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // safe no-op
}

TEST(Scheduler, StaleHandleCannotCancelRecycledSlot) {
  // The event pool recycles slots; a handle from a fired event must not
  // cancel a later event that happens to reuse the same slot (generation
  // tags disambiguate).
  Scheduler sched;
  EventHandle first = sched.at(10, [] {});
  sched.run_until(10);
  EXPECT_FALSE(first.pending());

  bool fired = false;
  EventHandle second = sched.at(20, [&] { fired = true; });
  first.cancel();  // stale generation: must be a no-op
  EXPECT_TRUE(second.pending());
  sched.run();
  EXPECT_TRUE(fired);
}

TEST(Scheduler, CancelledEventsStillAdvanceTimeButDoNotCount) {
  Scheduler sched;
  EventHandle handle = sched.at(10, [] {});
  sched.at(20, [] {});
  handle.cancel();
  sched.run();
  EXPECT_EQ(sched.now(), 20);
  EXPECT_EQ(sched.events_executed(), 1u);  // the cancelled one is not counted
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler sched;
  std::vector<SimTime> fired;
  sched.at(10, [&] { fired.push_back(10); });
  sched.at(20, [&] { fired.push_back(20); });
  sched.at(30, [&] { fired.push_back(30); });
  sched.run_until(20);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(sched.now(), 20);
  sched.run_until(100);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_EQ(sched.now(), 100);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler sched;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) sched.after(1, chain);
  };
  sched.after(1, chain);
  sched.run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sched.now(), 10);
  EXPECT_EQ(sched.events_executed(), 10u);
}

TEST(Scheduler, SecondsHelperConverts) {
  EXPECT_EQ(seconds(1.0), kSecond);
  EXPECT_EQ(seconds(0.001), kMillisecond);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond * 3), 3.0);
}

}  // namespace
}  // namespace attain::sim
