// The batched fast path's acceptance contract: pipe coalescing preserves
// delivery order, per-payload stats, and events_executed() accounting
// exactly; the switch's batch ingress emits byte-identical control frames
// to the scalar path; and whole sweep cells — volumetric floods and armed
// suppression attacks — produce byte-identical result JSON with batching
// on and off.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ofp/codec.hpp"
#include "packet/codec.hpp"
#include "scenario/experiment.hpp"
#include "sim/batching.hpp"
#include "sim/link.hpp"
#include "sweep/sweep.hpp"
#include "swsim/switch.hpp"
#include "topo/generators.hpp"

namespace attain {
namespace {

using scenario::ControllerKind;
using scenario::ExperimentKind;
using scenario::RunSpec;
using scenario::VolumetricKind;

// ---------------------------------------------------------------------------
// Pipe coalescing.
// ---------------------------------------------------------------------------

TEST(PipeBatching, SameInstantSendsCoalesceIntoOneBatch) {
  sim::Scheduler sched;
  sim::Pipe<int> pipe(sched, sim::PipeConfig{0, 10, 0});  // infinite bandwidth
  std::vector<std::vector<int>> batches;
  pipe.set_batch_receiver([&](sim::PayloadBatch<int> items) {
    std::vector<int> got;
    for (auto& item : items) got.push_back(item.payload);
    batches.push_back(std::move(got));
  });
  sched.at(5, [&] {
    pipe.send(1, 8);
    pipe.send(2, 8);
    pipe.send(3, 8);
  });
  sched.run();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0], (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(pipe.stats().delivered, 3u);
  EXPECT_EQ(pipe.stats().bytes_delivered, 24u);
  // One scheduler event fired for the batch, plus the seed event; the extra
  // two items count as logical events so the total matches the scalar run.
  EXPECT_EQ(sched.events_executed(), 1u + 3u);
}

TEST(PipeBatching, InterveningScheduleSplitsTheBatch) {
  sim::Scheduler sched;
  sim::Pipe<int> pipe(sched, sim::PipeConfig{0, 10, 0});
  std::vector<std::size_t> batch_sizes;
  pipe.set_batch_receiver([&](sim::PayloadBatch<int> items) {
    batch_sizes.push_back(items.size());
  });
  sched.at(5, [&] {
    pipe.send(1, 8);
    // An unrelated event scheduled between two sends could, in the scalar
    // schedule, be ordered between their deliveries — the pipe must not
    // coalesce across it.
    sched.at(15, [] {});
    pipe.send(2, 8);
  });
  sched.run();
  EXPECT_EQ(batch_sizes, (std::vector<std::size_t>{1, 1}));
}

TEST(PipeBatching, SerializationDelayPreventsCoalescing) {
  sim::Scheduler sched;
  // 100 Mbps: a 54-byte frame occupies the pipe 4.32 us, so consecutive
  // sends have distinct delivery instants — the data-plane case.
  sim::Pipe<int> pipe(sched, sim::PipeConfig{100'000'000, 10, 0});
  std::vector<std::size_t> batch_sizes;
  pipe.set_batch_receiver([&](sim::PayloadBatch<int> items) {
    batch_sizes.push_back(items.size());
  });
  sched.at(5, [&] {
    pipe.send(1, 54);
    pipe.send(2, 54);
  });
  sched.run();
  EXPECT_EQ(batch_sizes, (std::vector<std::size_t>{1, 1}));
}

TEST(PipeBatching, BatchingOverrideRestoresScalarDelivery) {
  sim::Scheduler sched;
  sim::Pipe<int> pipe(sched, sim::PipeConfig{0, 10, 0});
  std::vector<std::size_t> batch_sizes;
  int scalar_deliveries = 0;
  pipe.set_receiver([&](int) { ++scalar_deliveries; });
  pipe.set_batch_receiver([&](sim::PayloadBatch<int> items) {
    batch_sizes.push_back(items.size());
  });
  const sim::BatchingOverride off(false);
  sched.at(5, [&] {
    pipe.send(1, 8);
    pipe.send(2, 8);
  });
  sched.run();
  EXPECT_TRUE(batch_sizes.empty());
  EXPECT_EQ(scalar_deliveries, 2);
  EXPECT_EQ(sched.events_executed(), 3u);
}

// ---------------------------------------------------------------------------
// Switch batch ingress: byte-identical control output to the scalar path.
// ---------------------------------------------------------------------------

swsim::PacketBatch flood_batch(std::uint16_t port, int count) {
  swsim::PacketBatch batch;
  batch.port = port;
  for (int f = 0; f < count; ++f) {
    pkt::TcpHeader tcp;
    tcp.src_port = static_cast<std::uint16_t>(40000 + f);
    tcp.dst_port = 80;
    tcp.flags = pkt::kTcpSyn;
    pkt::Packet p = pkt::make_tcp(pkt::MacAddress::from_u64(0x0aad00000000ULL + f),
                                  pkt::MacAddress::from_u64(0x22),
                                  pkt::Ipv4Address{static_cast<std::uint32_t>(0xc0000000u + f)},
                                  pkt::Ipv4Address{0x0a000202}, tcp, 0, 0);
    batch.packets.push_back(std::move(p));
    batch.wires.push_back(pkt::encode(batch.packets.back()));
  }
  return batch;
}

struct WireHarness {
  sim::Scheduler sched;
  std::unique_ptr<swsim::OpenFlowSwitch> sw;
  std::vector<Bytes> control_wire;

  WireHarness() {
    swsim::SwitchConfig config;
    config.name = "s1";
    config.dpid = 0x1;
    config.num_ports = 4;
    sw = std::make_unique<swsim::OpenFlowSwitch>(sched, config);
    sw->set_control_sender([this](chan::Envelope e) {
      // Compare what actually crosses the wire: force the frame encode the
      // first pipe hop would perform.
      control_wire.push_back(e.wire());
    });
    sw->connect();
    sw->on_control_bytes(ofp::encode(ofp::make_message(1, ofp::Hello{})));
    sw->on_control_bytes(ofp::encode(ofp::make_message(2, ofp::FeaturesRequest{})));
    EXPECT_EQ(sw->channel_state(), swsim::ChannelState::Connected);
    control_wire.clear();
  }
};

TEST(SwitchBatching, BatchIngressMatchesScalarByteForByte) {
  WireHarness scalar;
  {
    const sim::BatchingOverride off(false);
    swsim::PacketBatch batch = flood_batch(3, 32);
    scalar.sw->on_packet_batch(std::move(batch));  // falls back to on_packet()
  }

  WireHarness batched;
  batched.sw->on_packet_batch(flood_batch(3, 32));

  ASSERT_EQ(scalar.control_wire.size(), batched.control_wire.size());
  for (std::size_t i = 0; i < scalar.control_wire.size(); ++i) {
    ASSERT_EQ(scalar.control_wire[i], batched.control_wire[i]) << "frame " << i;
  }
  EXPECT_EQ(scalar.sw->counters().packets_in, batched.sw->counters().packets_in);
  EXPECT_EQ(scalar.sw->counters().table_misses, batched.sw->counters().table_misses);
  EXPECT_EQ(scalar.sw->counters().packet_in_sent, batched.sw->counters().packet_in_sent);
  EXPECT_EQ(scalar.sw->counters().control_tx, batched.sw->counters().control_tx);
}

TEST(SwitchBatching, StampedPacketInCarriesBothEnvelopeViews) {
  WireHarness h;
  h.sw->on_packet_batch(flood_batch(2, 4));
  ASSERT_EQ(h.control_wire.size(), 4u);
  // Each stamped PACKET_IN must round-trip: decode(wire) == typed view.
  for (const Bytes& wire : h.control_wire) {
    const ofp::Message decoded = ofp::decode(wire);
    EXPECT_EQ(decoded.type(), ofp::MsgType::PacketIn);
    EXPECT_EQ(ofp::encode(decoded), wire);
  }
}

// ---------------------------------------------------------------------------
// End-to-end byte identity: batching on == batching off, cell by cell.
// ---------------------------------------------------------------------------

std::string sweep_json(const std::vector<RunSpec>& grid, bool batching, unsigned threads) {
  const sim::BatchingOverride guard(batching);
  sweep::SweepOptions options;
  options.threads = threads;
  return sweep::SweepRunner(options).run(grid).results_json();
}

TEST(BatchPipelineIdentity, VolumetricFloodCellsAreBatchingInvariant) {
  const std::vector<RunSpec> grid =
      scenario::GridBuilder()
          .volumetric(VolumetricKind::PacketInFlood)
          .volumetric(VolumetricKind::SlowRate)
          .controllers({ControllerKind::Pox})
          .topology(topo::TopologySpec::fat_tree(4))
          .flood(/*flows=*/32, /*duration=*/2 * kSecond, /*batch=*/500 * kMillisecond)
          .build();
  const std::string off = sweep_json(grid, false, 1);
  EXPECT_EQ(off, sweep_json(grid, true, 1));
  EXPECT_EQ(off, sweep_json(grid, true, 4));
}

TEST(BatchPipelineIdentity, ArmedSuppressionCellIsBatchingInvariant) {
  // The armed path: POX suppression drives the injector's executor, so this
  // pins the guard-skip fast plan's counter mirror (messages_interposed,
  // rules_skipped_by_guard, MessageForwarded tallies) against the scalar
  // rule loop.
  RunSpec spec;
  spec.experiment = ExperimentKind::FlowModSuppression;
  spec.controller = ControllerKind::Pox;
  spec.attack_enabled = true;
  spec.ping_trials = 2;
  spec.iperf_trials = 0;
  const std::vector<RunSpec> grid{spec};
  EXPECT_EQ(sweep_json(grid, false, 1), sweep_json(grid, true, 1));
}

TEST(BatchPipelineIdentity, TableOverflowCellIsBatchingInvariant) {
  const std::vector<RunSpec> grid =
      scenario::GridBuilder()
          .volumetric(VolumetricKind::TableOverflow)
          .controllers({ControllerKind::Floodlight})
          .topology(topo::TopologySpec::fat_tree(4))
          .flood(/*flows=*/32, /*duration=*/2 * kSecond, /*batch=*/500 * kMillisecond)
          .table_capacity(64)
          .build();
  EXPECT_EQ(sweep_json(grid, false, 1), sweep_json(grid, true, 1));
}

}  // namespace
}  // namespace attain
